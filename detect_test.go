package ntpddos

import (
	"strings"
	"testing"

	"ntpddos/internal/detect"
	"ntpddos/internal/metrics"
	"ntpddos/internal/report"
)

// TestDetectorDoesNotPerturbSimulation is the streaming plane's digest
// contract: attaching the detector tap must leave every All() table
// byte-identical, because the detector only observes datagrams (never
// mutates them), consumes no world randomness (its hash key is forked on a
// private stream), and schedules no events. Two detector-on runs must also
// agree with each other — the sketch/alarm pipeline itself is deterministic.
func TestDetectorDoesNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Scale = 4000
	cfg.NumASes = 200
	cfg.FabricAttackDivisor = 8

	off := report.Digest(Run(cfg).All())

	dcfg := detect.DefaultConfig()
	cfg.Detector = &dcfg
	s1 := Run(cfg)
	on1 := report.Digest(s1.All())
	on2 := report.Digest(Run(cfg).All())

	if off != on1 {
		t.Fatalf("detector tap changed the simulation:\n  off: %s\n  on:  %s", off, on1)
	}
	if on1 != on2 {
		t.Fatalf("two detector-on runs diverged:\n  %s\n  %s", on1, on2)
	}

	sum := s1.Detection()
	if sum == nil {
		t.Fatal("detector enabled but no summary recorded")
	}
	if len(sum.Alarms) == 0 || len(sum.Victims) == 0 {
		t.Fatal("detector-on run raised no alarms; digest identity is vacuous")
	}

	// Online quality at default calibration: the streaming victim set must
	// match the launched-campaign ground truth at >= 0.9 precision/recall.
	truth := s1.LaunchedVictimSet()
	if truth.Len() == 0 {
		t.Fatal("no campaigns launched; nothing to score against")
	}
	e := detect.Evaluate(sum.VictimSet(), truth)
	if e.Precision < 0.9 || e.Recall < 0.9 {
		t.Fatalf("streaming victims: precision %.3f recall %.3f (TP %d / det %d / truth %d), want >= 0.9 both",
			e.Precision, e.Recall, e.TruePositives, e.Detected, e.Truth)
	}

	// The report renders and stays out of All() (the identity above depends
	// on that).
	tab := s1.DetectReport()
	if tab.ID != "detect" || len(tab.Rows) == 0 {
		t.Fatalf("detect report empty: %+v", tab)
	}
	if s1.ByID("detect") != nil {
		t.Fatal("detect report leaked into All(); the on/off digest identity would break")
	}
	if !strings.Contains(tab.Render(), "streaming") {
		t.Fatalf("unexpected render:\n%s", tab.Render())
	}
}

// TestDetectorMetrics checks the detector's instrumentation family is
// exposed when both Metrics and Detector are configured.
func TestDetectorMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Scale = 4000
	cfg.NumASes = 200
	cfg.FabricAttackDivisor = 8
	dcfg := detect.DefaultConfig()
	cfg.Detector = &dcfg
	reg := metrics.NewRegistry()
	cfg.Metrics = reg

	s := Run(cfg)
	if s.Detection() == nil {
		t.Fatal("no detection summary")
	}
	text := reg.RenderText()
	for _, family := range []string{
		"ntpsim_detect_packets_total",
		"ntpsim_detect_onset_alarms_total",
		"ntpsim_detect_scanner_cardinality_estimate",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("instrumented detector exposed no %s", family)
		}
	}
}
