package ntpddos

import (
	"context"
	"fmt"

	"ntpddos/internal/detect"
	"ntpddos/internal/report"
	"ntpddos/internal/sweep"
)

// Re-exports so sweep callers need only the facade package.
type (
	// SweepJob is one independent scenario execution in a sweep.
	SweepJob = sweep.Job
	// SweepOptions tunes the worker pool (size, instrumentation, progress).
	SweepOptions = sweep.Options
	// SweepManifest is a completed sweep: per-job digests plus cross-run
	// spread summaries, with a parallelism-independent canonical form.
	SweepManifest = sweep.Manifest
	// SweepGrid expands seed replicates × Scale ladders × Config knobs into
	// a deterministic job list.
	SweepGrid = sweep.Grid
	// SweepKnob is one parameter-grid dimension of a SweepGrid.
	SweepKnob = sweep.Knob
	// SweepKnobValue is one setting of a SweepKnob.
	SweepKnobValue = sweep.KnobValue
	// SweepSpec is the declarative sweep description (seed ranges, Scale
	// ladders, grid knobs) shared by cmd/ntpsweep's flags and the JSON job
	// specs cmd/ntpserved accepts over HTTP.
	SweepSpec = sweep.Spec
)

// ErrSweepCanceled wraps the error SweepContext returns alongside a partial
// manifest when its context is canceled before every job ran.
var ErrSweepCanceled = sweep.ErrCanceled

// SweepReplicates builds the common job list: one config, many seeds.
func SweepReplicates(name string, base Config, seeds ...uint64) []SweepJob {
	return sweep.Replicates(name, base, seeds...)
}

// Sweep fans the jobs across a worker pool, running the full pipeline
// (scenario + every experiment table) for each and aggregating cross-run
// statistics. Each job's World is fully isolated — own RNG root, own
// virtual clock — so a job's report digest is identical whether it ran
// serially, in parallel, or in any interleaving; the manifest's canonical
// bytes are likewise independent of SweepOptions.Workers.
func Sweep(jobs []SweepJob, opt SweepOptions) (*SweepManifest, error) {
	return sweep.Run(jobs, SweepRunner, opt)
}

// SweepContext is Sweep with cancellation: when ctx is canceled, jobs
// already executing finish (their worlds stay deterministic) and land in
// the manifest, never-started jobs are recorded with a canceled error, and
// the partial manifest is returned together with an error wrapping
// ErrSweepCanceled — the interrupted-sweep contract cmd/ntpsweep and the
// ntpserved job timeouts both build on.
func SweepContext(ctx context.Context, jobs []SweepJob, opt SweepOptions) (*SweepManifest, error) {
	return sweep.RunContext(ctx, jobs, SweepRunner, opt)
}

// SweepRunner executes one sweep job end to end: full timeline, every
// table and figure, digest, and the scalar outcomes the manifest
// aggregates. It is the Runner ntpddos.Sweep installs; it is exported so
// callers composing their own sweep.Run invocations (custom engines,
// partial job sets) use the exact same per-job semantics.
func SweepRunner(j SweepJob) (sweep.Result, error) {
	s := Run(j.Cfg)
	tables := s.All()
	numTables := len(tables)
	// The disciplined-client plane lives outside All() (the classic digest
	// must be independent of it), but when it is enabled its behaviour is
	// pinned too: the discipline summary joins the digested set. The report
	// depends only on Config.TimeSync/TimeAttackShare, never on
	// Config.Detector, so the detector-on/off digest identity still holds.
	if s.Results().TimeSync != nil {
		tables = append(tables, s.TimeSyncReport())
	}
	return sweep.Result{
		Digest: report.Digest(tables),
		Values: sweepValues(s, numTables),
	}, nil
}

// sweepValues extracts the scalar outcomes a sweep aggregates across runs.
// Non-finite values are dropped downstream, but everything produced here is
// already finite by construction.
func sweepValues(s *Simulation, numTables int) map[string]float64 {
	res := s.Results()
	v := map[string]float64{
		"tables":           float64(numTables),
		"attacks_launched": float64(len(res.World.Launched)),
	}
	// Per-sample monlist pool sizes: the Figure 3 decline, one metric per
	// weekly sample so replicate groups summarize into an envelope.
	for i, pool := range res.MonlistPools {
		v[fmt.Sprintf("pool_s%02d", i)] = float64(pool.Len())
	}
	if n := len(res.MonlistPools); n > 0 {
		first := float64(res.MonlistPools[0].Len())
		last := float64(res.MonlistPools[n-1].Len())
		v["pool_first"] = first
		v["pool_last"] = last
		if first > 0 {
			v["pool_decline_pct"] = 100 * (1 - last/first)
		}
	}
	if hp := res.Honeypot; hp != nil {
		v["hp_events"] = float64(len(hp.Events))
		v["hp_recall"] = hp.Validation.DetectionRate()
		if n := len(hp.Events); n > 0 {
			v["hp_precision"] = float64(n-len(hp.Validation.UnmatchedEvents)) / float64(n)
		}
	}
	if det := res.Detection; det != nil {
		e := detect.Evaluate(det.VictimSet(), s.LaunchedVictimSet())
		v["det_precision"] = e.Precision
		v["det_recall"] = e.Recall
	}
	if ts := res.TimeSync; ts != nil {
		v["ts_clients"] = float64(ts.Clients)
		v["ts_synced"] = float64(ts.Synced)
		v["ts_max_err_ms"] = float64(ts.MaxAbsErr.Milliseconds())
		v["ts_steps"] = float64(ts.Steps)
	}
	if at := res.TimeAttack; at != nil {
		v["ts_targets"] = float64(at.Targets)
	}
	if e := res.TimeIntegrityEval; e != nil {
		v["ts_det_precision"] = e.Precision
		v["ts_det_recall"] = e.Recall
	}
	return v
}
