package ntpddos

import (
	"testing"
	"time"

	"ntpddos/internal/scenario"
)

// TestSchedulerQueueDepthRegression pins the scheduler's pending-event
// high-water mark for the golden baseline world. Lazy Every re-arming and
// same-instant batch coalescing keep the queue proportional to genuinely
// in-flight work — a change that pre-materializes periodic timelines or
// stops coalescing deliveries explodes this number long before it hurts at
// the million-host scale, so it fails here first.
func TestSchedulerQueueDepthRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := scenario.TestConfig()
	cfg.Scale = 4000
	cfg.End = time.Date(2014, 1, 17, 0, 0, 0, 0, time.UTC)
	cfg.Seed = 1
	res := scenario.Run(cfg)
	peak := res.World.Sched.PeakPending()
	t.Logf("peak pending events: %d", peak)
	if peak == 0 {
		t.Fatal("PeakPending never tracked anything — instrumentation broken")
	}
	// The golden baseline peaks around 1.4k pending events; 8k leaves
	// headroom for legitimate feature growth while still catching a
	// re-materialized timeline (the pre-refactor scheduler held every
	// future tick of every periodic timer, two orders of magnitude more).
	const budget = 8000
	if peak > budget {
		t.Fatalf("peak pending events = %d, budget %d: the scheduler is holding "+
			"far more queued work than the lazy-timer + batched-fabric design should",
			peak, budget)
	}
}
