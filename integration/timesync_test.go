package integration

import (
	"bytes"
	"strings"
	"testing"

	"ntpddos"
	"ntpddos/internal/metrics"
	"ntpddos/internal/report"
	"ntpddos/internal/sweep"
)

// TestTimeSyncSweepWorkersByteIdentical extends the parallelism wall to the
// disciplined-client plane: a spec arming the fleet and the time-integrity
// attack grid must produce byte-identical canonical manifests at workers=1
// and workers=8. SweepRunner folds the discipline summary into each job's
// digest when the plane is enabled, so this pins the sync state machine and
// the attacker models themselves, not just the classic tables around them.
func TestTimeSyncSweepWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	spec := sweep.Spec{
		Name:       "timesync",
		Seeds:      "23,29",
		Detect:     "on",
		TimeSync:   16,
		TimeAttack: []float64{0, 0.5},
	}
	jobs, err := spec.Jobs(sweepTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.CanonicalJSON(), parallel.CanonicalJSON()) {
		t.Fatal("timesync sweep manifests differ between serial and parallel execution")
	}
	attacked := 0
	for _, rec := range serial.Jobs {
		if rec.Err != "" {
			t.Fatalf("job %s failed: %s", rec.ID, rec.Err)
		}
		if rec.Values["ts_synced"] == 0 {
			t.Fatalf("job %s synced no clients", rec.ID)
		}
		if rec.Values["ts_targets"] > 0 {
			attacked++
		}
	}
	if attacked == 0 {
		t.Fatal("no job armed the attack plane; the wall is vacuous")
	}
}

// TestMetricsDoNotPerturbTimeSyncPlane is the instrumentation-inertness
// contract for the disciplined-client plane under attack: the full digest
// (classic tables plus the discipline summary) must be identical with
// metrics off and on, and the instrumented run must expose the
// ntpsync_*/ntpattack_* families.
func TestMetricsDoNotPerturbTimeSyncPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := sweepTestConfig()
	cfg.NumASes = 200
	cfg.FabricAttackDivisor = 8
	cfg.TimeSync.Clients = 16
	cfg.TimeAttackShare = 0.5

	digest := func(s *ntpddos.Simulation) string {
		return report.Digest(append(s.All(), s.TimeSyncReport()))
	}
	plain := digest(ntpddos.Run(cfg))

	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	instrumented := digest(ntpddos.Run(cfg))
	if plain != instrumented {
		t.Fatalf("timesync instrumentation changed the simulation:\n  off: %s\n  on:  %s",
			plain, instrumented)
	}
	text := reg.RenderText()
	for _, family := range []string{
		"ntpsync_polls_total", "ntpsync_samples_total", "ntpsync_abs_offset_seconds",
		"ntpattack_targets", "ntpattack_rewritten_replies_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("instrumented run exposed no %s", family)
		}
	}
}
