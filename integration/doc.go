// Package integration holds the cross-layer integration walls that each
// spin up multiple truncated simulation worlds: the sweep parallelism and
// replicate-invariant walls, the daemon-vs-in-process manifest identity
// wall, and the fault-injection plane contracts (instrumentation inertness
// under injected chaos, byte-identical manifests across worker counts with
// every impairment armed). They live outside the root package so neither
// test binary crowds the other's budget: the root suite keeps the seed
// determinism, golden-corpus, and paper-figure walls, and this package
// carries the multi-world sweeps.
package integration
