package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ntpddos"
	"ntpddos/internal/serve"
)

// TestServeManifestMatchesInProcess is the service-layer acceptance wall:
// a sweep spec submitted to the daemon over real HTTP must yield manifest
// bytes identical to the same spec executed directly on the engine, at
// any daemon worker count. The daemon adds queueing, admission and
// lifecycle — it must add zero entropy.
func TestServeManifestMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	base := sweepTestConfig()
	spec := ntpddos.SweepSpec{Seeds: "1-2"}
	jobs, err := spec.Jobs(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		d, err := serve.New(serve.Config{Base: base, Runner: ntpddos.SweepRunner, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		srv := httptest.NewServer(d.Handler())

		resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"seeds":"1-2"}`))
		if err != nil {
			t.Fatal(err)
		}
		var st serve.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("workers=%d: submit = %d", workers, resp.StatusCode)
		}

		deadline := time.Now().Add(3 * time.Minute)
		for !st.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("workers=%d: job %s never finished (%+v)", workers, st.ID, st)
			}
			time.Sleep(50 * time.Millisecond)
			r, err := srv.Client().Get(srv.URL + "/v1/jobs/" + st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
		}
		if st.State != serve.StateDone {
			t.Fatalf("workers=%d: job ended %s: %s", workers, st.State, st.Error)
		}
		if st.Digest != want.Digest() {
			t.Errorf("workers=%d: daemon digest %s != in-process %s", workers, st.Digest, want.Digest())
		}

		r, err := srv.Client().Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if !bytes.Equal(got, want.CanonicalJSON()) {
			t.Errorf("workers=%d: HTTP manifest bytes differ from in-process canonical JSON", workers)
		}

		srv.Close()
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := d.Drain(dctx); err != nil {
			t.Errorf("workers=%d: drain: %v", workers, err)
		}
		cancel()
	}
}
