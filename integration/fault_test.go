package integration

import (
	"bytes"
	"strings"
	"testing"

	"ntpddos"
	"ntpddos/internal/metrics"
	"ntpddos/internal/report"
	"ntpddos/internal/scenario"
	"ntpddos/internal/sweep"
)

// TestMetricsDoNotPerturbFaultPlane is the instrumentation-inertness
// contract extended to injected chaos: with every fault class armed, the
// digest must be identical with metrics off and on — drop-cause counters
// observe the impairment stage without touching its RNG stream — and the
// instrumented run must expose the per-cause fabric drop family.
func TestMetricsDoNotPerturbFaultPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := sweepTestConfig()
	cfg.NumASes = 200
	cfg.FabricAttackDivisor = 8
	cfg.Faults = scenario.FaultConfig{
		Loss: 0.1, Dup: 0.05, Reorder: 0.05, FlapRate: 0.05,
		FlowSampleN: 4, CollectorOutage: 0.25, SensorBlackout: 0.25,
	}

	plain := report.Digest(ntpddos.Run(cfg).All())

	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	instrumented := report.Digest(ntpddos.Run(cfg).All())

	if plain != instrumented {
		t.Fatalf("instrumentation changed the fault-injected simulation:\n  off: %s\n  on:  %s",
			plain, instrumented)
	}
	text := reg.RenderText()
	for _, cause := range []string{`cause="loss"`, `cause="flap"`} {
		if !strings.Contains(text, cause) {
			t.Fatalf("instrumented chaos run exposed no fabric drops with %s", cause)
		}
	}
	if !strings.Contains(text, "ntpsim_fabric_packets_duplicated_total") {
		t.Fatal("instrumented chaos run exposed no duplication counter")
	}
}

// TestFaultSweepWorkersByteIdentical extends the parallelism wall to the
// fault-injection plane: a spec with every impairment armed (lossy fabric,
// sampled NetFlow, collector outage, sensor blackouts) must still produce
// byte-identical canonical manifests at workers=1 and workers=8. Faults draw
// from a private RNG stream keyed only by (seed, link, window), so injected
// chaos is as reproducible as the clean world.
func TestFaultSweepWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	spec := sweep.Spec{
		Name:     "chaos",
		Seeds:    "1-2",
		Detect:   "on",
		Loss:     []float64{0.1},
		Dup:      []float64{0.05},
		Flap:     []float64{0.05},
		Sample:   []int{4},
		Outage:   []float64{0.25},
		Blackout: []float64{0.25},
	}
	jobs, err := spec.Jobs(sweepTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if failed := serial.Failed(); len(failed) > 0 {
		t.Fatalf("fault-enabled jobs failed: %+v", failed)
	}
	if !bytes.Equal(serial.CanonicalJSON(), parallel.CanonicalJSON()) {
		t.Fatalf("fault-enabled workers=1 and workers=8 manifests differ:\n%s\nvs\n%s",
			serial.CanonicalJSON(), parallel.CanonicalJSON())
	}
}
