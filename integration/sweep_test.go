package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ntpddos"
	"ntpddos/internal/detect"
)

// sweepTestConfig is the cheapest full-pipeline world: the window truncates
// right after the first monlist survey, so every run still renders all 33
// tables and streams live honeypot events in a few seconds.
func sweepTestConfig() ntpddos.Config {
	cfg := ntpddos.QuickConfig()
	cfg.Scale = 4000
	cfg.End = time.Date(2014, 1, 17, 0, 0, 0, 0, time.UTC)
	return cfg
}

// TestSweepWorkersByteIdentical is the scenario-level half of the
// determinism-under-parallelism wall (the synthetic half lives in
// internal/sweep): the same replicate job set executed serially and on an
// oversubscribed 8-worker pool must produce byte-identical canonical
// manifests — same per-run digests, same aggregated statistics, same bytes.
func TestSweepWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	jobs := ntpddos.SweepReplicates("par", sweepTestConfig(), 1, 2)
	serial, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ntpddos.Sweep(jobs, ntpddos.SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.CanonicalJSON(), parallel.CanonicalJSON()) {
		t.Fatalf("workers=1 and workers=8 manifests differ:\n%s\nvs\n%s",
			serial.CanonicalJSON(), parallel.CanonicalJSON())
	}
	if serial.Digest() != parallel.Digest() {
		t.Fatalf("manifest digests differ: %s vs %s", serial.Digest(), parallel.Digest())
	}
	for i, rec := range serial.Jobs {
		if rec.Digest == "" || rec.Digest != parallel.Jobs[i].Digest {
			t.Fatalf("job %s per-run digest differs: %q vs %q",
				rec.ID, rec.Digest, parallel.Jobs[i].Digest)
		}
	}
}

// TestSweepReplicateInvariants is the property wall: every small-seed
// replicate pushed through the sweep engine must satisfy the scenario
// invariants the paper's narrative depends on — the monlist amplifier pool
// collapses after the publicity window, the honeypot pipeline stays
// high-precision, the detector stays high-precision when enabled, and the
// table inventory never flickers across seeds.
func TestSweepReplicateInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation skipped in -short mode")
	}
	cfg := sweepTestConfig()
	// Extend past the publicity window so the weekly surveys capture the
	// decline (4 pool samples by Feb 1).
	cfg.End = time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	dcfg := detect.DefaultConfig()
	cfg.Detector = &dcfg
	m, err := ntpddos.Sweep(ntpddos.SweepReplicates("prop", cfg, 1, 2, 3, 4), ntpddos.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if failed := m.Failed(); len(failed) > 0 {
		t.Fatalf("replicates failed: %+v", failed)
	}
	for _, rec := range m.Jobs {
		v := rec.Values
		id := fmt.Sprintf("seed %d", rec.Seed)
		if v["tables"] != 33 {
			t.Errorf("%s: %v tables, want 33 for every replicate", id, v["tables"])
		}
		// Figure 3's core claim: the amplifier pool after the publicity
		// window is a fraction of the initial pool. Tiny-scale pools are
		// noisy week to week, so assert the overall collapse, not strict
		// monotonicity.
		if v["pool_first"] <= 0 {
			t.Errorf("%s: no initial amplifier pool (%v)", id, v["pool_first"])
		}
		if v["pool_last"] >= v["pool_first"] {
			t.Errorf("%s: pool did not decline: first %v, last %v",
				id, v["pool_first"], v["pool_last"])
		}
		if v["pool_decline_pct"] < 40 {
			t.Errorf("%s: pool declined only %.1f%%, want >= 40%% after publicity window",
				id, v["pool_decline_pct"])
		}
		if v["hp_events"] <= 0 {
			t.Errorf("%s: honeypot saw no attack events", id)
		}
		if v["hp_precision"] < 0.9 {
			t.Errorf("%s: honeypot precision %.3f, want >= 0.9", id, v["hp_precision"])
		}
		if v["det_precision"] < 0.9 {
			t.Errorf("%s: detector precision %.3f, want >= 0.9", id, v["det_precision"])
		}
		if v["det_recall"] <= 0 {
			t.Errorf("%s: detector recall %.3f, want > 0", id, v["det_recall"])
		}
	}
	// The cross-run spread must cover the replicate metrics (one cell,
	// every metric summarized over all four seeds).
	found := map[string]bool{}
	for _, g := range m.Groups {
		if g.Experiment != "prop" {
			t.Fatalf("unexpected group cell %q", g.Experiment)
		}
		found[g.Metric] = true
		if g.N != 4 && g.Metric != "pool_decline_pct" {
			t.Errorf("metric %s summarized %d replicates, want 4", g.Metric, g.N)
		}
	}
	for _, metric := range []string{"pool_first", "pool_last", "hp_precision", "det_precision", "tables"} {
		if !found[metric] {
			t.Errorf("spread summary missing metric %s (have %v)", metric, found)
		}
	}
}
