// Game wars: §4.3.2's finding that NTP DDoS was substantially a gamer
// phenomenon — Xbox Live, Minecraft, Steam and friends dominate the
// attacked ports, and half the victims are residential lines.
//
//	go run ./examples/gamewars
//
// Uses the booter-service model of §5.2: rival players buy attacks from a
// storefront, and the port mix of what they order is recovered from the
// amplifiers' monitor tables.
package main

import (
	"fmt"
	"os"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/booter"
	"ntpddos/internal/core"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/scan"
	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

func main() {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	src := rng.New(11)

	// Forty harvested amplifiers.
	var amps []netaddr.Addr
	for i := 0; i < 40; i++ {
		addr := netaddr.Addr(0x0a020001 + uint32(i)*256)
		nw.Register(addr, ntpd.New(ntpd.Config{Addr: addr, MonlistEnabled: true,
			Profile: ntpd.Profile{TTL: 64}}))
		amps = append(amps, addr)
	}

	// The storefront and its clientele.
	engine := attack.NewEngine(nw, src, []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	svc := booter.New("quantumstresser", engine, src.Fork("booter"))
	svc.Amplifiers = amps

	customers := []string{"xXsniperXx", "saltyduelist", "minecraftgriefer", "cs_rival", "extortion_biz"}
	for _, c := range customers {
		tier := "bronze"
		if src.Bool(0.3) {
			tier = "silver"
		}
		if err := svc.Subscribe(c, tier, clock.Now()); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	// A week of grudges: orders arrive with the Table 4 port mix and the
	// diurnal rhythm of humans picking fights in the evening.
	var launched int
	for day := 0; day < 7; day++ {
		for i := 0; i < 30; i++ {
			at := clock.Now().Add(time.Duration(attack.SampleStartHour(src))*time.Hour +
				time.Duration(src.IntN(3600))*time.Second)
			customer := customers[src.IntN(len(customers))]
			victim := netaddr.Addr(0xCB007100 + uint32(src.IntN(200))) // 203.0.113.x neighbourhood
			port := attack.SamplePort(src)
			sched.At(at, func(now time.Time) {
				o := svc.PlaceOrder(customer, victim, port, 120+src.IntN(600), now)
				if o.Launched {
					launched++
				}
			})
		}
		sched.RunUntil(clock.Now().Add(24 * time.Hour))
	}
	sched.RunUntil(clock.Now().Add(6 * time.Hour))

	// The measurement side sees none of the storefront — only the tables.
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	survey := &scan.Survey{Prober: prober, Network: nw, Kind: "monlist",
		DstPort: ntp.Port, Duration: time.Minute,
		Payload: ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)}
	analysis := core.AnalyzeSample(survey.RunSample(clock.Now(), amps), prober.Addr)

	ports := stats.NewHistogram()
	for _, v := range analysis.Victims {
		ports.Add(int(v.Port), 1)
	}
	st := svc.Report(3)
	fmt.Printf("storefront: %d orders, %d launched, $%.0f revenue\n\n",
		st.Orders, st.Launched, st.RevenueUSD)
	fmt.Printf("recovered from monitor tables (%d victims):\n", analysis.VictimSet().Len())
	fmt.Printf("%4s %-8s %8s %s\n", "rank", "port", "share", "")
	gameShare := 0.0
	for i, bin := range ports.TopK(10) {
		tag := ""
		if attack.IsGamePort(uint16(bin.Value)) {
			tag = "game"
			gameShare += bin.Fraction
		}
		fmt.Printf("%4d %-8d %7.1f%% %s\n", i+1, bin.Value, bin.Fraction*100, tag)
	}
	fmt.Printf("\ngame-associated share of top-10 attacked ports: %.0f%%\n", gameShare*100)
	fmt.Println("paper: \"a large fraction of NTP DDoS attacks are perpetrated against gamers\"")
}
