// Victimology: the paper's §4 insight — the monlist table *is* the victim
// dataset. Attack a few victims through amplifiers, then recover who was
// hit, on which ports, for how long, purely from a scan of the amplifiers.
//
//	go run ./examples/victimology
package main

import (
	"fmt"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/core"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/scan"
	"ntpddos/internal/vtime"
)

func main() {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil) // no BCP38 anywhere: spoofing works
	src := rng.New(7)

	// Twenty vulnerable daemons with a sprinkling of honest clients.
	var amps []netaddr.Addr
	for i := 0; i < 20; i++ {
		addr := netaddr.Addr(0x0a000101 + uint32(i)*256)
		srv := ntpd.New(ntpd.Config{Addr: addr, MonlistEnabled: true,
			Profile: ntpd.Profile{SystemString: "linux", TTL: 64}})
		for c := 0; c < 2+src.IntN(8); c++ {
			srv.Record(netaddr.Addr(src.Uint32()), ntp.Port, ntp.ModeClient, 4,
				1+int64(src.IntN(20)), clock.Now())
		}
		nw.Register(addr, srv)
		amps = append(amps, addr)
	}

	// Three attacks: a gamer on the Xbox port, a web host on port 80, and
	// a Minecraft server — the §4.3.2 "game wars" pattern.
	engine := attack.NewEngine(nw, src, []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	targets := []struct {
		victim string
		port   uint16
		rate   float64
		dur    time.Duration
	}{
		{"203.0.113.10", 3074, 1.0 / 10, 2 * time.Hour}, // Xbox Live
		{"198.18.5.77", 80, 2, 30 * time.Minute},        // web host
		{"198.18.9.9", 25565, 0.5, 1 * time.Hour},       // Minecraft
	}
	for i, tgt := range targets {
		engine.Launch(attack.Campaign{
			Victim: netaddr.MustParseAddr(tgt.victim), Port: tgt.port,
			Start:       clock.Now().Add(time.Duration(1+i) * time.Hour),
			Duration:    tgt.dur,
			TriggerRate: tgt.rate,
			Amplifiers:  amps[i*5 : i*5+8],
		})
	}
	sched.RunUntil(clock.Now().Add(8 * time.Hour))

	// The measurement: one monlist probe per amplifier, from one source.
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	survey := &scan.Survey{Prober: prober, Network: nw, Kind: "monlist",
		DstPort: ntp.Port, Duration: time.Minute,
		Payload: ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)}
	sample := survey.RunSample(clock.Now(), amps)

	// The analysis: rebuild tables, classify entries, derive attack timing.
	analysis := core.AnalyzeSample(sample, prober.Addr)
	fmt.Printf("scanned %d amplifiers; %d responded\n\n", len(amps), len(analysis.Amps))
	fmt.Printf("%-16s %6s %9s %12s %-10s\n", "victim", "port", "packets", "duration", "amplifiers")

	type agg struct {
		packets int64
		dur     time.Duration
		amps    int
		port    uint16
	}
	perVictim := map[netaddr.Addr]*agg{}
	for _, v := range analysis.Victims {
		a, ok := perVictim[v.Victim]
		if !ok {
			a = &agg{port: v.Port}
			perVictim[v.Victim] = a
		}
		a.packets += v.Count
		if v.Duration > a.dur {
			a.dur = v.Duration
		}
		a.amps++
	}
	for _, v := range analysis.VictimSet().Sorted() {
		a := perVictim[v]
		game := ""
		if attack.IsGamePort(a.port) {
			game = "  <- game port"
		}
		fmt.Printf("%-16s %6d %9d %12s %-10d%s\n", v, a.port, a.packets, a.dur.Round(time.Minute), a.amps, game)
	}
	fmt.Printf("\nscanner/low-volume entries filtered out: %d; normal clients: %d\n",
		analysis.ScannerEntries, analysis.NonVictimEntries)
	fmt.Println("everything above was recovered from monlist replies alone — no victim-side vantage needed")
}
