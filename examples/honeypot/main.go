// Honeypot: a ten-sensor amplification-honeypot fleet watching the attack
// fabric from inside the amplifier population, the way AmpPot did. Sensors
// sit on routed-but-unpopulated addresses, answer monlist like a vulnerable
// ntpd (with rate limiting), and turn the spoofed triggers they receive
// into attack events — which this example validates against the launched
// campaigns the simulator actually knows about.
//
//	go run ./examples/honeypot
package main

import (
	"fmt"
	"os"

	"ntpddos/internal/scenario"
)

func main() {
	cfg := scenario.TestConfig()
	cfg.HoneypotSensors = 10

	fmt.Fprintln(os.Stderr, "honeypot: running the measurement window with a 10-sensor fleet...")
	res := scenario.Run(cfg)
	hp := res.Honeypot

	fmt.Printf("ground truth: %d campaigns launched against the fleet's view\n", hp.Validation.Campaigns)
	fmt.Printf("detected:     %d attack events, matching %d campaigns (%.0f%% detection)\n",
		len(hp.Events), hp.Validation.Detected, 100*hp.Validation.DetectionRate())
	fmt.Printf("false alarms: %d events with no matching campaign\n", len(hp.Validation.UnmatchedEvents))
	fmt.Printf("scanners:     %d sources classified scanner-like and suppressed\n", len(hp.ScannerSources))
	fmt.Printf("fleet load:   %d queries, %d replies sent, %d rate-limited\n\n",
		hp.QueriesSeen, hp.RepliesSent, hp.RepliesSuppressed)

	fmt.Printf("%-5s %-18s %-6s %9s %8s %7s\n", "event", "victim", "port", "duration", "packets", "sensors")
	for i, e := range hp.Events {
		fmt.Printf("%-5d %-18s %-6d %8.0fm %8d %7d\n",
			i+1, e.Victim, e.Port, e.Duration().Minutes(), e.Packets, len(e.Sensors))
	}

	fmt.Println("\nconvergence: fraction of campaigns seen by the first k sensors")
	for k, frac := range hp.Convergence {
		fmt.Printf("  k=%-3d %5.1f%%\n", k+1, 100*frac)
	}
	fmt.Println("a handful of sensors already sees most campaigns — attackers spray their amplifier lists (cf. AmpPot, RAID 2015)")
}
