// Amplification: the §3 mechanics on a three-host fabric — how one 84-byte
// spoofed packet turns into kilobytes (or gigabytes) at the victim.
//
//	go run ./examples/amplification
//
// Builds a vulnerable daemon, measures its bandwidth amplification factor
// unprimed, primed (600-entry table), and with the §3.4 mega-amplifier
// replay flaw, using real encoded packets over the simulated fabric.
package main

import (
	"fmt"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

// measure sends one monlist probe at the server and returns what came back.
func measure(cfg ntpd.Config, prime int) (packets int64, bytes int64) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)

	srv := ntpd.New(cfg)
	nw.Register(srv.Addr(), srv)
	for i := 0; i < prime; i++ {
		srv.Record(netaddr.Addr(0x0a000000+uint32(i)), ntp.Port, ntp.ModeClient, 4, 1, clock.Now())
	}

	victim := netaddr.MustParseAddr("203.0.113.7")
	nw.Register(victim, netsim.HostFunc(func(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
		packets += dg.Rep
		bytes += int64(dg.OnWire()) * dg.Rep
	}))

	// One spoofed trigger from a bot: source forged to the victim.
	bot := netaddr.MustParseAddr("192.0.2.50")
	nw.SendSpoofed(bot, victim, 80, srv.Addr(), ntp.Port, netsim.TTLWindows,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	return packets, bytes
}

func main() {
	base := ntpd.Config{
		Addr:           netaddr.MustParseAddr("198.51.100.10"),
		MonlistEnabled: true,
		Profile:        ntpd.Profile{SystemString: "linux", TTL: 64},
	}

	fmt.Printf("one spoofed monlist trigger costs the attacker %d on-wire bytes\n\n", packet.MinOnWire)
	fmt.Printf("%-28s %10s %12s %10s\n", "server state", "packets", "wire_bytes", "BAF")

	show := func(name string, cfg ntpd.Config, prime int) {
		p, b := measure(cfg, prime)
		fmt.Printf("%-28s %10d %12d %10.1f\n", name, p, b, float64(b)/float64(packet.MinOnWire))
	}

	show("fresh table (no clients)", base, 0)
	show("typical table (6 clients)", base, 6)
	show("primed table (600 clients)", base, 600)

	mega := base
	mega.MegaAmp = true
	mega.MegaRepeats = 100000
	mega.MegaEvents = 50
	mega.MegaInterval = time.Second
	show("mega amplifier (§3.4 flaw)", mega, 600)

	patched := base
	patched.MonlistEnabled = false
	show("patched (restrict noquery)", patched, 600)

	fmt.Println("\npaper: typical BAF ≈4x, quartile ≥15x, primed ≈600x; megas returned gigabytes")
}
