// Quickstart: run the whole reproduction at test scale and print the
// headline results — the rise-and-decline story in four tables.
//
//	go run ./examples/quickstart
//
// Takes about a minute. For the full benchmark-scale world use
// cmd/ntpsim; for a single experiment use cmd/ntpsim -experiment <id>.
package main

import (
	"fmt"
	"os"

	"ntpddos"
)

func main() {
	fmt.Fprintln(os.Stderr, "quickstart: simulating September 2013 through May 2014 at test scale...")
	sim := ntpddos.Run(ntpddos.QuickConfig())

	// The rise: NTP grows three orders of magnitude to ~1% of all traffic.
	fmt.Println(sim.Figure1().Render())

	// The weapon: the monlist amplifier pool and its BAF distribution.
	fmt.Println(sim.Figure4b().Render())

	// The victims: who gets attacked, on which ports.
	fmt.Println(sim.Table4().Render())

	// The decline: remediation drains the pool by >90% in ten weeks.
	fmt.Println(sim.RemediationReport().Render())

	fmt.Println("All 31 experiments: sim.All(), or go run ./cmd/ntpsim")
}
