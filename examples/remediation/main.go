// Remediation: the §6 counterfactual — what the amplifier pool looks like
// with and without the community response, and why the version and DNS
// pools barely moved while monlist collapsed.
//
//	go run ./examples/remediation
//
// Runs the simulation twice (response on / response off), so expect a
// couple of minutes.
package main

import (
	"fmt"
	"os"

	"ntpddos/internal/core"
	"ntpddos/internal/scenario"
)

func main() {
	cfg := scenario.TestConfig()
	cfg.FabricAttackDivisor = 100 // pools are the point; thin the attack fabric

	fmt.Fprintln(os.Stderr, "remediation: running the world WITH the community response...")
	with := scenario.Run(cfg)

	cfg.NoRemediation = true
	fmt.Fprintln(os.Stderr, "remediation: running the counterfactual WITHOUT it...")
	without := scenario.Run(cfg)

	fmt.Printf("%-6s %22s %22s\n", "week", "monlist_with_response", "monlist_without")
	for i := range with.MonlistPools {
		fmt.Printf("%-6d %22d %22d\n", i, with.MonlistPools[i].Len(), without.MonlistPools[i].Len())
	}

	lv := core.RemediationByLevel(with.MonlistAnalyses, with.Registries)
	fmt.Printf("\nwith the response, reductions by level: IP %.0f%%, /24 %.0f%%, block %.0f%%, AS %.0f%%\n",
		lv.IPPct, lv.Slash24Pct, lv.BlockPct, lv.ASPct)
	fmt.Println("paper: 92% / 72% / 59% / 55% — eliminating a vulnerability from every corner of a network is far harder than from most hosts")

	mon := core.PoolRelativeSeries(poolSizes(with))
	ver := core.PoolRelativeSeries(with.VersionPools)
	fmt.Printf("\nfinal pool sizes relative to peak: monlist %.0f%%, version %.0f%% (paper: ~8%% vs ~81%%)\n",
		mon[len(mon)-1], ver[len(ver)-1])
	fmt.Println("the version command pool was left alone: same servers, different knob, no publicity")
}

func poolSizes(r *scenario.Results) []int {
	out := make([]int, len(r.MonlistPools))
	for i, p := range r.MonlistPools {
		out[i] = p.Len()
	}
	return out
}
