package ntpddos

import (
	"time"

	"ntpddos/internal/detect"
	"ntpddos/internal/timeattack"
	"ntpddos/internal/timesync"
)

// TimeSync exposes the disciplined-client fleet's end-of-run summary (nil
// when Config.TimeSync is disabled).
func (s *Simulation) TimeSync() *timesync.Summary { return s.res.TimeSync }

// TimeAttack exposes the time-integrity attack plane's accounting (nil when
// Config.TimeAttackShare is zero).
func (s *Simulation) TimeAttack() *timeattack.Summary { return s.res.TimeAttack }

// TimeIntegrity exposes the drift-aware integrity lane's verdicts (nil when
// Config.Detector is unset or the plane is disabled).
func (s *Simulation) TimeIntegrity() *detect.TimeIntegritySummary { return s.res.TimeIntegrity }

// TimeIntegrityEval exposes the lane's precision/recall against the attack
// plane's ground-truth target set (nil unless both the detector and the
// attack plane ran).
func (s *Simulation) TimeIntegrityEval() *detect.Eval { return s.res.TimeIntegrityEval }

// TimeSyncReport summarizes the sync-discipline plane: fleet convergence,
// clock-event counters, kiss-o'-death handling, and (when armed) the attack
// plane's per-model target counts and forgery volumes.
//
// The table is NOT part of All() — the classic digest contract requires
// every All() table to be independent of the plane — but SweepRunner
// appends it to the per-job digest whenever the plane is enabled, so sweeps
// and the golden corpus pin the discipline's behaviour too. It depends only
// on Config.TimeSync/TimeAttackShare, never on Config.Detector, keeping the
// detector-on/off digest identity intact.
func (s *Simulation) TimeSyncReport() *Table {
	t := &Table{ID: "timesync", Title: "Sync discipline: fleet convergence and clock events",
		Headers: []string{"metric", "value"}}
	sum := s.res.TimeSync
	if sum == nil {
		t.AddNote("disciplined-client plane disabled (Config.TimeSync.Clients = 0)")
		return t
	}
	t.AddRowf("clients", sum.Clients)
	t.AddRowf("synced (|err| < step threshold)", sum.Synced)
	t.AddRowf("stopped (KoD DENY/RSTR)", sum.Stopped)
	t.AddRowf("panicked", sum.Panicked)
	t.AddRowf("leap armed", sum.LeapArmed)
	t.AddRowf("polls", sum.Polls)
	t.AddRowf("replies", sum.Replies)
	t.AddRowf("samples", sum.Samples)
	t.AddRowf("rejected origin", sum.RejectedOrigin)
	t.AddRowf("insecure accepts", sum.InsecureAccepts)
	t.AddRowf("steps", sum.Steps)
	t.AddRowf("slews", sum.Slews)
	t.AddRowf("no-majority holds", sum.NoMajority)
	t.AddRowf("kisses seen", sum.KissSeen)
	t.AddRowf("KoD RATE honored", sum.KodRate)
	t.AddRowf("KoD DENY/RSTR honored", sum.KodDeny)
	t.AddRowf("KoD rejected (bad origin)", sum.KodRejected)
	t.AddRowf("max |clock err| (ms)", float64(sum.MaxAbsErr)/float64(time.Millisecond))
	t.AddRowf("mean |clock err| (ms)", float64(sum.MeanAbsErr)/float64(time.Millisecond))
	if at := s.res.TimeAttack; at != nil {
		t.AddNote("attack plane: %d targets (%v); %d forged replies, %d forged kisses, %d delayed, %d rewritten",
			at.Targets, at.ByModel, at.ForgedReplies, at.ForgedKisses, at.Delayed, at.Rewritten)
	}
	return t
}

// TimeIntegrityReport scores the drift-aware integrity lane against the
// attack plane's ground truth. Like DetectReport it is outside All() and
// outside the sweep digest: it depends on Config.Detector.
func (s *Simulation) TimeIntegrityReport() *Table {
	t := &Table{ID: "timeintegrity", Title: "Time-integrity detection: flagged clients vs attack ground truth",
		Headers: []string{"metric", "value"}}
	sum := s.res.TimeIntegrity
	if sum == nil {
		t.AddNote("integrity lane disabled (needs Config.Detector and Config.TimeSync)")
		return t
	}
	t.AddRowf("clients monitored", sum.ClientsMonitored)
	t.AddRowf("flagged", sum.Flagged.Len())
	t.AddRowf("residual alarms", sum.ResidualAlarms)
	t.AddRowf("KoD storms", sum.KissStorms)
	t.AddRowf("quorum-loss alarms", sum.QuorumLossAlarms)
	t.AddRowf("leap alarms", sum.LeapAlarms)
	t.AddRowf("panic alarms", sum.PanicAlarms)
	if e := s.res.TimeIntegrityEval; e != nil {
		t.AddNote("vs ground truth: %d attacked, %d flagged, %d true positives — precision %.3f recall %.3f",
			e.Truth, e.Detected, e.TruePositives, e.Precision, e.Recall)
	}
	return t
}
