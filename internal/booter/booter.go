// Package booter models the DDoS-as-a-service ecosystem of §5.2: "booter"
// (stresser) storefronts that sell attacks by duration and intensity,
// advertised on underground forums. The humans who want a victim offline —
// a rival gamer, an extortionist — buy from the service; the service's
// botmaster drives spoofing-capable bots; the bots trigger harvested
// amplifiers. The paper's victimology (game ports, individuals, repeat
// attacks) is the visible output of exactly this market.
//
// The model is intentionally small: tiers with per-order caps, an order
// book, and a dispatcher that turns paid orders into attack.Campaigns. It
// reproduces the economics the paper cites (Karami & McCoy): cheap
// subscriptions, short default attacks, concurrency limits per customer.
package booter

import (
	"fmt"
	"sort"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/rng"
)

// Metrics is the storefront's live instrumentation, labeled by service name
// so several storefronts share one registry. Revenue is a gauge (it only
// grows, but cents make it non-integral and a counter's monotonic contract
// is better reserved for event counts).
type Metrics struct {
	Orders     *metrics.CounterVec // by service, outcome: launched|rejected
	Subs       *metrics.CounterVec // subscriptions sold, by service
	RevenueUSD *metrics.GaugeVec   // cumulative revenue, by service
}

// NewMetrics registers the booter family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Orders: r.NewCounterVec("ntpsim_booter_orders_total",
			"Attack orders placed, by storefront and outcome.",
			"service", "outcome"),
		Subs: r.NewCounterVec("ntpsim_booter_subscriptions_total",
			"Subscriptions sold, by storefront.", "service"),
		RevenueUSD: r.NewGaugeVec("ntpsim_booter_revenue_usd",
			"Cumulative storefront revenue in USD.", "service"),
	}
}

// Tier is a subscription level.
type Tier struct {
	Name string
	// PriceUSD per month — bookkeeping only, but it makes revenue reports
	// possible (the "motivated by money" discussion of §5.2).
	PriceUSD float64
	// MaxSeconds is the longest single attack the tier allows.
	MaxSeconds int
	// Amplifiers is how many harvested amplifiers the service aims at one
	// victim for this tier.
	Amplifiers int
	// TriggerRate is the spoofed packets/second per amplifier.
	TriggerRate float64
	// Concurrent is the per-customer concurrent-attack cap.
	Concurrent int
}

// DefaultTiers mirror the 2014 storefront menus: a few dollars buys
// hundreds of seconds of "stress testing".
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "bronze", PriceUSD: 5, MaxSeconds: 300, Amplifiers: 4, TriggerRate: 10, Concurrent: 1},
		{Name: "silver", PriceUSD: 15, MaxSeconds: 1200, Amplifiers: 12, TriggerRate: 40, Concurrent: 2},
		{Name: "gold", PriceUSD: 40, MaxSeconds: 7200, Amplifiers: 40, TriggerRate: 150, Concurrent: 4},
	}
}

// Order is one purchased attack.
type Order struct {
	Customer string
	Victim   netaddr.Addr
	Port     uint16
	Seconds  int
	Placed   time.Time
	Tier     string

	// Launched is set once the dispatcher has scheduled the campaign.
	Launched bool
	// Rejected explains a refused order ("" if accepted).
	Rejected string
}

// Service is a storefront bound to an attack engine.
type Service struct {
	Name   string
	Tiers  []Tier
	Engine *attack.Engine
	// Amplifiers is the service's harvested list (refreshed by its scanning
	// operation; stale entries silently fail, as in reality).
	Amplifiers []netaddr.Addr

	src        *rng.Source
	customers  map[string]*customer
	orders     []*Order
	RevenueUSD float64

	mLaunched *metrics.Counter
	mRejected *metrics.Counter
	mSubs     *metrics.Counter
	mRevenue  *metrics.Gauge
}

// SetMetrics attaches live instrumentation under this storefront's name.
func (s *Service) SetMetrics(m *Metrics) {
	if m == nil {
		s.mLaunched, s.mRejected, s.mSubs, s.mRevenue = nil, nil, nil, nil
		return
	}
	s.mLaunched = m.Orders.With(s.Name, "launched")
	s.mRejected = m.Orders.With(s.Name, "rejected")
	s.mSubs = m.Subs.With(s.Name)
	s.mRevenue = m.RevenueUSD.With(s.Name)
}

type customer struct {
	tier    Tier
	expires time.Time
	active  int
}

// New creates a storefront.
func New(name string, engine *attack.Engine, src *rng.Source) *Service {
	return &Service{
		Name: name, Tiers: DefaultTiers(), Engine: engine,
		src: src, customers: make(map[string]*customer),
	}
}

// Subscribe signs a customer up to a tier for a month and books revenue.
func (s *Service) Subscribe(name, tierName string, now time.Time) error {
	for _, t := range s.Tiers {
		if t.Name == tierName {
			s.customers[name] = &customer{tier: t, expires: now.AddDate(0, 1, 0)}
			s.RevenueUSD += t.PriceUSD
			s.mSubs.Inc()
			s.mRevenue.Set(s.RevenueUSD)
			return nil
		}
	}
	return fmt.Errorf("booter: no tier %q", tierName)
}

// PlaceOrder books and (if the customer is in good standing) dispatches an
// attack. Orders exceeding the tier's duration are clamped, not refused —
// storefronts keep the money.
func (s *Service) PlaceOrder(customerName string, victim netaddr.Addr, port uint16, seconds int, now time.Time) *Order {
	o := &Order{Customer: customerName, Victim: victim, Port: port,
		Seconds: seconds, Placed: now}
	s.orders = append(s.orders, o)
	c, ok := s.customers[customerName]
	switch {
	case !ok:
		o.Rejected = "no subscription"
	case now.After(c.expires):
		o.Rejected = "subscription expired"
	case c.active >= c.tier.Concurrent:
		o.Rejected = "concurrency limit"
	case len(s.Amplifiers) == 0:
		o.Rejected = "no amplifiers harvested"
	}
	if o.Rejected != "" {
		s.mRejected.Inc()
		return o
	}
	if o.Seconds > c.tier.MaxSeconds {
		o.Seconds = c.tier.MaxSeconds
	}
	o.Tier = c.tier.Name
	amps := c.tier.Amplifiers
	if amps > len(s.Amplifiers) {
		amps = len(s.Amplifiers)
	}
	chosen := make([]netaddr.Addr, amps)
	perm := s.src.Perm(len(s.Amplifiers))
	for i := 0; i < amps; i++ {
		chosen[i] = s.Amplifiers[perm[i]]
	}
	c.active++
	dur := time.Duration(o.Seconds) * time.Second
	s.Engine.Launch(attack.Campaign{
		Victim: victim, Port: port,
		Start: now.Add(5 * time.Second), Duration: dur,
		TriggerRate: c.tier.TriggerRate, Amplifiers: chosen,
	})
	// Release the concurrency slot when the attack ends.
	s.Engine.Network.Scheduler().At(now.Add(dur+10*time.Second), func(time.Time) {
		c.active--
	})
	o.Launched = true
	s.mLaunched.Inc()
	return o
}

// Stats summarise the storefront's books.
type Stats struct {
	Orders     int
	Launched   int
	Rejected   int
	RevenueUSD float64
	// TopVictims are the most-ordered targets — repeat gamer feuds show up
	// here, the paper's "rivals or for financial gain" pattern.
	TopVictims []VictimOrders
}

// VictimOrders counts orders against one victim.
type VictimOrders struct {
	Victim netaddr.Addr
	Orders int
}

// Report computes the storefront's stats.
func (s *Service) Report(topK int) Stats {
	st := Stats{Orders: len(s.orders), RevenueUSD: s.RevenueUSD}
	per := map[netaddr.Addr]int{}
	for _, o := range s.orders {
		if o.Launched {
			st.Launched++
		}
		if o.Rejected != "" {
			st.Rejected++
		}
		per[o.Victim]++
	}
	for v, n := range per {
		st.TopVictims = append(st.TopVictims, VictimOrders{Victim: v, Orders: n})
	}
	sort.Slice(st.TopVictims, func(i, j int) bool {
		if st.TopVictims[i].Orders != st.TopVictims[j].Orders {
			return st.TopVictims[i].Orders > st.TopVictims[j].Orders
		}
		return st.TopVictims[i].Victim < st.TopVictims[j].Victim
	})
	if topK < len(st.TopVictims) {
		st.TopVictims = st.TopVictims[:topK]
	}
	return st
}
