package booter

import (
	"testing"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

type fixture struct {
	nw     *netsim.Network
	sched  *vtime.Scheduler
	svc    *Service
	victim netaddr.Addr
	got    int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	f := &fixture{nw: nw, sched: sched, victim: netaddr.MustParseAddr("203.0.113.9")}

	var amps []netaddr.Addr
	for i := 0; i < 20; i++ {
		addr := netaddr.Addr(0x0a010001 + uint32(i)*256)
		srv := ntpd.New(ntpd.Config{Addr: addr, MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
		nw.Register(addr, srv)
		amps = append(amps, addr)
	}
	nw.Register(f.victim, netsim.HostFunc(func(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
		f.got += dg.Rep
	}))
	engine := attack.NewEngine(nw, rng.New(2), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	f.svc = New("quantumbooter", engine, rng.New(3))
	f.svc.Amplifiers = amps
	return f
}

func TestSubscribeAndAttack(t *testing.T) {
	f := newFixture(t)
	now := f.nw.Now()
	if err := f.svc.Subscribe("rivalgamer", "silver", now); err != nil {
		t.Fatal(err)
	}
	o := f.svc.PlaceOrder("rivalgamer", f.victim, 3074, 600, now)
	if !o.Launched || o.Rejected != "" {
		t.Fatalf("order = %+v", o)
	}
	f.sched.RunUntil(now.Add(time.Hour))
	if f.got == 0 {
		t.Fatal("victim received nothing")
	}
	st := f.svc.Report(5)
	if st.Launched != 1 || st.RevenueUSD != 15 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOrderWithoutSubscriptionRejected(t *testing.T) {
	f := newFixture(t)
	o := f.svc.PlaceOrder("freeloader", f.victim, 80, 60, f.nw.Now())
	if o.Launched || o.Rejected != "no subscription" {
		t.Fatalf("order = %+v", o)
	}
}

func TestExpiredSubscriptionRejected(t *testing.T) {
	f := newFixture(t)
	now := f.nw.Now()
	f.svc.Subscribe("lapsed", "bronze", now)
	f.sched.RunUntil(now.Add(32 * 24 * time.Hour))
	o := f.svc.PlaceOrder("lapsed", f.victim, 80, 60, f.nw.Now())
	if o.Launched || o.Rejected != "subscription expired" {
		t.Fatalf("order = %+v", o)
	}
}

func TestDurationClampedToTier(t *testing.T) {
	f := newFixture(t)
	now := f.nw.Now()
	f.svc.Subscribe("impatient", "bronze", now)
	o := f.svc.PlaceOrder("impatient", f.victim, 80, 99999, now)
	if !o.Launched || o.Seconds != 300 {
		t.Fatalf("order = %+v, want clamped to 300s", o)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	f := newFixture(t)
	now := f.nw.Now()
	f.svc.Subscribe("spammer", "bronze", now) // Concurrent: 1
	o1 := f.svc.PlaceOrder("spammer", f.victim, 80, 300, now)
	o2 := f.svc.PlaceOrder("spammer", f.victim+1, 80, 300, now)
	if !o1.Launched {
		t.Fatalf("first order = %+v", o1)
	}
	if o2.Launched || o2.Rejected != "concurrency limit" {
		t.Fatalf("second order = %+v", o2)
	}
	// After the first attack ends, the slot frees up.
	f.sched.RunUntil(now.Add(time.Hour))
	o3 := f.svc.PlaceOrder("spammer", f.victim+2, 80, 60, f.nw.Now())
	if !o3.Launched {
		t.Fatalf("post-completion order = %+v", o3)
	}
}

func TestUnknownTier(t *testing.T) {
	f := newFixture(t)
	if err := f.svc.Subscribe("x", "platinum", f.nw.Now()); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

func TestNoAmplifiersRejected(t *testing.T) {
	f := newFixture(t)
	f.svc.Amplifiers = nil
	now := f.nw.Now()
	f.svc.Subscribe("early", "gold", now)
	o := f.svc.PlaceOrder("early", f.victim, 80, 60, now)
	if o.Launched || o.Rejected != "no amplifiers harvested" {
		t.Fatalf("order = %+v", o)
	}
}

func TestTopVictimsRanking(t *testing.T) {
	f := newFixture(t)
	now := f.nw.Now()
	f.svc.Subscribe("feud", "gold", now) // Concurrent: 4
	for i := 0; i < 3; i++ {
		f.svc.PlaceOrder("feud", f.victim, 3074, 30, now.Add(time.Duration(i)*time.Minute))
		f.sched.RunUntil(now.Add(time.Duration(i+1) * time.Minute))
	}
	f.svc.PlaceOrder("feud", f.victim+9, 80, 30, f.nw.Now())
	st := f.svc.Report(2)
	if len(st.TopVictims) != 2 || st.TopVictims[0].Victim != f.victim || st.TopVictims[0].Orders != 3 {
		t.Fatalf("top victims = %+v", st.TopVictims)
	}
}
