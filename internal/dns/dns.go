// Package dns implements a minimal DNS wire format and an open-resolver
// host. The paper compares NTP monlist remediation against the open DNS
// resolver pool (Figure 10: the DNS pool barely shrank over a year while
// monlist amplifiers dropped 92%), and computes the overlap between the two
// amplifier pools (§6.2) — both need DNS resolvers on the fabric.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/packet"
)

// Port is the DNS UDP port.
const Port = 53

// Query/record types used by the simulation.
const (
	TypeA   = 1
	TypeTXT = 16
	TypeANY = 255
)

// Header flag bits.
const (
	flagResponse  = 1 << 15
	flagRecursion = 1 << 8 // RD
	flagRecAvail  = 1 << 7 // RA
)

// Message is a DNS message restricted to the single-question, answer-only
// shapes amplification abuse actually uses.
type Message struct {
	ID        uint16
	Response  bool
	Recursion bool
	RecAvail  bool
	Question  Question
	Answers   []Record
}

// Question is the query section.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Record is a resource record with opaque RDATA.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// ErrMalformed reports an undecodable message.
var ErrMalformed = errors.New("dns: malformed message")

// appendName encodes a dotted name in DNS label format.
func appendName(b []byte, name string) ([]byte, error) {
	if name == "" || name == "." {
		return append(b, 0), nil
	}
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) == 0 || len(label) > 63 {
			return b, fmt.Errorf("dns: bad label %q", label)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// decodeName reads a label-format name (no compression pointers; our
// encoder never emits them).
func decodeName(data []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(data) {
			return "", 0, ErrMalformed
		}
		l := int(data[off])
		off++
		if l == 0 {
			break
		}
		if l > 63 || off+l > len(data) {
			return "", 0, ErrMalformed
		}
		labels = append(labels, string(data[off:off+l]))
		off += l
	}
	return strings.Join(labels, "."), off, nil
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	b := binary.BigEndian.AppendUint16(nil, m.ID)
	var flags uint16
	if m.Response {
		flags |= flagResponse
	}
	if m.Recursion {
		flags |= flagRecursion
	}
	if m.RecAvail {
		flags |= flagRecAvail
	}
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1) // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, 0) // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0) // ARCOUNT
	var err error
	if b, err = appendName(b, m.Question.Name); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, m.Question.Type)
	b = binary.BigEndian.AppendUint16(b, m.Question.Class)
	for _, r := range m.Answers {
		if b, err = appendName(b, r.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, r.Type)
		b = binary.BigEndian.AppendUint16(b, r.Class)
		b = binary.BigEndian.AppendUint32(b, r.TTL)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.Data)))
		b = append(b, r.Data...)
	}
	return b, nil
}

// Decode parses a message.
func Decode(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrMalformed
	}
	m := &Message{ID: binary.BigEndian.Uint16(data)}
	flags := binary.BigEndian.Uint16(data[2:])
	m.Response = flags&flagResponse != 0
	m.Recursion = flags&flagRecursion != 0
	m.RecAvail = flags&flagRecAvail != 0
	qd := binary.BigEndian.Uint16(data[4:])
	an := binary.BigEndian.Uint16(data[6:])
	if qd != 1 {
		return nil, fmt.Errorf("%w: qdcount %d", ErrMalformed, qd)
	}
	name, off, err := decodeName(data, 12)
	if err != nil {
		return nil, err
	}
	if off+4 > len(data) {
		return nil, ErrMalformed
	}
	m.Question = Question{Name: name,
		Type:  binary.BigEndian.Uint16(data[off:]),
		Class: binary.BigEndian.Uint16(data[off+2:])}
	off += 4
	for i := 0; i < int(an); i++ {
		var r Record
		r.Name, off, err = decodeName(data, off)
		if err != nil {
			return nil, err
		}
		if off+10 > len(data) {
			return nil, ErrMalformed
		}
		r.Type = binary.BigEndian.Uint16(data[off:])
		r.Class = binary.BigEndian.Uint16(data[off+2:])
		r.TTL = binary.BigEndian.Uint32(data[off+4:])
		rdlen := int(binary.BigEndian.Uint16(data[off+8:]))
		off += 10
		if off+rdlen > len(data) {
			return nil, ErrMalformed
		}
		r.Data = data[off : off+rdlen]
		off += rdlen
		m.Answers = append(m.Answers, r)
	}
	return m, nil
}

// NewQuery builds a recursive query for name/type.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{ID: id, Recursion: true,
		Question: Question{Name: name, Type: qtype, Class: 1}}
}

// Resolver is a simulated DNS server host. Open resolvers answer recursive
// queries from anyone — the misconfiguration behind DNS amplification.
type Resolver struct {
	Addr netaddr.Addr
	// Open resolvers answer anyone; closed ones only answer their own AS
	// (we simply drop everything when false).
	Open bool
	// AmpPayload is how many bytes of answer RDATA an ANY query returns;
	// typical abused zones yield 2–4 KB. A/TXT queries return less.
	AmpPayload int

	QueriesSeen int64
	BytesSent   int64
}

// NewResolver builds a resolver with a typical ~3KB ANY amplification.
func NewResolver(addr netaddr.Addr, open bool) *Resolver {
	return &Resolver{Addr: addr, Open: open, AmpPayload: 3000}
}

// HandlePacket implements netsim.Host.
func (r *Resolver) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	if dg.UDP.DstPort != Port {
		return
	}
	q, err := Decode(dg.Payload)
	if err != nil || q.Response {
		return
	}
	r.QueriesSeen += dg.Rep
	if !r.Open {
		return
	}
	resp := &Message{ID: q.ID, Response: true, Recursion: q.Recursion, RecAvail: true,
		Question: q.Question}
	switch q.Question.Type {
	case TypeANY:
		// Several fat TXT records, fragment-sized as real abused zones are.
		remaining := r.AmpPayload
		for remaining > 0 {
			n := 255
			if remaining < n {
				n = remaining
			}
			resp.Answers = append(resp.Answers, Record{
				Name: q.Question.Name, Type: TypeTXT, Class: 1, TTL: 3600,
				Data: make([]byte, n),
			})
			remaining -= n
		}
	case TypeA:
		resp.Answers = []Record{{Name: q.Question.Name, Type: TypeA, Class: 1,
			TTL: 3600, Data: []byte{93, 184, 216, 34}}}
	default:
		resp.Answers = []Record{{Name: q.Question.Name, Type: TypeTXT, Class: 1,
			TTL: 3600, Data: []byte("v=spf1 -all")}}
	}
	raw, err := resp.Encode()
	if err != nil {
		return
	}
	// UDP DNS truncates at ~4096 with EDNS; our ANY responses stay below.
	out := packet.NewDatagram(r.Addr, Port, dg.IP.Src, dg.UDP.SrcPort, raw)
	out.Rep = dg.Rep
	if nw.SendFrom(r.Addr, out) {
		r.BytesSent += int64(out.OnWire()) * out.Rep
	}
}
