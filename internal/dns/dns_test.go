package dns

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func TestMessageRoundTrip(t *testing.T) {
	m := NewQuery(0x1234, "example.com", TypeANY)
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.Recursion {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Question.Name != "example.com" || got.Question.Type != TypeANY || got.Question.Class != 1 {
		t.Fatalf("question mismatch: %+v", got.Question)
	}
}

func TestResponseRoundTripWithAnswers(t *testing.T) {
	m := &Message{ID: 9, Response: true, RecAvail: true,
		Question: Question{Name: "big.zone", Type: TypeANY, Class: 1},
		Answers: []Record{
			{Name: "big.zone", Type: TypeTXT, Class: 1, TTL: 3600, Data: []byte("hello")},
			{Name: "big.zone", Type: TypeA, Class: 1, TTL: 60, Data: []byte{1, 2, 3, 4}},
		}}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 || string(got.Answers[0].Data) != "hello" ||
		got.Answers[1].Type != TypeA {
		t.Fatalf("answers mismatch: %+v", got.Answers)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 12)} {
		if _, err := Decode(b); err == nil && b == nil {
			t.Fatal("nil decoded")
		}
	}
	// A header claiming a question but providing none.
	bad := make([]byte, 12)
	bad[5] = 1 // QDCOUNT=1 but no question bytes
	bad[12-1] = 0
	if _, err := Decode(bad[:12]); err == nil {
		t.Fatal("truncated question accepted")
	}
}

func TestEncodeRejectsBadLabels(t *testing.T) {
	m := NewQuery(1, "bad..name", TypeA)
	if _, err := m.Encode(); err == nil {
		t.Fatal("empty label accepted")
	}
}

func harness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

// collector deep-copies delivered datagrams: the fabric recycles the struct
// and payload buffer as soon as HandlePacket returns.
type collector struct{ packets []*packet.Datagram }

func (c *collector) HandlePacket(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
	cp := *dg
	cp.Payload = append([]byte(nil), dg.Payload...)
	c.packets = append(c.packets, &cp)
}

func TestOpenResolverAmplifies(t *testing.T) {
	nw, sched := harness()
	res := NewResolver(netaddr.MustParseAddr("10.0.0.53"), true)
	nw.Register(res.Addr, res)
	victim := netaddr.MustParseAddr("203.0.113.1")
	col := &collector{}
	nw.Register(victim, col)

	q, _ := NewQuery(7, "abused.zone", TypeANY).Encode()
	bot := netaddr.MustParseAddr("192.0.2.1")
	nw.SendSpoofed(bot, victim, 80, res.Addr, Port, netsim.TTLWindows, q)
	sched.Drain()

	if len(col.packets) != 1 {
		t.Fatalf("victim got %d packets", len(col.packets))
	}
	queryWire := packet.OnWireBytesForUDPPayload(len(q))
	respWire := col.packets[0].OnWire()
	baf := float64(respWire) / float64(queryWire)
	if baf < 10 {
		t.Fatalf("ANY amplification = %.1fx, want >= 10x", baf)
	}
	got, err := Decode(col.packets[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.ID != 7 {
		t.Fatalf("response header %+v", got)
	}
}

func TestClosedResolverSilent(t *testing.T) {
	nw, sched := harness()
	res := NewResolver(netaddr.MustParseAddr("10.0.0.53"), false)
	nw.Register(res.Addr, res)
	client := netaddr.MustParseAddr("10.0.0.1")
	col := &collector{}
	nw.Register(client, col)
	q, _ := NewQuery(7, "example.com", TypeA).Encode()
	nw.SendUDP(client, 4000, res.Addr, Port, netsim.TTLLinux, q)
	sched.Drain()
	if len(col.packets) != 0 {
		t.Fatal("closed resolver answered")
	}
	if res.QueriesSeen != 1 {
		t.Fatalf("QueriesSeen = %d", res.QueriesSeen)
	}
}

func TestAQueryModestResponse(t *testing.T) {
	nw, sched := harness()
	res := NewResolver(netaddr.MustParseAddr("10.0.0.53"), true)
	nw.Register(res.Addr, res)
	client := netaddr.MustParseAddr("10.0.0.1")
	col := &collector{}
	nw.Register(client, col)
	q, _ := NewQuery(7, "example.com", TypeA).Encode()
	nw.SendUDP(client, 4000, res.Addr, Port, netsim.TTLLinux, q)
	sched.Drain()
	if len(col.packets) != 1 {
		t.Fatal("no A answer")
	}
	got, _ := Decode(col.packets[0].Payload)
	if len(got.Answers) != 1 || got.Answers[0].Type != TypeA {
		t.Fatalf("answers = %+v", got.Answers)
	}
}

func TestResolverIgnoresResponses(t *testing.T) {
	// Reflected responses arriving at a resolver must not trigger replies
	// (no infinite reflection loops between resolvers).
	nw, sched := harness()
	res := NewResolver(netaddr.MustParseAddr("10.0.0.53"), true)
	nw.Register(res.Addr, res)
	resp := &Message{ID: 1, Response: true, Question: Question{Name: "x.y", Type: TypeA, Class: 1}}
	raw, _ := resp.Encode()
	nw.SendUDP(netaddr.MustParseAddr("10.9.9.9"), 53, res.Addr, Port, netsim.TTLLinux, raw)
	sched.Drain()
	if res.BytesSent != 0 {
		t.Fatal("resolver answered a response packet")
	}
}
