package sketch

import (
	"math"
	"testing"

	"ntpddos/internal/rng"
)

// TestHLLErrorBound asserts the 1.04/√m relative error against the exact
// twin at several precisions and cardinalities: every seeded trial must land
// within 3 standard errors (a ≈99.7% event per trial; a systematic bias
// would blow through it immediately).
func TestHLLErrorBound(t *testing.T) {
	for _, p := range []uint8{10, 12, 14} {
		for _, n := range []int{1_000, 20_000, 200_000} {
			for trial := 0; trial < 5; trial++ {
				src := rng.New(uint64(p)<<32 | uint64(n) ^ uint64(trial*2654435761))
				h := NewHLL(p, src.Uint64())
				exact := NewExactDistinct()
				for i := 0; i < n; i++ {
					k := src.Uint64()
					h.Add(k)
					exact.Add(k)
					if i%3 == 0 {
						h.Add(k) // duplicates must not move the estimate
						exact.Add(k)
					}
				}
				truth := float64(exact.Count())
				relErr := math.Abs(h.Estimate()-truth) / truth
				if limit := 3 * h.StdError(); relErr > limit {
					t.Errorf("p=%d n=%d trial=%d: relative error %.4f > 3·(1.04/√m)=%.4f",
						p, n, trial, relErr, limit)
				}
			}
		}
	}
}

// TestHLLSmallRange checks the linear-counting regime: tiny cardinalities
// must come out near-exact, not at the raw estimator's biased values.
func TestHLLSmallRange(t *testing.T) {
	src := rng.New(99)
	h := NewHLL(12, src.Uint64())
	for i := 0; i < 10; i++ {
		h.Add(src.Uint64())
	}
	if est := h.Estimate(); math.Abs(est-10) > 2 {
		t.Fatalf("cardinality 10 estimated as %.2f", est)
	}
}

// TestHLLMerge verifies the union property: merging the sketches of two
// disjoint halves must equal the sketch of the concatenated stream,
// register for register (the estimates are then trivially identical).
func TestHLLMerge(t *testing.T) {
	const seed = 1234
	a := NewHLL(12, seed)
	b := NewHLL(12, seed)
	full := NewHLL(12, seed)
	src := rng.New(5)
	for i := 0; i < 50_000; i++ {
		k := src.Uint64()
		full.Add(k)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != full.Estimate() {
		t.Fatalf("merged estimate %.2f != full-stream estimate %.2f", a.Estimate(), full.Estimate())
	}
}

func TestHLLMergeIncompatible(t *testing.T) {
	if err := NewHLL(12, 1).Merge(NewHLL(12, 2)); err == nil {
		t.Fatal("merging different seeds succeeded")
	}
	if err := NewHLL(12, 1).Merge(NewHLL(10, 1)); err == nil {
		t.Fatal("merging different precisions succeeded")
	}
}

func TestHLLPrecisionValidation(t *testing.T) {
	for _, p := range []uint8{0, 3, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHLL(%d) did not panic", p)
				}
			}()
			NewHLL(p, 1)
		}()
	}
}
