// Package sketch provides the deterministic, seedable probabilistic data
// structures behind the streaming detection plane (internal/detect): a
// Count-Min sketch with conservative update, a dense mergeable HyperLogLog,
// a SpaceSaving top-k summary, and an exponential-decay sliding-window
// wrapper driven by virtual time.
//
// The paper's analyses are post-hoc passes over complete captures; a
// collector watching the February 2014 flood online cannot afford that. Each
// structure here answers one of the paper's questions in bounded memory:
// "who is being reflected at?" (Count-Min + SpaceSaving over victim bytes),
// "which amplifiers dominate?" (SpaceSaving), "how many distinct scanners?"
// (HyperLogLog, §5's unique-scanner counts), "what is happening *now*?"
// (exponential decay as the sliding window).
//
// Every structure is seeded explicitly and never reads the wall clock, so a
// detector built on them is as reproducible as the simulation itself. Each
// has an exact-counting twin (ExactCount, ExactDistinct, ExactTopK,
// ExactDecay) used by the property tests to assert the published error
// bounds rather than assume them.
package sketch

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer. All
// sketches derive their hash positions from it, keyed by the structure's
// seed, so two sketches with the same seed agree bit-for-bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
