package sketch

import (
	"testing"
	"time"

	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

// benchKeys pre-draws a key stream so the benchmarks time the sketch, not
// the generator.
func benchKeys(n int) []uint64 {
	src := rng.New(1)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(src.IntN(100_000))
	}
	return keys
}

func BenchmarkCMSAdd(b *testing.B) {
	keys := benchKeys(1 << 16)
	cms := NewCMS(0.001, 0.01, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cms.Add(keys[i&(len(keys)-1)], 3)
	}
}

func BenchmarkCMSEstimate(b *testing.B) {
	keys := benchKeys(1 << 16)
	cms := NewCMS(0.001, 0.01, 1)
	for _, k := range keys {
		cms.Add(k, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cms.Estimate(keys[i&(len(keys)-1)])
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	keys := benchKeys(1 << 16)
	h := NewHLL(14, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(keys[i&(len(keys)-1)])
	}
}

func BenchmarkHLLEstimate(b *testing.B) {
	keys := benchKeys(1 << 16)
	h := NewHLL(14, 1)
	for _, k := range keys {
		h.Add(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Estimate()
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	keys := benchKeys(1 << 16)
	ss := NewSpaceSaving(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Add(keys[i&(len(keys)-1)], 3)
	}
}

func BenchmarkDecayCMSAdd(b *testing.B) {
	keys := benchKeys(1 << 16)
	d := NewDecayCMS(0.001, 0.01, time.Hour, 1)
	now := vtime.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 {
			now = now.Add(time.Second)
		}
		d.Add(keys[i&(len(keys)-1)], 3, now)
	}
}

func BenchmarkDecayCMSEstimate(b *testing.B) {
	keys := benchKeys(1 << 16)
	d := NewDecayCMS(0.001, 0.01, time.Hour, 1)
	now := vtime.Epoch
	for _, k := range keys {
		d.Add(k, 3, now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Estimate(keys[i&(len(keys)-1)], now)
	}
}
