package sketch

import (
	"testing"

	"ntpddos/internal/rng"
)

// plantedStream interleaves h heavy keys (large planted counts) with a long
// light tail — the adversarial-ish shape SpaceSaving's guarantee is stated
// for.
func plantedStream(src *rng.Source, heavy, tail int, add func(key uint64, n int64)) {
	for i := 0; i < heavy; i++ {
		// Heavy keys live in a distinct range and get 5k–15k total count,
		// spread over several additions.
		key := uint64(1_000_000 + i)
		remaining := int64(5_000 + src.IntN(10_000))
		for remaining > 0 {
			n := int64(1 + src.IntN(500))
			if n > remaining {
				n = remaining
			}
			add(key, n)
			remaining -= n
		}
	}
	for i := 0; i < tail; i++ {
		add(uint64(src.IntN(200_000)), 1+int64(src.IntN(3)))
	}
}

// TestSpaceSavingGuaranteedRecovery asserts the paper-stated property: when
// the summary's own guarantee predicate holds for the top n, the reported
// top-n key set is exactly the true top-n from the exact twin.
func TestSpaceSavingGuaranteedRecovery(t *testing.T) {
	const (
		heavy = 40
		k     = 512
	)
	for trial := 0; trial < 10; trial++ {
		src := rng.New(uint64(31 + trial))
		ss := NewSpaceSaving(k)
		exact := NewExactTopK()
		plantedStream(src, heavy, 40_000, func(key uint64, n int64) {
			ss.Add(key, n)
			exact.Add(key, n)
		})
		if !ss.GuaranteedTop(heavy) {
			t.Fatalf("trial %d: guarantee predicate does not hold for top %d (k=%d too small?)",
				trial, heavy, k)
		}
		want := make(map[uint64]int64, heavy)
		for _, e := range exact.Top(heavy) {
			want[e.Key] = e.Count
		}
		for _, e := range ss.Top(heavy) {
			truth, ok := want[e.Key]
			if !ok {
				t.Fatalf("trial %d: summary top-%d contains %d, not in true top set", trial, heavy, e.Key)
			}
			if e.Count < truth {
				t.Fatalf("trial %d: key %d estimate %d under true count %d", trial, e.Key, e.Count, truth)
			}
			if e.Count-e.Err > truth {
				t.Fatalf("trial %d: key %d guaranteed count %d above true count %d",
					trial, e.Key, e.Count-e.Err, truth)
			}
		}
	}
}

// TestSpaceSavingOverestimateOnly checks that for every monitored key the
// summary never under-counts — the invariant the detector's byte rankings
// rely on.
func TestSpaceSavingOverestimateOnly(t *testing.T) {
	src := rng.New(77)
	ss := NewSpaceSaving(64)
	exact := NewExactTopK()
	zipfStream(src, 5_000, 20_000, func(key uint64, n int64) {
		ss.Add(key, n)
		exact.Add(key, n)
	})
	for _, e := range ss.Top(ss.Len()) {
		if truth := exact.counts.Estimate(e.Key); e.Count < truth {
			t.Fatalf("key %d: summary %d < true %d", e.Key, e.Count, truth)
		}
	}
}

// TestSpaceSavingDeterministicTies pins the deterministic tie-break: with
// every count equal, eviction order and reported order depend only on keys.
func TestSpaceSavingDeterministicTies(t *testing.T) {
	build := func() []TopEntry {
		ss := NewSpaceSaving(4)
		for _, k := range []uint64{9, 3, 7, 1, 5, 8} {
			ss.Add(k, 1)
		}
		return ss.Top(4)
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpaceSavingGuaranteeBoundary(t *testing.T) {
	ss := NewSpaceSaving(4)
	ss.Add(1, 10)
	ss.Add(2, 5)
	// Fewer entries than n: the boundary is unobserved, no guarantee.
	if ss.GuaranteedTop(2) {
		t.Fatal("guarantee claimed with no entry beyond the boundary")
	}
	ss.Add(3, 1)
	if !ss.GuaranteedTop(2) {
		t.Fatal("exact summary (no evictions) must guarantee its top 2")
	}
}

func TestSpaceSavingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpaceSaving(0) did not panic")
		}
	}()
	NewSpaceSaving(0)
}
