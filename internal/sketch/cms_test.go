package sketch

import (
	"testing"

	"ntpddos/internal/rng"
)

// zipfStream feeds n draws from a Zipf-distributed key universe into both a
// sketch and its exact twin — the shape real victim/amplifier streams have
// (a few heavy hitters over a long tail).
func zipfStream(src *rng.Source, universe uint64, n int, add func(key uint64, count int64)) {
	z := src.Zipf(1.2, universe)
	for i := 0; i < n; i++ {
		add(z.Uint64(), 1+int64(src.IntN(20)))
	}
}

// TestCMSOverestimateBound asserts the published guarantee against the exact
// twin: every estimate is ≥ the true count, and the fraction of point
// queries over-estimating by more than εN stays below δ across seeded
// trials. Conservative update should leave the observed failure rate far
// below δ; the test also records it for the log.
func TestCMSOverestimateBound(t *testing.T) {
	const (
		eps    = 0.005
		delta  = 0.02
		trials = 20
	)
	queries, failures := 0, 0
	for trial := 0; trial < trials; trial++ {
		src := rng.New(uint64(1000 + trial))
		cms := NewCMS(eps, delta, src.Uint64())
		exact := NewExactCount()
		zipfStream(src, 50_000, 30_000, func(k uint64, c int64) {
			cms.Add(k, c)
			exact.Add(k, c)
		})
		if cms.Total() != exact.Total() {
			t.Fatalf("trial %d: sketch total %d != exact total %d", trial, cms.Total(), exact.Total())
		}
		bound := int64(eps * float64(exact.Total()))
		for _, k := range exact.Keys() {
			truth := exact.Estimate(k)
			est := cms.Estimate(k)
			if est < truth {
				t.Fatalf("trial %d: key %d under-estimated: %d < %d", trial, k, est, truth)
			}
			queries++
			if est-truth > bound {
				failures++
			}
		}
		// A key never added must estimate within the same bound of zero.
		if est := cms.Estimate(0xdeadbeefcafe); est > bound {
			t.Fatalf("trial %d: absent key estimated at %d > εN=%d", trial, est, bound)
		}
	}
	rate := float64(failures) / float64(queries)
	if rate > delta {
		t.Fatalf("overestimate bound failed: %d/%d queries (%.4f) exceeded εN, δ=%v",
			failures, queries, rate, delta)
	}
	t.Logf("CMS: %d queries, %d over εN (rate %.5f, δ=%v)", queries, failures, rate, delta)
}

// TestCMSDeterminism pins that two sketches with the same seed and stream
// agree exactly — the property the detector's digest tests inherit.
func TestCMSDeterminism(t *testing.T) {
	build := func() *CMS {
		src := rng.New(7)
		cms := NewCMS(0.01, 0.01, 42)
		zipfStream(src, 10_000, 5_000, func(k uint64, c int64) { cms.Add(k, c) })
		return cms
	}
	a, b := build(), build()
	for k := uint64(0); k < 2000; k++ {
		if a.Estimate(k) != b.Estimate(k) {
			t.Fatalf("key %d: %d != %d", k, a.Estimate(k), b.Estimate(k))
		}
	}
}

func TestCMSParameterValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {0.1, 0}, {1, 0.1}, {0.1, 1}, {-1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCMS(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			NewCMS(bad[0], bad[1], 1)
		}()
	}
}

func TestCMSReset(t *testing.T) {
	cms := NewCMS(0.01, 0.01, 1)
	cms.Add(5, 100)
	cms.Reset()
	if cms.Total() != 0 || cms.Estimate(5) != 0 {
		t.Fatalf("reset sketch still reports total=%d estimate=%d", cms.Total(), cms.Estimate(5))
	}
}
