package sketch

import (
	"math"
	"testing"
	"time"

	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

// TestDecayHalfLife checks the defining property: one half-life after an
// isolated addition the estimate has halved (exactly, modulo float error —
// a single key cannot collide with itself).
func TestDecayHalfLife(t *testing.T) {
	const hl = time.Hour
	d := NewDecayCMS(0.01, 0.01, hl, 7)
	t0 := vtime.Epoch
	d.Add(42, 1000, t0)
	for i, want := range []float64{1000, 500, 250, 125} {
		now := t0.Add(time.Duration(i) * hl)
		got := d.Estimate(42, now)
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("after %d half-lives: estimate %.6f, want %.6f", i, got, want)
		}
	}
}

// TestDecayMatchesExactTwin streams random keys at advancing virtual times
// and asserts the CMS bound in decayed form against the exact twin: the
// sketch never under-estimates (beyond float noise) and over-estimates by at
// most ε·Total.
func TestDecayMatchesExactTwin(t *testing.T) {
	const (
		eps = 0.005
		hl  = 30 * time.Minute
	)
	src := rng.New(11)
	d := NewDecayCMS(eps, 0.01, hl, src.Uint64())
	exact := NewExactDecay(hl)
	now := vtime.Epoch
	keys := make([]uint64, 0, 4096)
	for i := 0; i < 20_000; i++ {
		now = now.Add(time.Duration(src.IntN(5000)) * time.Millisecond)
		k := uint64(src.IntN(3000))
		n := float64(1 + src.IntN(50))
		d.Add(k, n, now)
		exact.Add(k, n, now)
		if i%5 == 0 {
			keys = append(keys, k)
		}
	}
	slack := 1e-6 * exact.Total(now)
	bound := eps*d.Total(now) + slack
	for _, k := range keys {
		truth := exact.Estimate(k, now)
		got := d.Estimate(k, now)
		if got < truth-slack {
			t.Fatalf("key %d under-estimated: %.4f < %.4f", k, got, truth)
		}
		if got-truth > bound {
			t.Fatalf("key %d over-estimated: %.4f − %.4f > ε·N=%.4f", k, got, truth, bound)
		}
	}
	if got, want := d.Total(now), exact.Total(now); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("decayed totals diverged: sketch %.4f, exact %.4f", got, want)
	}
}

// TestDecayRenormalization forces the internal weight past its ceiling (a
// long virtual-time jump against a short half-life) and checks estimates
// survive the rescale.
func TestDecayRenormalization(t *testing.T) {
	const hl = time.Second
	d := NewDecayCMS(0.01, 0.01, hl, 3)
	t0 := vtime.Epoch
	d.Add(1, 1<<20, t0)
	// 2^50 ≫ maxWeight: the first Add after the jump renormalizes.
	later := t0.Add(50 * time.Second)
	d.Add(2, 1000, later)
	if got := d.Estimate(2, later); math.Abs(got-1000) > 1e-6*1000 {
		t.Fatalf("fresh key after renormalization: estimate %.6f, want 1000", got)
	}
	want := float64(int64(1)<<20) / math.Exp2(50)
	if got := d.Estimate(1, later); math.Abs(got-want) > 1e-9+1e-6*want {
		t.Fatalf("decayed key after renormalization: estimate %.12f, want %.12f", got, want)
	}
}

// TestDecayClockClamp pins the backwards-time behaviour: an Add carrying a
// timestamp before the anchor is treated as happening at the anchor instead
// of inflating history.
func TestDecayClockClamp(t *testing.T) {
	d := NewDecayCMS(0.01, 0.01, time.Hour, 5)
	t0 := vtime.Epoch
	d.Add(1, 100, t0)
	d.Add(1, 100, t0.Add(-time.Hour))
	if got := d.Estimate(1, t0); math.Abs(got-200) > 1e-9 {
		t.Fatalf("backwards add: estimate %.6f, want 200", got)
	}
}

func TestDecayHalfLifeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDecayCMS with zero half-life did not panic")
		}
	}()
	NewDecayCMS(0.01, 0.01, 0, 1)
}
