package sketch

import (
	"math"
	"sort"
	"time"
)

// The exact twins answer the same queries as the sketches with unbounded
// memory. They exist for the property tests — every published error bound is
// asserted against them, not taken on faith — and for offline cross-checks
// where memory is not a concern.

// ExactCount is the exact twin of CMS.
type ExactCount struct {
	counts map[uint64]int64
	total  int64
}

// NewExactCount builds an empty exact counter.
func NewExactCount() *ExactCount {
	return &ExactCount{counts: make(map[uint64]int64)}
}

// Add records n occurrences of key.
func (e *ExactCount) Add(key uint64, n int64) {
	if n <= 0 {
		return
	}
	e.counts[key] += n
	e.total += n
}

// Estimate returns the true count.
func (e *ExactCount) Estimate(key uint64) int64 { return e.counts[key] }

// Total returns the true N.
func (e *ExactCount) Total() int64 { return e.total }

// Keys returns every observed key, sorted.
func (e *ExactCount) Keys() []uint64 {
	out := make([]uint64, 0, len(e.counts))
	for k := range e.counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExactDistinct is the exact twin of HLL.
type ExactDistinct struct {
	seen map[uint64]struct{}
}

// NewExactDistinct builds an empty distinct counter.
func NewExactDistinct() *ExactDistinct {
	return &ExactDistinct{seen: make(map[uint64]struct{})}
}

// Add observes one element.
func (e *ExactDistinct) Add(key uint64) { e.seen[key] = struct{}{} }

// Count returns the true cardinality.
func (e *ExactDistinct) Count() int { return len(e.seen) }

// ExactTopK is the exact twin of SpaceSaving: full counts, true top-n.
type ExactTopK struct {
	counts *ExactCount
}

// NewExactTopK builds an empty exact top-k counter.
func NewExactTopK() *ExactTopK {
	return &ExactTopK{counts: NewExactCount()}
}

// Add records n occurrences of key.
func (e *ExactTopK) Add(key uint64, n int64) { e.counts.Add(key, n) }

// Top returns the true n highest-count entries (count descending, key
// ascending on ties — the same order SpaceSaving reports).
func (e *ExactTopK) Top(n int) []TopEntry {
	out := make([]TopEntry, 0, len(e.counts.counts))
	for k, c := range e.counts.counts {
		out = append(out, TopEntry{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// ExactDecay is the exact twin of DecayCMS: per-key decayed counts with the
// same weight-renormalization scheme, so twin and sketch agree to floating-
// point error on the decay arithmetic and differ only by CMS collision
// error.
type ExactDecay struct {
	halfLife time.Duration
	anchor   time.Time
	counts   map[uint64]float64
	total    float64
}

// NewExactDecay builds an empty exact decayed counter.
func NewExactDecay(halfLife time.Duration) *ExactDecay {
	return &ExactDecay{halfLife: halfLife, counts: make(map[uint64]float64)}
}

func (e *ExactDecay) weight(now time.Time) float64 {
	if e.anchor.IsZero() {
		e.anchor = now
		return 1
	}
	w := math.Exp2(float64(now.Sub(e.anchor)) / float64(e.halfLife))
	if w >= maxWeight {
		inv := 1 / w
		for k := range e.counts {
			e.counts[k] *= inv
		}
		e.total *= inv
		e.anchor = now
		return 1
	}
	if w < 1 {
		return 1
	}
	return w
}

// Add records n occurrences of key at time now.
func (e *ExactDecay) Add(key uint64, n float64, now time.Time) {
	if n <= 0 {
		return
	}
	w := e.weight(now)
	e.counts[key] += n * w
	e.total += n * w
}

// Estimate returns the true decayed count as of now.
func (e *ExactDecay) Estimate(key uint64, now time.Time) float64 {
	if e.anchor.IsZero() {
		return 0
	}
	return e.counts[key] / e.weight(now)
}

// Total returns the true decayed mass as of now.
func (e *ExactDecay) Total(now time.Time) float64 {
	if e.anchor.IsZero() {
		return 0
	}
	return e.total / e.weight(now)
}
