package sketch

import (
	"fmt"
	"math"
)

// CMS is a Count-Min sketch with conservative update (Estan & Varghese's
// refinement): point queries over-estimate by at most εN with probability at
// least 1−δ, where N is the total count added. Conservative update only
// raises the cells that must rise, so in practice the error sits far below
// the bound — the property test measures both.
type CMS struct {
	rows, cols int
	eps, delta float64
	seed       uint64
	total      int64
	counts     []int64 // rows × cols, row-major
}

// NewCMS builds a sketch with width ⌈e/ε⌉ and depth ⌈ln(1/δ)⌉ — the standard
// dimensioning for the (ε, δ) guarantee. Panics on out-of-range parameters:
// a silently clamped sketch would advertise a bound it does not honour.
func NewCMS(eps, delta float64, seed uint64) *CMS {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: CMS parameters out of range: eps=%v delta=%v", eps, delta))
	}
	cols := int(math.Ceil(math.E / eps))
	rows := int(math.Ceil(math.Log(1 / delta)))
	if rows < 1 {
		rows = 1
	}
	return &CMS{
		rows: rows, cols: cols, eps: eps, delta: delta, seed: seed,
		counts: make([]int64, rows*cols),
	}
}

// Epsilon returns the configured ε.
func (c *CMS) Epsilon() float64 { return c.eps }

// Delta returns the configured δ.
func (c *CMS) Delta() float64 { return c.delta }

// Dims returns the sketch dimensions (depth, width).
func (c *CMS) Dims() (rows, cols int) { return c.rows, c.cols }

// Bytes returns the memory footprint of the counter array.
func (c *CMS) Bytes() int { return len(c.counts) * 8 }

// positions derives the per-row cell indices via double hashing
// (h1 + i·h2 mod cols), the Kirsch–Mitzenmacher construction.
func (c *CMS) position(key uint64, row int) int {
	h1 := mix64(key ^ c.seed)
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	return int((h1 + uint64(row)*h2) % uint64(c.cols))
}

// Add records n occurrences of key using conservative update: every row cell
// is raised only as far as the new point estimate requires.
func (c *CMS) Add(key uint64, n int64) {
	if n <= 0 {
		return
	}
	c.total += n
	target := c.estimate(key) + n
	for r := 0; r < c.rows; r++ {
		cell := &c.counts[r*c.cols+c.position(key, r)]
		if *cell < target {
			*cell = target
		}
	}
}

func (c *CMS) estimate(key uint64) int64 {
	est := int64(math.MaxInt64)
	for r := 0; r < c.rows; r++ {
		if v := c.counts[r*c.cols+c.position(key, r)]; v < est {
			est = v
		}
	}
	return est
}

// Estimate returns the point estimate for key: always ≥ the true count, and
// ≤ true + εN with probability ≥ 1−δ.
func (c *CMS) Estimate(key uint64) int64 {
	if c.total == 0 {
		return 0
	}
	return c.estimate(key)
}

// Total returns N, the sum of all added counts — the scale factor in the εN
// error bound.
func (c *CMS) Total() int64 { return c.total }

// Reset clears the sketch in place, keeping its dimensioning and seed.
func (c *CMS) Reset() {
	c.total = 0
	for i := range c.counts {
		c.counts[i] = 0
	}
}
