package sketch

import (
	"fmt"
	"math"
	"time"
)

// DecayCMS is the sliding-window view over a Count-Min sketch: counts decay
// exponentially with the configured half-life, so an estimate at time t is
// Σ n_i · 2^−(t−t_i)/halfLife — recent traffic dominates and a campaign that
// ended two half-lives ago has faded to a quarter of its weight. This is the
// standard exponential-histogram shortcut: instead of ageing every cell, new
// arrivals are scaled *up* by 2^(now−anchor)/halfLife and queries scale the
// raw estimate back down, which costs one exponential per operation and no
// sweeps.
//
// Time is whatever clock the caller passes in — in the simulation that is
// virtual time, never the wall clock, so decayed estimates are reproducible.
type DecayCMS struct {
	rows, cols int
	eps, delta float64
	seed       uint64
	halfLife   time.Duration

	anchor time.Time // weight epoch; zero until the first Add
	total  float64   // decayed N at anchor weight 1
	counts []float64
}

// maxWeight bounds the up-scaling factor before renormalization: well inside
// float64 range so intermediate sums keep full precision.
const maxWeight = 1e12

// NewDecayCMS builds a decayed sketch with the same (ε, δ) dimensioning as
// NewCMS and the given half-life.
func NewDecayCMS(eps, delta float64, halfLife time.Duration, seed uint64) *DecayCMS {
	if halfLife <= 0 {
		panic(fmt.Sprintf("sketch: non-positive half-life %v", halfLife))
	}
	base := NewCMS(eps, delta, seed)
	return &DecayCMS{
		rows: base.rows, cols: base.cols, eps: eps, delta: delta, seed: seed,
		halfLife: halfLife, counts: make([]float64, base.rows*base.cols),
	}
}

// HalfLife returns the configured decay half-life.
func (d *DecayCMS) HalfLife() time.Duration { return d.halfLife }

func (d *DecayCMS) position(key uint64, row int) int {
	h1 := mix64(key ^ d.seed)
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	return int((h1 + uint64(row)*h2) % uint64(d.cols))
}

// weight returns 2^(now−anchor)/halfLife, renormalizing the cell array when
// the factor would grow past maxWeight.
func (d *DecayCMS) weight(now time.Time) float64 {
	if d.anchor.IsZero() {
		d.anchor = now
		return 1
	}
	w := math.Exp2(float64(now.Sub(d.anchor)) / float64(d.halfLife))
	if w >= maxWeight {
		inv := 1 / w
		for i := range d.counts {
			d.counts[i] *= inv
		}
		d.total *= inv
		d.anchor = now
		return 1
	}
	if w < 1 {
		// Time ran backwards relative to the anchor (taps deliver in virtual
		// order, so this only happens on caller error); clamp rather than let
		// a negative exponent inflate history.
		return 1
	}
	return w
}

// Add records n occurrences of key at time now, conservative-update style.
func (d *DecayCMS) Add(key uint64, n float64, now time.Time) {
	if n <= 0 {
		return
	}
	w := d.weight(now)
	scaled := n * w
	d.total += scaled
	target := d.rawEstimate(key) + scaled
	for r := 0; r < d.rows; r++ {
		cell := &d.counts[r*d.cols+d.position(key, r)]
		if *cell < target {
			*cell = target
		}
	}
}

func (d *DecayCMS) rawEstimate(key uint64) float64 {
	est := math.Inf(1)
	for r := 0; r < d.rows; r++ {
		if v := d.counts[r*d.cols+d.position(key, r)]; v < est {
			est = v
		}
	}
	return est
}

// Estimate returns the decayed count of key as of now: an over-estimate by
// at most ε·Total(now) with probability ≥ 1−δ, exactly the CMS bound with
// decayed mass as N.
func (d *DecayCMS) Estimate(key uint64, now time.Time) float64 {
	if d.anchor.IsZero() {
		return 0
	}
	return d.rawEstimate(key) / d.weight(now)
}

// Total returns the decayed total mass as of now — the N in the εN bound.
func (d *DecayCMS) Total(now time.Time) float64 {
	if d.anchor.IsZero() {
		return 0
	}
	return d.total / d.weight(now)
}
