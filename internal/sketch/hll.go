package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a dense HyperLogLog cardinality estimator (Flajolet et al. 2007)
// with the small-range linear-counting correction. With m = 2^precision
// registers the relative standard error is ≈ 1.04/√m. Two HLLs built with
// the same precision and seed merge by register-wise max, yielding exactly
// the sketch of the union stream.
type HLL struct {
	precision uint8
	seed      uint64
	regs      []uint8
}

// MinPrecision and MaxPrecision bound the register-count exponent.
const (
	MinPrecision = 4
	MaxPrecision = 16
)

// NewHLL builds an estimator with 2^precision one-byte registers.
func NewHLL(precision uint8, seed uint64) *HLL {
	if precision < MinPrecision || precision > MaxPrecision {
		panic(fmt.Sprintf("sketch: HLL precision %d out of range [%d,%d]",
			precision, MinPrecision, MaxPrecision))
	}
	return &HLL{precision: precision, seed: seed, regs: make([]uint8, 1<<precision)}
}

// Precision returns the register-count exponent.
func (h *HLL) Precision() uint8 { return h.precision }

// M returns the register count.
func (h *HLL) M() int { return len(h.regs) }

// StdError returns the theoretical relative standard error 1.04/√m.
func (h *HLL) StdError() float64 { return 1.04 / math.Sqrt(float64(len(h.regs))) }

// Bytes returns the register array footprint.
func (h *HLL) Bytes() int { return len(h.regs) }

// Add observes one element.
func (h *HLL) Add(key uint64) {
	x := mix64(key ^ h.seed)
	idx := x >> (64 - h.precision)
	// Rank of the first set bit in the remaining stream; the sentinel bit
	// caps it at 64-precision+1 for the all-zero tail.
	rest := x<<h.precision | 1<<(h.precision-1)
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// alpha returns the bias-correction constant α_m.
func (h *HLL) alpha() float64 {
	m := float64(len(h.regs))
	switch len(h.regs) {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/m)
}

// Estimate returns the cardinality estimate.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := h.alpha() * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting over empty registers.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Merge folds other into h (register-wise max). The two sketches must share
// precision and seed; anything else would silently estimate garbage.
func (h *HLL) Merge(other *HLL) error {
	if other.precision != h.precision || other.seed != h.seed {
		return fmt.Errorf("sketch: merging incompatible HLLs (precision %d/%d, seeds %#x/%#x)",
			h.precision, other.precision, h.seed, other.seed)
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Reset clears the registers in place.
func (h *HLL) Reset() {
	for i := range h.regs {
		h.regs[i] = 0
	}
}
