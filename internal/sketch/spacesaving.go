package sketch

import (
	"fmt"
	"sort"
)

// TopEntry is one SpaceSaving summary entry. Count over-estimates the true
// count by at most Err (the count the entry inherited when it evicted the
// previous minimum), so Count−Err is a guaranteed lower bound.
type TopEntry struct {
	Key   uint64
	Count int64
	Err   int64
}

// SpaceSaving is the Metwally et al. (2005) top-k summary: it tracks at most
// k keys; an unmonitored key evicts the current minimum and inherits its
// count as error. For any key, the summary's estimate over-counts by at most
// N/k, and when the guarantee predicate holds the reported top-k is exactly
// the true top-k.
type SpaceSaving struct {
	k       int
	entries map[uint64]*ssEntry
	heap    []*ssEntry // min-heap by (count, key) — deterministic tie-break
}

type ssEntry struct {
	key     uint64
	count   int64
	err     int64
	heapIdx int
}

// NewSpaceSaving builds a summary with capacity k.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic(fmt.Sprintf("sketch: SpaceSaving capacity %d < 1", k))
	}
	return &SpaceSaving{k: k, entries: make(map[uint64]*ssEntry, k)}
}

// K returns the capacity.
func (s *SpaceSaving) K() int { return s.k }

// Len returns the number of monitored keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// less orders heap entries by count, breaking ties on the key so the evicted
// minimum — and therefore the whole summary — is independent of map order.
func (s *SpaceSaving) less(a, b *ssEntry) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.key < b.key
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].heapIdx = i
	s.heap[j].heapIdx = j
}

func (s *SpaceSaving) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *SpaceSaving) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < n && s.less(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}

// Add records n occurrences of key.
func (s *SpaceSaving) Add(key uint64, n int64) {
	if n <= 0 {
		return
	}
	if e, ok := s.entries[key]; ok {
		e.count += n
		s.down(e.heapIdx)
		return
	}
	if len(s.entries) < s.k {
		e := &ssEntry{key: key, count: n, heapIdx: len(s.heap)}
		s.entries[key] = e
		s.heap = append(s.heap, e)
		s.up(e.heapIdx)
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	min := s.heap[0]
	delete(s.entries, min.key)
	min.err = min.count
	min.count += n
	min.key = key
	s.entries[key] = min
	s.down(0)
}

// Estimate returns the summary's count for key (0 when unmonitored). Always
// ≥ the true count for monitored keys.
func (s *SpaceSaving) Estimate(key uint64) int64 {
	if e, ok := s.entries[key]; ok {
		return e.count
	}
	return 0
}

// Top returns the n highest-count entries, ordered by count descending with
// the key as deterministic tie-break.
func (s *SpaceSaving) Top(n int) []TopEntry {
	out := make([]TopEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, TopEntry{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// GuaranteedTop reports whether the summary's first n entries are provably
// the true top-n: every one of them has a guaranteed count (Count−Err) at
// least the observed count of the first entry outside the n.
func (s *SpaceSaving) GuaranteedTop(n int) bool {
	all := s.Top(len(s.entries))
	if n >= len(all) {
		return false // the boundary is unobserved; nothing to compare against
	}
	boundary := all[n].Count
	for _, e := range all[:n] {
		if e.Count-e.Err < boundary {
			return false
		}
	}
	return true
}
