package ntpd

import (
	"fmt"

	"ntpddos/internal/core"
	"ntpddos/internal/rng"
)

// Profile is the identity a daemon reports over mode 6: the system string
// (Table 2's "OS" column), the full version string with compile date, and
// the processor. TTL is the OS's default initial TTL, which shapes the
// §7.2 fingerprints.
type Profile struct {
	SystemString  string
	VersionString string
	Processor     string
	TTL           uint8
	CompileYear   int
}

// Role selects which of the paper's Table 2 populations a profile is drawn
// from. The three columns differ sharply — mega amplifiers are mostly Linux
// and Junos, general amplifiers overwhelmingly Linux, while the overall NTP
// population is half Cisco.
type Role int

// Roles.
const (
	RoleAllNTP Role = iota
	RoleAmplifier
	RoleMegaAmp
	// RolePlain is the non-amplifier remainder of the version pool, with
	// weights derived so that the *blend* of amplifiers (linux-heavy) and
	// plain servers reproduces Table 2's all-NTP column (cisco-heavy).
	RolePlain
)

// systemCatalog lists the Table 2 system strings in a fixed order. The three
// weight vectors are the paper's measured percentages, used directly: these
// are population properties of the 2014 Internet, not derivable quantities.
var systemCatalog = []string{
	"linux", "junos", "bsd", "cygwin", "vmkernel", "unix",
	"windows", "sun", "secureos", "isilon", "cisco", "qnx", "darwin", "other",
}

var (
	weightsMega = []float64{
		44.18, 35.85, 9.18, 4.82, 2.41, 2.01,
		0.42, 0.37, 0.25, 0.23, 0.06, 0.0, 0.0, 0.21,
	}
	weightsAmplifier = []float64{
		80.22, 3.43, 11.08, 0.0, 1.42, 0.56,
		0.84, 0.25, 0.49, 0.0, 0.17, 0.22, 0.92, 0.41,
	}
	weightsAllNTP = []float64{
		18.97, 0.33, 0.97, 0.0, 0.10, 30.64,
		0.07, 0.21, 0.03, 0.0, 48.39, 0.02, 0.13, 0.14,
	}
	// weightsPlain solve blend(0.12 × amplifier + 0.88 × plain) ≈ all-NTP
	// for the scenario's amplifier/plain version-responder mix.
	weightsPlain = []float64{
		10.6, 0.0, 0.0, 0.0, 0.0, 34.7,
		0.0, 0.2, 0.0, 0.0, 54.3, 0.0, 0.0, 0.2,
	}
)

var (
	tableMega      = rng.NewWeightedTable(weightsMega)
	tableAmplifier = rng.NewWeightedTable(weightsAmplifier)
	tableAllNTP    = rng.NewWeightedTable(weightsAllNTP)
	tablePlain     = rng.NewWeightedTable(weightsPlain)
)

// compileYearBuckets encodes §3.3's version-age findings: 13% compiled
// before 2004, 23% before 2010, 48% before 2011, 59% before 2012, and only
// 21% in 2013–2014.
var compileYearBuckets = []struct {
	weight float64
	minY   int
	maxY   int
}{
	{13, 1999, 2003},
	{10, 2004, 2009},
	{25, 2010, 2010},
	{11, 2011, 2011},
	{20, 2012, 2012},
	{21, 2013, 2014},
}

var tableCompileYear = func() *rng.WeightedTable {
	w := make([]float64, len(compileYearBuckets))
	for i, b := range compileYearBuckets {
		w[i] = b.weight
	}
	return rng.NewWeightedTable(w)
}()

// ttlFor maps a system string to its OS default initial TTL.
func ttlFor(system string) uint8 {
	switch system {
	case "cisco", "sun", "secureos", "qnx":
		return 255
	case "windows", "cygwin":
		return 128
	default: // linux, unix, bsd, junos, vmkernel, darwin, isilon, other
		return 64
	}
}

// processorFor picks a plausible processor string.
func processorFor(system string, src *rng.Source) string {
	switch system {
	case "cisco", "junos":
		return "" // network gear reports no processor
	case "sun":
		return "sparc"
	default:
		if src.Bool(0.8) {
			return "x86_64"
		}
		return "i686"
	}
}

// months in ctime order for version strings.
var months = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// versionFor builds an ntpd-style version banner whose compile year is
// sampled from the §3.3 age distribution. Cisco and Junos devices report
// their firmware trains instead.
func versionFor(system string, src *rng.Source) (banner string, year int) {
	year = sampleCompileYear(src)
	switch system {
	case "cisco":
		return fmt.Sprintf("ntpd IOS 12.%d(%d) compiled %s %d %d",
			1+src.IntN(4), 1+src.IntN(25), months[src.IntN(12)], 1+src.IntN(28), year), year
	case "junos":
		return fmt.Sprintf("ntpd 4.2.0-a (JUNOS %d.%dR%d) %s %d %d",
			9+src.IntN(5), 1+src.IntN(4), 1+src.IntN(9), months[src.IntN(12)], 1+src.IntN(28), year), year
	default:
		minor := 0
		switch {
		case year >= 2013:
			minor = 6 + src.IntN(2) // 4.2.6/4.2.7
		case year >= 2010:
			minor = 4 + src.IntN(3)
		default:
			minor = src.IntN(5)
		}
		return fmt.Sprintf("ntpd 4.2.%dp%d@1.%d-o %s %s %d %02d:%02d:%02d UTC %d (1)",
			minor, src.IntN(9), 1500+src.IntN(1000),
			[]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}[src.IntN(7)],
			months[src.IntN(12)], 1+src.IntN(28),
			src.IntN(24), src.IntN(60), src.IntN(60), year), year
	}
}

func sampleCompileYear(src *rng.Source) int {
	b := compileYearBuckets[tableCompileYear.Draw(src)]
	return b.minY + src.IntN(b.maxY-b.minY+1)
}

// SampleProfile draws a daemon identity for the given role.
func SampleProfile(src *rng.Source, role Role) Profile {
	var idx int
	switch role {
	case RoleMegaAmp:
		idx = tableMega.Draw(src)
	case RoleAmplifier:
		idx = tableAmplifier.Draw(src)
	case RolePlain:
		idx = tablePlain.Draw(src)
	default:
		idx = tableAllNTP.Draw(src)
	}
	system := systemCatalog[idx]
	banner, year := versionFor(system, src)
	return Profile{
		SystemString:  system,
		VersionString: banner,
		Processor:     processorFor(system, src),
		TTL:           ttlFor(system),
		CompileYear:   year,
	}
}

// ExtractCompileYear recovers the compile year from a version banner, the
// way the paper "extracted the compile time year from all version strings".
// It forwards to core, where the census that consumes the year lives.
func ExtractCompileYear(version string) int {
	return core.ExtractCompileYear(version)
}

// SystemCatalog returns the Table 2 system strings in canonical order.
func SystemCatalog() []string {
	out := make([]string, len(systemCatalog))
	copy(out, systemCatalog)
	return out
}
