package ntpd

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func testHarness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

func vulnerableServer(addr string) *Server {
	return New(Config{
		Addr:           netaddr.MustParseAddr(addr),
		Stratum:        2,
		Profile:        Profile{SystemString: "linux", VersionString: "ntpd 4.2.4p8 2009", TTL: 64},
		MonlistEnabled: true,
		Mode6Enabled:   true,
	})
}

// collector gathers packets delivered to one address. It deep-copies each
// datagram because the fabric recycles the delivered struct (and its payload
// buffer) as soon as HandlePacket returns.
type collector struct {
	packets []*packet.Datagram
}

func (c *collector) HandlePacket(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
	cp := *dg
	cp.Payload = append([]byte(nil), dg.Payload...)
	c.packets = append(c.packets, &cp)
}

func TestClientGetsServerReply(t *testing.T) {
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	nw.Register(srv.Addr(), srv)
	client := netaddr.MustParseAddr("10.0.0.1")
	col := &collector{}
	nw.Register(client, col)

	req := ntp.NewClientRequest(nw.Now()).AppendTo(nil)
	nw.SendUDP(client, 33000, srv.Addr(), ntp.Port, netsim.TTLLinux, req)
	sched.Drain()

	if len(col.packets) != 1 {
		t.Fatalf("client got %d packets", len(col.packets))
	}
	var h ntp.Header
	if err := h.DecodeFromBytes(col.packets[0].Payload); err != nil {
		t.Fatal(err)
	}
	if h.Mode != ntp.ModeServer || h.Stratum != 2 {
		t.Fatalf("reply header %+v", h)
	}
}

func TestMonlistReflectionToSpoofedVictim(t *testing.T) {
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	nw.Register(srv.Addr(), srv)

	victim := netaddr.MustParseAddr("203.0.113.7")
	vcol := &collector{}
	nw.Register(victim, vcol)

	// Prime the MRU with some history so the response is multi-entry.
	base := nw.Now()
	for i := 0; i < 10; i++ {
		srv.Record(netaddr.Addr(0x0a000100+uint32(i)), 123, ntp.ModeClient, 4, 1, base)
	}

	bot := netaddr.MustParseAddr("192.0.2.50")
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	nw.SendSpoofed(bot, victim, 80, srv.Addr(), ntp.Port, netsim.TTLWindows, probe)
	sched.Drain()

	if len(vcol.packets) == 0 {
		t.Fatal("victim received nothing — reflection failed")
	}
	var entries []ntp.MonEntry
	for _, p := range vcol.packets {
		if p.IP.Src != srv.Addr() || p.UDP.DstPort != 80 {
			t.Fatalf("victim packet from %v to port %d", p.IP.Src, p.UDP.DstPort)
		}
		_, es, err := ntp.ParseMonlistResponse(p.Payload)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, es...)
	}
	// The spoofed victim itself must now be in the table, recorded with the
	// attacked port and mode 7 — exactly how the paper identifies victims.
	found := false
	for _, e := range entries {
		if e.Addr == victim {
			found = true
			if e.Port != 80 || e.Mode != ntp.ModePrivate {
				t.Fatalf("victim entry %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("victim not recorded in monlist table")
	}
}

func TestVictimEntryIsFirst(t *testing.T) {
	// The probe source should appear topmost (most recent) in the table.
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	nw.Register(srv.Addr(), srv)
	for i := 0; i < 5; i++ {
		srv.Record(netaddr.Addr(100+uint32(i)), 123, ntp.ModeClient, 4, 1, nw.Now())
	}
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 57915, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) == 0 {
		t.Fatal("no response")
	}
	_, entries, err := ntp.ParseMonlistResponse(col.packets[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Addr != scanner {
		t.Fatalf("topmost entry is %v, want the scanner", entries[0].Addr)
	}
	if entries[0].LastSeen != 0 {
		t.Fatalf("scanner LastSeen = %d, want 0", entries[0].LastSeen)
	}
}

func TestPatchedServerSilent(t *testing.T) {
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	srv.Patch()
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 57915, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) != 0 {
		t.Fatalf("patched server replied with %d packets", len(col.packets))
	}
	if srv.IsAmplifier() {
		t.Fatal("patched server still reports amplifier")
	}
}

func TestImplementationMismatchIgnored(t *testing.T) {
	// A daemon accepting only XNTPD_OLD must ignore an XNTPD probe — the
	// §3.1 under-counting mechanism.
	nw, sched := testHarness()
	srv := New(Config{
		Addr: netaddr.MustParseAddr("10.0.0.2"), MonlistEnabled: true,
		Implementation: ntp.ImplXNTPDOld, Profile: Profile{TTL: 64},
	})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) != 0 {
		t.Fatal("mismatched implementation answered")
	}
	// The universal implementation value is accepted by everyone.
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplUniv, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) == 0 {
		t.Fatal("universal implementation ignored")
	}
}

func TestMRUCapAt600(t *testing.T) {
	srv := vulnerableServer("10.0.0.2")
	now := vtime.Epoch
	for i := 0; i < 1000; i++ {
		srv.Record(netaddr.Addr(uint32(i)), 123, ntp.ModeClient, 4, 1, now)
	}
	if srv.MRULen() != ntp.MaxMonlistEntries {
		t.Fatalf("MRU length %d, want %d", srv.MRULen(), ntp.MaxMonlistEntries)
	}
	// The oldest 400 must have been evicted.
	entries := srv.monlistEntries(now)
	for _, e := range entries {
		if uint32(e.Addr) < 400 {
			t.Fatalf("evicted entry %v still present", e.Addr)
		}
	}
}

func TestRecordAggregatesByAddr(t *testing.T) {
	srv := vulnerableServer("10.0.0.2")
	a := netaddr.MustParseAddr("10.5.5.5")
	t0 := vtime.Epoch
	srv.Record(a, 100, ntp.ModeClient, 4, 1, t0)
	srv.Record(a, 200, ntp.ModePrivate, 2, 9, t0.Add(90*time.Second))
	if srv.MRULen() != 1 {
		t.Fatalf("MRU length %d, want 1", srv.MRULen())
	}
	e := srv.monlistEntries(t0.Add(100 * time.Second))[0]
	if e.Count != 10 {
		t.Fatalf("count = %d, want 10", e.Count)
	}
	if e.Port != 200 || e.Mode != ntp.ModePrivate {
		t.Fatalf("latest port/mode not kept: %+v", e)
	}
	if e.LastSeen != 10 {
		t.Fatalf("LastSeen = %d, want 10", e.LastSeen)
	}
	if e.AvgInterval != 10 { // 90 seconds / (10-1) packets
		t.Fatalf("AvgInterval = %d, want 10", e.AvgInterval)
	}
}

func TestMode6VersionResponse(t *testing.T) {
	nw, sched := testHarness()
	srv := New(Config{
		Addr: netaddr.MustParseAddr("10.0.0.2"), Stratum: 16, Mode6Enabled: true,
		Profile: Profile{SystemString: "cisco", VersionString: "ntpd IOS 12.4(3) compiled Jan 7 2008", TTL: 255},
	})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 5000, srv.Addr(), ntp.Port, netsim.TTLLinux, ntp.NewReadVarRequest(3))
	sched.Drain()
	if len(col.packets) == 0 {
		t.Fatal("no version response")
	}
	var frags []*ntp.Mode6
	for _, p := range col.packets {
		m, err := ntp.DecodeMode6(p.Payload)
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, m)
	}
	text, err := ntp.ReassembleMode6(frags)
	if err != nil {
		t.Fatal(err)
	}
	v := ntp.ParseSystemVariables(text)
	if v.System != "cisco" || v.Stratum != 16 || v.RefID != "INIT" {
		t.Fatalf("variables = %+v", v)
	}
}

func TestMode6DisabledSilent(t *testing.T) {
	nw, sched := testHarness()
	srv := New(Config{Addr: netaddr.MustParseAddr("10.0.0.2"), Mode6Enabled: false, Profile: Profile{TTL: 64}})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 5000, srv.Addr(), ntp.Port, netsim.TTLLinux, ntp.NewReadVarRequest(3))
	sched.Drain()
	if len(col.packets) != 0 {
		t.Fatal("disabled mode 6 answered")
	}
}

func TestMegaAmpReplays(t *testing.T) {
	nw, sched := testHarness()
	srv := New(Config{
		Addr:           netaddr.MustParseAddr("10.0.0.2"),
		MonlistEnabled: true,
		MegaAmp:        true,
		MegaRepeats:    1000,
		MegaEvents:     10,
		MegaInterval:   time.Second,
		Profile:        Profile{SystemString: "junos", TTL: 64},
	})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 5000, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()

	var total int64
	for _, p := range col.packets {
		total += p.Rep
	}
	// One real probe → 1 direct response + 1000 replayed responses
	// (Rep-weighted). Each response here is a single fragment (tiny table).
	if total < 1000 {
		t.Fatalf("mega amp delivered %d response packets, want >= 1000", total)
	}
	// The replays must have inflated the scanner's count in the table.
	entries := srv.monlistEntries(nw.Now())
	var scannerCount uint32
	for _, e := range entries {
		if e.Addr == scanner {
			scannerCount = e.Count
		}
	}
	if scannerCount < 1000 {
		t.Fatalf("scanner count = %d, want >= 1000 (replay re-counting)", scannerCount)
	}
}

func TestMegaAmpReplayCooldown(t *testing.T) {
	nw, sched := testHarness()
	srv := New(Config{
		Addr: netaddr.MustParseAddr("10.0.0.2"), MonlistEnabled: true,
		MegaAmp: true, MegaRepeats: 100, MegaEvents: 5, MegaInterval: time.Second,
		Profile: Profile{TTL: 64},
	})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)

	// Two probes inside one replay window: the storm fires once.
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux, probe)
	sched.RunUntil(nw.Now().Add(2 * time.Second)) // mid-storm
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux, probe)
	sched.Drain()
	var total int64
	for _, p := range col.packets {
		total += p.Rep
	}
	if total > 110 { // 100 replays + 2 direct responses, with slack
		t.Fatalf("mid-storm probe restarted the replay: %d packets", total)
	}

	// A probe after the storm (e.g. next week's scan) re-triggers it.
	col.packets = nil
	sched.RunUntil(nw.Now().Add(time.Hour))
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux, probe)
	sched.Drain()
	total = 0
	for _, p := range col.packets {
		total += p.Rep
	}
	if total < 100 {
		t.Fatalf("later probe did not re-trigger the storm: %d packets", total)
	}
}

func TestNonNTPPortIgnored(t *testing.T) {
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 1, srv.Addr(), 124, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) != 0 || srv.QueriesSeen != 0 {
		t.Fatal("packet to wrong port processed")
	}
}

func TestFullTableResponseVolume(t *testing.T) {
	// A primed 600-entry table must return 100 fragments whose aggregate
	// on-wire size gives the famous monlist BAF of several hundred.
	nw, sched := testHarness()
	srv := vulnerableServer("10.0.0.2")
	nw.Register(srv.Addr(), srv)
	for i := 0; i < 600; i++ {
		srv.Record(netaddr.Addr(0x0b000000+uint32(i)), 123, ntp.ModeClient, 4, 1, nw.Now())
	}
	scanner := netaddr.MustParseAddr("198.51.100.9")
	col := &collector{}
	nw.Register(scanner, col)
	nw.SendUDP(scanner, 1, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	if len(col.packets) != 100 {
		t.Fatalf("full table -> %d packets, want 100", len(col.packets))
	}
	var bytes int64
	for _, p := range col.packets {
		bytes += int64(p.OnWire())
	}
	baf := float64(bytes) / 84.0
	if baf < 400 || baf > 800 {
		t.Fatalf("primed-table BAF = %.0f, want several hundred", baf)
	}
}

// TestRespondMatchesHandlePacket pins the two transport paths together: for
// every query type, the payloads Respond returns must be exactly what the
// fabric path delivers.
func TestRespondMatchesHandlePacket(t *testing.T) {
	build := func() *Server {
		srv := New(Config{
			Addr: netaddr.MustParseAddr("10.0.0.2"), Stratum: 3,
			MonlistEnabled: true, Mode6Enabled: true, ExtraVarBytes: 100,
			Peers:   []netaddr.Addr{netaddr.MustParseAddr("129.6.15.28")},
			Profile: Profile{SystemString: "linux", VersionString: "ntpd 4.2.6 2011", TTL: 64},
		})
		for i := 0; i < 10; i++ {
			srv.Record(netaddr.Addr(0x0a000100+uint32(i)), 123, ntp.ModeClient, 4, 1, vtime.Epoch)
		}
		return srv
	}
	queries := map[string][]byte{
		"monlist": ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		"peers":   ntp.NewMonlistRequestPadded(ntp.ImplXNTPD, ntp.ReqPeerList),
		"readvar": ntp.NewReadVarRequest(3),
		"mode3":   ntp.NewClientRequest(vtime.Epoch).AppendTo(nil),
	}
	src := netaddr.MustParseAddr("198.51.100.9")
	for name, q := range queries {
		// Fabric path.
		nw, sched := testHarness()
		fab := build()
		nw.Register(fab.Addr(), fab)
		col := &collector{}
		nw.Register(src, col)
		nw.SendUDP(src, 4000, fab.Addr(), ntp.Port, netsim.TTLLinux, q)
		sched.Drain()

		// Direct path against an identically-prepared server at the same
		// virtual instant the fabric delivered the query.
		direct := build()
		arrival := vtime.Epoch.Add(netsim.PathLatency(src, direct.Addr()))
		responses := direct.Respond(q, src, 4000, arrival)

		if len(responses) != len(col.packets) {
			t.Fatalf("%s: Respond %d packets vs fabric %d", name, len(responses), len(col.packets))
		}
		for i := range responses {
			if string(responses[i]) != string(col.packets[i].Payload) {
				t.Fatalf("%s: payload %d differs between transports", name, i)
			}
		}
	}
}
