package ntpd

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

func benchSource() *rng.Source { return rng.New(1) }

func BenchmarkRecord(b *testing.B) {
	srv := New(Config{Addr: 1, MonlistEnabled: true, Profile: Profile{TTL: 64}})
	now := vtime.Epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		srv.Record(netaddr.Addr(uint32(i)%2048), 123, ntp.ModeClient, 4, 1, now)
		now = now.Add(time.Millisecond)
	}
}

func BenchmarkRespondMonlistFullTable(b *testing.B) {
	srv := New(Config{Addr: 1, MonlistEnabled: true, Profile: Profile{TTL: 64}})
	for i := 0; i < ntp.MaxMonlistEntries; i++ {
		srv.Record(netaddr.Addr(uint32(i)), 123, ntp.ModeClient, 4, 1, vtime.Epoch)
	}
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	now := vtime.Epoch.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Advance past the cache TTL every iteration so this measures the
		// uncached (worst-case) path.
		now = now.Add(11 * time.Minute)
		if got := srv.Respond(probe, netaddr.Addr(uint32(i)), 4000, now); len(got) == 0 {
			b.Fatal("no response")
		}
	}
}

func BenchmarkRespondMonlistCached(b *testing.B) {
	srv := New(Config{Addr: 1, MonlistEnabled: true, Profile: Profile{TTL: 64}})
	for i := 0; i < ntp.MaxMonlistEntries; i++ {
		srv.Record(netaddr.Addr(uint32(i)), 123, ntp.ModeClient, 4, 1, vtime.Epoch)
	}
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	now := vtime.Epoch.Add(time.Hour)
	srv.Respond(probe, 9, 4000, now) // warm the cache
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		srv.Respond(probe, 9, 4000, now)
	}
}

func BenchmarkSampleProfile(b *testing.B) {
	src := benchSource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleProfile(src, RoleAmplifier)
	}
}
