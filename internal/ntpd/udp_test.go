package ntpd

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/metrics/metricstest"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
)

// serveUDP runs a daemon on a real loopback socket via the Respond path —
// the same code cmd/ntpdsim uses — until the returned stop func is called.
func serveUDP(t *testing.T, srv *Server) (*net.UDPAddr, func()) {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 2048)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				close(done)
				return
			}
			v4 := peer.IP.To4()
			src := netaddr.Addr(uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3]))
			payload := make([]byte, n)
			copy(payload, buf[:n])
			for _, r := range srv.Respond(payload, src, uint16(peer.Port), time.Now()) {
				conn.WriteToUDP(r, peer)
			}
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), func() { conn.Close(); <-done }
}

// exchange sends one probe and collects responses until a short deadline.
func exchange(t *testing.T, server *net.UDPAddr, probe []byte) [][]byte {
	t.Helper()
	conn, err := net.DialUDP("udp4", nil, server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(probe); err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	buf := make([]byte, 65535)
	for {
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			return out
		}
		pl := make([]byte, n)
		copy(pl, buf[:n])
		out = append(out, pl)
	}
}

func TestRealUDPMonlistRoundTrip(t *testing.T) {
	srv := New(Config{Addr: 0, MonlistEnabled: true, Stratum: 2,
		Profile: Profile{SystemString: "linux", TTL: 64}})
	for i := 0; i < 40; i++ {
		srv.Record(netaddr.Addr(0x0a000000+uint32(i)), ntp.Port, ntp.ModeClient, 4, 1, time.Now())
	}
	addr, stop := serveUDP(t, srv)
	defer stop()

	payloads := exchange(t, addr, ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	if len(payloads) != 7 { // ceil(41 entries / 6 per packet): 40 clients + the prober
		t.Fatalf("got %d response packets, want 7", len(payloads))
	}
	var entries []ntp.MonEntry
	for _, p := range payloads {
		_, es, err := ntp.ParseMonlistResponse(p)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, es...)
	}
	if len(entries) != 41 {
		t.Fatalf("rebuilt %d entries over real UDP, want 41", len(entries))
	}
	// The prober (127.0.0.1) must be in the table.
	found := false
	for _, e := range entries {
		if e.Addr == netaddr.MustParseAddr("127.0.0.1") {
			found = true
		}
	}
	if !found {
		t.Fatal("prober missing from monitor table")
	}
}

func TestRealUDPVersionRoundTrip(t *testing.T) {
	srv := New(Config{Addr: 0, Mode6Enabled: true, Stratum: 16,
		Profile: Profile{SystemString: "cisco",
			VersionString: "ntpd IOS 12.2(17) compiled Mar 3 2006"}})
	addr, stop := serveUDP(t, srv)
	defer stop()

	payloads := exchange(t, addr, ntp.NewReadVarRequest(5))
	if len(payloads) == 0 {
		t.Fatal("no version response over real UDP")
	}
	var frags []*ntp.Mode6
	for _, p := range payloads {
		m, err := ntp.DecodeMode6(p)
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, m)
	}
	text, err := ntp.ReassembleMode6(frags)
	if err != nil {
		t.Fatal(err)
	}
	v := ntp.ParseSystemVariables(text)
	if v.System != "cisco" || v.Stratum != 16 || ExtractCompileYear(v.Version) != 2006 {
		t.Fatalf("parsed %+v", v)
	}
}

func TestRealUDPPatchedServerSilent(t *testing.T) {
	srv := New(Config{Addr: 0, MonlistEnabled: false, Profile: Profile{TTL: 64}})
	addr, stop := serveUDP(t, srv)
	defer stop()
	payloads := exchange(t, addr, ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	if len(payloads) != 0 {
		t.Fatalf("patched daemon answered %d packets over real UDP", len(payloads))
	}
}

func TestRealUDPClientMode(t *testing.T) {
	srv := New(Config{Addr: 0, Stratum: 3, Profile: Profile{TTL: 64}})
	addr, stop := serveUDP(t, srv)
	defer stop()
	req := ntp.NewClientRequest(time.Now()).AppendTo(nil)
	payloads := exchange(t, addr, req)
	if len(payloads) != 1 {
		t.Fatalf("mode 3 got %d responses", len(payloads))
	}
	var h ntp.Header
	if err := h.DecodeFromBytes(payloads[0]); err != nil {
		t.Fatal(err)
	}
	if h.Mode != ntp.ModeServer || h.Stratum != 3 {
		t.Fatalf("reply %+v", h)
	}
}

// TestRealUDPScrape is the cmd/ntpdsim acceptance path at package level: a
// metrics-instrumented daemon serving real UDP whose /metrics endpoint,
// scraped over real HTTP mid-traffic, parses cleanly and shows the queries.
func TestRealUDPScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := New(Config{Addr: 0, MonlistEnabled: true, Mode6Enabled: true,
		Stratum: 2, Metrics: NewMetrics(reg),
		Profile: Profile{SystemString: "linux", TTL: 64}})
	for i := 0; i < 10; i++ {
		srv.Record(netaddr.Addr(0x0a000000+uint32(i)), ntp.Port, ntp.ModeClient, 4, 1, time.Now())
	}
	addr, stop := serveUDP(t, srv)
	defer stop()

	exp, err := metrics.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		exp.Shutdown(ctx)
	}()
	exp.SetReady(true)

	if got := exchange(t, addr, ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)); len(got) == 0 {
		t.Fatal("no monlist response")
	}
	if got := exchange(t, addr, ntp.NewReadVarRequest(3)); len(got) == 0 {
		t.Fatal("no readvar response")
	}

	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metricstest.Parse(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if err := metricstest.Check(fams); err != nil {
		t.Fatalf("scrape inconsistent: %v", err)
	}
	queries := fams["ntpsim_ntpd_queries_total"]
	if queries == nil {
		t.Fatalf("no ntpsim_ntpd_queries_total in scrape:\n%s", body)
	}
	var total float64
	for _, s := range queries.Samples {
		total += s.Value
	}
	if total < 2 {
		t.Fatalf("queries_total = %v, want >= 2 (monlist + readvar)", total)
	}
	mru := fams["ntpsim_ntpd_mru_entries"]
	if mru == nil || len(mru.Samples) == 0 || mru.Samples[0].Value != float64(srv.MRULen()) {
		t.Fatalf("mru gauge %+v, table has %d entries", mru, srv.MRULen())
	}
}

func TestRealUDPPeerList(t *testing.T) {
	srv := New(Config{Addr: 0, MonlistEnabled: true,
		Peers:   []netaddr.Addr{netaddr.MustParseAddr("129.6.15.28")},
		Profile: Profile{TTL: 64}})
	addr, stop := serveUDP(t, srv)
	defer stop()
	payloads := exchange(t, addr, ntp.NewMonlistRequestPadded(ntp.ImplXNTPD, ntp.ReqPeerList))
	if len(payloads) != 1 {
		t.Fatalf("peer list got %d responses", len(payloads))
	}
	_, peers, err := ntp.ParsePeerListResponse(payloads[0])
	if err != nil || len(peers) != 1 {
		t.Fatalf("peers %v %v", peers, err)
	}
	if peers[0].Addr != netaddr.MustParseAddr("129.6.15.28") {
		t.Fatalf("peer %v", peers[0].Addr)
	}
}
