package ntpd

import (
	"math"
	"testing"

	"ntpddos/internal/rng"
)

func sampleSystems(role Role, n int) map[string]float64 {
	src := rng.New(42)
	counts := make(map[string]float64)
	for i := 0; i < n; i++ {
		p := SampleProfile(src, role)
		counts[p.SystemString]++
	}
	for k := range counts {
		counts[k] = counts[k] / float64(n) * 100
	}
	return counts
}

func TestAllNTPDistributionMatchesTable2(t *testing.T) {
	got := sampleSystems(RoleAllNTP, 100000)
	// The headline Table 2 rows: cisco 48.39, unix 30.64, linux 18.97.
	for system, want := range map[string]float64{"cisco": 48.39, "unix": 30.64, "linux": 18.97} {
		if math.Abs(got[system]-want) > 1.5 {
			t.Fatalf("%s share = %.2f%%, want ≈%.2f%%", system, got[system], want)
		}
	}
}

func TestAmplifierDistributionMatchesTable2(t *testing.T) {
	got := sampleSystems(RoleAmplifier, 100000)
	for system, want := range map[string]float64{"linux": 80.22, "bsd": 11.08, "junos": 3.43} {
		if math.Abs(got[system]-want) > 1.5 {
			t.Fatalf("%s share = %.2f%%, want ≈%.2f%%", system, got[system], want)
		}
	}
}

func TestMegaDistributionMatchesTable2(t *testing.T) {
	got := sampleSystems(RoleMegaAmp, 100000)
	for system, want := range map[string]float64{"linux": 44.18, "junos": 35.85, "bsd": 9.18} {
		if math.Abs(got[system]-want) > 1.5 {
			t.Fatalf("%s share = %.2f%%, want ≈%.2f%%", system, got[system], want)
		}
	}
	if got["cisco"] > 0.5 {
		t.Fatalf("mega pool cisco share = %.2f%%, must be near zero", got["cisco"])
	}
}

func TestCompileYearDistribution(t *testing.T) {
	src := rng.New(7)
	n := 100000
	var before2004, before2012, recent int
	for i := 0; i < n; i++ {
		p := SampleProfile(src, RoleAllNTP)
		if p.CompileYear < 2004 {
			before2004++
		}
		if p.CompileYear < 2012 {
			before2012++
		}
		if p.CompileYear >= 2013 {
			recent++
		}
	}
	// §3.3: 13% before 2004, 59% before 2012, 21% in 2013–2014.
	if f := float64(before2004) / float64(n) * 100; math.Abs(f-13) > 1.5 {
		t.Fatalf("before-2004 share = %.1f%%, want ≈13%%", f)
	}
	if f := float64(before2012) / float64(n) * 100; math.Abs(f-59) > 1.5 {
		t.Fatalf("before-2012 share = %.1f%%, want ≈59%%", f)
	}
	if f := float64(recent) / float64(n) * 100; math.Abs(f-21) > 1.5 {
		t.Fatalf("2013+ share = %.1f%%, want ≈21%%", f)
	}
}

func TestVersionStringCarriesYear(t *testing.T) {
	src := rng.New(9)
	for i := 0; i < 1000; i++ {
		p := SampleProfile(src, RoleAllNTP)
		if got := ExtractCompileYear(p.VersionString); got != p.CompileYear {
			t.Fatalf("ExtractCompileYear(%q) = %d, want %d", p.VersionString, got, p.CompileYear)
		}
	}
}

func TestExtractCompileYearRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "ntpd", "version 9.9.9", "year 3021"} {
		if ExtractCompileYear(s) != 0 {
			t.Fatalf("ExtractCompileYear(%q) found a year", s)
		}
	}
}

func TestTTLFingerprints(t *testing.T) {
	cases := map[string]uint8{"linux": 64, "cisco": 255, "windows": 128, "junos": 64, "sun": 255}
	for system, want := range cases {
		if got := ttlFor(system); got != want {
			t.Fatalf("ttlFor(%s) = %d, want %d", system, got, want)
		}
	}
}

func TestSystemCatalogStable(t *testing.T) {
	cat := SystemCatalog()
	if len(cat) != len(weightsMega) || len(cat) != len(weightsAmplifier) || len(cat) != len(weightsAllNTP) {
		t.Fatal("catalogue and weight vectors out of sync")
	}
	cat[0] = "mutated"
	if SystemCatalog()[0] == "mutated" {
		t.Fatal("SystemCatalog returns shared slice")
	}
}
