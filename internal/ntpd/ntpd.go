// Package ntpd simulates the NTP daemon population the paper measures: time
// servers that — depending on version and configuration — answer mode 7
// monlist queries (the primary amplification vector), mode 6 readvar/version
// queries (the §3.3 secondary vector), or only honest mode 3 time requests.
//
// The daemon keeps the real ntpd's MRU ("most recently used") monitor list:
// the last 600 distinct client addresses with packet counts, modes, source
// ports and timing — the data structure whose disclosure lets the paper (and
// this reproduction) observe DDoS victims from the amplifiers themselves.
//
// A small number of daemons exhibit the §3.4 "mega amplifier" flaw: a
// routing-loop-like retransmission that replays an updated monlist response
// continuously, up to gigabytes per probe.
package ntpd

import (
	"encoding/binary"
	"fmt"
	"time"

	"ntpddos/internal/core"
	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
)

// Metrics aggregates live instrumentation over the whole daemon population.
// One shared struct rides in Config (so it survives DHCP re-binds and mega
// rebuilds); per-daemon label cardinality at population scale would be
// unscrapeable, so counters are population totals. Query counters are
// pre-resolved children of one mode-labeled family, keeping the per-packet
// cost to a single atomic add. All values are Rep-weighted.
type Metrics struct {
	QueriesClient *metrics.Counter // mode 3 time requests
	QueriesMode7  *metrics.Counter // private-mode (monlist et al.) requests
	QueriesMode6  *metrics.Counter // control-mode (readvar) requests
	QueriesOther  *metrics.Counter // anything else recorded but unanswered

	MonlistSent *metrics.Counter // monlist response packets emitted
	Mode6Sent   *metrics.Counter // readvar response packets emitted
	BytesSent   *metrics.Counter // on-wire response bytes, all kinds
	MegaStorms  *metrics.Counter // §3.4 replay storms triggered

	// MRUEntries tracks live monitor-table entries summed over the
	// population; see DetachMRU for table teardown accounting.
	MRUEntries *metrics.Gauge
}

// NewMetrics registers the daemon family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	q := r.NewCounterVec("ntpsim_ntpd_queries_total",
		"Rep-weighted queries received by the daemon population, by NTP mode.",
		"mode")
	return &Metrics{
		QueriesClient: q.With("client"),
		QueriesMode7:  q.With("mode7"),
		QueriesMode6:  q.With("mode6"),
		QueriesOther:  q.With("other"),
		MonlistSent: r.NewCounter("ntpsim_ntpd_monlist_packets_total",
			"Rep-weighted monlist response packets emitted."),
		Mode6Sent: r.NewCounter("ntpsim_ntpd_mode6_packets_total",
			"Rep-weighted readvar (version) response packets emitted."),
		BytesSent: r.NewCounter("ntpsim_ntpd_response_bytes_total",
			"Rep-weighted on-wire response bytes emitted, all query kinds."),
		MegaStorms: r.NewCounter("ntpsim_ntpd_mega_storms_total",
			"Mega-amplifier replay storms triggered (§3.4)."),
		MRUEntries: r.NewGauge("ntpsim_ntpd_mru_entries",
			"Live MRU monitor-table entries summed over the population."),
	}
}

// Config describes one simulated daemon.
type Config struct {
	Addr netaddr.Addr

	// Stratum of the server; 16 means unsynchronized (§3.3 finds 19% of the
	// population in this embarrassing state).
	Stratum int

	// Profile carries the system/OS/version identity reported via mode 6.
	Profile Profile

	// MonlistEnabled makes the daemon answer monlist queries — the defining
	// property of an amplifier. Patching or `restrict noquery` clears it.
	MonlistEnabled bool

	// Mode6Enabled makes the daemon answer readvar (version) queries. This
	// pool is ~40x larger than the monlist pool and barely shrinks (§3.3).
	Mode6Enabled bool

	// Implementation is the mode 7 implementation number this daemon
	// accepts (ImplXNTPD or ImplXNTPDOld). The paper notes scanners send
	// only one value, so daemons of the other implementation are missed.
	Implementation uint8

	// ReqCode selects the monlist flavour the daemon serves
	// (ReqMonGetList1 with 72-byte items, or the legacy ReqMonGetList).
	ReqCode uint8

	// Peers are the daemon's upstream associations, disclosed by the mode 7
	// peer-list command (the "showpeers" data §3.1 mentions as a lower-
	// amplification alternative to monlist).
	Peers []netaddr.Addr

	// ExtraVarBytes pads the readvar response with additional system
	// variables (peer lists, clock detail), matching the multi-hundred-byte
	// to multi-kilobyte responses real daemons return (§3.3's version BAF
	// quartiles come from this size spread).
	ExtraVarBytes int

	// MegaAmp enables the §3.4 replay flaw.
	MegaAmp bool
	// MegaRepeats is the total number of extra table replays a single query
	// triggers (spread over MegaEvents scheduler events via Rep batching).
	MegaRepeats int64
	// MegaEvents caps how many real scheduler events carry the replays.
	MegaEvents int
	// MegaInterval is the spacing between replay events.
	MegaInterval time.Duration

	// Metrics, when non-nil, attaches population-level live instrumentation.
	// Riding in Config means the pointer survives every place the scenario
	// copies a Config to rebuild a daemon (DHCP churn, mega rebuilds).
	Metrics *Metrics
}

// Server is a simulated daemon. It implements netsim.Host.
type Server struct {
	cfg Config

	// MRU monitor list: most-recent-first, capped at 600 entries. Entries
	// live in one contiguous slab linked by int32 indices (-1 = none):
	// no per-client allocation, nothing for the GC to chase, and the
	// monlist render walk stays within one array.
	mruStore []mruEntry
	mruFree  []int32
	mruHead  int32
	mruTail  int32
	mruLen   int
	index    map[netaddr.Addr]int32

	// Counters for analysis convenience.
	QueriesSeen int64
	MonlistSent int64 // response packets emitted (Rep-weighted)
	BytesSent   int64 // on-wire response bytes (Rep-weighted)
	// megaUntil is the end of the current replay storm; queries arriving
	// while a storm is in flight do not start another (but a later probe —
	// e.g. next week's scan — re-triggers, as the paper observed for
	// amplifiers misbehaving "more than one week in a row").
	megaUntil time.Time

	// mruGen counts table mutations; the response cache below reuses the
	// encoded monlist fragments for high-rate (batched) triggers, where a
	// slightly stale table is indistinguishable on the wire. Probes and
	// scans (Rep == 1) always get a freshly built table.
	mruGen     int64
	cacheReq   uint8
	cacheGen   int64
	cacheAt    time.Time
	cacheFrags [][]byte

	// Scratch state for the zero-alloc reply path. SendFrom copies the
	// datagram and payload into the fabric's pool before returning, so one
	// reusable datagram and one payload buffer serve every reply, and the
	// readvar response fragments are encoded once (the sequence field is
	// patched in place per query — it is the only per-query wire state).
	out      packet.Datagram
	buf      []byte
	varFrags [][]byte
	entries  []ntp.MonEntry // monlistEntries scratch, rebuilt per cache miss
}

// mruEntry is one monitor-table row. Timestamps are virtual-clock UnixNano
// values: the wire encoding divides nanosecond deltas by time.Second with
// the same integer truncation time.Time.Sub arithmetic produced, so the
// observable monlist bytes are unchanged.
type mruEntry struct {
	addr        netaddr.Addr
	port        uint16
	mode        uint8
	version     uint8
	count       int64
	firstSeenNs int64
	lastSeenNs  int64
	prev, next  int32 // slab indices, mruNil = none
}

const mruNil = int32(-1)

// mruAlloc returns a slab slot for a new entry, reusing freed slots first.
// It may grow the slab, so callers must not hold entry pointers across it.
func (s *Server) mruAlloc() int32 {
	if n := len(s.mruFree); n > 0 {
		i := s.mruFree[n-1]
		s.mruFree = s.mruFree[:n-1]
		return i
	}
	s.mruStore = append(s.mruStore, mruEntry{})
	return int32(len(s.mruStore) - 1)
}

// mruPushFront links slot i as the most recent entry.
func (s *Server) mruPushFront(i int32) {
	e := &s.mruStore[i]
	e.prev = mruNil
	e.next = s.mruHead
	if s.mruHead != mruNil {
		s.mruStore[s.mruHead].prev = i
	} else {
		s.mruTail = i
	}
	s.mruHead = i
	s.mruLen++
}

// mruUnlink removes slot i from the list without touching the index or the
// free list.
func (s *Server) mruUnlink(i int32) {
	e := &s.mruStore[i]
	if e.prev != mruNil {
		s.mruStore[e.prev].next = e.next
	} else {
		s.mruHead = e.next
	}
	if e.next != mruNil {
		s.mruStore[e.next].prev = e.prev
	} else {
		s.mruTail = e.prev
	}
	e.prev, e.next = mruNil, mruNil
	s.mruLen--
}

// mruMoveToFront re-links slot i as the most recent entry.
func (s *Server) mruMoveToFront(i int32) {
	if s.mruHead == i {
		return
	}
	s.mruUnlink(i)
	s.mruPushFront(i)
}

// New builds a server from cfg, applying defaults: implementation XNTPD,
// request code MON_GETLIST_1, mega replay spacing 500ms over 40 events.
func New(cfg Config) *Server {
	if cfg.Implementation == 0 {
		cfg.Implementation = ntp.ImplXNTPD
	}
	if cfg.ReqCode == 0 {
		cfg.ReqCode = ntp.ReqMonGetList1
	}
	if cfg.MegaEvents <= 0 {
		cfg.MegaEvents = 40
	}
	if cfg.MegaInterval <= 0 {
		cfg.MegaInterval = 500 * time.Millisecond
	}
	if cfg.Stratum == 0 {
		cfg.Stratum = 3
	}
	return &Server{cfg: cfg, mruHead: mruNil, mruTail: mruNil,
		index: make(map[netaddr.Addr]int32)}
}

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// Addr returns the server's address.
func (s *Server) Addr() netaddr.Addr { return s.cfg.Addr }

// IsAmplifier reports whether the daemon currently answers monlist.
func (s *Server) IsAmplifier() bool { return s.cfg.MonlistEnabled }

// Patch applies the §6 remediation: upgrade or `restrict noquery`, which
// stops monlist responses. Mode 6 usually stays on — matching the paper's
// observation that the version pool barely shrank.
func (s *Server) Patch() { s.cfg.MonlistEnabled = false }

// PatchMode6 additionally disables control queries.
func (s *Server) PatchMode6() { s.cfg.Mode6Enabled = false }

// MRULen returns the current monitor table size.
func (s *Server) MRULen() int { return s.mruLen }

// Record notes a packet from a client in the MRU list, honouring the
// 600-entry cap with least-recently-seen eviction. rep is the Rep batching
// multiplier of the observed datagram.
func (s *Server) Record(addr netaddr.Addr, port uint16, mode, version uint8, rep int64, now time.Time) {
	if rep <= 0 {
		rep = 1
	}
	if m := s.cfg.Metrics; m != nil {
		switch mode {
		case ntp.ModeClient:
			m.QueriesClient.Add(rep)
		case ntp.ModePrivate:
			m.QueriesMode7.Add(rep)
		case ntp.ModeControl:
			m.QueriesMode6.Add(rep)
		default:
			m.QueriesOther.Add(rep)
		}
	}
	s.mruGen++
	nowNs := now.UnixNano()
	if i, ok := s.index[addr]; ok {
		e := &s.mruStore[i]
		e.count += rep
		e.lastSeenNs = nowNs
		e.port = port
		e.mode = mode
		e.version = version
		s.mruMoveToFront(i)
		return
	}
	i := s.mruAlloc()
	s.mruStore[i] = mruEntry{addr: addr, port: port, mode: mode, version: version,
		count: rep, firstSeenNs: nowNs, lastSeenNs: nowNs, prev: mruNil, next: mruNil}
	s.index[addr] = i
	s.mruPushFront(i)
	if m := s.cfg.Metrics; m != nil {
		m.MRUEntries.Inc()
	}
	for s.mruLen > ntp.MaxMonlistEntries {
		back := s.mruTail
		delete(s.index, s.mruStore[back].addr)
		s.mruUnlink(back)
		s.mruFree = append(s.mruFree, back)
		if m := s.cfg.Metrics; m != nil {
			m.MRUEntries.Dec()
		}
	}
}

// ExpireOlderThan drops monitor entries whose last packet predates cutoff —
// the effect continuous client traffic has on a bounded MRU list. The
// scenario expires entries beyond ~48 hours before each survey, which is
// what bounds the §4.2 observation window (and the resulting ~3.8×
// under-sampling of attacks).
func (s *Server) ExpireOlderThan(cutoff time.Time) {
	cutoffNs := cutoff.UnixNano()
	var next int32
	for i := s.mruHead; i != mruNil; i = next {
		next = s.mruStore[i].next
		if s.mruStore[i].lastSeenNs < cutoffNs {
			delete(s.index, s.mruStore[i].addr)
			s.mruUnlink(i)
			s.mruFree = append(s.mruFree, i)
			s.mruGen++
			if m := s.cfg.Metrics; m != nil {
				m.MRUEntries.Dec()
			}
		}
	}
}

// DetachMRU settles the population MRU gauge when this daemon's table is
// being discarded wholesale (a mega rebuild replaces the Server object).
// Without it the gauge would leak the dead table's entries forever.
func (s *Server) DetachMRU() {
	if m := s.cfg.Metrics; m != nil {
		m.MRUEntries.Add(float64(-s.mruLen))
	}
}

// monlistEntries renders the MRU list as wire entries, most recent first,
// into the server's scratch slice (valid until the next call).
// Inter-arrival and last-seen are computed at query time, like ntpd does.
func (s *Server) monlistEntries(now time.Time) []ntp.MonEntry {
	out := s.entries[:0]
	nowNs := now.UnixNano()
	for i := s.mruHead; i != mruNil; i = s.mruStore[i].next {
		e := &s.mruStore[i]
		var avg uint32
		if e.count > 1 {
			avg = uint32((e.lastSeenNs - e.firstSeenNs) / int64(time.Second) / (e.count - 1))
		}
		out = append(out, ntp.MonEntry{
			Addr:        e.addr,
			DAddr:       s.cfg.Addr,
			Count:       uint32(core.Min64(e.count, 1<<32-1)),
			Mode:        e.mode,
			Version:     e.version,
			Port:        e.port,
			AvgInterval: avg,
			LastSeen:    uint32((nowNs - e.lastSeenNs) / int64(time.Second)),
		})
	}
	s.entries = out
	return out
}

// Respond is the transport-independent request path: it processes one UDP
// payload from src and returns the response payloads the daemon would send
// back (without the §3.4 mega replay, which needs a scheduler). cmd/ntpdsim
// serves real UDP sockets through this method; the netsim HandlePacket path
// produces identical responses.
func (s *Server) Respond(payload []byte, src netaddr.Addr, srcPort uint16, now time.Time) [][]byte {
	mode, ok := ntp.Mode(payload)
	if !ok {
		return nil
	}
	s.QueriesSeen++
	switch mode {
	case ntp.ModeClient:
		var req ntp.Header
		if err := req.DecodeFromBytes(payload); err != nil {
			return nil
		}
		s.Record(src, srcPort, ntp.ModeClient, req.Version, 1, now)
		return s.countResponse(nil, [][]byte{ntp.NewServerReply(&req, uint8(s.cfg.Stratum), now).AppendTo(nil)})
	case ntp.ModePrivate:
		m, err := ntp.DecodeMode7(payload)
		if err != nil || m.Response {
			return nil
		}
		s.Record(src, srcPort, ntp.ModePrivate, 2, 1, now)
		if !s.cfg.MonlistEnabled ||
			(m.Implementation != s.cfg.Implementation && m.Implementation != ntp.ImplUniv) {
			return nil
		}
		switch m.Request {
		case ntp.ReqMonGetList, ntp.ReqMonGetList1:
			return s.countResponse(s.cfg.Metrics.monlistCounter(), s.monlistFragments(m.Request, 1, now))
		case ntp.ReqPeerList:
			return s.countResponse(nil, ntp.BuildPeerListResponse(s.peerEntries(), s.cfg.Implementation))
		}
		return nil
	case ntp.ModeControl:
		m, err := ntp.DecodeMode6(payload)
		if err != nil || m.Response {
			return nil
		}
		s.Record(src, srcPort, ntp.ModeControl, 2, 1, now)
		if !s.cfg.Mode6Enabled || m.OpCode != ntp.OpReadVar {
			return nil
		}
		return s.countResponse(s.cfg.Metrics.mode6Counter(), ntp.BuildReadVarResponse(m.Sequence, s.readVarText()))
	default:
		s.Record(src, srcPort, uint8(mode), 0, 1, now)
		return nil
	}
}

// monlistCounter and mode6Counter are nil-safe accessors so the Respond path
// can thread a per-flavour packet counter without guarding every call site.
func (m *Metrics) monlistCounter() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.MonlistSent
}

func (m *Metrics) mode6Counter() *metrics.Counter {
	if m == nil {
		return nil
	}
	return m.Mode6Sent
}

// countResponse instruments the socket-serving Respond path: each returned
// payload is one response packet sent by the caller. kind, when non-nil, is
// the per-flavour packet counter.
func (s *Server) countResponse(kind *metrics.Counter, frags [][]byte) [][]byte {
	if m := s.cfg.Metrics; m != nil {
		kind.Add(int64(len(frags)))
		for _, f := range frags {
			m.BytesSent.Add(int64(packet.OnWireBytesForUDPPayload(len(f))))
		}
	}
	return frags
}

// readVarText renders the daemon's system-variable response body.
func (s *Server) readVarText() string {
	vars := ntp.SystemVariables{
		Version:   s.cfg.Profile.VersionString,
		Processor: s.cfg.Profile.Processor,
		System:    s.cfg.Profile.SystemString,
		Stratum:   s.cfg.Stratum,
		RefID:     s.refID(),
	}
	text := vars.Encode()
	for pad := 0; pad < s.cfg.ExtraVarBytes; pad += 44 {
		text += fmt.Sprintf(", peer%d=10.%d.%d.%d flash=0 reach=377", pad/44,
			pad%200, (pad/3)%200, (pad/7)%200)
	}
	return text
}

// HandlePacket implements netsim.Host: the daemon's dispatch on NTP mode.
func (s *Server) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	if dg.UDP.DstPort != ntp.Port {
		return
	}
	mode, ok := ntp.Mode(dg.Payload)
	if !ok {
		return
	}
	s.QueriesSeen += dg.Rep
	switch mode {
	case ntp.ModeClient:
		s.handleClient(nw, dg, now)
	case ntp.ModePrivate:
		s.handleMode7(nw, dg, now)
	case ntp.ModeControl:
		s.handleMode6(nw, dg, now)
	default:
		// Other modes are recorded but not answered.
		s.Record(dg.IP.Src, dg.UDP.SrcPort, uint8(mode), 0, dg.Rep, now)
	}
}

// handleClient answers an honest mode 3 time request with a mode 4 reply.
func (s *Server) handleClient(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	var req ntp.Header
	if err := req.DecodeFromBytes(dg.Payload); err != nil {
		return
	}
	s.Record(dg.IP.Src, dg.UDP.SrcPort, ntp.ModeClient, req.Version, dg.Rep, now)
	req.SetServerReply(&req, uint8(s.cfg.Stratum), now)
	s.buf = req.AppendTo(s.buf[:0])
	s.reply(nw, dg, s.buf)
}

// handleMode7 serves (or ignores) a private-mode request.
func (s *Server) handleMode7(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	var m ntp.Mode7
	if err := m.DecodeFromBytes(dg.Payload); err != nil || m.Response {
		return
	}
	s.Record(dg.IP.Src, dg.UDP.SrcPort, ntp.ModePrivate, 2, dg.Rep, now)
	if !s.cfg.MonlistEnabled {
		return // patched daemons silently drop restricted queries
	}
	if m.Implementation != s.cfg.Implementation && m.Implementation != ntp.ImplUniv {
		return // the §3.1 implementation-mismatch blind spot
	}
	switch m.Request {
	case ntp.ReqMonGetList, ntp.ReqMonGetList1:
		s.sendMonlist(nw, dg.IP.Src, dg.UDP.SrcPort, dg.Rep, m.Request, now)
		if s.cfg.MegaAmp {
			s.startMegaReplay(nw, dg, m.Request)
		}
	case ntp.ReqPeerList:
		for _, frag := range ntp.BuildPeerListResponse(s.peerEntries(), s.cfg.Implementation) {
			if s.send(nw, dg.IP.Src, dg.UDP.SrcPort, frag, dg.Rep) {
				s.BytesSent += int64(s.out.OnWire()) * dg.Rep
				if m := s.cfg.Metrics; m != nil {
					m.BytesSent.Add(int64(s.out.OnWire()) * dg.Rep)
				}
			}
		}
	}
}

// send builds a reply in the server's scratch datagram and hands it to the
// fabric. The scratch is reusable the moment SendFrom returns: the fabric
// copies both header and payload into its own pooled datagram.
func (s *Server) send(nw *netsim.Network, dst netaddr.Addr, dstPort uint16, payload []byte, rep int64) bool {
	s.out.IP = packet.IPv4{TTL: s.cfg.Profile.TTL, Protocol: packet.ProtocolUDP, Src: s.cfg.Addr, Dst: dst}
	s.out.UDP = packet.UDP{SrcPort: ntp.Port, DstPort: dstPort}
	s.out.Payload = payload
	s.out.Rep = rep
	return nw.SendFrom(s.cfg.Addr, &s.out)
}

// peerEntries renders the configured upstream associations.
func (s *Server) peerEntries() []ntp.PeerEntry {
	out := make([]ntp.PeerEntry, len(s.cfg.Peers))
	for i, p := range s.cfg.Peers {
		out[i] = ntp.PeerEntry{Addr: p, Port: ntp.Port, HMode: ntp.ModeClient, Flags: 0x01}
	}
	return out
}

// sendMonlist emits the fragmented monlist response toward the trigger's
// (possibly spoofed) source address and port. It deliberately takes the
// addressing by value, not the trigger datagram: the fabric owns delivered
// datagrams and recycles them after HandlePacket returns, so nothing here
// may outlive the call holding one.
func (s *Server) sendMonlist(nw *netsim.Network, victim netaddr.Addr, victimPort uint16, rep int64, reqCode uint8, now time.Time) {
	fragments := s.monlistFragments(reqCode, rep, now)
	for _, frag := range fragments {
		if s.send(nw, victim, victimPort, frag, rep) {
			s.MonlistSent += rep
			s.BytesSent += int64(s.out.OnWire()) * rep
			if m := s.cfg.Metrics; m != nil {
				m.MonlistSent.Add(rep)
				m.BytesSent.Add(int64(s.out.OnWire()) * rep)
			}
		}
	}
}

// monlistFragments returns the encoded response via a staleness-tolerant
// cache: under attack, a daemon's 600-entry table is re-encoded at most
// every ten minutes rather than per trigger. Survey probes may therefore
// see a table a few minutes old — consistent with the paper's observation
// that the probe is "typically but not always" the topmost entry.
//
// The returned fragments are valid until the next rebuild (they reuse the
// cache's buffers); the fabric copies them during SendFrom and the socket
// path writes them out before processing another packet, so neither caller
// outlives them.
func (s *Server) monlistFragments(reqCode uint8, rep int64, now time.Time) [][]byte {
	const maxGenDrift = 500
	if s.cacheFrags != nil && s.cacheReq == reqCode &&
		s.mruGen-s.cacheGen <= maxGenDrift && now.Sub(s.cacheAt) < 10*time.Minute {
		return s.cacheFrags
	}
	prev := s.cacheFrags
	if s.cacheReq != reqCode {
		prev = nil // item size changed: stale buffers would be mis-sized
	}
	frags := ntp.AppendMonlistResponse(prev, s.monlistEntries(now), s.cfg.Implementation, reqCode)
	s.cacheFrags = frags
	s.cacheReq = reqCode
	s.cacheGen = s.mruGen
	s.cacheAt = now
	return frags
}

// startMegaReplay schedules the §3.4 flaw: the daemon re-processes the query
// repeatedly, incrementing the querier's count and resending the updated
// table. The replay volume is Rep-batched over MegaEvents scheduler events.
func (s *Server) startMegaReplay(nw *netsim.Network, trigger *packet.Datagram, reqCode uint8) {
	if s.cfg.MegaRepeats <= 0 || nw.Now().Before(s.megaUntil) {
		return
	}
	events := s.cfg.MegaEvents
	if m := s.cfg.Metrics; m != nil {
		m.MegaStorms.Inc()
	}
	s.megaUntil = nw.Now().Add(time.Duration(events+1) * s.cfg.MegaInterval)
	perEvent := s.cfg.MegaRepeats / int64(events)
	if perEvent <= 0 {
		perEvent = 1
		events = int(s.cfg.MegaRepeats)
	}
	src, sport := trigger.IP.Src, trigger.UDP.SrcPort
	for i := 1; i <= events; i++ {
		nw.Scheduler().After(time.Duration(i)*s.cfg.MegaInterval, func(now time.Time) {
			// Each replay batch re-counts the querier, exactly the behaviour
			// the paper reverse-engineered from the repeating tables.
			s.Record(src, sport, ntp.ModePrivate, 2, perEvent, now)
			s.sendMonlist(nw, src, sport, perEvent, reqCode, now)
		})
	}
}

// handleMode6 serves a readvar (version) request.
func (s *Server) handleMode6(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	var m ntp.Mode6
	if err := m.DecodeFromBytes(dg.Payload); err != nil || m.Response {
		return
	}
	s.Record(dg.IP.Src, dg.UDP.SrcPort, ntp.ModeControl, 2, dg.Rep, now)
	if !s.cfg.Mode6Enabled || m.OpCode != ntp.OpReadVar {
		return
	}
	if s.varFrags == nil {
		// The variable text is a pure function of the config, so the
		// fragments are encoded once per daemon; only the echoed sequence
		// number differs between queries, patched below.
		s.varFrags = ntp.BuildReadVarResponse(0, s.readVarText())
	}
	for _, frag := range s.varFrags {
		binary.BigEndian.PutUint16(frag[2:], m.Sequence)
		if s.send(nw, dg.IP.Src, dg.UDP.SrcPort, frag, dg.Rep) {
			s.BytesSent += int64(s.out.OnWire()) * dg.Rep
			if mm := s.cfg.Metrics; mm != nil {
				mm.Mode6Sent.Add(dg.Rep)
				mm.BytesSent.Add(int64(s.out.OnWire()) * dg.Rep)
			}
		}
	}
}

func (s *Server) refID() string {
	if s.cfg.Stratum == ntp.StratumUnsynchronized {
		return "INIT"
	}
	return "GPS"
}

// reply sends a unicast response back to the querying datagram's source.
func (s *Server) reply(nw *netsim.Network, dg *packet.Datagram, payload []byte) {
	if s.send(nw, dg.IP.Src, dg.UDP.SrcPort, payload, dg.Rep) {
		s.BytesSent += int64(s.out.OnWire()) * dg.Rep
		if m := s.cfg.Metrics; m != nil {
			m.BytesSent.Add(int64(s.out.OnWire()) * dg.Rep)
		}
	}
}
