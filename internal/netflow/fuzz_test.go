package netflow

import (
	"testing"

	"ntpddos/internal/netaddr"
)

// FuzzDecode drives the v5 export decoder: arbitrary datagrams must either
// error or yield exactly the header-declared record count, and anything
// that decodes must survive the collector without a panic.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(Header{SysUptimeMs: 60000, UnixSecs: 1385856000, FlowSequence: 42}, []Record{
		{SrcAddr: netaddr.MustParseAddr("192.0.2.1"), DstAddr: netaddr.MustParseAddr("198.51.100.2"),
			SrcPort: 123, DstPort: 80, Packets: 500, Octets: 240000, First: 1000, Last: 59000},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	empty, err := Encode(Header{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, records, err := Decode(data)
		if err != nil {
			return
		}
		if int(h.Count) != len(records) {
			t.Fatalf("header claims %d records, decoder returned %d", h.Count, len(records))
		}
		c := NewCollector()
		if err := c.Ingest(data); err != nil {
			t.Fatalf("collector rejected what Decode accepted: %v", err)
		}
		if c.Flows != int64(len(records)) {
			t.Fatalf("collector counted %d flows of %d records", c.Flows, len(records))
		}
	})
}
