// Package netflow implements the NetFlow v5 export format and a flow-cache
// exporter — the substrate behind the paper's global dataset: "Arbor
// Networks collects traffic data, via appliances that export network flow
// statistics" (§2.1). The regional views can export their traffic as real
// v5 datagrams, and a collector reassembles per-protocol volume from them.
//
// Wire format per Cisco's spec: a 24-byte header followed by up to 30
// 48-byte flow records.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/packet"
)

// Version is the only export version this package speaks.
const Version = 5

// HeaderLen and RecordLen are the fixed v5 sizes.
const (
	HeaderLen  = 24
	RecordLen  = 48
	MaxRecords = 30
)

// Record is one v5 flow record.
type Record struct {
	SrcAddr  netaddr.Addr
	DstAddr  netaddr.Addr
	NextHop  netaddr.Addr
	Packets  uint32
	Octets   uint32
	First    uint32 // sysUptime ms at flow start
	Last     uint32 // sysUptime ms at flow end
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Protocol uint8
	TOS      uint8
	SrcAS    uint16
	DstAS    uint16
}

// Header is the v5 export header.
type Header struct {
	Count            uint16
	SysUptimeMs      uint32
	UnixSecs         uint32
	UnixNsecs        uint32
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16
}

// Errors.
var (
	ErrTruncated  = errors.New("netflow: truncated export")
	ErrBadVersion = errors.New("netflow: not a v5 export")
)

// Encode serializes a header plus records into one export datagram.
func Encode(h Header, records []Record) ([]byte, error) {
	if len(records) > MaxRecords {
		return nil, fmt.Errorf("netflow: %d records exceed the v5 limit of %d", len(records), MaxRecords)
	}
	h.Count = uint16(len(records))
	b := make([]byte, 0, HeaderLen+len(records)*RecordLen)
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint16(b, h.Count)
	b = binary.BigEndian.AppendUint32(b, h.SysUptimeMs)
	b = binary.BigEndian.AppendUint32(b, h.UnixSecs)
	b = binary.BigEndian.AppendUint32(b, h.UnixNsecs)
	b = binary.BigEndian.AppendUint32(b, h.FlowSequence)
	b = append(b, h.EngineType, h.EngineID)
	b = binary.BigEndian.AppendUint16(b, h.SamplingInterval)
	for _, r := range records {
		b = binary.BigEndian.AppendUint32(b, uint32(r.SrcAddr))
		b = binary.BigEndian.AppendUint32(b, uint32(r.DstAddr))
		b = binary.BigEndian.AppendUint32(b, uint32(r.NextHop))
		b = binary.BigEndian.AppendUint16(b, 0) // input ifindex
		b = binary.BigEndian.AppendUint16(b, 0) // output ifindex
		b = binary.BigEndian.AppendUint32(b, r.Packets)
		b = binary.BigEndian.AppendUint32(b, r.Octets)
		b = binary.BigEndian.AppendUint32(b, r.First)
		b = binary.BigEndian.AppendUint32(b, r.Last)
		b = binary.BigEndian.AppendUint16(b, r.SrcPort)
		b = binary.BigEndian.AppendUint16(b, r.DstPort)
		b = append(b, 0, r.TCPFlags, r.Protocol, r.TOS)
		b = binary.BigEndian.AppendUint16(b, r.SrcAS)
		b = binary.BigEndian.AppendUint16(b, r.DstAS)
		b = append(b, 0, 0, 0, 0) // masks + pad
	}
	return b, nil
}

// Decode parses one export datagram.
func Decode(data []byte) (Header, []Record, error) {
	var h Header
	if len(data) < HeaderLen {
		return h, nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != Version {
		return h, nil, ErrBadVersion
	}
	h.Count = binary.BigEndian.Uint16(data[2:])
	h.SysUptimeMs = binary.BigEndian.Uint32(data[4:])
	h.UnixSecs = binary.BigEndian.Uint32(data[8:])
	h.UnixNsecs = binary.BigEndian.Uint32(data[12:])
	h.FlowSequence = binary.BigEndian.Uint32(data[16:])
	h.EngineType = data[20]
	h.EngineID = data[21]
	h.SamplingInterval = binary.BigEndian.Uint16(data[22:])
	want := HeaderLen + int(h.Count)*RecordLen
	if len(data) < want {
		return h, nil, fmt.Errorf("%w: %d records need %d bytes, have %d",
			ErrTruncated, h.Count, want, len(data))
	}
	records := make([]Record, h.Count)
	for i := range records {
		off := HeaderLen + i*RecordLen
		rec := data[off:]
		records[i] = Record{
			SrcAddr:  netaddr.Addr(binary.BigEndian.Uint32(rec[0:])),
			DstAddr:  netaddr.Addr(binary.BigEndian.Uint32(rec[4:])),
			NextHop:  netaddr.Addr(binary.BigEndian.Uint32(rec[8:])),
			Packets:  binary.BigEndian.Uint32(rec[16:]),
			Octets:   binary.BigEndian.Uint32(rec[20:]),
			First:    binary.BigEndian.Uint32(rec[24:]),
			Last:     binary.BigEndian.Uint32(rec[28:]),
			SrcPort:  binary.BigEndian.Uint16(rec[32:]),
			DstPort:  binary.BigEndian.Uint16(rec[34:]),
			TCPFlags: rec[37],
			Protocol: rec[38],
			TOS:      rec[39],
			SrcAS:    binary.BigEndian.Uint16(rec[40:]),
			DstAS:    binary.BigEndian.Uint16(rec[42:]),
		}
	}
	return h, records, nil
}

// flowKey identifies a flow-cache entry.
type flowKey struct {
	src, dst         netaddr.Addr
	srcPort, dstPort uint16
	proto            uint8
}

type flowState struct {
	packets uint64
	octets  uint64
	first   time.Time
	last    time.Time
}

// Exporter is a flow cache in front of a v5 emitter: packets aggregate into
// flows, and flows are flushed when idle (InactiveTimeout), long-lived
// (ActiveTimeout) or on demand — the standard router behaviour.
type Exporter struct {
	// Emit receives encoded v5 export datagrams.
	Emit func(datagram []byte)
	// Boot anchors the sysUptime clock.
	Boot time.Time
	// ActiveTimeout and InactiveTimeout control flushing.
	ActiveTimeout   time.Duration
	InactiveTimeout time.Duration

	cache   map[flowKey]*flowState
	pending []Record
	seq     uint32
	now     time.Time
}

// NewExporter builds an exporter with the Cisco default timeouts
// (30 minutes active, 15 seconds inactive).
func NewExporter(boot time.Time, emit func([]byte)) *Exporter {
	return &Exporter{
		Emit: emit, Boot: boot,
		ActiveTimeout: 30 * time.Minute, InactiveTimeout: 15 * time.Second,
		cache: make(map[flowKey]*flowState),
	}
}

// Observe implements netsim.Tap: account one datagram into the flow cache.
func (e *Exporter) Observe(dg *packet.Datagram, now time.Time) {
	e.advance(now)
	key := flowKey{src: dg.IP.Src, dst: dg.IP.Dst,
		srcPort: dg.UDP.SrcPort, dstPort: dg.UDP.DstPort, proto: dg.IP.Protocol}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	f, ok := e.cache[key]
	if !ok {
		f = &flowState{first: now}
		e.cache[key] = f
	}
	f.packets += uint64(rep)
	f.octets += uint64(dg.IPLen()) * uint64(rep)
	f.last = now
}

// advance expires flows against the new time.
func (e *Exporter) advance(now time.Time) {
	if now.Before(e.now) {
		now = e.now
	}
	e.now = now
	for key, f := range e.cache {
		if now.Sub(f.last) > e.InactiveTimeout || now.Sub(f.first) > e.ActiveTimeout {
			e.expire(key, f)
		}
	}
	e.flushPending(false)
}

// expire converts a cache entry to pending records (splitting counters that
// overflow the 32-bit v5 fields, as real exporters do).
func (e *Exporter) expire(key flowKey, f *flowState) {
	delete(e.cache, key)
	packets, octets := f.packets, f.octets
	for packets > 0 || octets > 0 {
		p := packets
		if p > 1<<32-1 {
			p = 1<<32 - 1
		}
		o := octets
		if o > 1<<32-1 {
			o = 1<<32 - 1
		}
		e.pending = append(e.pending, Record{
			SrcAddr: key.src, DstAddr: key.dst,
			SrcPort: key.srcPort, DstPort: key.dstPort, Protocol: key.proto,
			Packets: uint32(p), Octets: uint32(o),
			First: e.uptimeMs(f.first), Last: e.uptimeMs(f.last),
		})
		packets -= p
		octets -= o
	}
}

func (e *Exporter) uptimeMs(t time.Time) uint32 {
	return uint32(t.Sub(e.Boot) / time.Millisecond)
}

// flushPending emits full export datagrams; when force is set, partial ones
// too.
func (e *Exporter) flushPending(force bool) {
	for len(e.pending) >= MaxRecords || (force && len(e.pending) > 0) {
		n := len(e.pending)
		if n > MaxRecords {
			n = MaxRecords
		}
		batch := e.pending[:n]
		e.pending = e.pending[n:]
		h := Header{
			SysUptimeMs:  e.uptimeMs(e.now),
			UnixSecs:     uint32(e.now.Unix()),
			UnixNsecs:    uint32(e.now.Nanosecond()),
			FlowSequence: e.seq,
		}
		e.seq += uint32(n)
		if dg, err := Encode(h, batch); err == nil && e.Emit != nil {
			e.Emit(dg)
		}
	}
}

// Flush expires everything and emits all pending records.
func (e *Exporter) Flush(now time.Time) {
	e.advance(now)
	for key, f := range e.cache {
		e.expire(key, f)
	}
	e.flushPending(true)
}

// CacheLen reports live flows (for tests and monitoring).
func (e *Exporter) CacheLen() int { return len(e.cache) }

// Collector tallies decoded exports back into per-port byte counts — the
// consumer side an analytics vendor runs.
type Collector struct {
	Flows     int64
	Packets   int64
	Octets    int64
	ByDstPort map[uint16]int64
	LastSeq   uint32
	// SeqGaps counts exports that arrived with a sequence number ahead of
	// the expected one (flows lost in transit); Reordered counts exports
	// that arrived behind it (late, duplicated, or out-of-order datagrams —
	// UDP transport makes all three routine). A reordered export still has
	// its records accumulated; real collectors cannot tell a retransmit
	// from a late first arrival without keeping a full sequence window.
	SeqGaps     int64
	Reordered   int64
	seqExpected uint32
	started     bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{ByDstPort: make(map[uint16]int64)}
}

// Ingest decodes one export datagram and accumulates it, tracking flow
// sequence gaps (lost exports) like a real collector.
func (c *Collector) Ingest(datagram []byte) error {
	h, records, err := Decode(datagram)
	if err != nil {
		return err
	}
	if c.started && h.FlowSequence != c.seqExpected {
		// Signed distance classifies the miss: ahead means flows were lost
		// upstream, behind means this export is late or duplicated.
		if int32(h.FlowSequence-c.seqExpected) > 0 {
			c.SeqGaps++
		} else {
			c.Reordered++
		}
	}
	if !c.started || int32(h.FlowSequence-c.seqExpected) >= 0 {
		// Late arrivals do not move the expectation: the next in-order
		// export after a reordered one should not count as a second gap.
		c.seqExpected = h.FlowSequence + uint32(len(records))
		c.LastSeq = h.FlowSequence
	}
	c.started = true
	for _, r := range records {
		c.Flows++
		c.Packets += int64(r.Packets)
		c.Octets += int64(r.Octets)
		c.ByDstPort[r.DstPort] += int64(r.Octets)
	}
	return nil
}
