package netflow

import (
	"testing"
	"testing/quick"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{SysUptimeMs: 123456, UnixSecs: 1392076800, FlowSequence: 42}
	records := []Record{
		{SrcAddr: 0x0a000001, DstAddr: 0xcb007147, SrcPort: 123, DstPort: 80,
			Protocol: 17, Packets: 1000, Octets: 480000, First: 100, Last: 5000},
		{SrcAddr: 1, DstAddr: 2, SrcPort: 53, DstPort: 4444, Protocol: 17,
			Packets: 1, Octets: 64},
	}
	raw, err := Encode(h, records)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != HeaderLen+2*RecordLen {
		t.Fatalf("encoded %d bytes", len(raw))
	}
	gh, got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Count != 2 || gh.FlowSequence != 42 || gh.UnixSecs != 1392076800 {
		t.Fatalf("header = %+v", gh)
	}
	for i := range records {
		if got[i] != records[i] {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, pkts, octs uint32) bool {
		r := Record{SrcAddr: netaddr.Addr(src), DstAddr: netaddr.Addr(dst),
			SrcPort: sp, DstPort: dp, Protocol: 17, Packets: pkts, Octets: octs}
		raw, err := Encode(Header{}, []Record{r})
		if err != nil {
			return false
		}
		_, got, err := Decode(raw)
		return err == nil && len(got) == 1 && got[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	if _, err := Encode(Header{}, make([]Record, MaxRecords+1)); err == nil {
		t.Fatal("31 records accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrTruncated {
		t.Fatalf("nil: %v", err)
	}
	bad := make([]byte, HeaderLen)
	bad[1] = 9 // version 9
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	short, _ := Encode(Header{}, []Record{{}})
	if _, _, err := Decode(short[:HeaderLen+10]); err == nil {
		t.Fatal("truncated records accepted")
	}
}

func TestExporterAggregatesAndExpires(t *testing.T) {
	boot := vtime.Epoch
	var exports [][]byte
	e := NewExporter(boot, func(b []byte) { exports = append(exports, b) })

	mk := func(rep int64) *packet.Datagram {
		dg := packet.NewDatagram(netaddr.Addr(10), 123, netaddr.Addr(20), 80, make([]byte, 440))
		dg.Rep = rep
		return dg
	}
	now := boot.Add(time.Minute)
	e.Observe(mk(100), now)
	e.Observe(mk(50), now.Add(time.Second))
	if e.CacheLen() != 1 {
		t.Fatalf("cache = %d flows, want 1 (aggregated)", e.CacheLen())
	}
	// Nothing flushed yet: flow still active.
	if len(exports) != 0 {
		t.Fatal("active flow exported prematurely")
	}
	// 20 seconds of silence: inactive timeout expires it.
	e.Flush(now.Add(21 * time.Second))
	if len(exports) != 1 {
		t.Fatalf("%d exports", len(exports))
	}
	_, records, err := Decode(exports[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("%d records", len(records))
	}
	r := records[0]
	if r.Packets != 150 {
		t.Fatalf("packets = %d, want 150 (Rep-weighted)", r.Packets)
	}
	if r.Octets != 150*uint32(packet.IPv4HeaderLen+packet.UDPHeaderLen+440) {
		t.Fatalf("octets = %d", r.Octets)
	}
	if r.SrcPort != 123 || r.DstPort != 80 || r.Protocol != packet.ProtocolUDP {
		t.Fatalf("record = %+v", r)
	}
}

func TestExporterSplitsOverflowingCounters(t *testing.T) {
	var exports [][]byte
	e := NewExporter(vtime.Epoch, func(b []byte) { exports = append(exports, b) })
	dg := packet.NewDatagram(1, 123, 2, 80, make([]byte, 1000))
	dg.Rep = 6_000_000_000 // ~6e12 octets: overflows uint32
	e.Observe(dg, vtime.Epoch.Add(time.Second))
	e.Flush(vtime.Epoch.Add(time.Minute))
	var total int64
	c := NewCollector()
	for _, ex := range exports {
		if err := c.Ingest(ex); err != nil {
			t.Fatal(err)
		}
	}
	total = c.Octets
	want := int64(6_000_000_000) * int64(packet.IPv4HeaderLen+packet.UDPHeaderLen+1000)
	if total != want {
		t.Fatalf("octets across split records = %d, want %d", total, want)
	}
	if c.Flows < 2 {
		t.Fatalf("overflow produced %d records, want >= 2", c.Flows)
	}
}

func TestCollectorSequenceGapDetection(t *testing.T) {
	var exports [][]byte
	e := NewExporter(vtime.Epoch, func(b []byte) { exports = append(exports, b) })
	for i := 0; i < 100; i++ {
		dg := packet.NewDatagram(netaddr.Addr(i), 123, netaddr.Addr(1000+i), 80, make([]byte, 100))
		e.Observe(dg, vtime.Epoch.Add(time.Duration(i)*time.Millisecond))
	}
	e.Flush(vtime.Epoch.Add(time.Hour))
	if len(exports) < 3 {
		t.Fatalf("%d exports, want several (100 flows / 30 per export)", len(exports))
	}
	c := NewCollector()
	for i, ex := range exports {
		if i == 1 {
			continue // drop one export datagram
		}
		c.Ingest(ex)
	}
	if c.SeqGaps == 0 {
		t.Fatal("dropped export not detected via flow sequence")
	}
}

// makeExports produces a train of sequence-contiguous export datagrams.
func makeExports(t *testing.T, n int) [][]byte {
	t.Helper()
	var exports [][]byte
	e := NewExporter(vtime.Epoch, func(b []byte) { exports = append(exports, b) })
	for i := 0; i < 40*n; i++ {
		dg := packet.NewDatagram(netaddr.Addr(i), 123, netaddr.Addr(100000+i), 80, make([]byte, 100))
		e.Observe(dg, vtime.Epoch.Add(time.Duration(i)*time.Millisecond))
	}
	e.Flush(vtime.Epoch.Add(time.Hour))
	if len(exports) < n {
		t.Fatalf("%d exports, want at least %d", len(exports), n)
	}
	return exports[:n]
}

// TestCollectorReordering delivers a late export between two in-order ones:
// UDP reordering must be classified as Reordered, not as a loss, and must
// not cascade into a spurious gap on the next in-order datagram.
func TestCollectorReordering(t *testing.T) {
	exports := makeExports(t, 4)
	c := NewCollector()
	for _, i := range []int{0, 2, 1, 3} { // export 1 arrives late
		if err := c.Ingest(exports[i]); err != nil {
			t.Fatal(err)
		}
	}
	if c.SeqGaps != 1 {
		t.Fatalf("SeqGaps = %d, want 1 (the hole while export 1 was in flight)", c.SeqGaps)
	}
	if c.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1 (the late arrival)", c.Reordered)
	}
	// All four exports' records were still accumulated.
	var total int64
	for _, ex := range exports {
		_, recs, err := Decode(ex)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(recs))
	}
	if c.Flows != total {
		t.Fatalf("Flows = %d, want %d (reordered records must still count)", c.Flows, total)
	}
}

// TestCollectorDuplication replays an export datagram (a retransmit or a
// mirrored path): the duplicate counts as Reordered, never as a gap, and
// subsequent in-order exports remain gap-free.
func TestCollectorDuplication(t *testing.T) {
	exports := makeExports(t, 3)
	c := NewCollector()
	for _, i := range []int{0, 1, 1, 2} { // export 1 delivered twice
		if err := c.Ingest(exports[i]); err != nil {
			t.Fatal(err)
		}
	}
	if c.SeqGaps != 0 {
		t.Fatalf("SeqGaps = %d, want 0 (a duplicate is not a loss)", c.SeqGaps)
	}
	if c.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1 (the duplicate)", c.Reordered)
	}
}

// TestCollectorInOrderClean is the control: a clean contiguous train
// produces neither gaps nor reorders.
func TestCollectorInOrderClean(t *testing.T) {
	exports := makeExports(t, 5)
	c := NewCollector()
	for _, ex := range exports {
		if err := c.Ingest(ex); err != nil {
			t.Fatal(err)
		}
	}
	if c.SeqGaps != 0 || c.Reordered != 0 {
		t.Fatalf("clean train: SeqGaps=%d Reordered=%d, want 0/0", c.SeqGaps, c.Reordered)
	}
}

// TestFabricToCollector wires the exporter as a fabric tap: reflected
// attack traffic must arrive at the collector with byte totals matching
// the fabric's own accounting of IP bytes.
func TestFabricToCollector(t *testing.T) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	c := NewCollector()
	e := NewExporter(clock.Now(), func(b []byte) { c.Ingest(b) })
	nw.AddTap(e)

	srv := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.2"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	nw.Register(srv.Addr(), srv)
	scanner := netaddr.MustParseAddr("198.51.100.9")
	nw.Register(scanner, netsim.HostFunc(func(*netsim.Network, *packet.Datagram, time.Time) {}))
	for i := 0; i < 10; i++ {
		srv.Record(netaddr.Addr(0x0b000000+uint32(i)), ntp.Port, ntp.ModeClient, 4, 1, clock.Now())
	}
	nw.SendUDP(scanner, 57915, srv.Addr(), ntp.Port, netsim.TTLLinux,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	sched.Drain()
	e.Flush(clock.Now().Add(time.Hour))

	if c.Flows < 2 { // probe flow + response flow
		t.Fatalf("collector saw %d flows", c.Flows)
	}
	if c.ByDstPort[ntp.Port] == 0 {
		t.Fatal("no bytes toward port 123 in the flow data")
	}
	if c.ByDstPort[57915] == 0 {
		t.Fatal("no response bytes back to the scanner in the flow data")
	}
}
