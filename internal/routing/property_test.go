package routing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ntpddos/internal/netaddr"
)

// bruteForceLookup is the obviously-correct reference: scan every route and
// keep the longest match.
func bruteForceLookup(routes []Route, a netaddr.Addr) (Route, bool) {
	best := Route{Prefix: netaddr.Prefix{Bits: -1}}
	found := false
	for _, r := range routes {
		if r.Prefix.Contains(a) && r.Prefix.Bits > best.Prefix.Bits {
			best = r
			found = true
		}
	}
	return best, found
}

// TestLookupMatchesBruteForce cross-checks the per-length-map LPM against a
// linear scan over random tables and random addresses.
func TestLookupMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		tab := NewTable()
		var routes []Route
		n := 1 + r.IntN(60)
		for i := 0; i < n; i++ {
			bits := r.IntN(33)
			p := netaddr.NewPrefix(netaddr.Addr(r.Uint32()), bits)
			asn := ASN(r.IntN(1000))
			tab.Announce(p, asn)
			// mirror the overwrite semantics
			replaced := false
			for j := range routes {
				if routes[j].Prefix == p {
					routes[j].Origin = asn
					replaced = true
				}
			}
			if !replaced {
				routes = append(routes, Route{Prefix: p, Origin: asn})
			}
		}
		tab.Freeze()
		for q := 0; q < 50; q++ {
			a := netaddr.Addr(r.Uint32())
			got, okGot := tab.Lookup(a)
			want, okWant := bruteForceLookup(routes, a)
			if okGot != okWant {
				return false
			}
			if okGot && (got.Prefix != want.Prefix || got.Origin != want.Origin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
