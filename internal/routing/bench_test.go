package routing

import (
	"testing"

	"ntpddos/internal/netaddr"
)

func benchTable(routes int) *Table {
	t := NewTable()
	for i := 0; i < routes; i++ {
		base := netaddr.Addr(uint32(i) * 65536)
		t.Announce(netaddr.NewPrefix(base, 16), ASN(i%5000))
		if i%4 == 0 {
			t.Announce(netaddr.NewPrefix(base, 20), ASN(i%5000+10000))
		}
	}
	t.Freeze()
	return t
}

func BenchmarkLookup(b *testing.B) {
	t := benchTable(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(netaddr.Addr(uint32(i) * 2654435761))
	}
}

func BenchmarkAggregate(b *testing.B) {
	t := benchTable(10000)
	addrs := make([]netaddr.Addr, 10000)
	for i := range addrs {
		addrs[i] = netaddr.Addr(uint32(i) * 40503)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Aggregate(addrs)
	}
}
