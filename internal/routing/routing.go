// Package routing implements the longest-prefix-match table and routed-block
// registry the analysis joins against: every amplifier and victim IP is
// attributed to a routed block and an origin AS, the aggregation levels of
// Figure 3 and Table 1.
package routing

import (
	"fmt"
	"sort"

	"ntpddos/internal/netaddr"
)

// ASN is an autonomous system number.
type ASN uint32

// Route is one announced block and its origin.
type Route struct {
	Prefix netaddr.Prefix
	Origin ASN
}

// Table is a longest-prefix-match routing table. Build it with Announce and
// then call Freeze (or just Lookup, which freezes lazily) before lookups.
// The lookup strategy is per-length hash maps probed longest-first: with the
// ≤25 announced lengths of a real table this is a handful of map probes per
// lookup, plenty for simulation scale and free of pointer-heavy tries.
type Table struct {
	byLen  [33]map[netaddr.Addr]ASN
	routes []Route
	frozen bool
}

// NewTable returns an empty routing table.
func NewTable() *Table { return &Table{} }

// Announce adds a route. Re-announcing the same prefix overwrites the origin
// (latest announcement wins, as in BGP). Announcing after Freeze panics —
// the simulated control plane is static once the world is built.
func (t *Table) Announce(p netaddr.Prefix, origin ASN) {
	if t.frozen {
		panic("routing: Announce after Freeze")
	}
	if t.byLen[p.Bits] == nil {
		t.byLen[p.Bits] = make(map[netaddr.Addr]ASN)
	}
	if _, exists := t.byLen[p.Bits][p.Base]; !exists {
		t.routes = append(t.routes, Route{Prefix: p, Origin: origin})
	} else {
		for i := range t.routes {
			if t.routes[i].Prefix == p {
				t.routes[i].Origin = origin
				break
			}
		}
	}
	t.byLen[p.Bits][p.Base] = origin
}

// Freeze sorts the route list and marks the table immutable.
func (t *Table) Freeze() {
	if t.frozen {
		return
	}
	sort.Slice(t.routes, func(i, j int) bool {
		return t.routes[i].Prefix.Compare(t.routes[j].Prefix) < 0
	})
	t.frozen = true
}

// Lookup returns the longest-prefix-match route for addr. ok is false when
// the address is unrouted (dark space).
func (t *Table) Lookup(a netaddr.Addr) (Route, bool) {
	for bits := 32; bits >= 0; bits-- {
		m := t.byLen[bits]
		if m == nil {
			continue
		}
		base := a
		if bits < 32 {
			base = a &^ (1<<(32-bits) - 1)
		}
		if origin, ok := m[base]; ok {
			return Route{Prefix: netaddr.Prefix{Base: base, Bits: bits}, Origin: origin}, true
		}
	}
	return Route{}, false
}

// OriginOf returns the origin AS for addr, or (0, false) for dark space.
func (t *Table) OriginOf(a netaddr.Addr) (ASN, bool) {
	r, ok := t.Lookup(a)
	return r.Origin, ok
}

// RoutedBlockOf returns the most-specific announced block covering addr —
// the paper's "routed block" aggregation unit.
func (t *Table) RoutedBlockOf(a netaddr.Addr) (netaddr.Prefix, bool) {
	r, ok := t.Lookup(a)
	return r.Prefix, ok
}

// Routes returns all announced routes in deterministic (prefix) order. The
// table must be frozen first.
func (t *Table) Routes() []Route {
	if !t.frozen {
		panic("routing: Routes before Freeze")
	}
	return t.routes
}

// NumRoutes returns the number of announced blocks.
func (t *Table) NumRoutes() int { return len(t.routes) }

// GroupCounts aggregates a set of addresses at the three levels the paper's
// Table 1 and Figure 3 report: distinct routed blocks, distinct origin ASes,
// and (for convenience) the count of addresses that were unrouted.
type GroupCounts struct {
	Blocks   int
	ASNs     int
	Unrouted int
}

// Aggregate computes GroupCounts for the given addresses.
func (t *Table) Aggregate(addrs []netaddr.Addr) GroupCounts {
	blocks := make(map[netaddr.Prefix]struct{})
	asns := make(map[ASN]struct{})
	var g GroupCounts
	for _, a := range addrs {
		r, ok := t.Lookup(a)
		if !ok {
			g.Unrouted++
			continue
		}
		blocks[r.Prefix] = struct{}{}
		asns[r.Origin] = struct{}{}
	}
	g.Blocks = len(blocks)
	g.ASNs = len(asns)
	return g
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("routing.Table{%d routes}", len(t.routes))
}
