package routing

import (
	"testing"

	"ntpddos/internal/netaddr"
)

func buildTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable()
	tab.Announce(netaddr.MustParsePrefix("10.0.0.0/8"), 100)
	tab.Announce(netaddr.MustParsePrefix("10.1.0.0/16"), 200)
	tab.Announce(netaddr.MustParsePrefix("10.1.2.0/24"), 300)
	tab.Announce(netaddr.MustParsePrefix("192.0.2.0/24"), 400)
	tab.Freeze()
	return tab
}

func TestLongestPrefixMatch(t *testing.T) {
	tab := buildTable(t)
	cases := []struct {
		addr string
		asn  ASN
	}{
		{"10.200.1.1", 100}, // only the /8 covers
		{"10.1.99.1", 200},  // /16 beats /8
		{"10.1.2.3", 300},   // /24 beats /16 and /8
		{"192.0.2.200", 400},
	}
	for _, c := range cases {
		r, ok := tab.Lookup(netaddr.MustParseAddr(c.addr))
		if !ok || r.Origin != c.asn {
			t.Fatalf("Lookup(%s) = %+v/%v, want ASN %d", c.addr, r, ok, c.asn)
		}
	}
}

func TestLookupDarkSpace(t *testing.T) {
	tab := buildTable(t)
	if _, ok := tab.Lookup(netaddr.MustParseAddr("203.0.113.1")); ok {
		t.Fatal("unrouted address resolved")
	}
	if _, ok := tab.OriginOf(netaddr.MustParseAddr("203.0.113.1")); ok {
		t.Fatal("OriginOf resolved dark space")
	}
}

func TestRoutedBlockOf(t *testing.T) {
	tab := buildTable(t)
	p, ok := tab.RoutedBlockOf(netaddr.MustParseAddr("10.1.2.3"))
	if !ok || p != netaddr.MustParsePrefix("10.1.2.0/24") {
		t.Fatalf("RoutedBlockOf = %v/%v", p, ok)
	}
}

func TestReannounceOverwrites(t *testing.T) {
	tab := NewTable()
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	tab.Announce(p, 1)
	tab.Announce(p, 2)
	tab.Freeze()
	if asn, _ := tab.OriginOf(netaddr.MustParseAddr("10.1.1.1")); asn != 2 {
		t.Fatalf("origin = %d, want latest announcement 2", asn)
	}
	if tab.NumRoutes() != 1 {
		t.Fatalf("NumRoutes = %d, want 1", tab.NumRoutes())
	}
	if tab.Routes()[0].Origin != 2 {
		t.Fatal("Routes() not updated by re-announcement")
	}
}

func TestAnnounceAfterFreezePanics(t *testing.T) {
	tab := buildTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Announce after Freeze did not panic")
		}
	}()
	tab.Announce(netaddr.MustParsePrefix("198.18.0.0/15"), 9)
}

func TestRoutesSorted(t *testing.T) {
	tab := buildTable(t)
	routes := tab.Routes()
	for i := 1; i < len(routes); i++ {
		if routes[i-1].Prefix.Compare(routes[i].Prefix) >= 0 {
			t.Fatalf("routes not sorted: %v before %v", routes[i-1], routes[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	tab := buildTable(t)
	addrs := []netaddr.Addr{
		netaddr.MustParseAddr("10.1.2.3"),    // block 10.1.2.0/24, AS300
		netaddr.MustParseAddr("10.1.2.4"),    // same block
		netaddr.MustParseAddr("10.1.3.1"),    // block 10.1.0.0/16, AS200
		netaddr.MustParseAddr("10.9.9.9"),    // block 10.0.0.0/8, AS100
		netaddr.MustParseAddr("203.0.113.1"), // unrouted
	}
	g := tab.Aggregate(addrs)
	if g.Blocks != 3 || g.ASNs != 3 || g.Unrouted != 1 {
		t.Fatalf("Aggregate = %+v", g)
	}
}

func TestDefaultRouteMatchesEverything(t *testing.T) {
	tab := NewTable()
	tab.Announce(netaddr.MustParsePrefix("0.0.0.0/0"), 7)
	tab.Freeze()
	if asn, ok := tab.OriginOf(netaddr.MustParseAddr("255.255.255.255")); !ok || asn != 7 {
		t.Fatal("default route did not match")
	}
}
