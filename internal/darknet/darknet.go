// Package darknet implements the network telescope of §5: full packet
// capture over the unused portion of a /8, the vantage point from which the
// paper pinpoints the onset of large-scale NTP scanning in mid-December 2013
// — roughly a week before attack traffic ramped (Figure 9), demonstrating
// darknets as early-warning systems.
//
// The telescope is a netsim tap: it sees every packet on the fabric and
// keeps those destined to the covered fraction of its dark prefix. Scanners
// genuinely hit it because the zmap-style sweep covers dark space too.
package darknet

import (
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

// Telescope observes a dark prefix. It implements netsim.Tap.
type Telescope struct {
	Prefix netaddr.Prefix
	// Coverage is the fraction of the prefix's /24s that are effectively
	// dark and capturable — "roughly 75% of an IPv4 /8" for Merit's.
	Coverage float64

	benign map[netaddr.Addr]bool

	// NTPPackets counts Rep-weighted NTP-directed packets per month.
	NTPPackets *stats.TimeSeries
	// BenignNTPPackets counts the research-scanner share per month.
	BenignNTPPackets *stats.TimeSeries
	// scannersByDay tracks unique source IPs sending NTP probes per day —
	// the Figure 9 series.
	scannersByDay map[time.Time]netaddr.Set
	allScanners   netaddr.Set
	// sourceBins is each source's dark-space footprint, bucketed by hashed
	// /24, feeding the UniformityScore scanner heuristic.
	sourceBins map[netaddr.Addr]*[scanBins]float64
}

// scanBins is the footprint resolution: enough buckets to separate broad
// sweeps (even coverage) from targeted bursts, small enough to stay cheap
// per source.
const scanBins = 16

// New builds a telescope over prefix with the given /24 coverage fraction.
func New(prefix netaddr.Prefix, coverage float64) *Telescope {
	return &Telescope{
		Prefix:           prefix,
		Coverage:         coverage,
		benign:           make(map[netaddr.Addr]bool),
		NTPPackets:       stats.NewTimeSeries(vtime.Epoch, 30*24*time.Hour),
		BenignNTPPackets: stats.NewTimeSeries(vtime.Epoch, 30*24*time.Hour),
		scannersByDay:    make(map[time.Time]netaddr.Set),
		allScanners:      netaddr.NewSet(0),
		sourceBins:       make(map[netaddr.Addr]*[scanBins]float64),
	}
}

// RegisterBenign marks a source address as a known research scanner —
// the paper identified these by hostname (e.g. university survey projects).
func (t *Telescope) RegisterBenign(a netaddr.Addr) { t.benign[a] = true }

// IsBenign reports whether a scanner is classified as research.
func (t *Telescope) IsBenign(a netaddr.Addr) bool { return t.benign[a] }

// Covers reports whether the telescope actually captures traffic to dst:
// inside the prefix and within the covered (announced-and-dark) 75% of
// /24s, selected deterministically by hashing the /24.
func (t *Telescope) Covers(dst netaddr.Addr) bool {
	if !t.Prefix.Contains(dst) {
		return false
	}
	h := uint64(dst>>8) * 0x9e3779b97f4a7c15 >> 40
	return float64(h%1000) < t.Coverage*1000
}

// Observe implements netsim.Tap.
func (t *Telescope) Observe(dg *packet.Datagram, now time.Time) {
	if !t.Covers(dg.IP.Dst) {
		return
	}
	if dg.UDP.DstPort != ntp.Port {
		return // we analyze only the NTP slice of backscatter here
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	month := vtime.Month(now)
	t.NTPPackets.Add(month, float64(rep))
	if t.benign[dg.IP.Src] {
		t.BenignNTPPackets.Add(month, float64(rep))
	}
	day := vtime.Day(now)
	s, ok := t.scannersByDay[day]
	if !ok {
		s = netaddr.NewSet(0)
		t.scannersByDay[day] = s
	}
	s.Add(dg.IP.Src)
	t.allScanners.Add(dg.IP.Src)

	bins, ok := t.sourceBins[dg.IP.Src]
	if !ok {
		bins = new([scanBins]float64)
		t.sourceBins[dg.IP.Src] = bins
	}
	bins[int(uint64(dg.IP.Dst>>8)*0x9e3779b97f4a7c15>>60)] += float64(rep)
}

// SourceSpread returns a source's per-bin dark-space hit profile (hashed
// /24 buckets) — the input to the UniformityScore heuristic.
func (t *Telescope) SourceSpread(src netaddr.Addr) ([]float64, bool) {
	bins, ok := t.sourceBins[src]
	if !ok {
		return nil, false
	}
	return bins[:], true
}

// ScannerLikeSources counts sources whose dark-space footprint passes the
// ScannerLike heuristic: broad, even coverage of the telescope's space.
// Sweeps touching most of dark space (research surveys, full list-building
// passes) qualify; small targeted bursts do not.
func (t *Telescope) ScannerLikeSources(minScore float64) int {
	n := 0
	for _, bins := range t.sourceBins {
		if ScannerLike(bins[:], scanBins/2, minScore) {
			n++
		}
	}
	return n
}

// EffectiveDark24s returns the number of /24-equivalents the telescope
// covers — the normalizer for Figure 8's "average packets seen per darknet
// /24 block".
func (t *Telescope) EffectiveDark24s() float64 {
	total := float64(t.Prefix.NumAddrs() / 256)
	return total * t.Coverage
}

// MonthlyRow is one Figure 8 bar: packets per dark /24 in a month, split by
// classification.
type MonthlyRow struct {
	Month          time.Time
	PacketsPer24   float64
	BenignFraction float64
}

// MonthlyVolume renders the Figure 8 series.
func (t *Telescope) MonthlyVolume() []MonthlyRow {
	per24 := t.EffectiveDark24s()
	var out []MonthlyRow
	for _, p := range t.NTPPackets.Points() {
		benign := t.BenignNTPPackets.At(p.Time)
		frac := 0.0
		if p.Value > 0 {
			frac = benign / p.Value
		}
		out = append(out, MonthlyRow{
			Month:          p.Time,
			PacketsPer24:   p.Value / per24,
			BenignFraction: frac,
		})
	}
	return out
}

// ScannersOn returns the unique NTP scanner count for a day.
func (t *Telescope) ScannersOn(day time.Time) int {
	return t.scannersByDay[vtime.Day(day)].Len()
}

// ScannerSeries returns the Figure 9 unique-scanners-per-day series.
func (t *Telescope) ScannerSeries() []stats.Point {
	ts := stats.NewTimeSeries(vtime.Epoch, 24*time.Hour)
	for day, set := range t.scannersByDay {
		ts.Add(day, float64(set.Len()))
	}
	return ts.Points()
}

// UniqueScanners returns all scanner sources ever seen.
func (t *Telescope) UniqueScanners() netaddr.Set { return t.allScanners }

// IPv6Telescope is the IPv6 darknet of §5.1: covering prefixes for four of
// the five RIRs. The paper searched its captures for NTP scanning and found
// only errant point-to-point connections — no broad scanning. Our IPv6
// fabric does not exist, so the telescope simply reports what the paper
// found: nothing.
type IPv6Telescope struct {
	// ErrantConnections counts stray non-scan NTP flows (settable by tests
	// or scenarios modeling misconfigured dual-stack hosts).
	ErrantConnections int64
}

// NTPScanEvidence reports whether broad NTP scanning was observed. It is
// always false, matching §5.1.
func (t *IPv6Telescope) NTPScanEvidence() bool { return false }
