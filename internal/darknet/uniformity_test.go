package darknet

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func TestUniformityScoreExtremes(t *testing.T) {
	uniform := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	if got := UniformityScore(uniform); got < 0.999 {
		t.Fatalf("uniform profile scored %.3f, want ~1", got)
	}
	single := []float64{0, 0, 40, 0, 0, 0, 0, 0}
	if got := UniformityScore(single); got != 0 {
		t.Fatalf("single-target profile scored %.3f, want 0", got)
	}
	// Even coverage of a quarter of the targets is penalized by the
	// full-set normalizer.
	partial := []float64{10, 10, 0, 0, 0, 0, 0, 0}
	if got := UniformityScore(partial); got < 0.3 || got > 0.4 {
		t.Fatalf("2-of-8 profile scored %.3f, want log2/log8≈0.33", got)
	}
	if UniformityScore(nil) != 0 || UniformityScore([]float64{3}) != 0 {
		t.Fatal("degenerate profiles must score 0")
	}
}

func TestScannerLike(t *testing.T) {
	sweep := make([]float64, 16)
	for i := range sweep {
		sweep[i] = 3 + float64(i%2) // near-uniform
	}
	if !ScannerLike(sweep, 8, DefaultScannerScore) {
		t.Fatal("full sweep not classified scanner-like")
	}
	burst := make([]float64, 16)
	burst[3], burst[7] = 500, 480
	if ScannerLike(burst, 8, DefaultScannerScore) {
		t.Fatal("2-bucket burst classified scanner-like")
	}
}

func TestTelescopeScannerLikeSources(t *testing.T) {
	prefix := netaddr.MustParsePrefix("35.0.0.0/8")
	tel := New(prefix, 1.0)
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	now := vtime.Epoch

	// A sweeping scanner touches dark space broadly and evenly.
	scanner := netaddr.MustParseAddr("198.51.100.7")
	step := prefix.NumAddrs() / 64
	for i := 0; i < 64; i++ {
		dst := prefix.Nth(uint64(i) * step)
		dg := packet.NewDatagram(scanner, 40000, dst, ntp.Port, probe)
		tel.Observe(dg, now.Add(time.Duration(i)*time.Second))
	}
	// A targeted burst hammers one dark /24.
	burster := netaddr.MustParseAddr("203.0.113.9")
	for i := 0; i < 64; i++ {
		dg := packet.NewDatagram(burster, 40000, prefix.Nth(uint64(i%4)), ntp.Port, probe)
		tel.Observe(dg, now.Add(time.Duration(i)*time.Second))
	}

	if n := tel.ScannerLikeSources(DefaultScannerScore); n != 1 {
		t.Fatalf("ScannerLikeSources = %d, want 1 (the sweep, not the burst)", n)
	}
	spread, ok := tel.SourceSpread(scanner)
	if !ok || len(spread) != scanBins {
		t.Fatalf("SourceSpread missing for scanner (ok=%v len=%d)", ok, len(spread))
	}
	if _, ok := tel.SourceSpread(netaddr.MustParseAddr("192.0.2.1")); ok {
		t.Fatal("SourceSpread reported a never-seen source")
	}
}
