package darknet

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func probe(src, dst netaddr.Addr, dstPort uint16, rep int64) *packet.Datagram {
	dg := packet.NewDatagram(src, 40000, dst, dstPort, make([]byte, 8))
	dg.Rep = rep
	return dg
}

func newScope() *Telescope {
	return New(netaddr.MustParsePrefix("35.0.0.0/8"), 0.75)
}

func TestCoversOnlyInsidePrefix(t *testing.T) {
	s := newScope()
	if s.Covers(netaddr.MustParseAddr("36.0.0.1")) {
		t.Fatal("covered address outside prefix")
	}
	covered := 0
	for i := 0; i < 4096; i++ {
		a := netaddr.Addr(35<<24 | uint32(i)<<8 | 1)
		if s.Covers(a) {
			covered++
		}
	}
	frac := float64(covered) / 4096
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("coverage fraction = %.3f, want ≈0.75", frac)
	}
}

func TestCoverageDeterministicPer24(t *testing.T) {
	s := newScope()
	a := netaddr.MustParseAddr("35.10.20.1")
	b := netaddr.MustParseAddr("35.10.20.200")
	if s.Covers(a) != s.Covers(b) {
		t.Fatal("coverage differs within one /24")
	}
}

func TestObserveCountsNTPOnly(t *testing.T) {
	s := newScope()
	// Find a covered dark /24.
	var dst netaddr.Addr
	for i := 0; ; i++ {
		dst = netaddr.Addr(35<<24|uint32(i)<<8) + 7
		if s.Covers(dst) {
			break
		}
	}
	now := vtime.Epoch.Add(100 * 24 * time.Hour)
	scanner := netaddr.MustParseAddr("198.51.100.5")
	s.Observe(probe(scanner, dst, 123, 1), now)
	s.Observe(probe(scanner, dst, 53, 1), now) // DNS scan: ignored here
	if got := s.NTPPackets.At(vtime.Month(now)); got != 1 {
		t.Fatalf("NTP packets = %v, want 1", got)
	}
	if s.ScannersOn(now) != 1 {
		t.Fatalf("scanners = %d", s.ScannersOn(now))
	}
}

func TestBenignClassification(t *testing.T) {
	s := newScope()
	var dst netaddr.Addr
	for i := 0; ; i++ {
		dst = netaddr.Addr(35<<24|uint32(i)<<8) + 7
		if s.Covers(dst) {
			break
		}
	}
	research := netaddr.MustParseAddr("141.211.1.1")
	evil := netaddr.MustParseAddr("192.0.2.66")
	s.RegisterBenign(research)
	now := vtime.Epoch.Add(120 * 24 * time.Hour)
	s.Observe(probe(research, dst, 123, 10), now)
	s.Observe(probe(evil, dst, 123, 10), now)
	rows := s.MonthlyVolume()
	if len(rows) != 1 {
		t.Fatalf("%d monthly rows", len(rows))
	}
	if rows[0].BenignFraction != 0.5 {
		t.Fatalf("benign fraction = %v, want 0.5", rows[0].BenignFraction)
	}
}

func TestRepWeighting(t *testing.T) {
	s := newScope()
	var dst netaddr.Addr
	for i := 0; ; i++ {
		dst = netaddr.Addr(35<<24|uint32(i)<<8) + 7
		if s.Covers(dst) {
			break
		}
	}
	now := vtime.Epoch
	s.Observe(probe(netaddr.Addr(1), dst, 123, 500), now)
	if got := s.NTPPackets.At(vtime.Month(now)); got != 500 {
		t.Fatalf("Rep-weighted packets = %v", got)
	}
}

func TestMonthlyVolumeNormalization(t *testing.T) {
	s := newScope()
	want := float64(1<<24/256) * 0.75
	if got := s.EffectiveDark24s(); got != want {
		t.Fatalf("EffectiveDark24s = %v, want %v", got, want)
	}
}

func TestScannerSeriesDaily(t *testing.T) {
	s := newScope()
	var dst netaddr.Addr
	for i := 0; ; i++ {
		dst = netaddr.Addr(35<<24|uint32(i)<<8) + 7
		if s.Covers(dst) {
			break
		}
	}
	d1 := vtime.Epoch.Add(24 * time.Hour)
	d2 := vtime.Epoch.Add(48 * time.Hour)
	s.Observe(probe(netaddr.Addr(1), dst, 123, 1), d1)
	s.Observe(probe(netaddr.Addr(2), dst, 123, 1), d1)
	s.Observe(probe(netaddr.Addr(1), dst, 123, 1), d1.Add(time.Hour)) // dup same day
	s.Observe(probe(netaddr.Addr(3), dst, 123, 1), d2)
	pts := s.ScannerSeries()
	if len(pts) != 2 || pts[0].Value != 2 || pts[1].Value != 1 {
		t.Fatalf("scanner series = %+v", pts)
	}
	if s.UniqueScanners().Len() != 3 {
		t.Fatalf("unique scanners = %d", s.UniqueScanners().Len())
	}
}

func TestIPv6TelescopeFindsNothing(t *testing.T) {
	var v6 IPv6Telescope
	if v6.NTPScanEvidence() {
		t.Fatal("IPv6 darknet must report no broad NTP scanning (§5.1)")
	}
}
