package darknet

import "math"

// Scanner-uniformity heuristic, shared between the darknet telescope and the
// honeypot fleet's scanner disambiguation (internal/honeypot): an
// Internet-wide scanner spreads its probes evenly across whatever target set
// a vantage point exposes (dark /24 blocks here, individual sensors there),
// while attack traffic concentrates on the subset of targets an attacker's
// harvested list happens to contain.

// UniformityScore measures how evenly traffic is spread across a fixed set
// of targets as the normalized Shannon entropy of the per-target hit counts,
// in [0, 1]. A source touching every target equally scores 1; one hammering
// a single target scores 0. The normalizer is log(len(counts)) — the full
// target set, not just the touched subset — so partial coverage is penalized
// even when the touched targets are hit evenly. Fewer than two targets, or
// fewer than two non-zero counts, score 0.
func UniformityScore(counts []float64) float64 {
	if len(counts) < 2 {
		return 0
	}
	total, nonzero := 0.0, 0
	for _, c := range counts {
		if c > 0 {
			total += c
			nonzero++
		}
	}
	if nonzero < 2 || total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(len(counts)))
}

// ScannerLike reports whether a per-target hit profile looks like broad,
// even reconnaissance: at least minTargets distinct targets touched, with a
// uniformity score of at least minScore.
func ScannerLike(counts []float64, minTargets int, minScore float64) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero >= minTargets && UniformityScore(counts) >= minScore
}

// DefaultScannerScore is the uniformity threshold both vantages use: broad
// sweeps score near 1, while attack bursts confined to a harvested subset of
// targets stay well below it.
const DefaultScannerScore = 0.85
