package buildinfo

import (
	"os"
	"runtime"
	"strings"
	"testing"
)

func TestStringCarriesNameAndToolchain(t *testing.T) {
	s := String("ntpserved")
	if !strings.HasPrefix(s, "ntpserved ") {
		t.Fatalf("String() = %q, want ntpserved prefix", s)
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Fatalf("String() = %q, want toolchain %q", s, runtime.Version())
	}
	if !strings.Contains(s, runtime.GOOS+"/"+runtime.GOARCH) {
		t.Fatalf("String() = %q, want platform", s)
	}
}

func TestHandleExitsOnlyWhenShown(t *testing.T) {
	exited := -1
	osExit = func(code int) { exited = code }
	defer func() { osExit = os.Exit }()

	Handle("x", false)
	if exited != -1 {
		t.Fatalf("Handle(false) exited with %d", exited)
	}
	Handle("x", true)
	if exited != 0 {
		t.Fatalf("Handle(true) exit code = %d, want 0", exited)
	}
}
