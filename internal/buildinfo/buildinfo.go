// Package buildinfo gives every cmd/ binary the same -version flag: one
// helper reading the module's build identity from the Go build info embedded
// in the binary, replacing per-CLI drift. Usage in a main:
//
//	showVersion := buildinfo.Flag()
//	flag.Parse()
//	buildinfo.Handle("ntpsim", *showVersion)
package buildinfo

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
)

// osExit is swapped out by tests.
var osExit = os.Exit

// Flag registers -version on the default flag set. Call before flag.Parse.
func Flag() *bool {
	return flag.Bool("version", false, "print version and build information, then exit")
}

// Handle prints the build identity to stdout and exits 0 when show is true;
// otherwise it is a no-op. Call immediately after flag.Parse.
func Handle(name string, show bool) {
	if !show {
		return
	}
	fmt.Println(String(name))
	osExit(0)
}

// String renders "name version (vcs-rev date, goX.Y os/arch)". Every field
// degrades gracefully: a binary built outside a VCS checkout still reports
// its module version and toolchain.
func String(name string) string {
	version, rev, date, dirty := "devel", "", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.time":
				date = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", name, version)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		fmt.Fprintf(&b, " (%s", rev)
		if date != "" {
			fmt.Fprintf(&b, " %s", date)
		}
		fmt.Fprintf(&b, ")")
	}
	fmt.Fprintf(&b, " %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}
