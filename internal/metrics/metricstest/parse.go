// Package metricstest is a strict parser for the Prometheus text exposition
// format (version 0.0.4), built for round-trip testing of internal/metrics:
// everything the encoder emits must re-read through Parse and pass Check,
// which pins label-value escaping, the +Inf histogram bucket, cumulative
// bucket monotonicity and _sum/_count consistency. It is test support, not
// a production scrape client — on any deviation it errors rather than
// guessing.
package metricstest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed time series point.
type Sample struct {
	// Name is the full sample name, including histogram suffixes
	// (_bucket/_sum/_count).
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: the HELP/TYPE header plus its samples.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", "untyped"
	Samples []Sample
}

// Families is a parsed exposition page keyed by family name.
type Families map[string]*Family

// Parse reads a full exposition page. Samples must follow their family's
// TYPE line; histogram sample suffixes are attributed to the base family.
func Parse(text string) (Families, error) {
	fams := Families{}
	help := map[string]string{}
	types := map[string]string{}
	var lineNo int
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, help, types); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		if t, ok := types[trimHistSuffix(s.Name)]; ok && t == "histogram" {
			base = trimHistSuffix(s.Name)
		}
		if _, ok := types[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q before any TYPE line", lineNo, s.Name)
		}
		f, ok := fams[base]
		if !ok {
			f = &Family{Name: base, Help: help[base], Type: types[base]}
			fams[base] = f
		}
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

func trimHistSuffix(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseComment(line string, help, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 {
			help[fields[2]] = ""
			return nil
		}
		h, err := unescape(fields[3], false)
		if err != nil {
			return fmt.Errorf("HELP %s: %w", fields[2], err)
		}
		help[fields[2]] = h
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// parseSample reads `name{l="v",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp (which our encoder never emits) would be a second field;
	// reject it so the round-trip stays byte-level honest.
	valStr, extra, _ := strings.Cut(rest, " ")
	if extra != "" {
		return s, fmt.Errorf("%s: unexpected trailing field %q", s.Name, extra)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("%s: bad value %q", s.Name, valStr)
	}
	s.Value = v
	return s, nil
}

func isNameChar(c byte, first bool) bool {
	alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
	return alpha || (!first && c >= '0' && c <= '9')
}

// parseLabels consumes a {l="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		name := s[start:i]
		if name == "" || i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("malformed label name at %q", s[start:])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: unquoted value", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// unescape reverses HELP escaping (and, with quoted=true, label-value
// escaping).
func unescape(s string, quoted bool) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		i++
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			if !quoted {
				return "", fmt.Errorf("stray \\\" in unquoted text %q", s)
			}
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}

// labelKey canonicalizes a label set minus "le" for grouping histogram
// series.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Check validates structural invariants over a parsed page: counters are
// non-negative and finite where expected, and every histogram label set has
// a +Inf bucket, monotonically non-decreasing cumulative buckets, a _sum,
// and _count equal to the +Inf bucket.
func Check(fams Families) error {
	for name, f := range fams {
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					return fmt.Errorf("%s: counter value %v", name, s.Value)
				}
			}
		case "histogram":
			if err := checkHistogram(f); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

type histSeries struct {
	buckets map[float64]float64 // le -> cumulative count
	sum     *float64
	count   *float64
}

func checkHistogram(f *Family) error {
	series := map[string]*histSeries{}
	get := func(labels map[string]string) *histSeries {
		k := labelKey(labels)
		h, ok := series[k]
		if !ok {
			h = &histSeries{buckets: map[float64]float64{}}
			series[k] = h
		}
		return h
	}
	for _, s := range f.Samples {
		s := s
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("bad le value %q", le)
			}
			get(s.Labels).buckets[bound] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			get(s.Labels).sum = &s.Value
		case strings.HasSuffix(s.Name, "_count"):
			get(s.Labels).count = &s.Value
		default:
			return fmt.Errorf("unexpected sample %q in histogram family", s.Name)
		}
	}
	for k, h := range series {
		inf, ok := h.buckets[math.Inf(+1)]
		if !ok {
			return fmt.Errorf("series {%s}: no +Inf bucket", k)
		}
		if h.sum == nil {
			return fmt.Errorf("series {%s}: no _sum", k)
		}
		if h.count == nil {
			return fmt.Errorf("series {%s}: no _count", k)
		}
		if *h.count != inf {
			return fmt.Errorf("series {%s}: _count %v != +Inf bucket %v", k, *h.count, inf)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				return fmt.Errorf("series {%s}: bucket le=%v count %v below previous %v",
					k, b, h.buckets[b], prev)
			}
			prev = h.buckets[b]
		}
	}
	return nil
}
