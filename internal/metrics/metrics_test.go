package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "help")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every disabled-instrumentation path must be a no-op, not a panic.
	var r *Registry
	c := r.NewCounter("a_total", "")
	g := r.NewGauge("b", "")
	h := r.NewHistogram("c", "", DefBuckets)
	cv := r.NewCounterVec("d_total", "", "l")
	gv := r.NewGaugeVec("e", "", "l")
	hv := r.NewHistogramVec("f", "", DefBuckets, "l")
	r.NewGaugeFunc("g", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-2)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	cv.With("x").Inc()
	gv.With("x").Set(9)
	hv.With("x").Observe(1)
	cv.SetMaxCardinality(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.RenderText() != "" {
		t.Fatal("nil registry must render empty")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("depth", "")
	g.Set(10.5)
	g.Add(-0.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Fatalf("Value = %v, want 10", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %v, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("Sum = %v, want 106", got)
	}
	cum, total, _ := h.snapshot()
	// le=1 is inclusive: 0.5 and 1.0 land in the first bucket.
	want := []int64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d = %d, want %d (cum=%v)", i, cum[i], w, cum)
		}
	}
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("x", "", []float64{5, 1, 1, math.Inf(+1), 2})
	if got := len(h.bounds); got != 3 {
		t.Fatalf("bounds = %v, want [1 2 5]", h.bounds)
	}
}

func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("sites_total", "", "site")
	v.SetMaxCardinality(2)
	v.With("a").Inc()
	v.With("b").Inc()
	v.With("c").Inc() // over the bound: collapses to the overflow child
	v.With("d").Inc()
	if got := v.With("c").Value(); got != 2 {
		t.Fatalf("overflow child = %d, want 2", got)
	}
	text := r.RenderText()
	if !strings.Contains(text, `sites_total{site="other"} 2`) {
		t.Fatalf("no overflow sample in:\n%s", text)
	}
}

func TestVecSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("x_total", "", "a", "b")
	c1 := v.With("1", "2")
	c2 := v.With("1", "2")
	if c1 != c2 {
		t.Fatal("same label values must return the same child")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("children out of sync")
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("c_total", "h")
	b := r.NewCounter("c_total", "h")
	if a != b {
		t.Fatal("re-registration must return the existing metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	r.NewGauge("c_total", "h")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.NewCounter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("reserved __ label must panic")
			}
		}()
		r.NewCounterVec("ok_total", "", "__reserved")
	}()
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		42:           "42",
		-3:           "-3",
		1.5:          "1.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.005:        "0.005",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.NewCounterVec("m_total", "h", "l")
		for _, l := range []string{"z", "a", "m"} {
			v.With(l).Add(3)
		}
		r.NewGauge("a_gauge", "g").Set(1)
		return r.RenderText()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != first {
			t.Fatalf("non-deterministic encoding:\n%s\nvs\n%s", first, got)
		}
	}
	// Families sorted by name, children by label value.
	if !strings.Contains(first, "a_gauge") || strings.Index(first, "a_gauge") > strings.Index(first, "m_total") {
		t.Fatalf("families not sorted:\n%s", first)
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{1, 10, 100})
	v := r.NewCounterVec("v_total", "", "w")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				v.With(lbl).Inc()
			}
		}()
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.RenderText()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
