package metrics

// Labeled families. A Vec is a named metric partitioned by label values
// ("one time series per (site, proto) pair"). Lookup is a read-locked map
// hit; callers on hot paths should resolve their child once and hold the
// *Counter/*Gauge/*Histogram (the ispview taps do exactly that).
//
// Cardinality is bounded: past DefaultMaxCardinality distinct label sets,
// further lookups share one overflow child whose label values are all
// "other". Nil Vecs (disabled instrumentation) return nil children, which
// no-op.

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// NewCounterVec registers (or finds) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.getChild(values).counter
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// NewGaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.lookup(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.getChild(values).gauge
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// NewHistogramVec registers (or finds) a labeled histogram family over the
// given bucket bounds.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.lookup(name, help, KindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.getChild(values).hist
}

// SetMaxCardinality adjusts the family's label-set bound (children already
// materialized are kept even if above the new bound).
func (v *CounterVec) SetMaxCardinality(n int) { setMaxCard(vFam(v), n) }

// SetMaxCardinality adjusts the family's label-set bound.
func (v *GaugeVec) SetMaxCardinality(n int) { setMaxCard(gFam(v), n) }

// SetMaxCardinality adjusts the family's label-set bound.
func (v *HistogramVec) SetMaxCardinality(n int) { setMaxCard(hFam(v), n) }

func vFam(v *CounterVec) *family {
	if v == nil {
		return nil
	}
	return v.fam
}

func gFam(v *GaugeVec) *family {
	if v == nil {
		return nil
	}
	return v.fam
}

func hFam(v *HistogramVec) *family {
	if v == nil {
		return nil
	}
	return v.fam
}

func setMaxCard(f *family, n int) {
	if f == nil || n < 1 {
		return
	}
	f.mu.Lock()
	f.maxCard = n
	f.mu.Unlock()
}
