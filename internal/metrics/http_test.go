package metrics_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/metrics/metricstest"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerHealthzGating(t *testing.T) {
	r := metrics.NewRegistry()
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready /healthz = %d, want 503", code)
	}
	srv.SetReady(true)
	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("ready /healthz = %d %q", code, body)
	}
	srv.SetReady(false)
	if code, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz = %d, want 503", code)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("pkts_total", "Packets.").Add(7)
	metrics.RegisterGoRuntime(r)
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	fams, err := metricstest.Parse(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, body)
	}
	if err := metricstest.Check(fams); err != nil {
		t.Fatal(err)
	}
	if fams["pkts_total"] == nil || fams["pkts_total"].Samples[0].Value != 7 {
		t.Fatalf("pkts_total lost: %+v", fams["pkts_total"])
	}
	if fams["go_goroutines"] == nil {
		t.Fatal("runtime group missing from scrape")
	}
}

// TestConcurrentScrapeWhileServing pins the race-detector cleanliness the
// acceptance criteria demand: many goroutines hammer every metric type
// while scrapers pull /metrics.
func TestConcurrentScrapeWhileServing(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", metrics.DefBuckets)
	v := r.NewCounterVec("v_total", "", "w")
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReady(true)
	defer srv.Shutdown(context.Background())
	url := "http://" + srv.Addr() + "/metrics"

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 10)
				v.With(lbl).Inc()
			}
		}()
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if fams, err := metricstest.Parse(string(body)); err != nil {
					t.Errorf("mid-flight scrape does not parse: %v", err)
				} else if err := metricstest.Check(fams); err != nil {
					t.Errorf("mid-flight scrape inconsistent: %v", err)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestServerReadinessLifecycle walks the full daemon readiness cycle the
// serving layer depends on: 503 before the daemon declares itself up, 200
// while serving, and 503 again the moment a drain begins — while /metrics
// keeps answering so in-flight work stays observable through the drain.
func TestServerReadinessLifecycle(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewGauge("draining", "").Set(0)
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr()

	// Phase 1: bound but not ready — the gap between socket and work loop.
	if code, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-SetReady /healthz = %d, want 503", code)
	}
	// Phase 2: serving.
	srv.SetReady(true)
	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("ready /healthz = %d %q, want 200 ok", code, body)
	}
	// Phase 3: drain — readiness flips to 503 first so load balancers stop
	// routing, but the scrape endpoint must keep working while in-flight
	// jobs finish.
	srv.SetReady(false)
	if code, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", code)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "draining 0") {
		t.Fatalf("/metrics during drain = %d %q, want 200 with samples", code, body)
	}
}

// TestReadinessHandlerStandalone covers the Readiness probe detached from
// Server — the shape cmd/ntpserved mounts on its own API mux.
func TestReadinessHandlerStandalone(t *testing.T) {
	var ready metrics.Readiness
	if ready.Ready() {
		t.Fatal("zero-value Readiness reports ready")
	}
	rec := httptest.NewRecorder()
	ready.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("zero-value probe = %d, want 503", rec.Code)
	}
	ready.Set(true)
	rec = httptest.NewRecorder()
	ready.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("ready probe = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
	ready.Set(false)
	rec = httptest.NewRecorder()
	ready.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained probe = %d, want 503", rec.Code)
	}
}

// TestShutdownWhileScraping races Shutdown against concurrent scrapers and
// readiness flips: every request must either complete cleanly or fail with
// a transport error — never a torn response — and the test is run under
// -race in CI to pin the exporter's shutdown path data-race-free.
func TestShutdownWhileScraping(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.NewCounter("spins_total", "")
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReady(true)
	url := "http://" + srv.Addr()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				resp, err := http.Get(url + "/metrics")
				if err != nil {
					return // listener closed mid-drain: expected
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					continue // connection torn down by shutdown race
				}
				if _, perr := metricstest.Parse(string(body)); perr != nil {
					t.Errorf("torn scrape during shutdown: %v", perr)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			srv.SetReady(i%2 == 0)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under scrape load: %v", err)
	}
	close(stop)
	wg.Wait()
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	r := metrics.NewRegistry()
	srv, err := metrics.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}
