package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats across the several gauge funcs of
// one scrape: ReadMemStats stops the world, so it must run once per scrape,
// not once per sample.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	last runtime.MemStats
}

func (m *memReader) get() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&m.last)
		m.at = time.Now()
	}
	return m.last
}

// RegisterGoRuntime adds the built-in Go runtime group: goroutine count,
// heap occupancy and garbage-collection progress. These are the only
// metrics in the subsystem that read wall-clock-adjacent process state;
// they are computed at scrape time and never touch simulation state.
func RegisterGoRuntime(r *Registry) {
	if r == nil {
		return
	}
	mr := &memReader{}
	r.NewGaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.NewGaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(mr.get().HeapAlloc) })
	r.NewGaugeFunc("go_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(mr.get().HeapObjects) })
	r.NewGaugeFunc("go_heap_sys_bytes",
		"Heap memory obtained from the OS.",
		func() float64 { return float64(mr.get().HeapSys) })
	r.NewGaugeFunc("go_next_gc_bytes",
		"Heap size at which the next GC cycle starts.",
		func() float64 { return float64(mr.get().NextGC) })
	r.NewCounterFunc("go_gc_cycles_total",
		"Completed garbage-collection cycles.",
		func() float64 { return float64(mr.get().NumGC) })
	r.NewCounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mr.get().PauseTotalNs) / 1e9 })
	r.NewCounterFunc("go_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.",
		func() float64 { return float64(mr.get().TotalAlloc) })
}
