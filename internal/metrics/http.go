package metrics

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// ContentType is the exposition format's HTTP content type (v0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Server is an HTTP exporter serving /metrics and /healthz, following the
// production exporter shape (collector registry behind a scrape endpoint
// plus a readiness probe): /healthz answers 503 until SetReady(true) — a
// daemon binds its exporter early but only reports healthy once its own
// socket is serving — and Shutdown drains in-flight scrapes gracefully.
type Server struct {
	reg   *Registry
	ln    net.Listener
	srv   *http.Server
	ready atomic.Bool
	done  chan struct{}
}

// Serve binds addr and serves the registry in a background goroutine. The
// returned Server is not yet ready: call SetReady(true) once the daemon's
// real work loop is up.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReady flips the /healthz readiness state.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Shutdown gracefully stops the exporter, waiting for in-flight scrapes up
// to the context deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	if req.Method == http.MethodHead {
		return
	}
	s.reg.WriteText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}
