package metrics

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// ContentType is the exposition format's HTTP content type (v0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the /metrics scrape handler for reg: GET/HEAD only,
// exposition content type, deterministic rendering. It is the same handler
// Server mounts; daemons that run their own API mux (cmd/ntpserved) attach
// it there so one listener serves both the API and its instrumentation.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		reg.WriteText(w)
	})
}

// Readiness is a /healthz readiness probe: 503 until Set(true), 200 "ok"
// while ready, and 503 again when a draining daemon calls Set(false) before
// finishing its in-flight work. The zero value is not ready.
type Readiness struct {
	ready atomic.Bool
}

// Set flips the readiness state.
func (r *Readiness) Set(ready bool) { r.ready.Store(ready) }

// Ready reports the current readiness state.
func (r *Readiness) Ready() bool { return r.ready.Load() }

// ServeHTTP answers the probe.
func (r *Readiness) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// Server is an HTTP exporter serving /metrics and /healthz, following the
// production exporter shape (collector registry behind a scrape endpoint
// plus a readiness probe): /healthz answers 503 until SetReady(true) — a
// daemon binds its exporter early but only reports healthy once its own
// socket is serving — and Shutdown drains in-flight scrapes gracefully.
type Server struct {
	reg   *Registry
	ln    net.Listener
	srv   *http.Server
	ready Readiness
	done  chan struct{}
}

// Serve binds addr and serves the registry in a background goroutine. The
// returned Server is not yet ready: call SetReady(true) once the daemon's
// real work loop is up.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/healthz", &s.ready)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReady flips the /healthz readiness state.
func (s *Server) SetReady(ready bool) { s.ready.Set(ready) }

// Shutdown gracefully stops the exporter, waiting for in-flight scrapes up
// to the context deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}
