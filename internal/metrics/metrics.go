// Package metrics is a zero-dependency, concurrency-safe observability
// subsystem in the Prometheus mold: counters, gauges and histograms —
// plain and labeled — collected in a Registry that encodes the text
// exposition format (version 0.0.4) for scraping, plus an HTTP exporter
// serving /metrics and /healthz.
//
// The package exists because the paper's story is told through
// continuously-observed operational feeds (Arbor telemetry, weekly ONP
// sweeps, ISP taps); a reproduction that runs for minutes as a black box
// cannot be trusted, tuned or sped up. Every hot layer of the simulation
// (fabric, scheduler, scanner, daemons, attack engine, honeypot fleet,
// telemetry/ISP ingest) exposes optional instrumentation built on these
// types.
//
// Two properties are load-bearing:
//
//   - Hot paths are a single atomic op (Counter.Inc/Add, Gauge.Set,
//     Histogram.Observe), safe to call from the simulation thread while an
//     exporter goroutine scrapes concurrently. No locks on the write path.
//
//   - Every method is nil-receiver safe: a nil *Counter (instrumentation
//     disabled) no-ops for the cost of one predictable branch, so
//     instrumented code never guards call sites and a run with metrics off
//     pays essentially nothing. Instrumentation must also be provably free
//     of behavioral effect — metric writes never touch RNG or virtual-time
//     state, which the seed-determinism test pins by running the full
//     scenario with metrics on and off and comparing report digests.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing integer counter. The zero value is
// ready to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n. Negative n is ignored (counters are
// monotonic; a decreasing counter breaks every rate() over it).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. The zero value is ready
// to use; a nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add increments the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets, Prometheus-style:
// fixed upper bounds chosen at construction, an implicit +Inf bucket, and a
// running sum. Observe is one binary search plus two atomic ops. A nil
// *Histogram no-ops.
type Histogram struct {
	// bounds are the finite bucket upper bounds, sorted ascending. counts
	// has len(bounds)+1 entries; the last is the +Inf overflow. Counts are
	// stored per-bucket (non-cumulative) so Observe touches exactly one
	// slot; the encoder accumulates.
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over the given bounds (sorted, deduped;
// a trailing +Inf is stripped since it is implicit).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, +1) || (i > 0 && b == bs[i-1]) {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v ("le" is inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf total, and the sum. Reading each slot once keeps the snapshot
// internally consistent enough for scraping (Prometheus semantics).
func (h *Histogram) snapshot() (cum []int64, total int64, sum float64) {
	cum = make([]int64, len(h.bounds))
	var acc int64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	total = acc + h.counts[len(h.bounds)].Load()
	return cum, total, h.Sum()
}

// DefBuckets are general-purpose latency-style buckets (seconds).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count bucket bounds starting at start, each
// factor times the previous — the right shape for byte sizes and packet
// counts, which span orders of magnitude.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets requires start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns count bucket bounds starting at start, spaced width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("metrics: LinearBuckets requires count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}
