package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

// Family kinds, matching the exposition format's TYPE values.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in exposition-format vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefaultMaxCardinality bounds the distinct label sets one family will
// materialize. Past the bound, new label sets collapse into a single
// overflow child (every label value "other") rather than growing without
// limit — an exporter must never be the component that OOMs the process.
const DefaultMaxCardinality = 1024

// child is one (labelValues -> metric) binding inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // counter/gauge funcs, evaluated at scrape
}

// family is one named metric with all its label permutations.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	bounds  []float64 // histogram families only
	maxCard int

	mu       sync.RWMutex
	children map[string]*child
	overflow *child
}

// Registry collects metric families and renders them. A nil *Registry is
// valid everywhere: every constructor returns nil metrics, which no-op —
// the disabled-instrumentation configuration needs no conditional wiring.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKeySep joins label values into a child-map key. 0xff never appears
// in UTF-8 text, so joined keys cannot collide.
const labelKeySep = "\xff"

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the named family, creating it if absent. Re-registration
// with an identical shape returns the existing family (so re-building a
// world against one registry is harmless); a shape mismatch panics —
// that is a programming error, not runtime input.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: bounds, maxCard: DefaultMaxCardinality,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// getChild returns the family's child for the given label values, creating
// it (or the overflow child, past maxCard) as needed.
func (f *family) getChild(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelKeySep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	if len(f.children) >= f.maxCard {
		if f.overflow == nil {
			vals := make([]string, len(f.labels))
			for i := range vals {
				vals[i] = "other"
			}
			f.overflow = f.newChild(vals)
			f.children[strings.Join(vals, labelKeySep)] = f.overflow
		}
		return f.overflow
	}
	c = f.newChild(append([]string(nil), values...))
	f.children[key] = c
	return c
}

func (f *family) newChild(values []string) *child {
	c := &child{labelValues: values}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	return c
}

// NewCounter registers (or finds) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, nil).getChild(nil).counter
}

// NewGauge registers (or finds) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, nil).getChild(nil).gauge
}

// NewHistogram registers (or finds) an unlabeled histogram over bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, nil, bounds).getChild(nil).hist
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn must be safe to call from the exporter goroutine — use it for
// process-level facts (runtime stats), never for closures over
// single-threaded simulation state.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, KindGauge, nil, nil)
	f.getChild(nil).fn = fn
}

// NewCounterFunc registers a counter whose value is read by fn at scrape
// time. Same concurrency contract as NewGaugeFunc; fn must be monotonic.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, KindCounter, nil, nil)
	f.getChild(nil).fn = fn
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a quoted label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value. Integral values render without an
// exponent (counters read naturally); infinities use the +Inf/-Inf spelling
// the format requires (strconv produces exactly that).
func formatFloat(v float64) string {
	if !math.IsInf(v, 0) && !math.IsNaN(v) &&
		v == math.Trunc(v) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for the child, with extra appended last
// (the histogram "le" label). Returns "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sorted by name,
// children sorted by label values. Safe to call concurrently with metric
// writes (values are read atomically; a scrape is a consistent-enough
// point-in-time view, per Prometheus convention).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderText returns WriteText's output as a string.
func (r *Registry) RenderText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case KindCounter:
			v := float64(c.counter.Value())
			if c.fn != nil {
				v = c.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), formatFloat(v))
		case KindGauge:
			v := c.gauge.Value()
			if c.fn != nil {
				v = c.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), formatFloat(v))
		case KindHistogram:
			cum, total, sum := c.hist.snapshot()
			for i, bound := range c.hist.bounds {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", formatFloat(bound)), cum[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, c.labelValues, "le", "+Inf"), total)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, c.labelValues, "", ""), total)
		}
	}
}
