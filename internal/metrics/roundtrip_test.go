package metrics_test

// The encoder's contract is that a compliant scraper re-reads everything it
// emits. metricstest.Parse is that scraper: strict, erroring on any
// malformed line, with structural Check invariants for histograms
// (+Inf bucket, cumulative monotonicity, _sum/_count agreement).

import (
	"math"
	"strings"
	"testing"

	"ntpddos/internal/metrics"
	"ntpddos/internal/metrics/metricstest"
)

func parseAll(t *testing.T, r *metrics.Registry) metricstest.Families {
	t.Helper()
	text := r.RenderText()
	fams, err := metricstest.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\nin:\n%s", err, text)
	}
	if err := metricstest.Check(fams); err != nil {
		t.Fatalf("check: %v\nin:\n%s", err, text)
	}
	return fams
}

func TestRoundTripBasic(t *testing.T) {
	r := metrics.NewRegistry()
	r.NewCounter("requests_total", "Requests served.").Add(1234)
	r.NewGauge("queue_depth", "Scheduler queue depth.").Set(17.5)
	fams := parseAll(t, r)

	c := fams["requests_total"]
	if c == nil || c.Type != "counter" || c.Help != "Requests served." {
		t.Fatalf("counter family mangled: %+v", c)
	}
	if len(c.Samples) != 1 || c.Samples[0].Value != 1234 {
		t.Fatalf("counter sample mangled: %+v", c.Samples)
	}
	g := fams["queue_depth"]
	if g == nil || g.Samples[0].Value != 17.5 {
		t.Fatalf("gauge sample mangled: %+v", g)
	}
}

func TestRoundTripLabelEscaping(t *testing.T) {
	// Label values with every character the format escapes, plus unicode.
	hostile := []string{
		`plain`,
		`back\slash`,
		`qu"ote`,
		"new\nline",
		`all three \ " ` + "\n together",
		`trailing backslash \`,
		"ünïcødé — π",
	}
	r := metrics.NewRegistry()
	v := r.NewCounterVec("hostile_total", `Help with \ backslash and`+"\nnewline.", "val")
	for i, h := range hostile {
		v.With(h).Add(int64(i + 1))
	}
	fams := parseAll(t, r)
	f := fams["hostile_total"]
	if f == nil {
		t.Fatal("family lost")
	}
	if f.Help != `Help with \ backslash and`+"\nnewline." {
		t.Fatalf("help not round-tripped: %q", f.Help)
	}
	got := map[string]float64{}
	for _, s := range f.Samples {
		got[s.Labels["val"]] = s.Value
	}
	for i, h := range hostile {
		if got[h] != float64(i+1) {
			t.Fatalf("label %q not round-tripped (got %v)", h, got)
		}
	}
}

func TestRoundTripHistogram(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.NewHistogram("resp_bytes", "Response sizes.",
		metrics.ExponentialBuckets(64, 4, 6))
	for _, v := range []float64{10, 64, 65, 500, 1e6, 1e9} {
		h.Observe(v)
	}
	fams := parseAll(t, r) // Check pins +Inf, monotonicity, _sum/_count
	f := fams["resp_bytes"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family mangled: %+v", f)
	}
	var infCount, count, sum float64
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] == "+Inf":
			infCount = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if infCount != 6 || count != 6 {
		t.Fatalf("+Inf %v / count %v, want 6/6", infCount, count)
	}
	if math.Abs(sum-(10+64+65+500+1e6+1e9)) > 1 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestRoundTripLabeledHistogram(t *testing.T) {
	r := metrics.NewRegistry()
	hv := r.NewHistogramVec("op_seconds", "", []float64{0.1, 1}, "op", "site")
	hv.With("scan", `we"ird`).Observe(0.05)
	hv.With("scan", `we"ird`).Observe(5)
	hv.With("sweep", "plain").Observe(0.5)
	fams := parseAll(t, r)
	f := fams["op_seconds"]
	if f == nil {
		t.Fatal("family lost")
	}
	// 2 series × (3 buckets + sum + count) = 10 samples.
	if len(f.Samples) != 10 {
		t.Fatalf("got %d samples, want 10: %+v", len(f.Samples), f.Samples)
	}
}

func TestRoundTripGoRuntime(t *testing.T) {
	r := metrics.NewRegistry()
	metrics.RegisterGoRuntime(r)
	fams := parseAll(t, r)
	if f := fams["go_goroutines"]; f == nil || f.Samples[0].Value < 1 {
		t.Fatalf("go_goroutines missing or zero: %+v", f)
	}
	if f := fams["go_gc_cycles_total"]; f == nil || f.Type != "counter" {
		t.Fatalf("go_gc_cycles_total mangled: %+v", f)
	}
}

func TestParserRejectsGarbage(t *testing.T) {
	bad := []string{
		"# TYPE x flavor\nx 1\n",
		"x{l=\"unterminated} 1\n",
		"x{l=\"v\"} \n",
		"x{l=\"bad\\q\"} 1\n",
		"1leading 2\n",
		"# TYPE x counter\nx 1 2 3\n",
	}
	for _, text := range bad {
		if _, err := metricstest.Parse(text); err == nil {
			t.Errorf("parser accepted %q", text)
		}
	}
}
