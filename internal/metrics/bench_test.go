package metrics

// Hot-path micro-benchmarks. The subsystem's contract is that an
// instrumented simulation regresses < 5% in wall time, which requires the
// write path to sit at nanosecond scale: Counter.Inc is one atomic add,
// the disabled (nil) path one predictable branch, Histogram.Observe a
// binary search plus two atomics, and a labeled lookup a read-locked map
// hit. Measured numbers are recorded in EXPERIMENTS.md.

import (
	"strconv"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter // nil: instrumentation off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().NewGauge("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench", "", ExponentialBuckets(64, 4, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100000))
	}
}

func BenchmarkVecLookup(b *testing.B) {
	v := NewRegistry().NewCounterVec("bench_total", "", "site", "proto")
	sites := []string{"Merit", "CSU", "FRGP"}
	protos := []string{"ntp", "dns"}
	for _, s := range sites {
		for _, p := range protos {
			v.With(s, p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With(sites[i%3], protos[i%2]).Inc()
	}
}

func BenchmarkRegistryEncode(b *testing.B) {
	// A registry shaped like an instrumented scenario run: ~30 families,
	// a few labeled ones, two histograms, the runtime group.
	r := NewRegistry()
	for i := 0; i < 24; i++ {
		r.NewCounter("fam"+strconv.Itoa(i)+"_total", "help text").Add(int64(i) * 1e6)
	}
	v := r.NewCounterVec("labeled_total", "", "site", "proto")
	for _, s := range []string{"Merit", "CSU", "FRGP"} {
		for _, p := range []string{"ntp", "dns", "other"} {
			v.With(s, p).Add(12345)
		}
	}
	h := r.NewHistogram("sizes_bytes", "", ExponentialBuckets(64, 4, 10))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i * 97))
	}
	RegisterGoRuntime(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.RenderText(); len(out) == 0 {
			b.Fatal("empty encode")
		}
	}
}
