package asdb

import (
	"testing"

	"ntpddos/internal/geo"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/rng"
	"ntpddos/internal/routing"
)

func buildSmall(t *testing.T) *DB {
	t.Helper()
	return Build(rng.New(1), Config{NumASes: 200, SpooferFraction: 0.25})
}

func TestWellKnownASesPresent(t *testing.T) {
	db := buildSmall(t)
	for _, name := range []string{NameOVH, NameCloudFlare, NameMerit, NameCSU, NameFRGP} {
		as := db.ByName(name)
		if as == nil {
			t.Fatalf("well-known AS %s missing", name)
		}
		if len(as.Prefixes) == 0 || len(as.Announced) == 0 {
			t.Fatalf("%s has no address space", name)
		}
	}
	if db.ByName(NameOVH).Number != 16276 {
		t.Fatal("OVH must be AS16276 (the paper's top victim AS)")
	}
	if db.ByName(NameMerit).Number != 237 {
		t.Fatal("Merit must be AS237")
	}
}

func TestTable6VictimASNs(t *testing.T) {
	db := buildSmall(t)
	// Table 6 victim origin ASNs must exist with the right countries.
	cases := map[routing.ASN]geo.Country{
		4713: "JP", 4837: "CN", 30083: "US", 8972: "DE",
		16276: "FR", 39743: "RO", 28666: "BR", 12390: "GB",
	}
	for asn, country := range cases {
		as := db.ByNumber(asn)
		if as == nil {
			t.Fatalf("AS%d missing", asn)
		}
		if as.Country != country {
			t.Fatalf("AS%d country = %s, want %s", asn, as.Country, country)
		}
	}
}

func TestOwnerOfRoundTrip(t *testing.T) {
	db := buildSmall(t)
	src := rng.New(2)
	for _, as := range db.ASes {
		for i := 0; i < 3; i++ {
			a := as.RandomAddr(src)
			owner := db.OwnerOf(a)
			if owner == nil {
				t.Fatalf("address %v of AS%d resolves to dark space", a, as.Number)
			}
			if owner.Number != as.Number {
				t.Fatalf("address %v of AS%d resolved to AS%d (overlapping allocations)",
					a, as.Number, owner.Number)
			}
		}
	}
}

func TestDarknetIsDark(t *testing.T) {
	db := buildSmall(t)
	src := rng.New(3)
	for i := 0; i < 1000; i++ {
		a := db.DarknetPrefix.Nth(src.Uint64N(db.DarknetPrefix.NumAddrs()))
		if db.OwnerOf(a) != nil {
			t.Fatalf("darknet address %v has an owner", a)
		}
	}
}

func TestNoOverlappingAllocations(t *testing.T) {
	db := Build(rng.New(4), Config{NumASes: 500, SpooferFraction: 0.3})
	var all []netaddr.Prefix
	for _, as := range db.ASes {
		all = append(all, as.Prefixes...)
	}
	// O(n²) is fine at test scale.
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("allocations overlap: %v and %v", all[i], all[j])
			}
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build(rng.New(7), Config{NumASes: 100, SpooferFraction: 0.25})
	b := Build(rng.New(7), Config{NumASes: 100, SpooferFraction: 0.25})
	if len(a.ASes) != len(b.ASes) {
		t.Fatalf("AS counts differ: %d vs %d", len(a.ASes), len(b.ASes))
	}
	for i := range a.ASes {
		x, y := a.ASes[i], b.ASes[i]
		if x.Number != y.Number || x.Country != y.Country || x.Type != y.Type ||
			len(x.Prefixes) != len(y.Prefixes) || x.AllowsSpoofing != y.AllowsSpoofing {
			t.Fatalf("AS %d differs between same-seed builds", i)
		}
		for j := range x.Prefixes {
			if x.Prefixes[j] != y.Prefixes[j] {
				t.Fatalf("prefix %d of AS %d differs", j, i)
			}
		}
	}
}

func TestSpooferFractionApproximate(t *testing.T) {
	db := Build(rng.New(9), Config{NumASes: 2000, SpooferFraction: 0.25})
	n := 0
	for _, as := range db.ASes {
		if as.AllowsSpoofing {
			n++
		}
	}
	frac := float64(n) / float64(len(db.ASes))
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("spoofer fraction = %.3f, want ≈0.25", frac)
	}
}

func TestOfType(t *testing.T) {
	db := buildSmall(t)
	hosting := db.OfType(Hosting)
	if len(hosting) == 0 {
		t.Fatal("no hosting ASes generated")
	}
	for _, as := range hosting {
		if as.Type != Hosting {
			t.Fatalf("OfType returned %v", as.Type)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	db := buildSmall(t)
	src := rng.New(11)
	// Weight only education ASes; every pick must be education.
	for i := 0; i < 100; i++ {
		as := db.PickWeighted(src, func(a *AS) float64 {
			if a.Type == Education {
				return 1
			}
			return 0
		})
		if as == nil || as.Type != Education {
			t.Fatalf("PickWeighted returned %+v", as)
		}
	}
	if db.PickWeighted(src, func(*AS) float64 { return 0 }) != nil {
		t.Fatal("all-zero weights must return nil")
	}
}

func TestRandomAddrInsideAS(t *testing.T) {
	db := buildSmall(t)
	src := rng.New(13)
	as := db.ByName(NameOVH)
	for i := 0; i < 1000; i++ {
		if !as.Contains(as.RandomAddr(src)) {
			t.Fatal("RandomAddr escaped the AS")
		}
	}
}

func TestContinentConsistency(t *testing.T) {
	db := buildSmall(t)
	for _, as := range db.ASes {
		cont, ok := geo.ContinentOf(as.Country)
		if !ok || cont != as.Continent {
			t.Fatalf("AS%d continent %v inconsistent with country %s", as.Number, as.Continent, as.Country)
		}
	}
}

func TestASTypeString(t *testing.T) {
	if Hosting.String() != "hosting" || CDN.String() != "cdn" {
		t.Fatal("type names wrong")
	}
}
