// Package asdb builds the synthetic Internet registry the reproduction runs
// on: autonomous systems with types, countries, address allocations and
// announced (routed) blocks.
//
// The paper joins every amplifier/victim IP against exactly three registries
// — BGP origin (routed block + ASN), GeoIP (country/continent), and the
// Spamhaus PBL (end-host labeling). This package provides the first two; the
// pbl package derives the third from the AS types generated here.
//
// Well-known networks from the paper are modeled by name so experiments can
// reference them: OVH (top victim AS, §4.4), CloudFlare, Merit (AS237),
// CSU and FRGP (the §7 regional views), and the Table 6 victim ASes.
package asdb

import (
	"fmt"

	"ntpddos/internal/geo"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/rng"
	"ntpddos/internal/routing"
)

// ASType classifies an autonomous system. The type drives where NTP servers
// live (infrastructure vs. end hosts), PBL listing, and remediation speed
// (§6.1: "remediation was more likely to happen at servers that are
// professionally managed versus at workstations").
type ASType int

// AS types.
const (
	Hosting ASType = iota
	Telecom
	Residential
	Education
	Enterprise
	CDN
	numASTypes
)

// NumASTypes is the number of distinct AS types, for building dense
// per-type lookup tables.
const NumASTypes = int(numASTypes)

// String names the type.
func (t ASType) String() string {
	switch t {
	case Hosting:
		return "hosting"
	case Telecom:
		return "telecom"
	case Residential:
		return "residential"
	case Education:
		return "education"
	case Enterprise:
		return "enterprise"
	case CDN:
		return "cdn"
	}
	return fmt.Sprintf("ASType(%d)", int(t))
}

// AS is one autonomous system.
type AS struct {
	Number    routing.ASN
	Name      string
	Type      ASType
	Country   geo.Country
	Continent geo.Continent
	// Prefixes are the address allocations; Announced are the routed blocks
	// (each a sub-block of some allocation) visible in the routing table.
	Prefixes  []netaddr.Prefix
	Announced []netaddr.Prefix
	// AllowsSpoofing reports that the AS does not implement BCP 38/84
	// source-address validation, so hosts inside it can emit packets with
	// forged source addresses — the precondition for reflection (§1).
	AllowsSpoofing bool
}

// NumAddrs returns the total allocated address count.
func (a *AS) NumAddrs() uint64 {
	var n uint64
	for _, p := range a.Prefixes {
		n += p.NumAddrs()
	}
	return n
}

// RandomAddr draws a uniform random address from the AS's allocations.
func (a *AS) RandomAddr(src *rng.Source) netaddr.Addr {
	total := a.NumAddrs()
	if total == 0 {
		panic(fmt.Sprintf("asdb: AS%d has no address space", a.Number))
	}
	i := src.Uint64N(total)
	for _, p := range a.Prefixes {
		if i < p.NumAddrs() {
			return p.Nth(i)
		}
		i -= p.NumAddrs()
	}
	panic("unreachable")
}

// Contains reports whether addr belongs to one of the AS's allocations.
func (a *AS) Contains(addr netaddr.Addr) bool {
	for _, p := range a.Prefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// Config sizes the synthetic world.
type Config struct {
	// NumASes is the number of generated ASes in addition to the well-known
	// set. The paper-era Internet had ~46K ASes; scaled worlds use fewer.
	NumASes int
	// SpooferFraction is the fraction of ASes lacking BCP38 filtering.
	// Surveys of the era put this around a quarter of networks.
	SpooferFraction float64
}

// DefaultConfig returns the config used by scaled benchmark worlds.
func DefaultConfig() Config {
	return Config{NumASes: 1500, SpooferFraction: 0.25}
}

// DB is the built registry.
type DB struct {
	ASes  []*AS
	Table *routing.Table
	// DarknetPrefix is the unused /8 the Merit telescope observes (§5.1).
	DarknetPrefix netaddr.Prefix

	byNumber map[routing.ASN]*AS
	byName   map[string]*AS

	// pickScratch is PickWeighted's reusable weight buffer. The simulation
	// drives each DB from one goroutine, and rng.Source.Weighted only reads
	// the slice, so reuse is safe and keeps the hot victim/AS draws
	// allocation-free.
	pickScratch []float64
}

// Well-known AS names, usable with DB.ByName.
const (
	NameOVH        = "OVH"
	NameCloudFlare = "CloudFlare"
	NameMerit      = "Merit"
	NameCSU        = "CSU"
	NameFRGP       = "FRGP"
)

// wellKnownSpec seeds the paper's named networks. Address space uses
// dedicated /8s so generated allocations can never collide with them.
type wellKnownSpec struct {
	name     string
	number   routing.ASN
	typ      ASType
	country  geo.Country
	prefixes []string
	announce int // announced more-specific prefix length
	spoofing bool
}

var wellKnown = []wellKnownSpec{
	// The paper's §4.4 validation attack target and top victim AS.
	{NameOVH, 16276, Hosting, "FR", []string{"94.20.0.0/14", "94.56.0.0/15"}, 18, false},
	{NameCloudFlare, 13335, CDN, "US", []string{"104.16.0.0/13"}, 16, false},
	// §7's two regional ISP vantage points. Merit's real operational
	// prefixes are around 198.108.0.0/16 and 141.211.0.0/16.
	{NameMerit, 237, Education, "US", []string{"198.108.0.0/16", "141.211.0.0/16"}, 18, false},
	{NameCSU, 12145, Education, "US", []string{"129.82.0.0/16"}, 17, false},
	{NameFRGP, 14041, Education, "US", []string{"129.19.0.0/16", "129.24.0.0/16"}, 17, false},
	// Table 6's named victim networks.
	{"OCN-JP", 4713, Telecom, "JP", []string{"153.128.0.0/12"}, 15, true},
	{"Unicom-CN", 4837, Telecom, "CN", []string{"112.224.0.0/12"}, 14, true},
	{"ServerCentral-US", 30083, Hosting, "US", []string{"204.93.0.0/17"}, 19, false},
	{"Intergenia-DE", 8972, Hosting, "DE", []string{"85.25.0.0/16"}, 18, false},
	{"Voxility-RO", 39743, Hosting, "RO", []string{"93.114.0.0/17"}, 19, false},
	{"HostBR", 28666, Hosting, "BR", []string{"177.54.0.0/16"}, 18, true},
	{"HostUK", 12390, Hosting, "GB", []string{"77.75.0.0/17"}, 19, false},
}

// reservedSlash8s are first octets never handed to the general allocator:
// well-known space, the darknet /8 (35), and conventionally unusable blocks.
var reservedSlash8s = map[int]bool{
	0: true, 10: true, 127: true, 169: true, 172: true, 192: true,
	223: true, 224: true, 240: true, 255: true,
	35: true, // Merit darknet telescope
	94: true, 104: true, 198: true, 141: true, 129: true,
	153: true, 112: true, 204: true, 85: true, 93: true, 177: true, 77: true,
}

// typeWeights is the AS-type mix of the generated population.
var typeWeights = []float64{
	Hosting:     0.16,
	Telecom:     0.18,
	Residential: 0.26,
	Education:   0.10,
	Enterprise:  0.24,
	CDN:         0.06,
}

// allocLenFor returns the allocation prefix length distribution per AS type.
func allocLenFor(t ASType, src *rng.Source) int {
	switch t {
	case Residential, Telecom:
		return 13 + src.IntN(4) // /13../16 — big eyeball pools
	case Hosting:
		return 15 + src.IntN(4) // /15../18
	case CDN:
		return 17 + src.IntN(3)
	case Education:
		return 16 + src.IntN(2)
	default: // Enterprise
		return 17 + src.IntN(4)
	}
}

// Build constructs a deterministic world from the source.
func Build(src *rng.Source, cfg Config) *DB {
	if cfg.NumASes < 0 {
		panic("asdb: negative NumASes")
	}
	db := &DB{
		Table:         routing.NewTable(),
		DarknetPrefix: netaddr.MustParsePrefix("35.0.0.0/8"),
		byNumber:      make(map[routing.ASN]*AS),
		byName:        make(map[string]*AS),
	}

	for _, spec := range wellKnown {
		cont, ok := geo.ContinentOf(spec.country)
		if !ok {
			panic("asdb: well-known AS in unknown country " + string(spec.country))
		}
		as := &AS{
			Number:         spec.number,
			Name:           spec.name,
			Type:           spec.typ,
			Country:        spec.country,
			Continent:      cont,
			AllowsSpoofing: spec.spoofing,
		}
		for _, ps := range spec.prefixes {
			p := netaddr.MustParsePrefix(ps)
			as.Prefixes = append(as.Prefixes, p)
			as.Announced = append(as.Announced, p.Subdivide(spec.announce)...)
		}
		db.add(as)
	}

	alloc := newAllocator()
	nextASN := routing.ASN(60000)
	countriesByCont := make(map[geo.Continent][]geo.Country)
	for _, c := range geo.Continents() {
		countriesByCont[c] = geo.CountriesIn(c)
	}
	contWeights := make([]float64, len(geo.Continents()))
	for i, c := range geo.Continents() {
		contWeights[i] = geo.HostShare(c)
	}

	for i := 0; i < cfg.NumASes; i++ {
		cont := geo.Continent(src.Weighted(contWeights))
		countries := countriesByCont[cont]
		country := countries[src.IntN(len(countries))]
		typ := ASType(src.Weighted(typeWeights))
		as := &AS{
			Number:         nextASN,
			Name:           fmt.Sprintf("AS%d-%s-%s", nextASN, typ, country),
			Type:           typ,
			Country:        country,
			Continent:      cont,
			AllowsSpoofing: src.Bool(cfg.SpooferFraction),
		}
		nextASN++
		nPrefixes := 1 + src.IntN(3)
		for p := 0; p < nPrefixes; p++ {
			pl := allocLenFor(typ, src)
			prefix, ok := alloc.take(pl)
			if !ok {
				break // address space exhausted; extremely large worlds only
			}
			as.Prefixes = append(as.Prefixes, prefix)
			// Announce 1..8 more-specifics of each allocation; the announced
			// granularity is what the paper calls a "routed block".
			announceBits := pl + src.IntN(4)
			if announceBits > 24 {
				announceBits = 24
			}
			as.Announced = append(as.Announced, prefix.Subdivide(announceBits)...)
		}
		if len(as.Prefixes) == 0 {
			continue
		}
		db.add(as)
	}

	db.Table.Freeze()
	return db
}

func (db *DB) add(as *AS) {
	if _, dup := db.byNumber[as.Number]; dup {
		panic(fmt.Sprintf("asdb: duplicate ASN %d", as.Number))
	}
	db.ASes = append(db.ASes, as)
	db.byNumber[as.Number] = as
	db.byName[as.Name] = as
	for _, p := range as.Announced {
		db.Table.Announce(p, as.Number)
	}
}

// ByNumber returns the AS with the given number, or nil.
func (db *DB) ByNumber(n routing.ASN) *AS { return db.byNumber[n] }

// ByName returns a named AS (see the Name* constants), or nil.
func (db *DB) ByName(name string) *AS { return db.byName[name] }

// OwnerOf returns the AS owning addr via longest-prefix match, or nil for
// dark or unallocated space.
func (db *DB) OwnerOf(a netaddr.Addr) *AS {
	asn, ok := db.Table.OriginOf(a)
	if !ok {
		return nil
	}
	return db.byNumber[asn]
}

// OfType returns all ASes of the given type in deterministic order.
func (db *DB) OfType(t ASType) []*AS {
	var out []*AS
	for _, as := range db.ASes {
		if as.Type == t {
			out = append(out, as)
		}
	}
	return out
}

// PickWeighted selects a random AS, weighting each AS by weight(as).
// ASes with non-positive weight are never selected. It returns nil when all
// weights are non-positive.
func (db *DB) PickWeighted(src *rng.Source, weight func(*AS) float64) *AS {
	if cap(db.pickScratch) < len(db.ASes) {
		db.pickScratch = make([]float64, len(db.ASes))
	}
	weights := db.pickScratch[:len(db.ASes)]
	total := 0.0
	for i, as := range db.ASes {
		w := weight(as)
		if w > 0 {
			weights[i] = w
			total += w
		} else {
			weights[i] = 0
		}
	}
	if total <= 0 {
		return nil
	}
	return db.ASes[src.Weighted(weights)]
}

// allocator hands out non-overlapping prefixes from the non-reserved /8s.
type allocator struct {
	pool   []netaddr.Prefix // /8s remaining, in ascending order
	cursor netaddr.Addr     // next free address within pool[0]
}

func newAllocator() *allocator {
	a := &allocator{}
	for o := 1; o < 224; o++ {
		if reservedSlash8s[o] {
			continue
		}
		a.pool = append(a.pool, netaddr.Prefix{Base: netaddr.Addr(o) << 24, Bits: 8})
	}
	a.cursor = a.pool[0].Base
	return a
}

// take allocates the next aligned /bits block.
func (a *allocator) take(bits int) (netaddr.Prefix, bool) {
	size := netaddr.Addr(1) << (32 - bits)
	for len(a.pool) > 0 {
		cur := a.pool[0]
		// Align the cursor up to the block size.
		aligned := (a.cursor + size - 1) &^ (size - 1)
		if aligned >= cur.Base && aligned+size-1 <= cur.Last() && aligned >= a.cursor {
			a.cursor = aligned + size
			return netaddr.Prefix{Base: aligned, Bits: bits}, true
		}
		a.pool = a.pool[1:]
		if len(a.pool) > 0 {
			a.cursor = a.pool[0].Base
		}
	}
	return netaddr.Prefix{}, false
}
