// Package reflector is the protocol-generic amplification abstraction. The
// paper measures one reflector — NTP mode-7 monlist — but its decline story
// is really one of vector substitution: as the monlist pool was remediated,
// booters migrated to DNS ANY, SSDP and chargen, the other UDP services in
// Rossow's NDSS'14 amplification catalogue (and US-CERT alert TA14-017A).
// Each vector is described by a Profile: the trigger payload booters spoof,
// the reflector-side service port, the published bandwidth amplification
// factor, whether response size depends on reflector state the attacker
// warms by priming, and the TTL fingerprint of the reflector population.
//
// The attack engine resolves every campaign through a Profile, so the
// monlist path is just one instance of the interface: its Request bytes and
// Port are exactly the values the engine used before the abstraction
// existed, which is what keeps the golden-corpus digests byte-identical.
package reflector

import (
	"fmt"

	"ntpddos/internal/ntp"
)

// Vector names an amplification protocol. The zero value selects Monlist,
// the paper's vector, so pre-existing Campaign literals keep their meaning.
type Vector string

// The implemented vectors.
const (
	// Monlist is NTP mode-7 MON_GETLIST_1 — the paper's 556.9× vector.
	Monlist Vector = "monlist"
	// DNSANY is an ANY query against an open recursive resolver.
	DNSANY Vector = "dns-any"
	// SSDP is an M-SEARCH ssdp:all discovery against a naive UPnP device.
	SSDP Vector = "ssdp"
	// Chargen is the RFC 864 character-generation service.
	Chargen Vector = "chargen"
)

// Service ports of the non-NTP vectors (NTP's lives in internal/ntp).
const (
	DNSPort     = 53
	ChargenPort = 19
	SSDPPort    = 1900
)

// Profile describes one amplification vector: everything the attack engine
// needs to forge triggers and everything the detection plane needs to
// classify the reflected stream.
type Profile struct {
	Vector Vector
	// Port is the reflector-side UDP service port triggers are sent to.
	Port uint16
	// Request is the trigger payload booters spoof from the victim address.
	// Callers must not mutate it.
	Request []byte
	// BAF is the published bandwidth amplification factor (Rossow, NDSS'14;
	// §3.4 of the paper for monlist). It is documentation and calibration —
	// realized amplification on the fabric is mechanistic, computed from the
	// actual response bytes each reflector emits.
	BAF float64
	// Stateful marks vectors whose response size depends on reflector state
	// the attacker warms before launch (§3.2 priming): monlist replies grow
	// with the monitor table, so booters prime it with spoofed mode-3
	// clients. The stateless vectors ignore Campaign.PrimeSources.
	Stateful bool
	// ResponseTTL is the initial TTL typical of the vector's reflector
	// population — the fingerprint the §7.2-style TTL analysis reads.
	ResponseTTL uint8
}

// ssdpDiscover is the standard multicast discovery request, unicast at a
// reflector as the abuse does.
const ssdpDiscover = "M-SEARCH * HTTP/1.1\r\n" +
	"HOST: 239.255.255.250:1900\r\n" +
	"MAN: \"ssdp:discover\"\r\n" +
	"MX: 1\r\n" +
	"ST: ssdp:all\r\n\r\n"

// profiles is the vector catalogue, in stable presentation order. BAF
// sources: monlist 556.9 (paper §1, quoting Rossow), DNS ANY 28.7, SSDP
// 30.8, chargen 358.8 (Rossow NDSS'14 / US-CERT TA14-017A).
var profiles = []Profile{
	{
		Vector:  Monlist,
		Port:    ntp.Port,
		Request: ntp.NewMonlistRequestPadded(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		BAF:     556.9, Stateful: true,
		ResponseTTL: 64, // the pool is dominated by Linux/Unix ntpd builds
	},
	{
		Vector:  DNSANY,
		Port:    DNSPort,
		Request: dnsANYQuery(),
		BAF:     28.7, Stateful: false,
		ResponseTTL: 64, // CPE and Linux resolvers
	},
	{
		Vector:  SSDP,
		Port:    SSDPPort,
		Request: []byte(ssdpDiscover),
		BAF:     30.8, Stateful: false,
		ResponseTTL: 64, // embedded-Linux UPnP stacks
	},
	{
		Vector:  Chargen,
		Port:    ChargenPort,
		Request: []byte{0x0a}, // any datagram elicits a reply; one newline
		BAF:     358.8, Stateful: false,
		ResponseTTL: 128, // mostly Windows "Simple TCP/IP Services" boxes
	},
}

var byVector = func() map[Vector]*Profile {
	m := make(map[Vector]*Profile, len(profiles))
	for i := range profiles {
		m[profiles[i].Vector] = &profiles[i]
	}
	return m
}()

// Lookup resolves a vector name to its profile. The empty vector resolves
// to Monlist — the default that keeps pre-abstraction campaigns unchanged.
func Lookup(v Vector) (*Profile, error) {
	if v == "" {
		v = Monlist
	}
	p, ok := byVector[v]
	if !ok {
		return nil, fmt.Errorf("reflector: unknown vector %q", v)
	}
	return p, nil
}

// MustLookup is Lookup for vectors already validated at config time.
func MustLookup(v Vector) *Profile {
	p, err := Lookup(v)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the profiles in stable catalogue order.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Vectors returns every implemented vector name in catalogue order.
func Vectors() []Vector {
	out := make([]Vector, len(profiles))
	for i, p := range profiles {
		out[i] = p.Vector
	}
	return out
}

// Valid reports whether v names an implemented vector ("" counts: it is the
// monlist default).
func Valid(v Vector) bool {
	_, err := Lookup(v)
	return err == nil
}
