package reflector

import (
	"bytes"
	"testing"
	"time"

	"ntpddos/internal/dns"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

// TestMonlistProfileMatchesLegacyTrigger pins the refactoring contract: the
// monlist profile's request bytes and port are exactly what the attack
// engine hard-coded before the abstraction, so campaign datagrams — and
// therefore the golden digests — are byte-identical.
func TestMonlistProfileMatchesLegacyTrigger(t *testing.T) {
	p := MustLookup(Monlist)
	want := ntp.NewMonlistRequestPadded(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	if !bytes.Equal(p.Request, want) {
		t.Fatalf("monlist request drifted from the padded ntpdc probe:\n got %x\nwant %x", p.Request, want)
	}
	if p.Port != ntp.Port {
		t.Fatalf("monlist port = %d, want %d", p.Port, ntp.Port)
	}
	if !p.Stateful {
		t.Fatal("monlist must be stateful (priming semantics)")
	}
}

func TestLookup(t *testing.T) {
	if p := MustLookup(""); p.Vector != Monlist {
		t.Fatalf("empty vector resolved to %q, want monlist", p.Vector)
	}
	for _, v := range Vectors() {
		p, err := Lookup(v)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", v, err)
		}
		if p.Vector != v || len(p.Request) == 0 || p.Port == 0 || p.BAF <= 1 {
			t.Fatalf("profile %q incomplete: %+v", v, p)
		}
	}
	if _, err := Lookup("carrier-pigeon"); err == nil {
		t.Fatal("unknown vector accepted")
	}
	if Valid("carrier-pigeon") || !Valid("") || !Valid(SSDP) {
		t.Fatal("Valid disagrees with Lookup")
	}
}

// TestDNSANYRequestDecodes checks the trigger is a well-formed recursive
// ANY query — what dns.Resolver answers with its fat TXT set.
func TestDNSANYRequestDecodes(t *testing.T) {
	m, err := dns.Decode(MustLookup(DNSANY).Request)
	if err != nil {
		t.Fatal(err)
	}
	if m.Response || !m.Recursion || m.Question.Type != dns.TypeANY {
		t.Fatalf("bad ANY trigger: %+v", m)
	}
}

// newTestNet builds a permissive single-switch fabric.
func newTestNet() (*netsim.Network, *vtime.Scheduler) {
	clock := &vtime.Clock{}
	sched := vtime.NewScheduler(clock)
	return netsim.New(sched, func(origin, claimed netaddr.Addr) bool { return true }), sched
}

// capTap records rep-weighted bytes per destination.
type capTap struct {
	packets int64
	bytes   int64
}

func (c *capTap) Observe(dg *packet.Datagram, now time.Time) {
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	c.packets += rep
	c.bytes += int64(dg.OnWire()) * rep
}

// driveVector sends one profile trigger at a reflector host and returns the
// reflected byte/packet totals observed at the victim side.
func driveVector(t *testing.T, v Vector, host netsim.Host, addr netaddr.Addr) *capTap {
	t.Helper()
	nw, sched := newTestNet()
	nw.Register(addr, host)
	tap := &capTap{}
	nw.AddTap(tap)
	p := MustLookup(v)
	victim := netaddr.MustParseAddr("203.0.113.7")
	bot := netaddr.MustParseAddr("198.51.100.9")
	dg := packet.NewDatagram(victim, 80, addr, p.Port, p.Request)
	dg.IP.TTL = netsim.TTLWindows
	if !nw.SendFrom(bot, dg) {
		t.Fatalf("%s trigger not sent", v)
	}
	sched.RunUntil(vtime.Epoch.Add(time.Minute))
	return tap
}

// TestSSDPAmplifies drives one M-SEARCH through an SSDPNode and checks the
// response multiplies into several fat datagrams.
func TestSSDPAmplifies(t *testing.T) {
	addr := netaddr.MustParseAddr("192.0.2.50")
	node := NewSSDPNode(addr)
	tap := driveVector(t, SSDP, node, addr)
	// Trigger + Services responses.
	if want := int64(1 + node.Services); tap.packets != want {
		t.Fatalf("observed %d packets, want %d", tap.packets, want)
	}
	trigger := int64(len(MustLookup(SSDP).Request)) + 46
	if tap.bytes < 10*trigger {
		t.Fatalf("SSDP amplification too small: %d bytes vs %d trigger", tap.bytes, trigger)
	}
	if node.QueriesSeen != 1 || node.BytesSent == 0 {
		t.Fatalf("node accounting: %d queries, %d bytes", node.QueriesSeen, node.BytesSent)
	}
}

// TestChargenAmplifies drives the one-byte trigger through a ChargenNode.
func TestChargenAmplifies(t *testing.T) {
	addr := netaddr.MustParseAddr("192.0.2.51")
	node := NewChargenNode(addr)
	tap := driveVector(t, Chargen, node, addr)
	if tap.packets != 2 { // trigger + single reply
		t.Fatalf("observed %d packets, want 2", tap.packets)
	}
	if node.BytesSent < int64(DefaultChargenReplyLen) {
		t.Fatalf("chargen reply too small: %d bytes", node.BytesSent)
	}
}

// TestDNSResolverAnswersProfileTrigger closes the loop with the existing
// open-resolver host: the profile's trigger elicits the multi-kilobyte ANY
// response.
func TestDNSResolverAnswersProfileTrigger(t *testing.T) {
	addr := netaddr.MustParseAddr("192.0.2.52")
	res := dns.NewResolver(addr, true)
	tap := driveVector(t, DNSANY, res, addr)
	if res.QueriesSeen != 1 {
		t.Fatalf("resolver saw %d queries, want 1", res.QueriesSeen)
	}
	if res.BytesSent < int64(res.AmpPayload) {
		t.Fatalf("ANY response too small: %d bytes vs %d payload", res.BytesSent, res.AmpPayload)
	}
	if tap.packets != 2 {
		t.Fatalf("observed %d packets, want 2", tap.packets)
	}
}

// TestRepBatchingPreserved pins that reflector hosts carry the trigger's
// Rep through to responses — the engine's batching contract.
func TestRepBatchingPreserved(t *testing.T) {
	addr := netaddr.MustParseAddr("192.0.2.53")
	node := NewChargenNode(addr)
	nw, sched := newTestNet()
	nw.Register(addr, node)
	tap := &capTap{}
	nw.AddTap(tap)
	dg := packet.NewDatagram(netaddr.MustParseAddr("203.0.113.8"), 80, addr, ChargenPort,
		MustLookup(Chargen).Request)
	dg.Rep = 50
	nw.SendFrom(netaddr.MustParseAddr("198.51.100.9"), dg)
	sched.RunUntil(vtime.Epoch.Add(time.Minute))
	if tap.packets != 100 { // 50 triggers + 50 replies
		t.Fatalf("rep-weighted packets = %d, want 100", tap.packets)
	}
	if node.QueriesSeen != 50 {
		t.Fatalf("QueriesSeen = %d, want 50", node.QueriesSeen)
	}
}
