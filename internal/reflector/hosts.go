package reflector

import (
	"bytes"
	"fmt"
	"time"

	"ntpddos/internal/dns"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/packet"
)

// The DNS-ANY reflector population is internal/dns.Resolver — open
// recursive resolvers already on the fabric for the §6.2 pool-overlap
// analysis. This file adds fabric hosts for the two vectors that had none:
// naive UPnP devices (SSDP) and chargen services.

// dnsANYQuery builds the trigger payload for the DNSANY profile: one
// recursive ANY query for a fat zone. The ID is fixed — booters reuse a
// constant ID across spoofed triggers, and determinism wants one byte
// sequence per profile.
func dnsANYQuery() []byte {
	q := dns.NewQuery(0x1337, "amp.example.com", dns.TypeANY)
	raw, err := q.Encode()
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return raw
}

// SSDPNode is a naive UPnP device: it answers a unicast M-SEARCH ssdp:all
// with one HTTP/1.1 200 OK datagram per advertised service — the
// multiplicative response that makes consumer gear a 30.8× amplifier.
type SSDPNode struct {
	Addr netaddr.Addr
	// Services is how many response datagrams one discovery elicits
	// (root device + embedded devices + service types).
	Services int

	QueriesSeen int64
	BytesSent   int64
}

// DefaultSSDPServices is a typical consumer device's advertisement count.
const DefaultSSDPServices = 10

// NewSSDPNode builds a device with the typical advertisement count.
func NewSSDPNode(addr netaddr.Addr) *SSDPNode {
	return &SSDPNode{Addr: addr, Services: DefaultSSDPServices}
}

var ssdpMSearch = []byte("M-SEARCH")

// ssdpServiceTypes cycles the ST lines of successive response datagrams.
var ssdpServiceTypes = []string{
	"upnp:rootdevice",
	"urn:schemas-upnp-org:device:InternetGatewayDevice:1",
	"urn:schemas-upnp-org:device:WANDevice:1",
	"urn:schemas-upnp-org:device:WANConnectionDevice:1",
	"urn:schemas-upnp-org:service:WANIPConnection:1",
	"urn:schemas-upnp-org:service:WANPPPConnection:1",
	"urn:schemas-upnp-org:service:Layer3Forwarding:1",
	"urn:schemas-upnp-org:device:MediaServer:1",
	"urn:schemas-upnp-org:service:ContentDirectory:1",
	"urn:schemas-upnp-org:service:ConnectionManager:1",
}

// ssdpResponse renders the i-th 200 OK datagram a device at addr emits.
func ssdpResponse(addr netaddr.Addr, i int) []byte {
	st := ssdpServiceTypes[i%len(ssdpServiceTypes)]
	return []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\n"+
		"CACHE-CONTROL: max-age=1800\r\n"+
		"EXT:\r\n"+
		"LOCATION: http://%s:5000/rootDesc.xml\r\n"+
		"SERVER: Linux/2.6 UPnP/1.0 MiniUPnPd/1.8\r\n"+
		"ST: %s\r\n"+
		"USN: uuid:824ff22b-8c7d-41c5-a131-44f534e12555::%s\r\n\r\n",
		addr, st, st))
}

// HandlePacket implements netsim.Host.
func (n *SSDPNode) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	if dg.UDP.DstPort != SSDPPort || !bytes.HasPrefix(dg.Payload, ssdpMSearch) {
		return
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	n.QueriesSeen += rep
	for i := 0; i < n.Services; i++ {
		out := packet.NewDatagram(n.Addr, SSDPPort, dg.IP.Src, dg.UDP.SrcPort,
			ssdpResponse(n.Addr, i))
		out.IP.TTL = MustLookup(SSDP).ResponseTTL
		out.Rep = rep
		if nw.SendFrom(n.Addr, out) {
			n.BytesSent += int64(out.OnWire()) * rep
		}
	}
}

// ChargenNode is an RFC 864 UDP character-generation service: any datagram
// elicits a reply of "a random number (between 0 and 512) of characters" —
// in practice implementations pin a size, which with a one-byte trigger is
// the 358.8× amplification chargen is abused for.
type ChargenNode struct {
	Addr netaddr.Addr
	// ReplyLen is the reply payload size (RFC caps UDP chargen at 512).
	ReplyLen int

	QueriesSeen int64
	BytesSent   int64
}

// DefaultChargenReplyLen is the reply size of the common implementations.
const DefaultChargenReplyLen = 512

// NewChargenNode builds a chargen service with the common reply size.
func NewChargenNode(addr netaddr.Addr) *ChargenNode {
	return &ChargenNode{Addr: addr, ReplyLen: DefaultChargenReplyLen}
}

// ChargenPayload renders n bytes of the RFC 864 rotating printable pattern.
func ChargenPayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(' ' + (i % 95))
	}
	return out
}

// HandlePacket implements netsim.Host.
func (c *ChargenNode) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	if dg.UDP.DstPort != ChargenPort {
		return
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	c.QueriesSeen += rep
	out := packet.NewDatagram(c.Addr, ChargenPort, dg.IP.Src, dg.UDP.SrcPort,
		ChargenPayload(c.ReplyLen))
	out.IP.TTL = MustLookup(Chargen).ResponseTTL
	out.Rep = rep
	if nw.SendFrom(c.Addr, out) {
		c.BytesSent += int64(out.OnWire()) * rep
	}
}
