// Package telemetry models the Arbor Networks-style global analytics feed
// of §2: netflow summaries from 300+ operators covering a third to a half
// of Internet traffic, plus labeled attack counts. It produces Figure 1
// (NTP/DNS fraction of global traffic) and Figure 2 (fraction of monthly
// DDoS attacks that are NTP-based, by size class).
//
// Global background traffic (the 71.5 Tbps baseline) is analytic — no flow
// collector simulates the whole Internet packet by packet, and neither did
// Arbor's: appliances export summaries. Simulated NTP/DNS bytes arrive both
// from the fabric tap (packet-level events) and from the scenario's
// aggregate attack-volume model.
package telemetry

import (
	"sort"
	"time"

	"ntpddos/internal/dns"
	"ntpddos/internal/metrics"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

// Metrics is the global-telemetry ingest instrumentation: visibility-scaled
// bytes accrued per protocol (tap and aggregate paths separately) and
// labeled attack records. Pre-resolved children keep the tap path to one
// atomic add per packet.
type Metrics struct {
	TapNTPBytes *metrics.Counter
	TapDNSBytes *metrics.Counter
	AggNTPBytes *metrics.Counter
	AggDNSBytes *metrics.Counter
	Attacks     *metrics.Counter
}

// NewMetrics registers the telemetry family on r (nil r yields no-ops).
func NewMetrics(r *metrics.Registry) *Metrics {
	tap := r.NewCounterVec("ntpsim_telemetry_tap_bytes_total",
		"Visibility-scaled bytes accrued from the fabric tap, by protocol.",
		"proto")
	agg := r.NewCounterVec("ntpsim_telemetry_aggregate_bytes_total",
		"Bytes accrued from the analytic attack-volume model, by protocol.",
		"proto")
	return &Metrics{
		TapNTPBytes: tap.With("ntp"),
		TapDNSBytes: tap.With("dns"),
		AggNTPBytes: agg.With("ntp"),
		AggDNSBytes: agg.With("dns"),
		Attacks: r.NewCounter("ntpsim_telemetry_attacks_recorded_total",
			"Labeled attack records ingested."),
	}
}

// Protocol classes tracked by the collector.
type Protocol int

// Protocols.
const (
	ProtoNTP Protocol = iota
	ProtoDNS
	ProtoOther
)

// SizeClass bins attacks the way Figure 2 does.
type SizeClass int

// Size classes: Small < 2 Gbps, Medium 2–20 Gbps, Large > 20 Gbps.
const (
	Small SizeClass = iota
	Medium
	Large
)

// String names the class.
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "Small (<2 Gbps)"
	case Medium:
		return "Medium (2-20 Gbps)"
	case Large:
		return "Large (>20 Gbps)"
	}
	return "?"
}

// ClassifyGbps bins a peak attack bandwidth.
func ClassifyGbps(gbps float64) SizeClass {
	switch {
	case gbps < 2:
		return Small
	case gbps <= 20:
		return Medium
	default:
		return Large
	}
}

// Attack is one labeled attack record.
type Attack struct {
	Start    time.Time
	PeakGbps float64
	// Vector is the dominant protocol ("ntp", "dns", "syn", "icmp", ...).
	Vector string
}

// Collector aggregates traffic fractions and attack labels.
type Collector struct {
	// TotalDailyBps is the average total Internet traffic represented in
	// the dataset: 71.5 Tbps in the paper.
	TotalDailyBps float64
	// Visibility is the fraction of global traffic/attacks the collector
	// actually observes (Arbor: between a third and a half).
	Visibility float64

	ntpDailyBytes *stats.TimeSeries
	dnsDailyBytes *stats.TimeSeries
	attacks       []Attack
	m             *Metrics
}

// SetMetrics attaches (or, with nil, detaches) live instrumentation.
func (c *Collector) SetMetrics(m *Metrics) { c.m = m }

// New builds a collector with the paper's 71.5 Tbps baseline.
func New() *Collector {
	return &Collector{
		TotalDailyBps: 71.5e12,
		Visibility:    0.4,
		ntpDailyBytes: stats.NewTimeSeries(vtime.Epoch, 24*time.Hour),
		dnsDailyBytes: stats.NewTimeSeries(vtime.Epoch, 24*time.Hour),
	}
}

// Observe implements netsim.Tap: classify fabric packets by port and accrue
// their on-wire bytes (scaled up by 1/Visibility, since the tap effectively
// sees the visible share of the simulated world).
func (c *Collector) Observe(dg *packet.Datagram, now time.Time) {
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	bytes := float64(dg.OnWire()) * float64(rep)
	if c.Visibility > 0 && c.Visibility < 1 {
		bytes /= c.Visibility // the tap sees only the visible share of traffic
	}
	switch {
	case dg.UDP.DstPort == ntp.Port || dg.UDP.SrcPort == ntp.Port:
		c.ntpDailyBytes.Add(now, bytes)
		if c.m != nil {
			c.m.TapNTPBytes.Add(int64(bytes))
		}
	case dg.UDP.DstPort == dns.Port || dg.UDP.SrcPort == dns.Port:
		c.dnsDailyBytes.Add(now, bytes)
		if c.m != nil {
			c.m.TapDNSBytes.Add(int64(bytes))
		}
	}
}

// AddAggregate accrues analytically modeled traffic (bytes over one day)
// for a protocol class — the path by which the scenario's flow-level attack
// model reaches the global picture.
func (c *Collector) AddAggregate(day time.Time, p Protocol, bytes float64) {
	switch p {
	case ProtoNTP:
		c.ntpDailyBytes.Add(day, bytes)
		if c.m != nil {
			c.m.AggNTPBytes.Add(int64(bytes))
		}
	case ProtoDNS:
		c.dnsDailyBytes.Add(day, bytes)
		if c.m != nil {
			c.m.AggDNSBytes.Add(int64(bytes))
		}
	}
}

// RecordAttack stores a labeled attack, subject to visibility (the caller
// should pre-filter if modeling unobserved attacks; Arbor's labeling also
// misses some, especially small ones).
func (c *Collector) RecordAttack(a Attack) {
	c.attacks = append(c.attacks, a)
	if c.m != nil {
		c.m.Attacks.Inc()
	}
}

// FractionPoint is one day of Figure 1: the protocol's share of total
// traffic (dimensionless, e.g. 0.01 = 1%).
type FractionPoint struct {
	Day      time.Time
	Fraction float64
}

// totalDailyBytes converts the bps baseline to bytes/day.
func (c *Collector) totalDailyBytes() float64 {
	return c.TotalDailyBps / 8 * 86400
}

// fractionSeries renders a byte series as fractions of total traffic.
func (c *Collector) fractionSeries(ts *stats.TimeSeries) []FractionPoint {
	total := c.totalDailyBytes()
	pts := ts.Points()
	out := make([]FractionPoint, len(pts))
	for i, p := range pts {
		out[i] = FractionPoint{Day: p.Time, Fraction: p.Value / total}
	}
	return out
}

// NTPFractionSeries is Figure 1's NTP line.
func (c *Collector) NTPFractionSeries() []FractionPoint {
	return c.fractionSeries(c.ntpDailyBytes)
}

// DNSFractionSeries is Figure 1's DNS line.
func (c *Collector) DNSFractionSeries() []FractionPoint {
	return c.fractionSeries(c.dnsDailyBytes)
}

// PeakNTPDay returns the day with the highest NTP fraction (the paper:
// February 11th, ~1% of all traffic).
func (c *Collector) PeakNTPDay() (FractionPoint, bool) {
	p, ok := c.ntpDailyBytes.Max()
	if !ok {
		return FractionPoint{}, false
	}
	return FractionPoint{Day: p.Time, Fraction: p.Value / c.totalDailyBytes()}, true
}

// MonthRow is one month of Figure 2.
type MonthRow struct {
	Month time.Time
	// NTPFraction per size class and overall: what fraction of the class's
	// attacks used the NTP vector.
	Small, Medium, Large, All float64
	// Counts per class (all vectors).
	NSmall, NMedium, NLarge int
}

// AttackFractions renders Figure 2's bars.
func (c *Collector) AttackFractions() []MonthRow {
	type agg struct {
		total [3]int
		ntp   [3]int
	}
	months := make(map[time.Time]*agg)
	for _, a := range c.attacks {
		m := vtime.Month(a.Start)
		g, ok := months[m]
		if !ok {
			g = &agg{}
			months[m] = g
		}
		cls := ClassifyGbps(a.PeakGbps)
		g.total[cls]++
		if a.Vector == "ntp" {
			g.ntp[cls]++
		}
	}
	keys := make([]time.Time, 0, len(months))
	for m := range months {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	out := make([]MonthRow, 0, len(keys))
	for _, m := range keys {
		g := months[m]
		frac := func(cls SizeClass) float64 {
			if g.total[cls] == 0 {
				return 0
			}
			return float64(g.ntp[cls]) / float64(g.total[cls])
		}
		tot := g.total[0] + g.total[1] + g.total[2]
		ntp := g.ntp[0] + g.ntp[1] + g.ntp[2]
		all := 0.0
		if tot > 0 {
			all = float64(ntp) / float64(tot)
		}
		out = append(out, MonthRow{
			Month: m, Small: frac(Small), Medium: frac(Medium), Large: frac(Large),
			All: all, NSmall: g.total[0], NMedium: g.total[1], NLarge: g.total[2],
		})
	}
	return out
}

// NumAttacks returns the total labeled attack count.
func (c *Collector) NumAttacks() int { return len(c.attacks) }

// MonthlyVectorCounts returns labeled attack counts per month for one
// vector — the telemetry side of the honeypot cross-vantage join.
func (c *Collector) MonthlyVectorCounts(vector string) map[time.Time]int {
	out := make(map[time.Time]int)
	for _, a := range c.attacks {
		if a.Vector == vector {
			out[vtime.Month(a.Start)]++
		}
	}
	return out
}
