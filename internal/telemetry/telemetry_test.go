package telemetry

import (
	"math"
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func TestClassifyGbps(t *testing.T) {
	cases := []struct {
		gbps float64
		want SizeClass
	}{
		{0.1, Small}, {1.99, Small}, {2, Medium}, {19, Medium}, {20, Medium},
		{20.1, Large}, {400, Large},
	}
	for _, c := range cases {
		if got := ClassifyGbps(c.gbps); got != c.want {
			t.Fatalf("ClassifyGbps(%v) = %v, want %v", c.gbps, got, c.want)
		}
	}
}

func TestAggregateFractions(t *testing.T) {
	c := New()
	day := vtime.Epoch.Add(61 * 24 * time.Hour)
	// Push exactly 1% of a day's traffic as NTP.
	total := c.TotalDailyBps / 8 * 86400
	c.AddAggregate(day, ProtoNTP, total*0.01)
	c.AddAggregate(day, ProtoDNS, total*0.0015)
	ntp := c.NTPFractionSeries()
	if len(ntp) != 1 || math.Abs(ntp[0].Fraction-0.01) > 1e-12 {
		t.Fatalf("NTP fraction = %+v", ntp)
	}
	dns := c.DNSFractionSeries()
	if math.Abs(dns[0].Fraction-0.0015) > 1e-12 {
		t.Fatalf("DNS fraction = %+v", dns)
	}
	peak, ok := c.PeakNTPDay()
	if !ok || !peak.Day.Equal(vtime.Day(day)) {
		t.Fatalf("peak = %+v/%v", peak, ok)
	}
}

func TestObserveClassifiesByPort(t *testing.T) {
	c := New()
	now := vtime.Epoch
	mk := func(sport, dport uint16, rep int64) *packet.Datagram {
		dg := packet.NewDatagram(netaddr.Addr(1), sport, netaddr.Addr(2), dport, make([]byte, 100))
		dg.Rep = rep
		return dg
	}
	c.Observe(mk(40000, 123, 1), now) // NTP query
	c.Observe(mk(123, 80, 3), now)    // NTP reflection toward victim port 80
	c.Observe(mk(40000, 53, 1), now)  // DNS
	c.Observe(mk(40000, 9999, 1), now)
	ntpPts := c.NTPFractionSeries()
	dnsPts := c.DNSFractionSeries()
	if len(ntpPts) != 1 || len(dnsPts) != 1 {
		t.Fatalf("series lengths %d/%d", len(ntpPts), len(dnsPts))
	}
	// Four Rep-weighted NTP packets, inflated by 1/Visibility (the tap sees
	// only the visible share of global traffic).
	onWire := float64(packet.OnWireBytes(packet.IPv4HeaderLen+packet.UDPHeaderLen+100)) / c.Visibility
	if got := ntpPts[0].Fraction * c.TotalDailyBps / 8 * 86400; math.Abs(got-4*onWire) > 1 {
		t.Fatalf("NTP bytes = %v, want %v", got, 4*onWire)
	}
}

func TestAttackFractions(t *testing.T) {
	c := New()
	feb := time.Date(2014, 2, 5, 0, 0, 0, 0, time.UTC)
	nov := time.Date(2013, 11, 5, 0, 0, 0, 0, time.UTC)
	// November: 1000 small syn attacks, 1 ntp.
	for i := 0; i < 999; i++ {
		c.RecordAttack(Attack{Start: nov, PeakGbps: 0.5, Vector: "syn"})
	}
	c.RecordAttack(Attack{Start: nov, PeakGbps: 0.5, Vector: "ntp"})
	// February: large attacks dominated by NTP.
	for i := 0; i < 7; i++ {
		c.RecordAttack(Attack{Start: feb, PeakGbps: 100, Vector: "ntp"})
	}
	for i := 0; i < 3; i++ {
		c.RecordAttack(Attack{Start: feb, PeakGbps: 100, Vector: "dns"})
	}
	c.RecordAttack(Attack{Start: feb, PeakGbps: 5, Vector: "ntp"})
	c.RecordAttack(Attack{Start: feb, PeakGbps: 5, Vector: "syn"})

	rows := c.AttackFractions()
	if len(rows) != 2 {
		t.Fatalf("%d month rows", len(rows))
	}
	if !rows[0].Month.Before(rows[1].Month) {
		t.Fatal("rows not sorted by month")
	}
	novRow, febRow := rows[0], rows[1]
	if math.Abs(novRow.All-0.001) > 1e-9 {
		t.Fatalf("Nov all fraction = %v, want 0.001", novRow.All)
	}
	if febRow.Large != 0.7 {
		t.Fatalf("Feb large fraction = %v, want 0.7", febRow.Large)
	}
	if febRow.Medium != 0.5 {
		t.Fatalf("Feb medium fraction = %v, want 0.5", febRow.Medium)
	}
	if febRow.NLarge != 10 || febRow.NMedium != 2 {
		t.Fatalf("Feb counts = %+v", febRow)
	}
	if c.NumAttacks() != 1012 {
		t.Fatalf("NumAttacks = %d", c.NumAttacks())
	}
}

func TestEmptyCollector(t *testing.T) {
	c := New()
	if _, ok := c.PeakNTPDay(); ok {
		t.Fatal("empty collector has a peak day")
	}
	if len(c.AttackFractions()) != 0 {
		t.Fatal("empty collector has attack rows")
	}
}
