// Package stats provides the summary statistics the paper reports: quantiles,
// five-number boxplot summaries (Figures 4b/4c), CDFs over ranked categories
// (Figure 5), histograms, and simple time-bucketed series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Quantile returns the q'th quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics (the same convention as numpy's
// default). It returns NaN for an empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Sum returns the total of values.
func Sum(values []float64) float64 {
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum
}

// BoxPlot is a five-number summary plus the mean — one box of the paper's
// Figure 4b/4c BAF boxplots ("minimum, first quartile, median, third
// quartile, and maximum").
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// NewBoxPlot summarises values. An empty input yields a zero BoxPlot with
// N == 0 and NaN statistics.
func NewBoxPlot(values []float64) BoxPlot {
	if len(values) == 0 {
		nan := math.NaN()
		return BoxPlot{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return BoxPlot{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}
}

// String renders the summary compactly for table output.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// RankedCDF describes cumulative share versus rank: sort the per-category
// totals descending, then CDF[i] is the fraction of the grand total
// contributed by the top i+1 categories. This is exactly the paper's
// Figure 5 ("Just 100 amplifier ASes are responsible for 60% of the victim
// packets").
type RankedCDF struct {
	// Totals holds per-category totals sorted descending.
	Totals []float64
	// Cumulative holds the running fraction of the grand total.
	Cumulative []float64
	GrandTotal float64
}

// NewRankedCDF builds a ranked CDF from per-category totals (any order).
func NewRankedCDF(totals []float64) RankedCDF {
	sorted := make([]float64, len(totals))
	copy(sorted, totals)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	grand := Sum(sorted)
	cum := make([]float64, len(sorted))
	run := 0.0
	for i, v := range sorted {
		run += v
		if grand > 0 {
			cum[i] = run / grand
		}
	}
	return RankedCDF{Totals: sorted, Cumulative: cum, GrandTotal: grand}
}

// ShareOfTop returns the fraction of the grand total held by the top n
// categories (0 if the CDF is empty).
func (c RankedCDF) ShareOfTop(n int) float64 {
	if len(c.Cumulative) == 0 || n <= 0 {
		return 0
	}
	if n > len(c.Cumulative) {
		n = len(c.Cumulative)
	}
	return c.Cumulative[n-1]
}

// Histogram counts occurrences of integer-valued observations (TTL modes,
// port tallies). Keys are preserved; use Mode or TopK for reporting.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add increments the count of value by n.
func (h *Histogram) Add(value int, n int64) {
	h.counts[value] += n
	h.total += n
}

// Count returns the count for value.
func (h *Histogram) Count(value int) int64 { return h.counts[value] }

// Total returns the sum of all counts.
func (h *Histogram) Total() int64 { return h.total }

// Mode returns the most frequent value and its count. Ties break toward the
// smaller value so output is deterministic. The second return is false for
// an empty histogram.
func (h *Histogram) Mode() (value int, count int64, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	first := true
	for v, c := range h.counts {
		if first || c > count || (c == count && v < value) {
			value, count, first = v, c, false
		}
	}
	return value, count, true
}

// Bin is one entry of a TopK result.
type Bin struct {
	Value    int
	Count    int64
	Fraction float64
}

// TopK returns the k most frequent values with fractions of the total,
// ordered by descending count (ties toward smaller value). This is the shape
// of the paper's Table 4 attacked-ports ranking.
func (h *Histogram) TopK(k int) []Bin {
	bins := make([]Bin, 0, len(h.counts))
	for v, c := range h.counts {
		f := 0.0
		if h.total > 0 {
			f = float64(c) / float64(h.total)
		}
		bins = append(bins, Bin{Value: v, Count: c, Fraction: f})
	}
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].Count != bins[j].Count {
			return bins[i].Count > bins[j].Count
		}
		return bins[i].Value < bins[j].Value
	})
	if k < len(bins) {
		bins = bins[:k]
	}
	return bins
}

// TimeSeries accumulates float values into fixed time buckets — the daily,
// hourly and monthly series behind Figures 1, 7, 8, 9, 11 and 12.
type TimeSeries struct {
	bucket time.Duration
	origin time.Time
	data   map[int64]float64

	// Write-back cache for the most recently touched bucket. Simulated
	// traffic arrives in time order, so consecutive Adds overwhelmingly hit
	// the same (hourly) bucket; accumulating locally and flushing on bucket
	// change turns millions of map assigns into one per bucket. The float
	// additions happen in the same order as the uncached version, so sums
	// are bit-identical.
	curIdx int64
	curVal float64
	curOK  bool
	// lastT short-circuits the Sub/divide in index() for the repeated
	// identical timestamps event bursts produce. Virtual times carry no
	// monotonic reading, so == is a pure value comparison here.
	lastT time.Time
}

// NewTimeSeries returns a series bucketed at the given granularity, with
// buckets aligned to origin. Bucket must be positive.
func NewTimeSeries(origin time.Time, bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("stats: TimeSeries bucket must be positive")
	}
	return &TimeSeries{bucket: bucket, origin: origin, data: make(map[int64]float64)}
}

func (ts *TimeSeries) index(t time.Time) int64 {
	return int64(t.Sub(ts.origin) / ts.bucket)
}

// flush writes the cached bucket back to the map. Reads must call it first.
func (ts *TimeSeries) flush() {
	if ts.curOK {
		ts.data[ts.curIdx] = ts.curVal
	}
}

// Add accumulates v into t's bucket.
func (ts *TimeSeries) Add(t time.Time, v float64) {
	if ts.curOK && t == ts.lastT {
		ts.curVal += v
		return
	}
	idx := ts.index(t)
	if !ts.curOK || idx != ts.curIdx {
		ts.flush()
		ts.curIdx, ts.curVal, ts.curOK = idx, ts.data[idx], true
	}
	ts.lastT = t
	ts.curVal += v
}

// At returns the accumulated value for t's bucket (0 if empty).
func (ts *TimeSeries) At(t time.Time) float64 {
	ts.flush()
	return ts.data[ts.index(t)]
}

// Point is one (time, value) sample of a series.
type Point struct {
	Time  time.Time
	Value float64
}

// Points returns all non-empty buckets in time order.
func (ts *TimeSeries) Points() []Point {
	ts.flush()
	idx := make([]int64, 0, len(ts.data))
	for i := range ts.data {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	out := make([]Point, len(idx))
	for n, i := range idx {
		out[n] = Point{Time: ts.origin.Add(time.Duration(i) * ts.bucket), Value: ts.data[i]}
	}
	return out
}

// Max returns the maximum bucket value and its time. ok is false when the
// series is empty.
func (ts *TimeSeries) Max() (p Point, ok bool) {
	for _, pt := range ts.Points() {
		if !ok || pt.Value > p.Value {
			p, ok = pt, true
		}
	}
	return p, ok
}

// Len returns the number of non-empty buckets.
func (ts *TimeSeries) Len() int {
	ts.flush()
	return len(ts.data)
}

// Bucket returns the series granularity.
func (ts *TimeSeries) Bucket() time.Duration { return ts.bucket }

// Percentile95 implements the 95th-percentile billing rule used by transit
// providers (and by Merit, per §7.1): sort the interval samples, drop the
// top 5%, and bill at the highest remaining sample.
func Percentile95(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
