package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if got := Quantile(vals, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(vals, 0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := Quantile(vals, 1); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := Quantile(vals, 0.25); got != 2 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	vals := []float64{0, 10}
	if got := Quantile(vals, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestQuantileEmptyNaN(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", vals)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 2))
		n := 1 + r.IntN(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
		}
		q1 := Quantile(vals, 0.25)
		q2 := Quantile(vals, 0.5)
		q3 := Quantile(vals, 0.75)
		return q1 <= q2 && q2 <= q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("Mean broken")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum broken")
	}
}

func TestBoxPlot(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 100})
	if b.N != 5 || b.Min != 1 || b.Max != 100 || b.Median != 3 {
		t.Fatalf("BoxPlot = %+v", b)
	}
	if b.Mean != 22 {
		t.Fatalf("mean = %v, want 22", b.Mean)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v/%v", b.Q1, b.Q3)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Fatalf("empty BoxPlot = %+v", b)
	}
}

func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 3))
		n := 1 + r.IntN(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 1e6
		}
		b := NewBoxPlot(vals)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Mean >= b.Min && b.Mean <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRankedCDF(t *testing.T) {
	c := NewRankedCDF([]float64{10, 60, 30})
	if c.GrandTotal != 100 {
		t.Fatalf("grand total = %v", c.GrandTotal)
	}
	if c.Totals[0] != 60 || c.Totals[2] != 10 {
		t.Fatalf("not sorted descending: %v", c.Totals)
	}
	if got := c.ShareOfTop(1); got != 0.6 {
		t.Fatalf("top-1 share = %v", got)
	}
	if got := c.ShareOfTop(2); got != 0.9 {
		t.Fatalf("top-2 share = %v", got)
	}
	if got := c.ShareOfTop(100); got != 1 {
		t.Fatalf("overlong top share = %v", got)
	}
	if got := c.ShareOfTop(0); got != 0 {
		t.Fatalf("top-0 share = %v", got)
	}
}

func TestRankedCDFEmpty(t *testing.T) {
	c := NewRankedCDF(nil)
	if c.ShareOfTop(5) != 0 {
		t.Fatal("empty CDF share must be 0")
	}
}

func TestRankedCDFMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 4))
		n := 1 + r.IntN(100)
		totals := make([]float64, n)
		for i := range totals {
			totals[i] = r.Float64() * 1000
		}
		c := NewRankedCDF(totals)
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(c.Totals))) {
			return false
		}
		for i := 1; i < len(c.Cumulative); i++ {
			if c.Cumulative[i] < c.Cumulative[i-1]-1e-12 {
				return false
			}
		}
		return math.Abs(c.Cumulative[len(c.Cumulative)-1]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(80, 5)
	h.Add(123, 3)
	h.Add(80, 2)
	if h.Total() != 10 || h.Count(80) != 7 {
		t.Fatalf("counts wrong: total=%d c80=%d", h.Total(), h.Count(80))
	}
	v, c, ok := h.Mode()
	if !ok || v != 80 || c != 7 {
		t.Fatalf("Mode = %d/%d/%v", v, c, ok)
	}
	top := h.TopK(1)
	if len(top) != 1 || top[0].Value != 80 || math.Abs(top[0].Fraction-0.7) > 1e-12 {
		t.Fatalf("TopK = %+v", top)
	}
}

func TestHistogramModeEmptyAndTies(t *testing.T) {
	h := NewHistogram()
	if _, _, ok := h.Mode(); ok {
		t.Fatal("empty Mode must return ok=false")
	}
	h.Add(5, 1)
	h.Add(3, 1)
	v, _, _ := h.Mode()
	if v != 3 {
		t.Fatalf("tie must break to smaller value, got %d", v)
	}
}

func TestTopKOrderingProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 5))
		h := NewHistogram()
		for i := 0; i < 50; i++ {
			h.Add(r.IntN(20), int64(1+r.IntN(100)))
		}
		top := h.TopK(10)
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	origin := time.Date(2013, 11, 1, 0, 0, 0, 0, time.UTC)
	ts := NewTimeSeries(origin, 24*time.Hour)
	ts.Add(origin.Add(3*time.Hour), 10)
	ts.Add(origin.Add(20*time.Hour), 5)
	ts.Add(origin.Add(25*time.Hour), 7)
	if got := ts.At(origin); got != 15 {
		t.Fatalf("day-0 bucket = %v, want 15", got)
	}
	if got := ts.At(origin.Add(24 * time.Hour)); got != 7 {
		t.Fatalf("day-1 bucket = %v, want 7", got)
	}
	pts := ts.Points()
	if len(pts) != 2 || !pts[0].Time.Equal(origin) {
		t.Fatalf("Points = %+v", pts)
	}
	max, ok := ts.Max()
	if !ok || max.Value != 15 {
		t.Fatalf("Max = %+v/%v", max, ok)
	}
}

func TestTimeSeriesEmptyMax(t *testing.T) {
	ts := NewTimeSeries(time.Unix(0, 0).UTC(), time.Hour)
	if _, ok := ts.Max(); ok {
		t.Fatal("empty Max must return ok=false")
	}
}

func TestPercentile95(t *testing.T) {
	// 100 samples 1..100: 95th percentile billing drops the top 5 samples.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	if got := Percentile95(samples); got != 95 {
		t.Fatalf("Percentile95 = %v, want 95", got)
	}
	if got := Percentile95([]float64{7}); got != 7 {
		t.Fatalf("single sample = %v", got)
	}
	if got := Percentile95(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestPercentile95DropsSpikes(t *testing.T) {
	// A short attack spike in <5% of intervals must not raise the bill.
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 100
	}
	for i := 0; i < 40; i++ { // 4% of intervals spike
		samples[i] = 100000
	}
	if got := Percentile95(samples); got != 100 {
		t.Fatalf("Percentile95 with 4%% spikes = %v, want 100", got)
	}
}
