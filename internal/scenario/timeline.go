package scenario

import (
	"math"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/telemetry"
	"ntpddos/internal/vtime"
)

// table1Targets is the paper's measured weekly monlist amplifier population
// (Table 1), the calibration target for the remediation model.
var table1Targets = []int{
	1405186, 1276639, 677112, 438722, 365724, 235370, 176931, 159629,
	123673, 121507, 110565, 108385, 112131, 108636, 106445,
}

// ONPStart is the first weekly monlist sample: January 10th, 2014.
var ONPStart = time.Date(2014, 1, 10, 0, 0, 0, 0, time.UTC)

// VersionStart is the first weekly version sample: February 21st, 2014.
var VersionStart = time.Date(2014, 2, 21, 0, 0, 0, 0, time.UTC)

// attackRatePoints is the piecewise-linear real-world NTP-reflection attack
// rate (attacks/hour) calibrated to Figure 7: onset late December, daily
// peak ~4000/hr on February 11–12 (the CloudFlare/OVH event), then decline.
var attackRatePoints = []struct {
	date time.Time
	rate float64
}{
	{time.Date(2013, 9, 1, 0, 0, 0, 0, time.UTC), 0},
	{time.Date(2013, 11, 1, 0, 0, 0, 0, time.UTC), 1},
	{time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC), 5},
	{time.Date(2013, 12, 20, 0, 0, 0, 0, time.UTC), 60},
	{time.Date(2014, 1, 10, 0, 0, 0, 0, time.UTC), 150},
	{time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC), 600},
	{time.Date(2014, 2, 11, 0, 0, 0, 0, time.UTC), 4000},
	{time.Date(2014, 2, 13, 0, 0, 0, 0, time.UTC), 2500},
	{time.Date(2014, 2, 20, 0, 0, 0, 0, time.UTC), 1000},
	{time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC), 650},
	{time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC), 380},
	{time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC), 280},
}

// AttackRateAt interpolates the real-world attacks/hour at t.
func AttackRateAt(t time.Time) float64 {
	pts := attackRatePoints
	if t.Before(pts[0].date) {
		return pts[0].rate
	}
	for i := 1; i < len(pts); i++ {
		if t.Before(pts[i].date) {
			span := pts[i].date.Sub(pts[i-1].date)
			frac := float64(t.Sub(pts[i-1].date)) / float64(span)
			return pts[i-1].rate + frac*(pts[i].rate-pts[i-1].rate)
		}
	}
	return pts[len(pts)-1].rate
}

// ntpAdoption is the Figure 2 calibration: the fraction of attacks in each
// size class using the NTP vector, per month (Nov 2013 .. Apr 2014).
var ntpAdoption = map[time.Month][3]float64{
	// {Small, Medium, Large}
	time.November: {0.001, 0.001, 0.002},
	time.December: {0.01, 0.02, 0.03},
	time.January:  {0.06, 0.22, 0.44},
	time.February: {0.12, 0.63, 0.70},
	time.March:    {0.13, 0.51, 0.64},
	time.April:    {0.10, 0.18, 0.41},
}

// sizeClassWeights is the global attack size mix: ~90% small, ~10% medium,
// ~1% large (§2.2).
var sizeClassWeights = []float64{0.895, 0.095, 0.01}

// otherVectors label non-NTP attacks for Figure 2's denominators.
var otherVectors = []string{"syn", "dns", "icmp", "udp"}

// runTelemetryMonth records the month's labeled attack census (Figure 2's
// bookkeeping; these records never touch the fabric).
func (w *World) runTelemetryMonth(month time.Time) {
	src := w.Src.Fork("telemetry-" + month.Format("2006-01"))
	n := w.Cfg.MonthlyAttacks / w.Cfg.Scale
	adopt, ok := ntpAdoption[month.Month()]
	if !ok {
		adopt = [3]float64{}
	}
	daysIn := month.AddDate(0, 1, 0).Sub(month).Hours() / 24
	for i := 0; i < n; i++ {
		cls := telemetry.SizeClass(src.Weighted(sizeClassWeights))
		var gbps float64
		switch cls {
		case telemetry.Small:
			gbps = 0.05 + src.Float64()*1.9
		case telemetry.Medium:
			gbps = 2 + src.Float64()*18
		default:
			gbps = 20 + src.Pareto(1, 1.5)*10
			if gbps > 400 {
				gbps = 400
			}
		}
		vector := otherVectors[src.IntN(len(otherVectors))]
		if src.Bool(adopt[cls]) {
			vector = "ntp"
		}
		start := month.Add(time.Duration(src.Float64() * daysIn * 24 * float64(time.Hour)))
		w.Collector.RecordAttack(telemetry.Attack{Start: start, PeakGbps: gbps, Vector: vector})
	}
}

// addDailyBaselines feeds Figure 1: DNS hovers at ~0.15% of traffic; NTP is
// its ~0.001% benign sync load plus the attack volume, which tracks the
// Figure 7 intensity curve and tops out at ~1% of all Internet traffic on
// the peak day. The attack contribution is analytic — per-sampled-campaign
// accounting would put 40 000× re-inflation variance on single draws.
func (w *World) addDailyBaselines(day time.Time) {
	total := w.Collector.TotalDailyBps / 8 * 86400
	w.Collector.AddAggregate(day, telemetry.ProtoDNS, total*0.0015)
	attackFraction := AttackRateAt(day.Add(12*time.Hour)) / 4000 * 0.0099
	w.Collector.AddAggregate(day, telemetry.ProtoNTP, total*(0.00001+attackFraction))
}

// pickVictim draws a victim; the end-host share grows over the window
// (Table 1: 31% in January to ~50% by March).
func (w *World) pickVictim(t time.Time) victimSpec {
	pEnd := 0.31
	if weeks := t.Sub(ONPStart).Hours() / 168; weeks > 0 {
		pEnd += 0.02 * weeks
		if pEnd > 0.52 {
			pEnd = 0.52
		}
	}
	wantEnd := w.Src.Bool(pEnd)
	// Zipf rank concentration over the pool: repeat victims are common and
	// the head of the pool (OVH) absorbs a disproportionate share.
	for tries := 0; tries < 8; tries++ {
		idx := int(w.victimZipf.Uint64())
		if idx >= len(w.victimPool) {
			continue
		}
		v := w.victimPool[idx]
		if v.endHost == wantEnd {
			return v
		}
	}
	return w.victimPool[int(w.victimZipf.Uint64())%len(w.victimPool)]
}

// sampleAmps draws k distinct amplifiers from the attacker's current list,
// rank-skewed: booters reuse the same harvested "favourite" amplifiers far
// more than they rotate through the pool. This is what keeps the median
// monitor table small (most of the 1.4M pool is never abused) while the
// head amplifiers accumulate fat victim tables, and what concentrates the
// Figure 5 amplifier-AS CDF.
func (w *World) sampleAmps(list []netaddr.Addr, k int) []netaddr.Addr {
	if k >= len(list) {
		out := make([]netaddr.Addr, len(list))
		copy(out, list)
		return out
	}
	z := w.Src.Zipf(1.3, uint64(len(list)))
	out := make([]netaddr.Addr, 0, k)
	seen := make(map[int]bool, k)
	for tries := 0; len(out) < k && tries < 40*k; tries++ {
		i := int(z.Uint64())
		if i < len(list) && !seen[i] {
			seen[i] = true
			out = append(out, list[i])
		}
	}
	for len(out) < k { // fill any remainder uniformly
		i := w.Src.IntN(len(list))
		if !seen[i] {
			seen[i] = true
			out = append(out, list[i])
		}
	}
	return out
}

// refreshFavorites rebuilds the booters' shared amplifier working set from
// the current pool: a bounded, head-skewed slice of it.
func (w *World) refreshFavorites() {
	pool := w.AmplifierList()
	if len(pool) == 0 {
		w.favorites = nil
		return
	}
	size := len(pool) / 12
	if size < 30 {
		size = 30
	}
	w.favorites = w.sampleAmps(pool, size)
}

// generateFabricAttacksForDay schedules the day's reflection campaigns on
// the fabric. The count follows the Figure 7 rate curve divided by Scale
// (and the extra fabric divisor); volumes are re-inflated when reported.
func (w *World) generateFabricAttacksForDay(day time.Time, ampList []netaddr.Addr) {
	if len(ampList) == 0 {
		return
	}
	div := w.Cfg.Scale * w.Cfg.FabricAttackDivisor
	expected := AttackRateAt(day) * 24 / float64(div)
	n := w.Src.Poisson(expected)
	for i := 0; i < n; i++ {
		cls := w.Src.Weighted(sizeClassWeights)
		victim := w.pickVictim(day)
		var amps, primeSrc int
		var rate, durMedian, durSigma float64
		switch cls {
		case 0: // small
			amps, rate = 2+w.Src.IntN(6), 2+w.Src.Float64()*12
			durMedian, durSigma = 30, 2.2
		case 1: // medium
			amps, rate = 8+w.Src.IntN(30), 60+w.Src.Float64()*350
			durMedian, durSigma = 60, 2.0
			if w.Src.Bool(0.25) {
				primeSrc = 40
			}
		default: // large
			amps, rate = 30+w.Src.IntN(120), 500+w.Src.Float64()*2000
			durMedian, durSigma = 600, 1.5
			if w.Src.Bool(0.4) {
				primeSrc = 40
			}
		}
		dur := time.Duration(w.Src.LogNormal(math.Log(durMedian), durSigma) * float64(time.Second))
		if dur < 10*time.Second {
			dur = 10 * time.Second
		}
		if dur > 12*time.Hour {
			dur = 12 * time.Hour
		}
		hour := attack.SampleStartHour(w.Src)
		start := day.Add(time.Duration(hour)*time.Hour +
			time.Duration(w.Src.IntN(3600))*time.Second)
		interval := 30 * time.Second
		if batches := int(dur / interval); batches > 60 {
			interval = dur / 60
		}
		c := attack.Campaign{
			Victim: victim.addr, Port: attack.SamplePort(w.Src),
			Start: start, Duration: dur, TriggerRate: rate,
			Amplifiers:   w.sampleAmps(ampList, amps),
			PrimeSources: primeSrc,
			Interval:     interval,
		}
		// Campaign shaping (pulse-wave / carpet-bombing / multi-vector)
		// consumes the campaign whole — including the sibling expansion
		// below, which models sustained-flood behaviour. With every share
		// zero this is a no-op that draws nothing.
		if w.shapeCampaign(c) {
			continue
		}
		w.Engine.Launch(c)
		// "A given attack campaign may involve several IPs in a network
		// block" (§4.3.4): with some probability the same campaign also
		// hits the victim's immediate neighbours, which is what lifts the
		// Table 1 victims-per-routed-block average to 3–5. Offsets are
		// fixed so repeat attacks on a victim revisit the same siblings.
		if w.Src.Bool(0.45) {
			sibs := 1 + w.Src.IntN(3)
			for sb := 1; sb <= sibs; sb++ {
				sc := c
				sc.Victim = victim.addr + netaddr.Addr(sb)
				sc.Start = c.Start.Add(time.Duration(w.Src.IntN(600)) * time.Second)
				w.Engine.Launch(sc)
			}
		}
	}
}

// scheduleScanning sets up the day's reconnaissance: the onset of
// large-scale malicious scanning in mid-December (Figure 9), persistent
// research survey scanning, and the ephemeral bot scanners that make up
// the unique-source ramp.
func (w *World) scheduleScanning(day time.Time, ampList []netaddr.Addr) {
	onset := time.Date(2013, 12, 15, 0, 0, 0, 0, time.UTC)
	// Research scanners: before the NTP story broke, only the occasional
	// academic survey touched port 123 (e.g. the Rossow scans of late
	// 2013); the ONP begins weekly sweeps in January and other research
	// projects pile in after — which is why "roughly half of the increase
	// in scanning can be attributed to research efforts" (§5.1).
	for i, addr := range w.researchIPs {
		period := 28 // days between sweeps
		activeFrom := time.Date(2013, 12, 20, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i*4)
		switch i {
		case 0:
			period = 7 // the ONP scans weekly
			activeFrom = time.Date(2014, 1, 6, 0, 0, 0, 0, time.UTC)
		case 1:
			activeFrom = time.Date(2013, 10, 5, 0, 0, 0, 0, time.UTC)
		}
		dayN := int(day.Sub(vtime.Epoch).Hours() / 24)
		if day.After(activeFrom) && dayN%period == i%period {
			w.scheduleSweep(day, addr, ampList, true)
		}
	}
	if day.Before(onset) {
		return
	}
	// Malicious operators: persistent scanner IPs sweeping for amplifiers.
	daysSince := int(day.Sub(onset).Hours() / 24)
	active := daysSince / 3
	if active > len(w.maliciousIPs) {
		active = len(w.maliciousIPs)
	}
	for i := 0; i < active; i++ {
		if (int(day.Sub(vtime.Epoch).Hours()/24)+i)%7 == 0 { // each sweeps weekly
			w.scheduleSweep(day, w.maliciousIPs[i], ampList, false)
		}
	}
	// Ephemeral bot scanners: the unique-source ramp of Figure 9. Counts
	// are scaled; each sends a small Rep-weighted dark probe burst.
	ramp := float64(daysSince) / 60
	if ramp > 1 {
		ramp = 1
	}
	perDay := int(ramp * 8000 / float64(w.Cfg.Scale) * 10)
	for i := 0; i < perDay; i++ {
		src := w.randomSpooferAddr()
		at := day.Add(time.Duration(w.Src.IntN(86400)) * time.Second)
		w.Sched.At(at, func(now time.Time) {
			w.sendDarkProbes(src, 2, 10000)
		})
	}
}

// scheduleSweep models one Internet-wide scan from addr: probes to every
// live NTP server (sampled for non-research scanners), probes into the
// darknet's covered space, and probes to the §7 local-site amplifiers so
// the regional views record the scanner.
func (w *World) scheduleSweep(day time.Time, addr netaddr.Addr, ampList []netaddr.Addr, research bool) {
	start := day.Add(time.Duration(w.Src.IntN(12)) * time.Hour)
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	w.Sched.At(start, func(now time.Time) {
		// Darknet footprint: a research sweep covers all of IPv4, touching
		// every covered dark address once (40 Rep-weighted datagrams);
		// malicious list-building scans cover targeted slices (~10%).
		darkTouches := uint64(w.Telescope.Prefix.NumAddrs()) * 3 / 4
		if !research {
			darkTouches /= 5
		}
		w.sendDarkProbes(addr, 40, darkTouches/40)
		// Local-site visibility: research sweeps always reach the sites;
		// malicious ones do with probability 0.3 (little cross-site
		// synchronization — Figure 16).
		sites := [][]netaddr.Addr{w.MeritAmps, w.CSUAmps, w.FRGPAmps}
		for _, site := range sites {
			if research || w.Src.Bool(0.3) {
				// Research sweeps cover whole sites; malicious scanners are
				// seen at a handful of site hosts per pass.
				targets := site
				if !research && len(site) > 8 {
					targets = w.sampleAmps(site, 8)
				}
				for _, amp := range targets {
					w.Net.SendUDP(addr, 40000+uint16(w.Src.IntN(20000)), amp, ntp.Port,
						64, probe)
				}
			}
		}
		// Honeypot sensors answer every probe, so every pass — research
		// census or malicious list-building — covers the whole fleet; that
		// responsiveness is how the sensors end up in booter reflector
		// lists. Port draws come from the honeypot stream to keep the world
		// stream untouched.
		if w.Honeypots != nil {
			for _, s := range w.Honeypots.Addrs() {
				w.Net.SendUDP(addr, 40000+uint16(w.hpSrc.IntN(20000)), s, ntp.Port,
					64, probe)
			}
		}
		// A small sample of the global pool (full sweeps at scale are the
		// ONP survey's job; attackers' list-building is modeled as
		// snapshots). The sample is tiny because scanner counts are near
		// real scale while the pool is divided by Scale — per-amplifier
		// scanner-entry density must stay realistic.
		k := 3
		if k > len(ampList) {
			k = len(ampList)
		}
		for _, amp := range w.sampleAmps(ampList, k) {
			w.Net.SendUDP(addr, 40000+uint16(w.Src.IntN(20000)), amp, ntp.Port, 64, probe)
		}
	})
}

// sendDarkProbes emits n Rep-weighted probes into covered dark space.
func (w *World) sendDarkProbes(src netaddr.Addr, n int, repEach uint64) {
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	for i := 0; i < n; i++ {
		dst := w.Telescope.Prefix.Nth(w.Src.Uint64N(w.Telescope.Prefix.NumAddrs()))
		dg := newProbeDatagram(src, dst, probe)
		dg.Rep = int64(repEach)
		w.Net.SendFrom(src, dg)
	}
}

func (w *World) randomSpooferAddr() netaddr.Addr {
	if len(w.botAddrs) == 0 {
		return netaddr.Addr(w.Src.Uint32())
	}
	base := w.botAddrs[w.Src.IntN(len(w.botAddrs))]
	return base ^ netaddr.Addr(w.Src.IntN(4096))
}

// newProbeDatagram builds a monlist probe datagram with the Linux default
// TTL (scanners are overwhelmingly Linux boxes — §7.2).
func newProbeDatagram(src, dst netaddr.Addr, payload []byte) *packet.Datagram {
	dg := packet.NewDatagram(src, 40000, dst, ntp.Port, payload)
	dg.IP.TTL = netsim.TTLLinux
	return dg
}
