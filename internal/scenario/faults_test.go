package scenario

import (
	"testing"
	"time"

	"ntpddos/internal/detect"
)

// TestFaultConfigGates pins the inertness predicates the builder relies on.
func TestFaultConfigGates(t *testing.T) {
	var zero FaultConfig
	if zero.fabricEnabled() || zero.Enabled() {
		t.Fatal("zero FaultConfig must be inert")
	}
	if (FaultConfig{FlowSampleN: 1}).Enabled() {
		t.Fatal("1-in-1 sampling is a perfect vantage, not a fault")
	}
	for _, f := range []FaultConfig{
		{Loss: 0.1}, {Dup: 0.1}, {Reorder: 0.1}, {FlapRate: 0.1},
	} {
		if !f.fabricEnabled() {
			t.Fatalf("%+v should enable the fabric stage", f)
		}
	}
	for _, f := range []FaultConfig{
		{FlowSampleN: 4}, {CollectorOutage: 0.2}, {SensorBlackout: 0.2},
	} {
		if f.fabricEnabled() {
			t.Fatalf("%+v must not touch the fabric", f)
		}
		if !f.Enabled() {
			t.Fatalf("%+v should count as enabled", f)
		}
	}
}

// TestFaultPlaneEndToEnd runs a short window with every fault surface armed
// and checks each one left its fingerprint: fabric loss/dup/flap accounting,
// honeypot blackout drops, and detector alarms degraded below full
// confidence — while the run itself stays deterministic.
func TestFaultPlaneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-plane run skipped in -short mode")
	}
	cfg := TestConfig()
	cfg.End = time.Date(2014, 1, 20, 0, 0, 0, 0, time.UTC)
	dcfg := detect.DefaultConfig()
	cfg.Detector = &dcfg
	cfg.Faults = FaultConfig{
		Loss: 0.08, Dup: 0.05, Reorder: 0.05, FlapRate: 0.05,
		FlowSampleN: 4, CollectorOutage: 0.25, SensorBlackout: 0.25,
	}
	res := Run(cfg)

	st := res.World.Net.Stats()
	if st.DroppedLoss == 0 || st.Duplicated == 0 || st.DroppedFlap == 0 {
		t.Fatalf("fabric faults left no trace: %+v", st)
	}
	if st.Reordered == 0 {
		t.Fatalf("no batches reordered: %+v", st)
	}
	if res.World.Honeypots.BlackoutDropped() == 0 {
		t.Fatal("sensor blackouts dropped nothing")
	}
	alarms := res.World.Detect.Alarms()
	if len(alarms) == 0 {
		t.Fatal("degraded detector raised no alarms over the attack wave")
	}
	for _, a := range alarms {
		// 1-in-4 sampling caps confidence at 0.25 before the outage factor.
		if a.Confidence <= 0 || a.Confidence > 0.25 {
			t.Fatalf("alarm confidence %.3f under SampleN=4, want (0, 0.25]", a.Confidence)
		}
	}
	// Same faulty config, same world: the impairment stream is seeded.
	twin := Run(cfg)
	if twin.World.Net.Stats() != st {
		t.Fatalf("faulty run is nondeterministic:\n%+v\n%+v", twin.World.Net.Stats(), st)
	}
}
