package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/core"
	"ntpddos/internal/detect"
	"ntpddos/internal/geo"
	"ntpddos/internal/honeypot"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/scan"
	"ntpddos/internal/timeattack"
	"ntpddos/internal/timesync"
)

// Results carries everything the experiment harness consumes.
type Results struct {
	Cfg   Config
	World *World

	// MonlistAnalyses are the 15 weekly ONP sample analyses (§3, §4).
	MonlistAnalyses []*core.SampleAnalysis
	// MonlistPools are the per-sample responder sets.
	MonlistPools []netaddr.Set
	// VersionAnalyses are the 9 weekly version sample analyses (§3.3).
	VersionAnalyses []*core.SampleAnalysis
	// VersionPools are the per-sample version responder counts.
	VersionPools []int
	// VersionCensus is the parsed system/stratum census (Table 2, §3.3),
	// from the mid-window sample.
	VersionCensus *core.VersionCensus
	// DNSPoolSizes is the weekly open-resolver pool size (scaled), starting
	// at the ONP publicity date — Figure 10's third line.
	DNSPoolSizes []int
	// SiteAmpCounts records the per-sample amplifier counts inside the
	// Merit and FRGP/CSU networks (Figure 3's subset lines). Site hosts are
	// excluded from the global analyses: their populations are absolute
	// (50/9/48, per §7) while the global pool is scaled, so including them
	// would distort the scaled statistics by orders of magnitude.
	SiteAmpCounts []SiteCounts
	// Registries are the analysis joins.
	Registries core.Registries
	// Honeypot is the sensor fleet's summary: detected events validated
	// against the launched-campaign ground truth, the sensor-count
	// convergence curve, and the cross-vantage comparison (nil when the
	// fleet is disabled).
	Honeypot *honeypot.Summary
	// Detection is the streaming plane's scenario-end snapshot: alarms,
	// heavy-hitter rankings, and scanner-cardinality estimate (nil when
	// Config.Detector is unset).
	Detection *detect.Summary
	// TimeSync is the disciplined-client fleet's end-of-run discipline
	// summary (nil when Config.TimeSync is disabled); TimeAttack the
	// time-integrity plane's forgery accounting; TimeIntegrity the
	// drift-aware lane's verdicts, and TimeIntegrityEval its score against
	// the attack plane's ground truth.
	TimeSync          *timesync.Summary
	TimeAttack        *timeattack.Summary
	TimeIntegrity     *detect.TimeIntegritySummary
	TimeIntegrityEval *detect.Eval
}

// SiteCounts is one sample's local amplifier census.
type SiteCounts struct {
	Merit int
	FRGP  int
}

// Scale returns the population re-inflation factor.
func (r *Results) Scale() int { return r.Cfg.Scale }

// Run builds the world and drives it across the full window.
func Run(cfg Config) *Results {
	return Build(cfg).Run()
}

// allServerAddrs returns every registered daemon address, sorted — the
// survey target list ("the entire IPv4 address space", minus the hosts that
// could never respond and therefore never produce data).
func (w *World) allServerAddrs() []netaddr.Addr {
	out := make([]netaddr.Addr, 0, len(w.Servers))
	for a := range w.Servers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// arrivalsPerWeek is the weekly new-amplifier arrival count (real scale):
// the churn that makes 2.17M cumulative uniques out of a 1.4M peak pool.
const arrivalsPerWeek = (2166097 - 1405186) / 14

// Run executes the timeline.
func (w *World) Run() *Results {
	cfg := w.Cfg
	res := &Results{Cfg: cfg, World: w}
	res.Registries = core.Registries{
		Routes: w.DB.Table,
		PBL:    w.PBL,
		ContinentOf: func(a netaddr.Addr) (geo.Continent, bool) {
			as := w.DB.OwnerOf(a)
			if as == nil {
				return 0, false
			}
			return as.Continent, true
		},
	}

	monProber := scan.NewProber(w.ONPAddr, 57915)
	monProber.SetMetrics(w.scanM, "monlist")
	w.Net.Register(monProber.Addr, monProber)
	monSurvey := &scan.Survey{
		Prober: monProber, Network: w.Net, Kind: "monlist", DstPort: ntp.Port,
		Payload:  ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		Duration: 6 * time.Hour,
	}
	verAddr := w.ONPAddr + 1
	verProber := scan.NewProber(verAddr, 41001)
	verProber.SetMetrics(w.scanM, "version")
	w.Net.Register(verAddr, verProber)
	w.Telescope.RegisterBenign(verAddr)
	verSurvey := &scan.Survey{
		Prober: verProber, Network: w.Net, Kind: "version", DstPort: ntp.Port,
		Payload: ntp.NewReadVarRequest(7), Duration: 6 * time.Hour,
	}

	monDates := make(map[time.Time]int)
	for i := 0; i < len(table1Targets); i++ {
		monDates[ONPStart.AddDate(0, 0, 7*i)] = i
	}
	verDates := make(map[time.Time]int)
	for i := 0; i < 9; i++ {
		verDates[VersionStart.AddDate(0, 0, 7*i)] = i
	}

	w.scheduleSiteEvents()

	if w.TimeSync != nil {
		w.TimeSync.Start(w.Net, cfg.Start, cfg.End)
		if w.TimeAttack != nil {
			w.TimeAttack.Start(w.Net, cfg.Start, cfg.End)
		}
	}

	// Regional baseline traffic (Figure 14's floors): Merit carries
	// 15–25 Gbps overall, dominated by web traffic; NTP is negligible on a
	// normal day. CSU/FRGP floors are smaller.
	for name, gbps := range map[string]float64{"Merit": 20, "CSU": 4, "FRGP": 8} {
		v := w.Views[name]
		perHour := gbps * 1e9 / 8 * 3600
		v.AddBaseline("http", cfg.Start, cfg.End, perHour*0.55)
		v.AddBaseline("https", cfg.Start, cfg.End, perHour*0.25)
		v.AddBaseline("other", cfg.Start, cfg.End, perHour*0.18)
		v.AddBaseline("dns", cfg.Start, cfg.End, perHour*0.02)
	}

	for day := cfg.Start; day.Before(cfg.End); day = day.AddDate(0, 0, 1) {
		if day.Day() == 1 {
			w.runTelemetryMonth(day)
		}
		w.addDailyBaselines(day)
		ampList := w.AmplifierList()
		if day.Weekday() == time.Monday || w.favorites == nil {
			w.refreshFavorites()
		}
		w.generateFabricAttacksForDay(day, w.favorites)
		w.scheduleScanning(day, ampList)

		if idx, ok := monDates[day]; ok {
			w.Sched.RunUntil(day.Add(2 * time.Hour))
			w.refreshClientTables(w.Clock.Now())
			sample := monSurvey.RunSample(day, w.allServerAddrs())
			analysis := core.AnalyzeSample(sample, monProber.Addr)
			res.SiteAmpCounts = append(res.SiteAmpCounts, w.countSiteAmps(analysis))
			w.filterSiteHosts(analysis)
			res.MonlistAnalyses = append(res.MonlistAnalyses, analysis)
			res.MonlistPools = append(res.MonlistPools, analysis.AmplifierSet())
			if cfg.PCAPDir != "" {
				w.writeSamplePCAP(sample, monProber)
			}
			sample.Responses = nil // free capture memory
			monSurvey.Samples = nil
			res.DNSPoolSizes = append(res.DNSPoolSizes,
				int(float64(cfg.scaled(cfg.OpenDNSResolvers))*(1-0.0015*float64(idx))))
			w.applyWeeklyRemediation(idx)
		}
		if _, ok := verDates[day]; ok {
			w.Sched.RunUntil(day.Add(10 * time.Hour))
			sample := verSurvey.RunSample(day, w.allServerAddrs())
			analysis := core.AnalyzeSample(sample, verProber.Addr)
			res.VersionAnalyses = append(res.VersionAnalyses, analysis)
			res.VersionPools = append(res.VersionPools, sample.NumResponders())
			if res.VersionCensus == nil {
				res.VersionCensus = core.AnalyzeVersionSample(sample)
			}
			sample.Responses = nil
			verSurvey.Samples = nil
			w.applyMode6Decay()
		}

		w.Sched.RunUntil(day.Add(24 * time.Hour))
	}

	if w.Honeypots != nil {
		siteVictims := make(map[string]netaddr.Set, len(w.Views))
		for name, v := range w.Views {
			siteVictims[name] = v.VictimSet()
		}
		res.Honeypot = honeypot.Summarize(w.Honeypots, w.Launched,
			w.Collector.MonthlyVectorCounts("ntp"), siteVictims, w.Clock.Now())
	}
	if w.Detect != nil {
		res.Detection = w.Detect.Summarize(w.Clock.Now())
	}
	if w.TimeSync != nil {
		res.TimeSync = w.TimeSync.Summarize(w.Clock.Now())
		if w.TimeAttack != nil {
			res.TimeAttack = w.TimeAttack.Summarize()
		}
		if w.TimeMon != nil {
			res.TimeIntegrity = w.TimeMon.Summarize()
			if w.TimeAttack != nil {
				ev := res.TimeIntegrity.Eval(w.TimeAttack.Attacked())
				res.TimeIntegrityEval = &ev
			}
		}
	}
	return res
}

// writeSamplePCAP persists one survey sample as a capture file.
func (w *World) writeSamplePCAP(sample *scan.Sample, prober *scan.Prober) {
	name := filepath.Join(w.Cfg.PCAPDir,
		fmt.Sprintf("%s-%s.pcap", sample.Kind, sample.Date.Format("2006-01-02")))
	f, err := os.Create(name)
	if err != nil {
		return // captures are a convenience; the run proceeds without them
	}
	defer f.Close()
	scan.WritePCAP(f, sample, prober.Addr, prober.SrcPort, 1)
}

// countSiteAmps censuses the sample's responders inside the Merit and
// FRGP/CSU networks.
func (w *World) countSiteAmps(a *core.SampleAnalysis) SiteCounts {
	merit := w.Views["Merit"]
	frgp := w.Views["FRGP"]
	var c SiteCounts
	for addr := range a.Amps {
		if merit.Contains(addr) {
			c.Merit++
		}
		if frgp.Contains(addr) {
			c.FRGP++
		}
	}
	return c
}

// filterSiteHosts removes the unscaled §7 site populations from a global
// sample analysis (see Results.SiteAmpCounts for why).
func (w *World) filterSiteHosts(a *core.SampleAnalysis) {
	inSite := func(addr netaddr.Addr) bool {
		return w.Views["Merit"].Contains(addr) || w.Views["FRGP"].Contains(addr)
	}
	for addr := range a.Amps {
		if inSite(addr) {
			delete(a.Amps, addr)
		}
	}
	kept := a.Victims[:0]
	for _, v := range a.Victims {
		if !inSite(v.Amplifier) {
			kept = append(kept, v)
		}
	}
	a.Victims = kept
}

// refreshClientTables tops up each amplifier's monitor list with its
// steady-state honest-client population, timestamped within the past two
// days — the background that gives tables their median-6/mean-70 occupancy
// and the §4.2 ~44-hour observation window. Refreshing before each sample
// also churns stale victim entries out of small tables, as real traffic
// does.
func (w *World) refreshClientTables(now time.Time) {
	req := 1024
	cutoff := now.Add(-48 * time.Hour)
	for _, a := range w.allServerAddrs() {
		s := w.Servers[a]
		if !s.srv.IsAmplifier() {
			continue
		}
		s.srv.ExpireOlderThan(cutoff)
		for i := 0; i < s.clientTableSize; i++ {
			// Client addresses are stable per (server, slot) so the same
			// client re-appears across weeks, like real NTP clients do.
			client := netaddr.Addr(uint32(a)*2654435761 + uint32(i)*40503 + 0x0537)
			age := time.Duration(w.Src.IntN(44*3600)) * time.Second
			mode := uint8(ntp.ModeClient)
			if i%7 == 3 {
				mode = ntp.ModeServer
			}
			s.srv.Record(client, uint16(req+i%60000), mode, 4, 1+int64(w.Src.IntN(30)), now.Add(-age))
		}
	}
}

// applyWeeklyRemediation moves the global pool toward the next Table 1
// target: new amplifiers appear (DHCP churn and fresh deployments), and
// patch selection prefers professionally-managed infrastructure batches —
// which is what doubles the end-host share over the window (§6.1).
func (w *World) applyWeeklyRemediation(weekIdx int) {
	if weekIdx+1 >= len(table1Targets) {
		return
	}
	if w.Cfg.NoRemediation {
		w.applyDHCPChurn()
		w.addArrivals(arrivalsPerWeek / w.Cfg.Scale)
		return
	}
	w.applyDHCPChurn()
	arrivals := arrivalsPerWeek / w.Cfg.Scale
	w.addArrivals(arrivals)

	target := int(float64(table1Targets[weekIdx+1]) / (1 - oldImplFraction) / float64(w.Cfg.Scale))
	global := 0
	for _, s := range w.amplifiers {
		if s.site == "" {
			global++
		}
	}
	toPatch := global - target
	if hazard := w.Cfg.RemediationHazard; hazard > 0 && hazard != 1 {
		toPatch = int(float64(toPatch) * hazard)
		if toPatch > global {
			toPatch = global
		}
	}
	if toPatch <= 0 {
		return
	}

	// Group live global amplifiers by batch.
	batchAmps := make(map[int][]*server)
	var batchIDs []int
	for _, s := range w.amplifiers {
		if s.site != "" {
			continue
		}
		if _, seen := batchAmps[s.batch]; !seen {
			batchIDs = append(batchIDs, s.batch)
		}
		batchAmps[s.batch] = append(batchAmps[s.batch], s)
	}
	sort.Ints(batchIDs)
	weights := make([]float64, len(batchIDs))
	for i, id := range batchIDs {
		group := batchAmps[id]
		f := 1.5 // professionally managed
		if group[0].endHost {
			f = 1.0 // workstations linger (§6.1)
		}
		weights[i] = float64(len(group)) * f * geo.RemediationSpeed(group[0].as.Continent)
	}
	patched := 0
	for patched < toPatch {
		i := w.Src.Weighted(weights)
		if weights[i] == 0 {
			break
		}
		for _, s := range batchAmps[batchIDs[i]] {
			if w.MegaAddrs.Has(s.srv.Addr()) {
				// The worst-managed boxes are, unsurprisingly, the last to
				// be fixed: megas kept misbehaving into June (§3.4).
				continue
			}
			w.patch(s)
			patched++
		}
		weights[i] = 0
		if allZero(weights) {
			break
		}
	}
}

func allZero(w []float64) bool {
	for _, v := range w {
		if v != 0 {
			return false
		}
	}
	return true
}

// patch remediates one daemon (monlist off; mode 6 usually stays).
func (w *World) patch(s *server) {
	s.srv.Patch()
	delete(w.amplifiers, s.srv.Addr())
	w.ampList = nil
}

// applyDHCPChurn moves a quarter of the residential amplifiers to fresh
// addresses each week: the pool size is unchanged but cumulative unique IPs
// grow, which is why half of all amplifier IPs the paper collected were
// seen in only one weekly sample.
func (w *World) applyDHCPChurn() {
	var endHosts []*server
	for _, a := range w.allServerAddrs() {
		s := w.Servers[a]
		if s.endHost && s.site == "" && s.srv.IsAmplifier() {
			endHosts = append(endHosts, s)
		}
	}
	for _, s := range endHosts {
		if !w.Src.Bool(0.35) || w.MegaAddrs.Has(s.srv.Addr()) {
			continue
		}
		// The daemon re-appears at a nearby address in the same pool.
		old := s.srv.Addr()
		w.patch(s)
		w.Net.Unregister(old)
		// The old binding's monitor table is frozen forever (no amplifier, no
		// expiry pass will touch it again); release it from the MRU gauge.
		s.srv.DetachMRU()
		block := old.Slash24()
		fresh := block.Nth(uint64(w.Src.IntN(256)))
		if _, taken := w.Servers[fresh]; taken {
			continue
		}
		if w.Net.IsRegistered(fresh) {
			continue // never clobber a prober or honeypot sensor binding
		}
		cfg := s.srv.Config()
		cfg.Addr = fresh
		cfg.MonlistEnabled = true
		ns := &server{srv: ntpd.New(cfg), as: s.as, batch: s.batch, endHost: true}
		w.Servers[fresh] = ns
		w.Net.Register(fresh, ns.srv)
		w.registerAmplifier(ns)
	}
}

// addArrivals creates new amplifiers: mostly end hosts (DHCP churn moving
// residential daemons to fresh addresses) plus some newly-exposed servers.
func (w *World) addArrivals(n int) {
	placed, empty := 0, 0
	for placed < n {
		endHost := w.Src.Bool(0.4)
		as := w.pickVulnerableAS(endHost)
		var size int
		if endHost {
			size = 2 + w.Src.IntN(6)
		} else {
			size = 3 + w.Src.IntN(10)
		}
		if as == nil {
			return
		}
		if size > n-placed {
			size = n - placed
		}
		batch := w.placeBatch(as, size, func(addr netaddr.Addr) *ntpd.Server {
			return ntpd.New(w.newAmplifierConfig(addr, ntpd.RoleAmplifier))
		})
		if len(batch) == 0 {
			empty++
			if empty > 50 {
				return
			}
			continue
		}
		for _, s := range batch {
			w.registerAmplifier(s)
		}
		placed += len(batch)
	}
}

// applyMode6Decay shrinks the version pool by its weekly sliver — it only
// fell 19% over the nine measured weeks (§3.3).
func (w *World) applyMode6Decay() {
	const weekly = 0.19 / 9
	var mode6 []*server
	for _, a := range w.allServerAddrs() {
		s := w.Servers[a]
		if s.srv.Config().Mode6Enabled {
			mode6 = append(mode6, s)
		}
	}
	n := int(float64(len(mode6)) * weekly)
	for i := 0; i < n && len(mode6) > 0; i++ {
		j := w.Src.IntN(len(mode6))
		mode6[j].srv.PatchMode6()
		mode6[j] = mode6[len(mode6)-1]
		mode6 = mode6[:len(mode6)-1]
	}
}

// scheduleSiteEvents wires the §7 ground truth: the Merit onset in the
// third week of December, the CSU campaigns ending with its January 24th
// patch day, the February 10th OVH validation attacks (with Merit and FRGP
// amplifiers participating), and the 23-minute FRGP ingress spike.
func (w *World) scheduleSiteEvents() {
	ovh := w.DB.ByName("OVH")
	table6Victims := []string{"OCN-JP", "Unicom-CN", "ServerCentral-US",
		"Intergenia-DE", "Voxility-RO", "HostBR", "HostUK"}

	launchPrimed := func(start time.Time, amps []netaddr.Addr, victim netaddr.Addr, hours int, rate float64, prime int) {
		w.Sched.At(start, func(now time.Time) {
			live := amps[:0:0]
			for _, a := range amps {
				if _, ok := w.amplifiers[a]; ok {
					live = append(live, a)
				}
			}
			if len(live) == 0 {
				return
			}
			w.Engine.Launch(attack.Campaign{
				Victim: victim, Port: attack.SamplePort(w.Src),
				Start: now.Add(time.Minute), Duration: time.Duration(hours) * time.Hour,
				TriggerRate: rate, Amplifiers: live,
				PrimeSources: prime, Interval: 20 * time.Minute,
			})
		})
	}
	launchSite := func(start time.Time, amps []netaddr.Addr, victim netaddr.Addr, hours int, rate float64) {
		launchPrimed(start, amps, victim, hours, rate, 40)
	}

	// Merit: onset December 18th; long coordinated campaigns through
	// February against the Table 6 victims (114–166 hours, 35+ amplifiers).
	meritStart := time.Date(2013, 12, 18, 0, 0, 0, 0, time.UTC)
	for i, name := range table6Victims {
		victim := w.DB.ByName(name).RandomAddr(w.Src)
		start := meritStart.AddDate(0, 0, 7+i*9)
		nAmps := 35 + w.Src.IntN(15)
		if nAmps > len(w.MeritAmps) {
			nAmps = len(w.MeritAmps)
		}
		launchSite(start, w.MeritAmps[:nAmps], victim, 110+w.Src.IntN(60), 15+w.Src.Float64()*35)
	}
	// Merit amplifiers also join the OVH attacks around February 10th.
	launchSite(time.Date(2014, 2, 10, 6, 0, 0, 0, time.UTC), w.MeritAmps,
		ovh.RandomAddr(w.Src), 48, 60)

	// CSU: all nine amplifiers coordinated, mid-January window, including
	// OVH targets; the servers are secured on January 24th.
	csuVictims := []string{"OVH", "Voxility-RO", "HostBR", "HostUK", "OVH"}
	for i, name := range csuVictims {
		victim := w.DB.ByName(name).RandomAddr(w.Src)
		start := time.Date(2014, 1, 15+i*2, 3, 0, 0, 0, time.UTC)
		launchPrimed(start, w.CSUAmps, victim, 30+w.Src.IntN(110), 10+w.Src.Float64()*25, 150)
	}
	w.Sched.At(time.Date(2014, 1, 24, 12, 0, 0, 0, time.UTC), func(time.Time) {
		for _, a := range w.CSUAmps {
			if s, ok := w.Servers[a]; ok {
				w.patch(s)
			}
		}
	})

	// FRGP: participates in the OVH attacks; remediation is slow and
	// partial ("other networks within FRGP were not nearly as proactive").
	launchSite(time.Date(2014, 2, 10, 8, 0, 0, 0, time.UTC), w.FRGPAmps,
		ovh.RandomAddr(w.Src), 72, 40)
	for i := 0; i < 5; i++ {
		victim := w.DB.ByName(table6Victims[w.Src.IntN(len(table6Victims))]).RandomAddr(w.Src)
		launchSite(time.Date(2014, 2, 14+i*4, 10, 0, 0, 0, time.UTC),
			w.FRGPAmps[:24], victim, 24+w.Src.IntN(72), 10+w.Src.Float64()*30)
	}
	w.Sched.At(time.Date(2014, 3, 10, 0, 0, 0, 0, time.UTC), func(time.Time) {
		for _, a := range w.FRGPAmps[:24] { // half remediated, half linger
			if s, ok := w.Servers[a]; ok && w.amplifiers[a] != nil {
				w.patch(s)
			}
		}
	})

	// Merit ticket-driven remediation: weekly batches from late January,
	// leaving a few holdouts.
	for week := 0; week < 8; week++ {
		start := 6 * week
		end := start + 6
		if end > len(w.MeritAmps)-4 { // keep 4 holdouts
			end = len(w.MeritAmps) - 4
		}
		if start >= end {
			break
		}
		slice := w.MeritAmps[start:end]
		w.Sched.At(time.Date(2014, 1, 20, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 7*week),
			func(time.Time) {
				for _, a := range slice {
					if s, ok := w.Servers[a]; ok && w.amplifiers[a] != nil {
						w.patch(s)
					}
				}
			})
	}

	// The extreme mega amplifiers' billion-scale responses appear only in
	// the samples around late January and early February (Figure 4b's 1e9
	// outliers); their operators take them offline soon after — community
	// pressure on boxes emitting 100GB bursts is swift.
	for i, addr := range w.ExtremeMegaAddrs {
		addr := addr
		w.Sched.At(time.Date(2014, 2, 8+i%7, 0, 0, 0, 0, time.UTC), func(time.Time) {
			if s, ok := w.Servers[addr]; ok && w.amplifiers[addr] != nil {
				w.patch(s)
			}
		})
	}

	// Booter-list abuse sprays: site amplifiers sit in harvested lists and
	// get pointed at a steady stream of ordinary victims — this breadth is
	// what gives the paper's Table 5 amplifiers their thousands of unique
	// victims.
	spray := func(site []netaddr.Addr, from, to time.Time, perDay int) {
		for d := from; d.Before(to); d = d.AddDate(0, 0, 1) {
			d := d
			w.Sched.At(d, func(now time.Time) {
				var live []netaddr.Addr
				for _, a := range site {
					if _, ok := w.amplifiers[a]; ok {
						live = append(live, a)
					}
				}
				if len(live) == 0 {
					return
				}
				for i := 0; i < perDay; i++ {
					// Booter customers point site amplifiers at targets all
					// over the Internet — the breadth behind Table 5's
					// thousands of unique victims per amplifier.
					as := w.DB.ASes[w.Src.IntN(len(w.DB.ASes))]
					start := now.Add(time.Duration(w.Src.IntN(86400)) * time.Second)
					w.Engine.Launch(attack.Campaign{
						Victim: as.RandomAddr(w.Src), Port: attack.SamplePort(w.Src),
						Start: start, Duration: time.Duration(30+w.Src.IntN(240)) * time.Second,
						TriggerRate: 5 + w.Src.Float64()*40,
						Amplifiers:  live,
					})
				}
			})
		}
	}
	spray(w.MeritAmps, time.Date(2014, 1, 5, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 3, 20, 0, 0, 0, 0, time.UTC), 30)
	spray(w.CSUAmps, time.Date(2014, 1, 10, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 1, 24, 0, 0, 0, 0, time.UTC), 4)
	spray(w.FRGPAmps, time.Date(2014, 1, 18, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 3, 10, 0, 0, 0, 0, time.UTC), 12)

	// The February 10th FRGP ingress spike: a 23-minute attack on a host
	// *inside* FRGP (514 GB at ~3 Gbps), reflected off external amplifiers.
	w.Sched.At(time.Date(2014, 2, 10, 14, 0, 0, 0, time.UTC), func(now time.Time) {
		frgpVictim := w.DB.ByName("FRGP").RandomAddr(w.Src)
		amps := w.sampleAmps(w.AmplifierList(), 50)
		w.Engine.Launch(attack.Campaign{
			Victim: frgpVictim, Port: 80,
			Start: now.Add(time.Minute), Duration: 23 * time.Minute,
			TriggerRate: 2000, Amplifiers: amps,
			PrimeSources: 60, Interval: time.Minute,
		})
	})
}
