package scenario

import (
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/detect"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/timeattack"
	"ntpddos/internal/timesync"
)

// timesyncASWeights places disciplined clients and their dedicated servers
// in ordinary enterprise/end-user space. The §7 site networks are excluded
// for the same reason sensors exclude them: their traffic is ISP-vantage
// ground truth.
var timesyncASWeights = map[asdb.ASType]float64{
	asdb.Hosting: 0.3, asdb.Education: 0.3, asdb.Enterprise: 0.4,
}

// buildTimeSync deploys the disciplined-client plane: a dedicated stratum-2
// server pool, the client fleet, the optional time-integrity attack plane,
// and the drift-aware monitor. Every draw comes from private streams forked
// straight from the seed ("timesync", and "timeattack" only when the share
// is non-zero), the servers never join w.Servers (so surveys, remediation,
// and the classic analyses are blind to them), and the classic detector
// ignores mode 3/4 traffic — enabling this plane leaves all classic report
// digests byte-identical.
func (w *World) buildTimeSync() {
	tc := w.Cfg.TimeSync
	if !tc.Enabled() {
		return
	}
	if tc.Servers <= 0 {
		tc.Servers = 8
	}
	if tc.ServersPerClient <= 0 {
		tc.ServersPerClient = 4
	}
	if tc.ServersPerClient > tc.Servers {
		tc.ServersPerClient = tc.Servers
	}

	src := rng.New(w.Cfg.Seed).Fork("timesync")
	pickAS := func() *asdb.AS {
		return w.DB.PickWeighted(src, func(as *asdb.AS) float64 {
			if as.Name == asdb.NameMerit || as.Name == asdb.NameCSU || as.Name == asdb.NameFRGP {
				return 0
			}
			return timesyncASWeights[as.Type]
		})
	}
	seen := netaddr.NewSet(tc.Servers + tc.Clients)
	pickAddr := func(budget int) (netaddr.Addr, bool) {
		for tries := 0; tries < budget; tries++ {
			as := pickAS()
			if as == nil {
				return 0, false
			}
			addr := as.RandomAddr(src)
			if seen.Has(addr) || w.Net.IsRegistered(addr) {
				continue
			}
			if _, taken := w.Servers[addr]; taken {
				continue
			}
			seen.Add(addr)
			return addr, true
		}
		return 0, false
	}

	// The dedicated stratum-2 pool: plain daemons, no monlist, no mode 6 —
	// they exist to serve time, not to amplify.
	pool := make([]netaddr.Addr, 0, tc.Servers)
	for len(pool) < tc.Servers {
		addr, ok := pickAddr(50)
		if !ok {
			break
		}
		srv := ntpd.New(ntpd.Config{
			Addr:    addr,
			Stratum: 2,
			Profile: ntpd.SampleProfile(src, ntpd.RolePlain),
			Metrics: w.ntpdM,
		})
		w.Net.Register(addr, srv)
		pool = append(pool, addr)
	}
	if len(pool) < tc.ServersPerClient {
		return // address space exhausted; no fleet without a quorum's worth
	}

	var tsm *timesync.Metrics
	if w.Cfg.Metrics != nil {
		tsm = timesync.NewMetrics(w.Cfg.Metrics)
	}
	fleet := timesync.NewFleet()
	perm := make([]netaddr.Addr, len(pool))
	for i := 0; i < tc.Clients; i++ {
		addr, ok := pickAddr(50)
		if !ok {
			break
		}
		// Partial Fisher-Yates: each client polls a distinct random subset
		// of the pool, with a fixed per-client draw count.
		copy(perm, pool)
		for j := 0; j < tc.ServersPerClient; j++ {
			k := j + src.IntN(len(perm)-j)
			perm[j], perm[k] = perm[k], perm[j]
		}
		servers := make([]netaddr.Addr, tc.ServersPerClient)
		copy(servers, perm[:tc.ServersPerClient])
		fleet.Add(timesync.NewClient(timesync.Config{
			Addr:    addr,
			Servers: servers,
			MinPoll: tc.MinPoll,
			MaxPoll: tc.MaxPoll,
			// Boot-time clock state: up to ±2 s initial phase error and
			// ±50 ppm hardware frequency error.
			InitOffset: time.Duration((src.Float64()*4 - 2) * float64(time.Second)),
			FreqPPM:    src.Float64()*100 - 50,
			Metrics:    tsm,
		}, w.Cfg.Start))
	}
	fleet.Register(w.Net)
	w.TimeSync = fleet

	if share := w.Cfg.TimeAttackShare; share > 0 {
		var am *timeattack.Metrics
		if w.Cfg.Metrics != nil {
			am = timeattack.NewMetrics(w.Cfg.Metrics)
		}
		plane := timeattack.New(timeattack.Config{
			Share: share,
			// Off-path forgeries ride the same spoofing-capable bot pool as
			// the reflection attacks (read-only reuse; no extra draws).
			Origins: w.botAddrs,
			Metrics: am,
		})
		plane.Arm(fleet, rng.New(w.Cfg.Seed).Fork("timeattack"))
		w.TimeAttack = plane
	}
	if w.Cfg.Detector != nil {
		w.TimeMon = detect.NewTimeMonitor(detect.TimeMonitorConfig{})
		fleet.SetMonitor(w.TimeMon)
	}
}
