package scenario

import (
	"testing"

	"ntpddos/internal/honeypot"
)

func TestHoneypotFleetDeployed(t *testing.T) {
	w := Build(TestConfig())
	if w.Honeypots == nil {
		t.Fatal("TestConfig world has no honeypot fleet")
	}
	if n := len(w.Honeypots.Sensors); n != honeypot.DefaultSensors {
		t.Fatalf("fleet has %d sensors, want %d", n, honeypot.DefaultSensors)
	}
	for _, s := range w.Honeypots.Sensors {
		if !w.Net.IsRegistered(s.Addr) {
			t.Fatalf("sensor %v not registered on the fabric", s.Addr)
		}
		if _, isServer := w.Servers[s.Addr]; isServer {
			t.Fatalf("sensor %v collides with a real daemon", s.Addr)
		}
		if w.Views["Merit"].Contains(s.Addr) || w.Views["FRGP"].Contains(s.Addr) {
			t.Fatalf("sensor %v placed inside a §7 site network", s.Addr)
		}
	}
	if len(w.Engine.Reflectors) != len(w.Honeypots.Sensors) {
		t.Fatalf("engine knows %d reflectors, want %d",
			len(w.Engine.Reflectors), len(w.Honeypots.Sensors))
	}
}

func TestHoneypotDisabledWhenZero(t *testing.T) {
	cfg := TestConfig()
	cfg.HoneypotSensors = 0
	w := Build(cfg)
	if w.Honeypots != nil {
		t.Fatal("HoneypotSensors=0 still deployed a fleet")
	}
	if w.Engine.Reflectors != nil || w.Engine.ReflectorSrc != nil {
		t.Fatal("disabled fleet still wired into the attack engine")
	}
	// The campaign ground-truth log is vantage-independent: it must be
	// recorded even with every optional vantage disabled, so the streaming
	// detector (and future vantages) can always be scored against it.
	if w.Engine.OnLaunch == nil {
		t.Fatal("ground-truth OnLaunch recording must not depend on the honeypot fleet")
	}
}

func TestHoneypotDetectionAgainstGroundTruth(t *testing.T) {
	res := results(t)
	hp := res.Honeypot
	if hp == nil {
		t.Fatal("run produced no honeypot summary")
	}
	val := hp.Validation
	if val.Campaigns == 0 {
		t.Fatal("ground-truth campaign log is empty")
	}
	if len(hp.Events) == 0 {
		t.Fatal("fleet detected no events")
	}
	// The acceptance bar: ≥90% of launched campaigns detected...
	if rate := val.DetectionRate(); rate < 0.9 {
		t.Fatalf("detection rate %.3f (%d/%d), want ≥ 0.90",
			rate, val.Detected, val.Campaigns)
	}
	// ...with zero events from scan-only traffic: every event must match a
	// ground-truth campaign.
	if len(val.UnmatchedEvents) != 0 {
		ev := val.UnmatchedEvents[0]
		t.Fatalf("%d events match no campaign (first: %v:%d at %v)",
			len(val.UnmatchedEvents), ev.Victim, ev.Port, ev.First)
	}
	// The fleet absorbed sweeps all window long; the classifier must have a
	// scanner census and RRL must have been exercised by the trigger floods.
	if len(hp.ScannerSources) == 0 {
		t.Fatal("no sources classified as scanners despite weekly sweeps")
	}
	if hp.RepliesSuppressed == 0 {
		t.Fatal("RRL never clamped a response across a full attack window")
	}
	// (PrimingSeen stays 0 here: attackers warm only their own amplifier
	// list — sensors are injected after priming, and their bait tables need
	// no warming. The mode-3 path is covered by the package tests.)
	if hp.QueriesSeen == 0 {
		t.Fatal("fleet saw no queries across a full window")
	}
}

func TestHoneypotConvergenceCurve(t *testing.T) {
	res := results(t)
	hp := res.Honeypot
	if hp == nil {
		t.Fatal("run produced no honeypot summary")
	}
	conv := hp.Convergence
	if len(conv) != hp.NumSensors {
		t.Fatalf("convergence has %d points, want %d", len(conv), hp.NumSensors)
	}
	for k := 1; k < len(conv); k++ {
		if conv[k] < conv[k-1] {
			t.Fatalf("convergence not monotone at k=%d: %v", k, conv)
		}
	}
	if last := conv[len(conv)-1]; last < 0.9 {
		t.Fatalf("full-fleet convergence %.3f, want ≥ 0.90", last)
	}
	// A single sensor must already see a substantial share (inclusion
	// probability 0.3 plus event sharing across sibling campaigns).
	if conv[0] <= 0 {
		t.Fatal("first sensor sees nothing")
	}
}

func TestHoneypotCrossVantage(t *testing.T) {
	res := results(t)
	hp := res.Honeypot
	if hp == nil {
		t.Fatal("run produced no honeypot summary")
	}
	cross := hp.Cross
	if len(cross.Months) == 0 {
		t.Fatal("cross-vantage report has no months")
	}
	var hpTotal, fabricTotal, telemetryTotal int
	for _, m := range cross.Months {
		hpTotal += m.HoneypotEvents
		fabricTotal += m.FabricCampaigns
		telemetryTotal += m.TelemetryNTP
	}
	if hpTotal == 0 || fabricTotal == 0 || telemetryTotal == 0 {
		t.Fatalf("a vantage saw nothing: honeypot=%d fabric=%d telemetry=%d",
			hpTotal, fabricTotal, telemetryTotal)
	}
	// Event merging means the honeypot count can only be at or below the
	// flow-level campaign count (the §-DDoScovery disagreement direction).
	if hpTotal > fabricTotal {
		t.Fatalf("honeypot events (%d) exceed fabric campaigns (%d)", hpTotal, fabricTotal)
	}
	if len(cross.Sites) != 3 {
		t.Fatalf("cross-vantage has %d sites, want Merit/CSU/FRGP", len(cross.Sites))
	}
	for _, s := range cross.Sites {
		if s.Overlap > s.SiteVictims {
			t.Fatalf("site %s overlap %d exceeds its victim count %d",
				s.Site, s.Overlap, s.SiteVictims)
		}
	}
}
