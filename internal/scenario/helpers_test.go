package scenario

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
)

func TestSampleAmpsDistinctAndComplete(t *testing.T) {
	w := Build(TestConfig())
	list := w.AmplifierList()
	for _, k := range []int{1, 5, 50} {
		got := w.sampleAmps(list, k)
		if len(got) != k {
			t.Fatalf("sampleAmps(%d) returned %d", k, len(got))
		}
		seen := map[netaddr.Addr]bool{}
		for _, a := range got {
			if seen[a] {
				t.Fatalf("duplicate amplifier %v", a)
			}
			seen[a] = true
		}
	}
	// Requesting more than available returns everything.
	all := w.sampleAmps(list[:10], 50)
	if len(all) != 10 {
		t.Fatalf("over-request returned %d", len(all))
	}
}

func TestSampleAmpsHeadSkew(t *testing.T) {
	w := Build(TestConfig())
	list := w.AmplifierList()
	if len(list) < 200 {
		t.Skip("world too small")
	}
	headHits, tailHits := 0, 0
	for i := 0; i < 200; i++ {
		for _, a := range w.sampleAmps(list, 5) {
			idx := indexOf(list, a)
			if idx < len(list)/10 {
				headHits++
			}
			if idx > len(list)*9/10 {
				tailHits++
			}
		}
	}
	if headHits <= tailHits*2 {
		t.Fatalf("no head skew: head %d vs tail %d", headHits, tailHits)
	}
}

func indexOf(list []netaddr.Addr, a netaddr.Addr) int {
	for i, v := range list {
		if v == a {
			return i
		}
	}
	return -1
}

func TestRefreshFavoritesBounded(t *testing.T) {
	w := Build(TestConfig())
	w.refreshFavorites()
	pool := w.NumAmplifiers()
	want := pool / 12
	if want < 30 {
		want = 30
	}
	if len(w.favorites) != want {
		t.Fatalf("favorites = %d, want %d", len(w.favorites), want)
	}
	for _, a := range w.favorites {
		if _, ok := w.amplifiers[a]; !ok {
			t.Fatalf("favorite %v not in the pool", a)
		}
	}
}

func TestPickVictimEndHostDrift(t *testing.T) {
	w := Build(TestConfig())
	countEnd := func(at time.Time, n int) float64 {
		end := 0
		for i := 0; i < n; i++ {
			if w.pickVictim(at).endHost {
				end++
			}
		}
		return float64(end) / float64(n)
	}
	early := countEnd(ONPStart, 3000)
	late := countEnd(ONPStart.AddDate(0, 0, 10*7), 3000)
	if late <= early {
		t.Fatalf("end-host victim share did not drift up: %.2f -> %.2f (paper 31%%->50%%)", early, late)
	}
}

func TestScaledClampsToOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 1_000_000_000
	if cfg.scaled(9) != 1 {
		t.Fatalf("scaled(9) = %d at huge scale, want 1", cfg.scaled(9))
	}
	if cfg.scaled(0) != 0 {
		t.Fatal("scaled(0) must stay 0")
	}
}

func TestExtractedCompileProfileBounds(t *testing.T) {
	w := Build(TestConfig())
	for i := 0; i < 100; i++ {
		n := w.extraVarBytes()
		if n < 0 || n > 6000 {
			t.Fatalf("extraVarBytes = %d", n)
		}
		c := w.drawClientTableSize()
		if c < 1 || c > 590 {
			t.Fatalf("clientTableSize = %d", c)
		}
	}
}

func TestDHCPChurnPreservesPoolSize(t *testing.T) {
	w := Build(TestConfig())
	before := w.NumAmplifiers()
	w.applyDHCPChurn()
	after := w.NumAmplifiers()
	// Churn re-addresses end hosts; a handful of collisions may shrink the
	// pool slightly, but never substantially, and never grow it.
	if after > before || after < before-before/20 {
		t.Fatalf("churn changed pool %d -> %d", before, after)
	}
}

func TestNoRemediationKeepsPool(t *testing.T) {
	cfg := TestConfig()
	cfg.NoRemediation = true
	w := Build(cfg)
	before := w.NumAmplifiers()
	for i := 0; i < 5; i++ {
		w.applyWeeklyRemediation(i)
	}
	after := w.NumAmplifiers()
	if after < before {
		t.Fatalf("NoRemediation world shrank: %d -> %d", before, after)
	}
}
