// Package scenario builds and drives the calibrated synthetic Internet over
// the paper's measurement window (September 2013 through May 2014). The
// generative parameters — population sizes, remediation curves, attack
// adoption fractions, OS/port distributions — are taken from the paper's
// own reported statistics (they are properties of the 2014 Internet, not
// derivable from first principles); everything downstream of those inputs
// (tables disclosed by daemons, packets on the fabric, survey captures,
// analysis outputs) is mechanistic.
//
// Scale model: populations (amplifiers, servers, victims, resolvers) are
// divided by Config.Scale; reported counts are re-inflated by the same
// factor at experiment time. Per-host behaviour (monitor tables, packets,
// BAFs) is exact at any scale. Real-world quantities that are not
// populations — attack sizes in Gbps, global traffic fractions — are
// modeled at real scale directly.
package scenario

import (
	"math/rand/v2"
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/attack"
	"ntpddos/internal/darknet"
	"ntpddos/internal/detect"
	"ntpddos/internal/honeypot"
	"ntpddos/internal/ispview"
	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/pbl"
	"ntpddos/internal/rng"
	"ntpddos/internal/scan"
	"ntpddos/internal/telemetry"
	"ntpddos/internal/timeattack"
	"ntpddos/internal/timesync"
	"ntpddos/internal/vtime"
)

// Config sizes and seeds a run.
type Config struct {
	Seed uint64
	// Scale divides every global population. 100 is the benchmark default;
	// tests use 500–2000; 1 is a full-size (slow, memory-heavy) world.
	Scale int

	Start time.Time
	End   time.Time

	// Real-world (unscaled) population calibration, from the paper.
	InitialAmplifiers int // monlist pool at the first ONP sample (1.4M)
	TotalNTPServers   int // global NTP population (~6M)
	Mode6Responders   int // version pool (~4M, barely shrinking)
	OpenDNSResolvers  int // open resolver pool (~33.9M)
	MegaAmplifiers    int // moderate megas, >100KB responders (~10K)
	ExtremeMegas      int // the nine §3.4 multi-GB repeaters (absolute)
	UniqueVictims     int // victim IPs over the window (~437K)

	// NumASes for the generated registry (scaled world).
	NumASes int

	// MonthlyAttacks is the global DDoS attack rate (~300K/month), used for
	// Figure 2's denominators; only NTP-vector attacks touch the fabric.
	MonthlyAttacks int
	// FabricAttackDivisor additionally thins the NTP campaigns that run on
	// the fabric (they are the expensive part); Figure 2 bookkeeping still
	// uses full counts.
	FabricAttackDivisor int

	// HoneypotSensors sizes the amppot-style sensor fleet (0 disables the
	// honeypot vantage entirely). The fleet runs on RNG streams forked from
	// the seed independently of the world stream, so enabling or resizing
	// it never perturbs the calibrated population and attack draws.
	HoneypotSensors int

	// NoRemediation disables the §6 community response entirely (global
	// patching, site schedules still run): the counterfactual world the
	// ablation benchmarks compare against.
	NoRemediation bool

	// SpooferFraction is the fraction of ASes that never deployed BCP38 and
	// therefore emit spoofed packets — the knob sensitivity sweeps move to
	// ask how much source-address validation would have blunted the attack
	// wave. 0 means the calibrated default (0.25); negative means no AS
	// spoofs at all.
	SpooferFraction float64

	// RemediationHazard scales the weekly global patching pressure: each
	// week's patch quota is multiplied by it. 0 (or 1) reproduces the
	// paper's Table 1 decline; 0.5 halves the community response, 2 doubles
	// it. Site schedules (§7) are explicit dates and are unaffected.
	RemediationHazard float64

	// PCAPDir, when set, persists every weekly monlist sample as a libpcap
	// file (monlist-YYYY-MM-DD.pcap) in that directory — the dataset
	// interchange format; cmd/onpdump re-analyses the files.
	PCAPDir string

	// Metrics, when non-nil, attaches live instrumentation to every layer of
	// the world (fabric, scheduler, daemons, scanners, attack engine,
	// honeypots, telemetry, ISP views). The registry can then be served over
	// HTTP (see internal/metrics.Serve). Instrumentation is provably free of
	// behavioural effect: metric writes never touch RNG or scheduler state,
	// so report digests are identical with Metrics nil or set.
	Metrics *metrics.Registry

	// Detector, when non-nil, attaches the streaming heavy-hitter detection
	// plane (internal/detect) to the fabric as a passive tap. Like Metrics,
	// it is provably free of behavioural effect: the detector never mutates
	// datagrams and hashes with a seed forked independently of the world
	// stream, so report digests are identical with Detector nil or set.
	Detector *detect.Config

	// ExtraVectors enables additional amplification protocols alongside
	// monlist ("dns", "ssdp", "chargen"): each named vector gets a scaled
	// reflector population registered on the fabric (addresses drawn from
	// private per-vector RNG streams), and campaign shaping rotates bursts
	// across the enabled set. Empty keeps the classic monlist-only world —
	// zero extra draws, zero extra hosts, digests unchanged.
	ExtraVectors []string

	// PulseWaveShare, CarpetBombShare, and MultiVectorShare are the
	// fractions of fabric campaigns reshaped into fixed-period burst
	// rotations, /24 carpet sweeps, and simultaneous multi-protocol blends
	// respectively (shares sum at most 1). All zero disables shaping: the
	// campaign stream is never forked and classic digests are unchanged.
	PulseWaveShare   float64
	CarpetBombShare  float64
	MultiVectorShare float64

	// Faults is the deterministic fault-injection plane: a lossy fabric
	// (drops, duplicates, reordering, link flaps) plus degraded measurement
	// vantages (NetFlow sampling, collector outages, honeypot sensor
	// blackouts). Fabric impairment draws from a private "faults" stream
	// forked from the seed and vantage schedules are pure hashes, so the
	// zero value is provably inert: no extra forks, no extra draws, report
	// digests unchanged.
	Faults FaultConfig

	// TimeSync sizes the disciplined-client plane (internal/timesync): hosts
	// that actually *use* NTP for timekeeping, polling a dedicated stratum-2
	// pool and steering simulated local clocks. Both the client fleet and its
	// servers live on a private "timesync" stream forked from the seed, the
	// servers are never part of the survey population, and the classic
	// detector ignores mode 3/4 traffic — so the zero value (and any non-zero
	// value) leaves every classic report digest unchanged.
	TimeSync TimeSyncConfig

	// TimeAttackShare is the fraction of disciplined clients targeted by the
	// time-integrity attack plane (internal/timeattack): spoofed replies,
	// forged kiss-o'-death, delay asymmetry, drift poisoning, stratum and
	// leap manipulation. Target selection draws from a private "timeattack"
	// stream; 0 never forks it. Requires TimeSync to be enabled.
	TimeAttackShare float64
}

// TimeSyncConfig sizes the disciplined-client plane. The zero value
// disables it entirely.
type TimeSyncConfig struct {
	// Clients is the number of disciplined hosts (0 disables the plane).
	Clients int
	// Servers sizes the dedicated stratum-2 pool the clients poll (default
	// 8). These daemons are registered on the fabric but deliberately NOT in
	// the survey population and live outside the §7 site networks, so the
	// classic vantages never see them.
	Servers int
	// ServersPerClient is each client's association count (default 4).
	ServersPerClient int
	// MinPoll and MaxPoll override the discipline's poll-exponent bounds
	// (defaults 6 and 10: 64 s to 1024 s).
	MinPoll, MaxPoll int8
}

// Enabled reports whether the disciplined-client plane is configured.
func (t TimeSyncConfig) Enabled() bool { return t.Clients > 0 }

// FaultConfig groups the fault-injection knobs. Rates are probabilities in
// [0, 1); durations and counts fall back to sensible defaults when zero.
type FaultConfig struct {
	// Loss is the mean per-link drop probability applied to fabric
	// deliveries (each link hashes a stable factor in [0.5, 1.5)).
	Loss float64
	// Dup is the per-packet duplication probability: duplicated batches are
	// re-delivered after a short extra hashed delay.
	Dup float64
	// Reorder is the probability a batch is held back by an extra bounded
	// delay, arriving after later traffic.
	Reorder float64
	// FlapRate is the fraction of (link, window) pairs that are down; flap
	// windows tile virtual time with period FlapPeriod (default 1h).
	FlapRate   float64
	FlapPeriod time.Duration

	// FlowSampleN enables systematic 1-in-N NetFlow sampling at the
	// detector's vantage (0 or 1 disables); kept packets are re-inflated
	// and alarm confidence drops to 1/N.
	FlowSampleN int
	// CollectorOutage is the dark fraction of each OutagePeriod (default
	// 6h) during which the detector's collector sees nothing. The detector
	// knows the schedule and holds episodes across the gaps.
	CollectorOutage float64
	OutagePeriod    time.Duration

	// SensorBlackout is the dark fraction of each BlackoutPeriod (default
	// 6h) during which a honeypot sensor neither answers nor records;
	// per-sensor phases are hashed so the fleet never goes dark at once.
	SensorBlackout float64
	BlackoutPeriod time.Duration
}

// fabricEnabled reports whether any packet-level impairment is configured.
func (f FaultConfig) fabricEnabled() bool {
	return f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 || f.FlapRate > 0
}

// Enabled reports whether any fault surface is active.
func (f FaultConfig) Enabled() bool {
	return f.fabricEnabled() || f.FlowSampleN > 1 || f.CollectorOutage > 0 || f.SensorBlackout > 0
}

// DefaultConfig is the benchmark configuration.
func DefaultConfig() Config {
	return Config{
		Seed:  1,
		Scale: 100,
		Start: vtime.Epoch, // 2013-09-01
		End:   time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),

		InitialAmplifiers: 1_405_000,
		TotalNTPServers:   6_000_000,
		Mode6Responders:   4_000_000,
		OpenDNSResolvers:  33_900_000,
		MegaAmplifiers:    10_000,
		ExtremeMegas:      9,
		UniqueVictims:     437_000,

		NumASes:             1500,
		MonthlyAttacks:      300_000,
		FabricAttackDivisor: 1,
		HoneypotSensors:     honeypot.DefaultSensors,
	}
}

// TestConfig returns a small, fast world for tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.Scale = 2000
	c.NumASes = 250
	c.FabricAttackDivisor = 4
	return c
}

// scaled converts a real-world population to world size.
func (c Config) scaled(n int) int {
	s := n / c.Scale
	if s < 1 && n > 0 {
		s = 1
	}
	return s
}

// server bundles a daemon with its placement metadata.
type server struct {
	srv *ntpd.Server
	as  *asdb.AS
	// batch groups professionally-managed servers that get patched
	// together; end hosts are their own batch.
	batch int
	// endHost marks PBL-space placement.
	endHost bool
	// onlyOldImpl marks daemons answering only the implementation value the
	// ONP scanner does not send (the §3.1 blind spot).
	onlyOldImpl bool
	// clientTableSize is the daemon's steady-state monitor-table occupancy
	// from honest NTP clients (paper: median 6, mean 70).
	clientTableSize int
	// site names the §7 regional network ("Merit", "CSU", "FRGP") for
	// locally-managed amplifiers, which follow explicit remediation
	// schedules instead of the global hazard model.
	site string
}

// World is the fully built simulation.
type World struct {
	Cfg   Config
	Clock *vtime.Clock
	Sched *vtime.Scheduler
	Net   *netsim.Network
	Src   *rng.Source

	DB  *asdb.DB
	PBL *pbl.List

	// Servers maps every NTP daemon by address (amplifiers and plain).
	Servers map[netaddr.Addr]*server
	// amplifiers is the current monlist-answering subset. ampList caches the
	// sorted address snapshot (nil when stale); rebuilds allocate a fresh
	// slice, so closures holding an older snapshot stay valid.
	amplifiers map[netaddr.Addr]*server
	ampList    []netaddr.Addr
	batches    map[int][]*server
	nextBatch  int

	// DNSPool is the open-resolver address set (not registered as hosts at
	// global scale; used for pool-size and overlap analyses).
	DNSPool netaddr.Set

	Telescope *darknet.Telescope
	Collector *telemetry.Collector
	Views     map[string]*ispview.View
	Engine    *attack.Engine

	// Honeypots is the amppot sensor fleet (nil when disabled); Launched is
	// the ground-truth campaign log its detections are validated against.
	Honeypots *honeypot.Fleet
	Launched  []attack.Campaign
	// Detect is the streaming detection plane (nil when disabled), fed by a
	// passive fabric tap alongside the telescope and ISP views.
	Detect *detect.Detector
	// TimeSync is the disciplined-client fleet (nil when disabled);
	// TimeAttack is the time-integrity attack plane targeting it, and
	// TimeMon the drift-aware integrity lane scored against the plane's
	// ground truth.
	TimeSync   *timesync.Fleet
	TimeAttack *timeattack.Plane
	TimeMon    *detect.TimeMonitor
	// Reflectors maps each enabled extra vector to its registered reflector
	// population (nil when Config.ExtraVectors is empty).
	Reflectors attack.AmplifierSets
	// campSrc is the campaign-shaping stream, forked from the seed privately
	// like hpSrc; nil while every shaping share is zero, so classic worlds
	// never create it.
	campSrc *rng.Source
	// hpSrc is the honeypot vantage's private RNG root, forked from the seed
	// separately from Src so the fleet never perturbs world randomness.
	hpSrc *rng.Source

	ONPAddr          netaddr.Addr
	MeritAmps        []netaddr.Addr
	CSUAmps          []netaddr.Addr
	FRGPAmps         []netaddr.Addr
	MegaAddrs        netaddr.Set
	ExtremeMegaAddrs []netaddr.Addr
	victimPool       []victimSpec
	victimZipf       *rand.Zipf
	botAddrs         []netaddr.Addr
	researchIPs      []netaddr.Addr
	maliciousIPs     []netaddr.Addr

	// infraASPool and endASPool hold the ASes already hosting amplifier
	// batches; reusing them concentrates the pool the way the real one was
	// (1.4M amplifiers across only 15K origin ASes, ~4 blocks per AS).
	infraASPool []*asdb.AS
	endASPool   []*asdb.AS

	// asPoolFrozen marks the end of world construction: subsequent arrival
	// batches nearly always land in already-vulnerable ASes.
	asPoolFrozen bool

	// favorites is the booter ecosystem's shared working set of harvested
	// amplifiers: attacks draw from this bounded list, not the whole pool.
	// The median amplifier is therefore never abused (its monitor table
	// holds only honest clients — the paper's median of 6 entries), while
	// favorites accumulate fat victim tables and dominate Figure 5's
	// amplifier-AS concentration.
	favorites []netaddr.Addr

	// ntpdM is the population-level daemon instrumentation (nil when
	// Config.Metrics is nil); it rides in every ntpd.Config the world builds.
	ntpdM *ntpd.Metrics
	// scanM is the survey instrumentation shared by the ONP probers.
	scanM *scan.Metrics
}

type victimSpec struct {
	addr    netaddr.Addr
	endHost bool
}

// NumAmplifiers returns the current (scaled) monlist pool size.
func (w *World) NumAmplifiers() int { return len(w.amplifiers) }

// AmplifierSet snapshots the current amplifier addresses.
func (w *World) AmplifierSet() netaddr.Set {
	s := netaddr.NewSet(len(w.amplifiers))
	for a := range w.amplifiers {
		s.Add(a)
	}
	return s
}

// AmplifierList snapshots the current amplifier addresses as a sorted slice
// (attacker's harvested list). The snapshot is cached until the amplifier
// set next mutates; callers must not modify the returned slice.
func (w *World) AmplifierList() []netaddr.Addr {
	if w.ampList == nil {
		w.ampList = w.AmplifierSet().Sorted()
	}
	return w.ampList
}

// Build constructs the world: registry, PBL, server population, local ISP
// views, darknet, attack engine.
func Build(cfg Config) *World {
	src := rng.New(cfg.Seed)
	clock := &vtime.Clock{}
	sched := vtime.NewScheduler(clock)

	spoof := cfg.SpooferFraction
	if spoof == 0 {
		spoof = 0.25
	} else if spoof < 0 {
		spoof = 0
	}
	db := asdb.Build(src.Fork("asdb"), asdb.Config{NumASes: cfg.NumASes, SpooferFraction: spoof})
	pl := pbl.Derive(db, src.Fork("pbl"), pbl.DefaultConfig())

	policy := func(origin, claimed netaddr.Addr) bool {
		as := db.OwnerOf(origin)
		return as == nil || as.AllowsSpoofing
	}
	nw := netsim.New(sched, policy)
	if cfg.Faults.fabricEnabled() {
		// The impairment stage runs on its own stream forked straight from
		// the seed, like the honeypot and campaign streams: world draws are
		// untouched, so a faulty run differs from a clean one only through
		// the packets it perturbs.
		nw.SetImpairment(netsim.Impairment{
			Loss: cfg.Faults.Loss, Dup: cfg.Faults.Dup,
			Reorder: cfg.Faults.Reorder, FlapRate: cfg.Faults.FlapRate,
			FlapPeriod: cfg.Faults.FlapPeriod,
		}, rng.New(cfg.Seed).Fork("faults"))
	}

	w := &World{
		Cfg: cfg, Clock: clock, Sched: sched, Net: nw,
		Src: src, DB: db, PBL: pl,
		Servers:    make(map[netaddr.Addr]*server),
		amplifiers: make(map[netaddr.Addr]*server),
		batches:    make(map[int][]*server),
		DNSPool:    netaddr.NewSet(0),
		Collector:  telemetry.New(),
		Views:      make(map[string]*ispview.View),
		MegaAddrs:  netaddr.NewSet(0),
		ONPAddr:    netaddr.MustParseAddr("198.108.60.10"), // inside Merit space
	}

	w.Telescope = darknet.New(db.DarknetPrefix, 0.75)
	nw.AddTap(w.Telescope)

	merit := db.ByName(asdb.NameMerit)
	csu := db.ByName(asdb.NameCSU)
	frgp := db.ByName(asdb.NameFRGP)
	w.Views["Merit"] = ispview.New("Merit", db, merit)
	w.Views["CSU"] = ispview.New("CSU", db, csu)
	w.Views["FRGP"] = ispview.New("FRGP", db, frgp, csu)
	for _, v := range w.Views {
		nw.AddTap(v)
	}

	if cfg.Metrics != nil {
		sched.SetMetrics(vtime.NewMetrics(cfg.Metrics))
		nw.SetMetrics(netsim.NewMetrics(cfg.Metrics))
		w.ntpdM = ntpd.NewMetrics(cfg.Metrics)
		w.scanM = scan.NewMetrics(cfg.Metrics)
		w.Collector.SetMetrics(telemetry.NewMetrics(cfg.Metrics))
		vm := ispview.NewMetrics(cfg.Metrics)
		for _, v := range w.Views {
			v.SetMetrics(vm)
		}
	}

	w.buildServers()
	w.buildLocalAmplifiers(merit, csu, frgp)
	w.buildVictims()
	w.victimZipf = src.Zipf(1.06, uint64(len(w.victimPool)))
	w.buildAttackers()
	w.buildDNSPool()
	w.placeSensors()
	w.buildExtraReflectors()
	if cfg.PulseWaveShare > 0 || cfg.CarpetBombShare > 0 || cfg.MultiVectorShare > 0 {
		w.campSrc = rng.New(cfg.Seed).Fork("campaigns")
	}

	w.Engine = attack.NewEngine(nw, src.Fork("attack"), w.botAddrs)
	if cfg.Metrics != nil {
		w.Engine.Metrics = attack.NewMetrics(cfg.Metrics)
		if w.Honeypots != nil {
			w.Honeypots.SetMetrics(honeypot.NewMetrics(cfg.Metrics))
		}
	}
	// OnLaunch records the campaign ground truth unconditionally: both the
	// honeypot and streaming-detector vantages validate against it.
	w.Engine.OnLaunch = func(c attack.Campaign) {
		w.Launched = append(w.Launched, c)
	}
	if w.Honeypots != nil {
		// Scanners harvest the always-responsive sensors into booter lists;
		// from then on each campaign drags some of the fleet in. The draws
		// come from the honeypot stream.
		w.Engine.Reflectors = w.Honeypots.Addrs()
		w.Engine.ReflectorProb = honeypot.DefaultInclusionProb
		w.Engine.ReflectorSrc = w.hpSrc.Fork("reflectors")
	}
	if cfg.Detector != nil {
		dcfg := *cfg.Detector
		if cfg.Faults.FlowSampleN > 1 || cfg.Faults.CollectorOutage > 0 {
			dcfg.Vantage = detect.Vantage{
				SampleN:        cfg.Faults.FlowSampleN,
				OutageFraction: cfg.Faults.CollectorOutage,
				OutagePeriod:   cfg.Faults.OutagePeriod,
				Anchor:         cfg.Start,
			}
		}
		if dcfg.Seed == 0 {
			// The detector draws no randomness, but its sketch hashing is
			// keyed; fork the key from the seed on a private stream so the
			// world draws are untouched.
			dcfg.Seed = rng.New(cfg.Seed).Fork("detect").Uint64()
		}
		w.Detect = detect.New(dcfg)
		nw.AddTap(w.Detect)
		if cfg.Metrics != nil {
			w.Detect.SetMetrics(detect.NewMetrics(cfg.Metrics))
		}
	}
	w.buildTimeSync()
	w.asPoolFrozen = true
	return w
}

// sensorASWeights places sensors where amppot deployments live: hosting and
// university space. The §7 site networks are excluded — their traffic is
// ground truth for the ISP vantage and must not gain emulated daemons.
var sensorASWeights = map[asdb.ASType]float64{
	asdb.Hosting: 0.5, asdb.Education: 0.3, asdb.Enterprise: 0.2,
}

// placeSensors deploys the honeypot fleet on routed-but-unpopulated
// addresses. All draws come from hpSrc.
func (w *World) placeSensors() {
	n := w.Cfg.HoneypotSensors
	if n <= 0 {
		return
	}
	w.hpSrc = rng.New(w.Cfg.Seed).Fork("honeypot")
	pickAS := func() *asdb.AS {
		return w.DB.PickWeighted(w.hpSrc, func(as *asdb.AS) float64 {
			if as.Name == asdb.NameMerit || as.Name == asdb.NameCSU || as.Name == asdb.NameFRGP {
				return 0
			}
			return sensorASWeights[as.Type]
		})
	}
	seen := netaddr.NewSet(n)
	var addrs []netaddr.Addr
	for tries := 0; len(addrs) < n && tries < n*50; tries++ {
		as := pickAS()
		if as == nil {
			break
		}
		addr := as.RandomAddr(w.hpSrc)
		// Routed but unpopulated: skip anything already owned by a daemon or
		// other registered host.
		if seen.Has(addr) || w.Net.IsRegistered(addr) {
			continue
		}
		if _, taken := w.Servers[addr]; taken {
			continue
		}
		seen.Add(addr)
		addrs = append(addrs, addr)
	}
	hcfg := honeypot.DefaultConfig(len(addrs))
	if w.Cfg.Faults.SensorBlackout > 0 {
		hcfg.BlackoutFraction = w.Cfg.Faults.SensorBlackout
		hcfg.BlackoutPeriod = w.Cfg.Faults.BlackoutPeriod
		hcfg.BlackoutAnchor = w.Cfg.Start
	}
	w.Honeypots = honeypot.NewFleet(hcfg, addrs, w.hpSrc.Fork("fleet"))
	w.Honeypots.Register(w.Net)
}
