package scenario

import (
	"fmt"
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/attack"
	"ntpddos/internal/dns"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/reflector"
	"ntpddos/internal/rng"
)

// Multi-protocol reflector populations and campaign shaping. Everything in
// this file draws from private RNG streams (rng.New(seed).Fork(...), like
// the honeypot vantage), so enabling extra vectors or shaped campaigns
// never perturbs the calibrated world stream — classic configurations stay
// byte-identical, which the golden corpus pins.

// extraVectorCalibration places each extra vector's abusable population:
// the real-world pool size (the booter's harvested working set is a
// bounded, scaled slice of it) and where such hosts live. Open resolvers
// sit in access networks (§2: the 33.9M open-resolver pool), SSDP
// reflectors are home-router UPnP stacks, and chargen survivors are ancient
// inetd boxes in institutional space (Rossow NDSS'14 population orders).
var extraVectorCalibration = map[reflector.Vector]struct {
	pool      int
	asWeights map[asdb.ASType]float64
}{
	reflector.DNSANY: {33_900_000, map[asdb.ASType]float64{
		asdb.Telecom: 0.4, asdb.Residential: 0.3, asdb.Hosting: 0.2, asdb.Enterprise: 0.1}},
	reflector.SSDP: {5_900_000, map[asdb.ASType]float64{
		asdb.Residential: 0.7, asdb.Telecom: 0.3}},
	reflector.Chargen: {100_000, map[asdb.ASType]float64{
		asdb.Enterprise: 0.4, asdb.Education: 0.3, asdb.Hosting: 0.3}},
}

// harvestedListBounds clamp each vector's registered population: booters
// work from harvested lists, not the whole pool, so the fabric only needs
// the working set.
const (
	minHarvestedList = 8
	maxHarvestedList = 1024
)

// buildExtraReflectors registers each enabled extra vector's reflector
// population. Addresses come from a per-vector private stream
// ("reflectors-<vector>"), so vector sets can be enabled independently
// without shifting each other's placements.
func (w *World) buildExtraReflectors() {
	if len(w.Cfg.ExtraVectors) == 0 {
		return
	}
	w.Reflectors = make(attack.AmplifierSets, len(w.Cfg.ExtraVectors))
	for _, name := range w.Cfg.ExtraVectors {
		v := reflector.Vector(name)
		cal, ok := extraVectorCalibration[v]
		if !ok {
			panic(fmt.Sprintf("scenario: unknown extra vector %q", name))
		}
		if len(w.Reflectors[v]) > 0 {
			continue // duplicate name
		}
		n := w.Cfg.scaled(cal.pool)
		if n < minHarvestedList {
			n = minHarvestedList
		}
		if n > maxHarvestedList {
			n = maxHarvestedList
		}
		src := rng.New(w.Cfg.Seed).Fork("reflectors-" + name)
		var addrs []netaddr.Addr
		for tries := 0; len(addrs) < n && tries < n*50; tries++ {
			as := w.DB.PickWeighted(src, func(as *asdb.AS) float64 {
				if as.Name == asdb.NameMerit || as.Name == asdb.NameCSU || as.Name == asdb.NameFRGP {
					return 0 // site traffic stays §7 ground truth
				}
				return cal.asWeights[as.Type]
			})
			if as == nil {
				break
			}
			addr := as.RandomAddr(src)
			if w.Net.IsRegistered(addr) {
				continue
			}
			if _, taken := w.Servers[addr]; taken {
				continue
			}
			switch v {
			case reflector.DNSANY:
				w.Net.Register(addr, dns.NewResolver(addr, true))
			case reflector.SSDP:
				w.Net.Register(addr, reflector.NewSSDPNode(addr))
			case reflector.Chargen:
				w.Net.Register(addr, reflector.NewChargenNode(addr))
			}
			addrs = append(addrs, addr)
		}
		w.Reflectors[v] = addrs
	}
}

// enabledVectors returns monlist plus every extra vector with a registered
// population, in catalogue order (deterministic — never map order).
func (w *World) enabledVectors() []reflector.Vector {
	vs := []reflector.Vector{reflector.Monlist}
	for _, v := range reflector.Vectors() {
		if v != reflector.Monlist && len(w.Reflectors[v]) > 0 {
			vs = append(vs, v)
		}
	}
	return vs
}

// sampleAddrs draws k distinct addresses uniformly from list using src.
func sampleAddrs(src *rng.Source, list []netaddr.Addr, k int) []netaddr.Addr {
	if k >= len(list) {
		out := make([]netaddr.Addr, len(list))
		copy(out, list)
		return out
	}
	out := make([]netaddr.Addr, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k {
		i := src.IntN(len(list))
		if !seen[i] {
			seen[i] = true
			out = append(out, list[i])
		}
	}
	return out
}

// ampSets builds a campaign's per-vector amplifier map: the sampled monlist
// list as drawn by the classic path, plus a same-breadth sample of each
// extra vector's harvested population (drawn from the campaign stream).
func (w *World) ampSets(monlistAmps []netaddr.Addr) attack.AmplifierSets {
	sets := attack.AmplifierSets{reflector.Monlist: monlistAmps}
	k := len(monlistAmps)
	if k < 2 {
		k = 2
	}
	for _, v := range reflector.Vectors() {
		if pool := w.Reflectors[v]; len(pool) > 0 {
			sets[v] = sampleAddrs(w.campSrc, pool, k)
		}
	}
	return sets
}

// shapeCampaign possibly reshapes one classic fabric campaign into a
// pulse-wave, carpet-bombing, or multi-vector schedule, per the configured
// shares. It returns true when it consumed the campaign (the shaped
// launches replace the classic one). With every share zero it returns
// false before touching any RNG, so classic worlds are byte-identical.
func (w *World) shapeCampaign(c attack.Campaign) bool {
	if w.campSrc == nil {
		return false
	}
	r := w.campSrc.Float64()
	cfg := w.Cfg
	switch {
	case r < cfg.PulseWaveShare:
		w.shapePulseWave(c)
	case r < cfg.PulseWaveShare+cfg.CarpetBombShare:
		w.shapeCarpetBomb(c)
	case r < cfg.PulseWaveShare+cfg.CarpetBombShare+cfg.MultiVectorShare:
		w.shapeMultiVector(c)
	default:
		return false
	}
	return true
}

// shapePulseWave turns the campaign into a fixed-period burst rotation over
// the original victim plus a few pool co-targets, cycling the enabled
// vector set — the shape that defeats sustained-flood trackers.
func (w *World) shapePulseWave(c attack.Campaign) {
	src := w.campSrc
	victims := []netaddr.Addr{c.Victim}
	for n := 1 + src.IntN(3); n > 0; n-- {
		victims = append(victims, w.victimPool[src.IntN(len(w.victimPool))].addr)
	}
	period := time.Duration(2+src.IntN(9)) * time.Minute
	w.Engine.LaunchPulseWave(attack.PulseWave{
		Victims: victims, Port: c.Port,
		Vectors:    w.enabledVectors(),
		Amplifiers: w.ampSets(c.Amplifiers),
		Start:      c.Start, Period: period, BurstLen: period / 2,
		Bursts:      len(victims) * (3 + src.IntN(6)),
		TriggerRate: c.TriggerRate, PrimeSources: c.PrimeSources,
	})
}

// shapeCarpetBomb spreads the campaign across the victim's /24 in
// back-to-back slices, on one vector drawn from the enabled set.
func (w *World) shapeCarpetBomb(c attack.Campaign) {
	src := w.campSrc
	vecs := w.enabledVectors()
	v := vecs[src.IntN(len(vecs))]
	amps := c.Amplifiers
	if v != reflector.Monlist {
		amps = sampleAddrs(src, w.Reflectors[v], len(c.Amplifiers))
	}
	targets := 16 + src.IntN(48)
	slice := c.Duration / time.Duration(targets)
	if slice < 5*time.Second {
		slice = 5 * time.Second
	}
	w.Engine.LaunchCarpetBomb(attack.CarpetBomb{
		Prefix: c.Victim.Slash24(), Port: c.Port, Vector: v,
		Amplifiers: amps,
		Start:      c.Start, SliceLen: slice,
		TriggerRate: c.TriggerRate, MaxTargets: targets,
	})
}

// shapeMultiVector blends every enabled vector against the original victim
// simultaneously — the booter "stresser package" shape.
func (w *World) shapeMultiVector(c attack.Campaign) {
	w.Engine.LaunchMultiVector(attack.MultiVector{
		Victim: c.Victim, Port: c.Port,
		Vectors:    w.enabledVectors(),
		Amplifiers: w.ampSets(c.Amplifiers),
		Start:      c.Start, Duration: c.Duration,
		TriggerRate: c.TriggerRate, PrimeSources: c.PrimeSources,
	})
}
