package scenario

import (
	"testing"
	"time"

	"ntpddos/internal/detect"
	"ntpddos/internal/reflector"
)

// TestShapedCampaignWorld runs a short window with every extra vector and
// all three campaign shapes enabled, and checks the whole loop: reflector
// populations registered, shaped campaigns in the ground-truth log under
// their vectors, and the streaming detector classifying non-NTP lanes.
func TestShapedCampaignWorld(t *testing.T) {
	cfg := TestConfig()
	cfg.End = time.Date(2014, 1, 20, 0, 0, 0, 0, time.UTC)
	cfg.ExtraVectors = []string{"dns-any", "ssdp", "chargen"}
	cfg.PulseWaveShare = 0.25
	cfg.CarpetBombShare = 0.2
	cfg.MultiVectorShare = 0.2
	dcfg := detect.DefaultConfig()
	cfg.Detector = &dcfg
	res := Run(cfg)
	w := res.World

	for _, v := range []reflector.Vector{reflector.DNSANY, reflector.SSDP, reflector.Chargen} {
		pool := w.Reflectors[v]
		if len(pool) < minHarvestedList {
			t.Fatalf("%s population %d below floor %d", v, len(pool), minHarvestedList)
		}
		for _, a := range pool {
			if !w.Net.IsRegistered(a) {
				t.Fatalf("%s reflector %v not registered", v, a)
			}
			if _, isServer := w.Servers[a]; isServer {
				t.Fatalf("%s reflector %v collides with an NTP daemon", v, a)
			}
		}
	}

	byVec := map[reflector.Vector]int{}
	for _, c := range w.Launched {
		byVec[c.Vector]++
	}
	// Classic campaigns carry the zero vector; shaped ones are explicit,
	// including shaped monlist bursts.
	if byVec[""] == 0 || byVec[reflector.Monlist] == 0 {
		t.Fatalf("campaign mix missing classic or shaped-monlist entries: %v", byVec)
	}
	if byVec[reflector.DNSANY] == 0 || byVec[reflector.SSDP] == 0 || byVec[reflector.Chargen] == 0 {
		t.Fatalf("no extra-vector campaigns launched: %v", byVec)
	}

	if res.Detection == nil {
		t.Fatal("detector summary missing")
	}
	var nonNTP int64
	for _, row := range res.Detection.Vectors {
		if row.Vector != "ntp" {
			nonNTP += row.Responses
		}
	}
	if nonNTP == 0 {
		t.Fatalf("detector saw no non-NTP reflections: %+v", res.Detection.Vectors)
	}
}

// TestExtraVectorsAloneDontPerturbCampaigns pins the gating contract from
// the other side: registering reflector populations (zero shaping shares)
// must leave the classic campaign schedule untouched, because every extra
// draw comes from private per-vector streams.
func TestExtraVectorsAloneDontPerturbCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("double run skipped in -short mode")
	}
	cfg := TestConfig()
	cfg.End = time.Date(2014, 1, 10, 0, 0, 0, 0, time.UTC)
	a := Run(cfg)
	cfg.ExtraVectors = []string{"dns-any", "ssdp", "chargen"}
	b := Run(cfg)
	if len(a.World.Launched) != len(b.World.Launched) {
		t.Fatalf("campaign counts diverged: %d vs %d",
			len(a.World.Launched), len(b.World.Launched))
	}
	for i := range a.World.Launched {
		ca, cb := a.World.Launched[i], b.World.Launched[i]
		if ca.Victim != cb.Victim || !ca.Start.Equal(cb.Start) || ca.Vector != cb.Vector {
			t.Fatalf("campaign %d diverged: %+v vs %+v", i, ca, cb)
		}
	}
}
