package scenario

import (
	"testing"
	"time"

	"ntpddos/internal/core"
	"ntpddos/internal/vtime"
)

// runOnce caches one full test-scale run for all tests in this package.
var cachedResults *Results

func results(t *testing.T) *Results {
	t.Helper()
	if testing.Short() {
		t.Skip("scenario run skipped in -short mode")
	}
	if cachedResults == nil {
		cachedResults = Run(TestConfig())
	}
	return cachedResults
}

func TestBuildPopulations(t *testing.T) {
	cfg := TestConfig()
	w := Build(cfg)
	wantAmps := int(float64(cfg.scaled(cfg.InitialAmplifiers)) / (1 - oldImplFraction))
	got := w.NumAmplifiers()
	// Local-site amplifiers (107) and the nine extreme megas add on top.
	if got < wantAmps || got > wantAmps+150 {
		t.Fatalf("built %d amplifiers, want ≈%d", got, wantAmps)
	}
	if len(w.MeritAmps) != 50 || len(w.CSUAmps) != 9 || len(w.FRGPAmps) != 48 {
		t.Fatalf("site amps = %d/%d/%d, want 50/9/48",
			len(w.MeritAmps), len(w.CSUAmps), len(w.FRGPAmps))
	}
	if w.DNSPool.Len() < cfg.scaled(cfg.OpenDNSResolvers)*9/10 {
		t.Fatalf("DNS pool = %d", w.DNSPool.Len())
	}
	// The pool holds a third of the distinct-victim target; sibling
	// expansion at attack time contributes the rest.
	if len(w.victimPool) < cfg.scaled(cfg.UniqueVictims)/3*9/10 {
		t.Fatalf("victim pool = %d", len(w.victimPool))
	}
	if len(w.botAddrs) == 0 {
		t.Fatal("no bots")
	}
}

func TestRunProducesAllSamples(t *testing.T) {
	res := results(t)
	if len(res.MonlistAnalyses) != 15 {
		t.Fatalf("monlist samples = %d, want 15", len(res.MonlistAnalyses))
	}
	if len(res.VersionAnalyses) != 9 {
		t.Fatalf("version samples = %d, want 9", len(res.VersionAnalyses))
	}
	if res.VersionCensus == nil || res.VersionCensus.Total == 0 {
		t.Fatal("no version census")
	}
}

func TestAmplifierDeclineShape(t *testing.T) {
	res := results(t)
	first := len(res.MonlistAnalyses[0].Amps)
	last := len(res.MonlistAnalyses[len(res.MonlistAnalyses)-1].Amps)
	if first == 0 {
		t.Fatal("first sample saw no amplifiers")
	}
	ratio := float64(last) / float64(first)
	// The paper: 1.4M -> 106K, a 92% reduction.
	if ratio > 0.15 {
		t.Fatalf("amplifier pool only declined to %.0f%% of first sample", ratio*100)
	}
	// Version pool barely declines (§3.3: -19%).
	vFirst, vLast := res.VersionPools[0], res.VersionPools[len(res.VersionPools)-1]
	vRatio := float64(vLast) / float64(vFirst)
	if vRatio < 0.70 || vRatio > 1.0 {
		t.Fatalf("version pool ratio = %.2f, want ≈0.81", vRatio)
	}
}

func TestVictimsObserved(t *testing.T) {
	res := results(t)
	total := 0
	for _, a := range res.MonlistAnalyses {
		total += a.VictimSet().Len()
	}
	if total == 0 {
		t.Fatal("no victims observed in any sample")
	}
	vol := core.AggregateVolume(res.MonlistAnalyses, 420)
	if vol.TotalPackets == 0 || vol.UniqueVictims == 0 {
		t.Fatalf("volume = %+v", vol)
	}
}

func TestDarknetOnset(t *testing.T) {
	res := results(t)
	scope := res.World.Telescope
	nov := scope.NTPPackets.At(time.Date(2013, 11, 5, 0, 0, 0, 0, time.UTC))
	march := scope.NTPPackets.At(time.Date(2014, 3, 5, 0, 0, 0, 0, time.UTC))
	if march < nov*5 {
		t.Fatalf("darknet NTP volume did not surge: Nov=%v Mar=%v", nov, march)
	}
	// Scanner uniques must ramp after mid-December (Figure 9).
	before := scope.ScannersOn(time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC))
	after := scope.ScannersOn(time.Date(2014, 2, 15, 0, 0, 0, 0, time.UTC))
	if after <= before {
		t.Fatalf("scanner onset missing: before=%d after=%d", before, after)
	}
}

func TestLocalViewsSeeAttacks(t *testing.T) {
	res := results(t)
	merit := res.World.Views["Merit"]
	if _, ok := merit.EgressNTP.Max(); !ok {
		t.Fatal("Merit saw no NTP egress")
	}
	if len(merit.Victims()) == 0 {
		t.Fatal("Merit saw no victims")
	}
	if len(merit.Amplifiers()) == 0 {
		t.Fatal("Merit saw no local amplifiers")
	}
	frgp := res.World.Views["FRGP"]
	if _, ok := frgp.IngressNTP.Max(); !ok {
		t.Fatal("FRGP saw no NTP ingress (the Feb 10 spike)")
	}
}

func TestTelemetryShape(t *testing.T) {
	res := results(t)
	col := res.World.Collector
	peak, ok := col.PeakNTPDay()
	if !ok {
		t.Fatal("no NTP traffic recorded")
	}
	// Peak must fall in February (the 11th ± slack) and be orders of
	// magnitude above the 1e-5 baseline.
	if peak.Day.Month() != time.February {
		t.Fatalf("peak NTP day = %v, want February", peak.Day)
	}
	if peak.Fraction < 1e-3 {
		t.Fatalf("peak NTP fraction = %v, want >= 0.1%%", peak.Fraction)
	}
	rows := col.AttackFractions()
	if len(rows) < 6 {
		t.Fatalf("attack fraction months = %d", len(rows))
	}
	// February: medium-and-large attacks dominated by NTP (Figure 2's 0.63
	// and 0.70 bars). At test scale only ~15 such attacks exist per month,
	// so assert on the medium class (larger n) and the overall fraction.
	for _, r := range rows {
		if r.Month.Equal(time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)) {
			if r.Medium < 0.3 {
				t.Fatalf("Feb medium NTP fraction = %.2f, want ≈0.63", r.Medium)
			}
			if r.All > 0.4 || r.All < 0.05 {
				t.Fatalf("Feb overall NTP fraction = %.2f, want ≈0.18", r.All)
			}
		}
	}
}

func TestAttackRateCurve(t *testing.T) {
	peak := AttackRateAt(time.Date(2014, 2, 11, 0, 0, 0, 0, time.UTC))
	if peak != 4000 {
		t.Fatalf("peak rate = %v", peak)
	}
	nov := AttackRateAt(time.Date(2013, 11, 15, 0, 0, 0, 0, time.UTC))
	if nov > 10 {
		t.Fatalf("November rate = %v, want near zero", nov)
	}
	if AttackRateAt(vtime.Epoch) != 0 {
		t.Fatal("epoch rate must be 0")
	}
	if AttackRateAt(time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)) != 280 {
		t.Fatal("post-window rate must clamp to the last point")
	}
}

func TestDeterministicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check skipped in -short mode")
	}
	cfg := TestConfig()
	cfg.End = time.Date(2014, 1, 20, 0, 0, 0, 0, time.UTC) // short window
	a := Run(cfg)
	b := Run(cfg)
	if len(a.MonlistAnalyses) != len(b.MonlistAnalyses) {
		t.Fatal("sample counts differ")
	}
	for i := range a.MonlistAnalyses {
		if len(a.MonlistAnalyses[i].Amps) != len(b.MonlistAnalyses[i].Amps) {
			t.Fatalf("sample %d amplifier counts differ", i)
		}
		if len(a.MonlistAnalyses[i].Victims) != len(b.MonlistAnalyses[i].Victims) {
			t.Fatalf("sample %d victim counts differ", i)
		}
	}
	if a.World.Net.Stats() != b.World.Net.Stats() {
		t.Fatalf("fabric stats differ:\n%+v\n%+v", a.World.Net.Stats(), b.World.Net.Stats())
	}
}
