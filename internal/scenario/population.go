package scenario

import (
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
)

// oldImplFraction is the share of amplifiers answering only the mode 7
// implementation value the ONP scanner does not send — the §3.1 blind spot
// (Kührer found ~9% more amplifiers from a second vantage).
const oldImplFraction = 0.09

// infraBatchWeights picks the AS type for a professionally-managed
// amplifier cluster.
var infraBatchWeights = map[asdb.ASType]float64{
	asdb.Hosting: 0.40, asdb.Education: 0.22,
	asdb.Enterprise: 0.26, asdb.CDN: 0.12,
}

// endHostBatchWeights picks the AS type for residential amplifier pools.
var endHostBatchWeights = map[asdb.ASType]float64{
	asdb.Residential: 0.75, asdb.Telecom: 0.25,
}

func (w *World) pickAS(weights map[asdb.ASType]float64) *asdb.AS {
	// Densify the per-type weights once per pick: the weight callback runs
	// for every AS in the registry, and an array index beats a map hash.
	var vec [asdb.NumASTypes]float64
	for t, wt := range weights {
		vec[t] = wt
	}
	return w.DB.PickWeighted(w.Src, func(as *asdb.AS) float64 {
		if as.Name == asdb.NameMerit || as.Name == asdb.NameCSU || as.Name == asdb.NameFRGP {
			return 0 // local sites are populated explicitly
		}
		return vec[as.Type]
	})
}

// pickVulnerableAS selects the AS for a new amplifier batch, strongly
// preferring ASes that already host amplifiers — vulnerability clusters in
// networks running the same distributions and management practices.
func (w *World) pickVulnerableAS(endHost bool) *asdb.AS {
	pool := &w.infraASPool
	weights := infraBatchWeights
	if endHost {
		pool = &w.endASPool
		weights = endHostBatchWeights
	}
	reuse := 0.8
	if w.asPoolFrozen {
		// Post-build arrivals overwhelmingly reappear in networks already
		// known to be vulnerable (DHCP churn, re-exposed hosts): the origin
		// AS count must *shrink* under remediation (§6.1: 15.1K -> 6.8K),
		// which it cannot if arrivals keep seeding fresh ASes.
		reuse = 0.99
	}
	if len(*pool) > 0 && w.Src.Bool(reuse) {
		return (*pool)[w.Src.IntN(len(*pool))]
	}
	as := w.pickAS(weights)
	if as != nil {
		*pool = append(*pool, as)
	}
	return as
}

// placeBatch creates n daemons in one announced block of one AS, returning
// the created servers. Addresses are consecutive from a random offset —
// "large groups of closely-addressed (and, thus, likely managed together)
// server machines" (§3.1).
func (w *World) placeBatch(as *asdb.AS, n int, build func(addr netaddr.Addr) *ntpd.Server) []*server {
	if len(as.Announced) == 0 || n <= 0 {
		return nil
	}
	block := as.Announced[w.Src.IntN(len(as.Announced))]
	span := block.NumAddrs()
	// Retry a few offsets: a random consecutive run can land entirely on an
	// earlier batch, and one empty placement must not starve the build.
	offset := w.Src.Uint64N(span)
	for try := 0; try < 8; try++ {
		if _, taken := w.Servers[block.Nth(offset)]; !taken {
			break
		}
		offset = w.Src.Uint64N(span)
	}
	batchID := w.nextBatch
	w.nextBatch++
	var out []*server
	for i := 0; i < n; i++ {
		addr := block.Nth((offset + uint64(i)) % span)
		if _, taken := w.Servers[addr]; taken {
			continue
		}
		// Register replaces bindings, so an address already carrying a
		// non-daemon host (a survey prober, a honeypot sensor) must be
		// skipped, not clobbered. The check consumes no randomness.
		if w.Net.IsRegistered(addr) {
			continue
		}
		s := &server{
			srv:     build(addr),
			as:      as,
			batch:   batchID,
			endHost: w.PBL.IsEndHost(addr),
		}
		w.Servers[addr] = s
		w.Net.Register(addr, s.srv)
		w.batches[batchID] = append(w.batches[batchID], s)
		out = append(out, s)
	}
	return out
}

// newAmplifierConfig draws a vulnerable daemon's configuration.
func (w *World) newAmplifierConfig(addr netaddr.Addr, role ntpd.Role) ntpd.Config {
	profile := ntpd.SampleProfile(w.Src, role)
	stratum := 2 + w.Src.IntN(5)
	if w.Src.Bool(0.19) { // §3.3: 19% unsynchronized
		stratum = ntp.StratumUnsynchronized
	}
	impl := uint8(ntp.ImplXNTPD)
	if w.Src.Bool(oldImplFraction) {
		impl = ntp.ImplXNTPDOld
	}
	reqCode := uint8(ntp.ReqMonGetList1)
	if w.Src.Bool(0.3) {
		reqCode = ntp.ReqMonGetList // older daemons serve the legacy format
	}
	// A handful of upstream peers, disclosed by the mode 7 peer-list
	// command (§3.1's low-amplification alternative).
	peers := make([]netaddr.Addr, 1+w.Src.IntN(5))
	for i := range peers {
		peers[i] = netaddr.Addr(w.Src.Uint32())
	}
	return ntpd.Config{
		Addr:           addr,
		Stratum:        stratum,
		Profile:        profile,
		Peers:          peers,
		MonlistEnabled: true,
		// Only around a third of amplifiers also answer control queries —
		// the mix that keeps the blended Table 2 "All NTP" column
		// cisco-dominated.
		Mode6Enabled:   w.Src.Bool(0.35),
		Implementation: impl,
		ReqCode:        reqCode,
		ExtraVarBytes:  w.extraVarBytes(),
		Metrics:        w.ntpdM,
	}
}

// extraVarBytes draws the readvar response padding: a log-normal spread
// that produces the paper's version BAF quartiles of ≈3.5/4.6/6.9.
func (w *World) extraVarBytes() int {
	n := int(w.Src.LogNormal(5.2, 0.8)) // median ≈180B of extra variables
	if n > 6000 {
		n = 6000
	}
	return n
}

// drawClientTableSize draws a daemon's steady-state client count:
// median 6, mean ≈70 (§4.1), capped below the 600-entry table limit.
func (w *World) drawClientTableSize() int {
	// Median ~4 honest clients; survey probes and scanners add the couple
	// of entries that take the observed median table to the paper's 6.
	n := int(w.Src.LogNormal(1.3, 2.0))
	if n < 1 {
		n = 1
	}
	if n > 590 {
		n = 590
	}
	return n
}

// registerAmplifier finalizes amplifier bookkeeping for a server.
func (w *World) registerAmplifier(s *server) {
	if s.srv.Config().Implementation == ntp.ImplXNTPDOld {
		s.onlyOldImpl = true
	}
	s.clientTableSize = w.drawClientTableSize()
	w.amplifiers[s.srv.Addr()] = s
	w.ampList = nil
	if w.Src.Bool(0.092) { // §6.2: 9.2% of monlist uniques are open resolvers
		w.DNSPool.Add(s.srv.Addr())
	}
}

// buildServers creates the scaled global population: monlist amplifiers
// plus plain version-only responders. Daemons answering neither mode 6 nor
// mode 7 are invisible to every measurement in the paper and are therefore
// not materialized.
func (w *World) buildServers() {
	cfg := w.Cfg
	// Inflate the build pool so that the ONP-visible subset (those
	// accepting the probed implementation value) matches Table 1.
	nAmps := int(float64(cfg.scaled(cfg.InitialAmplifiers)) / (1 - oldImplFraction))
	// Residential-batch share chosen so the realized PBL-labeled fraction
	// (including enterprise leakage) lands at Table 1's 18.5%.
	endHostTarget := 0.36

	placed, emptyBatches := 0, 0
	for placed < nAmps {
		wantEndHost := w.Src.Bool(endHostTarget)
		as := w.pickVulnerableAS(wantEndHost)
		var size int
		if wantEndHost {
			size = 4 + w.Src.IntN(16)
		} else {
			size = 8 + w.Src.IntN(28)
		}
		if as == nil {
			break
		}
		if size > nAmps-placed {
			size = nAmps - placed
		}
		batch := w.placeBatch(as, size, func(addr netaddr.Addr) *ntpd.Server {
			return ntpd.New(w.newAmplifierConfig(addr, ntpd.RoleAmplifier))
		})
		for _, s := range batch {
			w.registerAmplifier(s)
		}
		placed += len(batch)
		if len(batch) == 0 {
			emptyBatches++
			if emptyBatches > 100 {
				break // address space genuinely exhausted
			}
		}
	}

	// Mega amplifiers: moderate (>100KB) repeaters spread across the pool.
	w.assignMegas()

	// Plain mode 6 responders (the ~4M version pool beyond the amplifiers).
	nPlain := cfg.scaled(cfg.Mode6Responders) - len(w.amplifiers)
	placedPlain, emptyPlain := 0, 0
	for placedPlain < nPlain {
		as := w.pickAS(map[asdb.ASType]float64{
			// Half the version pool reports "cisco": network gear.
			asdb.Telecom: 0.40, asdb.Enterprise: 0.25, asdb.Hosting: 0.15,
			asdb.Education: 0.10, asdb.CDN: 0.05, asdb.Residential: 0.05,
		})
		if as == nil {
			break
		}
		size := 5 + w.Src.IntN(30)
		if size > nPlain-placedPlain {
			size = nPlain - placedPlain
		}
		batch := w.placeBatch(as, size, func(addr netaddr.Addr) *ntpd.Server {
			profile := ntpd.SampleProfile(w.Src, ntpd.RolePlain)
			stratum := 2 + w.Src.IntN(5)
			if w.Src.Bool(0.19) {
				stratum = ntp.StratumUnsynchronized
			}
			return ntpd.New(ntpd.Config{
				Addr: addr, Stratum: stratum, Profile: profile,
				MonlistEnabled: false, Mode6Enabled: true,
				ExtraVarBytes: w.extraVarBytes(),
				Metrics:       w.ntpdM,
			})
		})
		placedPlain += len(batch)
		if len(batch) == 0 {
			emptyPlain++
			if emptyPlain > 100 {
				break
			}
		}
	}
}

// assignMegas converts a sample of amplifiers into §3.4 mega amplifiers and
// plants the nine extreme repeaters in Japan.
func (w *World) assignMegas() {
	nModerate := w.Cfg.scaled(w.Cfg.MegaAmplifiers)
	addrs := w.AmplifierList()
	if len(addrs) == 0 {
		return
	}
	perm := w.Src.Perm(len(addrs))
	for i := 0; i < nModerate && i < len(perm); i++ {
		s := w.amplifiers[addrs[perm[i]]]
		w.makeMega(s, int64(w.Src.Pareto(800, 1.1)), ntpd.RoleMegaAmp)
	}
	// The nine extreme megas: all in Japan (§3.4), replying with millions
	// of packets per probe.
	jp := w.DB.ByName("OCN-JP")
	batch := w.placeBatch(jp, w.Cfg.ExtremeMegas, func(addr netaddr.Addr) *ntpd.Server {
		cfg := w.newAmplifierConfig(addr, ntpd.RoleMegaAmp)
		cfg.Implementation = ntp.ImplXNTPD // extremes are all ONP-visible
		return ntpd.New(cfg)
	})
	for _, s := range batch {
		w.registerAmplifier(s)
		w.ExtremeMegaAddrs = append(w.ExtremeMegaAddrs, s.srv.Addr())
		repeats := int64(2e6) + int64(w.Src.Pareto(1, 1.5)*3e6)
		if repeats > 3e7 {
			repeats = 3e7
		}
		w.makeMega(s, repeats, ntpd.RoleMegaAmp)
		// Extreme megas carry history: their tables are far from empty, so
		// each replay is a multi-fragment burst (gigabytes per probe).
		for i := 0; i < 100; i++ {
			s.srv.Record(netaddr.Addr(w.Src.Uint32()), ntp.Port, ntp.ModeClient, 4, 1+int64(w.Src.IntN(50)), w.Clock.Now())
		}
	}
}

func (w *World) makeMega(s *server, repeats int64, role ntpd.Role) {
	// The rebuilt daemon starts with an empty monitor table; release the old
	// table's contribution to the MRU-entries gauge before discarding it.
	s.srv.DetachMRU()
	cfg := s.srv.Config()
	cfg.MegaAmp = true
	cfg.MegaRepeats = repeats
	cfg.MegaEvents = 50
	cfg.MegaInterval = 2 * time.Second
	cfg.Profile = ntpd.SampleProfile(w.Src, role)
	rebuilt := ntpd.New(cfg)
	s.srv = rebuilt
	w.Servers[cfg.Addr] = s
	w.Net.Register(cfg.Addr, rebuilt)
	w.amplifiers[cfg.Addr] = s
	w.ampList = nil
	w.MegaAddrs.Add(cfg.Addr)
}

// localSite tags and creates the §7 site amplifiers (absolute counts —
// local populations are never scaled).
func (w *World) buildLocalAmplifiers(merit, csu, frgp *asdb.AS) {
	place := func(as *asdb.AS, site string, n int, out *[]netaddr.Addr) {
		for len(*out) < n {
			batch := w.placeBatch(as, min(n-len(*out), 5+w.Src.IntN(10)), func(addr netaddr.Addr) *ntpd.Server {
				cfg := w.newAmplifierConfig(addr, ntpd.RoleAmplifier)
				cfg.Implementation = ntp.ImplXNTPD
				return ntpd.New(cfg)
			})
			if len(batch) == 0 {
				return
			}
			for _, s := range batch {
				s.site = site
				w.registerAmplifier(s)
				*out = append(*out, s.srv.Addr())
			}
		}
	}
	place(merit, "Merit", 50, &w.MeritAmps)
	place(csu, "CSU", 9, &w.CSUAmps)
	place(frgp, "FRGP", 48, &w.FRGPAmps)
}

// buildVictims creates the victim pool: roughly half end hosts (gamers on
// residential lines) and half hosted infrastructure, with OVH — the
// paper's top victim AS — heavily over-represented.
func (w *World) buildVictims() {
	// The pool holds the primary targets; sibling-block expansion at attack
	// time (§4.3.4) contributes the remaining distinct victim IPs, so the
	// pool is a third of the distinct-victims target.
	n := w.Cfg.scaled(w.Cfg.UniqueVictims) / 3
	if n < 30 {
		n = 30
	}
	ovh := w.DB.ByName(asdb.NameOVH)
	// OVH heads the pool: the Zipf-ranked draw concentrates repeat attacks
	// on these entries, making OVH the top victim AS (§4.4) at any scale.
	nOVH := n / 15
	if nOVH < 3 {
		nOVH = 3
	}
	for i := 0; i < nOVH; i++ {
		w.victimPool = append(w.victimPool, victimSpec{addr: ovh.RandomAddr(w.Src)})
	}
	for len(w.victimPool) < n {
		if w.Src.Bool(0.5) {
			as := w.pickAS(endHostBatchWeights)
			if as == nil {
				break
			}
			w.victimPool = append(w.victimPool, victimSpec{addr: as.RandomAddr(w.Src), endHost: true})
		} else {
			as := w.pickAS(map[asdb.ASType]float64{
				asdb.Hosting: 0.6, asdb.Telecom: 0.2, asdb.Enterprise: 0.1, asdb.CDN: 0.1,
			})
			if as == nil {
				break
			}
			w.victimPool = append(w.victimPool, victimSpec{addr: as.RandomAddr(w.Src)})
		}
	}
}

// buildAttackers creates bot fleets (in spoofing-capable networks) and the
// scanner populations.
func (w *World) buildAttackers() {
	for len(w.botAddrs) < 200 {
		as := w.DB.PickWeighted(w.Src, func(as *asdb.AS) float64 {
			if !as.AllowsSpoofing {
				return 0
			}
			return endHostBatchWeights[as.Type] + 0.1
		})
		if as == nil {
			break
		}
		w.botAddrs = append(w.botAddrs, as.RandomAddr(w.Src))
	}
	// Research scanners: the ONP prober plus university survey projects.
	w.ONPAddr = w.DB.ByName("ServerCentral-US").RandomAddr(w.Src)
	w.researchIPs = append(w.researchIPs, w.ONPAddr)
	for i := 0; i < 12; i++ {
		as := w.pickAS(map[asdb.ASType]float64{asdb.Education: 1})
		if as == nil {
			break
		}
		w.researchIPs = append(w.researchIPs, as.RandomAddr(w.Src))
	}
	for _, a := range w.researchIPs {
		w.Telescope.RegisterBenign(a)
	}
	// Malicious scanners appear over time; pre-draw their addresses.
	for i := 0; i < 60; i++ {
		as := w.DB.PickWeighted(w.Src, func(as *asdb.AS) float64 {
			return infraBatchWeights[as.Type] + endHostBatchWeights[as.Type]
		})
		if as == nil {
			break
		}
		w.maliciousIPs = append(w.maliciousIPs, as.RandomAddr(w.Src))
	}
}

// buildDNSPool fills the open-resolver set to its scaled size (amplifier
// overlap was added during registration).
func (w *World) buildDNSPool() {
	target := w.Cfg.scaled(w.Cfg.OpenDNSResolvers)
	for w.DNSPool.Len() < target {
		as := w.pickAS(map[asdb.ASType]float64{
			asdb.Residential: 0.5, asdb.Telecom: 0.3, asdb.Enterprise: 0.2,
		})
		if as == nil {
			return
		}
		// Resolver pools cluster on CPE ranges.
		for i := 0; i < 50 && w.DNSPool.Len() < target; i++ {
			w.DNSPool.Add(as.RandomAddr(w.Src))
		}
	}
}
