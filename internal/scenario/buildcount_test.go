package scenario

import "testing"

func TestBuildCountsAtScales(t *testing.T) {
	for _, scale := range []int{400, 1000, 2000} {
		cfg := DefaultConfig()
		cfg.Scale = scale
		w := Build(cfg)
		want := int(float64(cfg.scaled(cfg.InitialAmplifiers)) / (1 - oldImplFraction))
		got := w.NumAmplifiers()
		if got < want || got > want+200 {
			t.Fatalf("scale %d: built %d amplifiers, want >= %d", scale, got, want)
		}
	}
}
