package ispview

import (
	"testing"
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/attack"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

// fixture builds a world where Merit hosts one vulnerable amplifier and an
// external booter attacks an external victim through it.
type fixture struct {
	nw     *netsim.Network
	sched  *vtime.Scheduler
	db     *asdb.DB
	view   *View
	amp    *ntpd.Server
	victim netaddr.Addr
	engine *attack.Engine
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	db := asdb.Build(rng.New(11), asdb.Config{NumASes: 50, SpooferFraction: 1})
	merit := db.ByName(asdb.NameMerit)
	view := New("Merit", db, merit)
	nw.AddTap(view)

	ampAddr := merit.Prefixes[0].Nth(100)
	amp := ntpd.New(ntpd.Config{Addr: ampAddr, MonlistEnabled: true,
		Profile: ntpd.Profile{TTL: 64, SystemString: "linux"}})
	nw.Register(ampAddr, amp)

	victim := db.ByName("OCN-JP").Prefixes[0].Nth(500)
	engine := attack.NewEngine(nw, rng.New(12), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	return &fixture{nw: nw, sched: sched, db: db, view: view, amp: amp,
		victim: victim, engine: engine}
}

func (f *fixture) runAttack(rate float64, dur time.Duration, prime int) {
	f.engine.Launch(attack.Campaign{
		Victim: f.victim, Port: 80,
		Start: f.nw.Now().Add(time.Hour), Duration: dur,
		TriggerRate: rate, Amplifiers: []netaddr.Addr{f.amp.Addr()},
		PrimeSources: prime,
	})
	f.sched.Drain()
}

func TestViewContains(t *testing.T) {
	f := newFixture(t)
	if !f.view.Contains(f.amp.Addr()) {
		t.Fatal("view must contain its own amplifier")
	}
	if f.view.Contains(f.victim) {
		t.Fatal("view must not contain the external victim")
	}
}

func TestAttackProducesVictimAndAmplifier(t *testing.T) {
	f := newFixture(t)
	f.runAttack(2000, 2*time.Hour, 300)

	amps := f.view.Amplifiers()
	if len(amps) != 1 {
		t.Fatalf("view found %d amplifiers, want 1", len(amps))
	}
	a := amps[0]
	if a.Addr != f.amp.Addr() {
		t.Fatalf("amplifier = %v", a.Addr)
	}
	if a.BAF() <= AmplifierMinRatio {
		t.Fatalf("amplifier BAF = %.1f", a.BAF())
	}
	if !a.Victims.Has(f.victim) {
		t.Fatal("amplifier victim set missing the victim")
	}

	vics := f.view.Victims()
	if len(vics) != 1 || vics[0].Addr != f.victim {
		t.Fatalf("victims = %+v", vics)
	}
	v := vics[0]
	if v.PayloadIn < VictimMinBytes {
		t.Fatalf("victim payload = %d", v.PayloadIn)
	}
	if v.BAF() < VictimMinRatio {
		t.Fatalf("victim BAF = %.1f", v.BAF())
	}
	if top := v.Ports.TopK(1); len(top) == 0 || top[0].Value != 80 {
		t.Fatalf("victim ports = %+v", top)
	}
	if v.DurationHours() < 1 {
		t.Fatalf("attack duration = %.2f h", v.DurationHours())
	}
	if v.Hourly.Len() < 2 {
		t.Fatal("victim hourly series too short")
	}
}

func TestVictimASNLookup(t *testing.T) {
	f := newFixture(t)
	asn, country := f.view.OwnerASN(f.victim)
	if asn != 4713 || country != "JP" {
		t.Fatalf("victim attribution = AS%d %s, want AS4713 JP", asn, country)
	}
}

func TestEgressIngressSeries(t *testing.T) {
	f := newFixture(t)
	f.runAttack(1000, time.Hour, 100)
	if _, ok := f.view.EgressNTP.Max(); !ok {
		t.Fatal("no egress NTP recorded")
	}
	if _, ok := f.view.IngressNTP.Max(); !ok {
		t.Fatal("no ingress NTP recorded")
	}
	eg, _ := f.view.EgressNTP.Max()
	ing, _ := f.view.IngressNTP.Max()
	if eg.Value <= ing.Value {
		t.Fatalf("egress (%v) must dwarf ingress (%v) during reflection", eg.Value, ing.Value)
	}
}

func TestTriggerTTLFingerprint(t *testing.T) {
	f := newFixture(t)
	f.runAttack(1000, time.Hour, 0)
	mode, _, ok := f.view.TriggerTTL.Mode()
	if !ok {
		t.Fatal("no trigger TTLs observed")
	}
	if mode < 105 || mode > 120 {
		t.Fatalf("trigger TTL mode = %d, want Windows band (105-120)", mode)
	}
}

func TestScannerClassification(t *testing.T) {
	f := newFixture(t)
	// A research scanner (Linux TTL, single probes) sweeps the amplifier.
	scanner := netaddr.MustParseAddr("141.212.1.1")
	probe := ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)
	f.nw.SendUDP(scanner, 40000, f.amp.Addr(), ntp.Port, netsim.TTLLinux, probe)
	f.sched.Drain()
	scanners := f.view.Scanners()
	if len(scanners) != 1 || scanners[0].Addr != scanner {
		t.Fatalf("scanners = %+v", scanners)
	}
	mode, _, _ := f.view.ScanTTL.Mode()
	if mode < 41 || mode > 56 {
		t.Fatalf("scan TTL mode = %d, want Linux band (41-56)", mode)
	}
	if f.view.ScannerSet().Len() != 1 {
		t.Fatal("ScannerSet mismatch")
	}
}

func TestVictimThresholdFiltersLowVolume(t *testing.T) {
	f := newFixture(t)
	// A tiny attack: 1 pps for 1 minute through an unprimed (single-entry)
	// table produces well under 100 KB toward the victim.
	f.runAttack(1, time.Minute, 0)
	if len(f.view.Victims()) != 0 {
		t.Fatalf("sub-threshold victim reported: %+v", f.view.Victims()[0])
	}
	if len(f.view.Amplifiers()) != 0 {
		t.Fatal("sub-threshold amplifier reported")
	}
}

func TestBilling95RisesDuringAttack(t *testing.T) {
	f := newFixture(t)
	quietFrom := f.nw.Now()
	f.sched.RunUntil(f.nw.Now().Add(24 * time.Hour))
	quietTo := f.nw.Now()
	before := f.view.Billed95(quietFrom, quietTo)

	attackFrom := f.nw.Now()
	f.runAttack(5000, 20*time.Hour, 300)
	after := f.view.Billed95(attackFrom, f.nw.Now())
	if after <= before {
		t.Fatalf("95th-pct billing did not rise: before=%v after=%v", before, after)
	}
}

func TestAddBaselineAndProtoMix(t *testing.T) {
	f := newFixture(t)
	from := f.nw.Now()
	f.view.AddBaseline("http", from, from.Add(10*time.Hour), 1e9)
	ts := f.view.ProtoBytes["http"]
	if ts == nil || ts.Len() != 10 {
		t.Fatalf("http baseline buckets = %v", ts)
	}
	f.runAttack(1000, time.Hour, 100)
	if f.view.ProtoBytes["ntp"] == nil {
		t.Fatal("no ntp protocol bytes recorded")
	}
}

func TestPairVolume(t *testing.T) {
	f := newFixture(t)
	f.runAttack(1000, time.Hour, 100)
	payload, wire, packets := f.view.PairVolume(f.amp.Addr(), f.victim)
	if payload == 0 || wire <= payload || packets == 0 {
		t.Fatalf("pair volume = %d/%d/%d", payload, wire, packets)
	}
	if p, _, _ := f.view.PairVolume(f.victim, f.amp.Addr()); p != 0 {
		t.Fatal("reversed pair must be empty")
	}
}
