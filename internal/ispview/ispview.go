// Package ispview implements the §7 regional-network vantage points: flow
// and packet-level taps over one ISP's address space (Merit, FRGP, CSU in
// the paper). A view classifies traffic crossing its border and derives the
// paper's local analyses — NTP volume time series (Figures 11/12), top
// victims and amplifiers (Tables 5/6, Figure 13), protocol mix (Figure 14),
// cross-site victim/scanner overlap (Figures 15/16), TTL fingerprints
// (§7.2), and the 95th-percentile billing impact (§7.1).
package ispview

import (
	"sort"
	"time"

	"ntpddos/internal/asdb"
	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

// Metrics is the per-site flow-tap instrumentation, labeled by site name so
// Merit, FRGP and CSU share one registry. Each View resolves its children
// once at SetMetrics, keeping the tap path free of map lookups.
type Metrics struct {
	Packets      *metrics.CounterVec // border-crossing packets observed
	IngressBytes *metrics.CounterVec // on-wire NTP bytes inbound (dport 123)
	EgressBytes  *metrics.CounterVec // on-wire NTP bytes outbound (sport 123)
	Amplifiers   *metrics.GaugeVec   // internal amplifier candidates tracked
	Victims      *metrics.GaugeVec   // external victim candidates tracked
	Scanners     *metrics.GaugeVec   // external scanner sources tracked
}

// NewMetrics registers the ispview family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Packets: r.NewCounterVec("ntpsim_ispview_packets_total",
			"Rep-weighted border-crossing packets the site's tap classified.",
			"site"),
		IngressBytes: r.NewCounterVec("ntpsim_ispview_ingress_ntp_bytes_total",
			"On-wire NTP bytes entering the site (udp dport 123).", "site"),
		EgressBytes: r.NewCounterVec("ntpsim_ispview_egress_ntp_bytes_total",
			"On-wire NTP bytes leaving the site (udp sport 123).", "site"),
		Amplifiers: r.NewGaugeVec("ntpsim_ispview_amplifier_candidates",
			"Internal hosts with amplifier-pattern traffic being tracked.", "site"),
		Victims: r.NewGaugeVec("ntpsim_ispview_victim_candidates",
			"External hosts with victim-pattern traffic being tracked.", "site"),
		Scanners: r.NewGaugeVec("ntpsim_ispview_scanner_sources",
			"External probing sources being tracked.", "site"),
	}
}

// Thresholds from the paper's footnote 3 (following Rossow): a victim is a
// client receiving at least 100 KB from an amplifier with an
// amplifier-bytes-to-bytes-sent ratio of at least 100; an amplifier sent at
// least 10 MB with a sent/received ratio above 5.
const (
	VictimMinBytes    = 100 << 10
	VictimMinRatio    = 100
	AmplifierMinBytes = 10 << 20
	AmplifierMinRatio = 5
)

// AmpStats accumulates per-internal-amplifier traffic.
type AmpStats struct {
	Addr netaddr.Addr
	// PayloadIn/PayloadOut are UDP payload bytes (the footnote's BAF is a
	// UDP payload ratio); WireOut is on-wire for volume reporting.
	PayloadIn  int64
	PayloadOut int64
	WireOut    int64
	Victims    netaddr.Set
	perVictim  map[netaddr.Addr]*pairStats

	// Attack traffic arrives in long same-victim runs; remembering the last
	// pair looked up skips the map (and the Victims set insert — a cache hit
	// proves membership). Entries are never removed, so the pointer cannot
	// go stale.
	lastVictim netaddr.Addr
	lastPair   *pairStats
}

type pairStats struct {
	payloadOut int64
	wireOut    int64
	packets    int64
	first      time.Time
	last       time.Time
}

// BAF returns the amplifier's payload amplification ratio.
func (a *AmpStats) BAF() float64 {
	if a.PayloadIn == 0 {
		return 0
	}
	return float64(a.PayloadOut) / float64(a.PayloadIn)
}

// VictimStats accumulates per-external-victim traffic from this site's
// amplifiers.
type VictimStats struct {
	Addr       netaddr.Addr
	PayloadIn  int64 // amplified payload bytes the victim received
	WireIn     int64
	Packets    int64
	TriggerOut int64 // payload bytes of the victim's (spoofed) triggers
	Amplifiers netaddr.Set
	// lastAmp short-circuits Amplifiers.Add for the same-amplifier runs
	// attack reflection produces.
	lastAmp   netaddr.Addr
	lastAmpOK bool
	First     time.Time
	Last      time.Time
	Ports     *stats.Histogram
	// Hourly is the victim's received on-wire volume per hour — one line of
	// Figure 13's stacked top-victims chart.
	Hourly *stats.TimeSeries
}

// BAF is the victim-side payload ratio (bytes received / trigger bytes).
func (v *VictimStats) BAF() float64 {
	if v.TriggerOut == 0 {
		return 0
	}
	return float64(v.PayloadIn) / float64(v.TriggerOut)
}

// DurationHours is the observed attack span against this victim.
func (v *VictimStats) DurationHours() float64 {
	return v.Last.Sub(v.First).Hours()
}

// ScannerStats tracks one external source probing the site.
type ScannerStats struct {
	Addr    netaddr.Addr
	Packets int64
	Dsts    netaddr.Set
	First   time.Time
	Last    time.Time
}

// View is one regional network's tap. It implements netsim.Tap.
type View struct {
	Name string

	db       *asdb.DB
	prefixes []netaddr.Prefix

	// IngressNTP and EgressNTP are on-wire byte series at hourly buckets:
	// the Figure 11/12 lines (udp dport=123 and udp sport=123).
	IngressNTP *stats.TimeSeries
	EgressNTP  *stats.TimeSeries
	// ProtoBytes feeds Figure 14's stacked protocol mix. Simulated packets
	// contribute "ntp"/"dns"; baselines come from AddBaseline.
	ProtoBytes map[string]*stats.TimeSeries

	amps     map[netaddr.Addr]*AmpStats
	victims  map[netaddr.Addr]*VictimStats
	scanners map[netaddr.Addr]*ScannerStats

	// ScanTTL and TriggerTTL are the §7.2 fingerprint histograms of
	// received TTLs for scanner probes vs. spoofed attack triggers.
	ScanTTL    *stats.Histogram
	TriggerTTL *stats.Histogram

	// billingBucket collects hourly total on-wire volumes (simulated
	// traffic plus baselines) for the 95th-percentile transit billing
	// model.
	billingBucket *stats.TimeSeries

	// Lazily resolved ProtoBytes entries for the three classes the packet
	// tap can emit, so Observe skips the string-keyed map lookup per packet.
	ntpSeries, dnsSeries, otherSeries *stats.TimeSeries

	// Last amp/victim lookups memoized for the same-flow packet runs the
	// attack engine emits. amps and victims entries are never removed, so
	// the cached pointers cannot go stale.
	lastAmpAddr netaddr.Addr
	lastAmp     *AmpStats
	lastVicAddr netaddr.Addr
	lastVic     *VictimStats

	// Pre-resolved metric children for this site (nil when detached).
	mPackets  *metrics.Counter
	mIngress  *metrics.Counter
	mEgress   *metrics.Counter
	mAmps     *metrics.Gauge
	mVictims  *metrics.Gauge
	mScanners *metrics.Gauge
}

// SetMetrics attaches live instrumentation under this view's site name.
func (v *View) SetMetrics(m *Metrics) {
	if m == nil {
		v.mPackets, v.mIngress, v.mEgress = nil, nil, nil
		v.mAmps, v.mVictims, v.mScanners = nil, nil, nil
		return
	}
	v.mPackets = m.Packets.With(v.Name)
	v.mIngress = m.IngressBytes.With(v.Name)
	v.mEgress = m.EgressBytes.With(v.Name)
	v.mAmps = m.Amplifiers.With(v.Name)
	v.mVictims = m.Victims.With(v.Name)
	v.mScanners = m.Scanners.With(v.Name)
}

// New builds a view over the given ASes' allocations.
func New(name string, db *asdb.DB, ases ...*asdb.AS) *View {
	v := &View{
		Name:          name,
		db:            db,
		IngressNTP:    stats.NewTimeSeries(vtime.Epoch, time.Hour),
		EgressNTP:     stats.NewTimeSeries(vtime.Epoch, time.Hour),
		ProtoBytes:    make(map[string]*stats.TimeSeries),
		amps:          make(map[netaddr.Addr]*AmpStats),
		victims:       make(map[netaddr.Addr]*VictimStats),
		scanners:      make(map[netaddr.Addr]*ScannerStats),
		ScanTTL:       stats.NewHistogram(),
		TriggerTTL:    stats.NewHistogram(),
		billingBucket: stats.NewTimeSeries(vtime.Epoch, time.Hour),
	}
	for _, as := range ases {
		v.prefixes = append(v.prefixes, as.Prefixes...)
	}
	return v
}

// Contains reports whether an address is inside the view's network.
func (v *View) Contains(a netaddr.Addr) bool {
	for _, p := range v.prefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// protoSeries returns the ProtoBytes series for the packet's class, caching
// the resolved pointer (creation still goes through addProto so the map
// stays the single source of truth for reports).
func (v *View) protoSeries(dg *packet.Datagram) *stats.TimeSeries {
	switch {
	case dg.UDP.SrcPort == ntp.Port || dg.UDP.DstPort == ntp.Port:
		if v.ntpSeries == nil {
			v.ntpSeries = v.protoEntry("ntp")
		}
		return v.ntpSeries
	case dg.UDP.SrcPort == 53 || dg.UDP.DstPort == 53:
		if v.dnsSeries == nil {
			v.dnsSeries = v.protoEntry("dns")
		}
		return v.dnsSeries
	default:
		if v.otherSeries == nil {
			v.otherSeries = v.protoEntry("other")
		}
		return v.otherSeries
	}
}

func (v *View) protoEntry(name string) *stats.TimeSeries {
	ts, ok := v.ProtoBytes[name]
	if !ok {
		ts = stats.NewTimeSeries(vtime.Epoch, time.Hour)
		v.ProtoBytes[name] = ts
	}
	return ts
}

func (v *View) addProto(name string, now time.Time, bytes float64) {
	v.protoEntry(name).Add(now, bytes)
}

// AddBaseline injects background (non-simulated) traffic volume for a
// protocol class over [from, to) at the given bytes/hour — the HTTP/HTTPS
// floors of Figure 14.
func (v *View) AddBaseline(proto string, from, to time.Time, bytesPerHour float64) {
	for t := from; t.Before(to); t = t.Add(time.Hour) {
		v.addProto(proto, t, bytesPerHour)
		v.billingBucket.Add(t, bytesPerHour)
	}
}

// Observe implements netsim.Tap.
func (v *View) Observe(dg *packet.Datagram, now time.Time) {
	srcIn := v.Contains(dg.IP.Src)
	dstIn := v.Contains(dg.IP.Dst)
	if !srcIn && !dstIn {
		return
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	wire := int64(dg.OnWire()) * rep
	payload := int64(len(dg.Payload)) * rep
	v.protoSeries(dg).Add(now, float64(wire))
	v.billingBucket.Add(now, float64(wire))
	v.mPackets.Add(rep)

	isNTP := dg.UDP.SrcPort == ntp.Port || dg.UDP.DstPort == ntp.Port
	if !isNTP {
		return
	}
	mode, _ := ntp.Mode(dg.Payload)

	// Egress NTP: our host answering (sport=123) toward outside.
	if srcIn && !dstIn && dg.UDP.SrcPort == ntp.Port {
		v.EgressNTP.Add(now, float64(wire))
		v.mEgress.Add(wire)
		if mode == ntp.ModePrivate || mode == ntp.ModeControl {
			amp := v.amp(dg.IP.Src)
			amp.PayloadOut += payload
			amp.WireOut += wire
			// pair() maintains amp.Victims: the set gains the victim exactly
			// when the perVictim entry is created.
			ps := amp.pair(dg.IP.Dst, now)
			ps.payloadOut += payload
			ps.wireOut += wire
			ps.packets += rep
			ps.last = now

			vic := v.victim(dg.IP.Dst, now)
			vic.PayloadIn += payload
			vic.WireIn += wire
			vic.Packets += rep
			if !vic.lastAmpOK || vic.lastAmp != dg.IP.Src {
				vic.Amplifiers.Add(dg.IP.Src)
				vic.lastAmp, vic.lastAmpOK = dg.IP.Src, true
			}
			vic.Last = now
			vic.Ports.Add(int(dg.UDP.DstPort), rep)
			vic.Hourly.Add(now, float64(wire))
		}
	}

	// Ingress NTP: outside traffic toward our hosts (dport=123).
	if dstIn && !srcIn && dg.UDP.DstPort == ntp.Port {
		v.IngressNTP.Add(now, float64(wire))
		v.mIngress.Add(wire)
		amp := v.amp(dg.IP.Dst)
		amp.PayloadIn += payload
		if mode == ntp.ModePrivate {
			m, err := ntp.DecodeMode7(dg.Payload)
			if err == nil && !m.Response {
				// Rate separates the two ingress populations: scanners send
				// single probes; attack triggers arrive in high-rate batches
				// (Rep > 1). Spoofed trigger "sources" are the victims.
				if rep > 1 {
					v.TriggerTTL.Add(int(dg.IP.TTL), rep)
					vic := v.victim(dg.IP.Src, now)
					vic.TriggerOut += payload
				} else {
					v.ScanTTL.Add(int(dg.IP.TTL), rep)
					sc, ok := v.scanners[dg.IP.Src]
					if !ok {
						sc = &ScannerStats{Addr: dg.IP.Src, Dsts: netaddr.NewSet(0), First: now}
						v.scanners[dg.IP.Src] = sc
						v.mScanners.SetInt(int64(len(v.scanners)))
					}
					sc.Packets += rep
					sc.Dsts.Add(dg.IP.Dst)
					sc.Last = now
				}
			}
		}
	}
}

func (v *View) amp(a netaddr.Addr) *AmpStats {
	if v.lastAmp != nil && v.lastAmpAddr == a {
		return v.lastAmp
	}
	s, ok := v.amps[a]
	if !ok {
		s = &AmpStats{Addr: a, Victims: netaddr.NewSet(0), perVictim: make(map[netaddr.Addr]*pairStats)}
		v.amps[a] = s
		v.mAmps.SetInt(int64(len(v.amps)))
	}
	v.lastAmpAddr, v.lastAmp = a, s
	return s
}

func (a *AmpStats) pair(victim netaddr.Addr, now time.Time) *pairStats {
	if a.lastPair != nil && a.lastVictim == victim {
		return a.lastPair
	}
	p, ok := a.perVictim[victim]
	if !ok {
		p = &pairStats{first: now, last: now}
		a.perVictim[victim] = p
		a.Victims.Add(victim)
	}
	a.lastVictim, a.lastPair = victim, p
	return p
}

func (v *View) victim(a netaddr.Addr, now time.Time) *VictimStats {
	if v.lastVic != nil && v.lastVicAddr == a {
		return v.lastVic
	}
	s, ok := v.victims[a]
	if !ok {
		s = &VictimStats{Addr: a, Amplifiers: netaddr.NewSet(0), First: now, Last: now,
			Ports: stats.NewHistogram(), Hourly: stats.NewTimeSeries(vtime.Epoch, time.Hour)}
		v.victims[a] = s
		v.mVictims.SetInt(int64(len(v.victims)))
	}
	v.lastVicAddr, v.lastVic = a, s
	return s
}

// Amplifiers returns the internal hosts meeting the footnote-3 amplifier
// thresholds, sorted by BAF descending — Table 5's rows.
func (v *View) Amplifiers() []*AmpStats {
	var out []*AmpStats
	for _, a := range v.amps {
		ratio := a.BAF()
		if a.PayloadOut >= AmplifierMinBytes && ratio > AmplifierMinRatio {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BAF() != out[j].BAF() {
			return out[i].BAF() > out[j].BAF()
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Victims returns external hosts meeting the footnote-3 victim thresholds,
// sorted by payload received descending — Table 6 and Figure 13's rows.
func (v *View) Victims() []*VictimStats {
	var out []*VictimStats
	for _, s := range v.victims {
		if s.PayloadIn >= VictimMinBytes &&
			(s.TriggerOut == 0 || s.BAF() >= VictimMinRatio) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PayloadIn != out[j].PayloadIn {
			return out[i].PayloadIn > out[j].PayloadIn
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Scanners returns external probing sources sorted by address.
func (v *View) Scanners() []*ScannerStats {
	out := make([]*ScannerStats, 0, len(v.scanners))
	for _, s := range v.scanners {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// VictimSet returns all victim addresses (unthresholded victims excluded).
func (v *View) VictimSet() netaddr.Set {
	s := netaddr.NewSet(len(v.victims))
	for _, vs := range v.Victims() {
		s.Add(vs.Addr)
	}
	return s
}

// ScannerSet returns all scanner addresses.
func (v *View) ScannerSet() netaddr.Set {
	s := netaddr.NewSet(len(v.scanners))
	for a := range v.scanners {
		s.Add(a)
	}
	return s
}

// OwnerASN returns the origin AS and country of an external address via the
// registry — Table 6's ASN/Country columns.
func (v *View) OwnerASN(a netaddr.Addr) (asn uint32, country string) {
	as := v.db.OwnerOf(a)
	if as == nil {
		return 0, "??"
	}
	return uint32(as.Number), string(as.Country)
}

// Billed95 computes the 95th-percentile billing level (bytes per hourly
// interval) over [from, to). Comparing a pre-attack and an attack month
// quantifies §7.1's "direct measurable costs".
func (v *View) Billed95(from, to time.Time) float64 {
	var samples []float64
	for _, p := range v.billingBucket.Points() {
		if !p.Time.Before(from) && p.Time.Before(to) {
			samples = append(samples, p.Value)
		}
	}
	return stats.Percentile95(samples)
}

// PairSeries returns the hourly on-wire volume an amplifier sent one victim
// — the per-victim stacked lines of Figure 13 are sums of these.
func (v *View) PairVolume(amp, victim netaddr.Addr) (payloadOut, wireOut, packets int64) {
	a, ok := v.amps[amp]
	if !ok {
		return 0, 0, 0
	}
	p, ok := a.perVictim[victim]
	if !ok {
		return 0, 0, 0
	}
	return p.payloadOut, p.wireOut, p.packets
}
