package scan_test

import (
	"testing"
	"testing/quick"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/scan"
	"ntpddos/internal/vtime"
)

func TestPermutationIsFullCycle(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1000, 4096} {
		p := scan.NewPermutation(n, 12345)
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out-of-range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: visited %d values", n, len(seen))
		}
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%2000) + 1
		p := scan.NewPermutation(n, seed)
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationNotIdentity(t *testing.T) {
	p := scan.NewPermutation(1000, 99)
	inOrder := 0
	for i := uint64(0); ; i++ {
		v, ok := p.Next()
		if !ok {
			break
		}
		if v == i {
			inOrder++
		}
	}
	if inOrder > 20 {
		t.Fatalf("%d/1000 elements in identity position; not a scan-friendly shuffle", inOrder)
	}
}

func TestPermutationReset(t *testing.T) {
	p := scan.NewPermutation(50, 3)
	var first []uint64
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	p.Reset()
	for i := range first {
		v, ok := p.Next()
		if !ok || v != first[i] {
			t.Fatalf("reset sequence diverges at %d", i)
		}
	}
}

func harness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

func TestSweepFindsAmplifiers(t *testing.T) {
	nw, sched := harness()
	// Three servers: vulnerable, patched, and a plain (mode-6-only) one.
	vuln := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.10"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	patched := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.11"),
		MonlistEnabled: false, Profile: ntpd.Profile{TTL: 64}})
	plain := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.12"),
		Mode6Enabled: true, Profile: ntpd.Profile{TTL: 255, SystemString: "cisco"}})
	for _, s := range []*ntpd.Server{vuln, patched, plain} {
		nw.Register(s.Addr(), s)
	}
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)

	targets := []netaddr.Addr{vuln.Addr(), patched.Addr(), plain.Addr(),
		netaddr.MustParseAddr("10.0.0.99") /* dark */}
	prober.Sweep(nw, targets, ntp.Port, ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		nw.Now(), time.Minute)
	sched.Drain()

	if prober.Sent != 4 {
		t.Fatalf("sent %d probes, want 4", prober.Sent)
	}
	resp := prober.Responses()
	if len(resp) != 1 {
		t.Fatalf("%d responders, want only the vulnerable server", len(resp))
	}
	r, ok := resp[vuln.Addr()]
	if !ok || r.Packets == 0 || r.Bytes == 0 {
		t.Fatalf("vulnerable server response = %+v", r)
	}
	if len(r.Payloads) == 0 || len(r.TTLs) != len(r.Payloads) {
		t.Fatal("payloads not retained")
	}
}

func TestSurveyWeeklySamples(t *testing.T) {
	nw, sched := harness()
	vuln := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.10"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	nw.Register(vuln.Addr(), vuln)
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)

	survey := &scan.Survey{
		Prober: prober, Network: nw, Kind: "monlist", DstPort: ntp.Port,
		Payload:  ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		Duration: time.Hour,
	}
	targets := []netaddr.Addr{vuln.Addr()}

	s1 := survey.RunSample(nw.Now(), targets)
	if s1.NumResponders() != 1 {
		t.Fatalf("sample 1: %d responders", s1.NumResponders())
	}
	// Patch between samples: the second pass must see zero responders.
	vuln.Patch()
	sched.RunUntil(nw.Now().Add(7 * 24 * time.Hour))
	s2 := survey.RunSample(nw.Now(), targets)
	if s2.NumResponders() != 0 {
		t.Fatalf("sample 2: %d responders after patch", s2.NumResponders())
	}
	if len(survey.Samples) != 2 {
		t.Fatalf("survey kept %d samples", len(survey.Samples))
	}
}

func TestProberRepWeightedAccounting(t *testing.T) {
	nw, sched := harness()
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	sender := netaddr.MustParseAddr("10.0.0.1")
	dg := packet.NewDatagram(sender, 123, prober.Addr, 57915, make([]byte, 100))
	dg.Rep = 50
	nw.SendFrom(sender, dg)
	sched.Drain()
	r := prober.Responses()[sender]
	if r == nil || r.Packets != 50 {
		t.Fatalf("Rep-weighted packets = %+v", r)
	}
	if r.Bytes != int64(dg.OnWire())*50 {
		t.Fatalf("Rep-weighted bytes = %d", r.Bytes)
	}
}

func TestProberPayloadCap(t *testing.T) {
	nw, sched := harness()
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	prober.MaxPayloadsPerTarget = 3
	nw.Register(prober.Addr, prober)
	sender := netaddr.MustParseAddr("10.0.0.1")
	for i := 0; i < 10; i++ {
		nw.SendUDP(sender, 123, prober.Addr, 57915, netsim.TTLLinux, []byte{byte(i)})
	}
	sched.Drain()
	r := prober.Responses()[sender]
	if r.Packets != 10 {
		t.Fatalf("packets = %d", r.Packets)
	}
	if len(r.Payloads) != 3 {
		t.Fatalf("retained %d payloads, cap is 3", len(r.Payloads))
	}
}

func TestSweepSpreadsInTime(t *testing.T) {
	nw, _ := harness()
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	var times []time.Time
	dst := netaddr.MustParseAddr("10.0.0.10")
	nw.Register(dst, netsim.HostFunc(func(_ *netsim.Network, _ *packet.Datagram, now time.Time) {
		times = append(times, now)
	}))
	targets := make([]netaddr.Addr, 100)
	for i := range targets {
		targets[i] = dst // all to one host so we can watch arrival spread
	}
	prober.Sweep(nw, targets, 123, []byte("x"), nw.Now(), 100*time.Second)
	nw.Scheduler().Drain()
	if len(times) != 100 {
		t.Fatalf("%d arrivals", len(times))
	}
	spread := times[len(times)-1].Sub(times[0])
	if spread < 90*time.Second {
		t.Fatalf("probe spread = %v, want ≈100s", spread)
	}
}

func TestShardsPartitionThePermutation(t *testing.T) {
	const size, seed, shards = 1000, 7, 4
	seen := make(map[uint64]int, size)
	for sh := uint64(0); sh < shards; sh++ {
		s := scan.NewShard(size, seed, sh, shards)
		for {
			v, ok := s.Next()
			if !ok {
				break
			}
			seen[v]++
		}
	}
	if len(seen) != size {
		t.Fatalf("shards covered %d of %d indices", len(seen), size)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("index %d appeared %d times across shards", v, n)
		}
	}
}

func TestShardSizesBalanced(t *testing.T) {
	const size, shards = 10000, 8
	counts := make([]int, shards)
	for sh := uint64(0); sh < shards; sh++ {
		s := scan.NewShard(size, 3, sh, shards)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			counts[sh]++
		}
	}
	for sh, n := range counts {
		if n < size/shards-1 || n > size/shards+1 {
			t.Fatalf("shard %d has %d indices, want ~%d", sh, n, size/shards)
		}
	}
}

func TestShardPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shard >= shards accepted")
		}
	}()
	scan.NewShard(100, 1, 4, 4)
}
