package scan

import (
	"io"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/pcap"
)

// WritePCAP persists a survey sample as a libpcap capture of the response
// packets, re-framed exactly as they arrived at the prober: source = the
// probed server, destination = the prober. This is the interchange format
// the real OpenNTPProject shared its data in; core.AnalyzeSamplePCAP reads
// it back (or reads a genuine scan capture).
//
// Rep-batched responses are expanded up to repLimit copies per datagram so
// file sizes stay bounded; pass 1 to keep one packet per real datagram.
func WritePCAP(w io.Writer, sample *Sample, prober netaddr.Addr, proberPort uint16, repLimit int) error {
	pw := pcap.NewWriter(w)
	if repLimit < 1 {
		repLimit = 1
	}
	for _, target := range sortedTargets(sample) {
		resp := sample.Responses[target]
		ts := resp.First
		if ts.IsZero() {
			ts = sample.Date
		}
		for i, payload := range resp.Payloads {
			dg := packet.NewDatagram(target, ntp.Port, prober, proberPort, payload)
			if i < len(resp.TTLs) {
				dg.IP.TTL = resp.TTLs[i]
			}
			raw, err := dg.Encode()
			if err != nil {
				return err
			}
			for c := 0; c < repLimit; c++ {
				err := pw.WritePacket(pcap.Packet{
					Timestamp: ts.Add(time.Duration(i*repLimit+c) * time.Millisecond),
					Data:      raw,
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return pw.Flush()
}

func sortedTargets(sample *Sample) []netaddr.Addr {
	s := netaddr.NewSet(len(sample.Responses))
	for a := range sample.Responses {
		s.Add(a)
	}
	return s.Sorted()
}

// ReadPCAP reconstructs a Sample from a capture of scan responses: every
// UDP packet from source port 123 is attributed to its source address, the
// way the prober correlates live traffic.
func ReadPCAP(r io.Reader, kind string, date time.Time) (*Sample, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	sample := &Sample{Date: date, Kind: kind, Responses: make(map[netaddr.Addr]*Response)}
	for {
		p, err := pr.ReadPacket()
		if err == io.EOF {
			return sample, nil
		}
		if err != nil {
			return nil, err
		}
		dg, err := packet.DecodeDatagram(p.Data)
		if err != nil {
			continue // non-IP noise in the capture
		}
		if dg.UDP.SrcPort != ntp.Port {
			continue
		}
		resp, ok := sample.Responses[dg.IP.Src]
		if !ok {
			resp = &Response{Target: dg.IP.Src, First: p.Timestamp}
			sample.Responses[dg.IP.Src] = resp
		}
		resp.Packets++
		resp.Bytes += int64(dg.OnWire())
		resp.Payloads = append(resp.Payloads, dg.Payload)
		resp.TTLs = append(resp.TTLs, dg.IP.TTL)
		resp.Last = p.Timestamp
	}
}
