// Package scan implements the Internet-wide scanning machinery: a
// zmap-style full-cycle address permutation, a rate-limited prober host,
// and the weekly OpenNTPProject-style survey runner that produced the
// paper's core dataset.
package scan

import (
	"fmt"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

// Metrics is the scanner's optional live instrumentation, labeled by sweep
// kind ("monlist", "version") so the two ONP surveys stay distinguishable on
// one registry. All writes are atomic and free of behavioural effect.
type Metrics struct {
	Probes     *metrics.CounterVec // probes accepted by the fabric
	RespPkts   *metrics.CounterVec // Rep-weighted response packets correlated
	RespBytes  *metrics.CounterVec // Rep-weighted response bytes
	Responders *metrics.GaugeVec   // responders in the sweep now in flight
	Sweeps     *metrics.CounterVec // completed sweeps (one per RunSample)
}

// NewMetrics registers the scan family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Probes: r.NewCounterVec("ntpsim_scan_probes_sent_total",
			"Probe packets accepted by the fabric.", "kind"),
		RespPkts: r.NewCounterVec("ntpsim_scan_response_packets_total",
			"Rep-weighted response packets correlated to a target.", "kind"),
		RespBytes: r.NewCounterVec("ntpsim_scan_response_bytes_total",
			"Rep-weighted response bytes correlated to a target.", "kind"),
		Responders: r.NewGaugeVec("ntpsim_scan_responders",
			"Distinct responders correlated in the sweep now in flight.", "kind"),
		Sweeps: r.NewCounterVec("ntpsim_scan_sweeps_completed_total",
			"Survey sweeps completed.", "kind"),
	}
}

// kindView is the per-prober slice of Metrics: plain children resolved once
// so the per-packet path costs atomic ops, not map lookups.
type kindView struct {
	probes     *metrics.Counter
	respPkts   *metrics.Counter
	respBytes  *metrics.Counter
	responders *metrics.Gauge
	sweeps     *metrics.Counter
}

// view resolves the children for one sweep kind. Nil-safe.
func (m *Metrics) view(kind string) *kindView {
	if m == nil {
		return nil
	}
	return &kindView{
		probes:     m.Probes.With(kind),
		respPkts:   m.RespPkts.With(kind),
		respBytes:  m.RespBytes.With(kind),
		responders: m.Responders.With(kind),
		sweeps:     m.Sweeps.With(kind),
	}
}

// Permutation enumerates [0, n) in a pseudorandom order with full cycle —
// the property zmap relies on to spread probes across the address space so
// no destination network sees a burst. We use a power-of-two LCG (a ≡ 1
// mod 4, odd c ⇒ full period, Hull–Dobell) over the smallest 2^k ≥ n and
// skip out-of-range values; amortised cost stays O(1) per element because
// at most half the cycle is skipped.
type Permutation struct {
	n     uint64
	mask  uint64
	mult  uint64
	inc   uint64
	state uint64
	start uint64
	done  uint64
	first bool
}

// NewPermutation builds a permutation of [0, n) seeded deterministically.
func NewPermutation(n uint64, seed uint64) *Permutation {
	if n == 0 {
		panic("scan: empty permutation")
	}
	size := uint64(1)
	for size < n {
		size <<= 1
	}
	p := &Permutation{
		n:    n,
		mask: size - 1,
		// Knuth MMIX multiplier ≡ 1 mod 4 when masked? Use the classic
		// a=6364136223846793005 (≡ 1 mod 4), odd increment from the seed.
		mult: 6364136223846793005,
		inc:  (seed << 1) | 1,
	}
	p.start = seed & p.mask
	p.state = p.start
	p.first = true
	return p
}

// Next returns the next index. ok is false when the cycle completes (after
// exactly n distinct values).
func (p *Permutation) Next() (uint64, bool) {
	for {
		if p.done == p.n {
			return 0, false
		}
		if !p.first && p.state == p.start {
			return 0, false
		}
		v := p.state
		p.state = (p.state*p.mult + p.inc) & p.mask
		p.first = false
		if v < p.n {
			p.done++
			return v, true
		}
	}
}

// Reset rewinds the permutation to its start.
func (p *Permutation) Reset() {
	p.state = p.start
	p.done = 0
	p.first = true
}

// Shard enumerates every index of the permutation congruent to shard
// mod shards — zmap's mechanism for splitting one Internet-wide scan across
// machines with no coordination beyond the seed. The union of all shards is
// exactly the full permutation, disjointly.
type Shard struct {
	p             *Permutation
	shard, shards uint64
	position      uint64
}

// NewShard builds shard i of n over [0, size) with the given seed. All
// shards of the same (size, seed) walk the same global order.
func NewShard(size, seed, shard, shards uint64) *Shard {
	if shards == 0 || shard >= shards {
		panic("scan: shard index out of range")
	}
	return &Shard{p: NewPermutation(size, seed), shard: shard, shards: shards}
}

// Next returns the shard's next index.
func (s *Shard) Next() (uint64, bool) {
	for {
		v, ok := s.p.Next()
		if !ok {
			return 0, false
		}
		mine := s.position%s.shards == s.shard
		s.position++
		if mine {
			return v, true
		}
	}
}

// Response is everything a prober captured from one target.
type Response struct {
	Target   netaddr.Addr
	Packets  int64    // Rep-weighted packet count
	Bytes    int64    // Rep-weighted on-wire bytes
	Payloads [][]byte // raw UDP payloads, one per real datagram
	TTLs     []uint8
	First    time.Time
	Last     time.Time
}

// Prober is a scanning host: it sends one probe payload to each target and
// correlates every packet coming back by source address. It implements
// netsim.Host and must be registered at its address before sweeping.
type Prober struct {
	Addr    netaddr.Addr
	SrcPort uint16
	TTL     uint8

	// KeepPayloads controls whether raw payloads are retained (the analysis
	// needs them; pure population counts do not).
	KeepPayloads bool
	// MaxPayloadsPerTarget bounds per-target retention so a mega amplifier
	// cannot exhaust memory; extra packets still count in Packets/Bytes.
	MaxPayloadsPerTarget int

	Sent      int64
	responses map[netaddr.Addr]*Response
	mv        *kindView
}

// SetMetrics attaches live instrumentation under the given sweep kind.
func (p *Prober) SetMetrics(m *Metrics, kind string) { p.mv = m.view(kind) }

// NewProber builds a prober with payload retention on.
func NewProber(addr netaddr.Addr, srcPort uint16) *Prober {
	return &Prober{
		Addr: addr, SrcPort: srcPort, TTL: netsim.TTLLinux,
		KeepPayloads: true, MaxPayloadsPerTarget: 256,
		responses: make(map[netaddr.Addr]*Response),
	}
}

// HandlePacket implements netsim.Host: correlate by source address.
func (p *Prober) HandlePacket(_ *netsim.Network, dg *packet.Datagram, now time.Time) {
	r, ok := p.responses[dg.IP.Src]
	if !ok {
		r = &Response{Target: dg.IP.Src, First: now}
		p.responses[dg.IP.Src] = r
		if p.mv != nil {
			p.mv.responders.SetInt(int64(len(p.responses)))
		}
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	r.Packets += rep
	r.Bytes += int64(dg.OnWire()) * rep
	r.Last = now
	if p.mv != nil {
		p.mv.respPkts.Add(rep)
		p.mv.respBytes.Add(int64(dg.OnWire()) * rep)
	}
	if p.KeepPayloads && len(r.Payloads) < p.MaxPayloadsPerTarget {
		// Copy the bytes: the fabric recycles the delivered datagram (and
		// its payload buffer) as soon as HandlePacket returns.
		r.Payloads = append(r.Payloads, append([]byte(nil), dg.Payload...))
		r.TTLs = append(r.TTLs, dg.IP.TTL)
	}
}

// Sweep schedules one probe to every target, spread uniformly across the
// given duration starting at start. The caller drives the scheduler.
func (p *Prober) Sweep(nw *netsim.Network, targets []netaddr.Addr, dstPort uint16, payload []byte, start time.Time, duration time.Duration) {
	if len(targets) == 0 {
		return
	}
	if duration <= 0 {
		duration = time.Second
	}
	step := duration / time.Duration(len(targets))
	if step <= 0 {
		step = time.Nanosecond
	}
	sched := nw.Scheduler()
	for i, target := range targets {
		target := target
		sched.At(start.Add(time.Duration(i)*step), func(now time.Time) {
			if nw.SendUDP(p.Addr, p.SrcPort, target, dstPort, p.TTL, payload) {
				p.Sent++
				if p.mv != nil {
					p.mv.probes.Inc()
				}
			}
		})
	}
}

// Responses returns the accumulated responses keyed by target.
func (p *Prober) Responses() map[netaddr.Addr]*Response { return p.responses }

// ResponderSet returns the set of addresses that answered at all.
func (p *Prober) ResponderSet() netaddr.Set {
	s := netaddr.NewSet(len(p.responses))
	for a := range p.responses {
		s.Add(a)
	}
	return s
}

// Clear resets collected responses (between weekly samples) without
// forgetting the prober's identity.
func (p *Prober) Clear() {
	p.responses = make(map[netaddr.Addr]*Response)
	p.Sent = 0
	if p.mv != nil {
		p.mv.responders.SetInt(0)
	}
}

// Sample is the outcome of one survey sweep — the unit the ONP publishes
// weekly and the core package analyses.
type Sample struct {
	Date      time.Time
	Kind      string // "monlist" or "version"
	Responses map[netaddr.Addr]*Response
}

// NumResponders returns the responder population of the sample.
func (s *Sample) NumResponders() int { return len(s.Responses) }

// Survey drives repeated sweeps from a single source IP — the
// OpenNTPProject methodology (§3.1): one probe packet per target address
// per weekly pass, all response packets captured.
type Survey struct {
	Prober   *Prober
	Network  *netsim.Network
	Kind     string
	DstPort  uint16
	Payload  []byte
	Duration time.Duration

	Samples []*Sample
}

// RunSample executes one sweep over targets at the scheduler's current time
// and records the sample with the given label date. The scheduler is run
// until the sweep window plus a response-settling margin has elapsed.
func (s *Survey) RunSample(date time.Time, targets []netaddr.Addr) *Sample {
	s.Prober.Clear()
	start := s.Network.Now()
	s.Prober.Sweep(s.Network, targets, s.DstPort, s.Payload, start, s.Duration)
	// Settle: the last probe's response plus mega-amp replay tails.
	s.Network.Scheduler().RunUntil(start.Add(s.Duration + 2*time.Minute))
	sample := &Sample{Date: vtime.Day(date), Kind: s.Kind}
	sample.Responses = s.Prober.Responses()
	s.Prober.responses = make(map[netaddr.Addr]*Response)
	s.Samples = append(s.Samples, sample)
	if s.Prober.mv != nil {
		s.Prober.mv.sweeps.Inc()
	}
	return sample
}

// String describes the survey.
func (s *Survey) String() string {
	return fmt.Sprintf("scan.Survey{%s, %d samples}", s.Kind, len(s.Samples))
}
