// Package timeattack models attacks on NTP time integrity rather than on
// bandwidth: where internal/attack turns NTP servers into DDoS cannons,
// this plane turns the protocol itself against the clocks of disciplined
// clients (internal/timesync). Six attacker models are implemented — two
// off-path forgery models riding the same spoofing-capable address space
// as the reflection attacks (spoofed mode 4 replies and forged
// kiss-o'-death codes, the CVE-2015-7704/7705 class), and four on-path
// manipulation models (delay asymmetry, gradual-drift poisoning under the
// panic threshold, stratum/refid manipulation, leap-second injection).
// Every target selection and parameter draw happens on a private RNG
// stream, and the plane records ground truth so the drift-aware detector
// can be scored with real precision/recall.
package timeattack

import (
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/rng"
	"ntpddos/internal/timesync"
)

// Model identifies one attacker behavior.
type Model int

// The attacker models.
const (
	// ModelSpoof: off-path forged mode 4 replies racing the genuine
	// server. Bites clients without origin validation, which accept the
	// attacker's transmit timestamp blind and step to attacker time.
	ModelSpoof Model = iota
	// ModelKoD: off-path forged kiss-o'-death codes (CVE-2015-7704/7705):
	// DENY kills every association, silencing the client so its clock
	// free-runs on hardware drift.
	ModelKoD
	// ModelDelay: on-path delay-asymmetry shifting — hold mode 4 replies
	// for a fixed extra delay, biasing the measured offset by half of it.
	ModelDelay
	// ModelDrift: on-path gradual-drift poisoning — rewrite server
	// timestamps by an offset that grows slowly enough to stay under the
	// step-per-sample radar and far under the panic threshold.
	ModelDrift
	// ModelStratum: on-path stratum/refid manipulation on exactly half the
	// client's servers, splitting falseticker voting 2-2 so the client can
	// never assemble a majority and holds its clock indefinitely.
	ModelStratum
	// ModelLeap: on-path leap-second injection — set the leap-indicator
	// bits on a majority of replies so the client arms a bogus leap event.
	ModelLeap
	numModels
)

// NumModels is the count of attacker models.
const NumModels = int(numModels)

// String names the model for reports.
func (m Model) String() string {
	switch m {
	case ModelSpoof:
		return "spoof"
	case ModelKoD:
		return "kod"
	case ModelDelay:
		return "delay"
	case ModelDrift:
		return "drift"
	case ModelStratum:
		return "stratum"
	case ModelLeap:
		return "leap"
	}
	return "unknown"
}

// Config parameterizes the plane.
type Config struct {
	// Share is the fraction of disciplined clients attacked.
	Share float64
	// Warmup delays attack onset past run start so detectors see a clean
	// baseline first. Default 3 days.
	Warmup time.Duration
	// Origins are spoofing-capable source addresses for the off-path
	// models (the scenario hands in its bot pool).
	Origins []netaddr.Addr
	// Metrics is optional and strictly passive.
	Metrics *Metrics
}

// target is one attacked client with its drawn parameters.
type target struct {
	client  *timesync.Client
	model   Model
	offset  time.Duration // spoof / stratum timestamp shift
	drift   float64       // s/s of virtual time, ModelDrift
	delay   time.Duration // extra reply delay, ModelDelay
	servers []netaddr.Addr
	origin  netaddr.Addr // spoofed-packet source, off-path models
	burst   time.Duration
	kodFlip bool // alternates RATE/DENY bursts
}

// Plane owns the targets and the ground truth.
type Plane struct {
	cfg      Config
	targets  []*target
	attacked netaddr.Set
	byModel  [numModels]netaddr.Set

	forgedReplies int64
	forgedKisses  int64
	delayed       int64
	rewritten     int64
}

// New builds an empty plane.
func New(cfg Config) *Plane {
	if cfg.Warmup == 0 {
		cfg.Warmup = 3 * 24 * time.Hour
	}
	p := &Plane{cfg: cfg, attacked: netaddr.NewSet(0)}
	for i := range p.byModel {
		p.byModel[i] = netaddr.NewSet(0)
	}
	return p
}

// Arm selects targets from the fleet and draws every attack parameter.
// All randomness comes from src (the private "timeattack" stream); the
// draw sequence depends only on the fleet's client list, so a zero-share
// plane is never built and an armed one never perturbs other streams.
func (p *Plane) Arm(fleet *timesync.Fleet, src *rng.Source) {
	for _, c := range fleet.Clients() {
		if !src.Bool(p.cfg.Share) {
			continue
		}
		t := &target{client: c, model: Model(src.IntN(int(numModels)))}
		servers := c.Servers()
		maj := len(servers)/2 + 1
		t.burst = time.Duration((300 + src.Float64()*300) * float64(time.Second))
		switch t.model {
		case ModelSpoof:
			c.MarkInsecure()
			t.offset = time.Duration((5 + src.Float64()*25) * float64(time.Second))
			t.servers = servers[:maj]
		case ModelKoD:
			c.MarkInsecure()
			t.servers = servers
		case ModelDelay:
			t.delay = time.Duration((0.8 + src.Float64()*0.8) * float64(time.Second))
			t.servers = servers[:maj]
		case ModelDrift:
			t.drift = (0.5 + src.Float64()) * 1e-5
			t.servers = servers[:maj]
		case ModelStratum:
			t.offset = time.Duration((2 + src.Float64()*3) * float64(time.Second))
			t.servers = servers[:len(servers)/2]
		case ModelLeap:
			t.servers = servers[:maj]
		}
		if t.model == ModelSpoof || t.model == ModelKoD {
			if len(p.cfg.Origins) == 0 {
				continue // nothing to spoof from; draws stay consistent
			}
			t.origin = p.cfg.Origins[src.IntN(len(p.cfg.Origins))]
		}
		p.targets = append(p.targets, t)
		p.attacked.Add(c.Addr())
		p.byModel[t.model].Add(c.Addr())
	}
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Targets.SetInt(int64(len(p.targets)))
	}
}

// Start schedules the off-path forgery bursts and installs the on-path
// interceptors, all beginning after the warmup.
func (p *Plane) Start(nw *netsim.Network, start, end time.Time) {
	if len(p.targets) == 0 {
		return
	}
	at := start.Add(p.cfg.Warmup)
	if !at.Before(end) {
		return
	}
	for _, t := range p.targets {
		t := t
		switch t.model {
		case ModelSpoof, ModelKoD:
			nw.Scheduler().Every(at, t.burst, end, func(now time.Time) {
				p.fireBurst(nw, t, now)
			})
		default:
			nw.Scheduler().At(at, func(now time.Time) {
				nw.Register(t.client.Addr(), &interceptor{p: p, t: t, armedAt: now})
			})
		}
	}
}

// fireBurst emits one round of off-path forgeries for a target: one
// spoofed packet per attacked server, claiming that server's address.
func (p *Plane) fireBurst(nw *netsim.Network, t *target, now time.Time) {
	for _, s := range t.servers {
		var h *ntp.Header
		switch t.model {
		case ModelSpoof:
			h = &ntp.Header{
				Version:      4,
				Mode:         ntp.ModeServer,
				Stratum:      2,
				ReferenceID:  uint32(t.origin),
				ReceiveTime:  ntp.ToNTPTime(now.Add(t.offset)),
				TransmitTime: ntp.ToNTPTime(now.Add(t.offset)),
			}
			p.forgedReplies++
			if p.cfg.Metrics != nil {
				p.cfg.Metrics.ForgedReplies.Inc()
			}
		case ModelKoD:
			code := ntp.KissDENY
			if t.kodFlip {
				code = ntp.KissRATE
			}
			h = ntp.NewKissReply(0, code, now)
			p.forgedKisses++
			if p.cfg.Metrics != nil {
				p.cfg.Metrics.ForgedKisses.Inc()
			}
		}
		nw.SendSpoofed(t.origin, s, ntp.Port, t.client.Addr(), t.client.Port(),
			netsim.TTLWindows, h.AppendTo(nil))
	}
	t.kodFlip = !t.kodFlip
}

// Attacked returns the ground-truth set of attacked client addresses.
func (p *Plane) Attacked() netaddr.Set { return p.attacked }

// AttackedBy returns the ground truth for one model.
func (p *Plane) AttackedBy(m Model) netaddr.Set { return p.byModel[m] }

// Summary is the plane's end-of-run accounting.
type Summary struct {
	Targets       int
	ByModel       map[string]int
	ForgedReplies int64
	ForgedKisses  int64
	Delayed       int64
	Rewritten     int64
}

// Summarize reports target counts per model and forgery volumes.
func (p *Plane) Summarize() *Summary {
	s := &Summary{
		Targets:       len(p.targets),
		ByModel:       make(map[string]int, numModels),
		ForgedReplies: p.forgedReplies,
		ForgedKisses:  p.forgedKisses,
		Delayed:       p.delayed,
		Rewritten:     p.rewritten,
	}
	for m := Model(0); m < numModels; m++ {
		if n := p.byModel[m].Len(); n > 0 {
			s.ByModel[m.String()] = n
		}
	}
	return s
}

// interceptor sits on the client's fabric address (the on-path position)
// and manipulates genuine mode 4 replies before the client sees them.
// Everything else passes through untouched.
type interceptor struct {
	p       *Plane
	t       *target
	armedAt time.Time
}

// HandlePacket implements netsim.Host.
func (ic *interceptor) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	c := ic.t.client
	if dg.UDP.SrcPort == ntp.Port && ic.fromAttackedServer(dg.IP.Src) {
		if r, err := ntp.DecodeSyncReply(dg.Payload); err == nil && r.Kiss == "" {
			switch ic.t.model {
			case ModelDelay:
				ic.p.delayed++
				if ic.p.cfg.Metrics != nil {
					ic.p.cfg.Metrics.Delayed.Inc()
				}
				// Deep-copy before holding: the fabric recycles dg (and its
				// payload buffer) as soon as this HandlePacket returns.
				held := *dg
				held.Payload = append([]byte(nil), dg.Payload...)
				nw.Scheduler().After(ic.t.delay, func(late time.Time) {
					c.HandlePacket(nw, &held, late)
				})
				return
			case ModelDrift:
				shift := time.Duration(ic.t.drift * now.Sub(ic.armedAt).Seconds() * float64(time.Second))
				ic.rewrite(&r.Header, func(h *ntp.Header) {
					h.ReceiveTime = ntpShift(h.ReceiveTime, shift)
					h.TransmitTime = ntpShift(h.TransmitTime, shift)
				}, dg)
			case ModelStratum:
				ic.rewrite(&r.Header, func(h *ntp.Header) {
					h.Stratum = 1
					h.ReferenceID = 0x47505300 // "GPS\0": a fake reference clock
					h.ReceiveTime = ntpShift(h.ReceiveTime, ic.t.offset)
					h.TransmitTime = ntpShift(h.TransmitTime, ic.t.offset)
				}, dg)
			case ModelLeap:
				ic.rewrite(&r.Header, func(h *ntp.Header) {
					h.LeapIndicator = 1 // leap second pending
				}, dg)
			}
		}
	}
	c.HandlePacket(nw, dg, now)
}

// rewrite mutates the decoded header in place and re-encodes it over the
// datagram's own payload buffer (the datagram is the recipient's private
// copy; taps observed the original on the wire). h is a decoded value, so
// overwriting the buffer it came from is safe.
func (ic *interceptor) rewrite(h *ntp.Header, mutate func(*ntp.Header), dg *packet.Datagram) {
	mutate(h)
	dg.Payload = h.AppendTo(dg.Payload[:0])
	ic.p.rewritten++
	if ic.p.cfg.Metrics != nil {
		ic.p.cfg.Metrics.Rewritten.Inc()
	}
}

func (ic *interceptor) fromAttackedServer(a netaddr.Addr) bool {
	for _, s := range ic.t.servers {
		if s == a {
			return true
		}
	}
	return false
}

// ntpShift adds a duration to a 64-bit NTP timestamp.
func ntpShift(ts uint64, d time.Duration) uint64 {
	if ts == 0 {
		return 0
	}
	return ntp.ToNTPTime(ntp.FromNTPTime(ts).Add(d))
}
