package timeattack

import "ntpddos/internal/metrics"

// Metrics are the plane's counters, exported under ntpattack_*. Strictly
// passive: the attack-on/off determinism tests pin that metrics change no
// event order.
type Metrics struct {
	Targets       *metrics.Gauge
	ForgedReplies *metrics.Counter
	ForgedKisses  *metrics.Counter
	Delayed       *metrics.Counter
	Rewritten     *metrics.Counter
}

// NewMetrics registers the plane's metric families.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Targets: r.NewGauge("ntpattack_targets",
			"Disciplined clients selected as time-integrity attack targets."),
		ForgedReplies: r.NewCounter("ntpattack_forged_replies_total",
			"Off-path spoofed mode 4 replies sent at targets."),
		ForgedKisses: r.NewCounter("ntpattack_forged_kisses_total",
			"Forged kiss-o'-death packets sent at targets (CVE-2015-7704/7705)."),
		Delayed: r.NewCounter("ntpattack_delayed_replies_total",
			"Genuine replies held back by the on-path delay-asymmetry model."),
		Rewritten: r.NewCounter("ntpattack_rewritten_replies_total",
			"Genuine replies rewritten in flight (drift, stratum, leap models)."),
	}
}
