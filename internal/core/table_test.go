package core

import (
	"math/rand/v2"
	"testing"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
)

func entries(r *rand.Rand, n int) []ntp.MonEntry {
	out := make([]ntp.MonEntry, n)
	for i := range out {
		out[i] = ntp.MonEntry{
			Addr: netaddr.Addr(r.Uint32()), Count: uint32(3 + r.IntN(100)),
			Mode: 7, Port: uint16(r.Uint32()), AvgInterval: uint32(r.IntN(100)),
			LastSeen: uint32(r.IntN(1000)),
		}
	}
	return out
}

func TestRebuildSingleTable(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	want := entries(r, 42)
	packets := ntp.BuildMonlistResponse(want, ntp.ImplXNTPD, ntp.ReqMonGetList1)
	view, err := RebuildTable(packets)
	if err != nil {
		t.Fatal(err)
	}
	if view.Copies != 1 || view.Truncated {
		t.Fatalf("copies=%d truncated=%v", view.Copies, view.Truncated)
	}
	if len(view.Entries) != 42 {
		t.Fatalf("rebuilt %d entries", len(view.Entries))
	}
	if view.ItemSize != ntp.MonEntrySizeV1 {
		t.Fatalf("item size %d", view.ItemSize)
	}
	for i := range want {
		got := view.Entries[i]
		want[i].DAddr = got.DAddr // DAddr zero in our synthetic entries
		if got != want[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestRebuildRepeatedCopiesKeepsFinal(t *testing.T) {
	// A mega amplifier replays the table with growing counts; the final
	// copy must win (§4.2).
	r := rand.New(rand.NewPCG(2, 2))
	base := entries(r, 10)
	var all [][]byte
	for copyN := 0; copyN < 5; copyN++ {
		for i := range base {
			base[i].Count += 100
		}
		all = append(all, ntp.BuildMonlistResponse(base, ntp.ImplXNTPD, ntp.ReqMonGetList1)...)
	}
	view, err := RebuildTable(all)
	if err != nil {
		t.Fatal(err)
	}
	if view.Copies != 5 {
		t.Fatalf("copies = %d, want 5", view.Copies)
	}
	if len(view.Entries) != 10 {
		t.Fatalf("final table has %d entries", len(view.Entries))
	}
	if view.Entries[0].Count != base[0].Count {
		t.Fatalf("final count = %d, want %d (the last copy)", view.Entries[0].Count, base[0].Count)
	}
}

func TestRebuildToleratesNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	packets := ntp.BuildMonlistResponse(entries(r, 6), ntp.ImplXNTPD, ntp.ReqMonGetList1)
	noisy := [][]byte{{0x01, 0x02}, nil}
	noisy = append(noisy, packets...)
	noisy = append(noisy, []byte("garbage"))
	view, err := RebuildTable(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Entries) != 6 {
		t.Fatalf("rebuilt %d entries with noise", len(view.Entries))
	}
}

func TestRebuildTruncatedCapture(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	packets := ntp.BuildMonlistResponse(entries(r, 20), ntp.ImplXNTPD, ntp.ReqMonGetList1)
	view, err := RebuildTable(packets[:len(packets)-1]) // drop the tail fragment
	if err != nil {
		t.Fatal(err)
	}
	if !view.Truncated {
		t.Fatal("truncation not detected")
	}
	if len(view.Entries) != 18 { // 3 full fragments of 6
		t.Fatalf("kept %d entries", len(view.Entries))
	}
}

func TestRebuildEmptyAndErrorResponses(t *testing.T) {
	packets := ntp.BuildMonlistResponse(nil, ntp.ImplXNTPD, ntp.ReqMonGetList1)
	view, err := RebuildTable(packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Entries) != 0 || view.Copies != 0 {
		t.Fatalf("error response produced entries: %+v", view)
	}
}

func TestIsMegaVolume(t *testing.T) {
	if IsMegaVolume(50 << 10) {
		t.Fatal("50KB flagged mega")
	}
	if !IsMegaVolume(200 << 10) {
		t.Fatal("200KB not flagged mega")
	}
}
