package core

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/vtime"
)

var probeAddr = netaddr.MustParseAddr("198.51.100.5")

func TestClassifyEntry(t *testing.T) {
	cases := []struct {
		name string
		e    ntp.MonEntry
		want EntryClass
	}{
		{"probe itself", ntp.MonEntry{Addr: probeAddr, Mode: 7, Count: 1000}, NonVictim},
		{"normal client mode 3", ntp.MonEntry{Addr: 1, Mode: 3, Count: 1 << 20}, NonVictim},
		{"normal client mode 4", ntp.MonEntry{Addr: 1, Mode: 4, Count: 1 << 20}, NonVictim},
		{"research scanner", ntp.MonEntry{Addr: 2, Mode: 7, Count: 2}, ScannerOrLowVolume},
		{"slow mode 6", ntp.MonEntry{Addr: 3, Mode: 6, Count: 19, AvgInterval: 154503}, ScannerOrLowVolume},
		{"victim mode 7", ntp.MonEntry{Addr: 4, Mode: 7, Count: 3_358_227_026 % (1 << 32), AvgInterval: 0}, Victim},
		{"victim mode 6", ntp.MonEntry{Addr: 5, Mode: 6, Count: 500, AvgInterval: 10}, Victim},
		{"boundary count 3", ntp.MonEntry{Addr: 6, Mode: 7, Count: 3, AvgInterval: 3600}, Victim},
		{"boundary count 2", ntp.MonEntry{Addr: 7, Mode: 7, Count: 2, AvgInterval: 0}, ScannerOrLowVolume},
		{"boundary interval 3601", ntp.MonEntry{Addr: 8, Mode: 7, Count: 100, AvgInterval: 3601}, ScannerOrLowVolume},
	}
	for _, c := range cases {
		if got := ClassifyEntry(c.e, probeAddr); got != c.want {
			t.Fatalf("%s: class = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestExtractVictimsTiming(t *testing.T) {
	sample := vtime.Epoch.Add(1000 * time.Hour)
	view := &TableView{Entries: []ntp.MonEntry{
		{Addr: 10, Mode: 7, Count: 600, AvgInterval: 6, LastSeen: 120, Port: 80},
		{Addr: 11, Mode: 3, Count: 50},
		{Addr: 12, Mode: 7, Count: 1},
	}}
	victims, scanners, nonVictims := ExtractVictims(view, 99, probeAddr, sample)
	if len(victims) != 1 || scanners != 1 || nonVictims != 1 {
		t.Fatalf("got %d/%d/%d", len(victims), scanners, nonVictims)
	}
	v := victims[0]
	if v.Victim != 10 || v.Amplifier != 99 || v.Port != 80 {
		t.Fatalf("victim = %+v", v)
	}
	wantEnd := sample.Add(-120 * time.Second)
	if !v.End.Equal(wantEnd) {
		t.Fatalf("end = %v, want %v", v.End, wantEnd)
	}
	wantDur := 600 * 6 * time.Second
	if v.Duration != wantDur {
		t.Fatalf("duration = %v, want %v", v.Duration, wantDur)
	}
	if !v.Start.Equal(wantEnd.Add(-wantDur)) {
		t.Fatalf("start = %v", v.Start)
	}
}

func TestLargestLastSeenAndUnderSample(t *testing.T) {
	view := &TableView{Entries: []ntp.MonEntry{
		{LastSeen: 10}, {LastSeen: 44 * 3600}, {LastSeen: 100},
	}}
	if got := LargestLastSeen(view); got != 44*time.Hour {
		t.Fatalf("window = %v", got)
	}
	f := UnderSampleFactor(44 * time.Hour)
	if f < 3.7 || f > 3.9 {
		t.Fatalf("under-sample factor = %v, want ≈3.8 (the paper's value)", f)
	}
	if UnderSampleFactor(0) != 1 || UnderSampleFactor(200*time.Hour) != 1 {
		t.Fatal("degenerate windows must clamp to 1")
	}
}
