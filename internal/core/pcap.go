package core

import (
	"io"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/scan"
)

// AnalyzeSamplePCAP runs the full per-sample pipeline directly over a
// libpcap capture of scan responses — the paper's actual input format. The
// probe address is the scanner's own IP (it appears in monitor tables and
// must be classified out of the victim set).
func AnalyzeSamplePCAP(r io.Reader, kind string, date time.Time, probeAddr netaddr.Addr) (*SampleAnalysis, error) {
	sample, err := scan.ReadPCAP(r, kind, date)
	if err != nil {
		return nil, err
	}
	return AnalyzeSample(sample, probeAddr), nil
}
