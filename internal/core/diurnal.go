package core

import (
	"ntpddos/internal/stats"
)

// DiurnalProfile summarises hour-of-day structure in a time series — the
// §7.1 observation that victim traffic at Merit shows "a diurnal pattern
// ... perhaps suggesting a manual element in the attacks".
type DiurnalProfile struct {
	// HourMeans holds the average bucket value for each UTC hour 0..23.
	HourMeans [24]float64
	// PeakHour and TroughHour locate the extremes.
	PeakHour, TroughHour int
	// PeakToTrough is the ratio of the busiest to the quietest hour
	// (1.0 = perfectly flat; human-driven activity is typically >1.5).
	PeakToTrough float64
}

// NewDiurnalProfile folds an hourly series by hour-of-day.
func NewDiurnalProfile(points []stats.Point) DiurnalProfile {
	var sums, counts [24]float64
	for _, p := range points {
		h := p.Time.UTC().Hour()
		sums[h] += p.Value
		counts[h]++
	}
	var prof DiurnalProfile
	for h := 0; h < 24; h++ {
		if counts[h] > 0 {
			prof.HourMeans[h] = sums[h] / counts[h]
		}
	}
	peak, trough := 0, 0
	for h := 1; h < 24; h++ {
		if prof.HourMeans[h] > prof.HourMeans[peak] {
			peak = h
		}
		if prof.HourMeans[h] < prof.HourMeans[trough] {
			trough = h
		}
	}
	prof.PeakHour, prof.TroughHour = peak, trough
	if prof.HourMeans[trough] > 0 {
		prof.PeakToTrough = prof.HourMeans[peak] / prof.HourMeans[trough]
	} else if prof.HourMeans[peak] > 0 {
		prof.PeakToTrough = 1e9 // quietest hour silent: effectively infinite
	} else {
		prof.PeakToTrough = 1
	}
	return prof
}

// IsDiurnal reports whether the profile shows meaningful day/night
// structure (peak at least 1.5x the trough).
func (p DiurnalProfile) IsDiurnal() bool { return p.PeakToTrough >= 1.5 }
