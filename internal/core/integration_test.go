package core_test

import (
	"testing"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/core"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/scan"
	"ntpddos/internal/vtime"
)

// TestEndToEndPipeline runs the full measurement loop on a small world:
// vulnerable daemons get attacked, the ONP-style survey probes them, and
// the analysis pipeline recovers the victims, ports and attack volumes from
// nothing but the captured response packets.
func TestEndToEndPipeline(t *testing.T) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	src := rng.New(99)

	// Ten amplifiers.
	var ampAddrs []netaddr.Addr
	for i := 0; i < 10; i++ {
		addr := netaddr.Addr(0x0a000001 + uint32(i)*256)
		srv := ntpd.New(ntpd.Config{Addr: addr, MonlistEnabled: true,
			Profile: ntpd.Profile{TTL: 64, SystemString: "linux"}})
		nw.Register(addr, srv)
		ampAddrs = append(ampAddrs, addr)
	}

	// An attack against one victim through five of them.
	victim := netaddr.MustParseAddr("203.0.113.50")
	engine := attack.NewEngine(nw, src, []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	// A slow-and-long attack (2 triggers per 30s batch): the inter-arrival
	// stays above one second, so the monlist table's integer-seconds
	// inter-arrival field carries recoverable timing. (Intense attacks
	// truncate to 0 — exactly the Table 3b victims' inter-arrival of 0.)
	engine.Launch(attack.Campaign{
		Victim: victim, Port: 3074, // XBox Live
		Start:       clock.Now().Add(time.Hour),
		Duration:    2 * time.Hour,
		TriggerRate: 1.0 / 15,
		Amplifiers:  ampAddrs[:5],
	})
	sched.RunUntil(clock.Now().Add(4 * time.Hour))

	// The ONP survey.
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	survey := &scan.Survey{
		Prober: prober, Network: nw, Kind: "monlist", DstPort: ntp.Port,
		Payload:  ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1),
		Duration: time.Hour,
	}
	sample := survey.RunSample(clock.Now(), ampAddrs)

	analysis := core.AnalyzeSample(sample, prober.Addr)
	if len(analysis.Amps) != 10 {
		t.Fatalf("found %d amplifiers, want 10", len(analysis.Amps))
	}

	// All five attacked amplifiers must report the victim.
	vs := analysis.VictimSet()
	if !vs.Has(victim) || vs.Len() != 1 {
		t.Fatalf("victim set = %v", vs.Sorted())
	}
	perAmp := map[netaddr.Addr]bool{}
	for _, v := range analysis.Victims {
		if v.Victim != victim {
			t.Fatalf("unexpected victim %v", v.Victim)
		}
		if v.Port != 3074 {
			t.Fatalf("victim port = %d, want 3074", v.Port)
		}
		if v.Count < 400 {
			t.Fatalf("victim count = %d, want ≈480", v.Count)
		}
		perAmp[v.Amplifier] = true
	}
	if len(perAmp) != 5 {
		t.Fatalf("victim observed at %d amplifiers, want 5", len(perAmp))
	}

	// Derived attack timing must bracket the actual attack window.
	v := analysis.Victims[0]
	if v.Duration < 30*time.Minute || v.Duration > 4*time.Hour {
		t.Fatalf("derived duration = %v, actual 2h", v.Duration)
	}

	// BAFs: unprimed tables are small, so modest BAFs; all positive.
	for _, r := range analysis.Amps {
		if r.BAF <= 0 {
			t.Fatalf("amplifier %v BAF = %v", r.Addr, r.BAF)
		}
	}

	// The prober itself must have been classified out of the victim set.
	for _, v := range analysis.Victims {
		if v.Victim == prober.Addr {
			t.Fatal("prober classified as victim")
		}
	}
}

// TestVersionPipeline exercises the mode 6 path end to end.
func TestVersionPipeline(t *testing.T) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	src := rng.New(5)

	var addrs []netaddr.Addr
	for i := 0; i < 50; i++ {
		addr := netaddr.Addr(0x0b000001 + uint32(i)*256)
		profile := ntpd.SampleProfile(src, ntpd.RoleAllNTP)
		stratum := 3
		if src.Bool(0.19) {
			stratum = ntp.StratumUnsynchronized
		}
		srv := ntpd.New(ntpd.Config{Addr: addr, Mode6Enabled: true, Stratum: stratum,
			Profile: profile})
		nw.Register(addr, srv)
		addrs = append(addrs, addr)
	}
	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.6"), 41000)
	nw.Register(prober.Addr, prober)
	survey := &scan.Survey{
		Prober: prober, Network: nw, Kind: "version", DstPort: ntp.Port,
		Payload: ntp.NewReadVarRequest(1), Duration: 30 * time.Minute,
	}
	sample := survey.RunSample(clock.Now(), addrs)
	census := core.AnalyzeVersionSample(sample)
	if census.Total != 50 {
		t.Fatalf("census total = %d, want 50", census.Total)
	}
	sum := 0.0
	for _, share := range census.OSShare {
		sum += share
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("OS shares sum to %v", sum)
	}
	for _, info := range census.Infos() {
		if info.System == "" {
			t.Fatal("empty system string parsed")
		}
	}
	// Subset share: restrict to first 10 addresses.
	subset := netaddr.NewSet(0)
	for _, a := range addrs[:10] {
		subset.Add(a)
	}
	shares := census.OSShareOf(subset)
	sub := 0.0
	for _, s := range shares {
		sub += s
	}
	if sub < 99.9 || sub > 100.1 {
		t.Fatalf("subset shares sum to %v", sub)
	}
}
