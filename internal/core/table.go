// Package core implements the paper's analysis pipeline — the primary
// contribution this repository reproduces. From raw monlist/version scan
// captures it rebuilds monitor tables with the ntpdc protocol logic (§4.2),
// classifies table clients into non-victims, scanners and DDoS victims,
// derives attack counts/durations/volumes (§4.3), computes bandwidth
// amplification factors on an on-wire basis (§3.2), detects mega amplifiers
// (§3.4), aggregates populations at IP//24/routed-block/AS levels (Table 1,
// Figure 3), and measures remediation (§6).
//
// Everything here operates on captured packets and registries; it would run
// unchanged over genuine OpenNTPProject pcap data.
package core

import (
	"ntpddos/internal/ntp"
)

// TableView is a reconstructed monitor table from one amplifier's response
// packets in one sample.
type TableView struct {
	// Entries is the final table (§4.2: "If an amplifier sent repeated
	// copies of the table we used the final table received that sample").
	Entries []ntp.MonEntry
	// Copies is how many (possibly partial) table transmissions were seen;
	// values above 1 are the §3.4 mega-amplifier signature.
	Copies int
	// ItemSize is the wire item size used (72 for MON_GETLIST_1).
	ItemSize int
	// Truncated reports that the last copy was cut off mid-sequence.
	Truncated bool
}

// RebuildTable reconstructs the monitor table from raw mode 7 payloads in
// arrival order, applying the protocol logic found in ntpdc: fragments are
// grouped into table copies by their sequence numbers (a fragment with
// sequence 0 starts a new copy), and the final copy wins.
func RebuildTable(payloads [][]byte) (*TableView, error) {
	view := &TableView{}
	var current []ntp.MonEntry
	var lastSeq = -1
	flush := func() {
		if current != nil {
			view.Entries = current
			view.Copies++
			current = nil
		}
	}
	for _, p := range payloads {
		m, entries, err := ntp.ParseMonlistResponse(p)
		if err != nil {
			continue // unparseable noise: tolerated, as real captures are lossy
		}
		if m.Err != ntp.InfoOK {
			continue
		}
		if int(m.Sequence) == 0 && lastSeq != -1 {
			flush()
		}
		if view.ItemSize == 0 {
			view.ItemSize = int(m.ItemSize)
		}
		current = append(current, entries...)
		lastSeq = int(m.Sequence)
		if !m.More {
			flush()
			lastSeq = -1
		}
	}
	if current != nil {
		// Capture ended mid-copy: keep what we have but mark it.
		view.Entries = current
		view.Copies++
		view.Truncated = true
	}
	return view, nil
}

// IsMegaVolume reports whether an aggregate response byte count exceeds the
// §3.4 mega threshold: "about 10 thousand amplifiers responded with more
// than 100KB of data, double or more than the command should ever return".
func IsMegaVolume(bytes int64) bool { return bytes > 100<<10 }
