package core

import (
	"sort"
	"strconv"
	"strings"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/scan"
)

// VersionInfo is one server's parsed mode 6 identity.
type VersionInfo struct {
	Addr        netaddr.Addr
	System      string
	Version     string
	Stratum     int
	CompileYear int
}

// ParseVersionResponses reassembles and parses the readvar payloads of one
// version-scan response.
func ParseVersionResponses(addr netaddr.Addr, payloads [][]byte) (VersionInfo, bool) {
	var frags []*ntp.Mode6
	for _, p := range payloads {
		m, err := ntp.DecodeMode6(p)
		if err != nil || !m.Response {
			continue
		}
		frags = append(frags, m)
	}
	if len(frags) == 0 {
		return VersionInfo{}, false
	}
	text, err := ntp.ReassembleMode6(frags)
	if err != nil {
		return VersionInfo{}, false
	}
	v := ntp.ParseSystemVariables(text)
	return VersionInfo{
		Addr:        addr,
		System:      v.System,
		Version:     v.Version,
		Stratum:     v.Stratum,
		CompileYear: ExtractCompileYear(v.Version),
	}, true
}

// ExtractCompileYear recovers the compile year from a version banner, the
// way the paper "extracted the compile time year from all version strings".
// It returns 0 when no plausible year is present. It lives here, with the
// census that consumes it, so the daemon package can depend on core's shared
// helpers without an import cycle.
func ExtractCompileYear(version string) int {
	for _, tok := range strings.FieldsFunc(version, func(r rune) bool {
		return r == ' ' || r == '(' || r == ')'
	}) {
		if len(tok) == 4 {
			if y, err := strconv.Atoi(tok); err == nil && y >= 1990 && y <= 2020 {
				return y
			}
		}
	}
	return 0
}

// VersionCensus is the §3.3 aggregation over a version-scan sample.
type VersionCensus struct {
	Total int
	// OSShare maps system string to percentage — a Table 2 column.
	OSShare map[string]float64
	// Stratum16Pct is the fraction of servers reporting stratum 16
	// (unsynchronized): 19% in the paper.
	Stratum16Pct float64
	// CompileYearCDF maps year Y to the fraction compiled strictly before Y.
	CompileYearBefore map[int]float64
	infos             []VersionInfo
}

// AnalyzeVersionSample parses every response of a version-scan sample.
func AnalyzeVersionSample(sample *scan.Sample) *VersionCensus {
	c := &VersionCensus{
		OSShare:           make(map[string]float64),
		CompileYearBefore: make(map[int]float64),
	}
	for addr, resp := range sample.Responses {
		info, ok := ParseVersionResponses(addr, resp.Payloads)
		if !ok {
			continue
		}
		c.infos = append(c.infos, info)
	}
	sort.Slice(c.infos, func(i, j int) bool { return c.infos[i].Addr < c.infos[j].Addr })
	c.Total = len(c.infos)
	if c.Total == 0 {
		return c
	}
	stratum16 := 0
	yearCount := 0
	for _, info := range c.infos {
		c.OSShare[info.System]++
		if info.Stratum == ntp.StratumUnsynchronized {
			stratum16++
		}
		if info.CompileYear > 0 {
			yearCount++
		}
	}
	for k := range c.OSShare {
		c.OSShare[k] = c.OSShare[k] / float64(c.Total) * 100
	}
	c.Stratum16Pct = float64(stratum16) / float64(c.Total) * 100
	for _, y := range []int{2004, 2010, 2011, 2012, 2013} {
		before := 0
		for _, info := range c.infos {
			if info.CompileYear > 0 && info.CompileYear < y {
				before++
			}
		}
		if yearCount > 0 {
			c.CompileYearBefore[y] = float64(before) / float64(yearCount) * 100
		}
	}
	return c
}

// OSShareOf computes a Table 2-style system-string distribution restricted
// to the given address subset (e.g. the monlist amplifier pool or the mega
// amplifier pool). Addresses without version info are skipped — in the
// paper, too, only about half the mega pool answered the version probe.
func (c *VersionCensus) OSShareOf(subset netaddr.Set) map[string]float64 {
	counts := make(map[string]float64)
	total := 0
	for _, info := range c.infos {
		if subset.Has(info.Addr) {
			counts[info.System]++
			total++
		}
	}
	for k := range counts {
		counts[k] = counts[k] / float64(total) * 100
	}
	return counts
}

// Infos returns the parsed per-server records (sorted by address).
func (c *VersionCensus) Infos() []VersionInfo { return c.infos }
