package core

import (
	"sort"
	"time"

	"ntpddos/internal/geo"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/pbl"
	"ntpddos/internal/routing"
	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

// Registries bundles the joins the analysis performs: BGP origin (routed
// block + ASN), the PBL (end-host labeling) and GeoIP (continent).
type Registries struct {
	Routes      *routing.Table
	PBL         *pbl.List
	ContinentOf func(netaddr.Addr) (geo.Continent, bool)
}

// PopulationRow is one row of Table 1 (for either amplifiers or victims).
type PopulationRow struct {
	Date        time.Time
	IPs         int
	Blocks      int
	ASNs        int
	EndHosts    int
	EndHostPct  float64
	IPsPerBlock float64
}

func populationRow(date time.Time, addrs []netaddr.Addr, reg Registries) PopulationRow {
	row := PopulationRow{Date: date, IPs: len(addrs)}
	g := reg.Routes.Aggregate(addrs)
	row.Blocks = g.Blocks
	row.ASNs = g.ASNs
	row.EndHosts = reg.PBL.CountEndHosts(addrs)
	if row.IPs > 0 {
		row.EndHostPct = float64(row.EndHosts) / float64(row.IPs) * 100
	}
	if row.Blocks > 0 {
		row.IPsPerBlock = float64(row.IPs) / float64(row.Blocks)
	}
	return row
}

// PopulationTable computes Table 1: per-sample amplifier and victim
// populations with routed-block/AS aggregation and end-host labeling.
func PopulationTable(samples []*SampleAnalysis, reg Registries) (amps, victims []PopulationRow) {
	for _, s := range samples {
		amps = append(amps, populationRow(s.Date, s.AmplifierSet().Sorted(), reg))
		victims = append(victims, populationRow(s.Date, s.VictimSet().Sorted(), reg))
	}
	return amps, victims
}

// BAFBoxplots computes the Figure 4b/4c per-sample BAF distributions.
func BAFBoxplots(samples []*SampleAnalysis) []stats.BoxPlot {
	out := make([]stats.BoxPlot, len(samples))
	for i, s := range samples {
		vals := make([]float64, 0, len(s.Amps))
		for _, r := range s.Amps {
			vals = append(vals, r.BAF)
		}
		out[i] = stats.NewBoxPlot(vals)
	}
	return out
}

// BytesBoxplots computes the Figure 4a per-sample distribution of aggregate
// bytes returned per query.
func BytesBoxplots(samples []*SampleAnalysis) []stats.BoxPlot {
	out := make([]stats.BoxPlot, len(samples))
	for i, s := range samples {
		vals := make([]float64, 0, len(s.Amps))
		for _, r := range s.Amps {
			vals = append(vals, float64(r.Bytes))
		}
		out[i] = stats.NewBoxPlot(vals)
	}
	return out
}

// RankedBytes returns all amplifiers' per-sample byte totals sorted
// descending — Figure 4a's rank curve (averaged across samples per IP).
func RankedBytes(samples []*SampleAnalysis) []float64 {
	sum := make(map[netaddr.Addr]float64)
	n := make(map[netaddr.Addr]int)
	for _, s := range samples {
		for a, r := range s.Amps {
			sum[a] += float64(r.Bytes)
			n[a]++
		}
	}
	out := make([]float64, 0, len(sum))
	for a, total := range sum {
		out = append(out, total/float64(n[a]))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// ASConcentration computes Figure 5: ranked CDFs of victim packets grouped
// by amplifier AS (who sent) and victim AS (who received).
func ASConcentration(samples []*SampleAnalysis, reg Registries) (ampCDF, victimCDF stats.RankedCDF, ampASes, victimASes int) {
	byAmpAS := make(map[routing.ASN]float64)
	byVicAS := make(map[routing.ASN]float64)
	for _, s := range samples {
		for _, v := range s.Victims {
			if asn, ok := reg.Routes.OriginOf(v.Amplifier); ok {
				byAmpAS[asn] += float64(v.Count)
			}
			if asn, ok := reg.Routes.OriginOf(v.Victim); ok {
				byVicAS[asn] += float64(v.Count)
			}
		}
	}
	toSlice := func(m map[routing.ASN]float64) []float64 {
		out := make([]float64, 0, len(m))
		for _, v := range m {
			out = append(out, v)
		}
		return out
	}
	return stats.NewRankedCDF(toSlice(byAmpAS)), stats.NewRankedCDF(toSlice(byVicAS)),
		len(byAmpAS), len(byVicAS)
}

// TopVictimASes ranks victim ASes by received packets — the §4.3.1 ranking
// where OVH (AS16276) tops the list.
type ASPacketRank struct {
	ASN     routing.ASN
	Packets float64
}

// TopVictimASes returns the k most-attacked ASes.
func TopVictimASes(samples []*SampleAnalysis, reg Registries, k int) []ASPacketRank {
	byAS := make(map[routing.ASN]float64)
	for _, s := range samples {
		for _, v := range s.Victims {
			if asn, ok := reg.Routes.OriginOf(v.Victim); ok {
				byAS[asn] += float64(v.Count)
			}
		}
	}
	out := make([]ASPacketRank, 0, len(byAS))
	for asn, p := range byAS {
		out = append(out, ASPacketRank{ASN: asn, Packets: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].ASN < out[j].ASN
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// VictimPacketRow is one sample of Figure 6.
type VictimPacketRow struct {
	Date              time.Time
	Mean, Median, P95 float64
}

// VictimPacketStats computes Figure 6: the distribution of total packets
// each victim received (summed across its amplifiers) per sample.
func VictimPacketStats(samples []*SampleAnalysis) []VictimPacketRow {
	out := make([]VictimPacketRow, 0, len(samples))
	for _, s := range samples {
		perVictim := make(map[netaddr.Addr]float64)
		for _, v := range s.Victims {
			perVictim[v.Victim] += float64(v.Count)
		}
		vals := make([]float64, 0, len(perVictim))
		for _, c := range perVictim {
			vals = append(vals, c)
		}
		out = append(out, VictimPacketRow{
			Date:   s.Date,
			Mean:   stats.Mean(vals),
			Median: stats.Quantile(vals, 0.5),
			P95:    stats.Quantile(vals, 0.95),
		})
	}
	return out
}

// PortTally computes Table 4: victim source ports across all
// amplifier/victim pairs.
func PortTally(samples []*SampleAnalysis) *stats.Histogram {
	h := stats.NewHistogram()
	for _, s := range samples {
		for _, v := range s.Victims {
			h.Add(int(v.Port), 1)
		}
	}
	return h
}

// AttackTimeSeries computes Figure 7: attacks per hour using derived start
// times. Each unique victim IP per weekly sample counts as one attack; its
// start is the median of the per-amplifier derived starts (§4.3.4).
func AttackTimeSeries(samples []*SampleAnalysis) *stats.TimeSeries {
	ts := stats.NewTimeSeries(vtime.Epoch, time.Hour)
	for _, s := range samples {
		starts := make(map[netaddr.Addr][]time.Time)
		for _, v := range s.Victims {
			starts[v.Victim] = append(starts[v.Victim], v.Start)
		}
		for _, list := range starts {
			sort.Slice(list, func(i, j int) bool { return list[i].Before(list[j]) })
			median := list[len(list)/2]
			if median.Before(vtime.Epoch) {
				median = vtime.Epoch
			}
			ts.Add(median, 1)
		}
	}
	return ts
}

// DurationStats summarises per-attack durations for one sample: the §4.3.4
// medians (~40s since mid-February) and 95th percentiles (6.5h in January
// declining to ~50 minutes by April).
func DurationStats(s *SampleAnalysis) (median, p95 time.Duration) {
	durs := make(map[netaddr.Addr]time.Duration)
	for _, v := range s.Victims {
		if v.Duration > durs[v.Victim] {
			durs[v.Victim] = v.Duration
		}
	}
	vals := make([]float64, 0, len(durs))
	for _, d := range durs {
		vals = append(vals, d.Seconds())
	}
	if len(vals) == 0 {
		return 0, 0
	}
	return time.Duration(stats.Quantile(vals, 0.5) * float64(time.Second)),
		time.Duration(stats.Quantile(vals, 0.95) * float64(time.Second))
}

// ChurnStats summarises §3.1's amplifier churn findings.
type ChurnStats struct {
	TotalUnique      int
	FirstSampleShare float64 // fraction of all uniques seen in sample 1
	SeenOnceShare    float64 // fraction seen in exactly one sample
}

// Churn computes amplifier churn across samples.
func Churn(samples []*SampleAnalysis) ChurnStats {
	seen := make(map[netaddr.Addr]int)
	for _, s := range samples {
		for a := range s.Amps {
			seen[a]++
		}
	}
	var out ChurnStats
	out.TotalUnique = len(seen)
	if out.TotalUnique == 0 || len(samples) == 0 {
		return out
	}
	once := 0
	for _, n := range seen {
		if n == 1 {
			once++
		}
	}
	out.SeenOnceShare = float64(once) / float64(out.TotalUnique)
	out.FirstSampleShare = float64(len(samples[0].Amps)) / float64(out.TotalUnique)
	return out
}

// RemediationLevels is §6.1's network-granularity comparison: percentage
// reduction from the first to the last sample at each aggregation level.
type RemediationLevels struct {
	IPPct, Slash24Pct, BlockPct, ASPct float64
}

func pctReduction(first, last int) float64 {
	if first == 0 {
		return 0
	}
	return (1 - float64(last)/float64(first)) * 100
}

// RemediationByLevel compares the first and last samples.
func RemediationByLevel(samples []*SampleAnalysis, reg Registries) RemediationLevels {
	if len(samples) < 2 {
		return RemediationLevels{}
	}
	f, l := samples[0], samples[len(samples)-1]
	fa, la := f.AmplifierSet(), l.AmplifierSet()
	fg := reg.Routes.Aggregate(fa.Sorted())
	lg := reg.Routes.Aggregate(la.Sorted())
	return RemediationLevels{
		IPPct:      pctReduction(fa.Len(), la.Len()),
		Slash24Pct: pctReduction(fa.CountDistinct24s(), la.CountDistinct24s()),
		BlockPct:   pctReduction(fg.Blocks, lg.Blocks),
		ASPct:      pctReduction(fg.ASNs, lg.ASNs),
	}
}

// RemediationByContinent computes §6.1's regional remediation percentages.
func RemediationByContinent(samples []*SampleAnalysis, reg Registries) map[geo.Continent]float64 {
	out := make(map[geo.Continent]float64)
	if len(samples) < 2 || reg.ContinentOf == nil {
		return out
	}
	count := func(s *SampleAnalysis) map[geo.Continent]int {
		m := make(map[geo.Continent]int)
		for a := range s.Amps {
			if c, ok := reg.ContinentOf(a); ok {
				m[c]++
			}
		}
		return m
	}
	first := count(samples[0])
	last := count(samples[len(samples)-1])
	for c, f := range first {
		out[c] = pctReduction(f, last[c])
	}
	return out
}

// PoolRelativeSeries normalises a pool-size series to its peak — the Figure
// 10 y-axis ("Amplifier Pool Size Relative to Peak (%)").
func PoolRelativeSeries(sizes []int) []float64 {
	peak := 0
	for _, n := range sizes {
		if n > peak {
			peak = n
		}
	}
	out := make([]float64, len(sizes))
	if peak == 0 {
		return out
	}
	for i, n := range sizes {
		out[i] = float64(n) / float64(peak) * 100
	}
	return out
}

// VolumeStats is §4.3.3's aggregate attack-volume estimate.
type VolumeStats struct {
	TotalPackets    int64
	UniqueVictims   int
	MedianWireBytes float64
	// EstBytes = TotalPackets × MedianWireBytes: the "1.2 petabytes" figure.
	EstBytes float64
	// CorrectionFactor is the §4.2 under-sampling factor (≈3.8).
	CorrectionFactor float64
}

// AggregateVolume sums victim packet counts across all samples.
func AggregateVolume(samples []*SampleAnalysis, medianWireBytes float64) VolumeStats {
	var v VolumeStats
	victims := netaddr.NewSet(0)
	var windows []time.Duration
	for _, s := range samples {
		for _, ob := range s.Victims {
			v.TotalPackets += ob.Count
			victims.Add(ob.Victim)
		}
		if s.WindowMedian > 0 {
			windows = append(windows, s.WindowMedian)
		}
	}
	v.UniqueVictims = victims.Len()
	v.MedianWireBytes = medianWireBytes
	v.EstBytes = float64(v.TotalPackets) * medianWireBytes
	if len(windows) > 0 {
		v.CorrectionFactor = UnderSampleFactor(medianDuration(windows))
	} else {
		v.CorrectionFactor = 1
	}
	return v
}

// PoolOverlap computes §6.2's pool intersections: how many monlist
// amplifiers are also open DNS resolvers.
func PoolOverlap(monlist, dnsPool netaddr.Set) (count int, fraction float64) {
	count = monlist.IntersectCount(dnsPool)
	if monlist.Len() > 0 {
		fraction = float64(count) / float64(monlist.Len())
	}
	return count, fraction
}
