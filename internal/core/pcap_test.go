package core_test

import (
	"bytes"
	"testing"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/core"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/rng"
	"ntpddos/internal/scan"
	"ntpddos/internal/vtime"
)

// TestPCAPRoundTripAnalysis verifies the dataset-interchange path: a survey
// sample written as a pcap and re-analysed from the file yields the same
// amplifier and victim census as the live analysis.
func TestPCAPRoundTripAnalysis(t *testing.T) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, nil)
	src := rng.New(3)

	var amps []netaddr.Addr
	for i := 0; i < 6; i++ {
		addr := netaddr.Addr(0x0a000001 + uint32(i)*256)
		srv := ntpd.New(ntpd.Config{Addr: addr, MonlistEnabled: true,
			Profile: ntpd.Profile{TTL: 64}})
		nw.Register(addr, srv)
		amps = append(amps, addr)
	}
	victim := netaddr.MustParseAddr("203.0.113.50")
	engine := attack.NewEngine(nw, src, []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	engine.Launch(attack.Campaign{
		Victim: victim, Port: 80, Start: clock.Now().Add(time.Hour),
		Duration: time.Hour, TriggerRate: 0.2, Amplifiers: amps[:4],
	})
	sched.RunUntil(clock.Now().Add(3 * time.Hour))

	prober := scan.NewProber(netaddr.MustParseAddr("198.51.100.5"), 57915)
	nw.Register(prober.Addr, prober)
	survey := &scan.Survey{Prober: prober, Network: nw, Kind: "monlist",
		DstPort: ntp.Port, Duration: time.Minute,
		Payload: ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)}
	sample := survey.RunSample(clock.Now(), amps)
	direct := core.AnalyzeSample(sample, prober.Addr)

	var buf bytes.Buffer
	if err := scan.WritePCAP(&buf, sample, prober.Addr, 57915, 1); err != nil {
		t.Fatal(err)
	}
	fromFile, err := core.AnalyzeSamplePCAP(&buf, "monlist", sample.Date, prober.Addr)
	if err != nil {
		t.Fatal(err)
	}

	if len(fromFile.Amps) != len(direct.Amps) {
		t.Fatalf("amplifiers: pcap %d vs live %d", len(fromFile.Amps), len(direct.Amps))
	}
	if got, want := fromFile.VictimSet().Sorted(), direct.VictimSet().Sorted(); len(got) != len(want) {
		t.Fatalf("victims: pcap %d vs live %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("victim %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
	if !fromFile.VictimSet().Has(victim) {
		t.Fatal("victim lost in pcap round trip")
	}
	// Per-amplifier table contents must survive the file round trip.
	for addr, rec := range direct.Amps {
		f := fromFile.Amps[addr]
		if f == nil {
			t.Fatalf("amplifier %v missing from pcap analysis", addr)
		}
		if rec.Table != nil && f.Table != nil && len(rec.Table.Entries) != len(f.Table.Entries) {
			t.Fatalf("amplifier %v: table %d vs %d entries", addr,
				len(f.Table.Entries), len(rec.Table.Entries))
		}
	}
}
