package core

import (
	"testing"
	"time"

	"ntpddos/internal/stats"
	"ntpddos/internal/vtime"
)

func hourlyPoints(f func(day, hour int) float64) []stats.Point {
	var out []stats.Point
	for day := 0; day < 14; day++ {
		for h := 0; h < 24; h++ {
			out = append(out, stats.Point{
				Time:  vtime.Epoch.Add(time.Duration(day*24+h) * time.Hour),
				Value: f(day, h),
			})
		}
	}
	return out
}

func TestDiurnalDetectsEveningPeak(t *testing.T) {
	// Evening-heavy traffic with mild day-to-day noise.
	p := NewDiurnalProfile(hourlyPoints(func(day, h int) float64 {
		base := 10.0
		if h >= 18 && h <= 23 {
			base = 40
		}
		return base + float64(day%3)
	}))
	if !p.IsDiurnal() {
		t.Fatalf("evening-peaked series not flagged diurnal: %+v", p.PeakToTrough)
	}
	if p.PeakHour < 18 {
		t.Fatalf("peak hour = %d, want evening", p.PeakHour)
	}
}

func TestFlatSeriesNotDiurnal(t *testing.T) {
	p := NewDiurnalProfile(hourlyPoints(func(day, h int) float64 { return 100 }))
	if p.IsDiurnal() {
		t.Fatalf("flat series flagged diurnal: ratio %v", p.PeakToTrough)
	}
	if p.PeakToTrough != 1 {
		t.Fatalf("flat ratio = %v", p.PeakToTrough)
	}
}

func TestSilentTroughIsExtreme(t *testing.T) {
	p := NewDiurnalProfile(hourlyPoints(func(day, h int) float64 {
		if h == 12 {
			return 50
		}
		return 0
	}))
	if !p.IsDiurnal() || p.PeakHour != 12 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := NewDiurnalProfile(nil)
	if p.IsDiurnal() {
		t.Fatal("empty profile flagged diurnal")
	}
}
