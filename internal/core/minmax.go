package core

// Min64 returns the smaller of two int64 values. It exists for call sites
// that clamp wire-format counters (monlist entry counts, sync-sample tallies)
// where the builtin generic min would force explicit conversions at every
// caller; keeping one named helper here lets the daemon and timesync layers
// share it instead of growing private copies.
func Min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max64 is Min64's counterpart, for symmetric clamping.
func Max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
