package core

import (
	"math"
	"testing"
	"time"

	"ntpddos/internal/geo"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/pbl"
	"ntpddos/internal/routing"
	"ntpddos/internal/vtime"
)

// fakeSample builds a SampleAnalysis with amplifiers and victim counts laid
// out explicitly.
func fakeSample(date time.Time, amps []netaddr.Addr, victims []VictimObservation) *SampleAnalysis {
	s := &SampleAnalysis{Date: date, Kind: "monlist", Amps: make(map[netaddr.Addr]*AmpRecord)}
	for _, a := range amps {
		s.Amps[a] = &AmpRecord{Addr: a, Bytes: 420, Packets: 1, BAF: 5}
	}
	s.Victims = victims
	return s
}

func testRegistries() Registries {
	rt := routing.NewTable()
	rt.Announce(netaddr.MustParsePrefix("10.0.0.0/16"), 100)
	rt.Announce(netaddr.MustParsePrefix("10.1.0.0/16"), 200)
	rt.Announce(netaddr.MustParsePrefix("20.0.0.0/16"), 300)
	rt.Freeze()
	pl := pbl.New()
	pl.Add(netaddr.MustParsePrefix("10.1.0.0/16")) // AS200 space is end hosts
	return Registries{
		Routes: rt,
		PBL:    pl,
		ContinentOf: func(a netaddr.Addr) (geo.Continent, bool) {
			if netaddr.MustParsePrefix("10.0.0.0/16").Contains(a) {
				return geo.NorthAmerica, true
			}
			return geo.SouthAmerica, true
		},
	}
}

func TestPopulationTable(t *testing.T) {
	reg := testRegistries()
	amps := []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"),
		netaddr.MustParseAddr("10.1.0.1"),
	}
	victims := []VictimObservation{
		{Victim: netaddr.MustParseAddr("20.0.0.1"), Amplifier: amps[0], Count: 10},
		{Victim: netaddr.MustParseAddr("20.0.0.2"), Amplifier: amps[0], Count: 10},
	}
	s := fakeSample(vtime.Epoch, amps, victims)
	ampRows, vicRows := PopulationTable([]*SampleAnalysis{s}, reg)
	if len(ampRows) != 1 || len(vicRows) != 1 {
		t.Fatal("row counts wrong")
	}
	a := ampRows[0]
	if a.IPs != 3 || a.Blocks != 2 || a.ASNs != 2 || a.EndHosts != 1 {
		t.Fatalf("amp row = %+v", a)
	}
	if math.Abs(a.EndHostPct-33.33) > 0.1 || math.Abs(a.IPsPerBlock-1.5) > 1e-9 {
		t.Fatalf("amp derived cols = %+v", a)
	}
	v := vicRows[0]
	if v.IPs != 2 || v.Blocks != 1 || v.ASNs != 1 {
		t.Fatalf("victim row = %+v", v)
	}
}

func TestASConcentration(t *testing.T) {
	reg := testRegistries()
	amp1 := netaddr.MustParseAddr("10.0.0.1") // AS100
	amp2 := netaddr.MustParseAddr("10.1.0.1") // AS200
	vic := netaddr.MustParseAddr("20.0.0.1")  // AS300
	s := fakeSample(vtime.Epoch, []netaddr.Addr{amp1, amp2}, []VictimObservation{
		{Victim: vic, Amplifier: amp1, Count: 900},
		{Victim: vic, Amplifier: amp2, Count: 100},
	})
	ampCDF, vicCDF, nAmp, nVic := ASConcentration([]*SampleAnalysis{s}, reg)
	if nAmp != 2 || nVic != 1 {
		t.Fatalf("AS counts = %d/%d", nAmp, nVic)
	}
	if got := ampCDF.ShareOfTop(1); got != 0.9 {
		t.Fatalf("top amp AS share = %v", got)
	}
	if got := vicCDF.ShareOfTop(1); got != 1 {
		t.Fatalf("top victim AS share = %v", got)
	}
}

func TestTopVictimASes(t *testing.T) {
	reg := testRegistries()
	s := fakeSample(vtime.Epoch, nil, []VictimObservation{
		{Victim: netaddr.MustParseAddr("20.0.0.1"), Count: 500},
		{Victim: netaddr.MustParseAddr("10.1.0.9"), Count: 100},
	})
	top := TopVictimASes([]*SampleAnalysis{s}, reg, 10)
	if len(top) != 2 || top[0].ASN != 300 || top[0].Packets != 500 {
		t.Fatalf("top = %+v", top)
	}
}

func TestVictimPacketStats(t *testing.T) {
	s := fakeSample(vtime.Epoch, nil, []VictimObservation{
		{Victim: 1, Count: 100},
		{Victim: 1, Count: 100}, // same victim via second amplifier
		{Victim: 2, Count: 1000},
	})
	rows := VictimPacketStats([]*SampleAnalysis{s})
	if len(rows) != 1 {
		t.Fatal("rows")
	}
	if rows[0].Mean != 600 { // victims saw 200 and 1000
		t.Fatalf("mean = %v", rows[0].Mean)
	}
	if rows[0].Median != 600 {
		t.Fatalf("median = %v", rows[0].Median)
	}
}

func TestPortTally(t *testing.T) {
	s := fakeSample(vtime.Epoch, nil, []VictimObservation{
		{Victim: 1, Port: 80}, {Victim: 2, Port: 80}, {Victim: 3, Port: 123},
	})
	h := PortTally([]*SampleAnalysis{s})
	top := h.TopK(2)
	if top[0].Value != 80 || top[0].Count != 2 || top[1].Value != 123 {
		t.Fatalf("port tally = %+v", top)
	}
}

func TestAttackTimeSeriesMedianStart(t *testing.T) {
	base := vtime.Epoch.Add(100 * time.Hour)
	s := fakeSample(base, nil, []VictimObservation{
		{Victim: 1, Start: base.Add(-3 * time.Hour)},
		{Victim: 1, Start: base.Add(-2 * time.Hour)},
		{Victim: 1, Start: base.Add(-1 * time.Hour)},
		{Victim: 2, Start: base.Add(-5 * time.Hour)},
	})
	ts := AttackTimeSeries([]*SampleAnalysis{s})
	// Victim 1's median start is -2h; victim 2's is -5h.
	if got := ts.At(base.Add(-2 * time.Hour)); got != 1 {
		t.Fatalf("victim-1 attack not at median start: %v", got)
	}
	if got := ts.At(base.Add(-5 * time.Hour)); got != 1 {
		t.Fatalf("victim-2 attack missing: %v", got)
	}
}

func TestDurationStats(t *testing.T) {
	s := fakeSample(vtime.Epoch, nil, []VictimObservation{
		{Victim: 1, Duration: 40 * time.Second},
		{Victim: 2, Duration: 60 * time.Second},
		{Victim: 3, Duration: 6 * time.Hour},
	})
	median, p95 := DurationStats(s)
	if median != 60*time.Second {
		t.Fatalf("median duration = %v", median)
	}
	if p95 < time.Hour {
		t.Fatalf("p95 duration = %v", p95)
	}
}

func TestChurn(t *testing.T) {
	s1 := fakeSample(vtime.Epoch, []netaddr.Addr{1, 2, 3}, nil)
	s2 := fakeSample(vtime.Epoch.Add(7*24*time.Hour), []netaddr.Addr{3, 4}, nil)
	c := Churn([]*SampleAnalysis{s1, s2})
	if c.TotalUnique != 4 {
		t.Fatalf("unique = %d", c.TotalUnique)
	}
	if c.FirstSampleShare != 0.75 {
		t.Fatalf("first share = %v", c.FirstSampleShare)
	}
	if c.SeenOnceShare != 0.75 { // 1,2,4 seen once
		t.Fatalf("once share = %v", c.SeenOnceShare)
	}
}

func TestRemediationByLevel(t *testing.T) {
	reg := testRegistries()
	first := fakeSample(vtime.Epoch, []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.1.1"),
		netaddr.MustParseAddr("10.1.0.1"), netaddr.MustParseAddr("10.1.1.1"),
	}, nil)
	last := fakeSample(vtime.Epoch.Add(14*24*time.Hour), []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"),
	}, nil)
	r := RemediationByLevel([]*SampleAnalysis{first, last}, reg)
	if r.IPPct != 75 {
		t.Fatalf("IP reduction = %v", r.IPPct)
	}
	if r.Slash24Pct != 75 {
		t.Fatalf("/24 reduction = %v", r.Slash24Pct)
	}
	if r.ASPct != 50 { // AS100 and AS200 -> AS100
		t.Fatalf("AS reduction = %v", r.ASPct)
	}
	// The paper's §6.1 ordering: reduction shrinks as aggregation coarsens.
	if r.IPPct < r.ASPct {
		t.Fatal("IP-level reduction must be >= AS-level")
	}
}

func TestRemediationByContinent(t *testing.T) {
	reg := testRegistries()
	first := fakeSample(vtime.Epoch, []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"), // NA
		netaddr.MustParseAddr("10.1.0.1"), netaddr.MustParseAddr("10.1.0.2"), // SA
	}, nil)
	last := fakeSample(vtime.Epoch.Add(24*time.Hour), []netaddr.Addr{
		netaddr.MustParseAddr("10.1.0.1"), netaddr.MustParseAddr("10.1.0.2"),
	}, nil)
	byCont := RemediationByContinent([]*SampleAnalysis{first, last}, reg)
	if byCont[geo.NorthAmerica] != 100 || byCont[geo.SouthAmerica] != 0 {
		t.Fatalf("continent remediation = %+v", byCont)
	}
}

func TestPoolRelativeSeries(t *testing.T) {
	got := PoolRelativeSeries([]int{500, 1000, 100})
	want := []float64{50, 100, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("relative series = %v", got)
		}
	}
	if s := PoolRelativeSeries(nil); len(s) != 0 {
		t.Fatal("empty input")
	}
}

func TestAggregateVolume(t *testing.T) {
	s1 := fakeSample(vtime.Epoch, nil, []VictimObservation{
		{Victim: 1, Count: 1000}, {Victim: 2, Count: 500},
	})
	s1.WindowMedian = 44 * time.Hour
	s2 := fakeSample(vtime.Epoch.Add(7*24*time.Hour), nil, []VictimObservation{
		{Victim: 1, Count: 2000},
	})
	s2.WindowMedian = 44 * time.Hour
	v := AggregateVolume([]*SampleAnalysis{s1, s2}, 420)
	if v.TotalPackets != 3500 || v.UniqueVictims != 2 {
		t.Fatalf("volume = %+v", v)
	}
	if v.EstBytes != 3500*420 {
		t.Fatalf("bytes = %v", v.EstBytes)
	}
	if v.CorrectionFactor < 3.7 || v.CorrectionFactor > 3.9 {
		t.Fatalf("correction = %v", v.CorrectionFactor)
	}
}

func TestPoolOverlap(t *testing.T) {
	monlist := netaddr.NewSet(0)
	dnsPool := netaddr.NewSet(0)
	for i := 0; i < 100; i++ {
		monlist.Add(netaddr.Addr(i))
	}
	for i := 90; i < 200; i++ {
		dnsPool.Add(netaddr.Addr(i))
	}
	n, f := PoolOverlap(monlist, dnsPool)
	if n != 10 || f != 0.1 {
		t.Fatalf("overlap = %d/%v", n, f)
	}
}

func TestBAFAndBytesBoxplots(t *testing.T) {
	s := fakeSample(vtime.Epoch, []netaddr.Addr{1, 2, 3}, nil)
	s.Amps[1].BAF, s.Amps[1].Bytes = 2, 200
	s.Amps[2].BAF, s.Amps[2].Bytes = 4, 400
	s.Amps[3].BAF, s.Amps[3].Bytes = 1000, 100000
	bafs := BAFBoxplots([]*SampleAnalysis{s})
	if bafs[0].Median != 4 || bafs[0].Max != 1000 {
		t.Fatalf("BAF boxplot = %+v", bafs[0])
	}
	bytes := BytesBoxplots([]*SampleAnalysis{s})
	if bytes[0].Median != 400 {
		t.Fatalf("bytes boxplot = %+v", bytes[0])
	}
	ranked := RankedBytes([]*SampleAnalysis{s})
	if len(ranked) != 3 || ranked[0] != 100000 || ranked[2] != 200 {
		t.Fatalf("ranked = %v", ranked)
	}
}
