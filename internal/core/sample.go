package core

import (
	"sort"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/packet"
	"ntpddos/internal/scan"
)

// AmpRecord is one amplifier's behaviour in one sample.
type AmpRecord struct {
	Addr netaddr.Addr
	// Bytes is the aggregate on-wire response volume for the single probe
	// packet — the quantity behind Figure 4a.
	Bytes int64
	// Packets is the Rep-weighted response packet count.
	Packets int64
	// BAF is the on-wire bandwidth amplification factor: Bytes divided by
	// the 84-byte on-wire cost of the probe (§3.2).
	BAF float64
	// Table is the rebuilt monitor table (nil for version samples).
	Table *TableView
	// Mega flags §3.4 behaviour: repeated table copies or >100KB returned.
	Mega bool
}

// SampleAnalysis is the per-sample output of the pipeline.
type SampleAnalysis struct {
	Date time.Time
	Kind string
	// Amps holds every responding amplifier.
	Amps map[netaddr.Addr]*AmpRecord
	// Victims holds every (amplifier, victim) observation.
	Victims []VictimObservation
	// ScannerEntries and NonVictimEntries census the other classes.
	ScannerEntries   int
	NonVictimEntries int
	// WindowMedian is the median largest-last-seen across tables — the
	// §4.2 observation window.
	WindowMedian time.Duration
}

// AmplifierSet returns the sample's responding amplifier addresses.
func (a *SampleAnalysis) AmplifierSet() netaddr.Set {
	s := netaddr.NewSet(len(a.Amps))
	for addr := range a.Amps {
		s.Add(addr)
	}
	return s
}

// VictimSet returns the distinct victim addresses of the sample.
func (a *SampleAnalysis) VictimSet() netaddr.Set {
	s := netaddr.NewSet(0)
	for _, v := range a.Victims {
		s.Add(v.Victim)
	}
	return s
}

// AnalyzeSample runs the full §3/§4 per-sample pipeline over one monlist
// scan sample: rebuild each amplifier's table, compute its on-wire BAF,
// flag mega amplifiers, and extract victim observations.
func AnalyzeSample(sample *scan.Sample, probeAddr netaddr.Addr) *SampleAnalysis {
	out := &SampleAnalysis{
		Date: sample.Date,
		Kind: sample.Kind,
		Amps: make(map[netaddr.Addr]*AmpRecord, len(sample.Responses)),
	}
	probeWire := float64(packet.MinOnWire)
	var windows []time.Duration
	for addr, resp := range sample.Responses {
		rec := &AmpRecord{
			Addr:    addr,
			Bytes:   resp.Bytes,
			Packets: resp.Packets,
			BAF:     float64(resp.Bytes) / probeWire,
		}
		if sample.Kind == "monlist" {
			view, err := RebuildTable(resp.Payloads)
			if err == nil && (len(view.Entries) > 0 || view.Copies > 0) {
				rec.Table = view
				vs, sc, nv := ExtractVictims(view, addr, probeAddr, sample.Date)
				out.Victims = append(out.Victims, vs...)
				out.ScannerEntries += sc
				out.NonVictimEntries += nv
				windows = append(windows, LargestLastSeen(view))
				rec.Mega = view.Copies > 1
			}
		}
		if IsMegaVolume(rec.Bytes) {
			rec.Mega = true
		}
		out.Amps[addr] = rec
	}
	if len(windows) > 0 {
		out.WindowMedian = medianDuration(windows)
	}
	return out
}

func medianDuration(ds []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// MegaAmps returns the sample's mega amplifiers sorted by bytes descending.
func (a *SampleAnalysis) MegaAmps() []*AmpRecord {
	var out []*AmpRecord
	for _, r := range a.Amps {
		if r.Mega {
			out = append(out, r)
		}
	}
	sortAmpsByBytes(out)
	return out
}

// TopAmpsByBytes returns the k largest responders — Figure 4a's right tail.
func (a *SampleAnalysis) TopAmpsByBytes(k int) []*AmpRecord {
	out := make([]*AmpRecord, 0, len(a.Amps))
	for _, r := range a.Amps {
		out = append(out, r)
	}
	sortAmpsByBytes(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func sortAmpsByBytes(amps []*AmpRecord) {
	sort.Slice(amps, func(i, j int) bool {
		if amps[i].Bytes != amps[j].Bytes {
			return amps[i].Bytes > amps[j].Bytes
		}
		return amps[i].Addr < amps[j].Addr
	})
}
