package core

import "testing"

func TestMin64Max64(t *testing.T) {
	cases := []struct {
		a, b, min, max int64
	}{
		{0, 0, 0, 0},
		{1, 2, 1, 2},
		{2, 1, 1, 2},
		{-5, 3, -5, 3},
		{1 << 40, 1<<32 - 1, 1<<32 - 1, 1 << 40},
	}
	for _, c := range cases {
		if got := Min64(c.a, c.b); got != c.min {
			t.Errorf("Min64(%d, %d) = %d, want %d", c.a, c.b, got, c.min)
		}
		if got := Max64(c.a, c.b); got != c.max {
			t.Errorf("Max64(%d, %d) = %d, want %d", c.a, c.b, got, c.max)
		}
	}
}
