package core

import (
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
)

// EntryClass is the §4.2 classification of a monitor-table client.
type EntryClass int

// Classes.
const (
	// NonVictim: normal NTP modes (< 6). No amplification is gained by
	// reflecting them, so attackers don't use them.
	NonVictim EntryClass = iota
	// ScannerOrLowVolume: mode 6/7 but fewer than 3 packets or an average
	// inter-arrival above an hour.
	ScannerOrLowVolume
	// Victim: mode 6/7, at least 3 packets, more than one packet per hour.
	Victim
)

// Classification thresholds from §4.2.
const (
	victimMinCount       = 3
	victimMaxInterarrSec = 3600
)

// ClassifyEntry applies the paper's filter to one table entry. The probing
// (ONP) address is always a non-victim: it is our own scanner.
func ClassifyEntry(e ntp.MonEntry, probeAddr netaddr.Addr) EntryClass {
	if e.Addr == probeAddr {
		return NonVictim
	}
	if e.Mode < ntp.ModeControl { // modes 0..5
		return NonVictim
	}
	if e.Count < victimMinCount || e.AvgInterval > victimMaxInterarrSec {
		return ScannerOrLowVolume
	}
	return Victim
}

// VictimObservation is one (amplifier, victim) pair extracted from a table,
// with the §4.2-derived attack timing.
type VictimObservation struct {
	Victim    netaddr.Addr
	Amplifier netaddr.Addr
	Port      uint16
	Mode      uint8
	Count     int64
	// SampleTime is when the table was captured.
	SampleTime time.Time
	// End is the attack end for this pair: SampleTime minus "last seen".
	End time.Time
	// Duration is estimated as packet count × average inter-arrival.
	Duration time.Duration
	// Start is End minus Duration.
	Start time.Time
}

// ExtractVictims classifies every entry of a rebuilt table and returns the
// victim observations plus a census of the other classes.
func ExtractVictims(view *TableView, amplifier, probeAddr netaddr.Addr, sampleTime time.Time) (victims []VictimObservation, scanners, nonVictims int) {
	for _, e := range view.Entries {
		switch ClassifyEntry(e, probeAddr) {
		case NonVictim:
			nonVictims++
		case ScannerOrLowVolume:
			scanners++
		case Victim:
			end := sampleTime.Add(-time.Duration(e.LastSeen) * time.Second)
			dur := time.Duration(e.Count) * time.Duration(e.AvgInterval) * time.Second
			victims = append(victims, VictimObservation{
				Victim:     e.Addr,
				Amplifier:  amplifier,
				Port:       e.Port,
				Mode:       e.Mode,
				Count:      int64(e.Count),
				SampleTime: sampleTime,
				End:        end,
				Duration:   dur,
				Start:      end.Add(-dur),
			})
		}
	}
	return victims, scanners, nonVictims
}

// LargestLastSeen returns the biggest "last seen" value in a table — the
// §4.2 view-window measure (median ≈44 hours across samples, which is why
// weekly samples under-count attacks by roughly 168/44 ≈ 3.8×).
func LargestLastSeen(view *TableView) time.Duration {
	var max uint32
	for _, e := range view.Entries {
		if e.LastSeen > max {
			max = e.LastSeen
		}
	}
	return time.Duration(max) * time.Second
}

// UnderSampleFactor converts a per-week observation window into the §4.3.3
// correction factor (168 hours per week / window hours).
func UnderSampleFactor(window time.Duration) float64 {
	if window <= 0 {
		return 1
	}
	f := float64(7*24*time.Hour) / float64(window)
	if f < 1 {
		return 1
	}
	return f
}
