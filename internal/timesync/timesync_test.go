package timesync

import (
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

func testHarness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

func testServer(nw *netsim.Network, addr string) netaddr.Addr {
	a := netaddr.MustParseAddr(addr)
	s := ntpd.New(ntpd.Config{
		Addr:    a,
		Stratum: 2,
		Profile: ntpd.Profile{SystemString: "linux", VersionString: "ntpd 4.2.6p5 2013", TTL: 64},
	})
	nw.Register(a, s)
	return a
}

func TestLocalClockDrift(t *testing.T) {
	start := vtime.Epoch
	c := NewLocalClock(start, 100*time.Millisecond, 50) // 50 ppm fast
	at := start.Add(1000 * time.Second)
	want := 100*time.Millisecond + 50*time.Millisecond // 50 ppm over 1000 s
	if got := c.ErrAt(at); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("ErrAt = %v, want ~%v", got, want)
	}
	c.Step(at, -c.ErrAt(at))
	if got := c.ErrAt(at); got > time.Microsecond || got < -time.Microsecond {
		t.Fatalf("error after corrective step = %v, want ~0", got)
	}
}

// TestBenignConvergence runs one disciplined client against four genuine
// servers over the fabric and requires the paper-faithful outcome: one
// initial step, then a slewed steady state within the 128 ms step
// threshold despite 40 ppm of hardware drift and path asymmetry.
func TestBenignConvergence(t *testing.T) {
	nw, sched := testHarness()
	start := sched.Clock().Now()
	end := start.Add(2 * 24 * time.Hour)

	servers := []netaddr.Addr{
		testServer(nw, "198.51.100.10"),
		testServer(nw, "198.51.100.20"),
		testServer(nw, "203.0.113.30"),
		testServer(nw, "203.0.113.40"),
	}
	c := NewClient(Config{
		Addr:       netaddr.MustParseAddr("192.0.2.1"),
		Servers:    servers,
		InitOffset: -1700 * time.Millisecond,
		FreqPPM:    40,
	}, start)
	f := NewFleet()
	f.Add(c)
	f.Register(nw)
	f.Start(nw, start, end)
	sched.RunUntil(end)

	sum := f.Summarize(end)
	if sum.Samples == 0 || sum.Polls == 0 {
		t.Fatalf("no samples flowed: %+v", sum)
	}
	if sum.Steps < 1 {
		t.Fatalf("initial offset of -1.7s was never stepped: %+v", sum)
	}
	if sum.Synced != 1 {
		t.Fatalf("client not synced at end: clock error %v", c.ClockErr(end))
	}
	if e := c.ClockErr(end); e >= DefaultStepThreshold || e <= -DefaultStepThreshold {
		t.Fatalf("steady-state clock error %v breaches the step threshold", e)
	}
	if sum.NoMajority != 0 {
		t.Fatalf("honest servers lost quorum %d times", sum.NoMajority)
	}
	if sum.Panicked != 0 {
		t.Fatalf("benign run panicked")
	}
	// Poll adaptation must have widened intervals beyond minpoll.
	if got := c.sysPoll(); got <= DefaultMinPoll {
		t.Errorf("poll exponent never backed off: still %d", got)
	}
}

// deliver injects a crafted reply from server into the client as if it
// arrived off the fabric.
func deliver(c *Client, nw *netsim.Network, server netaddr.Addr, h *ntp.Header, now time.Time) {
	dg := packet.NewDatagram(server, ntp.Port, c.cfg.Addr, c.cfg.Port, h.AppendTo(nil))
	c.HandlePacket(nw, dg, now)
}

// TestKoDHandling pins the kiss-o'-death state machine: RATE backs off the
// poll interval, DENY/RSTR kill the association, unknown codes pass
// through untouched, and a hardened client ignores forged codes while a
// CVE-class Insecure client honors them blind.
func TestKoDHandling(t *testing.T) {
	server := netaddr.MustParseAddr("198.51.100.10")
	cases := []struct {
		name        string
		code        string
		insecure    bool
		forged      bool // origin cookie does not match the in-flight poll
		wantPoll    int8
		wantStopped bool
		wantCounted func(s Stats) int64
	}{
		{"RATE backs off poll", ntp.KissRATE, false, false, DefaultMinPoll + 1, false,
			func(s Stats) int64 { return s.KodRate }},
		{"DENY stops association", ntp.KissDENY, false, false, DefaultMinPoll, true,
			func(s Stats) int64 { return s.KodDeny }},
		{"RSTR stops association", ntp.KissRSTR, false, false, DefaultMinPoll, true,
			func(s Stats) int64 { return s.KodDeny }},
		{"unknown code ignored", "STEP", false, false, DefaultMinPoll, false,
			func(s Stats) int64 { return s.KodOther }},
		{"forged RATE rejected by hardened client", ntp.KissRATE, false, true, DefaultMinPoll, false,
			func(s Stats) int64 { return s.KodRejected }},
		{"forged DENY honored by insecure client", ntp.KissDENY, true, true, DefaultMinPoll, true,
			func(s Stats) int64 { return s.KodDeny }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, sched := testHarness()
			now := sched.Clock().Now()
			c := NewClient(Config{
				Addr:     netaddr.MustParseAddr("192.0.2.1"),
				Servers:  []netaddr.Addr{server},
				Insecure: tc.insecure,
			}, now)
			a := c.assocs[0]
			a.inflight = true
			a.xmt = ntp.ToNTPTime(now)
			origin := a.xmt
			if tc.forged {
				origin = 0
			}
			deliver(c, nw, server, ntp.NewKissReply(origin, tc.code, now), now)
			if a.poll != tc.wantPoll {
				t.Errorf("poll = %d, want %d", a.poll, tc.wantPoll)
			}
			if a.stopped != tc.wantStopped {
				t.Errorf("stopped = %v, want %v", a.stopped, tc.wantStopped)
			}
			if got := tc.wantCounted(c.stats); got != 1 {
				t.Errorf("expected counter = %d, want 1 (stats %+v)", got, c.stats)
			}
			if c.stats.KissSeen != 1 {
				t.Errorf("KissSeen = %d, want 1", c.stats.KissSeen)
			}
		})
	}
}

// TestFalsetickerVoting pins the selection edge cases: with exactly 2 of 4
// servers lying coherently there is no majority clique and the clock must
// hold; with only 1 of 4 lying the liar is excluded and the clock follows
// the honest majority.
func TestFalsetickerVoting(t *testing.T) {
	now := vtime.Epoch
	newFourServerClient := func() *Client {
		return NewClient(Config{
			Addr: netaddr.MustParseAddr("192.0.2.1"),
			Servers: []netaddr.Addr{
				netaddr.MustParseAddr("198.51.100.1"),
				netaddr.MustParseAddr("198.51.100.2"),
				netaddr.MustParseAddr("198.51.100.3"),
				netaddr.MustParseAddr("198.51.100.4"),
			},
		}, now)
	}

	t.Run("two of four lying: no majority, clock held", func(t *testing.T) {
		c := newFourServerClient()
		c.clk.everSet = true
		before := c.clk.ErrAt(now)
		for i, off := range []float64{0.001, -0.002, 5.0, 5.001} {
			c.assocs[i].addSample(sample{offset: off, delay: 0.02, at: now})
		}
		c.updateClock(now)
		if c.stats.NoMajority != 1 {
			t.Fatalf("NoMajority = %d, want 1", c.stats.NoMajority)
		}
		if c.stats.Steps != 0 || c.stats.Slews != 0 {
			t.Fatalf("clock was updated despite a 2-2 split: %+v", c.stats)
		}
		if got := c.clk.ErrAt(now); got != before {
			t.Fatalf("clock error moved from %v to %v on a held update", before, got)
		}
	})

	t.Run("one of four lying: liar excluded, clock follows majority", func(t *testing.T) {
		c := newFourServerClient()
		c.clk.everSet = true
		for i, off := range []float64{0.001, -0.002, 0.002, 5.0} {
			c.assocs[i].addSample(sample{offset: off, delay: 0.02, at: now})
		}
		c.updateClock(now)
		if c.stats.NoMajority != 0 {
			t.Fatalf("quorum lost with a 3-1 honest majority")
		}
		if c.stats.Slews != 1 {
			t.Fatalf("expected one slew, got %+v", c.stats)
		}
		// The 5 s liar must not have dragged the combined offset.
		if e := c.clk.ErrAt(now); e > 100*time.Millisecond || e < -100*time.Millisecond {
			t.Fatalf("combined offset polluted by falseticker: clock error %v", e)
		}
	})
}

// TestPanicThreshold pins that offsets beyond 1000 s are never applied
// once the clock has been set, and that the client stops disciplining
// afterwards.
func TestPanicThreshold(t *testing.T) {
	now := vtime.Epoch
	c := NewClient(Config{
		Addr:    netaddr.MustParseAddr("192.0.2.1"),
		Servers: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
	}, now)
	c.clk.everSet = true
	c.discipline(1500, now) // 1500 s > PANICT
	if !c.panicked || c.stats.Panics != 1 {
		t.Fatalf("panic threshold not enforced: %+v", c.stats)
	}
	if e := c.clk.ErrAt(now); e != 0 {
		t.Fatalf("panic offset was applied: clock error %v", e)
	}
	c.assocs[0].addSample(sample{offset: 0.5, at: now})
	c.updateClock(now)
	if c.stats.Steps != 0 && c.stats.Slews != 0 {
		t.Fatal("client kept disciplining after panic")
	}
}

// TestInsecureSpoofAcceptance pins the CVE-2015-7704/7705 surface: a
// spoofed reply with no valid origin cookie is rejected by a hardened
// client but steps an Insecure client's clock to the attacker's time.
func TestInsecureSpoofAcceptance(t *testing.T) {
	server := netaddr.MustParseAddr("198.51.100.10")
	forged := func(now time.Time) *ntp.Header {
		h := &ntp.Header{Version: 4, Mode: ntp.ModeServer, Stratum: 2,
			ReceiveTime:  ntp.ToNTPTime(now.Add(10 * time.Second)),
			TransmitTime: ntp.ToNTPTime(now.Add(10 * time.Second))}
		return h
	}

	t.Run("hardened client rejects", func(t *testing.T) {
		nw, sched := testHarness()
		now := sched.Clock().Now()
		c := NewClient(Config{Addr: netaddr.MustParseAddr("192.0.2.1"),
			Servers: []netaddr.Addr{server}}, now)
		deliver(c, nw, server, forged(now), now)
		if c.stats.RejectedOrigin != 1 || c.stats.Samples != 0 {
			t.Fatalf("spoofed reply not rejected: %+v", c.stats)
		}
	})

	t.Run("insecure client steps to attacker time", func(t *testing.T) {
		nw, sched := testHarness()
		now := sched.Clock().Now()
		c := NewClient(Config{Addr: netaddr.MustParseAddr("192.0.2.1"),
			Servers: []netaddr.Addr{server}, Insecure: true}, now)
		deliver(c, nw, server, forged(now), now)
		if c.stats.InsecureAccepts != 1 || c.stats.Steps != 1 {
			t.Fatalf("spoofed reply not accepted blind: %+v", c.stats)
		}
		e := c.ClockErr(now)
		if e < 9*time.Second || e > 11*time.Second {
			t.Fatalf("clock error %v, want ~10s (attacker-controlled)", e)
		}
	})
}

// TestMetricsPassive pins that attaching metrics changes no discipline
// outcome (the scenario-level determinism test covers the full world).
func TestMetricsPassive(t *testing.T) {
	run := func(withMetrics bool) (Stats, time.Duration) {
		nw, sched := testHarness()
		start := sched.Clock().Now()
		end := start.Add(12 * time.Hour)
		servers := []netaddr.Addr{
			testServer(nw, "198.51.100.10"),
			testServer(nw, "203.0.113.30"),
		}
		cfg := Config{Addr: netaddr.MustParseAddr("192.0.2.1"), Servers: servers,
			InitOffset: 300 * time.Millisecond, FreqPPM: -20}
		if withMetrics {
			cfg.Metrics = NewMetrics(newTestRegistry())
		}
		c := NewClient(cfg, start)
		f := NewFleet()
		f.Add(c)
		f.Register(nw)
		f.Start(nw, start, end)
		sched.RunUntil(end)
		return c.Stats(), c.ClockErr(end)
	}
	sOff, eOff := run(false)
	sOn, eOn := run(true)
	if sOff != sOn || eOff != eOn {
		t.Fatalf("metrics perturbed the discipline:\noff %+v err %v\non  %+v err %v",
			sOff, eOff, sOn, eOn)
	}
}

func newTestRegistry() *metrics.Registry { return metrics.NewRegistry() }
