package timesync

import "ntpddos/internal/metrics"

// Metrics are the sync-discipline counters, exported under ntpsync_*.
// They are strictly passive: incrementing them must never change the
// simulation's event order (the metrics-on/off determinism test pins
// this).
type Metrics struct {
	Polls, Samples, Malformed *metrics.Counter
	RejectedOrigin, Kisses    *metrics.Counter
	Steps, Slews, Panics      *metrics.Counter
	NoMajority                *metrics.Counter
	AbsOffset                 *metrics.Histogram
}

// NewMetrics registers the discipline's metric families.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Polls: r.NewCounter("ntpsync_polls_total",
			"Mode 3 polls sent by disciplined clients."),
		Samples: r.NewCounter("ntpsync_samples_total",
			"Offset/delay samples accepted into clock filters."),
		Malformed: r.NewCounter("ntpsync_malformed_total",
			"Replies rejected by the hardened mode 4 decoder."),
		RejectedOrigin: r.NewCounter("ntpsync_rejected_origin_total",
			"Replies dropped by origin-timestamp validation."),
		Kisses: r.NewCounter("ntpsync_kiss_total",
			"Kiss-o'-death replies seen on the wire (honored or not)."),
		Steps: r.NewCounter("ntpsync_steps_total",
			"Clock steps (combined offset at or above the step threshold)."),
		Slews: r.NewCounter("ntpsync_slews_total",
			"Gradual clock slews (offset below the step threshold)."),
		Panics: r.NewCounter("ntpsync_panics_total",
			"Updates refused because the offset exceeded the panic threshold."),
		NoMajority: r.NewCounter("ntpsync_no_majority_total",
			"Clock updates held because falseticker voting lost quorum."),
		AbsOffset: r.NewHistogram("ntpsync_abs_offset_seconds",
			"Absolute combined offset at each accepted sample.",
			metrics.ExponentialBuckets(0.001, 4, 10)),
	}
}
