package timesync

import (
	"time"

	"ntpddos/internal/netsim"
)

// Fleet is the set of disciplined clients in a world, with the scheduling
// glue that starts their poll loops and the end-of-run summary.
type Fleet struct {
	clients []*Client
}

// NewFleet builds an empty fleet.
func NewFleet() *Fleet { return &Fleet{} }

// Add appends a client to the fleet.
func (f *Fleet) Add(c *Client) { f.clients = append(f.clients, c) }

// Clients returns the fleet's clients in insertion order.
func (f *Fleet) Clients() []*Client { return f.clients }

// SetMonitor attaches a telemetry monitor to every client.
func (f *Fleet) SetMonitor(m Monitor) {
	for _, c := range f.clients {
		c.cfg.Monitor = m
	}
}

// Register binds every client to its fabric address.
func (f *Fleet) Register(nw *netsim.Network) {
	for _, c := range f.clients {
		nw.Register(c.cfg.Addr, c)
	}
}

// Start schedules each association's first poll, phase-shifted by a
// deterministic hash of the (client, server) pair so the fleet does not
// poll in lockstep, and lets the poll loops self-reschedule until end.
func (f *Fleet) Start(nw *netsim.Network, start, end time.Time) {
	for _, c := range f.clients {
		c.end = end
		for _, a := range c.assocs {
			a := a
			c := c
			phase := time.Duration(pairPhase(uint64(c.cfg.Addr)<<32|uint64(a.server)) % uint64(pollInterval(c.cfg.MinPoll)))
			nw.Scheduler().At(start.Add(time.Second+phase), func(now time.Time) {
				c.pollAssoc(nw, a, now)
			})
		}
	}
}

// Summary aggregates the fleet's discipline state at the end of a run.
type Summary struct {
	Clients   int
	Synced    int // |clock error| below the step threshold
	Stopped   int // every association killed by DENY/RSTR
	Panicked  int
	LeapArmed int

	Polls, Replies, Samples                           int64
	Malformed, RejectedOrigin, InsecureAccepts        int64
	Steps, Slews, Panics, NoMajority                  int64
	KissSeen, KodRate, KodDeny, KodOther, KodRejected int64

	MaxAbsErr  time.Duration
	MeanAbsErr time.Duration
}

// Summarize measures every client's ground-truth clock error at now and
// folds the lifetime counters together.
func (f *Fleet) Summarize(now time.Time) *Summary {
	s := &Summary{Clients: len(f.clients)}
	var sumErr time.Duration
	for _, c := range f.clients {
		e := c.ClockErr(now)
		if e < 0 {
			e = -e
		}
		sumErr += e
		if e > s.MaxAbsErr {
			s.MaxAbsErr = e
		}
		if e < c.cfg.StepThreshold {
			s.Synced++
		}
		if c.Stopped() {
			s.Stopped++
		}
		if c.panicked {
			s.Panicked++
		}
		if c.leap {
			s.LeapArmed++
		}
		st := c.stats
		s.Polls += st.Polls
		s.Replies += st.Replies
		s.Samples += st.Samples
		s.Malformed += st.Malformed
		s.RejectedOrigin += st.RejectedOrigin
		s.InsecureAccepts += st.InsecureAccepts
		s.Steps += st.Steps
		s.Slews += st.Slews
		s.Panics += st.Panics
		s.NoMajority += st.NoMajority
		s.KissSeen += st.KissSeen
		s.KodRate += st.KodRate
		s.KodDeny += st.KodDeny
		s.KodOther += st.KodOther
		s.KodRejected += st.KodRejected
	}
	if len(f.clients) > 0 {
		s.MeanAbsErr = sumErr / time.Duration(len(f.clients))
	}
	return s
}

// pairPhase is a small FNV-style mix for deterministic poll phases,
// independent of any RNG stream.
func pairPhase(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
