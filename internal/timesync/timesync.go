// Package timesync implements a deterministic client-side NTP sync
// discipline over the simulated fabric: mode 3 polls with exponential
// backoff, the RFC 5905 offset/delay sample math, an 8-deep clock filter,
// falseticker majority voting across servers, and slew-vs-step clock
// updates with the classic 128 ms step and 1000 s panic thresholds. Where
// the rest of the repo models NTP servers as DDoS amplifiers, this package
// models what NTP is actually *for* — so the time-integrity attacks in
// internal/timeattack have a measurable victim: the local clock error of
// every disciplined host.
package timesync

import (
	"math"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
)

// Discipline thresholds and defaults, straight from RFC 5905 §11 and the
// ntpd reference implementation.
const (
	// DefaultStepThreshold: offsets at or above this are stepped, below are
	// slewed (ntpd's STEPT, 128 ms).
	DefaultStepThreshold = 128 * time.Millisecond
	// DefaultPanicThreshold: offsets above this are never applied once the
	// clock has been set (ntpd's PANICT, 1000 s). Gradual-drift attacks
	// stay under it on purpose.
	DefaultPanicThreshold = 1000 * time.Second
	// DefaultMinPoll/DefaultMaxPoll bound the poll exponent: 2^6 = 64 s to
	// 2^10 = 1024 s.
	DefaultMinPoll int8 = 6
	DefaultMaxPoll int8 = 10
	// DefaultPort is the client's ephemeral source port for polls.
	DefaultPort uint16 = 50123
	// filterDepth is the clock-filter shift register size (RFC 5905 §10).
	filterDepth = 8
	// maxFreqCorr caps the discipline's frequency correction at ±500 ppm,
	// ntpd's slew-rate limit; maxFreqAdj bounds a single update's nudge so
	// short poll intervals cannot slam the integrator.
	maxFreqCorr = 500e-6
	maxFreqAdj  = 10e-6
	// agePenalty is RFC 5905's PHI (15 ppm/s): a sample's dispersion grows
	// with age, so the clock filter prefers fresh samples over stale
	// min-delay ones measured against an older clock state.
	agePenalty = 15e-6
)

// Monitor receives passive telemetry from every disciplined client: the
// per-server samples, kiss-o'-death packets seen on the wire, and clock
// events. The drift-aware detector in internal/detect implements it; the
// interface lives here so detect need not be imported.
type Monitor interface {
	ObserveSample(client, server netaddr.Addr, offset, delay time.Duration, now time.Time)
	ObserveKiss(client, server netaddr.Addr, code string, now time.Time)
	// ObserveEvent reports a clock event: "step", "panic", "no-majority"
	// (falseticker voting lost quorum) or "leap" (leap bits armed).
	ObserveEvent(client netaddr.Addr, kind string, magnitude time.Duration, now time.Time)
}

// Clock-event kinds passed to Monitor.ObserveEvent.
const (
	EventStep       = "step"
	EventPanic      = "panic"
	EventNoMajority = "no-majority"
	EventLeap       = "leap"
)

// LocalClock models a host clock as an error process against true
// (simulated) time: a phase offset plus a frequency error, both corrected
// by the discipline. Reading the clock never mutates it; corrections fold
// accumulated drift into the offset first so the model stays piecewise
// linear and exactly reproducible.
type LocalClock struct {
	base    time.Time // true time the offset was last folded
	offset  float64   // seconds of error at base (local − true)
	hwFreq  float64   // hardware frequency error, s/s (fixed)
	corr    float64   // discipline's frequency correction, s/s
	everSet bool      // first update steps unconditionally (ntpd -g)
}

// NewLocalClock builds a clock with the given initial phase error and
// hardware drift in parts per million.
func NewLocalClock(start time.Time, initOffset time.Duration, freqPPM float64) *LocalClock {
	return &LocalClock{base: start, offset: initOffset.Seconds(), hwFreq: freqPPM * 1e-6}
}

// ErrAt returns the clock's error (local − true) at the given true time.
func (c *LocalClock) ErrAt(now time.Time) time.Duration {
	dt := now.Sub(c.base).Seconds()
	return dur(c.offset + (c.hwFreq+c.corr)*dt)
}

// ReadAt returns the local clock reading at the given true time.
func (c *LocalClock) ReadAt(now time.Time) time.Time {
	return now.Add(c.ErrAt(now))
}

// advance folds drift accumulated since base into the offset.
func (c *LocalClock) advance(now time.Time) {
	dt := now.Sub(c.base).Seconds()
	c.offset += (c.hwFreq + c.corr) * dt
	c.base = now
}

// Step applies an immediate phase jump.
func (c *LocalClock) Step(now time.Time, delta time.Duration) {
	c.advance(now)
	c.offset += delta.Seconds()
	c.everSet = true
}

// Slew applies a gradual phase correction and a frequency-correction
// nudge, the latter clamped to ±500 ppm.
func (c *LocalClock) Slew(now time.Time, delta time.Duration, freqAdj float64) {
	c.advance(now)
	c.offset += delta.Seconds()
	c.corr += freqAdj
	if c.corr > maxFreqCorr {
		c.corr = maxFreqCorr
	} else if c.corr < -maxFreqCorr {
		c.corr = -maxFreqCorr
	}
	c.everSet = true
}

// Config describes one disciplined client.
type Config struct {
	// Addr is the client's fabric address; Port its poll source port.
	Addr netaddr.Addr
	Port uint16
	// Servers are the time sources, one association each.
	Servers []netaddr.Addr
	// MinPoll/MaxPoll bound the poll exponent (defaults 6 and 10).
	MinPoll, MaxPoll int8
	// StepThreshold and PanicThreshold override the RFC defaults.
	StepThreshold, PanicThreshold time.Duration
	// InitOffset is the clock's phase error at start; FreqPPM its hardware
	// drift in parts per million.
	InitOffset time.Duration
	FreqPPM    float64
	// Insecure disables RFC 5905 origin-timestamp validation, modeling the
	// CVE-2015-7704/7705 class of clients: spoofed mode 4 replies and
	// forged kiss codes are honored blind. The zero value is the hardened
	// client.
	Insecure bool
	// Metrics and Monitor are optional passive observers.
	Metrics *Metrics
	Monitor Monitor
}

// sample is one clock-filter entry.
type sample struct {
	offset float64 // seconds, measured clock correction
	delay  float64 // seconds, round-trip delay
	at     time.Time
}

// assoc is the per-server association state.
type assoc struct {
	server    netaddr.Addr
	poll      int8
	reach     uint8
	xmt       uint64    // origin cookie of the in-flight poll
	sentLocal time.Time // local-clock transmit time of the in-flight poll
	inflight  bool
	stopped   bool // a honored DENY/RSTR kills the association
	samples   [filterDepth]sample
	nsamples  int
	next      int // ring write index
	jitter    float64
}

func (a *assoc) addSample(s sample) {
	a.samples[a.next] = s
	a.next = (a.next + 1) % filterDepth
	if a.nsamples < filterDepth {
		a.nsamples++
	}
	b := a.best(s.at)
	var sum float64
	for i := 0; i < a.nsamples; i++ {
		d := a.samples[i].offset - b.offset
		sum += d * d
	}
	a.jitter = math.Sqrt(sum / float64(a.nsamples))
}

// best returns the minimum-dispersion sample in the filter: RFC 5905 §10's
// clock-filter selection with delay plus PHI-grown age, so a stale
// min-delay sample loses to a fresh one once its dispersion catches up.
func (a *assoc) best(now time.Time) sample {
	b := a.samples[0]
	bscore := b.delay + agePenalty*now.Sub(b.at).Seconds()
	for i := 1; i < a.nsamples; i++ {
		s := a.samples[i]
		score := s.delay + agePenalty*now.Sub(s.at).Seconds()
		if score < bscore {
			b, bscore = s, score
		}
	}
	return b
}

func (a *assoc) clear() {
	a.nsamples = 0
	a.next = 0
	a.jitter = 0
}

// Stats are a client's lifetime counters, aggregated by Fleet.Summarize.
type Stats struct {
	Polls, Replies, Samples    int64
	Malformed, RejectedOrigin  int64
	InsecureAccepts, Stray     int64
	UnsyncReplies              int64
	Steps, Slews, Panics       int64
	NoMajority                 int64
	KissSeen, KodRate, KodDeny int64
	KodOther, KodRejected      int64
	LeapSignals                int64
}

// Client is one disciplined host on the fabric.
type Client struct {
	cfg        Config
	clk        *LocalClock
	assocs     []*assoc
	byServer   map[netaddr.Addr]*assoc
	end        time.Time
	stats      Stats
	panicked   bool
	leap       bool
	streak     int       // consecutive small-offset updates, drives poll backoff
	lastUpdate time.Time // last system clock update (rate limiter)
}

// NewClient builds a client; start seeds the local clock model.
func NewClient(cfg Config, start time.Time) *Client {
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.MinPoll == 0 {
		cfg.MinPoll = DefaultMinPoll
	}
	if cfg.MaxPoll == 0 {
		cfg.MaxPoll = DefaultMaxPoll
	}
	if cfg.StepThreshold == 0 {
		cfg.StepThreshold = DefaultStepThreshold
	}
	if cfg.PanicThreshold == 0 {
		cfg.PanicThreshold = DefaultPanicThreshold
	}
	c := &Client{
		cfg:      cfg,
		clk:      NewLocalClock(start, cfg.InitOffset, cfg.FreqPPM),
		byServer: make(map[netaddr.Addr]*assoc, len(cfg.Servers)),
	}
	for _, s := range cfg.Servers {
		a := &assoc{server: s, poll: cfg.MinPoll}
		c.assocs = append(c.assocs, a)
		c.byServer[s] = a
	}
	return c
}

// Addr returns the client's fabric address.
func (c *Client) Addr() netaddr.Addr { return c.cfg.Addr }

// ClockErr returns the ground-truth clock error at the given true time.
func (c *Client) ClockErr(now time.Time) time.Duration { return c.clk.ErrAt(now) }

// Stats returns a copy of the client's lifetime counters.
func (c *Client) Stats() Stats { return c.stats }

// Panicked reports whether an update exceeded the panic threshold.
func (c *Client) Panicked() bool { return c.panicked }

// LeapArmed reports whether the client accepted a leap announcement.
func (c *Client) LeapArmed() bool { return c.leap }

// Stopped reports whether every association was killed by DENY/RSTR.
func (c *Client) Stopped() bool {
	for _, a := range c.assocs {
		if !a.stopped {
			return false
		}
	}
	return len(c.assocs) > 0
}

// MarkInsecure downgrades the client to skip origin validation — how the
// attack plane arms its CVE-2015-7704/7705 victims.
func (c *Client) MarkInsecure() { c.cfg.Insecure = true }

// pollAssoc sends one mode 3 poll and reschedules itself at the current
// poll interval until the end of the run.
func (c *Client) pollAssoc(nw *netsim.Network, a *assoc, now time.Time) {
	if a.stopped || !now.Before(c.end) {
		return
	}
	local := c.clk.ReadAt(now)
	a.xmt = ntp.ToNTPTime(local)
	a.sentLocal = local
	a.inflight = true
	a.reach <<= 1
	req := ntp.NewPollRequest(a.poll, a.xmt)
	nw.SendUDP(c.cfg.Addr, c.cfg.Port, a.server, ntp.Port, netsim.TTLLinux, req.AppendTo(nil))
	c.stats.Polls++
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Polls.Inc()
	}
	next := now.Add(pollInterval(a.poll))
	if next.Before(c.end) {
		nw.Scheduler().At(next, func(t time.Time) { c.pollAssoc(nw, a, t) })
	}
}

// HandlePacket implements netsim.Host: decode a candidate mode 4 reply,
// validate its origin, feed the clock filter, and run the discipline.
func (c *Client) HandlePacket(nw *netsim.Network, dg *packet.Datagram, now time.Time) {
	if dg.UDP.DstPort != c.cfg.Port {
		return
	}
	a := c.byServer[dg.IP.Src]
	if a == nil {
		c.stats.Stray++
		return
	}
	r, err := ntp.DecodeSyncReply(dg.Payload)
	if err != nil {
		c.stats.Malformed++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Malformed.Inc()
		}
		return
	}
	c.stats.Replies++
	if r.Kiss != "" {
		c.handleKiss(a, r, now)
		return
	}
	localNow := c.clk.ReadAt(now)
	var off, delay float64
	switch {
	case a.inflight && r.CheckOrigin(a.xmt):
		// The full four-timestamp exchange of RFC 5905 §8.
		t2 := ntp.FromNTPTime(r.ReceiveTime)
		t3 := ntp.FromNTPTime(r.TransmitTime)
		off = (t2.Sub(a.sentLocal) + t3.Sub(localNow)).Seconds() / 2
		delay = (localNow.Sub(a.sentLocal) - t3.Sub(t2)).Seconds()
		if delay < 0 {
			delay = 0
		}
		a.inflight = false
		a.reach |= 1
	case c.cfg.Insecure:
		// CVE-class client: no origin validation, SNTP-style stateless
		// update straight off the server's transmit stamp. This is the
		// surface off-path spoofed replies land on.
		off = ntp.FromNTPTime(r.TransmitTime).Sub(localNow).Seconds()
		delay = 0
		c.stats.InsecureAccepts++
	default:
		c.stats.RejectedOrigin++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RejectedOrigin.Inc()
		}
		return
	}
	if r.Stratum == ntp.StratumUnsynchronized {
		c.stats.UnsyncReplies++
		return
	}
	if r.LeapIndicator == 1 || r.LeapIndicator == 2 {
		c.leap = true
		c.stats.LeapSignals++
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.ObserveEvent(c.cfg.Addr, EventLeap, 0, now)
		}
	}
	a.addSample(sample{offset: off, delay: delay, at: now})
	c.stats.Samples++
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Samples.Inc()
		c.cfg.Metrics.AbsOffset.Observe(math.Abs(off))
	}
	if c.cfg.Monitor != nil {
		c.cfg.Monitor.ObserveSample(c.cfg.Addr, a.server, dur(off), dur(delay), now)
	}
	c.updateClock(now)
}

// handleKiss processes a stratum-0 kiss-o'-death reply. A hardened client
// honors KoD only when the origin cookie matches an in-flight poll —
// forged kiss codes (CVE-2015-7704/7705) only bite Insecure clients.
func (c *Client) handleKiss(a *assoc, r *ntp.SyncReply, now time.Time) {
	c.stats.KissSeen++
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Kisses.Inc()
	}
	if c.cfg.Monitor != nil {
		c.cfg.Monitor.ObserveKiss(c.cfg.Addr, a.server, r.Kiss, now)
	}
	if !c.cfg.Insecure && !(a.inflight && r.CheckOrigin(a.xmt)) {
		c.stats.KodRejected++
		return
	}
	switch r.Kiss {
	case ntp.KissRATE:
		c.stats.KodRate++
		a.inflight = false
		if a.poll < c.cfg.MaxPoll {
			a.poll++
		}
	case ntp.KissDENY, ntp.KissRSTR:
		c.stats.KodDeny++
		a.inflight = false
		a.stopped = true
	default:
		// Unknown kiss codes decode cleanly and are ignored (RFC 5905
		// §7.4: codes not listed are for information only).
		c.stats.KodOther++
	}
}

// updateClock runs falseticker voting over the filtered best sample of
// every live association, combines the truechimers, and disciplines the
// local clock.
func (c *Client) updateClock(now time.Time) {
	if c.panicked {
		return
	}
	// Rate-limit the system update to roughly one per poll interval: every
	// association's sample lands in its filter, but disciplining on each of
	// them would pump the frequency integrator N-servers times per time
	// constant and oscillate (ntpd's discipline runs at the loop time
	// constant for the same reason).
	if !c.lastUpdate.IsZero() && now.Sub(c.lastUpdate) < pollInterval(c.sysPoll())*3/4 {
		return
	}
	c.lastUpdate = now
	type cand struct {
		a *assoc
		s sample
	}
	var cands []cand
	for _, a := range c.assocs {
		if a.stopped || a.nsamples == 0 {
			continue
		}
		b := a.best(now)
		// Associations whose freshest usable sample has aged out (server
		// dead, denied, or unreachable) stop voting.
		if now.Sub(b.at) > 4*pollInterval(a.poll) {
			continue
		}
		cands = append(cands, cand{a, b})
	}
	if len(cands) == 0 {
		return
	}
	// Intersection-style voting: each candidate's correctness interval is
	// offset ± delay/2 (plus a small tolerance); an honest server's
	// interval always contains the true correction, so honest intervals
	// pairwise overlap. A candidate is a truechimer when its interval
	// overlaps a strict majority of all candidates (itself included).
	const tol = 0.005
	n := len(cands)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		li := cands[i].s.offset - cands[i].s.delay/2 - tol
		hi := cands[i].s.offset + cands[i].s.delay/2 + tol
		for j := 0; j < n; j++ {
			lj := cands[j].s.offset - cands[j].s.delay/2 - tol
			hj := cands[j].s.offset + cands[j].s.delay/2 + tol
			if li <= hj && lj <= hi {
				counts[i]++
			}
		}
	}
	var num, den float64
	quorum := false
	for i, cd := range cands {
		if counts[i]*2 <= n {
			continue // falseticker, or no majority exists at all
		}
		quorum = true
		w := 1 / (cd.s.delay + 1e-3)
		num += w * cd.s.offset
		den += w
	}
	if !quorum {
		// A 2-of-4 split (exactly half the servers lying coherently)
		// lands here: no majority clique, so the discipline holds the
		// clock rather than follow either faction.
		c.stats.NoMajority++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.NoMajority.Inc()
		}
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.ObserveEvent(c.cfg.Addr, EventNoMajority, 0, now)
		}
		return
	}
	c.discipline(num/den, now)
}

// discipline applies a combined offset: panic above 1000 s (never applied
// once set), step at or above 128 ms, slew below — with poll-interval
// adaptation on the side.
func (c *Client) discipline(theta float64, now time.Time) {
	abs := math.Abs(theta)
	switch {
	case abs > c.cfg.PanicThreshold.Seconds() && c.clk.everSet:
		c.panicked = true
		c.stats.Panics++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Panics.Inc()
		}
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.ObserveEvent(c.cfg.Addr, EventPanic, dur(theta), now)
		}
		return
	case abs >= c.cfg.StepThreshold.Seconds() || !c.clk.everSet:
		c.clk.Step(now, dur(theta))
		c.stats.Steps++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Steps.Inc()
		}
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.ObserveEvent(c.cfg.Addr, EventStep, dur(theta), now)
		}
		// A step invalidates every filtered sample (they were measured
		// against the pre-step clock) and restarts poll adaptation.
		for _, a := range c.assocs {
			a.clear()
			a.poll = c.cfg.MinPoll
		}
		c.streak = 0
	default:
		// PLL/FLL hybrid: take half the offset now, nudge the frequency
		// estimate with an FLL gain of 1/8 per time constant.
		tau := pollInterval(c.sysPoll()).Seconds()
		adj := theta / (8 * tau)
		if adj > maxFreqAdj {
			adj = maxFreqAdj
		} else if adj < -maxFreqAdj {
			adj = -maxFreqAdj
		}
		c.clk.Slew(now, dur(theta/2), adj)
		c.stats.Slews++
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Slews.Inc()
		}
	}
	// Poll adaptation: widen after sustained small offsets, snap back to
	// minpoll when the offset grows.
	switch {
	case abs < c.cfg.StepThreshold.Seconds()/4:
		c.streak++
		if c.streak >= 4 {
			c.streak = 0
			for _, a := range c.assocs {
				if !a.stopped && a.poll < c.cfg.MaxPoll {
					a.poll++
				}
			}
		}
	case abs > c.cfg.StepThreshold.Seconds()/2:
		c.streak = 0
		for _, a := range c.assocs {
			if !a.stopped {
				a.poll = c.cfg.MinPoll
			}
		}
	}
}

// sysPoll is the shortest active poll exponent, used as the discipline's
// time constant.
func (c *Client) sysPoll() int8 {
	p := c.cfg.MaxPoll
	for _, a := range c.assocs {
		if !a.stopped && a.poll < p {
			p = a.poll
		}
	}
	return p
}

func pollInterval(poll int8) time.Duration {
	return time.Duration(1<<uint(poll)) * time.Second
}

func dur(secs float64) time.Duration {
	return time.Duration(secs * float64(time.Second))
}

// Servers returns the client's configured time sources.
func (c *Client) Servers() []netaddr.Addr { return c.cfg.Servers }

// Port returns the client's poll source port.
func (c *Client) Port() uint16 { return c.cfg.Port }
