package serve

import (
	"ntpddos/internal/metrics"
)

// daemonMetrics is the serving layer's instrumentation. Every family is
// nil-safe: with no Registry configured, all of this no-ops.
type daemonMetrics struct {
	jobsSubmitted *metrics.Counter
	jobsRecovered *metrics.Counter
	jobsByState   *metrics.GaugeVec
	admission     *metrics.CounterVec
	httpSeconds   *metrics.HistogramVec
	clientReqs    *metrics.CounterVec
	jobSeconds    *metrics.Histogram

	// resolved per-state gauges (hot-path children held once).
	stateGauges map[State]*metrics.Gauge
}

// newDaemonMetrics registers the ntpserved family on r (nil r yields
// no-op metrics) and wires the queue-depth and client-count gauges to live
// daemon state.
func newDaemonMetrics(r *metrics.Registry, d *Daemon) *daemonMetrics {
	m := &daemonMetrics{
		jobsSubmitted: r.NewCounter("ntpserved_jobs_submitted_total",
			"Jobs admitted past rate limiting and queue admission."),
		jobsRecovered: r.NewCounter("ntpserved_jobs_recovered_total",
			"Jobs re-admitted from crash-safe checkpoints at startup."),
		jobsByState: r.NewGaugeVec("ntpserved_jobs",
			"Jobs currently in each lifecycle state.", "state"),
		admission: r.NewCounterVec("ntpserved_admission_rejected_total",
			"Submissions refused, by reason (ratelimit, saturated, draining, invalid, toolarge).",
			"reason"),
		httpSeconds: r.NewHistogramVec("ntpserved_http_request_seconds",
			"API request latency by endpoint.",
			metrics.ExponentialBuckets(0.0001, 4, 10), "endpoint"),
		clientReqs: r.NewCounterVec("ntpserved_client_requests_total",
			"API requests by client identity (bounded cardinality).", "client"),
		jobSeconds: r.NewHistogram("ntpserved_job_wall_seconds",
			"Wall-clock seconds per finished job.",
			metrics.ExponentialBuckets(0.5, 2, 12)),
	}
	if d != nil {
		m.clientReqs.SetMaxCardinality(d.cfg.MaxClients)
		r.NewGaugeFunc("ntpserved_queue_depth",
			"Jobs admitted but not yet started (bounded FIFO occupancy).",
			func() float64 { return float64(len(d.queue)) })
		r.NewGaugeFunc("ntpserved_limiter_clients",
			"Distinct client buckets live in the rate limiter.",
			func() float64 { return float64(d.limiter.Clients()) })
	}
	// Resolve one gauge child per state up front so transitions are two
	// atomic ops, and so every state appears in the exposition from the
	// first scrape.
	m.stateGauges = make(map[State]*metrics.Gauge, 5)
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		m.stateGauges[s] = m.jobsByState.With(string(s))
	}
	return m
}

// observeState tracks a job's state transition on the jobs-by-state gauge
// family. Either side may be "" (job creation / store drop).
func (m *daemonMetrics) observeState(old, new State) {
	if g := m.stateGauges[old]; g != nil {
		g.Dec()
	}
	if g := m.stateGauges[new]; g != nil {
		g.Inc()
	}
}

// observeRejection counts one refused submission.
func (m *daemonMetrics) observeRejection(reason string) {
	m.admission.With(reason).Inc()
}
