package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ntpddos/internal/sweep"
)

// Checkpoint format: one newline-delimited JSON file per job, named
// <id>.ckpt inside Config.CheckpointDir. The first line is a ckptHeader
// (enough to recompile and re-admit the job); every subsequent line is one
// sweep.JobRecord, appended and fsynced as the sub-job lands. A killed
// daemon therefore leaves a file whose record lines are exactly the
// completed sub-jobs; on restart those seed sweep.Options.Precompleted and
// only the missing work re-runs. The loader tolerates a torn trailing line
// (the crash may interrupt a write) by truncating back to the last valid
// line before appending resumes.

// ckptHeader is a checkpoint file's first line.
type ckptHeader struct {
	ID        string    `json:"id"`
	Client    string    `json:"client,omitempty"`
	Workers   int       `json:"workers,omitempty"`
	Spec      JobSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`
}

// ckptWriter appends record lines to one job's checkpoint file. Appends are
// serialized (the sweep collector calls OnResult sequentially, but the
// mutex keeps close racing-safe) and fsynced so a SIGKILL never loses an
// acknowledged sub-job.
type ckptWriter struct {
	mu sync.Mutex
	f  *os.File
}

// newCheckpoint creates (truncating) a job's checkpoint with its header.
func newCheckpoint(path string, h ckptHeader) (*ckptWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &ckptWriter{f: f}, nil
}

// reopenCheckpoint opens an existing checkpoint for appending, first
// truncating any torn trailing line back to validLen.
func reopenCheckpoint(path string, validLen int64) (*ckptWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &ckptWriter{f: f}, nil
}

// append persists one landed sub-job record.
func (w *ckptWriter) append(rec sweep.JobRecord) {
	if w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	w.f.Write(append(line, '\n'))
	w.f.Sync()
}

// close releases the file handle (idempotent).
func (w *ckptWriter) close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// loadCheckpoint parses a checkpoint file: the header, every valid record
// line, and the byte offset up to which the file is well-formed (a torn
// trailing line is diagnosed, dropped, and excluded from validLen).
func loadCheckpoint(path string) (h ckptHeader, recs []sweep.JobRecord, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return h, nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return h, nil, 0, fmt.Errorf("checkpoint %s: empty", path)
	}
	headerLine := sc.Bytes()
	if err := json.Unmarshal(headerLine, &h); err != nil {
		return h, nil, 0, fmt.Errorf("checkpoint %s: bad header: %v", path, err)
	}
	if h.ID == "" {
		return h, nil, 0, fmt.Errorf("checkpoint %s: header has no job ID", path)
	}
	validLen = int64(len(headerLine)) + 1
	for sc.Scan() {
		line := sc.Bytes()
		var rec sweep.JobRecord
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" {
			// Torn or corrupt trailing line: everything before it stands.
			break
		}
		recs = append(recs, rec)
		validLen += int64(len(line)) + 1
	}
	return h, recs, validLen, nil
}

// checkpointPath is the file a job checkpoints to.
func (d *Daemon) checkpointPath(id string) string {
	return filepath.Join(d.cfg.CheckpointDir, id+".ckpt")
}

// openJobCheckpoint attaches a fresh checkpoint to a newly admitted job.
// Checkpointing is best-effort: a filesystem error degrades to an
// uncheckpointed job, never a refused submission.
func (d *Daemon) openJobCheckpoint(j *job) {
	if d.cfg.CheckpointDir == "" {
		return
	}
	ck, err := newCheckpoint(d.checkpointPath(j.id), ckptHeader{
		ID: j.id, Client: j.client, Workers: j.workers,
		Spec: j.spec, Submitted: j.submitted,
	})
	if err != nil {
		d.logf("job %s: checkpoint unavailable: %v", j.id, err)
		return
	}
	j.ckpt = ck
}

// releaseCheckpoint closes a terminal job's checkpoint and removes the file
// — unless the daemon is draining, in which case the file is kept so the
// next process resumes the interrupted job from its completed sub-jobs.
func (d *Daemon) releaseCheckpoint(j *job) {
	if j.ckpt == nil {
		return
	}
	j.ckpt.close()
	d.mu.Lock()
	draining := d.draining
	d.mu.Unlock()
	if draining {
		return
	}
	os.Remove(d.checkpointPath(j.id))
}

// recoverJobs scans the checkpoint directory at startup and re-admits every
// job a previous process left behind: completed sub-job records become
// Precompleted slots, so only the missing work re-runs, and the resumed
// manifest is byte-identical to an uninterrupted run.
func (d *Daemon) recoverJobs() {
	entries, err := os.ReadDir(d.cfg.CheckpointDir)
	if err != nil {
		d.logf("checkpoint recovery: %v", err)
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(d.cfg.CheckpointDir, name)
		h, recs, validLen, err := loadCheckpoint(path)
		if err != nil {
			d.logf("checkpoint %s skipped: %v", name, err)
			continue
		}
		jobs, err := h.Spec.Jobs(d.cfg.Base)
		if err != nil {
			d.logf("checkpoint %s skipped: spec no longer compiles: %v", name, err)
			continue
		}
		pre := make(map[int]sweep.JobRecord, len(recs))
		retries := 0
		for _, rec := range recs {
			if rec.Index >= 0 && rec.Index < len(jobs) && jobs[rec.Index].ID == rec.ID {
				pre[rec.Index] = rec
				retries += rec.Retries
			}
		}
		workers := h.Workers
		if workers <= 0 || workers > d.cfg.Workers {
			workers = d.cfg.Workers
		}
		j := d.store.addRecovered(h.ID, h.Client, h.Spec, jobs, workers, h.Submitted)
		j.pre = pre
		j.retries = retries
		if ck, err := reopenCheckpoint(path, validLen); err == nil {
			j.ckpt = ck
		} else {
			d.logf("job %s: checkpoint reopen failed: %v", j.id, err)
		}
		select {
		case d.queue <- j:
			d.met.jobsRecovered.Inc()
			d.logf("job %s recovered from checkpoint: %d/%d sub-jobs already done",
				j.id, len(pre), len(jobs))
		default:
			d.store.cancelQueued(j, "recovered but queue full", d.cfg.now())
			d.releaseCheckpoint(j)
			d.logf("job %s recovered but queue full; canceled", j.id)
		}
	}
}

// seqOf extracts the numeric suffix of a j%06d job ID (0 if malformed).
func seqOf(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}
