package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkServeSubmitToDone measures the full service round trip — HTTP
// submit, worker pickup, sweep execution (instant synthetic runner), poll
// to terminal, manifest download — isolating the daemon's own overhead
// per job from simulation cost.
func BenchmarkServeSubmitToDone(b *testing.B) {
	d, err := New(Config{Runner: syntheticRunner, QueueDepth: 64, RetainJobs: 8})
	if err != nil {
		b.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	client := srv.Client()

	body := `{"seeds":"1-2"}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit = %d", resp.StatusCode)
		}
		for {
			r, err := client.Get(srv.URL + "/v1/jobs/" + st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			r.Body.Close()
			if st.State.Terminal() {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if st.State != StateDone {
			b.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		r, err := client.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r.Body); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
	}
}
