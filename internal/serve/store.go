package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ntpddos/internal/sweep"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle states. Terminal states are done, failed and canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a job's completed/total sub-job count.
type Progress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// JobStatus is the JSON view of one job, returned by the status, list and
// watch endpoints and streamed during a watch.
type JobStatus struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Client    string     `json:"client,omitempty"`
	Spec      JobSpec    `json:"spec"`
	Progress  Progress   `json:"progress"`
	Digest    string     `json:"digest,omitempty"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Retries counts sub-job re-executions absorbed so far (self-healing
	// accounting; a clean job reports none).
	Retries int `json:"retries,omitempty"`
	// Recovered marks a job re-admitted from a crash-safe checkpoint after
	// a daemon restart.
	Recovered bool `json:"recovered,omitempty"`
}

// job is the daemon-internal job record. All fields are guarded by the
// owning store's mutex except jobs and workers, which are immutable after
// submission.
type job struct {
	id        string
	client    string
	spec      JobSpec
	jobs      []sweep.Job
	workers   int
	state     State
	completed int
	manifest  *sweep.Manifest
	digest    string
	errMsg    string
	cancel    context.CancelFunc
	userStop  bool // cancel endpoint vs timeout/drain
	submitted time.Time
	started   time.Time
	finished  time.Time
	retries   int
	recovered bool
	// pre seeds the sweep with sub-jobs a previous process completed; ckpt
	// persists newly landed ones. Both are set before the job is enqueued
	// and only read by the executing worker, so neither needs the mutex.
	pre  map[int]sweep.JobRecord
	ckpt *ckptWriter
}

// store holds every live and recently finished job. It bounds memory by
// evicting the oldest terminal jobs past the retain limit; queued and
// running jobs are never evicted.
type store struct {
	mu     sync.Mutex
	byID   map[string]*job
	order  []*job
	seq    int
	retain int
	// onState, when non-nil, observes every state transition (old may be ""
	// for a new job) — the jobs-by-state gauge hook. Called with mu held;
	// must not call back into the store.
	onState func(old, new State)
}

func newStore(retain int) *store {
	if retain <= 0 {
		retain = 64
	}
	return &store{byID: make(map[string]*job), retain: retain}
}

// add registers a new queued job and returns it.
func (s *store) add(client string, spec JobSpec, jobs []sweep.Job, workers int, now time.Time) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.seq),
		client:    client,
		spec:      spec,
		jobs:      jobs,
		workers:   workers,
		state:     StateQueued,
		submitted: now,
	}
	s.byID[j.id] = j
	s.order = append(s.order, j)
	if s.onState != nil {
		s.onState("", StateQueued)
	}
	s.evictLocked()
	return j
}

// addRecovered re-registers a checkpointed job from a previous process
// under its original ID, advancing the sequence counter past it so new
// submissions never collide.
func (s *store) addRecovered(id, client string, spec JobSpec, jobs []sweep.Job, workers int, submitted time.Time) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := seqOf(id); n > s.seq {
		s.seq = n
	}
	j := &job{
		id:        id,
		client:    client,
		spec:      spec,
		jobs:      jobs,
		workers:   workers,
		state:     StateQueued,
		submitted: submitted,
		recovered: true,
	}
	s.byID[j.id] = j
	s.order = append(s.order, j)
	if s.onState != nil {
		s.onState("", StateQueued)
	}
	s.evictLocked()
	return j
}

// addRetries folds one landed sub-job's retry count into the job total.
func (s *store) addRetries(j *job, n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.retries += n
}

// evictLocked drops the oldest terminal jobs past the retain bound.
func (s *store) evictLocked() {
	terminal := 0
	for _, j := range s.order {
		if j.state.Terminal() {
			terminal++
		}
	}
	if terminal <= s.retain {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if terminal > s.retain && j.state.Terminal() {
			terminal--
			delete(s.byID, j.id)
			if s.onState != nil {
				s.onState(j.state, "") // evicted: leaves the gauge family
			}
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// get returns the job by ID.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// begin transitions a queued job to running and installs its cancel func;
// it returns false when the job was canceled while still queued.
func (s *store) begin(j *job, cancel context.CancelFunc, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	s.transitionLocked(j, StateRunning)
	j.started = now
	j.cancel = cancel
	j.completed = len(j.pre) // precompleted slots count from the start
	return true
}

// progress records a completed sub-job count.
func (s *store) progress(j *job, completed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.completed = completed
}

// finish moves a job to a terminal state with its (possibly partial)
// manifest. The digest and per-record errors live inside the manifest.
func (s *store) finish(j *job, state State, m *sweep.Manifest, errMsg string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	s.transitionLocked(j, state)
	j.manifest = m
	j.errMsg = errMsg
	j.finished = now
	j.cancel = nil
	if m != nil {
		j.completed = len(m.Jobs)
		j.digest = m.Digest()
	}
	s.evictLocked()
}

// drop removes a job that was never admitted (queue saturated): the store
// registration is undone so refused submissions leave no residue.
func (s *store) drop(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.onState != nil {
		s.onState(j.state, "") // decrement only: the job never existed
	}
	delete(s.byID, j.id)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// cancelQueued marks a still-queued job canceled with the given reason
// (the drain path). No-op for any other state.
func (s *store) cancelQueued(j *job, msg string, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	s.transitionLocked(j, StateCanceled)
	j.errMsg = msg
	j.finished = now
	return true
}

// requestCancel asks a job to stop: a queued job is marked canceled
// immediately (the worker will skip it); a running job has its context
// canceled and reaches a terminal state when the sweep unwinds. Returns
// false when the job is already terminal.
func (s *store) requestCancel(j *job, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.userStop = true
		s.transitionLocked(j, StateCanceled)
		j.errMsg = "canceled while queued"
		j.finished = now
		return true
	case StateRunning:
		j.userStop = true
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// transitionLocked flips the state and notifies the gauge hook.
func (s *store) transitionLocked(j *job, to State) {
	if s.onState != nil {
		s.onState(j.state, to)
	}
	j.state = to
}

// status snapshots a job's JSON view.
func (s *store) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *store) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Client:    j.client,
		Spec:      j.spec,
		Progress:  Progress{Completed: j.completed, Total: len(j.jobs)},
		Error:     j.errMsg,
		Submitted: j.submitted,
		Retries:   j.retries,
		Recovered: j.recovered,
	}
	st.Digest = j.digest
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// list snapshots every retained job, oldest first.
func (s *store) list() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.statusLocked(j))
	}
	return out
}

// manifest returns the job's manifest (nil until one exists).
func (s *store) manifest(j *job) *sweep.Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.manifest
}

// userStopped reports whether cancellation was requested via the API.
func (s *store) userStopped(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.userStop
}
