package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/scenario"
	"ntpddos/internal/sweep"
)

// syntheticRunner is deterministic per job ID and instant — the daemon's
// lifecycle machinery can be exercised without simulating any worlds.
func syntheticRunner(j sweep.Job) (sweep.Result, error) {
	return sweep.Result{
		Digest: "digest:" + j.ID,
		Values: map[string]float64{"len": float64(len(j.ID)), "seed": float64(j.Cfg.Seed)},
	}, nil
}

// gateRunner blocks every sub-job until release is closed (or fed), and
// reports entry on entered — the lever for queued/running/drain tests.
type gateRunner struct {
	entered chan string
	release chan struct{}
}

func newGateRunner() *gateRunner {
	return &gateRunner{entered: make(chan string, 64), release: make(chan struct{})}
}

func (g *gateRunner) run(j sweep.Job) (sweep.Result, error) {
	g.entered <- j.ID
	<-g.release
	return sweep.Result{Digest: "digest:" + j.ID}, nil
}

type env struct {
	d   *Daemon
	srv *httptest.Server
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = syntheticRunner
	}
	if cfg.WatchInterval == 0 {
		cfg.WatchInterval = 10 * time.Millisecond
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Drain(ctx) // idempotent enough: already-draining is fine here
	})
	return &env{d: d, srv: srv}
}

func (e *env) submit(t *testing.T, body string, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", e.srv.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := e.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func (e *env) submitOK(t *testing.T, body string) JobStatus {
	t.Helper()
	resp, b := e.submit(t, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202; body: %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit response = %+v, want queued with ID", st)
	}
	return st
}

func (e *env) status(t *testing.T, id string) JobStatus {
	t.Helper()
	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s = %d: %s", id, resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitFor polls a job's status until pred holds.
func (e *env) waitFor(t *testing.T, id string, what string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := e.status(t, id)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last status: %+v", id, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (e *env) waitState(t *testing.T, id string, want State) JobStatus {
	t.Helper()
	return e.waitFor(t, id, string(want), func(st JobStatus) bool {
		if st.State.Terminal() && st.State != want {
			t.Fatalf("job %s reached terminal %s (err=%q), want %s", id, st.State, st.Error, want)
		}
		return st.State == want
	})
}

// TestSubmitToResultDigestParity is the tentpole acceptance check at the
// package level: the manifest fetched over HTTP is byte-identical to the
// same spec run directly on the sweep engine, regardless of the daemon's
// worker count.
func TestSubmitToResultDigestParity(t *testing.T) {
	base := scenario.Config{Scale: 1000}
	spec := sweep.Spec{
		Name:   "parity",
		Seeds:  "1-3",
		Scales: []int{100, 200},
		Spoof:  []float64{0.1, 0.25},
	}
	jobs, err := spec.Jobs(base)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	want, err := sweep.Run(jobs, syntheticRunner, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatalf("in-process sweep: %v", err)
	}

	for _, workers := range []int{1, 4} {
		e := newEnv(t, Config{Base: base, Workers: workers})
		body, _ := json.Marshal(JobSpec{Spec: spec})
		st := e.submitOK(t, string(body))
		fin := e.waitState(t, st.ID, StateDone)
		if fin.Digest != want.Digest() {
			t.Errorf("workers=%d: digest %s != in-process %s", workers, fin.Digest, want.Digest())
		}
		if fin.Progress.Completed != len(jobs) || fin.Progress.Total != len(jobs) {
			t.Errorf("workers=%d: progress %+v, want %d/%d", workers, fin.Progress, len(jobs), len(jobs))
		}

		resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(got, want.CanonicalJSON()) {
			t.Errorf("workers=%d: HTTP manifest bytes differ from in-process canonical JSON", workers)
		}

		resp, err = e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/result?format=csv")
		if err != nil {
			t.Fatalf("result csv: %v", err)
		}
		csv, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("csv content type = %q", ct)
		}
		if string(csv) != want.JobTable().CSV() {
			t.Errorf("workers=%d: CSV differs from in-process JobTable", workers)
		}
	}
}

func TestListAndStatusLifecycle(t *testing.T) {
	e := newEnv(t, Config{})
	a := e.submitOK(t, `{"seeds":"1,2"}`)
	b := e.submitOK(t, `{"seeds":"3"}`)
	e.waitState(t, a.ID, StateDone)
	e.waitState(t, b.ID, StateDone)

	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Fatalf("list = %+v, want [%s %s] oldest first", list.Jobs, a.ID, b.ID)
	}
	for _, st := range list.Jobs {
		if st.State != StateDone || st.Digest == "" || st.Started == nil || st.Finished == nil {
			t.Errorf("listed job %s incomplete: %+v", st.ID, st)
		}
	}
}

// TestAdmissionSaturatedQueue is the acceptance admission check: past the
// bounded queue, submissions get 429 with a Retry-After estimate, and the
// refused job leaves no residue in the store.
func TestAdmissionSaturatedQueue(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1, QueueDepth: 1, Registry: metrics.NewRegistry()})

	running := e.submitOK(t, `{"seeds":"1"}`)
	e.waitState(t, running.ID, StateRunning)
	<-g.entered

	queued := e.submitOK(t, `{"seeds":"2"}`)

	resp, body := e.submit(t, `{"seeds":"3"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429; body: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("429 body missing reason: %s", body)
	}

	// The refused job must not appear in the list.
	resp2, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	json.NewDecoder(resp2.Body).Decode(&list)
	resp2.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("store holds %d jobs after refusal, want 2", len(list.Jobs))
	}

	close(g.release)
	e.waitState(t, running.ID, StateDone)
	e.waitState(t, queued.ID, StateDone)

	if text := e.d.cfg.Registry.RenderText(); !strings.Contains(text,
		`ntpserved_admission_rejected_total{reason="saturated"} 1`) {
		t.Error("saturated rejection not counted in /metrics")
	}
}

func TestRateLimitPerClient(t *testing.T) {
	e := newEnv(t, Config{Rate: 0.001, Burst: 1})

	resp, body := e.submit(t, `{"seeds":"1"}`, "X-API-Key", "tenant-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	resp, body = e.submit(t, `{"seeds":"2"}`, "X-API-Key", "tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 without Retry-After")
	}
	if !strings.Contains(string(body), "ratelimit") {
		t.Errorf("429 body missing reason: %s", body)
	}
	// A different tenant has its own bucket.
	resp, body = e.submit(t, `{"seeds":"3"}`, "Authorization", "Bearer tenant-b")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant submit = %d, want 202: %s", resp.StatusCode, body)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1, QueueDepth: 2})

	running := e.submitOK(t, `{"seeds":"1"}`)
	e.waitState(t, running.ID, StateRunning)
	<-g.entered
	queued := e.submitOK(t, `{"seeds":"2"}`)

	cresp, err := e.srv.Client().Post(e.srv.URL+"/v1/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued = %d, want 202", cresp.StatusCode)
	}
	st := e.status(t, queued.ID)
	if st.State != StateCanceled || !strings.Contains(st.Error, "queued") {
		t.Fatalf("canceled queued job status = %+v", st)
	}

	close(g.release)
	e.waitState(t, running.ID, StateDone)
	// The worker must skip the canceled job, not resurrect it.
	if st := e.status(t, queued.ID); st.State != StateCanceled {
		t.Fatalf("canceled job resurrected: %+v", st)
	}
}

func TestCancelRunningJobYieldsPartialManifest(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1})

	// workers=1 so exactly one sub-job is in flight when we cancel.
	st := e.submitOK(t, `{"seeds":"1-4","workers":1}`)
	e.waitState(t, st.ID, StateRunning)
	<-g.entered // sub-job 1 executing; dispatcher blocked on sub-job 2

	cresp, err := e.srv.Client().Post(e.srv.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running = %d, want 202", cresp.StatusCode)
	}
	close(g.release)

	fin := e.waitState(t, st.ID, StateCanceled)
	if fin.Digest == "" {
		t.Error("canceled job has no partial-manifest digest")
	}
	if fin.Error != "canceled" {
		t.Errorf("canceled job error = %q", fin.Error)
	}

	// The partial manifest downloads, and records the skipped sub-jobs.
	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial result = %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "canceled before start") {
		t.Errorf("partial manifest does not record skipped sub-jobs: %s", b)
	}
}

// TestDrain is the acceptance drain check: readiness flips to 503 while
// status still answers, submissions are refused, queued jobs are canceled
// with a reason, and the running job finishes before Drain returns.
func TestDrain(t *testing.T) {
	g := newGateRunner()
	reg := metrics.NewRegistry()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1, QueueDepth: 4, Registry: reg})

	running := e.submitOK(t, `{"seeds":"1"}`)
	e.waitState(t, running.ID, StateRunning)
	<-g.entered
	queued := e.submitOK(t, `{"seeds":"2"}`)

	drained := make(chan error, 1)
	go func() { drained <- e.d.Drain(context.Background()) }()

	// Readiness flips immediately, before any job completes.
	deadline := time.Now().Add(5 * time.Second)
	for e.d.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("readiness never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := e.srv.Client().Get(e.srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	// Status endpoints keep answering while draining.
	if st := e.status(t, running.ID); st.State != StateRunning {
		t.Fatalf("running job state during drain = %s", st.State)
	}
	// The queued job was canceled with a reason.
	qst := e.waitFor(t, queued.ID, "canceled", func(st JobStatus) bool { return st.State == StateCanceled })
	if !strings.Contains(qst.Error, "draining") {
		t.Errorf("drained queued job error = %q", qst.Error)
	}
	// New submissions are refused with 503.
	sresp, sbody := e.submit(t, `{"seeds":"3"}`)
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503: %s", sresp.StatusCode, sbody)
	}

	// Release the running job; Drain completes cleanly.
	close(g.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := e.status(t, running.ID); st.State != StateDone {
		t.Fatalf("running job after drain = %s, want done", st.State)
	}
	if text := reg.RenderText(); !strings.Contains(text,
		`ntpserved_admission_rejected_total{reason="draining"} 1`) {
		t.Error("draining rejection not counted in /metrics")
	}
}

// TestDrainDeadlineCheckpointsRunning: when the drain context expires, the
// running job's context is canceled so it lands a partial manifest instead
// of holding exit hostage.
func TestDrainDeadlineCheckpointsRunning(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1})

	st := e.submitOK(t, `{"seeds":"1-3","workers":1}`)
	e.waitState(t, st.ID, StateRunning)
	<-g.entered

	// Sub-jobs unblock only after drain cancels the job's context: free the
	// gate from a goroutine once the drain deadline has certainly passed.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	go func() {
		<-ctx.Done()
		time.Sleep(10 * time.Millisecond)
		close(g.release)
	}()
	if err := e.d.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	fin := e.status(t, st.ID)
	if !fin.State.Terminal() {
		t.Fatalf("job not terminal after deadline drain: %+v", fin)
	}
	if fin.Digest == "" {
		t.Error("checkpointed job has no partial-manifest digest")
	}
}

func TestPanickingSubJobIsIsolated(t *testing.T) {
	runner := func(j sweep.Job) (sweep.Result, error) {
		if j.Cfg.Seed == 2 {
			panic("poisoned world")
		}
		return syntheticRunner(j)
	}
	e := newEnv(t, Config{Runner: runner})
	st := e.submitOK(t, `{"seeds":"1-3"}`)
	fin := e.waitState(t, st.ID, StateDone)
	if !strings.Contains(fin.Error, "1 of 3 sub-jobs failed") {
		t.Errorf("job error = %q, want failed sub-job note", fin.Error)
	}
	// The daemon survives: a fresh submission still completes.
	st2 := e.submitOK(t, `{"seeds":"5"}`)
	e.waitState(t, st2.ID, StateDone)
}

func TestPerJobTimeout(t *testing.T) {
	runner := func(j sweep.Job) (sweep.Result, error) {
		time.Sleep(200 * time.Millisecond)
		return syntheticRunner(j)
	}
	e := newEnv(t, Config{Runner: runner, Concurrency: 1})
	st := e.submitOK(t, `{"seeds":"1-3","workers":1,"timeout_s":0.05}`)
	fin := e.waitState(t, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "timeout") {
		t.Errorf("timed-out job error = %q", fin.Error)
	}
	if fin.Digest == "" {
		t.Error("timed-out job has no partial-manifest digest")
	}
}

func TestWatchStreamsProgressToTerminal(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1, WatchInterval: 5 * time.Millisecond})
	st := e.submitOK(t, `{"seeds":"1-2","workers":1}`)

	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/watch")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("watch content type = %q", ct)
	}
	go func() {
		<-g.entered
		close(g.release)
	}()
	var lines []JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var u JobStatus
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		lines = append(lines, u)
	}
	if len(lines) == 0 {
		t.Fatal("watch streamed no updates")
	}
	last := lines[len(lines)-1]
	if last.State != StateDone || last.Progress.Completed != 2 {
		t.Fatalf("final watch update = %+v, want done 2/2", last)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newEnv(t, Config{MaxJobsPerSweep: 4})
	cases := []struct {
		name, body string
		wantStatus int
		wantReason string
	}{
		{"malformed json", `{"seeds":`, 400, "invalid"},
		{"unknown field", `{"seeds":"1","bogus":true}`, 400, "invalid"},
		{"missing seeds", `{"name":"x"}`, 400, "invalid"},
		{"bad knob", `{"seeds":"1","detect":"maybe"}`, 400, "invalid"},
		{"too large", `{"seeds":"1-8"}`, 400, "toolarge"},
		{"negative timeout", `{"seeds":"1","timeout_s":-1}`, 400, "invalid"},
		{"bad vector", `{"seeds":"1","vectors":["smurf"]}`, 400, "invalid"},
		{"bad pulse share", `{"seeds":"1","pulse":[1.5]}`, 400, "invalid"},
		{"bad timeattack share", `{"seeds":"1","timesync":8,"timeattack":[1.5]}`, 400, "invalid"},
		{"timeattack without timesync", `{"seeds":"1","timeattack":[0.5]}`, 400, "invalid"},
	}
	for _, tc := range cases {
		resp, body := e.submit(t, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
			continue
		}
		var eb struct {
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Reason != tc.wantReason {
			t.Errorf("%s: reason = %q (err %v), want %q", tc.name, eb.Reason, err, tc.wantReason)
		}
	}

	// Campaign fields flow through the embedded sweep.Spec: the daemon
	// accepts them and expands the same grid the CLI would.
	st := e.submitOK(t, `{"seeds":"1","vectors":["dns-any","ssdp"],"pulse":[0,0.3],"multi":[0.2]}`)
	fin := e.waitState(t, st.ID, StateDone)
	if fin.Progress.Total != 2 {
		t.Fatalf("campaign spec expanded %d jobs, want 2", fin.Progress.Total)
	}

	// The timesync plane rides the same embedded spec: clients as a base
	// setting, attack shares as a grid dimension.
	st = e.submitOK(t, `{"seeds":"1","timesync":16,"timeattack":[0,0.5]}`)
	fin = e.waitState(t, st.ID, StateDone)
	if fin.Progress.Total != 2 {
		t.Fatalf("timesync spec expanded %d jobs, want 2", fin.Progress.Total)
	}
}

func TestNotFoundAndNotReady(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, Concurrency: 1})

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/watch"} {
		resp, err := e.srv.Client().Get(e.srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	st := e.submitOK(t, `{"seeds":"1"}`)
	e.waitState(t, st.ID, StateRunning)
	<-g.entered
	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running = %d, want 409", resp.StatusCode)
	}
	resp, err = e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + st.ID + "/result?format=xml")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format = %d, want 400", resp.StatusCode)
	}
	close(g.release)
	e.waitState(t, st.ID, StateDone)

	cresp, err := e.srv.Client().Post(e.srv.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal job = %d, want 409", cresp.StatusCode)
	}
}

func TestTerminalJobEviction(t *testing.T) {
	e := newEnv(t, Config{RetainJobs: 2})
	var ids []string
	for i := 1; i <= 4; i++ {
		st := e.submitOK(t, fmt.Sprintf(`{"seeds":"%d"}`, i))
		e.waitState(t, st.ID, StateDone)
		ids = append(ids, st.ID)
	}
	// The two oldest terminal jobs are gone; the two newest remain.
	for _, id := range ids[:2] {
		resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s = %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[2:] {
		if st := e.status(t, id); st.State != StateDone {
			t.Errorf("retained job %s = %s", id, st.State)
		}
	}
}

func TestMetricsEndpointOnAPIMux(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newEnv(t, Config{Registry: reg})
	st := e.submitOK(t, `{"seeds":"1-2"}`)
	e.waitState(t, st.ID, StateDone)

	resp, err := e.srv.Client().Get(e.srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		"ntpserved_jobs_submitted_total 1",
		`ntpserved_jobs{state="done"} 1`,
		"ntpserved_queue_depth 0",
		"sweep_jobs_completed_total 2",
		`ntpserved_http_request_seconds_count{endpoint="submit"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, clientLine := range []string{"ntpserved_client_requests_total{client="} {
		if !strings.Contains(text, clientLine) {
			t.Errorf("/metrics missing per-client counters")
		}
	}
}
