// Package serve is the simulation-as-a-service layer: a long-running,
// multi-tenant daemon that accepts sweep job specs over HTTP, admits them
// through per-client rate limiting and a bounded FIFO queue, drains the
// queue with a worker pool built on internal/sweep, and serves the job
// lifecycle — submit, status, list, result manifest, cancel, streamed
// progress — plus /metrics and /healthz on the same mux.
//
// The robustness contract, in order of defense:
//
//  1. per-client token buckets (bounded cardinality) throttle request
//     floods before any work is attempted;
//  2. a queue-depth admission controller rejects submissions with 429 and
//     a Retry-After estimate once the bounded queue is full — the daemon
//     sheds load instead of queueing unboundedly;
//  3. per-job timeouts and the cancel endpoint thread context cancellation
//     into sweep.RunContext, so a stuck or oversized job releases its
//     worker at the next sub-job boundary with a partial manifest;
//  4. panics inside a job are isolated twice (per sub-job by the sweep
//     engine, per job by the worker), so one poisoned world cannot take
//     the daemon down;
//  5. graceful drain: readiness flips to 503 first, submissions are
//     refused, running jobs finish (or are checkpointed at the drain
//     deadline), and only then does the daemon exit.
//
// Determinism is inherited, not re-proven: the daemon executes exactly the
// job lists a Spec compiles to and returns the sweep engine's canonical
// manifest bytes, so a job submitted over HTTP is byte-identical to the
// same spec run in-process at any worker count.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/scenario"
	"ntpddos/internal/sweep"
)

// JobSpec is the submission payload: a declarative sweep spec plus
// service-level knobs.
type JobSpec struct {
	sweep.Spec
	// TimeoutS bounds the job's wall-clock execution in seconds (0 = the
	// daemon's default). On expiry, running sub-jobs finish, queued
	// sub-jobs are skipped, and the job fails with a partial manifest.
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// Workers requests a per-job sweep pool size, clamped to the daemon's
	// configured maximum. 0 means the daemon default. Worker count never
	// changes manifest bytes — only wall time.
	Workers int `json:"workers,omitempty"`
}

// Config tunes a Daemon. The zero value of every field has a usable
// default; only Runner is required.
type Config struct {
	// Base is the configuration job specs compile against (their Scale/End
	// overrides apply on top of it).
	Base scenario.Config
	// Runner executes one sub-job (ntpddos.SweepRunner in production;
	// synthetic runners in tests and benchmarks). Required.
	Runner sweep.Runner
	// Workers is the per-job sweep pool size and its cap (0 = GOMAXPROCS).
	Workers int
	// Concurrency is how many jobs execute at once (default 1: sweeps are
	// internally parallel, so one job already saturates the machine).
	Concurrency int
	// QueueDepth bounds the FIFO of admitted-but-not-started jobs
	// (default 16). Beyond it, submissions get 429 + Retry-After.
	QueueDepth int
	// MaxJobsPerSweep caps how many sub-jobs one submission may expand to
	// (default 1024).
	MaxJobsPerSweep int
	// RetainJobs bounds how many terminal jobs are kept for result
	// download (default 64).
	RetainJobs int
	// Rate and Burst configure the per-client token bucket (tokens/second
	// and bucket size). Rate <= 0 disables rate limiting; Burst defaults
	// to 10 when limiting is on.
	Rate  float64
	Burst float64
	// MaxClients bounds limiter and per-client-metric cardinality
	// (default 256).
	MaxClients int
	// JobTimeout is the default per-job timeout (0 = none).
	JobTimeout time.Duration
	// CheckpointDir, when set, enables crash-safe job checkpoints: every
	// admitted job gets an ndjson file recording its spec and each landed
	// sub-job, and a restarted daemon re-admits interrupted jobs with the
	// completed sub-jobs precompleted — the resumed manifest is
	// byte-identical to an uninterrupted run. Empty disables persistence.
	CheckpointDir string
	// MaxRetries re-executes a failed sub-job (runner error, panic, or
	// injected fault) up to this many times before its error lands in the
	// manifest; RetryDelay is the first backoff, doubling per attempt and
	// capped at 30s (0 retries immediately).
	MaxRetries int
	RetryDelay time.Duration
	// WatchInterval is the progress-stream poll period (default 500ms).
	WatchInterval time.Duration
	// Registry, when non-nil, attaches instrumentation and mounts
	// /metrics on the daemon's mux.
	Registry *metrics.Registry
	// Log, when non-nil, receives one line per lifecycle event.
	Log func(format string, args ...any)
	// now is the clock (tests inject a fake one).
	now func() time.Time
}

// Daemon is a running simulation service.
type Daemon struct {
	cfg     Config
	store   *store
	limiter *Limiter
	queue   chan *job
	ready   metrics.Readiness
	mux     *http.ServeMux
	met     *daemonMetrics
	swMet   *sweep.Metrics

	mu       sync.Mutex // guards draining and queue close
	draining bool
	wg       sync.WaitGroup

	// avgJobSeconds is an EWMA of job wall time feeding Retry-After
	// estimates; guarded by mu.
	avgJobSeconds float64
}

// New builds a daemon. Call Start to launch its workers, Handler for its
// HTTP surface, and Drain before exit.
func New(cfg Config) (*Daemon, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("serve: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxJobsPerSweep <= 0 {
		cfg.MaxJobsPerSweep = 1024
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 64
	}
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 256
	}
	if cfg.WatchInterval <= 0 {
		cfg.WatchInterval = 500 * time.Millisecond
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
	}
	d := &Daemon{
		cfg:     cfg,
		store:   newStore(cfg.RetainJobs),
		limiter: NewLimiter(cfg.Rate, cfg.Burst, cfg.MaxClients),
		queue:   make(chan *job, cfg.QueueDepth),
	}
	d.met = newDaemonMetrics(cfg.Registry, d)
	d.swMet = sweep.NewMetrics(cfg.Registry)
	d.store.onState = d.met.observeState
	d.mux = d.buildMux()
	return d, nil
}

// Start recovers checkpointed jobs from a previous process, launches the
// job workers, and flips readiness to healthy.
func (d *Daemon) Start() {
	if d.cfg.CheckpointDir != "" {
		d.recoverJobs()
	}
	for w := 0; w < d.cfg.Concurrency; w++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for j := range d.queue {
				d.runJob(j)
			}
		}()
	}
	d.ready.Set(true)
	d.logf("serving: %d job workers, %d-deep queue, %d sweep workers/job",
		d.cfg.Concurrency, d.cfg.QueueDepth, d.cfg.Workers)
}

// Handler returns the daemon's full HTTP surface: the job API plus
// /healthz and (when a Registry is configured) /metrics.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Ready reports the /healthz readiness state.
func (d *Daemon) Ready() bool { return d.ready.Ready() }

// Drain performs the graceful-shutdown sequence: readiness flips to 503
// immediately (load balancers stop routing; status endpoints keep
// answering), new submissions are refused, still-queued jobs are canceled,
// and running jobs finish. If ctx expires first, running jobs are
// checkpointed: their contexts are canceled so they unwind with partial
// manifests at the next sub-job boundary, and Drain waits for that unwind.
func (d *Daemon) Drain(ctx context.Context) error {
	d.ready.Set(false)
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return fmt.Errorf("serve: already draining")
	}
	d.draining = true
	// Flush the admitted-but-not-started queue: those jobs are canceled,
	// not silently dropped — their status records say why.
	flushed := 0
	for {
		select {
		case j := <-d.queue:
			d.store.cancelQueued(j, "canceled: daemon draining", d.cfg.now())
			flushed++
			continue
		default:
		}
		break
	}
	close(d.queue)
	d.mu.Unlock()
	d.logf("draining: %d queued jobs canceled, waiting for running jobs", flushed)

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		d.logf("drained: all jobs finished")
		return nil
	case <-ctx.Done():
		// Deadline: checkpoint running jobs by canceling their contexts,
		// then wait for the partial manifests to land.
		d.cancelRunning()
		<-done
		d.logf("drained: running jobs checkpointed at deadline")
		return ctx.Err()
	}
}

// cancelRunning cancels every running job's context.
func (d *Daemon) cancelRunning() {
	s := d.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.order {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
}

// submit admits a compiled job. It returns the queued job, or an
// admissionError describing the refusal.
func (d *Daemon) submit(client string, spec JobSpec, jobs []sweep.Job) (*job, *admissionError) {
	workers := spec.Workers
	if workers <= 0 || workers > d.cfg.Workers {
		workers = d.cfg.Workers
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return nil, &admissionError{
			status: http.StatusServiceUnavailable,
			reason: "draining",
			msg:    "daemon is draining; resubmit elsewhere",
		}
	}
	j := d.store.add(client, spec, jobs, workers, d.cfg.now())
	d.openJobCheckpoint(j)
	select {
	case d.queue <- j:
		d.met.jobsSubmitted.Inc()
		d.logf("job %s admitted: client=%s jobs=%d workers=%d", j.id, client, len(jobs), workers)
		return j, nil
	default:
		// Queue saturated: undo the store registration and shed load.
		if j.ckpt != nil {
			j.ckpt.close()
			os.Remove(d.checkpointPath(j.id))
		}
		d.store.drop(j)
		retry := d.retryAfterLocked()
		return nil, &admissionError{
			status:     http.StatusTooManyRequests,
			reason:     "saturated",
			msg:        fmt.Sprintf("job queue full (%d deep)", d.cfg.QueueDepth),
			retryAfter: retry,
		}
	}
}

// retryAfterLocked estimates when queue space will free up: the average
// job wall time scaled by queue occupancy per worker. Caller holds d.mu.
func (d *Daemon) retryAfterLocked() time.Duration {
	avg := d.avgJobSeconds
	if avg <= 0 {
		avg = 1
	}
	est := avg * float64(len(d.queue)) / float64(d.cfg.Concurrency)
	if est < 1 {
		est = 1
	}
	if est > 600 {
		est = 600
	}
	return time.Duration(est * float64(time.Second))
}

// observeJobWall folds a completed job's wall time into the EWMA.
func (d *Daemon) observeJobWall(wall time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := wall.Seconds()
	if d.avgJobSeconds == 0 {
		d.avgJobSeconds = s
		return
	}
	d.avgJobSeconds = 0.7*d.avgJobSeconds + 0.3*s
}

// runJob executes one admitted job end to end with panic isolation.
func (d *Daemon) runJob(j *job) {
	defer func() {
		if r := recover(); r != nil {
			d.store.finish(j, StateFailed, nil, fmt.Sprintf("panic: %v", r), d.cfg.now())
			d.releaseCheckpoint(j)
			d.logf("job %s PANIC: %v", j.id, r)
		}
	}()

	parent := context.Background()
	timeout := d.cfg.JobTimeout
	if j.spec.TimeoutS > 0 {
		timeout = time.Duration(j.spec.TimeoutS * float64(time.Second))
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	defer cancel()

	if !d.store.begin(j, cancel, d.cfg.now()) {
		d.releaseCheckpoint(j) // canceled while queued
		return
	}
	d.logf("job %s running: %d sub-jobs (%d precompleted)", j.id, len(j.jobs), len(j.pre))
	start := time.Now()
	m, err := sweep.RunContext(ctx, j.jobs, d.cfg.Runner, sweep.Options{
		Workers:      j.workers,
		Metrics:      d.swMet,
		MaxRetries:   d.cfg.MaxRetries,
		RetryDelay:   d.cfg.RetryDelay,
		Precompleted: j.pre,
		Progress:     func(completed, total int) { d.store.progress(j, completed) },
		OnResult: func(idx int, rec sweep.JobRecord) {
			d.store.addRetries(j, rec.Retries)
			j.ckpt.append(rec)
		},
	})
	wall := time.Since(start)
	d.observeJobWall(wall)
	d.met.jobSeconds.Observe(wall.Seconds())

	now := d.cfg.now()
	switch {
	case err == nil && m != nil && len(m.Failed()) == 0:
		d.store.finish(j, StateDone, m, "", now)
		d.logf("job %s done in %v: digest %s", j.id, wall.Round(time.Millisecond), m.Digest())
	case err == nil:
		d.store.finish(j, StateDone, m,
			fmt.Sprintf("%d of %d sub-jobs failed", len(m.Failed()), len(m.Jobs)), now)
		d.logf("job %s done with %d failed sub-jobs in %v", j.id, len(m.Failed()), wall.Round(time.Millisecond))
	case d.store.userStopped(j):
		d.store.finish(j, StateCanceled, m, "canceled", now)
		d.logf("job %s canceled after %v", j.id, wall.Round(time.Millisecond))
	case ctx.Err() == context.DeadlineExceeded:
		d.store.finish(j, StateFailed, m, fmt.Sprintf("timeout after %v: %v", timeout, err), now)
		d.logf("job %s timed out after %v", j.id, timeout)
	default:
		d.store.finish(j, StateFailed, m, err.Error(), now)
		d.logf("job %s failed: %v", j.id, err)
	}
	d.releaseCheckpoint(j)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		d.cfg.Log(format, args...)
	}
}
