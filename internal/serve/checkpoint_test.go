package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/scenario"
	"ntpddos/internal/sweep"
)

// TestCheckpointLifecycle pins the file's span: created with a header at
// admission, one record line per landed sub-job, removed once the job is
// terminal.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	gate := newGateRunner()
	e := newEnv(t, Config{Runner: gate.run, CheckpointDir: dir})
	st := e.submitOK(t, `{"seeds":"1-3"}`)
	path := filepath.Join(dir, st.ID+".ckpt")

	<-gate.entered
	h, recs, _, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint missing while running: %v", err)
	}
	if h.ID != st.ID || h.Spec.Seeds != "1-3" || len(recs) != 0 {
		t.Fatalf("header %+v / %d records, want submitted spec and no records yet", h, len(recs))
	}
	close(gate.release)
	e.waitState(t, st.ID, StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint file survived job completion")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoveryResumesFromCheckpoint is the kill-and-resume contract at the
// package level: a checkpoint holding a subset of a job's records is
// re-admitted at startup, only the missing sub-jobs execute, and the
// recovered manifest is byte-identical to an uninterrupted run.
func TestRecoveryResumesFromCheckpoint(t *testing.T) {
	base := scenario.Config{Scale: 1000}
	spec := JobSpec{Spec: sweep.Spec{Seeds: "1-4"}}
	jobs, err := spec.Jobs(base)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sweep.Run(jobs, syntheticRunner, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// A previous process completed sub-jobs 0 and 2, then died — torn final
	// line included, as a SIGKILL mid-write would leave it.
	dir := t.TempDir()
	ck, err := newCheckpoint(filepath.Join(dir, "j000007.ckpt"), ckptHeader{
		ID: "j000007", Client: "addr:test", Spec: spec,
		Submitted: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	ck.append(clean.Jobs[0])
	ck.append(clean.Jobs[2])
	ck.close()
	f, err := os.OpenFile(filepath.Join(dir, "j000007.ckpt"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":3,"id":"se`) // torn mid-record
	f.Close()

	var mu sync.Mutex
	ran := map[string]bool{}
	counting := func(j sweep.Job) (sweep.Result, error) {
		mu.Lock()
		ran[j.ID] = true
		mu.Unlock()
		return syntheticRunner(j)
	}
	e := newEnv(t, Config{Base: base, Runner: counting, CheckpointDir: dir})
	st := e.waitState(t, "j000007", StateDone)
	if !st.Recovered {
		t.Fatalf("status = %+v, want Recovered", st)
	}
	if st.Digest != clean.Digest() {
		t.Fatalf("recovered digest %s != uninterrupted %s", st.Digest, clean.Digest())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 2 || ran[jobs[0].ID] || ran[jobs[2].ID] {
		t.Fatalf("ran %v, want only the two missing sub-jobs", ran)
	}
	// New submissions continue past the recovered sequence number.
	st2 := e.submitOK(t, `{"seeds":"1"}`)
	if seqOf(st2.ID) <= 7 {
		t.Fatalf("new job %s did not advance past recovered j000007", st2.ID)
	}
}

// TestRetriesSurfaceInStatus pins the self-healing accounting: a sub-job
// that fails twice then heals reports its retries in the job-status API and
// on the sweep retry counter.
func TestRetriesSurfaceInStatus(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	flaky := func(j sweep.Job) (sweep.Result, error) {
		mu.Lock()
		attempts[j.ID]++
		n := attempts[j.ID]
		mu.Unlock()
		if strings.HasSuffix(j.ID, "seed=2") && n < 3 {
			return sweep.Result{}, fmt.Errorf("injected fault %d", n)
		}
		return syntheticRunner(j)
	}
	reg := metrics.NewRegistry()
	e := newEnv(t, Config{Runner: flaky, MaxRetries: 3, Registry: reg})
	st := e.submitOK(t, `{"seeds":"1-3"}`)
	final := e.waitState(t, st.ID, StateDone)
	if final.Retries != 2 {
		t.Fatalf("status retries = %d, want 2", final.Retries)
	}
	if final.Error != "" {
		t.Fatalf("healed job kept error %q", final.Error)
	}
	if got := e.d.swMet.JobsRetried.Value(); got != 2 {
		t.Fatalf("ntpsweep_jobs_retried_total = %d, want 2", got)
	}
}

// TestDrainKeepsCheckpoints pins the restart handshake: files of jobs
// interrupted by a drain (queued or running) survive for the next process.
func TestDrainKeepsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	gate := newGateRunner()
	e := newEnv(t, Config{Runner: gate.run, CheckpointDir: dir, QueueDepth: 4})
	running := e.submitOK(t, `{"seeds":"1-2"}`)
	<-gate.entered
	queued := e.submitOK(t, `{"seeds":"3-4"}`)

	// Sub-jobs unblock only after the drain deadline cancels the running
	// job's context; then the sweep unwinds with its partial manifest.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	go func() {
		<-ctx.Done()
		time.Sleep(10 * time.Millisecond)
		close(gate.release)
	}()
	if err := e.d.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	e.waitFor(t, running.ID, "terminal", func(st JobStatus) bool { return st.State.Terminal() })

	for _, id := range []string{running.ID, queued.ID} {
		if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); err != nil {
			t.Fatalf("checkpoint for %s gone after drain: %v", id, err)
		}
	}
}
