package serve

import (
	"math"
	"sync"
	"time"
)

// Limiter is a per-client token-bucket rate limiter with bounded client
// cardinality: each key accrues rate tokens per second up to burst, one
// token per admitted request. Past maxClients distinct keys, new clients
// share a single overflow bucket (mirroring internal/metrics' cardinality
// bound) — a tenant fan-out can degrade fairness for strangers but can
// never make the limiter itself grow without limit.
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	max     int
	buckets map[string]*bucket
	// overflow is lazily created when the cardinality bound is hit.
	overflow *bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// overflowKey is the shared identity assigned past the cardinality bound.
const overflowKey = "other"

// NewLimiter builds a limiter granting rate tokens/second with the given
// burst. rate <= 0 disables limiting (Allow always admits). maxClients <= 0
// uses a default bound of 1024.
func NewLimiter(rate, burst float64, maxClients int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = 1024
	}
	return &Limiter{
		rate:    rate,
		burst:   burst,
		max:     maxClients,
		buckets: make(map[string]*bucket),
	}
}

// Allow consumes one token for key at time now. When the bucket is empty it
// reports false along with how long until the next token accrues — the
// Retry-After the admission layer surfaces.
func (l *Limiter) Allow(key string, now time.Time) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.lookup(key, now)
	// Refill since last observation.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// Clients reports how many distinct buckets are live (the overflow bucket
// counts once) — exported to the queue-depth gauge family.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// lookup returns the bucket for key, evicting idle full buckets when the
// cardinality bound is hit before falling back to the shared overflow.
// Caller holds l.mu.
func (l *Limiter) lookup(key string, now time.Time) *bucket {
	if b, ok := l.buckets[key]; ok {
		return b
	}
	if len(l.buckets) >= l.max {
		// A full bucket is indistinguishable from a fresh one: drop those
		// first so transient clients don't pin the table forever.
		for k, b := range l.buckets {
			if k == overflowKey {
				continue
			}
			refilled := math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
			if refilled >= l.burst {
				delete(l.buckets, k)
			}
		}
	}
	if len(l.buckets) >= l.max {
		if l.overflow == nil {
			l.overflow = &bucket{tokens: l.burst, last: now}
			l.buckets[overflowKey] = l.overflow
		}
		return l.overflow
	}
	b := &bucket{tokens: l.burst, last: now}
	l.buckets[key] = b
	return b
}
