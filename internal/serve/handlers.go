package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"time"

	"ntpddos/internal/metrics"
)

// admissionError is a refused submission: HTTP status, a machine-readable
// reason (also the rejection-counter label), and an optional Retry-After.
type admissionError struct {
	status     int
	reason     string
	msg        string
	retryAfter time.Duration
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// buildMux assembles the daemon's HTTP surface.
func (d *Daemon) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", d.instrument("submit", d.handleSubmit))
	mux.Handle("GET /v1/jobs", d.instrument("list", d.handleList))
	mux.Handle("GET /v1/jobs/{id}", d.instrument("status", d.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/result", d.instrument("result", d.handleResult))
	mux.Handle("GET /v1/jobs/{id}/watch", d.instrument("watch", d.handleWatch))
	mux.Handle("POST /v1/jobs/{id}/cancel", d.instrument("cancel", d.handleCancel))
	mux.Handle("/healthz", &d.ready)
	if d.cfg.Registry != nil {
		mux.Handle("/metrics", metrics.Handler(d.cfg.Registry))
	}
	return mux
}

// instrument wraps a handler with per-endpoint latency and per-client
// request accounting.
func (d *Daemon) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := d.met.httpSeconds.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		d.met.clientReqs.With(clientKey(r)).Inc()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	})
}

// clientKey derives the tenant identity a request is accounted and
// rate-limited under: an API token when presented (hashed, so secrets
// never appear in logs or /metrics labels), else the remote host.
func clientKey(r *http.Request) string {
	token := r.Header.Get("X-API-Key")
	if token == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			token = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if token != "" {
		sum := sha256.Sum256([]byte(token))
		return "key:" + hex.EncodeToString(sum[:4])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		host = r.RemoteAddr
	}
	if host == "" {
		host = "unknown"
	}
	return "addr:" + host
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the error envelope, attaching Retry-After when set.
func writeError(w http.ResponseWriter, status int, reason, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After",
			fmt.Sprintf("%d", int(math.Ceil(retryAfter.Seconds()))))
	}
	writeJSON(w, status, errorBody{Error: msg, Reason: reason})
}

// maxSpecBytes bounds a submission body; a sweep spec is a few hundred
// bytes, so anything near the cap is garbage.
const maxSpecBytes = 1 << 20

// handleSubmit admits one job: rate limit, decode, validate, compile,
// enqueue — refusing with 429 + Retry-After at either admission gate.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	client := clientKey(r)
	if ok, retry := d.limiter.Allow(client, d.cfg.now()); !ok {
		d.met.observeRejection("ratelimit")
		writeError(w, http.StatusTooManyRequests, "ratelimit",
			"client rate limit exceeded", retry)
		return
	}

	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		d.met.observeRejection("invalid")
		writeError(w, http.StatusBadRequest, "invalid",
			fmt.Sprintf("bad job spec: %v", err), 0)
		return
	}
	if spec.TimeoutS < 0 || spec.Workers < 0 {
		d.met.observeRejection("invalid")
		writeError(w, http.StatusBadRequest, "invalid",
			"timeout_s and workers must be non-negative", 0)
		return
	}
	n, err := spec.NumJobs()
	if err != nil {
		d.met.observeRejection("invalid")
		writeError(w, http.StatusBadRequest, "invalid",
			fmt.Sprintf("bad job spec: %v", err), 0)
		return
	}
	if n > d.cfg.MaxJobsPerSweep {
		d.met.observeRejection("toolarge")
		writeError(w, http.StatusBadRequest, "toolarge",
			fmt.Sprintf("spec expands to %d jobs, cap is %d", n, d.cfg.MaxJobsPerSweep), 0)
		return
	}
	jobs, err := spec.Jobs(d.cfg.Base)
	if err != nil {
		d.met.observeRejection("invalid")
		writeError(w, http.StatusBadRequest, "invalid",
			fmt.Sprintf("bad job spec: %v", err), 0)
		return
	}

	j, admErr := d.submit(client, spec, jobs)
	if admErr != nil {
		d.met.observeRejection(admErr.reason)
		writeError(w, admErr.status, admErr.reason, admErr.msg, admErr.retryAfter)
		return
	}
	writeJSON(w, http.StatusAccepted, d.store.status(j))
}

// handleList returns every retained job, oldest first.
func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{d.store.list()})
}

// handleStatus returns one job's status.
func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := d.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown", "no such job", 0)
		return
	}
	writeJSON(w, http.StatusOK, d.store.status(j))
}

// handleResult serves the job's manifest: canonical JSON by default, the
// per-job table as CSV with ?format=csv. A partial manifest (canceled or
// timed-out job) is served too — its records say what was skipped — but a
// job with no manifest at all yields 409 until it finishes.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := d.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown", "no such job", 0)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "csv" {
		writeError(w, http.StatusBadRequest, "invalid", "format must be json or csv", 0)
		return
	}
	m := d.store.manifest(j)
	if m == nil {
		st := d.store.status(j)
		writeError(w, http.StatusConflict, "notready",
			fmt.Sprintf("job is %s; result not available yet", st.State), 0)
		return
	}
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Write([]byte(m.JobTable().CSV()))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(m.CanonicalJSON())
}

// handleWatch streams the job's status as newline-delimited JSON until it
// reaches a terminal state or the client disconnects — chunked progress
// for clients that would otherwise poll.
func (d *Daemon) handleWatch(w http.ResponseWriter, r *http.Request) {
	j, ok := d.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown", "no such job", 0)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	lastState, lastDone := State(""), -1
	for {
		st := d.store.status(j)
		if st.State != lastState || st.Progress.Completed != lastDone {
			enc.Encode(st)
			if canFlush {
				flusher.Flush()
			}
			lastState, lastDone = st.State, st.Progress.Completed
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(d.cfg.WatchInterval):
		}
	}
}

// handleCancel requests cancellation.
func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := d.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown", "no such job", 0)
		return
	}
	if !d.store.requestCancel(j, d.cfg.now()) {
		writeError(w, http.StatusConflict, "terminal",
			fmt.Sprintf("job already %s", d.store.status(j).State), 0)
		return
	}
	writeJSON(w, http.StatusAccepted, d.store.status(j))
}
