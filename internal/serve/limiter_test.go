package serve

import (
	"testing"
	"time"
)

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, 0)
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("anyone", now); !ok {
			t.Fatal("disabled limiter refused a request")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("x", now); !ok {
		t.Fatal("nil limiter refused a request")
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l := NewLimiter(1, 2, 16) // 1 token/s, burst 2
	t0 := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", t0); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("a", t0)
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	// One token accrues after a second.
	if ok, _ := l.Allow("a", t0.Add(time.Second)); !ok {
		t.Fatal("refilled token refused")
	}
	// Refill never exceeds burst.
	if ok, _ := l.Allow("a", t0.Add(time.Hour)); !ok {
		t.Fatal("long-idle client refused")
	}
	if ok, _ := l.Allow("a", t0.Add(time.Hour)); !ok {
		t.Fatal("second burst token refused")
	}
	if ok, _ := l.Allow("a", t0.Add(time.Hour)); ok {
		t.Fatal("third token admitted: refill exceeded burst")
	}
}

func TestLimiterClientsIsolated(t *testing.T) {
	l := NewLimiter(0.001, 1, 16)
	t0 := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", t0); !ok {
		t.Fatal("a refused")
	}
	if ok, _ := l.Allow("a", t0); ok {
		t.Fatal("a's second request admitted")
	}
	if ok, _ := l.Allow("b", t0); !ok {
		t.Fatal("b throttled by a's bucket")
	}
}

func TestLimiterCardinalityBound(t *testing.T) {
	l := NewLimiter(1, 2, 2)
	t0 := time.Unix(1000, 0)
	l.Allow("a", t0)
	l.Allow("b", t0)
	// Past the bound, new clients share the overflow bucket.
	if ok, _ := l.Allow("c", t0); !ok {
		t.Fatal("overflow client refused its first token")
	}
	if got := l.Clients(); got != 3 { // a, b, overflow
		t.Fatalf("Clients() = %d, want 3", got)
	}
	l.Allow("d", t0) // shares overflow: second of its 2 burst tokens
	if ok, _ := l.Allow("e", t0); ok {
		t.Fatal("overflow bucket admitted past its shared burst")
	}
	if got := l.Clients(); got != 3 {
		t.Fatalf("Clients() after overflow sharing = %d, want 3", got)
	}
	// Once earlier clients idle back to full, they are evicted and a new
	// client gets its own bucket again.
	later := t0.Add(time.Minute)
	if ok, _ := l.Allow("f", later); !ok {
		t.Fatal("post-eviction client refused")
	}
	if got := l.Clients(); got != 2 { // overflow + f
		t.Fatalf("Clients() after eviction = %d, want 2", got)
	}
}
