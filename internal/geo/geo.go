// Package geo supplies the geographic labels the paper aggregates over:
// countries grouped into the six continents whose differing remediation
// rates §6.1 reports (North America 97%, Oceania 93%, Europe 89%, Asia 84%,
// Africa 77%, South America 63%).
package geo

import "fmt"

// Continent identifies one of the six populated continents.
type Continent int

// Continents in the order the paper lists their remediation rates.
const (
	NorthAmerica Continent = iota
	Oceania
	Europe
	Asia
	Africa
	SouthAmerica
	numContinents
)

// Continents lists all continents in declaration order.
func Continents() []Continent {
	out := make([]Continent, numContinents)
	for i := range out {
		out[i] = Continent(i)
	}
	return out
}

// String returns the continent's name.
func (c Continent) String() string {
	switch c {
	case NorthAmerica:
		return "North America"
	case Oceania:
		return "Oceania"
	case Europe:
		return "Europe"
	case Asia:
		return "Asia"
	case Africa:
		return "Africa"
	case SouthAmerica:
		return "South America"
	}
	return fmt.Sprintf("Continent(%d)", int(c))
}

// Country is an ISO-3166-ish two-letter code.
type Country string

// countryContinent maps the countries that appear in the simulation. The
// catalogue covers the paper's named victim/amplifier countries (Table 6:
// Japan, China, USA, Germany, France, Romania, Brazil, UK; §3.4's
// mega-amplifiers in Japan) plus enough others to populate "184 countries"
// style dispersion at full scale.
var countryContinent = map[Country]Continent{
	// North America
	"US": NorthAmerica, "CA": NorthAmerica, "MX": NorthAmerica,
	"GT": NorthAmerica, "CR": NorthAmerica, "PA": NorthAmerica,
	// Oceania
	"AU": Oceania, "NZ": Oceania, "FJ": Oceania, "PG": Oceania,
	// Europe
	"FR": Europe, "DE": Europe, "GB": Europe, "NL": Europe, "RO": Europe,
	"IT": Europe, "ES": Europe, "PL": Europe, "SE": Europe, "RU": Europe,
	"UA": Europe, "CZ": Europe, "CH": Europe, "AT": Europe, "TR": Europe,
	// Asia
	"JP": Asia, "CN": Asia, "KR": Asia, "IN": Asia, "TW": Asia,
	"HK": Asia, "SG": Asia, "TH": Asia, "VN": Asia, "ID": Asia,
	"MY": Asia, "PH": Asia, "IR": Asia, "SA": Asia,
	// Africa
	"ZA": Africa, "EG": Africa, "NG": Africa, "KE": Africa, "MA": Africa,
	"TN": Africa, "GH": Africa,
	// South America
	"BR": SouthAmerica, "AR": SouthAmerica, "CL": SouthAmerica,
	"CO": SouthAmerica, "PE": SouthAmerica, "VE": SouthAmerica,
	"EC": SouthAmerica, "UY": SouthAmerica,
}

// ContinentOf returns the continent of a known country. Unknown countries
// return ok = false rather than a default: mislabeling would silently skew
// the §6.1 regional remediation analysis.
func ContinentOf(c Country) (Continent, bool) {
	cont, ok := countryContinent[c]
	return cont, ok
}

// CountriesIn returns the catalogue's countries on a continent, in a
// deterministic (declaration-group) order.
func CountriesIn(c Continent) []Country {
	var out []Country
	for _, cc := range allCountries {
		if countryContinent[cc] == c {
			out = append(out, cc)
		}
	}
	return out
}

// allCountries keeps a deterministic iteration order (map iteration order
// would leak nondeterminism into world generation).
var allCountries = []Country{
	"US", "CA", "MX", "GT", "CR", "PA",
	"AU", "NZ", "FJ", "PG",
	"FR", "DE", "GB", "NL", "RO", "IT", "ES", "PL", "SE", "RU", "UA", "CZ", "CH", "AT", "TR",
	"JP", "CN", "KR", "IN", "TW", "HK", "SG", "TH", "VN", "ID", "MY", "PH", "IR", "SA",
	"ZA", "EG", "NG", "KE", "MA", "TN", "GH",
	"BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY",
}

// AllCountries returns the full catalogue in deterministic order.
func AllCountries() []Country {
	out := make([]Country, len(allCountries))
	copy(out, allCountries)
	return out
}

// HostShare returns the approximate share of global Internet hosts on each
// continent, used to size the synthetic address allocation. The shares are
// rough public estimates for the 2013–2014 period; only their ordering and
// rough magnitude matter for reproduction shape.
func HostShare(c Continent) float64 {
	switch c {
	case NorthAmerica:
		return 0.30
	case Europe:
		return 0.28
	case Asia:
		return 0.28
	case SouthAmerica:
		return 0.07
	case Oceania:
		return 0.03
	case Africa:
		return 0.04
	}
	return 0
}

// RemediationSpeed returns the relative per-continent remediation hazard
// multiplier the scenario uses so that final remediated fractions land near
// the paper's §6.1 values (NA 97% … SA 63%). Larger is faster.
func RemediationSpeed(c Continent) float64 {
	switch c {
	case NorthAmerica:
		return 3.0
	case Oceania:
		return 1.8
	case Europe:
		return 1.1
	case Asia:
		return 0.75
	case Africa:
		return 0.45
	case SouthAmerica:
		return 0.22
	}
	return 1
}
