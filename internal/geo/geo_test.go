package geo

import "testing"

func TestContinentOfPaperCountries(t *testing.T) {
	// The paper's Table 6 victim countries plus §3.4's Japan mega-amps.
	cases := map[Country]Continent{
		"JP": Asia, "CN": Asia, "US": NorthAmerica, "DE": Europe,
		"FR": Europe, "RO": Europe, "BR": SouthAmerica, "GB": Europe,
		"AU": Oceania, "ZA": Africa,
	}
	for country, want := range cases {
		got, ok := ContinentOf(country)
		if !ok || got != want {
			t.Fatalf("ContinentOf(%s) = %v/%v, want %v", country, got, ok, want)
		}
	}
}

func TestContinentOfUnknown(t *testing.T) {
	if _, ok := ContinentOf("XX"); ok {
		t.Fatal("unknown country must not resolve")
	}
}

func TestEveryCountryHasContinent(t *testing.T) {
	for _, c := range AllCountries() {
		if _, ok := ContinentOf(c); !ok {
			t.Fatalf("catalogue country %s has no continent", c)
		}
	}
}

func TestCountriesInPartition(t *testing.T) {
	total := 0
	seen := map[Country]bool{}
	for _, cont := range Continents() {
		for _, c := range CountriesIn(cont) {
			if seen[c] {
				t.Fatalf("country %s in two continents", c)
			}
			seen[c] = true
			total++
		}
	}
	if total != len(AllCountries()) {
		t.Fatalf("continents cover %d countries, catalogue has %d", total, len(AllCountries()))
	}
}

func TestHostShareSumsToOne(t *testing.T) {
	sum := 0.0
	for _, c := range Continents() {
		s := HostShare(c)
		if s <= 0 {
			t.Fatalf("HostShare(%v) = %v", c, s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("host shares sum to %v", sum)
	}
}

func TestRemediationSpeedOrdering(t *testing.T) {
	// §6.1 final remediated fractions order: NA > Oceania > EU > Asia >
	// Africa > SA. The hazard multipliers must preserve that order.
	order := []Continent{NorthAmerica, Oceania, Europe, Asia, Africa, SouthAmerica}
	for i := 1; i < len(order); i++ {
		if RemediationSpeed(order[i-1]) <= RemediationSpeed(order[i]) {
			t.Fatalf("remediation speed of %v not above %v", order[i-1], order[i])
		}
	}
}

func TestContinentString(t *testing.T) {
	if NorthAmerica.String() != "North America" || SouthAmerica.String() != "South America" {
		t.Fatal("continent names wrong")
	}
	if Continent(99).String() == "" {
		t.Fatal("out-of-range continent must still render")
	}
}
