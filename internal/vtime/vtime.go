// Package vtime provides a virtual clock and a discrete-event scheduler.
//
// The entire simulation runs on virtual time: no component of the library
// reads the wall clock. This makes every experiment deterministic and lets a
// six-month measurement campaign (November 2013 through May 2014, the window
// the paper studies) execute in seconds.
//
// The zero-configuration Clock starts at Epoch (2013-09-01 00:00 UTC), two
// months before the paper's first Arbor sample, so darknet baselines exist
// before the NTP phenomenon begins.
//
// Two queue implementations back the scheduler: the default calendar queue
// (a bucketed timer wheel with an overflow heap, O(1) amortized insert and
// pop — see calendar.go) and the reference binary heap behind
// NewHeapScheduler. Both realize the identical execution contract — events
// fire in (instant, schedule order) — and the schedtest package holds them
// to it on fuzz- and property-generated workloads.
package vtime

import (
	"fmt"
	"time"

	"ntpddos/internal/metrics"
)

// Epoch is the instant at which a zero-value Clock starts: 2013-09-01 UTC.
// The paper's datasets begin 2013-11-01 (Arbor), 2013-09 (darknet), and
// 2014-01-10 (ONP); starting two months before the Arbor window gives every
// collector a quiescent baseline.
var Epoch = time.Date(2013, time.September, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is ready to use and reads Epoch.
// Clock is not safe for concurrent use; the simulation is single-threaded by
// design (determinism beats parallelism for a reproduction harness).
type Clock struct {
	offset time.Duration // elapsed virtual time since Epoch

	// Now() is called several times per delivered event; memoizing the last
	// computed instant avoids re-running time.Time.Add until the clock moves.
	cachedOff time.Duration
	cached    time.Time
	cachedOK  bool
}

// Now returns the current virtual instant.
func (c *Clock) Now() time.Time {
	if !c.cachedOK || c.cachedOff != c.offset {
		c.cachedOff, c.cached, c.cachedOK = c.offset, Epoch.Add(c.offset), true
	}
	return c.cached
}

// Elapsed returns the virtual time elapsed since Epoch.
func (c *Clock) Elapsed() time.Duration { return c.offset }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time, like real time, is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vtime: cannot advance clock backwards")
	}
	c.offset += d
}

// AdvanceTo moves the clock forward to instant t. Moving backwards panics.
func (c *Clock) AdvanceTo(t time.Time) {
	d := t.Sub(c.Now())
	if d < 0 {
		panic(fmt.Sprintf("vtime: AdvanceTo(%v) is before now (%v)", t, c.Now()))
	}
	c.offset += d
}

// event is a scheduled callback. Events are owned by the scheduler and
// recycled through a free list: after an event fires, its struct (and, for
// batches, its item slice) returns to the pool, so steady-state scheduling
// allocates nothing.
type event struct {
	at   time.Time
	atNs int64  // at as nanoseconds since Epoch: cheap queue comparisons
	seq  uint64 // tie-break so same-instant events run in schedule order
	fn   func(now time.Time)

	// Periodic (Every) state: a positive interval re-arms the same struct
	// with a fresh seq after each tick until (and excluding) end.
	interval time.Duration
	end      time.Time

	// Batch (AtBatch) state: sink non-nil marks a coalesced delivery event
	// carrying items appended by the scheduler's open-batch table.
	sink  BatchSink
	items []any
}

// less orders events by (instant, schedule order) — the scheduler's total
// order, shared by every queue implementation.
func (e *event) less(o *event) bool {
	if e.atNs != o.atNs {
		return e.atNs < o.atNs
	}
	return e.seq < o.seq
}

// queue is the priority-queue contract both implementations satisfy. min
// may reorganize internal structure (the calendar queue drains buckets
// lazily) but never changes the pop order.
type queue interface {
	push(e *event)
	min() *event // earliest event, nil when empty
	pop() *event // removes and returns the earliest event
	len() int
}

// BatchSink receives a coalesced batch of same-instant items scheduled with
// AtBatch. Items are passed in append order; the slice is owned by the
// scheduler and must not be retained after RunBatch returns.
type BatchSink interface {
	RunBatch(now time.Time, items []any)
}

// Scheduler is a discrete-event executor bound to a Clock. Events scheduled
// for the same instant run in the order they were scheduled. The zero value
// is not usable; construct with NewScheduler (calendar queue) or
// NewHeapScheduler (reference binary heap).
type Scheduler struct {
	clock *Clock
	q     queue
	seq   uint64
	m     *Metrics

	// peak tracks the high-water mark of Pending() — the queue-depth
	// regression wall for the lazy-Every rewrite.
	peak int

	// open maps an instant (ns since Epoch) to its open batch event. A
	// batch stays open — accepting appends in O(1) with no new scheduler
	// event — until it fires or until any non-batch event is scheduled at
	// the same instant. Closing on same-instant scheduling is what keeps
	// coalescing provably order-preserving: only events at the identical
	// instant can interleave with the batch, so a later append must not
	// jump ahead of them.
	open map[int64]*event

	// free lists for event structs and batch item slices.
	pool     []*event
	itemPool [][]any
}

// Metrics is the scheduler's optional live instrumentation: queue depth,
// events fired and the virtual clock's position. All writes are atomic
// stores from the simulation thread; attaching metrics never changes event
// order, timing or randomness.
type Metrics struct {
	EventsScheduled *metrics.Counter
	EventsFired     *metrics.Counter
	QueueDepth      *metrics.Gauge
	// ClockSeconds is the virtual clock position as seconds since Epoch —
	// the scrape-side progress bar for a running scenario.
	ClockSeconds *metrics.Gauge
}

// NewMetrics registers the scheduler family on r (nil r yields no-ops).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		EventsScheduled: r.NewCounter("ntpsim_sched_events_scheduled_total",
			"Events pushed onto the virtual-time queue."),
		EventsFired: r.NewCounter("ntpsim_sched_events_fired_total",
			"Events executed by RunUntil/Drain."),
		QueueDepth: r.NewGauge("ntpsim_sched_queue_depth",
			"Events currently pending in the virtual-time queue."),
		ClockSeconds: r.NewGauge("ntpsim_sched_virtual_clock_seconds",
			"Virtual clock position, seconds since the 2013-09-01 Epoch."),
	}
}

// SetMetrics attaches (or, with nil, detaches) live instrumentation.
func (s *Scheduler) SetMetrics(m *Metrics) {
	s.m = m
	if m != nil {
		m.QueueDepth.SetInt(int64(s.q.len()))
		m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
	}
}

// NewScheduler returns a Scheduler driving the given clock, backed by the
// calendar queue.
func NewScheduler(c *Clock) *Scheduler {
	return &Scheduler{clock: c, q: newCalendarQueue(), open: make(map[int64]*event)}
}

// NewHeapScheduler returns a Scheduler backed by the reference binary-heap
// queue — the original implementation, kept as the differential-testing
// oracle. Behaviour is identical to NewScheduler; only the asymptotics
// differ.
func NewHeapScheduler(c *Clock) *Scheduler {
	return &Scheduler{clock: c, q: &heapQueue{}, open: make(map[int64]*event)}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// alloc takes an event struct from the free list (or allocates one).
func (s *Scheduler) alloc() *event {
	if n := len(s.pool); n > 0 {
		e := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return e
	}
	return &event{}
}

// release clears an event's references and returns it to the free list.
func (s *Scheduler) release(e *event) {
	if e.items != nil {
		items := e.items
		for i := range items {
			items[i] = nil
		}
		s.itemPool = append(s.itemPool, items[:0])
	}
	*e = event{}
	s.pool = append(s.pool, e)
}

// push assigns the next sequence number and enqueues. Any non-batch push
// closes an open batch at the same instant (see the open field).
func (s *Scheduler) push(e *event) {
	if e.sink == nil && len(s.open) > 0 {
		delete(s.open, e.atNs)
	}
	s.seq++
	e.seq = s.seq
	s.q.push(e)
	if n := s.q.len(); n > s.peak {
		s.peak = n
	}
	if s.m != nil {
		s.m.EventsScheduled.Inc()
		s.m.QueueDepth.SetInt(int64(s.q.len()))
	}
}

// At schedules fn to run at instant t. Scheduling in the past panics:
// a simulation that silently reorders causality produces wrong measurements.
func (s *Scheduler) At(t time.Time, fn func(now time.Time)) {
	if t.Before(s.clock.Now()) {
		panic(fmt.Sprintf("vtime: scheduling at %v, before now %v", t, s.clock.Now()))
	}
	e := s.alloc()
	e.at = t
	e.atNs = int64(t.Sub(Epoch))
	e.fn = fn
	s.push(e)
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) {
	s.At(s.clock.Now().Add(d), fn)
}

// Every schedules fn to run every interval, starting at start, until (and
// excluding) end. The callback may itself schedule further events.
//
// The schedule is lazy: one pending event re-arms itself after each tick,
// so a months-long minute-scale schedule occupies a single queue slot
// instead of pre-materializing every tick.
func (s *Scheduler) Every(start time.Time, interval time.Duration, end time.Time, fn func(now time.Time)) {
	if interval <= 0 {
		panic("vtime: Every requires a positive interval")
	}
	if !start.Before(end) {
		return
	}
	e := s.alloc()
	e.at = start
	e.atNs = int64(start.Sub(Epoch))
	e.fn = fn
	e.interval = interval
	e.end = end
	if start.Before(s.clock.Now()) {
		panic(fmt.Sprintf("vtime: scheduling at %v, before now %v", start, s.clock.Now()))
	}
	s.push(e)
}

// AtBatch schedules item for delivery to sink at instant t. Consecutive
// same-instant calls with the same sink coalesce into one scheduler event
// whose RunBatch receives every item in append order; scheduling any other
// event at the same instant closes the batch, so coalescing never reorders
// execution relative to one-event-per-item scheduling.
func (s *Scheduler) AtBatch(t time.Time, sink BatchSink, item any) {
	if t.Before(s.clock.Now()) {
		panic(fmt.Sprintf("vtime: scheduling at %v, before now %v", t, s.clock.Now()))
	}
	atNs := int64(t.Sub(Epoch))
	if e, ok := s.open[atNs]; ok {
		if e.sink == sink {
			e.items = append(e.items, item)
			return
		}
		// A different sink at the same instant: close the old batch so the
		// new one's items stay behind it in schedule order.
		delete(s.open, atNs)
	}
	e := s.alloc()
	e.at = t
	e.atNs = atNs
	e.sink = sink
	if n := len(s.itemPool); n > 0 {
		e.items = s.itemPool[n-1]
		s.itemPool = s.itemPool[:n-1]
	}
	e.items = append(e.items, item)
	s.open[atNs] = e
	s.push(e)
}

// Pending reports the number of events waiting to run. A coalesced batch
// counts as one event regardless of its item count.
func (s *Scheduler) Pending() int { return s.q.len() }

// PeakPending reports the high-water mark of Pending() over the scheduler's
// lifetime — the regression wall that keeps periodic schedules lazy.
func (s *Scheduler) PeakPending() int { return s.peak }

// runEvent advances the clock to e and executes it, recycling the struct.
func (s *Scheduler) runEvent(e *event) {
	s.clock.AdvanceTo(e.at)
	if s.m != nil {
		s.m.EventsFired.Inc()
		s.m.QueueDepth.SetInt(int64(s.q.len()))
		s.m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
	}
	switch {
	case e.sink != nil:
		// Close the batch before running: the sink may schedule new work at
		// this same instant, which must open a fresh batch behind it.
		if s.open[e.atNs] == e {
			delete(s.open, e.atNs)
		}
		e.sink.RunBatch(e.at, e.items)
		s.release(e)
	case e.interval > 0:
		// Re-arm before running fn so the next tick's sequence number
		// precedes anything fn schedules at that exact instant — the order
		// pre-materialized ticks had.
		at, fn := e.at, e.fn
		if next := e.at.Add(e.interval); next.Before(e.end) {
			e.at = next
			e.atNs = int64(next.Sub(Epoch))
			s.push(e)
		} else {
			s.release(e)
		}
		fn(at)
	default:
		at, fn := e.at, e.fn
		s.release(e)
		fn(at)
	}
}

// RunUntil executes all events scheduled strictly before end, advancing the
// clock to each event's instant, then advances the clock to end. It returns
// the number of events executed; a coalesced batch counts once.
func (s *Scheduler) RunUntil(end time.Time) int {
	endNs := int64(end.Sub(Epoch))
	ran := 0
	for {
		e := s.q.min()
		if e == nil || e.atNs >= endNs {
			break
		}
		s.q.pop()
		s.runEvent(e)
		ran++
	}
	if end.After(s.clock.Now()) {
		s.clock.AdvanceTo(end)
	}
	if s.m != nil {
		s.m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
	}
	return ran
}

// Drain executes every pending event regardless of time, advancing the clock
// along the way. It returns the number of events executed. Periodic events
// keep re-arming until their end instant, so Drain runs them to completion.
func (s *Scheduler) Drain() int {
	ran := 0
	for {
		e := s.q.min()
		if e == nil {
			break
		}
		s.q.pop()
		s.runEvent(e)
		ran++
	}
	return ran
}

// Day truncates t to midnight UTC — the bucketing unit for daily series such
// as the paper's Figure 1 traffic fractions.
func Day(t time.Time) time.Time {
	y, m, d := t.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Month truncates t to the first of its month UTC — the bucketing unit for
// monthly series such as Figures 2 and 8.
func Month(t time.Time) time.Time {
	y, m, _ := t.UTC().Date()
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// Hour truncates t to the top of its hour UTC — the bucketing unit for the
// attacks-per-hour series in Figure 7.
func Hour(t time.Time) time.Time {
	return t.UTC().Truncate(time.Hour)
}
