// Package vtime provides a virtual clock and a discrete-event scheduler.
//
// The entire simulation runs on virtual time: no component of the library
// reads the wall clock. This makes every experiment deterministic and lets a
// six-month measurement campaign (November 2013 through May 2014, the window
// the paper studies) execute in seconds.
//
// The zero-configuration Clock starts at Epoch (2013-09-01 00:00 UTC), two
// months before the paper's first Arbor sample, so darknet baselines exist
// before the NTP phenomenon begins.
package vtime

import (
	"container/heap"
	"fmt"
	"time"

	"ntpddos/internal/metrics"
)

// Epoch is the instant at which a zero-value Clock starts: 2013-09-01 UTC.
// The paper's datasets begin 2013-11-01 (Arbor), 2013-09 (darknet), and
// 2014-01-10 (ONP); starting two months before the Arbor window gives every
// collector a quiescent baseline.
var Epoch = time.Date(2013, time.September, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is ready to use and reads Epoch.
// Clock is not safe for concurrent use; the simulation is single-threaded by
// design (determinism beats parallelism for a reproduction harness).
type Clock struct {
	offset time.Duration // elapsed virtual time since Epoch
}

// Now returns the current virtual instant.
func (c *Clock) Now() time.Time { return Epoch.Add(c.offset) }

// Elapsed returns the virtual time elapsed since Epoch.
func (c *Clock) Elapsed() time.Duration { return c.offset }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time, like real time, is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vtime: cannot advance clock backwards")
	}
	c.offset += d
}

// AdvanceTo moves the clock forward to instant t. Moving backwards panics.
func (c *Clock) AdvanceTo(t time.Time) {
	d := t.Sub(c.Now())
	if d < 0 {
		panic(fmt.Sprintf("vtime: AdvanceTo(%v) is before now (%v)", t, c.Now()))
	}
	c.offset += d
}

// event is a scheduled callback.
type event struct {
	at   time.Time
	atNs int64  // at as nanoseconds since Epoch: cheap heap comparisons
	seq  uint64 // tie-break so same-instant events run in schedule order
	fn   func(now time.Time)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].atNs != q[j].atNs {
		return q[i].atNs < q[j].atNs
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a discrete-event executor bound to a Clock. Events scheduled
// for the same instant run in the order they were scheduled. The zero value
// is not usable; construct with NewScheduler.
type Scheduler struct {
	clock *Clock
	queue eventQueue
	seq   uint64
	m     *Metrics
}

// Metrics is the scheduler's optional live instrumentation: queue depth,
// events fired and the virtual clock's position. All writes are atomic
// stores from the simulation thread; attaching metrics never changes event
// order, timing or randomness.
type Metrics struct {
	EventsScheduled *metrics.Counter
	EventsFired     *metrics.Counter
	QueueDepth      *metrics.Gauge
	// ClockSeconds is the virtual clock position as seconds since Epoch —
	// the scrape-side progress bar for a running scenario.
	ClockSeconds *metrics.Gauge
}

// NewMetrics registers the scheduler family on r (nil r yields no-ops).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		EventsScheduled: r.NewCounter("ntpsim_sched_events_scheduled_total",
			"Events pushed onto the virtual-time queue."),
		EventsFired: r.NewCounter("ntpsim_sched_events_fired_total",
			"Events executed by RunUntil/Drain."),
		QueueDepth: r.NewGauge("ntpsim_sched_queue_depth",
			"Events currently pending in the virtual-time queue."),
		ClockSeconds: r.NewGauge("ntpsim_sched_virtual_clock_seconds",
			"Virtual clock position, seconds since the 2013-09-01 Epoch."),
	}
}

// SetMetrics attaches (or, with nil, detaches) live instrumentation.
func (s *Scheduler) SetMetrics(m *Metrics) {
	s.m = m
	if m != nil {
		m.QueueDepth.SetInt(int64(len(s.queue)))
		m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
	}
}

// NewScheduler returns a Scheduler driving the given clock.
func NewScheduler(c *Clock) *Scheduler {
	return &Scheduler{clock: c}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at instant t. Scheduling in the past panics:
// a simulation that silently reorders causality produces wrong measurements.
func (s *Scheduler) At(t time.Time, fn func(now time.Time)) {
	if t.Before(s.clock.Now()) {
		panic(fmt.Sprintf("vtime: scheduling at %v, before now %v", t, s.clock.Now()))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, atNs: int64(t.Sub(Epoch)), seq: s.seq, fn: fn})
	if s.m != nil {
		s.m.EventsScheduled.Inc()
		s.m.QueueDepth.SetInt(int64(len(s.queue)))
	}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) {
	s.At(s.clock.Now().Add(d), fn)
}

// Every schedules fn to run every interval, starting at start, until (and
// excluding) end. The callback may itself schedule further events.
func (s *Scheduler) Every(start time.Time, interval time.Duration, end time.Time, fn func(now time.Time)) {
	if interval <= 0 {
		panic("vtime: Every requires a positive interval")
	}
	for t := start; t.Before(end); t = t.Add(interval) {
		s.At(t, fn)
	}
}

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.queue) }

// RunUntil executes all events scheduled strictly before end, advancing the
// clock to each event's instant, then advances the clock to end. It returns
// the number of events executed.
func (s *Scheduler) RunUntil(end time.Time) int {
	ran := 0
	for len(s.queue) > 0 && s.queue[0].at.Before(end) {
		e := heap.Pop(&s.queue).(*event)
		s.clock.AdvanceTo(e.at)
		if s.m != nil {
			s.m.EventsFired.Inc()
			s.m.QueueDepth.SetInt(int64(len(s.queue)))
			s.m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
		}
		e.fn(e.at)
		ran++
	}
	if end.After(s.clock.Now()) {
		s.clock.AdvanceTo(end)
	}
	if s.m != nil {
		s.m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
	}
	return ran
}

// Drain executes every pending event regardless of time, advancing the clock
// along the way. It returns the number of events executed.
func (s *Scheduler) Drain() int {
	ran := 0
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.clock.AdvanceTo(e.at)
		if s.m != nil {
			s.m.EventsFired.Inc()
			s.m.QueueDepth.SetInt(int64(len(s.queue)))
			s.m.ClockSeconds.Set(s.clock.Elapsed().Seconds())
		}
		e.fn(e.at)
		ran++
	}
	return ran
}

// Day truncates t to midnight UTC — the bucketing unit for daily series such
// as the paper's Figure 1 traffic fractions.
func Day(t time.Time) time.Time {
	y, m, d := t.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Month truncates t to the first of its month UTC — the bucketing unit for
// monthly series such as Figures 2 and 8.
func Month(t time.Time) time.Time {
	y, m, _ := t.UTC().Date()
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// Hour truncates t to the top of its hour UTC — the bucketing unit for the
// attacks-per-hour series in Figure 7.
func Hour(t time.Time) time.Time {
	return t.UTC().Truncate(time.Hour)
}
