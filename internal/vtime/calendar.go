package vtime

import "math/bits"

// The calendar queue: a bucketed timer wheel for the near future plus a
// binary heap for the far future, with a small "current" heap holding
// already-drained events.
//
// Layout. The wheel covers a sliding window of calBuckets buckets, each
// calWidth nanoseconds wide (1<<24 ns ≈ 16.8ms, so the window spans ≈69
// virtual seconds — comfortably wider than the fabric's 10–240ms delivery
// latencies, which is where the event volume lives). Events beyond the
// window land in the overflow heap; when the wheel runs dry the window is
// re-based onto the overflow's minimum and qualifying events are scattered
// into buckets.
//
// Ordering invariant. cursor is the index of the next undrained bucket;
// every event strictly before cursorNs (the start of that bucket) lives in
// cur, every event in [cursorNs, baseNs+span) lives in its bucket, and
// everything later lives in overflow. cur's minimum is therefore the global
// minimum whenever cur is non-empty, and draining a bucket into cur (then
// popping cur in (atNs, seq) order) yields exactly the total order the
// reference heap produces.
//
// Cost. push is O(1) into a bucket (amortized heap cost for cur/overflow
// pushes, which are the minority); pop is O(log b) in the size b of the
// current bucket, plus an amortized O(1) bitmap scan per bucket advance.

const (
	calShift   = 24 // log2 of bucket width in ns
	calWidth   = int64(1) << calShift
	calBuckets = 4096
	calSpan    = calWidth * calBuckets
	calWords   = calBuckets / 64
)

type calendarQueue struct {
	cur      eventHeap // events earlier than cursorNs (drained buckets)
	buckets  [calBuckets][]*event
	occupied [calWords]uint64
	baseNs   int64     // window start, aligned to calWidth
	cursor   int       // next undrained bucket index
	overflow eventHeap // events at or beyond baseNs+calSpan
	n        int
}

func newCalendarQueue() *calendarQueue { return &calendarQueue{} }

func (c *calendarQueue) len() int { return c.n }

func (c *calendarQueue) cursorNs() int64 { return c.baseNs + int64(c.cursor)<<calShift }

func (c *calendarQueue) push(e *event) {
	c.n++
	switch {
	case e.atNs < c.cursorNs():
		c.cur.push(e)
	case e.atNs < c.baseNs+calSpan:
		idx := (e.atNs - c.baseNs) >> calShift
		c.buckets[idx] = append(c.buckets[idx], e)
		c.occupied[idx>>6] |= 1 << (idx & 63)
	default:
		c.overflow.push(e)
	}
}

// advance makes cur non-empty if any event exists: it drains the next
// occupied bucket into cur, re-basing the window onto the overflow heap
// when the wheel is empty.
func (c *calendarQueue) advance() {
	for len(c.cur) == 0 {
		idx, ok := c.nextOccupied()
		if !ok {
			if len(c.overflow) == 0 {
				return // genuinely empty
			}
			// Wheel dry: slide the window so it starts at the overflow
			// minimum's bucket and scatter qualifying events in.
			c.baseNs = c.overflow[0].atNs &^ (calWidth - 1)
			c.cursor = 0
			limit := c.baseNs + calSpan
			for len(c.overflow) > 0 && c.overflow[0].atNs < limit {
				e := c.overflow.pop()
				i := (e.atNs - c.baseNs) >> calShift
				c.buckets[i] = append(c.buckets[i], e)
				c.occupied[i>>6] |= 1 << (i & 63)
			}
			continue
		}
		// Drain bucket idx into cur and step the cursor past it. The
		// bucket's backing array is retained for reuse.
		b := c.buckets[idx]
		c.cur = append(c.cur[:0], b...)
		c.cur.init()
		for i := range b {
			b[i] = nil
		}
		c.buckets[idx] = b[:0]
		c.occupied[idx>>6] &^= 1 << (idx & 63)
		c.cursor = idx + 1
	}
}

// nextOccupied scans the occupancy bitmap for the first non-empty bucket at
// or after the cursor.
func (c *calendarQueue) nextOccupied() (int, bool) {
	if c.cursor >= calBuckets {
		return 0, false
	}
	w := c.cursor >> 6
	word := c.occupied[w] >> (c.cursor & 63) << (c.cursor & 63)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= calWords {
			return 0, false
		}
		word = c.occupied[w]
	}
}

func (c *calendarQueue) min() *event {
	if c.n == 0 {
		return nil
	}
	c.advance()
	if len(c.cur) == 0 {
		return nil
	}
	return c.cur[0]
}

func (c *calendarQueue) pop() *event {
	if c.min() == nil {
		return nil
	}
	c.n--
	return c.cur.pop()
}
