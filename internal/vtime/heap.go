package vtime

// eventHeap is a binary min-heap of events ordered by (atNs, seq). It backs
// the reference heapQueue, the calendar queue's current and overflow heaps,
// and is written out by hand (rather than through container/heap) to keep
// push/pop free of interface boxing on the hot path.
type eventHeap []*event

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

// init establishes the heap property over arbitrary contents.
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h eventHeap) up(i int) {
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (h eventHeap) down(i int) {
	n := len(h)
	e := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].less(h[child]) {
			child = r
		}
		if !h[child].less(e) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = e
}

// heapQueue is the original binary-heap scheduler queue, retained behind
// NewHeapScheduler as the differential-testing oracle: O(log n) insert and
// pop, trivially correct total order.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e *event) { q.h.push(e) }
func (q *heapQueue) len() int      { return len(q.h) }

func (q *heapQueue) min() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h.pop()
}
