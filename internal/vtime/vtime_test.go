package vtime

import (
	"testing"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	var c Clock
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero clock reads %v, want %v", c.Now(), Epoch)
	}
	if c.Elapsed() != 0 {
		t.Fatalf("zero clock elapsed %v, want 0", c.Elapsed())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !c.Now().Equal(want) {
		t.Fatalf("after advance clock reads %v, want %v", c.Now(), want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	target := Epoch.Add(48 * time.Hour)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo got %v, want %v", c.Now(), target)
	}
}

func TestClockAdvanceToPastPanics(t *testing.T) {
	var c Clock
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo(past) did not panic")
		}
	}()
	c.AdvanceTo(Epoch)
}

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	var order []int
	s.At(Epoch.Add(3*time.Hour), func(time.Time) { order = append(order, 3) })
	s.At(Epoch.Add(1*time.Hour), func(time.Time) { order = append(order, 1) })
	s.At(Epoch.Add(2*time.Hour), func(time.Time) { order = append(order, 2) })
	n := s.RunUntil(Epoch.Add(24 * time.Hour))
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	at := Epoch.Add(time.Hour)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func(time.Time) { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestSchedulerRunUntilExcludesEnd(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	end := Epoch.Add(time.Hour)
	ran := false
	s.At(end, func(time.Time) { ran = true })
	s.RunUntil(end)
	if ran {
		t.Fatal("event at end boundary ran; RunUntil must be exclusive")
	}
	if !c.Now().Equal(end) {
		t.Fatalf("clock at %v, want %v", c.Now(), end)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerEventsCanScheduleEvents(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	count := 0
	var tick func(now time.Time)
	tick = func(now time.Time) {
		count++
		if count < 5 {
			s.After(time.Minute, tick)
		}
	}
	s.After(time.Minute, tick)
	s.RunUntil(Epoch.Add(time.Hour))
	if count != 5 {
		t.Fatalf("chained ticks = %d, want 5", count)
	}
}

func TestSchedulerAtPastPanics(t *testing.T) {
	var c Clock
	c.Advance(time.Hour)
	s := NewScheduler(&c)
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	s.At(Epoch, func(time.Time) {})
}

func TestSchedulerEvery(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	count := 0
	start := Epoch.Add(time.Hour)
	s.Every(start, time.Hour, start.Add(5*time.Hour), func(time.Time) { count++ })
	s.Drain()
	if count != 5 {
		t.Fatalf("Every produced %d ticks, want 5", count)
	}
}

func TestDayMonthHourTruncation(t *testing.T) {
	ts := time.Date(2014, time.February, 11, 17, 45, 12, 999, time.UTC)
	if d := Day(ts); !d.Equal(time.Date(2014, 2, 11, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("Day = %v", d)
	}
	if m := Month(ts); !m.Equal(time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("Month = %v", m)
	}
	if h := Hour(ts); !h.Equal(time.Date(2014, 2, 11, 17, 0, 0, 0, time.UTC)) {
		t.Fatalf("Hour = %v", h)
	}
}

func TestDrainAdvancesClock(t *testing.T) {
	var c Clock
	s := NewScheduler(&c)
	last := Epoch.Add(77 * time.Hour)
	s.At(last, func(time.Time) {})
	s.Drain()
	if !c.Now().Equal(last) {
		t.Fatalf("after Drain clock reads %v, want %v", c.Now(), last)
	}
}
