package schedtest

import (
	"math/rand"
	"testing"

	"ntpddos/internal/vtime"
)

// compare replays program against both scheduler implementations and fails
// at the first trace divergence.
func compare(t *testing.T, program []byte) {
	t.Helper()
	cal := Replay(vtime.NewScheduler, program)
	ref := Replay(vtime.NewHeapScheduler, program)
	if i := Diff(cal, ref); i >= 0 {
		calLine, refLine := "<missing>", "<missing>"
		if i < len(cal) {
			calLine = cal[i]
		}
		if i < len(ref) {
			refLine = ref[i]
		}
		t.Fatalf("trace diverges at %d (of %d/%d):\n  calendar: %s\n  heap:     %s\nprogram: %x",
			i, len(cal), len(ref), calLine, refLine, program)
	}
}

// TestSchedulerEquivalenceSeeded property-tests the calendar queue against
// the reference heap on generated workloads. Seeds are fixed so a failure
// reproduces; the fuzz target below explores beyond them.
func TestSchedulerEquivalenceSeeded(t *testing.T) {
	rounds, size := 200, 512
	if testing.Short() {
		rounds = 40
	}
	for seed := 0; seed < rounds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		program := make([]byte, size)
		r.Read(program)
		compare(t, program)
	}
}

// TestSchedulerEquivalenceTies hammers the tie-breaking path: op 7 bursts
// with zero deltas put every event at the same instant, where only the
// sequence number separates them.
func TestSchedulerEquivalenceTies(t *testing.T) {
	var program []byte
	for i := 0; i < 64; i++ {
		// op 7 (same-instant burst), delta bytes 0,0, burst-size byte.
		program = append(program, 7, 0, 0, byte(i))
		if i%8 == 0 {
			program = append(program, 5, 1, 20) // RunUntil to interleave
		}
	}
	program = append(program, 6) // Drain
	compare(t, program)
}

// TestSchedulerEquivalenceOverflow forces events past the calendar wheel's
// ~69s window so the overflow heap and window rebase are on the compared
// path.
func TestSchedulerEquivalenceOverflow(t *testing.T) {
	var program []byte
	for i := 0; i < 32; i++ {
		program = append(program, 0, byte(i+1), 32) // delta = (i+1)<<32 ns, beyond the window
		program = append(program, 0, byte(i), byte(i%33))
	}
	program = append(program, 6)
	compare(t, program)
}

func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 0, 0, 3, 6})                   // same-instant burst, then drain
	f.Add([]byte{3, 0, 0, 10, 3, 6})               // periodic timer
	f.Add([]byte{4, 0, 0, 4, 0, 0, 0, 1, 0, 6})    // batch items with an interleaved event
	f.Add([]byte{0, 255, 32, 0, 0, 0, 5, 255, 32}) // overflow + rebase
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 4096 {
			program = program[:4096]
		}
		compare(t, program)
	})
}
