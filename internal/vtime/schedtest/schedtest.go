// Package schedtest is the differential harness that locks the calendar-queue
// scheduler to the reference binary heap. It interprets a byte program as a
// sequence of scheduler operations — one-shot events, periodic timers, batch
// deliveries, re-entrant scheduling from inside callbacks, interleaved
// RunUntil/Drain — and records every observable action in a trace. Running
// the same program against two scheduler constructors and comparing traces
// asserts the implementations agree on the full (atNs, seq) total order,
// including same-instant ties and events scheduled while firing.
//
// The byte-program encoding is deliberately fuzz-friendly: every byte string
// is a valid program, and small input mutations explore materially different
// schedules (zero deltas for ties, shifted deltas that cross bucket and
// wheel-window boundaries, nested callbacks).
package schedtest

import (
	"fmt"
	"strings"
	"time"

	"ntpddos/internal/vtime"
)

// Trace is the observable behaviour of one scheduler run: one line per fired
// event, delivered batch, and run-loop checkpoint, in execution order.
type Trace []string

// Diff returns the first index at which two traces disagree, or -1 when they
// are identical.
func Diff(a, b Trace) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// Replay interprets program against a fresh scheduler built by mk and
// returns the trace. The interpreter consumes program bytes both at the top
// level and from inside firing callbacks (re-entrant scheduling), so a trace
// divergence between two implementations surfaces at the first misordered
// event even though later consumption cascades.
func Replay(mk func(*vtime.Clock) *vtime.Scheduler, program []byte) Trace {
	var clock vtime.Clock
	it := &interp{sched: mk(&clock), clock: &clock, prog: program}
	for it.pc < len(it.prog) {
		it.step()
	}
	it.sched.Drain()
	it.emit("end @%d pending=%d peak=%d",
		clock.Now().UnixNano(), it.sched.Pending(), it.sched.PeakPending())
	return it.trace
}

type interp struct {
	sched  *vtime.Scheduler
	clock  *vtime.Clock
	prog   []byte
	pc     int
	nextID int
	trace  Trace
}

func (it *interp) emit(format string, args ...any) {
	it.trace = append(it.trace, fmt.Sprintf(format, args...))
}

// next consumes one program byte; an exhausted program reads as zero.
func (it *interp) next() byte {
	if it.pc >= len(it.prog) {
		return 0
	}
	b := it.prog[it.pc]
	it.pc++
	return b
}

// delta consumes two bytes and builds a non-negative duration spanning from
// zero (same-instant ties) through sub-bucket offsets up to minutes — wide
// enough to push events past the calendar wheel's window into its overflow
// heap and force a rebase.
func (it *interp) delta() time.Duration {
	b1, b2 := it.next(), it.next()
	return time.Duration(int64(b1) << (uint(b2) % 33))
}

func (it *interp) step() {
	switch it.next() % 8 {
	case 0, 1, 2: // bias toward plain events: they carry the ordering load
		it.scheduleFire(2)
	case 3:
		it.scheduleEvery()
	case 4:
		it.scheduleBatch()
	case 5:
		end := it.clock.Now().Add(it.delta())
		ran := it.sched.RunUntil(end)
		it.emit("until @%d ran=%d pending=%d", it.clock.Now().UnixNano(), ran, it.sched.Pending())
	case 6:
		ran := it.sched.Drain()
		it.emit("drain @%d ran=%d", it.clock.Now().UnixNano(), ran)
	case 7: // a burst of same-instant events: the tie-breaking stress case
		at := it.clock.Now().Add(it.delta())
		n := int(it.next()%4) + 2
		for i := 0; i < n; i++ {
			id := it.nextID
			it.nextID++
			it.sched.At(at, func(now time.Time) {
				it.emit("fire %d @%d", id, now.UnixNano())
			})
		}
	}
}

// scheduleFire schedules a one-shot event whose callback may re-entrantly
// schedule further events (down to the given depth), including at the very
// instant that is currently firing.
func (it *interp) scheduleFire(depth int) {
	id := it.nextID
	it.nextID++
	at := it.clock.Now().Add(it.delta())
	it.sched.At(at, func(now time.Time) {
		it.emit("fire %d @%d", id, now.UnixNano())
		if depth > 0 && it.next()%3 == 0 {
			it.scheduleFire(depth - 1)
		}
	})
}

// scheduleEvery schedules a bounded periodic timer.
func (it *interp) scheduleEvery() {
	id := it.nextID
	it.nextID++
	start := it.clock.Now().Add(it.delta())
	interval := time.Duration(1+int64(it.next())) * time.Millisecond
	ticks := int64(it.next() % 6)
	end := start.Add(time.Duration(ticks) * interval)
	if !start.Before(end) {
		return // Every with an empty window is a no-op by contract
	}
	it.sched.Every(start, interval, end, func(now time.Time) {
		it.emit("tick %d @%d", id, now.UnixNano())
	})
}

// scheduleBatch enqueues an item for coalesced delivery. The interpreter is
// its own BatchSink, so consecutive same-instant items land in one RunBatch —
// and any implementation that coalesces across an intervening non-batch event
// (illegally reordering it) shows up as a trace diff.
func (it *interp) scheduleBatch() {
	id := it.nextID
	it.nextID++
	at := it.clock.Now().Add(it.delta())
	it.sched.AtBatch(at, it, id)
}

// RunBatch implements vtime.BatchSink.
func (it *interp) RunBatch(now time.Time, items []any) {
	var b strings.Builder
	fmt.Fprintf(&b, "batch @%d", now.UnixNano())
	for _, x := range items {
		fmt.Fprintf(&b, " %d", x.(int))
	}
	it.trace = append(it.trace, b.String())
}
