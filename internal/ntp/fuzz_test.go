package ntp

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
)

// Fuzz targets for the NTP wire decoders: every parser must be total —
// return an error on malformed input, never panic or over-read. Seed
// corpora are real encodings produced by the package's own builders, so
// the fuzzer starts from structurally valid packets and mutates inward.

func FuzzDecodeMode7(f *testing.F) {
	f.Add(NewMonlistRequest(ImplXNTPD, ReqMonGetList1))
	f.Add(NewMonlistRequestPadded(ImplXNTPD, ReqMonGetList))
	entries := []MonEntry{
		{Addr: netaddr.MustParseAddr("192.0.2.1"), Port: 80, Mode: ModePrivate, Count: 1000, AvgInterval: 2, LastSeen: 7},
		{Addr: netaddr.MustParseAddr("198.51.100.9"), Port: 123, Mode: ModeClient, Count: 12, AvgInterval: 64},
	}
	for _, frag := range BuildMonlistResponse(entries, ImplXNTPD, ReqMonGetList1) {
		f.Add(frag)
	}
	for _, frag := range BuildPeerListResponse([]PeerEntry{{Addr: netaddr.MustParseAddr("203.0.113.5")}}, ImplXNTPD) {
		f.Add(frag)
	}
	f.Add([]byte{0x97, 0x00, 0x03, 0x2a})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMode7(data)
		if err != nil {
			// Malformed must also be rejected by the higher-level parsers.
			if _, _, err2 := ParseMonlistResponse(data); err2 == nil {
				t.Fatal("ParseMonlistResponse accepted what DecodeMode7 rejected")
			}
			return
		}
		// Anything that decodes must re-encode to something decodable.
		if _, err := DecodeMode7(m.AppendTo(nil)); err != nil {
			t.Fatalf("re-encoded mode 7 packet does not decode: %v", err)
		}
		// The entry parsers must stay within bounds on any decodable packet.
		_, _, _ = ParseMonlistResponse(data)
		_, _, _ = ParsePeerListResponse(data)
	})
}

func FuzzDecodeMode6(f *testing.F) {
	f.Add(NewReadVarRequest(7))
	for _, frag := range BuildReadVarResponse(7, SystemVariables{
		Version: "ntpd 4.2.4p8", Processor: "x86_64", System: "Linux", Stratum: 2,
	}.Encode()) {
		f.Add(frag)
	}
	f.Add([]byte{0x16, 0x82, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMode6(data)
		if err != nil {
			return
		}
		if _, err := DecodeMode6(m.AppendTo(nil)); err != nil {
			t.Fatalf("re-encoded mode 6 packet does not decode: %v", err)
		}
		// Reassembly over a decoded fragment must not panic regardless of
		// offset/count claims in the header.
		_, _ = ReassembleMode6([]*Mode6{m})
	})
}

func FuzzDecodeSyncReply(f *testing.F) {
	now := time.Unix(1385856000, 0).UTC()
	req := NewPollRequest(6, ToNTPTime(now))
	f.Add(req.AppendTo(nil))
	f.Add(NewServerReply(req, 2, now.Add(40*time.Millisecond)).AppendTo(nil))
	f.Add(NewServerReply(req, StratumUnsynchronized, now).AppendTo(nil))
	f.Add(NewKissReply(req.TransmitTime, KissRATE, now).AppendTo(nil))
	f.Add(NewKissReply(0, KissDENY, now).AppendTo(nil))
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeSyncReply(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to a reply that decodes to the
		// same header and kiss classification.
		r2, err := DecodeSyncReply(r.Header.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-encoded sync reply does not decode: %v", err)
		}
		if r.Header != r2.Header || r.Kiss != r2.Kiss {
			t.Fatalf("sync reply round trip diverged:\n%+v\n%+v", r, r2)
		}
		// Decoded invariants the discipline depends on.
		if r.Kiss != "" && r.Stratum != 0 {
			t.Fatalf("kiss code %q on stratum %d", r.Kiss, r.Stratum)
		}
		if r.Kiss == "" && r.TransmitTime == 0 {
			t.Fatal("accepted a non-KoD reply with zero transmit timestamp")
		}
		_ = r.CheckOrigin(req.TransmitTime)
	})
}

func FuzzDecodeHeader(f *testing.F) {
	f.Add(NewClientRequest(time.Unix(1385856000, 0).UTC()).AppendTo(nil))
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		round := h.AppendTo(nil)
		var h2 Header
		if err := h2.DecodeFromBytes(round); err != nil {
			t.Fatalf("re-encoded header does not decode: %v", err)
		}
		if h != h2 {
			t.Fatalf("header round trip diverged:\n%+v\n%+v", h, h2)
		}
	})
}
