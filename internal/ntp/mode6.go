package ntp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Mode 6 (ntpq control protocol) constants, following RFC 1305 appendix B.
const (
	// OpReadVar is the read-variables opcode — what the ONP "version" scans
	// send (§3.3): a mode 6 readvar elicits the system variable list,
	// including version, system/OS and stratum strings.
	OpReadVar = 2

	// Mode6HeaderLen is the fixed control header size.
	Mode6HeaderLen = 12

	// MaxControlData is the data budget per control fragment; ntpd packs at
	// most 468 bytes of variable text into one fragment.
	MaxControlData = 468
)

// Mode6 is a parsed control-mode message (one fragment).
type Mode6 struct {
	Response bool
	Error    bool
	More     bool
	OpCode   uint8
	Sequence uint16
	Status   uint16
	AssocID  uint16
	Offset   uint16
	Count    uint16
	Data     []byte
}

// AppendTo serializes the message, padding data to a 32-bit boundary as the
// protocol requires.
func (m *Mode6) AppendTo(b []byte) []byte {
	b = append(b, byte(VersionNumber<<3|ModeControl))
	b1 := m.OpCode & 0x1f
	if m.Response {
		b1 |= 0x80
	}
	if m.Error {
		b1 |= 0x40
	}
	if m.More {
		b1 |= 0x20
	}
	b = append(b, b1)
	b = binary.BigEndian.AppendUint16(b, m.Sequence)
	b = binary.BigEndian.AppendUint16(b, m.Status)
	b = binary.BigEndian.AppendUint16(b, m.AssocID)
	b = binary.BigEndian.AppendUint16(b, m.Offset)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Data)))
	b = append(b, m.Data...)
	for pad := (4 - len(m.Data)%4) % 4; pad > 0; pad-- {
		b = append(b, 0)
	}
	return b
}

// DecodeMode6 parses a control-mode message.
func DecodeMode6(payload []byte) (*Mode6, error) {
	m := &Mode6{}
	if err := m.DecodeFromBytes(payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeFromBytes parses a control-mode message into the receiver without
// allocating: Data aliases payload and the prior contents of m are
// overwritten.
func (m *Mode6) DecodeFromBytes(payload []byte) error {
	if len(payload) < Mode6HeaderLen {
		return ErrTruncated
	}
	if payload[0]&0x07 != ModeControl {
		return ErrBadMode
	}
	*m = Mode6{
		Response: payload[1]&0x80 != 0,
		Error:    payload[1]&0x40 != 0,
		More:     payload[1]&0x20 != 0,
		OpCode:   payload[1] & 0x1f,
		Sequence: binary.BigEndian.Uint16(payload[2:]),
		Status:   binary.BigEndian.Uint16(payload[4:]),
		AssocID:  binary.BigEndian.Uint16(payload[6:]),
		Offset:   binary.BigEndian.Uint16(payload[8:]),
	}
	m.Count = binary.BigEndian.Uint16(payload[10:])
	if int(m.Count) > len(payload)-Mode6HeaderLen {
		return fmt.Errorf("%w: count %d exceeds %d data bytes",
			ErrTruncated, m.Count, len(payload)-Mode6HeaderLen)
	}
	m.Data = payload[Mode6HeaderLen : Mode6HeaderLen+int(m.Count)]
	return nil
}

// NewReadVarRequest builds the 12-byte mode 6 readvar probe ("ntpq -c rv"),
// the packet behind the version amplifier pool of §3.3.
func NewReadVarRequest(seq uint16) []byte {
	m := Mode6{OpCode: OpReadVar, Sequence: seq}
	return m.AppendTo(make([]byte, 0, Mode6HeaderLen))
}

// SystemVariables is the daemon state a readvar response serialises. The
// paper's Table 2 aggregates the OS/system strings; §3.3 aggregates stratum
// (finding 19% at stratum 16) and the version compile year.
type SystemVariables struct {
	Version   string // e.g. "ntpd 4.2.6p5@1.2349-o Tue Dec  1 09:12:00 UTC 2011 (1)"
	Processor string
	System    string // e.g. "Linux/3.2.0", "cisco", "JUNOS12.3R3.4"
	Stratum   int
	RefID     string
}

// Encode renders the canonical comma-separated variable list.
func (v SystemVariables) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "version=%q, processor=%q, system=%q, stratum=%d, refid=%s",
		v.Version, v.Processor, v.System, v.Stratum, v.RefID)
	return b.String()
}

// ParseSystemVariables parses the variable list back. Unknown keys are
// ignored; missing keys leave zero values, as real responses vary by
// implementation.
func ParseSystemVariables(s string) SystemVariables {
	var v SystemVariables
	for _, field := range splitVars(s) {
		eq := strings.IndexByte(field, '=')
		if eq < 0 {
			continue
		}
		key := strings.TrimSpace(field[:eq])
		val := strings.TrimSpace(field[eq+1:])
		val = strings.Trim(val, `"`)
		switch key {
		case "version":
			v.Version = val
		case "processor":
			v.Processor = val
		case "system":
			v.System = val
		case "stratum":
			fmt.Sscanf(val, "%d", &v.Stratum)
		case "refid":
			v.RefID = val
		}
	}
	return v
}

// splitVars splits on commas not inside quotes.
func splitVars(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// BuildReadVarResponse fragments the variable text into mode 6 response
// packets with correct offset/count/More bookkeeping.
func BuildReadVarResponse(seq uint16, vars string) [][]byte {
	data := []byte(vars)
	if len(data) == 0 {
		data = []byte{}
	}
	var out [][]byte
	for off := 0; ; off += MaxControlData {
		end := off + MaxControlData
		if end > len(data) {
			end = len(data)
		}
		m := Mode6{
			Response: true,
			More:     end < len(data),
			OpCode:   OpReadVar,
			Sequence: seq,
			Offset:   uint16(off),
			Data:     data[off:end],
		}
		out = append(out, m.AppendTo(nil))
		if end == len(data) {
			break
		}
	}
	return out
}

// ReassembleMode6 reconstructs the variable text from response fragments,
// which may arrive in any order. It returns an error on gaps or overlaps —
// a lossy reassembly would corrupt the Table 2 string statistics silently.
func ReassembleMode6(fragments []*Mode6) (string, error) {
	if len(fragments) == 0 {
		return "", fmt.Errorf("ntp: no fragments")
	}
	sorted := make([]*Mode6, len(fragments))
	copy(sorted, fragments)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	var b strings.Builder
	expect := 0
	for i, f := range sorted {
		if int(f.Offset) != expect {
			return "", fmt.Errorf("ntp: fragment gap at offset %d (expected %d)", f.Offset, expect)
		}
		if f.More != (i < len(sorted)-1) {
			return "", fmt.Errorf("ntp: inconsistent More flag at offset %d", f.Offset)
		}
		b.Write(f.Data)
		expect += len(f.Data)
	}
	return b.String(), nil
}
