package ntp

import (
	"errors"
	"testing"
	"time"
)

func TestNTPTimeRoundTrip(t *testing.T) {
	for _, instant := range []time.Time{
		time.Date(2013, 9, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 1, 10, 13, 37, 42, 125_000_000, time.UTC),
		time.Date(2014, 5, 1, 23, 59, 59, 999_000_000, time.UTC),
	} {
		got := FromNTPTime(ToNTPTime(instant))
		if d := got.Sub(instant); d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("FromNTPTime(ToNTPTime(%v)) = %v (off by %v)", instant, got, d)
		}
	}
}

func TestDecodeSyncReplyGenuine(t *testing.T) {
	now := time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC)
	req := NewPollRequest(6, ToNTPTime(now))
	rep := NewServerReply(req, 2, now.Add(80*time.Millisecond))
	r, err := DecodeSyncReply(rep.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kiss != "" {
		t.Fatalf("genuine reply classified as KoD %q", r.Kiss)
	}
	if !r.CheckOrigin(req.TransmitTime) {
		t.Fatal("origin echo failed for a genuine reply")
	}
	if r.CheckOrigin(req.TransmitTime + 1) {
		t.Fatal("origin check passed for a mismatched cookie")
	}
}

func TestDecodeSyncReplyKiss(t *testing.T) {
	now := time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC)
	for _, code := range []string{KissRATE, KissDENY, KissRSTR, "STEP"} {
		kod := NewKissReply(42, code, now)
		r, err := DecodeSyncReply(kod.AppendTo(nil))
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if r.Kiss != code {
			t.Fatalf("kiss = %q, want %q", r.Kiss, code)
		}
	}
}

func TestDecodeSyncReplyRejectsMalformed(t *testing.T) {
	now := time.Date(2013, 12, 1, 0, 0, 0, 0, time.UTC)
	req := NewPollRequest(6, ToNTPTime(now))
	good := NewServerReply(req, 2, now)

	mutate := func(f func(h *Header)) []byte {
		h := *good
		f(&h)
		return h.AppendTo(nil)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated", good.AppendTo(nil)[:47], ErrTruncated},
		{"empty", nil, ErrTruncated},
		{"mode 3", req.AppendTo(nil), ErrBadMode},
		{"mode 7", []byte{0x97, 0, 0, 0}, ErrTruncated},
		{"version 0", mutate(func(h *Header) { h.Version = 0 }), ErrBadReply},
		{"version 7", mutate(func(h *Header) { h.Version = 7 }), ErrBadReply},
		{"stratum 17", mutate(func(h *Header) { h.Stratum = 17 }), ErrBadReply},
		{"zero transmit", mutate(func(h *Header) { h.TransmitTime = 0 }), ErrBadReply},
		{"stratum 0, binary refid", mutate(func(h *Header) {
			h.Stratum = 0
			h.ReferenceID = 0x01020304
		}), ErrBadReply},
		{"stratum 0, zero refid", mutate(func(h *Header) {
			h.Stratum = 0
			h.ReferenceID = 0
		}), ErrBadReply},
	}
	for _, c := range cases {
		if _, err := DecodeSyncReply(c.data); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestKissRefIDRoundTrip(t *testing.T) {
	for _, code := range []string{"RATE", "DENY", "RSTR", "X"} {
		if got := kissFromRefID(KissRefID(code)); got != code {
			t.Errorf("kissFromRefID(KissRefID(%q)) = %q", code, got)
		}
	}
	if got := kissFromRefID(KissRefID("TOOLONG")); got != "TOOL" {
		t.Errorf("overlong code truncated to %q, want TOOL", got)
	}
}
