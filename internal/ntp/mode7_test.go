package ntp

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ntpddos/internal/netaddr"
)

func TestMonlistRequestIsCanonical(t *testing.T) {
	// The attack/scan probe everyone sends: 17 00 03 2a + 4 zero bytes.
	raw := NewMonlistRequest(ImplXNTPD, ReqMonGetList1)
	want := []byte{0x17, 0x00, 0x03, 0x2a, 0x00, 0x00, 0x00, 0x00}
	if !bytes.Equal(raw, want) {
		t.Fatalf("monlist probe = %x, want %x", raw, want)
	}
}

func TestMode7RoundTrip(t *testing.T) {
	m := Mode7{
		Response: true, More: true, Sequence: 99,
		Implementation: ImplXNTPD, Request: ReqMonGetList1,
		Err: InfoErrNoData, NItems: 0, ItemSize: 0,
	}
	raw := m.AppendTo(nil)
	got, err := DecodeMode7(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Response != m.Response || got.More != m.More || got.Sequence != m.Sequence ||
		got.Implementation != m.Implementation || got.Request != m.Request || got.Err != m.Err {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestDecodeMode7RejectsWrongMode(t *testing.T) {
	raw := []byte{0x16, 0, 0, 0, 0, 0, 0, 0} // mode 6, not 7
	if _, err := DecodeMode7(raw); err == nil {
		t.Fatal("mode 6 packet decoded as mode 7")
	}
}

func TestDecodeMode7RejectsOverflowItems(t *testing.T) {
	m := Mode7{Response: true, NItems: 100, ItemSize: 72}
	raw := m.AppendTo(nil) // no data at all
	if _, err := DecodeMode7(raw); err == nil {
		t.Fatal("item count exceeding data not rejected")
	}
}

func TestEntriesPerPacket(t *testing.T) {
	if n := EntriesPerPacket(MonEntrySizeV1); n != 6 {
		t.Fatalf("GETLIST_1 entries per packet = %d, want 6", n)
	}
	if n := EntriesPerPacket(MonEntrySizeLegacy); n != 20 {
		t.Fatalf("legacy entries per packet = %d, want 20", n)
	}
}

func randomEntries(r *rand.Rand, n int) []MonEntry {
	entries := make([]MonEntry, n)
	for i := range entries {
		entries[i] = MonEntry{
			Addr:        netaddr.Addr(r.Uint32()),
			DAddr:       netaddr.Addr(r.Uint32()),
			Count:       r.Uint32(),
			Mode:        uint8(r.IntN(8)),
			Version:     uint8(2 + r.IntN(3)),
			Port:        uint16(r.Uint32()),
			AvgInterval: r.Uint32(),
			LastSeen:    r.Uint32(),
			Restr:       r.Uint32(),
		}
	}
	return entries
}

func reassemble(t *testing.T, packets [][]byte) []MonEntry {
	t.Helper()
	var all []MonEntry
	for i, p := range packets {
		m, entries, err := ParseMonlistResponse(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		wantMore := i < len(packets)-1
		if m.More != wantMore {
			t.Fatalf("packet %d More = %v, want %v", i, m.More, wantMore)
		}
		all = append(all, entries...)
	}
	return all
}

func TestMonlistResponseRoundTripV1(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 5, 6, 7, 600} {
		entries := randomEntries(r, n)
		packets := BuildMonlistResponse(entries, ImplXNTPD, ReqMonGetList1)
		wantPackets := (n + 5) / 6
		if len(packets) != wantPackets {
			t.Fatalf("%d entries -> %d packets, want %d", n, len(packets), wantPackets)
		}
		got := reassemble(t, packets)
		if len(got) != n {
			t.Fatalf("reassembled %d entries, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != entries[i] {
				t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], entries[i])
			}
		}
	}
}

func TestMonlistResponseRoundTripLegacy(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	entries := randomEntries(r, 45)
	packets := BuildMonlistResponse(entries, ImplXNTPDOld, ReqMonGetList)
	if len(packets) != 3 { // 20 + 20 + 5
		t.Fatalf("45 legacy entries -> %d packets, want 3", len(packets))
	}
	got := reassemble(t, packets)
	if len(got) != 45 {
		t.Fatalf("reassembled %d entries", len(got))
	}
	for i := range got {
		// The legacy format does not carry DAddr; everything else must match.
		want := entries[i]
		want.DAddr = 0
		if got[i] != want {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestEmptyTableYieldsNoDataError(t *testing.T) {
	packets := BuildMonlistResponse(nil, ImplXNTPD, ReqMonGetList1)
	if len(packets) != 1 {
		t.Fatalf("empty table -> %d packets", len(packets))
	}
	m, entries, err := ParseMonlistResponse(packets[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Err != InfoErrNoData || len(entries) != 0 {
		t.Fatalf("empty table response = err %d, %d entries", m.Err, len(entries))
	}
}

func TestFullTableResponseSize(t *testing.T) {
	// A primed 600-entry table must produce 100 fragments of 440 payload
	// bytes (8 header + 6*72 items) — the packet arithmetic that makes
	// monlist the paper's headline amplification vector.
	r := rand.New(rand.NewPCG(5, 6))
	packets := BuildMonlistResponse(randomEntries(r, MaxMonlistEntries), ImplXNTPD, ReqMonGetList1)
	if len(packets) != 100 {
		t.Fatalf("full table -> %d packets, want 100", len(packets))
	}
	for i, p := range packets {
		if len(p) != Mode7HeaderLen+6*MonEntrySizeV1 {
			t.Fatalf("fragment %d payload = %d bytes", i, len(p))
		}
	}
}

func TestParseMonlistRejectsRequest(t *testing.T) {
	req := NewMonlistRequest(ImplXNTPD, ReqMonGetList1)
	if _, _, err := ParseMonlistResponse(req); err == nil {
		t.Fatal("request parsed as response")
	}
}

func TestMonEntryRoundTripProperty(t *testing.T) {
	f := func(addr, daddr, count, avgInt, lastSeen, restr uint32, port uint16, mode, version uint8) bool {
		e := MonEntry{
			Addr: netaddr.Addr(addr), DAddr: netaddr.Addr(daddr),
			Count: count, Mode: mode & 7, Version: version,
			Port: port, AvgInterval: avgInt, LastSeen: lastSeen, Restr: restr,
		}
		raw := e.appendV1(nil)
		if len(raw) != MonEntrySizeV1 {
			return false
		}
		got, err := decodeEntry(raw, MonEntrySizeV1)
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntryUnsupportedSize(t *testing.T) {
	if _, err := decodeEntry(make([]byte, 100), 50); err == nil {
		t.Fatal("unsupported item size accepted")
	}
}
