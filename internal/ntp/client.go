// Client-side mode 3/4 synchronization codec: the poll request a
// disciplined client emits, the hardened decoder for the mode 4 reply it
// gets back, and the kiss-o'-death (KoD) vocabulary of RFC 5905 §7.4 —
// stratum-0 replies whose reference ID carries a four-character ASCII code
// telling the client to back off (RATE) or go away (DENY/RSTR). Forged KoD
// packets are CVE-2015-7704/7705: clients that honor kiss codes without
// validating the origin timestamp can be silenced by an off-path attacker,
// which is exactly the attack internal/timeattack models.
package ntp

import (
	"errors"
	"time"
)

// Kiss-o'-death codes the sync discipline reacts to. Any other printable
// code decodes cleanly and is passed through for the client to ignore.
const (
	KissRATE = "RATE" // reduce poll rate (client backs off its poll interval)
	KissDENY = "DENY" // access denied (client must stop the association)
	KissRSTR = "RSTR" // access restricted (treated like DENY by the discipline)
)

// ErrBadReply marks a structurally-valid header that cannot be a usable
// mode 4 reply: bad version, zero transmit timestamp, impossible stratum,
// or a stratum-0 packet whose reference ID is not a printable kiss code.
var ErrBadReply = errors.New("ntp: malformed server reply")

// FromNTPTime converts a 64-bit NTP timestamp back to a wall-clock instant.
// The inverse of ToNTPTime for timestamps within the simulated window.
func FromNTPTime(ts uint64) time.Time {
	secs := int64(ts>>32) - Era
	frac := ts & 0xffffffff
	return time.Unix(secs, int64(frac*1e9>>32)).UTC()
}

// NewPollRequest builds the mode 3 poll a disciplined client sends. The
// transmit timestamp doubles as the origin cookie: a genuine reply must echo
// xmt in its origin field, which is what defeats blind off-path spoofing.
func NewPollRequest(poll int8, xmt uint64) *Header {
	return &Header{Version: 4, Mode: ModeClient, Poll: poll, Precision: -20,
		TransmitTime: xmt}
}

// KissRefID packs a kiss code ("RATE", "DENY", ...) into the reference-ID
// word of a stratum-0 reply. Codes shorter than four characters are padded
// with NULs, longer ones truncated — matching ntpd's refid handling.
func KissRefID(code string) uint32 {
	var id uint32
	for i := 0; i < 4; i++ {
		id <<= 8
		if i < len(code) {
			id |= uint32(code[i])
		}
	}
	return id
}

// kissFromRefID recovers the printable kiss code from a stratum-0 reference
// ID, or "" when the word is not a plausible code (which makes the packet
// malformed rather than a KoD).
func kissFromRefID(id uint32) string {
	var buf [4]byte
	n := 0
	for i := 0; i < 4; i++ {
		c := byte(id >> (24 - 8*i))
		if c == 0 {
			break
		}
		if c < 0x21 || c > 0x7e {
			return ""
		}
		buf[i] = c
		n = i + 1
	}
	if n == 0 {
		return ""
	}
	return string(buf[:n])
}

// NewKissReply builds the stratum-0 kiss-o'-death reply a server (or a
// CVE-2015-7704-style forger) sends: leap alarm, the code in the reference
// ID, and the claimed origin echo.
func NewKissReply(origin uint64, code string, now time.Time) *Header {
	return &Header{
		LeapIndicator: 3, // unsynchronized: KoD packets carry the alarm bits
		Version:       4,
		Mode:          ModeServer,
		Stratum:       0,
		ReferenceID:   KissRefID(code),
		OriginTime:    origin,
		ReceiveTime:   ToNTPTime(now),
		TransmitTime:  ToNTPTime(now),
	}
}

// SyncReply is a decoded, structurally-validated mode 4 reply. Kiss is
// non-empty exactly when the packet is a stratum-0 kiss-o'-death.
type SyncReply struct {
	Header
	Kiss string
}

// DecodeSyncReply parses and hardens a candidate mode 4 reply. It rejects
// truncated packets, wrong modes, impossible versions and strata, zero
// transmit timestamps, and stratum-0 packets without a printable kiss code —
// the malformed-reply surface a client exposed to attacker packets must
// survive. Trailing bytes (extension fields, MACs) are ignored.
func DecodeSyncReply(data []byte) (*SyncReply, error) {
	var h Header
	if err := h.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	if h.Mode != ModeServer {
		return nil, ErrBadMode
	}
	if h.Version < 1 || h.Version > 4 {
		return nil, ErrBadReply
	}
	r := &SyncReply{Header: h}
	if h.Stratum == 0 {
		r.Kiss = kissFromRefID(h.ReferenceID)
		if r.Kiss == "" {
			return nil, ErrBadReply
		}
		return r, nil
	}
	if h.Stratum > StratumUnsynchronized {
		return nil, ErrBadReply
	}
	if h.TransmitTime == 0 {
		return nil, ErrBadReply
	}
	return r, nil
}

// CheckOrigin reports whether the reply echoes the request's transmit
// cookie — the RFC 5905 test an off-path spoofer cannot pass blind.
// Vulnerable clients in the simulation skip this check.
func (r *SyncReply) CheckOrigin(xmt uint64) bool {
	return xmt != 0 && r.OriginTime == xmt
}
