package ntp

import (
	"testing"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/packet"
)

func peers(n int) []PeerEntry {
	out := make([]PeerEntry, n)
	for i := range out {
		out[i] = PeerEntry{Addr: netaddr.Addr(0x81060f00 + uint32(i)), Port: Port,
			HMode: ModeClient, Flags: 0x01}
	}
	return out
}

func TestPeerListRoundTrip(t *testing.T) {
	want := peers(5)
	packets := BuildPeerListResponse(want, ImplXNTPD)
	if len(packets) != 1 {
		t.Fatalf("5 peers -> %d packets", len(packets))
	}
	m, got, err := ParsePeerListResponse(packets[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Request != ReqPeerList || m.ItemSize != PeerEntrySize {
		t.Fatalf("header %+v", m)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peer %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestPeerListFragmentation(t *testing.T) {
	// 8-byte items, 500-byte budget: 62 per packet.
	packets := BuildPeerListResponse(peers(70), ImplXNTPD)
	if len(packets) != 2 {
		t.Fatalf("70 peers -> %d packets", len(packets))
	}
	var all []PeerEntry
	for _, p := range packets {
		_, es, err := ParsePeerListResponse(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, es...)
	}
	if len(all) != 70 {
		t.Fatalf("reassembled %d peers", len(all))
	}
}

func TestPeerListEmpty(t *testing.T) {
	packets := BuildPeerListResponse(nil, ImplXNTPD)
	m, es, err := ParsePeerListResponse(packets[0])
	if err != nil || len(es) != 0 || m.Err != InfoErrNoData {
		t.Fatalf("empty peer list: %v %d %d", err, len(es), m.Err)
	}
}

func TestPeerListLowAmplification(t *testing.T) {
	// The §3.1 claim: showpeers-style commands amplify far less than a
	// primed monlist. A typical daemon has ~4 peers.
	peersResp := BuildPeerListResponse(peers(4), ImplXNTPD)
	var peerBytes int
	for _, p := range peersResp {
		peerBytes += packet.OnWireBytesForUDPPayload(len(p))
	}
	monResp := BuildMonlistResponse(make([]MonEntry, MaxMonlistEntries), ImplXNTPD, ReqMonGetList1)
	var monBytes int
	for _, p := range monResp {
		monBytes += packet.OnWireBytesForUDPPayload(len(p))
	}
	peerBAF := float64(peerBytes) / float64(packet.MinOnWire)
	monBAF := float64(monBytes) / float64(packet.MinOnWire)
	if peerBAF > 2 {
		t.Fatalf("peer-list BAF = %.1f, want ~1-2", peerBAF)
	}
	if monBAF < 100*peerBAF {
		t.Fatalf("monlist BAF %.0f not >> peer BAF %.1f", monBAF, peerBAF)
	}
}
