package ntp

import (
	"encoding/binary"
	"fmt"

	"ntpddos/internal/netaddr"
)

// Mode 7 (ntpdc private protocol) constants, following ntp_request.h.
const (
	// Implementation numbers. The paper (§3.1) notes ntpdc tries two
	// implementation values one at a time, and that the ONP scans only used
	// one of them — a source of amplifier under-counting we reproduce.
	ImplUniv     = 0
	ImplXNTPDOld = 2
	ImplXNTPD    = 3

	// Request codes.
	ReqPeerList    = 0  // peer list: the "showpeers" data, low amplification
	ReqMonGetList  = 20 // legacy monlist, 24-byte entries
	ReqMonGetList1 = 42 // monlist_1, 72-byte entries — the attack favourite

	// Error codes carried in the err field of responses.
	InfoOK        = 0
	InfoErrImpl   = 1 // implementation number mismatch
	InfoErrReq    = 2 // unknown request code
	InfoErrFmt    = 3 // format error
	InfoErrNoData = 4 // no data available (empty monitor table)

	// Mode7HeaderLen is the fixed request/response header size.
	Mode7HeaderLen = 8

	// MaxItemData is the item-data budget per response packet; ntpd packs
	// at most 500 bytes of items into one mode 7 fragment.
	MaxItemData = 500

	// MonEntrySizeV1 is the MON_GETLIST_1 item size (info_monitor_1).
	MonEntrySizeV1 = 72
	// MonEntrySizeLegacy is the MON_GETLIST item size (info_monitor).
	MonEntrySizeLegacy = 24
	// PeerEntrySize is the REQ_PEER_LIST item size (info_peer_list).
	PeerEntrySize = 8

	// MaxMonlistEntries is the monitor-table cap: "the maximum number of
	// table entries that the monlist command returns (which we've confirmed
	// empirically) is 600".
	MaxMonlistEntries = 600
)

// EntriesPerPacket returns how many items of the given size fit in one
// response fragment.
func EntriesPerPacket(itemSize int) int {
	if itemSize <= 0 {
		panic("ntp: non-positive item size")
	}
	return MaxItemData / itemSize
}

// Mode7 is a parsed private-mode packet.
type Mode7 struct {
	Response       bool
	More           bool
	Sequence       uint8 // 0..127, fragment sequence for responses
	Implementation uint8
	Request        uint8
	Err            uint8
	NItems         uint16 // 12 bits on the wire
	ItemSize       uint16 // 12 bits on the wire
	Data           []byte
}

// AppendTo serializes the packet.
func (m *Mode7) AppendTo(b []byte) []byte {
	b0 := byte(VersionNumber<<3 | ModePrivate)
	if m.Response {
		b0 |= 0x80
	}
	if m.More {
		b0 |= 0x40
	}
	b = append(b, b0, m.Sequence&0x7f, m.Implementation, m.Request)
	b = binary.BigEndian.AppendUint16(b, uint16(m.Err&0x0f)<<12|m.NItems&0x0fff)
	b = binary.BigEndian.AppendUint16(b, m.ItemSize&0x0fff)
	return append(b, m.Data...)
}

// DecodeMode7 parses a private-mode packet.
func DecodeMode7(payload []byte) (*Mode7, error) {
	m := &Mode7{}
	if err := m.DecodeFromBytes(payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeFromBytes parses a private-mode packet into the receiver without
// allocating: Data aliases payload and the prior contents of m are
// overwritten, so one scratch Mode7 can classify an entire packet stream.
func (m *Mode7) DecodeFromBytes(payload []byte) error {
	if len(payload) < Mode7HeaderLen {
		return ErrTruncated
	}
	if payload[0]&0x07 != ModePrivate {
		return ErrBadMode
	}
	*m = Mode7{
		Response:       payload[0]&0x80 != 0,
		More:           payload[0]&0x40 != 0,
		Sequence:       payload[1] & 0x7f,
		Implementation: payload[2],
		Request:        payload[3],
	}
	en := binary.BigEndian.Uint16(payload[4:])
	m.Err = uint8(en >> 12)
	m.NItems = en & 0x0fff
	m.ItemSize = binary.BigEndian.Uint16(payload[6:]) & 0x0fff
	m.Data = payload[Mode7HeaderLen:]
	if int(m.NItems)*int(m.ItemSize) > len(m.Data) {
		return fmt.Errorf("%w: %d items of %d bytes in %d data bytes",
			ErrTruncated, m.NItems, m.ItemSize, len(m.Data))
	}
	return nil
}

// NewMonlistRequest builds the canonical 8-byte monlist probe — the packet
// attack scripts, zmap probes and the ONP scanner all send. It fits inside
// the 64-byte minimum Ethernet frame, which is why the BAF denominator is
// always 84 on-wire bytes.
func NewMonlistRequest(impl, reqCode uint8) []byte {
	m := Mode7{Implementation: impl, Request: reqCode}
	return m.AppendTo(make([]byte, 0, Mode7HeaderLen))
}

// RequestDataLen is the zero-padded data area of a full ntpdc request
// packet (ntp_request.h pads requests to a 40-byte data field).
const RequestDataLen = 40

// NewMonlistRequestPadded builds the 48-byte ntpdc-style request (8-byte
// header plus the zeroed 40-byte data area). Booters commonly reuse
// ntpdc-derived code, so their triggers carry this padding — which is why
// locally-measured UDP *payload* amplification ratios (§7, footnote 3) are
// several times smaller than the ONP probe's on-wire BAF.
func NewMonlistRequestPadded(impl, reqCode uint8) []byte {
	m := Mode7{Implementation: impl, Request: reqCode,
		Data: make([]byte, RequestDataLen)}
	return m.AppendTo(make([]byte, 0, Mode7HeaderLen+RequestDataLen))
}

// MonEntry is one monitor-table item — the paper's Table 3 row. Fields mirror
// the semantics of ntpd's info_monitor_1: who talked to this server, how
// much, in what mode, and how recently. For DDoS victims the Addr is the
// *spoofed* source, i.e. the victim.
type MonEntry struct {
	Addr        netaddr.Addr // remote address (client or spoofed victim)
	DAddr       netaddr.Addr // local destination address
	Count       uint32       // packets received from Addr
	Mode        uint8        // client's association mode (3/4 normal; 6/7 abuse)
	Version     uint8
	Port        uint16 // client source port — the victim's attacked port
	AvgInterval uint32 // average inter-arrival time, seconds
	LastSeen    uint32 // seconds since last packet from Addr
	Restr       uint32 // restriction flags
}

// appendV1 encodes the 72-byte MON_GETLIST_1 layout.
func (e *MonEntry) appendV1(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, e.AvgInterval)
	b = binary.BigEndian.AppendUint32(b, e.LastSeen)
	b = binary.BigEndian.AppendUint32(b, e.Restr)
	b = binary.BigEndian.AppendUint32(b, e.Count)
	b = binary.BigEndian.AppendUint32(b, AddrToWire(e.Addr))
	b = binary.BigEndian.AppendUint32(b, AddrToWire(e.DAddr))
	b = binary.BigEndian.AppendUint32(b, 0) // flags
	b = binary.BigEndian.AppendUint16(b, e.Port)
	b = append(b, e.Mode, e.Version)
	b = binary.BigEndian.AppendUint32(b, 0) // v6_flag
	b = binary.BigEndian.AppendUint32(b, 0) // unused
	var v6 [32]byte                         // addr6 + daddr6, unused in IPv4 entries
	return append(b, v6[:]...)
}

// appendLegacy encodes the 24-byte MON_GETLIST layout.
func (e *MonEntry) appendLegacy(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, e.AvgInterval)
	b = binary.BigEndian.AppendUint32(b, e.LastSeen)
	b = binary.BigEndian.AppendUint32(b, e.Restr)
	b = binary.BigEndian.AppendUint32(b, e.Count)
	b = binary.BigEndian.AppendUint32(b, AddrToWire(e.Addr))
	b = binary.BigEndian.AppendUint16(b, e.Port)
	return append(b, e.Mode, e.Version)
}

// decodeEntry parses one item of the given size.
func decodeEntry(data []byte, itemSize int) (MonEntry, error) {
	var e MonEntry
	if len(data) < itemSize {
		return e, ErrTruncated
	}
	switch itemSize {
	case MonEntrySizeV1:
		e.AvgInterval = binary.BigEndian.Uint32(data[0:])
		e.LastSeen = binary.BigEndian.Uint32(data[4:])
		e.Restr = binary.BigEndian.Uint32(data[8:])
		e.Count = binary.BigEndian.Uint32(data[12:])
		e.Addr = AddrFromWire(binary.BigEndian.Uint32(data[16:]))
		e.DAddr = AddrFromWire(binary.BigEndian.Uint32(data[20:]))
		e.Port = binary.BigEndian.Uint16(data[28:])
		e.Mode = data[30]
		e.Version = data[31]
	case MonEntrySizeLegacy:
		e.AvgInterval = binary.BigEndian.Uint32(data[0:])
		e.LastSeen = binary.BigEndian.Uint32(data[4:])
		e.Restr = binary.BigEndian.Uint32(data[8:])
		e.Count = binary.BigEndian.Uint32(data[12:])
		e.Addr = AddrFromWire(binary.BigEndian.Uint32(data[16:]))
		e.Port = binary.BigEndian.Uint16(data[20:])
		e.Mode = data[22]
		e.Version = data[23]
	default:
		return e, fmt.Errorf("ntp: unsupported monlist item size %d", itemSize)
	}
	return e, nil
}

// BuildMonlistResponse fragments entries into mode 7 response packets for
// the given request code (which fixes the item size). An empty table yields
// a single InfoErrNoData response, as ntpd does. Entries beyond the 600-item
// table cap must be trimmed by the caller (the daemon), not here: this
// function is pure wire formatting.
func BuildMonlistResponse(entries []MonEntry, impl, reqCode uint8) [][]byte {
	return AppendMonlistResponse(nil, entries, impl, reqCode)
}

// AppendMonlistResponse is BuildMonlistResponse reusing prev's fragment
// buffers: the returned slice aliases prev's backing storage where capacity
// allows, so a daemon re-encoding its table under attack produces no
// garbage. Fragments previously returned from the same prev become invalid.
// The wire bytes are identical to BuildMonlistResponse's.
func AppendMonlistResponse(prev [][]byte, entries []MonEntry, impl, reqCode uint8) [][]byte {
	itemSize := MonEntrySizeV1
	if reqCode == ReqMonGetList {
		itemSize = MonEntrySizeLegacy
	}
	// grab hands out prev's i-th buffer (emptied) while out grows over the
	// same backing array — safe because each index is read before appending
	// its replacement. Fresh buffers are allocated at the full-fragment
	// capacity up front so a fragment costs exactly one allocation, ever.
	fragCap := Mode7HeaderLen + EntriesPerPacket(itemSize)*itemSize
	out := prev[:0]
	grab := func(i int) []byte {
		if i < len(prev) {
			return prev[i][:0]
		}
		return make([]byte, 0, fragCap)
	}
	if len(entries) == 0 {
		m := Mode7{Response: true, Implementation: impl, Request: reqCode,
			Err: InfoErrNoData}
		return append(out, m.AppendTo(grab(0)))
	}
	perPacket := EntriesPerPacket(itemSize)
	for i := 0; i < len(entries); i += perPacket {
		end := i + perPacket
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[i:end]
		buf := grab(len(out))
		m := Mode7{
			Response:       true,
			More:           end < len(entries),
			Sequence:       uint8(i / perPacket % 128),
			Implementation: impl,
			Request:        reqCode,
			NItems:         uint16(len(chunk)),
			ItemSize:       uint16(itemSize),
		}
		// Header first with an empty Data, items appended in place: one
		// buffer per fragment, no intermediate item-data slice.
		buf = m.AppendTo(buf)
		for j := range chunk {
			if itemSize == MonEntrySizeV1 {
				buf = chunk[j].appendV1(buf)
			} else {
				buf = chunk[j].appendLegacy(buf)
			}
		}
		out = append(out, buf)
	}
	return out
}

// PeerEntry is one REQ_PEER_LIST item: an upstream association of the
// daemon. The paper notes commands like showpeers return more data than
// sent but with "typically lower amplification than monlist" — a daemon has
// a handful of peers versus up to 600 monitor entries.
type PeerEntry struct {
	Addr  netaddr.Addr
	Port  uint16
	HMode uint8 // association mode toward the peer
	Flags uint8
}

func (e *PeerEntry) append(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, AddrToWire(e.Addr))
	b = binary.BigEndian.AppendUint16(b, e.Port)
	return append(b, e.HMode, e.Flags)
}

// BuildPeerListResponse fragments peers into mode 7 response packets.
func BuildPeerListResponse(peers []PeerEntry, impl uint8) [][]byte {
	if len(peers) == 0 {
		m := Mode7{Response: true, Implementation: impl, Request: ReqPeerList,
			Err: InfoErrNoData}
		return [][]byte{m.AppendTo(nil)}
	}
	perPacket := EntriesPerPacket(PeerEntrySize)
	var out [][]byte
	for i := 0; i < len(peers); i += perPacket {
		end := i + perPacket
		if end > len(peers) {
			end = len(peers)
		}
		chunk := peers[i:end]
		data := make([]byte, 0, len(chunk)*PeerEntrySize)
		for j := range chunk {
			data = chunk[j].append(data)
		}
		m := Mode7{
			Response: true, More: end < len(peers),
			Sequence:       uint8(i / perPacket % 128),
			Implementation: impl, Request: ReqPeerList,
			NItems: uint16(len(chunk)), ItemSize: PeerEntrySize,
			Data: data,
		}
		out = append(out, m.AppendTo(nil))
	}
	return out
}

// ParsePeerListResponse decodes the peers of one response packet.
func ParsePeerListResponse(payload []byte) (*Mode7, []PeerEntry, error) {
	m, err := DecodeMode7(payload)
	if err != nil {
		return nil, nil, err
	}
	if !m.Response {
		return m, nil, fmt.Errorf("ntp: not a response packet")
	}
	if m.Err != InfoOK {
		return m, nil, nil
	}
	if m.ItemSize != PeerEntrySize {
		return m, nil, fmt.Errorf("ntp: peer list item size %d", m.ItemSize)
	}
	peers := make([]PeerEntry, 0, m.NItems)
	for i := 0; i < int(m.NItems); i++ {
		rec := m.Data[i*PeerEntrySize:]
		peers = append(peers, PeerEntry{
			Addr:  AddrFromWire(binary.BigEndian.Uint32(rec)),
			Port:  binary.BigEndian.Uint16(rec[4:]),
			HMode: rec[6],
			Flags: rec[7],
		})
	}
	return m, peers, nil
}

// ParseMonlistResponse decodes the entries of one response packet. It is the
// receiving half of BuildMonlistResponse and the primitive the core package
// uses to rebuild monitor tables "just as the NTP tools would do" (§4.2).
func ParseMonlistResponse(payload []byte) (*Mode7, []MonEntry, error) {
	m, err := DecodeMode7(payload)
	if err != nil {
		return nil, nil, err
	}
	if !m.Response {
		return m, nil, fmt.Errorf("ntp: not a response packet")
	}
	if m.Err != InfoOK {
		return m, nil, nil
	}
	entries := make([]MonEntry, 0, m.NItems)
	for i := 0; i < int(m.NItems); i++ {
		e, err := decodeEntry(m.Data[i*int(m.ItemSize):], int(m.ItemSize))
		if err != nil {
			return m, entries, err
		}
		entries = append(entries, e)
	}
	return m, entries, nil
}
