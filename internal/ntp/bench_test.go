package ntp

import (
	"testing"

	"ntpddos/internal/netaddr"
)

func benchEntries(n int) []MonEntry {
	out := make([]MonEntry, n)
	for i := range out {
		out[i] = MonEntry{Addr: netaddr.Addr(i), Count: uint32(i), Mode: 7, Port: 80}
	}
	return out
}

func BenchmarkBuildMonlistResponseFull(b *testing.B) {
	entries := benchEntries(MaxMonlistEntries)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := BuildMonlistResponse(entries, ImplXNTPD, ReqMonGetList1); len(got) != 100 {
			b.Fatal("bad fragment count")
		}
	}
}

func BenchmarkBuildMonlistResponseTypical(b *testing.B) {
	entries := benchEntries(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildMonlistResponse(entries, ImplXNTPD, ReqMonGetList1)
	}
}

func BenchmarkParseMonlistResponse(b *testing.B) {
	fragments := BuildMonlistResponse(benchEntries(MaxMonlistEntries), ImplXNTPD, ReqMonGetList1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, f := range fragments {
			if _, _, err := ParseMonlistResponse(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHeaderRoundTrip(b *testing.B) {
	h := Header{Version: 4, Mode: ModeClient, Stratum: 2}
	raw := h.AppendTo(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var g Header
		if err := g.DecodeFromBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}
