package ntp

import (
	"strings"
	"testing"
)

func TestReadVarRequestShape(t *testing.T) {
	raw := NewReadVarRequest(7)
	if len(raw) != Mode6HeaderLen {
		t.Fatalf("readvar request = %d bytes, want %d", len(raw), Mode6HeaderLen)
	}
	m, err := DecodeMode6(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Response || m.OpCode != OpReadVar || m.Sequence != 7 {
		t.Fatalf("request decoded as %+v", m)
	}
}

func TestMode6RoundTrip(t *testing.T) {
	m := Mode6{
		Response: true, Error: false, More: true, OpCode: OpReadVar,
		Sequence: 42, Status: 0x0615, AssocID: 3, Offset: 468,
		Data: []byte("version=\"x\""),
	}
	raw := m.AppendTo(nil)
	if len(raw)%4 != 0 {
		t.Fatalf("encoded control message not 32-bit padded: %d bytes", len(raw))
	}
	got, err := DecodeMode6(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Response != m.Response || got.More != m.More || got.OpCode != m.OpCode ||
		got.Sequence != m.Sequence || got.Status != m.Status ||
		got.Offset != m.Offset || string(got.Data) != string(m.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestDecodeMode6RejectsWrongMode(t *testing.T) {
	raw := []byte{0x17, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := DecodeMode6(raw); err == nil {
		t.Fatal("mode 7 packet decoded as mode 6")
	}
}

func TestDecodeMode6RejectsBadCount(t *testing.T) {
	m := Mode6{Response: true, Data: []byte("abcd")}
	raw := m.AppendTo(nil)
	raw[11] = 200 // count larger than remaining data
	if _, err := DecodeMode6(raw); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestSystemVariablesRoundTrip(t *testing.T) {
	v := SystemVariables{
		Version:   "ntpd 4.2.6p5@1.2349-o Tue Dec  1 09:12:00 UTC 2011 (1)",
		Processor: "x86_64",
		System:    "Linux/3.2.0-4-amd64",
		Stratum:   3,
		RefID:     "129.6.15.28",
	}
	got := ParseSystemVariables(v.Encode())
	if got != v {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestParseSystemVariablesQuotedCommas(t *testing.T) {
	// Version strings contain commas inside quotes; the splitter must not
	// break on them.
	s := `version="ntpd 4.2.4p8, special build", system="cisco", stratum=16, refid=INIT`
	v := ParseSystemVariables(s)
	if v.Version != "ntpd 4.2.4p8, special build" {
		t.Fatalf("version = %q", v.Version)
	}
	if v.System != "cisco" || v.Stratum != 16 {
		t.Fatalf("parsed %+v", v)
	}
}

func TestParseSystemVariablesTolerant(t *testing.T) {
	v := ParseSystemVariables("junk, =, noequals, stratum=2")
	if v.Stratum != 2 {
		t.Fatalf("stratum = %d", v.Stratum)
	}
}

func TestReadVarResponseSingleFragment(t *testing.T) {
	vars := SystemVariables{Version: "ntpd 4.2.6", System: "Unix", Stratum: 2, RefID: "GPS"}.Encode()
	packets := BuildReadVarResponse(9, vars)
	if len(packets) != 1 {
		t.Fatalf("short vars -> %d fragments", len(packets))
	}
	m, err := DecodeMode6(packets[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.More || string(m.Data) != vars || m.Sequence != 9 {
		t.Fatalf("fragment = %+v", m)
	}
}

func TestReadVarResponseFragmentsAndReassembles(t *testing.T) {
	long := strings.Repeat("peer=10.0.0.1 flash=0 ", 60) // > 468 bytes
	packets := BuildReadVarResponse(1, long)
	if len(packets) < 2 {
		t.Fatalf("long vars -> %d fragments, want >= 2", len(packets))
	}
	var frags []*Mode6
	for _, p := range packets {
		m, err := DecodeMode6(p)
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, m)
	}
	// Reverse order on purpose: reassembly must sort by offset.
	for i, j := 0, len(frags)-1; i < j; i, j = i+1, j-1 {
		frags[i], frags[j] = frags[j], frags[i]
	}
	got, err := ReassembleMode6(frags)
	if err != nil {
		t.Fatal(err)
	}
	if got != long {
		t.Fatalf("reassembly corrupted text (%d vs %d bytes)", len(got), len(long))
	}
}

func TestReassembleDetectsGap(t *testing.T) {
	long := strings.Repeat("x", 3*MaxControlData)
	packets := BuildReadVarResponse(1, long)
	var frags []*Mode6
	for i, p := range packets {
		if i == 1 {
			continue // drop the middle fragment
		}
		m, err := DecodeMode6(p)
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, m)
	}
	if _, err := ReassembleMode6(frags); err == nil {
		t.Fatal("gap not detected")
	}
}

func TestReassembleEmpty(t *testing.T) {
	if _, err := ReassembleMode6(nil); err == nil {
		t.Fatal("empty fragment list accepted")
	}
}
