package ntp

import (
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		LeapIndicator: 3, Version: 4, Mode: ModeServer,
		Stratum: 2, Poll: 6, Precision: -23,
		RootDelay: 0x1234, RootDispersion: 0x5678, ReferenceID: 0xdeadbeef,
		ReferenceTime: 0x1111111122222222, OriginTime: 0x3333333344444444,
		ReceiveTime: 0x5555555566666666, TransmitTime: 0x7777777788888888,
	}
	raw := h.AppendTo(nil)
	if len(raw) != HeaderLen {
		t.Fatalf("encoded length %d, want %d", len(raw), HeaderLen)
	}
	var got Header
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderTruncated(t *testing.T) {
	var h Header
	if err := h.DecodeFromBytes(make([]byte, 47)); err == nil {
		t.Fatal("47-byte header decoded")
	}
}

func TestModeExtraction(t *testing.T) {
	cases := []struct {
		payload []byte
		mode    int
		ok      bool
	}{
		{[]byte{0x17}, ModePrivate, true}, // the canonical monlist first byte
		{[]byte{0x16}, ModeControl, true},
		{[]byte{0x1b}, ModeClient, true},
		{[]byte{0x1c}, ModeServer, true},
		{nil, 0, false},
	}
	for _, c := range cases {
		m, ok := Mode(c.payload)
		if ok != c.ok || (ok && m != c.mode) {
			t.Fatalf("Mode(%x) = %d/%v, want %d/%v", c.payload, m, ok, c.mode, c.ok)
		}
	}
}

func TestClientServerExchange(t *testing.T) {
	now := time.Date(2014, 2, 11, 12, 0, 0, 500e6, time.UTC)
	req := NewClientRequest(now)
	if req.Mode != ModeClient {
		t.Fatalf("client mode = %d", req.Mode)
	}
	rep := NewServerReply(req, 2, now.Add(30*time.Millisecond))
	if rep.Mode != ModeServer || rep.Stratum != 2 {
		t.Fatalf("reply = %+v", rep)
	}
	if rep.OriginTime != req.TransmitTime {
		t.Fatal("reply origin must echo request transmit timestamp")
	}
	if rep.LeapIndicator != 0 {
		t.Fatal("synchronized server must not set alarm LI")
	}
}

func TestUnsynchronizedServerSetsAlarm(t *testing.T) {
	now := time.Date(2014, 2, 11, 12, 0, 0, 0, time.UTC)
	rep := NewServerReply(NewClientRequest(now), StratumUnsynchronized, now)
	if rep.LeapIndicator != 3 {
		t.Fatalf("stratum-16 server LI = %d, want 3 (alarm)", rep.LeapIndicator)
	}
}

func TestToNTPTime(t *testing.T) {
	// 1970-01-01 is exactly Era seconds after the NTP epoch.
	unix0 := time.Unix(0, 0).UTC()
	if got := ToNTPTime(unix0) >> 32; got != Era {
		t.Fatalf("NTP seconds at unix epoch = %d, want %d", got, Era)
	}
	// Half a second maps to half the fraction range.
	half := ToNTPTime(time.Unix(0, 5e8)) & 0xffffffff
	if half < 1<<31-1<<20 || half > 1<<31+1<<20 {
		t.Fatalf("half-second fraction = %d", half)
	}
}
