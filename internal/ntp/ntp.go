// Package ntp implements the Network Time Protocol wire formats the paper's
// measurement machinery depends on:
//
//   - the 48-byte mode 3/4 client/server header (RFC 5905) used by normal
//     time synchronization traffic and by our stratum analysis;
//   - the mode 7 "private" protocol of ntpdc, whose MON_GETLIST/MON_GETLIST_1
//     (monlist) request is the amplification vector the paper studies;
//   - the mode 6 "control" protocol of ntpq, whose read-variables (version)
//     request is the secondary vector of §3.3.
//
// Layouts mirror the semantics of ntp_request.h / RFC 1305 appendix B: the
// monlist response is fragmented into packets carrying at most 500 bytes of
// item data (6 entries of 72 bytes for GETLIST_1, 20 entries of 24 bytes for
// the legacy GETLIST), and mode 6 responses fragment with offset/count
// bookkeeping — these fragmentation rules are what make a 600-entry monlist
// table worth ~100 response packets to an attacker.
package ntp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ntpddos/internal/netaddr"
)

// Port is the well-known NTP UDP port.
const Port = 123

// NTP association modes.
const (
	ModeReserved   = 0
	ModeSymActive  = 1
	ModeSymPassive = 2
	ModeClient     = 3
	ModeServer     = 4
	ModeBroadcast  = 5
	ModeControl    = 6 // ntpq: version/readvar — the §3.3 vector
	ModePrivate    = 7 // ntpdc: monlist — the paper's primary vector
)

// VersionNumber is the protocol version our packets carry. ntpdc mode 7
// traffic conventionally uses version 2 regardless of the daemon version.
const VersionNumber = 2

// StratumUnsynchronized is the stratum value (16) that marks a server as not
// synchronized to any time source — §3.3 finds a comical 19% of the global
// NTP population in this state.
const StratumUnsynchronized = 16

// Era is the offset between the NTP timestamp epoch (1900) and Unix (1970).
const Era = 2208988800

// Errors shared by the decoders.
var (
	ErrTruncated = errors.New("ntp: truncated packet")
	ErrBadMode   = errors.New("ntp: unexpected mode")
)

// Mode extracts the association mode from the first byte of any NTP packet,
// which is how a traffic classifier (our darknet, the ISP taps) bins NTP
// packets without deeper parsing.
func Mode(payload []byte) (int, bool) {
	if len(payload) == 0 {
		return 0, false
	}
	return int(payload[0] & 0x07), true
}

// Header is the 48-byte mode 3/4/5 NTP header of RFC 5905.
type Header struct {
	LeapIndicator  uint8 // 2 bits
	Version        uint8 // 3 bits
	Mode           uint8 // 3 bits
	Stratum        uint8
	Poll           int8
	Precision      int8
	RootDelay      uint32
	RootDispersion uint32
	ReferenceID    uint32
	ReferenceTime  uint64
	OriginTime     uint64
	ReceiveTime    uint64
	TransmitTime   uint64
}

// HeaderLen is the encoded size of Header.
const HeaderLen = 48

// ToNTPTime converts a wall-clock instant to a 64-bit NTP timestamp.
func ToNTPTime(t time.Time) uint64 {
	secs := uint64(t.Unix() + Era)
	frac := uint64(t.Nanosecond()) << 32 / 1e9
	return secs<<32 | frac
}

// AppendTo serializes the header.
func (h *Header) AppendTo(b []byte) []byte {
	b = append(b, h.LeapIndicator<<6|h.Version<<3|h.Mode,
		h.Stratum, byte(h.Poll), byte(h.Precision))
	b = binary.BigEndian.AppendUint32(b, h.RootDelay)
	b = binary.BigEndian.AppendUint32(b, h.RootDispersion)
	b = binary.BigEndian.AppendUint32(b, h.ReferenceID)
	b = binary.BigEndian.AppendUint64(b, h.ReferenceTime)
	b = binary.BigEndian.AppendUint64(b, h.OriginTime)
	b = binary.BigEndian.AppendUint64(b, h.ReceiveTime)
	b = binary.BigEndian.AppendUint64(b, h.TransmitTime)
	return b
}

// DecodeFromBytes parses a 48-byte header.
func (h *Header) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderLen {
		return ErrTruncated
	}
	h.LeapIndicator = data[0] >> 6
	h.Version = data[0] >> 3 & 0x07
	h.Mode = data[0] & 0x07
	h.Stratum = data[1]
	h.Poll = int8(data[2])
	h.Precision = int8(data[3])
	h.RootDelay = binary.BigEndian.Uint32(data[4:])
	h.RootDispersion = binary.BigEndian.Uint32(data[8:])
	h.ReferenceID = binary.BigEndian.Uint32(data[12:])
	h.ReferenceTime = binary.BigEndian.Uint64(data[16:])
	h.OriginTime = binary.BigEndian.Uint64(data[24:])
	h.ReceiveTime = binary.BigEndian.Uint64(data[32:])
	h.TransmitTime = binary.BigEndian.Uint64(data[40:])
	return nil
}

// NewClientRequest builds a mode 3 client request with the transmit
// timestamp set from now.
func NewClientRequest(now time.Time) *Header {
	h := &Header{}
	h.SetClientRequest(now)
	return h
}

// SetClientRequest overwrites h with a mode 3 client request — the scratch
// counterpart of NewClientRequest for hot paths that reuse one Header.
func (h *Header) SetClientRequest(now time.Time) {
	*h = Header{Version: 4, Mode: ModeClient, Poll: 6, Precision: -20,
		TransmitTime: ToNTPTime(now)}
}

// NewServerReply builds the mode 4 reply a server with the given stratum
// sends to req.
func NewServerReply(req *Header, stratum uint8, now time.Time) *Header {
	h := &Header{}
	h.SetServerReply(req, stratum, now)
	return h
}

// SetServerReply overwrites h with the mode 4 reply to req — the scratch
// counterpart of NewServerReply. req may alias h.
func (h *Header) SetServerReply(req *Header, stratum uint8, now time.Time) {
	li := uint8(0)
	if stratum == StratumUnsynchronized {
		li = 3 // alarm condition: clock not synchronized
	}
	*h = Header{
		LeapIndicator: li,
		Version:       req.Version,
		Mode:          ModeServer,
		Stratum:       stratum,
		Poll:          req.Poll,
		Precision:     -20,
		OriginTime:    req.TransmitTime,
		ReceiveTime:   ToNTPTime(now),
		TransmitTime:  ToNTPTime(now),
	}
}

// sanity check that decoding mirrors encoding for a mode byte.
var _ = fmt.Sprintf

// AddrToWire converts a netaddr.Addr to the network byte order uint32 used
// inside monlist entries.
func AddrToWire(a netaddr.Addr) uint32 { return uint32(a) }

// AddrFromWire converts a wire uint32 back to a netaddr.Addr.
func AddrFromWire(u uint32) netaddr.Addr { return netaddr.Addr(u) }
