package ntp

import (
	"testing"
	"time"
)

// Package-level sinks keep the compiler from optimizing the measured work
// away.
var (
	allocSinkBuf []byte
	allocSinkU64 uint64
)

// TestPacketCodecZeroAlloc is the regression wall for the wire codecs on the
// simulator's hot paths: mode 3/4 header encode+decode, mode 7 (monlist)
// encode+decode, and mode 6 (readvar) decode must not allocate when given a
// buffer with capacity / a scratch struct.
func TestPacketCodecZeroAlloc(t *testing.T) {
	now := time.Unix(1385856000, 123456789) // 2013-12-01, mid-campaign
	buf := make([]byte, 0, 1024)

	t.Run("mode3-encode", func(t *testing.T) {
		var h Header
		if n := testing.AllocsPerRun(100, func() {
			h.SetClientRequest(now)
			allocSinkBuf = h.AppendTo(buf[:0])
		}); n != 0 {
			t.Errorf("mode 3 encode: %.1f allocs/op, want 0", n)
		}
	})

	t.Run("mode4-encode", func(t *testing.T) {
		var req, rep Header
		req.SetClientRequest(now)
		if n := testing.AllocsPerRun(100, func() {
			rep.SetServerReply(&req, 2, now)
			allocSinkBuf = rep.AppendTo(buf[:0])
		}); n != 0 {
			t.Errorf("mode 4 encode: %.1f allocs/op, want 0", n)
		}
	})

	t.Run("mode34-decode", func(t *testing.T) {
		wire := NewServerReply(NewClientRequest(now), 2, now).AppendTo(nil)
		var h Header
		if n := testing.AllocsPerRun(100, func() {
			if err := h.DecodeFromBytes(wire); err != nil {
				t.Fatal(err)
			}
			allocSinkU64 = h.TransmitTime
		}); n != 0 {
			t.Errorf("mode 3/4 decode: %.1f allocs/op, want 0", n)
		}
	})

	t.Run("mode7-encode", func(t *testing.T) {
		entry := MonEntry{Addr: 0x0a000001, DAddr: 0x0a000002, Count: 42,
			Mode: ModePrivate, Version: 2, Port: 123}
		data := entry.appendV1(make([]byte, 0, MonEntrySizeV1))
		m := Mode7{Response: true, Implementation: ImplXNTPD, Request: ReqMonGetList1,
			NItems: 1, ItemSize: MonEntrySizeV1, Data: data}
		if n := testing.AllocsPerRun(100, func() {
			allocSinkBuf = m.AppendTo(buf[:0])
		}); n != 0 {
			t.Errorf("mode 7 encode: %.1f allocs/op, want 0", n)
		}
	})

	t.Run("mode7-decode", func(t *testing.T) {
		wire := NewMonlistRequestPadded(ImplXNTPD, ReqMonGetList1)
		var m Mode7
		if n := testing.AllocsPerRun(100, func() {
			if err := m.DecodeFromBytes(wire); err != nil {
				t.Fatal(err)
			}
			allocSinkU64 = uint64(m.Request)
		}); n != 0 {
			t.Errorf("mode 7 decode: %.1f allocs/op, want 0", n)
		}
	})

	t.Run("mode6-decode", func(t *testing.T) {
		wire := NewReadVarRequest(7)
		var m Mode6
		if n := testing.AllocsPerRun(100, func() {
			if err := m.DecodeFromBytes(wire); err != nil {
				t.Fatal(err)
			}
			allocSinkU64 = uint64(m.Sequence)
		}); n != 0 {
			t.Errorf("mode 6 decode: %.1f allocs/op, want 0", n)
		}
	})
}
