// Package netaddr implements compact IPv4 address and prefix types for the
// simulated Internet.
//
// Addresses are uint32 values, prefixes are (base, bits) pairs, and sets are
// sorted range lists — the representations a measurement system needs to hold
// millions of amplifier and victim addresses without pointer overhead.
package netaddr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not a dotted quad", s)
	}
	var a uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: %q is not a dotted quad", s)
		}
		a = a<<8 | uint32(n)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error, for constants in tests
// and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Octets returns the four octets most-significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// Slash24 returns the address's /24 network base — the aggregation level of
// the paper's Figure 3 and Table 1 "Blocks are /24" analyses.
func (a Addr) Slash24() Prefix { return Prefix{Base: a &^ 0xff, Bits: 24} }

// Prefix is an IPv4 CIDR block. Base must have its host bits zero; the
// constructors enforce this.
type Prefix struct {
	Base Addr
	Bits int
}

// NewPrefix returns the prefix containing addr with the given mask length,
// zeroing host bits. Bits outside [0, 32] panics.
func NewPrefix(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netaddr: invalid prefix length %d", bits))
	}
	return Prefix{Base: addr & maskFor(bits), Bits: bits}
}

func maskFor(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// ParsePrefix parses "a.b.c.d/n" CIDR notation. Host bits set in the address
// part are an error, matching the strictness of net/netip.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q has no /bits", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: %q has invalid prefix length", s)
	}
	p := Prefix{Base: a, Bits: bits}
	if a&^maskFor(bits) != 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Base, p.Bits) }

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&maskFor(p.Bits) == p.Base }

// NumAddrs returns the number of addresses the prefix covers.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// First returns the first address of the prefix.
func (p Prefix) First() Addr { return p.Base }

// Last returns the last address of the prefix.
func (p Prefix) Last() Addr { return p.Base + Addr(p.NumAddrs()-1) }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Base) || q.Contains(p.Base)
}

// Compare orders prefixes by base address, then by length (shorter first).
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Base < q.Base:
		return -1
	case p.Base > q.Base:
		return 1
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return 0
}

// Nth returns the i'th address inside the prefix. Out-of-range panics.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("netaddr: index %d out of range for %s", i, p))
	}
	return p.Base + Addr(i)
}

// Subdivide splits the prefix into sub-prefixes of the given longer length.
// It panics if bits is shorter than the prefix's own length.
func (p Prefix) Subdivide(bits int) []Prefix {
	if bits < p.Bits || bits > 32 {
		panic(fmt.Sprintf("netaddr: cannot subdivide %s into /%d", p, bits))
	}
	n := 1 << (bits - p.Bits)
	out := make([]Prefix, n)
	step := Addr(1) << (32 - bits)
	for i := 0; i < n; i++ {
		out[i] = Prefix{Base: p.Base + Addr(i)*step, Bits: bits}
	}
	return out
}

// Set is a mutable set of addresses, stored as a map for O(1) membership.
// For the million-entry amplifier pools the 8-byte keys keep this compact.
type Set map[Addr]struct{}

// NewSet returns an empty set with capacity hint n.
func NewSet(n int) Set { return make(Set, n) }

// Add inserts addr. The membership probe first is deliberate: taps add the
// same few addresses millions of times, and a map read on the hit path is
// far cheaper than an unconditional assign.
func (s Set) Add(a Addr) {
	if _, ok := s[a]; !ok {
		s[a] = struct{}{}
	}
}

// Has reports membership.
func (s Set) Has(a Addr) bool { _, ok := s[a]; return ok }

// Remove deletes addr if present.
func (s Set) Remove(a Addr) { delete(s, a) }

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// AddAll inserts every element of t.
func (s Set) AddAll(t Set) {
	for a := range t {
		s[a] = struct{}{}
	}
}

// IntersectCount returns |s ∩ t| without materialising the intersection —
// the operation behind the paper's §6.2 monlist×DNS pool overlap.
func (s Set) IntersectCount(t Set) int {
	small, large := s, t
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for a := range small {
		if large.Has(a) {
			n++
		}
	}
	return n
}

// Sorted returns the elements in ascending order.
func (s Set) Sorted() []Addr {
	out := make([]Addr, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountDistinct24s returns the number of distinct /24 networks covered by
// the set — the Figure 3 "/24 nets" aggregation.
func (s Set) CountDistinct24s() int {
	seen := make(map[Addr]struct{}, len(s)/4+1)
	for a := range s {
		seen[a&^0xff] = struct{}{}
	}
	return len(seen)
}
