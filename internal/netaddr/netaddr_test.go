package netaddr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.168.1.1", 0xc0a80101, true},
		{"10.0.0.1", 0x0a000001, true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"01.2.3.4", 0, false}, // leading zero rejected, like net/netip
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseAddr(%q) = %v, want %v", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOctets(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	if o := a.Octets(); o != [4]byte{1, 2, 3, 4} {
		t.Fatalf("Octets = %v", o)
	}
}

func TestSlash24(t *testing.T) {
	a := MustParseAddr("198.51.100.77")
	want := MustParsePrefix("198.51.100.0/24")
	if a.Slash24() != want {
		t.Fatalf("Slash24 = %v, want %v", a.Slash24(), want)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.32.0.0/11")
	if p.Bits != 11 || p.Base != MustParseAddr("10.32.0.0") {
		t.Fatalf("bad parse: %+v", p)
	}
	if _, err := ParsePrefix("10.32.0.1/11"); err == nil {
		t.Fatal("host bits set should be rejected")
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Fatal("/33 should be rejected")
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Fatal("missing /bits should be rejected")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if !p.Contains(MustParseAddr("192.0.2.255")) || !p.Contains(MustParseAddr("192.0.2.0")) {
		t.Fatal("prefix must contain its own range ends")
	}
	if p.Contains(MustParseAddr("192.0.3.0")) {
		t.Fatal("prefix contains address outside range")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Fatal("/0 must contain everything")
	}
}

func TestPrefixFirstLastNum(t *testing.T) {
	p := MustParsePrefix("203.0.113.0/24")
	if p.NumAddrs() != 256 {
		t.Fatalf("NumAddrs = %d", p.NumAddrs())
	}
	if p.First() != MustParseAddr("203.0.113.0") || p.Last() != MustParseAddr("203.0.113.255") {
		t.Fatalf("First/Last = %v/%v", p.First(), p.Last())
	}
	if p.Nth(255) != p.Last() {
		t.Fatal("Nth(255) != Last")
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range did not panic")
		}
	}()
	MustParsePrefix("10.0.0.0/24").Nth(256)
}

func TestSubdivide(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/22")
	subs := p.Subdivide(24)
	if len(subs) != 4 {
		t.Fatalf("got %d /24s, want 4", len(subs))
	}
	for i, s := range subs {
		if s.Bits != 24 {
			t.Fatalf("sub %d has bits %d", i, s.Bits)
		}
		if !p.Contains(s.Base) {
			t.Fatalf("sub %v escapes parent %v", s, p)
		}
	}
	if subs[3].Base != MustParseAddr("10.0.3.0") {
		t.Fatalf("last sub = %v", subs[3])
	}
}

func TestSubdivideProperty(t *testing.T) {
	// Every address of the parent appears in exactly one subdivision.
	f := func(seed uint32) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 1))
		bits := 8 + r.IntN(16)
		p := NewPrefix(Addr(r.Uint32()), bits)
		subBits := bits + r.IntN(4)
		subs := p.Subdivide(subBits)
		a := p.Nth(uint64(r.Int64N(int64(p.NumAddrs()))))
		hits := 0
		for _, s := range subs {
			if s.Contains(a) {
				hits++
			}
		}
		return hits == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes must not overlap")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Fatal("shorter prefix must sort first at same base")
	}
	if a.Compare(c) >= 0 || a.Compare(a) != 0 {
		t.Fatal("base ordering broken")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(0)
	a := MustParseAddr("192.0.2.1")
	if s.Has(a) || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(a)
	s.Add(a)
	if !s.Has(a) || s.Len() != 1 {
		t.Fatal("add/idempotence broken")
	}
	s.Remove(a)
	if s.Has(a) || s.Len() != 0 {
		t.Fatal("remove broken")
	}
}

func TestSetIntersectCount(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	for i := 0; i < 100; i++ {
		a.Add(Addr(i))
	}
	for i := 50; i < 200; i++ {
		b.Add(Addr(i))
	}
	if got := a.IntersectCount(b); got != 50 {
		t.Fatalf("IntersectCount = %d, want 50", got)
	}
	if got := b.IntersectCount(a); got != 50 {
		t.Fatal("IntersectCount not symmetric")
	}
}

func TestSetSortedAndDistinct24s(t *testing.T) {
	s := NewSet(0)
	s.Add(MustParseAddr("10.0.0.9"))
	s.Add(MustParseAddr("10.0.0.1"))
	s.Add(MustParseAddr("10.0.1.1"))
	sorted := s.Sorted()
	if len(sorted) != 3 || sorted[0] != MustParseAddr("10.0.0.1") || sorted[2] != MustParseAddr("10.0.1.1") {
		t.Fatalf("Sorted = %v", sorted)
	}
	if n := s.CountDistinct24s(); n != 2 {
		t.Fatalf("CountDistinct24s = %d, want 2", n)
	}
}

func TestSetAddAll(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	a.Add(1)
	b.Add(2)
	b.Add(1)
	a.AddAll(b)
	if a.Len() != 2 || !a.Has(2) {
		t.Fatal("AddAll broken")
	}
}

func TestNewPrefixMasksHostBits(t *testing.T) {
	p := NewPrefix(MustParseAddr("10.1.2.3"), 16)
	if p.Base != MustParseAddr("10.1.0.0") {
		t.Fatalf("NewPrefix did not mask host bits: %v", p)
	}
}
