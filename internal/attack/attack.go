// Package attack models the ecosystem of §5.2: booter services driving
// fleets of compromised Windows hosts ("bots") that send spoofed-source
// monlist triggers to harvested amplifiers. The package reproduces the
// attacker-side signals the paper measures — the gamer-heavy attacked-port
// mix (Table 4), the Windows TTL fingerprint of trigger traffic vs. the
// Linux fingerprint of reconnaissance scanning (§7.2), amplifier priming
// (§3.2), coordination of many amplifiers on one victim (§7.2), and the
// diurnal pattern of Figure 13.
package attack

import (
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/reflector"
	"ntpddos/internal/rng"
)

// Metrics is the attacker-side live instrumentation: campaigns launched,
// Rep-weighted triggers emitted/blocked, priming packets. Writes are atomic
// and never consume randomness, so metrics-on and metrics-off runs launch
// identical campaigns.
type Metrics struct {
	Campaigns       *metrics.Counter
	TriggersSent    *metrics.Counter
	TriggersBlocked *metrics.Counter
	PrimePackets    *metrics.Counter
}

// NewMetrics registers the attack family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Campaigns: r.NewCounter("ntpsim_attack_campaigns_total",
			"Booter campaigns launched."),
		TriggersSent: r.NewCounter("ntpsim_attack_triggers_sent_total",
			"Rep-weighted spoofed monlist triggers accepted by the fabric."),
		TriggersBlocked: r.NewCounter("ntpsim_attack_triggers_blocked_total",
			"Rep-weighted triggers dropped by BCP38 at the bot's network."),
		PrimePackets: r.NewCounter("ntpsim_attack_prime_packets_total",
			"Spoofed mode-3 priming packets sent to warm monitor tables."),
	}
}

// PortChoice is one row of the attacked-port catalogue.
type PortChoice struct {
	Port   uint16
	Weight float64
	Game   bool
	Use    string
}

// PortCatalog reproduces Table 4's attacked-port distribution, plus a
// "tail" share spread over ephemeral ports. These weights are a population
// property of 2014's attacker preferences, used directly.
var PortCatalog = []PortChoice{
	{80, 0.362, true, "None. via TCP:HTTP (g)"},
	{123, 0.238, false, "NTP server port"},
	{3074, 0.079, true, "XBox Live (g)"},
	{50557, 0.062, false, "Unknown"},
	{53, 0.025, true, "DNS; XBox Live (g)"},
	{25565, 0.021, true, "Minecraft (g)"},
	{19, 0.012, false, "chargen protocol"},
	{22, 0.011, false, "None. via TCP:SSH"},
	{5223, 0.007, true, "Playstation (g); other"},
	{27015, 0.006, true, "Steam/e.g. Half-Life (g)"},
	{43594, 0.004, true, "Runescape (g)"},
	{9987, 0.004, true, "TeamSpeak3 (g)"},
	{8080, 0.004, false, "None. via TCP:HTTP alt."},
	{6005, 0.003, false, "Unknown"},
	{7777, 0.003, true, "Several games (g); other"},
	{2052, 0.003, true, "Star Wars (g)"},
	{1025, 0.002, false, "Win RPC; other"},
	{1026, 0.002, false, "Win RPC; other"},
	{88, 0.002, true, "XBox Live (g)"},
	{90, 0.002, false, "DNSIX (military)"},
}

// tailWeight is the probability mass outside the top 20 ports.
const tailWeight = 0.15

var portTable = func() *rng.WeightedTable {
	w := make([]float64, len(PortCatalog)+1)
	for i, p := range PortCatalog {
		w[i] = p.Weight
	}
	w[len(PortCatalog)] = tailWeight
	return rng.NewWeightedTable(w)
}()

// SamplePort draws a victim port from the Table 4 distribution. Tail draws
// return a high ephemeral port.
func SamplePort(src *rng.Source) uint16 {
	i := portTable.Draw(src)
	if i < len(PortCatalog) {
		return PortCatalog[i].Port
	}
	return uint16(10000 + src.IntN(50000))
}

// IsGamePort reports whether a port is gaming-associated per Table 4.
func IsGamePort(port uint16) bool {
	for _, p := range PortCatalog {
		if p.Port == port {
			return p.Game
		}
	}
	return false
}

// DiurnalWeight returns the relative likelihood of attack activity at the
// given UTC hour. The paper observes "a diurnal pattern of traffic destined
// to the victims perhaps suggesting a manual element": activity peaks in
// evening hours and troughs early morning.
func DiurnalWeight(hour int) float64 {
	// Trough at 06:00, peak at 20:00 UTC (US/EU evening overlap).
	shifted := (hour + 24 - 6) % 24
	return 0.3 + 0.7*float64(shifted)/23
}

// SampleStartHour draws a campaign start hour from the diurnal profile.
func SampleStartHour(src *rng.Source) int {
	w := make([]float64, 24)
	for h := range w {
		w[h] = DiurnalWeight(h)
	}
	return src.Weighted(w)
}

// Campaign is one attack against one victim IP.
type Campaign struct {
	Victim   netaddr.Addr
	Port     uint16
	Start    time.Time
	Duration time.Duration
	// Vector selects the amplification protocol (see internal/reflector).
	// The zero value is NTP mode-7 monlist — the paper's vector — so
	// pre-abstraction campaign literals behave exactly as before.
	Vector reflector.Vector
	// TriggerRate is spoofed trigger packets per second sent to EACH
	// amplifier in the set.
	TriggerRate float64
	// Amplifiers used, coordinated on the same victim.
	Amplifiers []netaddr.Addr
	// PrimeSources, if positive, first warms each amplifier's monitor table
	// with that many synthetic clients so monlist replies are maximal.
	PrimeSources int
	// Interval overrides the engine's trigger batching interval for this
	// campaign (long campaigns coarsen batching to bound event counts).
	Interval time.Duration
}

// Engine launches campaigns on the fabric.
type Engine struct {
	Network *netsim.Network
	Source  *rng.Source
	// Bots are the spoofing-capable trigger nodes (Windows fingerprint).
	Bots []netaddr.Addr
	// TriggerInterval is the batching granularity: one real datagram with
	// Rep = TriggerRate × interval is emitted per amplifier per interval.
	TriggerInterval time.Duration
	// OnLaunch, if set, is called once per launched campaign (telemetry).
	OnLaunch func(Campaign)

	// Reflectors are extra always-responsive amplifiers (honeypot sensors)
	// that scanners harvested into booter lists. Each campaign includes each
	// reflector independently with probability ReflectorProb, drawn from
	// ReflectorSrc — a stream separate from Source so deploying a honeypot
	// fleet never perturbs the campaign schedule itself.
	Reflectors    []netaddr.Addr
	ReflectorProb float64
	ReflectorSrc  *rng.Source

	// TriggersSent counts Rep-weighted spoofed packets emitted.
	TriggersSent int64
	// TriggersBlocked counts triggers dropped by BCP38 at bot networks.
	TriggersBlocked int64

	// Metrics, when non-nil, attaches live instrumentation.
	Metrics *Metrics
}

// NewEngine builds an engine with a 30-second trigger batching interval.
func NewEngine(nw *netsim.Network, src *rng.Source, bots []netaddr.Addr) *Engine {
	return &Engine{Network: nw, Source: src, Bots: bots, TriggerInterval: 30 * time.Second}
}

// Launch schedules a campaign. The campaign's vector resolves to a
// reflector profile that supplies the trigger payload and service port;
// triggers are spread over the campaign duration in TriggerInterval
// batches; each batch sends one Rep-weighted spoofed datagram per
// amplifier from a random bot.
func (e *Engine) Launch(c Campaign) {
	if len(c.Amplifiers) == 0 || len(e.Bots) == 0 {
		return
	}
	prof := reflector.MustLookup(c.Vector)
	if c.Port == 0 {
		c.Port = SamplePort(e.Source)
	}
	sched := e.Network.Scheduler()

	// Priming runs against the attacker-supplied list only (and before
	// reflector injection, so its Source draw sequence is independent of
	// whether a honeypot fleet is deployed): honeypot tables are synthetic
	// bait and need no warming. Stateless vectors have nothing to warm.
	if c.PrimeSources > 0 && prof.Stateful {
		e.prime(c)
	}

	if len(e.Reflectors) > 0 && e.ReflectorProb > 0 && e.ReflectorSrc != nil {
		var picked []netaddr.Addr
		for _, r := range e.Reflectors {
			if e.ReflectorSrc.Bool(e.ReflectorProb) {
				picked = append(picked, r)
			}
		}
		if len(picked) > 0 {
			// A fresh merged slice: callers share amplifier arrays across
			// campaigns, so appending in place would leak sensors between
			// launches.
			merged := make([]netaddr.Addr, 0, len(c.Amplifiers)+len(picked))
			merged = append(merged, c.Amplifiers...)
			merged = append(merged, picked...)
			c.Amplifiers = merged
		}
	}

	interval := e.TriggerInterval
	if c.Interval > 0 {
		interval = c.Interval
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if c.Duration < interval {
		interval = c.Duration
	}
	batches := int(c.Duration / interval)
	if batches < 1 {
		batches = 1
	}
	perBatch := int64(c.TriggerRate * interval.Seconds())
	if perBatch < 1 {
		perBatch = 1
	}
	// Pre-draw bot choices so scheduling order never perturbs other streams.
	botIdx := make([]int, batches)
	for i := range botIdx {
		botIdx[i] = e.Source.IntN(len(e.Bots))
	}
	for b := 0; b < batches; b++ {
		at := c.Start.Add(time.Duration(b) * interval)
		bot := e.Bots[botIdx[b]]
		amps := c.Amplifiers
		victim, port := c.Victim, c.Port
		rep := perBatch
		sched.At(at, func(now time.Time) {
			for _, amp := range amps {
				dg := newSpoofedTrigger(victim, port, amp, prof, rep)
				if e.Network.SendFrom(bot, dg) {
					e.TriggersSent += rep
					if e.Metrics != nil {
						e.Metrics.TriggersSent.Add(rep)
					}
				} else {
					e.TriggersBlocked += rep
					if e.Metrics != nil {
						e.Metrics.TriggersBlocked.Add(rep)
					}
				}
			}
		})
	}
	if e.Metrics != nil {
		e.Metrics.Campaigns.Inc()
	}
	if e.OnLaunch != nil {
		e.OnLaunch(c)
	}
}

// prime warms each amplifier's monitor table shortly before the attack:
// the attacker "makes connections from various IPs in order to make sure
// that the monlist table returns the maximum number of entries" (§3.2).
func (e *Engine) prime(c Campaign) {
	sched := e.Network.Scheduler()
	lead := 10 * time.Minute
	start := c.Start.Add(-lead)
	if start.Before(e.Network.Now()) {
		start = e.Network.Now()
	}
	for _, amp := range c.Amplifiers {
		amp := amp
		base := netaddr.Addr(e.Source.Uint32())
		n := c.PrimeSources
		sched.At(start, func(now time.Time) {
			bot := e.Bots[int(uint32(base))%len(e.Bots)]
			req := ntp.NewClientRequest(now).AppendTo(nil)
			for i := 0; i < n; i++ {
				// Spoofed mode-3 clients: each distinct source becomes a
				// monitor-table entry.
				src := base + netaddr.Addr(i)
				e.Network.SendSpoofed(bot, src, 1024+uint16(i%60000), amp, ntp.Port,
					netsim.TTLWindows, req)
			}
			if e.Metrics != nil {
				e.Metrics.PrimePackets.Add(int64(n))
			}
		})
	}
}

// newSpoofedTrigger builds the spoofed trigger request bound for amp that
// claims to come from victim:port, using the profile's payload and service
// port. TTL is the Windows default — bots.
func newSpoofedTrigger(victim netaddr.Addr, port uint16, amp netaddr.Addr, prof *reflector.Profile, rep int64) *packet.Datagram {
	dg := packet.NewDatagram(victim, port, amp, prof.Port, prof.Request)
	dg.IP.TTL = netsim.TTLWindows
	dg.Rep = rep
	return dg
}
