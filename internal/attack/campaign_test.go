package attack

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/reflector"
	"ntpddos/internal/rng"
)

// pulseHarness builds an engine with recorded launches and one reflector
// population per vector.
func pulseHarness(t *testing.T) (*Engine, *[]Campaign, AmplifierSets) {
	t.Helper()
	nw, _ := harness()
	e := NewEngine(nw, rng.New(7), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	launched := &[]Campaign{}
	e.OnLaunch = func(c Campaign) { *launched = append(*launched, c) }
	amps := AmplifierSets{
		reflector.Monlist: {netaddr.MustParseAddr("10.0.0.10")},
		reflector.DNSANY:  {netaddr.MustParseAddr("10.0.1.10")},
		reflector.SSDP:    {netaddr.MustParseAddr("10.0.2.10")},
	}
	return e, launched, amps
}

func TestPulseWaveRotation(t *testing.T) {
	e, launched, amps := pulseHarness(t)
	victims := []netaddr.Addr{
		netaddr.MustParseAddr("203.0.113.1"),
		netaddr.MustParseAddr("203.0.113.2"),
		netaddr.MustParseAddr("203.0.113.3"),
	}
	start := e.Network.Now().Add(time.Hour)
	n := e.LaunchPulseWave(PulseWave{
		Victims: victims, Port: 80,
		Vectors:    []reflector.Vector{reflector.Monlist, reflector.DNSANY},
		Amplifiers: amps,
		Start:      start, Period: 5 * time.Minute, BurstLen: 30 * time.Second,
		Bursts: 6, TriggerRate: 10, PrimeSources: 20,
	})
	if n != 6 || len(*launched) != 6 {
		t.Fatalf("launched %d/%d bursts, want 6", n, len(*launched))
	}
	for i, c := range *launched {
		if c.Victim != victims[i%3] {
			t.Errorf("burst %d victim %s, want %s", i, c.Victim, victims[i%3])
		}
		wantVec := []reflector.Vector{reflector.Monlist, reflector.DNSANY}[i%2]
		if c.Vector != wantVec {
			t.Errorf("burst %d vector %q, want %q", i, c.Vector, wantVec)
		}
		if want := start.Add(time.Duration(i) * 5 * time.Minute); !c.Start.Equal(want) {
			t.Errorf("burst %d start %v, want %v", i, c.Start, want)
		}
		if c.Duration != 30*time.Second {
			t.Errorf("burst %d duration %v", i, c.Duration)
		}
	}
	// Priming requested once per vector, on its first burst only; Launch
	// itself then drops it for the stateless DNS profile.
	var primes []int
	for _, c := range *launched {
		primes = append(primes, c.PrimeSources)
	}
	if primes[0] != 20 || primes[1] != 20 {
		t.Fatalf("first bursts not primed: %v", primes)
	}
	for i := 2; i < 6; i++ {
		if primes[i] != 0 {
			t.Fatalf("repeat burst %d re-primed: %v", i, primes)
		}
	}
}

func TestPulseWaveSkipsVectorsWithoutAmplifiers(t *testing.T) {
	e, launched, amps := pulseHarness(t)
	delete(amps, reflector.DNSANY)
	n := e.LaunchPulseWave(PulseWave{
		Victims:    []netaddr.Addr{netaddr.MustParseAddr("203.0.113.1")},
		Port:       80,
		Vectors:    []reflector.Vector{reflector.Monlist, reflector.DNSANY},
		Amplifiers: amps,
		Start:      e.Network.Now(), Period: time.Minute, BurstLen: 10 * time.Second,
		Bursts: 4, TriggerRate: 5,
	})
	if n != 2 || len(*launched) != 2 {
		t.Fatalf("launched %d bursts, want 2 (monlist only)", n)
	}
	for _, c := range *launched {
		if c.Vector != reflector.Monlist {
			t.Fatalf("unexpected vector %q", c.Vector)
		}
	}
}

func TestCarpetBombSweepsPrefix(t *testing.T) {
	e, launched, amps := pulseHarness(t)
	victim := netaddr.MustParseAddr("203.0.113.77")
	start := e.Network.Now().Add(time.Hour)
	n := e.LaunchCarpetBomb(CarpetBomb{
		Prefix: victim.Slash24(), Port: 80, Vector: reflector.SSDP,
		Amplifiers: amps[reflector.SSDP],
		Start:      start, SliceLen: 10 * time.Second, TriggerRate: 8,
		MaxTargets: 32,
	})
	if n != 32 || len(*launched) != 32 {
		t.Fatalf("launched %d slices, want 32", n)
	}
	block := victim.Slash24()
	for i, c := range *launched {
		if c.Victim != block.Nth(uint64(i)) {
			t.Errorf("slice %d victim %s, want %s", i, c.Victim, block.Nth(uint64(i)))
		}
		if want := start.Add(time.Duration(i) * 10 * time.Second); !c.Start.Equal(want) {
			t.Errorf("slice %d start %v, want %v", i, c.Start, want)
		}
		if c.Vector != reflector.SSDP {
			t.Errorf("slice %d vector %q", i, c.Vector)
		}
	}
	// Uncapped sweep covers the whole /24.
	*launched = (*launched)[:0]
	if n := e.LaunchCarpetBomb(CarpetBomb{
		Prefix: block, Port: 80, Amplifiers: amps[reflector.Monlist],
		Start: start, SliceLen: time.Second, TriggerRate: 8,
	}); n != 256 {
		t.Fatalf("uncapped sweep launched %d, want 256", n)
	}
}

func TestMultiVectorBlend(t *testing.T) {
	e, launched, amps := pulseHarness(t)
	victim := netaddr.MustParseAddr("203.0.113.9")
	start := e.Network.Now().Add(time.Hour)
	n := e.LaunchMultiVector(MultiVector{
		Victim: victim, Port: 25565,
		Vectors:    []reflector.Vector{reflector.Monlist, reflector.DNSANY, reflector.SSDP},
		Amplifiers: amps,
		Start:      start, Duration: 5 * time.Minute, TriggerRate: 20,
		PrimeSources: 10,
	})
	if n != 3 || len(*launched) != 3 {
		t.Fatalf("launched %d campaigns, want 3", n)
	}
	seen := map[reflector.Vector]bool{}
	for _, c := range *launched {
		seen[c.Vector] = true
		if c.Victim != victim || !c.Start.Equal(start) || c.Duration != 5*time.Minute {
			t.Fatalf("blend campaign drifted: %+v", c)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("vectors launched: %v", seen)
	}
}

// TestLaunchVectorPayloads pins that a campaign's trigger datagrams carry
// the resolved profile's payload and service port.
func TestLaunchVectorPayloads(t *testing.T) {
	for _, v := range reflector.Vectors() {
		nw, sched := harness()
		e := NewEngine(nw, rng.New(9), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
		prof := reflector.MustLookup(v)
		ampAddr := netaddr.MustParseAddr("10.9.9.9")
		s := &sink{}
		nw.Register(ampAddr, s)
		e.Launch(Campaign{
			Victim: netaddr.MustParseAddr("203.0.113.5"), Port: 80,
			Start: nw.Now().Add(time.Minute), Duration: time.Minute,
			Vector: v, TriggerRate: 10, Amplifiers: []netaddr.Addr{ampAddr},
		})
		sched.Drain()
		if s.packets == 0 {
			t.Fatalf("%s: no triggers delivered", v)
		}
		if s.ports[prof.Port] != s.packets {
			t.Fatalf("%s: triggers on ports %v, want all on %d", v, s.ports, prof.Port)
		}
	}
}
