package attack

import (
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/reflector"
)

// Campaign shapes beyond the paper's sustained single-victim floods. The
// follow-on literature ("Distributed Pulse-Wave Simulator for DDoS Dataset
// Generation", "The Age of DDoScovery") documents attackers alternating
// short bursts across victims and vectors precisely to defeat rate-based
// mitigation; carpet bombing spreads the same budget across a whole routed
// block so no single address crosses a per-IP threshold. Each orchestrator
// below expands into plain Campaigns through Launch, so every burst lands
// in the OnLaunch ground-truth log the detection vantages are scored
// against. The orchestrators themselves draw no randomness — rotation is
// deterministic in the input — which keeps shaped schedules reproducible
// independent of evaluation order.

// AmplifierSets maps each vector to the reflector population a booter
// harvested for it.
type AmplifierSets map[reflector.Vector][]netaddr.Addr

// PulseWave is a fixed-period burst schedule rotating across a victim list
// and a vector set: burst i hits Victims[i%len(Victims)] through
// Vectors[i%len(Vectors)]. Per victim, traffic arrives as periodic bursts
// separated by len(Victims)×Period of silence — the shape that makes
// sustained-flood EWMA trackers flap.
type PulseWave struct {
	Victims []netaddr.Addr
	// Port is the victim-side destination port (0 draws from Table 4).
	Port uint16
	// Vectors rotates the amplification protocol burst by burst; empty
	// means monlist only.
	Vectors []reflector.Vector
	// Amplifiers supplies each vector's reflector list.
	Amplifiers AmplifierSets

	Start time.Time
	// Period separates consecutive burst starts; BurstLen is each burst's
	// duration (BurstLen < Period leaves inter-burst silence).
	Period   time.Duration
	BurstLen time.Duration
	// Bursts is the total burst count across the whole wave.
	Bursts int
	// TriggerRate is per-amplifier trigger packets/second within a burst.
	TriggerRate float64
	// PrimeSources primes stateful vectors before their first burst.
	PrimeSources int
}

// LaunchPulseWave expands the wave into one Campaign per burst and returns
// how many were launched.
func (e *Engine) LaunchPulseWave(p PulseWave) int {
	if len(p.Victims) == 0 || p.Bursts <= 0 || p.Period <= 0 || p.BurstLen <= 0 {
		return 0
	}
	vectors := p.Vectors
	if len(vectors) == 0 {
		vectors = []reflector.Vector{reflector.Monlist}
	}
	launched := 0
	primed := make(map[reflector.Vector]bool, len(vectors))
	for i := 0; i < p.Bursts; i++ {
		v := vectors[i%len(vectors)]
		amps := p.Amplifiers[v]
		if len(amps) == 0 {
			continue
		}
		prime := 0
		if !primed[v] {
			// Warm each vector's reflector set once, before its first burst;
			// Launch drops the request for stateless profiles.
			prime = p.PrimeSources
			primed[v] = true
		}
		e.Launch(Campaign{
			Victim: p.Victims[i%len(p.Victims)], Port: p.Port,
			Start:    p.Start.Add(time.Duration(i) * p.Period),
			Duration: p.BurstLen, Vector: v,
			TriggerRate: p.TriggerRate, Amplifiers: amps,
			PrimeSources: prime,
		})
		launched++
	}
	return launched
}

// CarpetBomb sweeps a victim prefix (typically the target's /24): every
// address in the block receives a short trigger slice in sequence, so the
// aggregate flood persists while no single destination accumulates the
// volume a per-IP mitigation threshold would catch.
type CarpetBomb struct {
	// Prefix is the swept block.
	Prefix netaddr.Prefix
	// Port is the victim-side destination port (0 draws from Table 4).
	Port   uint16
	Vector reflector.Vector
	// Amplifiers is the reflector set, shared across the whole sweep.
	Amplifiers []netaddr.Addr

	Start time.Time
	// SliceLen is each address's burst duration; slices run back to back.
	SliceLen time.Duration
	// TriggerRate is per-amplifier trigger packets/second within a slice.
	TriggerRate float64
	// MaxTargets caps the sweep (0 = the whole prefix, itself capped at a
	// /24's 256 addresses to bound event counts on wide prefixes).
	MaxTargets int
}

// LaunchCarpetBomb expands the sweep into one Campaign per address and
// returns how many were launched.
func (e *Engine) LaunchCarpetBomb(b CarpetBomb) int {
	if b.SliceLen <= 0 || len(b.Amplifiers) == 0 {
		return 0
	}
	n := int(b.Prefix.NumAddrs())
	if n > 256 {
		n = 256
	}
	if b.MaxTargets > 0 && n > b.MaxTargets {
		n = b.MaxTargets
	}
	launched := 0
	for i := 0; i < n; i++ {
		e.Launch(Campaign{
			Victim: b.Prefix.Nth(uint64(i)), Port: b.Port,
			Start:    b.Start.Add(time.Duration(i) * b.SliceLen),
			Duration: b.SliceLen, Vector: b.Vector,
			TriggerRate: b.TriggerRate, Amplifiers: b.Amplifiers,
		})
		launched++
	}
	return launched
}

// MultiVector blends several amplification protocols against one victim
// simultaneously — the booter "stresser package" shape, where mitigating
// one protocol still leaves the victim saturated by the others.
type MultiVector struct {
	Victim netaddr.Addr
	// Port is the victim-side destination port (0 draws from Table 4).
	Port uint16
	// Vectors lists the blended protocols; empty means monlist only.
	Vectors []reflector.Vector
	// Amplifiers supplies each vector's reflector list.
	Amplifiers AmplifierSets

	Start    time.Time
	Duration time.Duration
	// TriggerRate is per-amplifier trigger packets/second, per vector.
	TriggerRate float64
	// PrimeSources primes stateful vectors.
	PrimeSources int
}

// LaunchMultiVector expands the blend into one Campaign per vector and
// returns how many were launched.
func (e *Engine) LaunchMultiVector(m MultiVector) int {
	vectors := m.Vectors
	if len(vectors) == 0 {
		vectors = []reflector.Vector{reflector.Monlist}
	}
	launched := 0
	for _, v := range vectors {
		amps := m.Amplifiers[v]
		if len(amps) == 0 {
			continue
		}
		e.Launch(Campaign{
			Victim: m.Victim, Port: m.Port,
			Start: m.Start, Duration: m.Duration, Vector: v,
			TriggerRate: m.TriggerRate, Amplifiers: amps,
			PrimeSources: m.PrimeSources,
		})
		launched++
	}
	return launched
}
