package attack

import (
	"math"
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/ntpd"
	"ntpddos/internal/packet"
	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

func TestPortDistributionMatchesTable4(t *testing.T) {
	src := rng.New(1)
	n := 200000
	counts := map[uint16]int{}
	for i := 0; i < n; i++ {
		counts[SamplePort(src)]++
	}
	for _, want := range []struct {
		port uint16
		frac float64
	}{{80, 0.362}, {123, 0.238}, {3074, 0.079}} {
		got := float64(counts[want.port]) / float64(n)
		if math.Abs(got-want.frac) > 0.01 {
			t.Fatalf("port %d fraction = %.4f, want ≈%.3f", want.port, got, want.frac)
		}
	}
}

func TestGamePortShare(t *testing.T) {
	// The paper: game-associated ports add up to at least 15% of the top-20
	// victim ports (excluding the ambiguous port 80).
	share := 0.0
	for _, p := range PortCatalog {
		if p.Game && p.Port != 80 {
			share += p.Weight
		}
	}
	if share < 0.15 {
		t.Fatalf("game port share = %.3f, want >= 0.15", share)
	}
	if !IsGamePort(25565) || IsGamePort(22) {
		t.Fatal("IsGamePort misclassifies")
	}
}

func TestDiurnalShape(t *testing.T) {
	if DiurnalWeight(20) <= DiurnalWeight(6) {
		t.Fatal("evening must out-weigh early morning")
	}
	src := rng.New(2)
	evening, morning := 0, 0
	for i := 0; i < 10000; i++ {
		h := SampleStartHour(src)
		if h >= 18 && h <= 23 {
			evening++
		}
		if h >= 3 && h <= 8 {
			morning++
		}
	}
	if evening <= morning {
		t.Fatalf("diurnal sampling: evening %d <= morning %d", evening, morning)
	}
}

type sink struct {
	packets int64
	bytes   int64
	ports   map[uint16]int64
}

func (s *sink) HandlePacket(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
	s.packets += dg.Rep
	s.bytes += int64(dg.OnWire()) * dg.Rep
	if s.ports == nil {
		s.ports = map[uint16]int64{}
	}
	s.ports[dg.UDP.DstPort] += dg.Rep
}

func harness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

func TestCampaignReflectsOffAmplifier(t *testing.T) {
	nw, sched := harness()
	amp := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.10"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	nw.Register(amp.Addr(), amp)
	victim := netaddr.MustParseAddr("203.0.113.7")
	v := &sink{}
	nw.Register(victim, v)

	e := NewEngine(nw, rng.New(3), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	launched := 0
	e.OnLaunch = func(Campaign) { launched++ }
	e.Launch(Campaign{
		Victim: victim, Port: 80,
		Start:       nw.Now().Add(time.Minute),
		Duration:    10 * time.Minute,
		TriggerRate: 100, // per second per amplifier
		Amplifiers:  []netaddr.Addr{amp.Addr()},
	})
	sched.Drain()

	if launched != 1 {
		t.Fatalf("OnLaunch fired %d times", launched)
	}
	// 10 minutes at 100 pps = 60000 triggers; each yields >= 1 response
	// fragment carrying the same Rep.
	if e.TriggersSent != 60000 {
		t.Fatalf("TriggersSent = %d, want 60000", e.TriggersSent)
	}
	if v.packets < 60000 {
		t.Fatalf("victim received %d packets, want >= 60000", v.packets)
	}
	if v.ports[80] != v.packets {
		t.Fatalf("victim traffic not on attacked port: %v", v.ports)
	}
	// The victim must now be in the amplifier's monitor table with a huge
	// count and mode 7 — the observable §4 exploits.
	if amp.MRULen() == 0 {
		t.Fatal("amplifier table empty")
	}
}

func TestCampaignBlockedByBCP38(t *testing.T) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	nw := netsim.New(sched, func(origin, claimed netaddr.Addr) bool { return false })
	amp := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.10"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	nw.Register(amp.Addr(), amp)
	victim := netaddr.MustParseAddr("203.0.113.7")
	v := &sink{}
	nw.Register(victim, v)
	e := NewEngine(nw, rng.New(3), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	e.Launch(Campaign{Victim: victim, Port: 80, Start: nw.Now().Add(time.Minute),
		Duration: time.Minute, TriggerRate: 10, Amplifiers: []netaddr.Addr{amp.Addr()}})
	sched.Drain()
	if e.TriggersSent != 0 || e.TriggersBlocked == 0 {
		t.Fatalf("sent=%d blocked=%d under universal BCP38", e.TriggersSent, e.TriggersBlocked)
	}
	if v.packets != 0 {
		t.Fatal("victim hit despite BCP38")
	}
}

func TestPrimingFillsTable(t *testing.T) {
	nw, sched := harness()
	amp := ntpd.New(ntpd.Config{Addr: netaddr.MustParseAddr("10.0.0.10"),
		MonlistEnabled: true, Profile: ntpd.Profile{TTL: 64}})
	nw.Register(amp.Addr(), amp)
	victim := netaddr.MustParseAddr("203.0.113.7")
	v := &sink{}
	nw.Register(victim, v)
	e := NewEngine(nw, rng.New(5), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	e.Launch(Campaign{
		Victim: victim, Port: 80,
		Start:        nw.Now().Add(20 * time.Minute),
		Duration:     time.Minute,
		TriggerRate:  1,
		Amplifiers:   []netaddr.Addr{amp.Addr()},
		PrimeSources: 300,
	})
	sched.Drain()
	if amp.MRULen() < 300 {
		t.Fatalf("primed table has %d entries, want >= 300", amp.MRULen())
	}
	// A primed table means multi-fragment responses: victim packet count
	// must exceed trigger count substantially (packet amplification).
	if v.packets < e.TriggersSent*10 {
		t.Fatalf("victim packets %d vs triggers %d: priming had no effect", v.packets, e.TriggersSent)
	}
}

func TestTriggerTTLIsWindows(t *testing.T) {
	nw, sched := harness()
	var seen []uint8
	nw.AddTap(tapFunc(func(dg *packet.Datagram, _ time.Time) {
		if dg.UDP.DstPort == ntp.Port && dg.IP.Dst == netaddr.MustParseAddr("10.0.0.10") {
			seen = append(seen, dg.IP.TTL)
		}
	}))
	e := NewEngine(nw, rng.New(7), []netaddr.Addr{netaddr.MustParseAddr("192.0.2.1")})
	e.Launch(Campaign{Victim: netaddr.MustParseAddr("203.0.113.7"), Port: 80,
		Start: nw.Now().Add(time.Second), Duration: time.Minute, TriggerRate: 1,
		Amplifiers: []netaddr.Addr{netaddr.MustParseAddr("10.0.0.10")}})
	sched.Drain()
	if len(seen) == 0 {
		t.Fatal("no triggers observed")
	}
	for _, ttl := range seen {
		// Windows 128 minus 8..23 hops → 105..120: the §7.2 fingerprint.
		if ttl < 105 || ttl > 120 {
			t.Fatalf("trigger TTL %d outside Windows fingerprint band", ttl)
		}
	}
}

type tapFunc func(dg *packet.Datagram, now time.Time)

func (f tapFunc) Observe(dg *packet.Datagram, now time.Time) { f(dg, now) }

func TestLaunchNoAmplifiersNoBots(t *testing.T) {
	nw, _ := harness()
	e := NewEngine(nw, rng.New(1), nil)
	e.OnLaunch = func(Campaign) { t.Fatal("launched with no bots") }
	e.Launch(Campaign{Victim: 1, Amplifiers: []netaddr.Addr{2}})
	e2 := NewEngine(nw, rng.New(1), []netaddr.Addr{3})
	e2.OnLaunch = func(Campaign) { t.Fatal("launched with no amplifiers") }
	e2.Launch(Campaign{Victim: 1})
}
