package packet

import "testing"

var allocSinkBuf []byte

// TestDatagramCodecZeroAlloc pins the full-stack datagram codec at zero
// allocations: AppendEncode lays header and payload into the caller's buffer
// with no intermediate segment, and DecodeFromBytes parses into a scratch
// struct whose payload aliases the input.
func TestDatagramCodecZeroAlloc(t *testing.T) {
	payload := []byte("monlist response fragment payload bytes")
	d := NewDatagram(0x0a000001, 123, 0x0a000002, 33000, payload)
	buf := make([]byte, 0, MTU)

	if n := testing.AllocsPerRun(100, func() {
		out, err := d.AppendEncode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		allocSinkBuf = out
	}); n != 0 {
		t.Errorf("AppendEncode: %.1f allocs/op, want 0", n)
	}

	wire, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var dec Datagram
	if n := testing.AllocsPerRun(100, func() {
		if err := dec.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeFromBytes: %.1f allocs/op, want 0", n)
	}
	if string(dec.Payload) != string(payload) || dec.UDP.DstPort != 33000 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}
