package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"ntpddos/internal/netaddr"
)

func TestOnWireBytes(t *testing.T) {
	cases := []struct{ ipLen, want int }{
		{20, 84},   // tiny packet hits the 64-byte frame floor + 20 preamble/gap
		{46, 84},   // exactly the floor
		{47, 85},   // one past the floor
		{28, 84},   // IP+UDP, no payload
		{468, 506}, // a 440-byte-payload monlist fragment
		{1500, 1538},
	}
	for _, c := range cases {
		if got := OnWireBytes(c.ipLen); got != c.want {
			t.Fatalf("OnWireBytes(%d) = %d, want %d", c.ipLen, got, c.want)
		}
	}
}

func TestMinOnWireIs84(t *testing.T) {
	// The paper's BAF denominator: "the 64 minimum Ethernet frame plus
	// preamble and inter-packet gap, which total 84 bytes".
	if MinOnWire != 84 {
		t.Fatalf("MinOnWire = %d, want 84", MinOnWire)
	}
	if OnWireBytesForUDPPayload(8) != 84 {
		t.Fatalf("8-byte monlist probe must cost 84 on-wire bytes, got %d",
			OnWireBytesForUDPPayload(8))
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	src := netaddr.MustParseAddr("192.0.2.1")
	dst := netaddr.MustParseAddr("198.51.100.2")
	payload := []byte("\x17\x00\x03\x2a\x00\x00\x00\x00")
	d := NewDatagram(src, 49000, dst, 123, payload)
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDatagram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != src || got.IP.Dst != dst {
		t.Fatalf("addresses corrupted: %v -> %v", got.IP.Src, got.IP.Dst)
	}
	if got.UDP.SrcPort != 49000 || got.UDP.DstPort != 123 {
		t.Fatalf("ports corrupted: %d -> %d", got.UDP.SrcPort, got.UDP.DstPort)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload corrupted: %x", got.Payload)
	}
	if got.IP.TTL != 64 {
		t.Fatalf("default TTL = %d", got.IP.TTL)
	}
}

func TestDatagramRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16, payload []byte) bool {
		if len(payload) > MTU-IPv4HeaderLen-UDPHeaderLen {
			payload = payload[:MTU-IPv4HeaderLen-UDPHeaderLen]
		}
		d := NewDatagram(netaddr.Addr(src), sport, netaddr.Addr(dst), dport, payload)
		raw, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeDatagram(raw)
		if err != nil {
			return false
		}
		return got.IP.Src == netaddr.Addr(src) && got.IP.Dst == netaddr.Addr(dst) &&
			got.UDP.SrcPort == sport && got.UDP.DstPort == dport &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	d := NewDatagram(netaddr.MustParseAddr("10.0.0.1"), 1, netaddr.MustParseAddr("10.0.0.2"), 2,
		[]byte("hello world"))
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in each region and confirm the decoder rejects it.
	for _, idx := range []int{8 /*TTL*/, 13 /*src*/, 30 /*payload*/} {
		bad := bytes.Clone(raw)
		bad[idx] ^= 0x01
		if _, err := DecodeDatagram(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", idx)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	d := NewDatagram(netaddr.MustParseAddr("10.0.0.1"), 1, netaddr.MustParseAddr("10.0.0.2"), 2,
		[]byte("payload"))
	raw, _ := d.Encode()
	for _, n := range []int{0, 5, 19, 25} {
		if _, err := DecodeDatagram(raw[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestDecodeNonUDPRejected(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: 6 /*TCP*/, Src: 1, Dst: 2}
	raw, err := h.AppendTo(nil, make([]byte, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDatagram(raw); err == nil {
		t.Fatal("non-UDP packet decoded as datagram")
	}
}

func TestEncodeOverMTU(t *testing.T) {
	d := NewDatagram(1, 1, 2, 2, make([]byte, MTU))
	if _, err := d.Encode(); err == nil {
		t.Fatal("over-MTU packet encoded")
	}
}

func TestIPLenAndOnWire(t *testing.T) {
	d := NewDatagram(1, 1, 2, 2, make([]byte, 100))
	if d.IPLen() != 128 {
		t.Fatalf("IPLen = %d, want 128", d.IPLen())
	}
	if d.OnWire() != 128+18+20 {
		t.Fatalf("OnWire = %d", d.OnWire())
	}
}

func TestTTLPreserved(t *testing.T) {
	d := NewDatagram(1, 1, 2, 2, []byte("x"))
	d.IP.TTL = 109 // the Windows-bot attack TTL signature of §7.2
	raw, _ := d.Encode()
	got, err := DecodeDatagram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.TTL != 109 {
		t.Fatalf("TTL = %d, want 109", got.IP.TTL)
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	// A UDP checksum of zero means "not computed" and must be accepted.
	d := NewDatagram(1, 1, 2, 2, []byte("abc"))
	seg := d.UDP.AppendTo(nil, d.Payload, d.IP.Src, d.IP.Dst)
	seg[6], seg[7] = 0, 0 // clear the checksum
	var u UDP
	payload, err := u.DecodeFromBytes(seg, d.IP.Src, d.IP.Dst)
	if err != nil {
		t.Fatalf("zero-checksum segment rejected: %v", err)
	}
	if !bytes.Equal(payload, []byte("abc")) {
		t.Fatal("payload corrupted")
	}
}
