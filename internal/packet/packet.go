// Package packet implements the minimal layer stack the reproduction needs:
// IPv4 and UDP headers with real checksums, plus Ethernet on-wire size
// accounting.
//
// The decode/serialize API follows the gopacket DecodingLayer idiom
// (DecodeFromBytes into a reusable struct; AppendTo to serialize) so the hot
// paths — the scanner parsing millions of monlist reply packets — allocate
// nothing per packet.
//
// On-wire accounting matters to the science: the paper computes bandwidth
// amplification factors "with respect to using all UDP, IP, and Ethernet
// frame overhead (including all bits that take time on the wire)", using the
// 64-byte minimum Ethernet frame plus preamble and inter-packet gap for a
// total floor of 84 bytes. OnWireBytes implements exactly that accounting.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ntpddos/internal/netaddr"
)

// Ethernet/IP constants used by the on-wire model.
const (
	// EthernetHeaderLen is the 14-byte MAC header.
	EthernetHeaderLen = 14
	// EthernetFCSLen is the 4-byte frame check sequence.
	EthernetFCSLen = 4
	// EthernetMinFrame is the minimum Ethernet frame (header+payload+FCS).
	EthernetMinFrame = 64
	// EthernetPreambleGap is preamble (8) plus inter-packet gap (12).
	EthernetPreambleGap = 20
	// MinOnWire is the smallest possible on-wire cost of any packet:
	// 64-byte minimum frame + 20 bytes preamble/gap = 84 bytes, the paper's
	// denominator for every BAF computation.
	MinOnWire = EthernetMinFrame + EthernetPreambleGap

	// IPv4HeaderLen is the option-less IPv4 header length.
	IPv4HeaderLen = 20
	// UDPHeaderLen is the UDP header length.
	UDPHeaderLen = 8

	// ProtocolUDP is the IPv4 protocol number for UDP.
	ProtocolUDP = 17

	// MTU is the Ethernet payload ceiling the simulated fabric enforces.
	MTU = 1500
)

// OnWireBytes returns the number of bytes a packet with the given IP-layer
// length occupies on an Ethernet link, including MAC header, FCS, minimum
// frame padding, preamble and inter-packet gap.
func OnWireBytes(ipLen int) int {
	frame := ipLen + EthernetHeaderLen + EthernetFCSLen
	if frame < EthernetMinFrame {
		frame = EthernetMinFrame
	}
	return frame + EthernetPreambleGap
}

// OnWireBytesForUDPPayload returns the on-wire size of a UDP datagram with
// the given payload length.
func OnWireBytesForUDPPayload(payloadLen int) int {
	return OnWireBytes(IPv4HeaderLen + UDPHeaderLen + payloadLen)
}

// IPv4 is an option-less IPv4 header.
type IPv4 struct {
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netaddr.Addr
	// Length is the total length field (header + payload). Set by encode.
	Length uint16
	// Checksum is the header checksum. Set by encode; verified by decode.
	Checksum uint16
}

// Errors returned by decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadVersion  = errors.New("packet: not IPv4 or has options")
	ErrTooBig      = errors.New("packet: exceeds MTU")
)

// AppendTo serializes the header followed by payload, computing length and
// checksum fields.
func (h *IPv4) AppendTo(b []byte, payload []byte) ([]byte, error) {
	b, err := h.AppendHeaderTo(b, len(payload))
	if err != nil {
		return b, err
	}
	return append(b, payload...), nil
}

// AppendHeaderTo serializes just the header for a packet whose payload will
// occupy payloadLen bytes — the caller appends the payload itself. This is
// the zero-copy half of AppendTo: it lets a datagram encoder lay out header
// and payload into one buffer without an intermediate segment allocation.
func (h *IPv4) AppendHeaderTo(b []byte, payloadLen int) ([]byte, error) {
	total := IPv4HeaderLen + payloadLen
	if total > MTU {
		return b, fmt.Errorf("%w: ip length %d", ErrTooBig, total)
	}
	h.Length = uint16(total)
	start := len(b)
	b = append(b,
		0x45, 0, // version 4, IHL 5, DSCP 0
		byte(total>>8), byte(total),
		byte(h.ID>>8), byte(h.ID),
		0, 0, // flags, fragment offset
		h.TTL, h.Protocol,
		0, 0, // checksum placeholder
	)
	b = binary.BigEndian.AppendUint32(b, uint32(h.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(h.Dst))
	h.Checksum = ipChecksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:], h.Checksum)
	return b, nil
}

// DecodeFromBytes parses an IPv4 header from data, returning the payload.
// The header checksum is verified.
func (h *IPv4) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if data[0] != 0x45 {
		return nil, ErrBadVersion
	}
	if ipChecksum(data[:IPv4HeaderLen]) != 0 {
		return nil, ErrBadChecksum
	}
	h.Length = binary.BigEndian.Uint16(data[2:])
	if int(h.Length) > len(data) || h.Length < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	h.ID = binary.BigEndian.Uint16(data[4:])
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.Src = netaddr.Addr(binary.BigEndian.Uint32(data[12:]))
	h.Dst = netaddr.Addr(binary.BigEndian.Uint32(data[16:]))
	return data[IPv4HeaderLen:h.Length], nil
}

// ipChecksum is the Internet checksum over a header whose checksum field may
// be zero (computing) or filled (verifying; result 0 means valid).
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// AppendTo serializes the header followed by payload, computing the length
// and the checksum over the IPv4 pseudo-header.
func (u *UDP) AppendTo(b []byte, payload []byte, src, dst netaddr.Addr) []byte {
	u.Length = uint16(UDPHeaderLen + len(payload))
	start := len(b)
	b = append(b,
		byte(u.SrcPort>>8), byte(u.SrcPort),
		byte(u.DstPort>>8), byte(u.DstPort),
		byte(u.Length>>8), byte(u.Length),
		0, 0, // checksum placeholder
	)
	b = append(b, payload...)
	u.Checksum = udpChecksum(b[start:], src, dst)
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: transmitted as all-ones if computed as zero
	}
	binary.BigEndian.PutUint16(b[start+6:], u.Checksum)
	return b
}

// DecodeFromBytes parses a UDP header, verifying the checksum against the
// pseudo-header, and returns the payload.
func (u *UDP) DecodeFromBytes(data []byte, src, dst netaddr.Addr) (payload []byte, err error) {
	if len(data) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:])
	u.DstPort = binary.BigEndian.Uint16(data[2:])
	u.Length = binary.BigEndian.Uint16(data[4:])
	u.Checksum = binary.BigEndian.Uint16(data[6:])
	if int(u.Length) > len(data) || u.Length < UDPHeaderLen {
		return nil, ErrTruncated
	}
	if u.Checksum != 0 { // zero checksum means "not computed" in UDP/IPv4
		if udpChecksum(data[:u.Length], src, dst) != 0 {
			return nil, ErrBadChecksum
		}
	}
	return data[UDPHeaderLen:u.Length], nil
}

// udpChecksum computes the Internet checksum over the IPv4 pseudo-header
// plus the UDP segment. A segment with the checksum field already set
// verifies to 0.
func udpChecksum(segment []byte, src, dst netaddr.Addr) uint16 {
	var sum uint32
	sum += uint32(src>>16) + uint32(src&0xffff)
	sum += uint32(dst>>16) + uint32(dst&0xffff)
	sum += ProtocolUDP
	sum += uint32(len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i:]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// Datagram is a fully parsed (or to-be-built) UDP/IPv4 packet — the unit the
// simulated fabric delivers and taps capture.
//
// Rep is a simulation-only batching multiplier: a datagram with Rep = n
// stands for n identical copies on the wire. High-rate flows (an attacker
// triggering an amplifier thousands of times per second, a mega amplifier
// replaying its table millions of times) are simulated by sending one
// representative datagram per interval with Rep set to the batch size;
// every byte/packet accountant (fabric stats, taps, monitor tables)
// multiplies by Rep. Encode ignores Rep — it is not wire state.
type Datagram struct {
	IP      IPv4
	UDP     UDP
	Payload []byte
	Rep     int64
}

// NewDatagram builds a datagram with the given addressing and payload and a
// default TTL of 64.
func NewDatagram(src netaddr.Addr, srcPort uint16, dst netaddr.Addr, dstPort uint16, payload []byte) *Datagram {
	return &Datagram{
		IP:      IPv4{TTL: 64, Protocol: ProtocolUDP, Src: src, Dst: dst},
		UDP:     UDP{SrcPort: srcPort, DstPort: dstPort},
		Payload: payload,
		Rep:     1,
	}
}

// Encode serializes the full IP packet (IPv4 header + UDP header + payload).
func (d *Datagram) Encode() ([]byte, error) {
	return d.AppendEncode(make([]byte, 0, d.IPLen()))
}

// AppendEncode serializes the full IP packet into b and returns the extended
// slice. Header and payload are laid out in place — no intermediate segment
// buffer — so encoding into a buffer with capacity allocates nothing.
func (d *Datagram) AppendEncode(b []byte) ([]byte, error) {
	d.IP.Protocol = ProtocolUDP
	b, err := d.IP.AppendHeaderTo(b, UDPHeaderLen+len(d.Payload))
	if err != nil {
		return b, err
	}
	return d.UDP.AppendTo(b, d.Payload, d.IP.Src, d.IP.Dst), nil
}

// DecodeDatagram parses a full IP packet into a Datagram. Non-UDP protocols
// are rejected.
func DecodeDatagram(data []byte) (*Datagram, error) {
	var d Datagram
	if err := d.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	return &d, nil
}

// DecodeFromBytes parses a full IP packet into the receiver, allocating
// nothing: Payload aliases data. The receiver's prior contents are
// overwritten, so one scratch Datagram can decode an entire capture.
func (d *Datagram) DecodeFromBytes(data []byte) error {
	ipPayload, err := d.IP.DecodeFromBytes(data)
	if err != nil {
		return err
	}
	if d.IP.Protocol != ProtocolUDP {
		return fmt.Errorf("packet: protocol %d is not UDP", d.IP.Protocol)
	}
	d.Payload, err = d.UDP.DecodeFromBytes(ipPayload, d.IP.Src, d.IP.Dst)
	if err != nil {
		return err
	}
	d.Rep = 1
	return nil
}

// IPLen returns the IP-layer length the datagram will have when encoded.
func (d *Datagram) IPLen() int {
	return IPv4HeaderLen + UDPHeaderLen + len(d.Payload)
}

// OnWire returns the datagram's on-wire Ethernet cost in bytes.
func (d *Datagram) OnWire() int { return OnWireBytes(d.IPLen()) }
