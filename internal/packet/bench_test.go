package packet

import (
	"testing"

	"ntpddos/internal/netaddr"
)

func BenchmarkDatagramEncode(b *testing.B) {
	d := NewDatagram(netaddr.MustParseAddr("10.0.0.1"), 57915,
		netaddr.MustParseAddr("198.51.100.2"), 123, make([]byte, 440))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatagramDecode(b *testing.B) {
	d := NewDatagram(netaddr.MustParseAddr("10.0.0.1"), 57915,
		netaddr.MustParseAddr("198.51.100.2"), 123, make([]byte, 440))
	raw, err := d.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDatagram(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnWireBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = OnWireBytes(i % 1500)
	}
}
