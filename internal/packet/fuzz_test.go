package packet

import (
	"bytes"
	"testing"

	"ntpddos/internal/netaddr"
)

// FuzzDecodeDatagram drives the full IP+UDP decoder: arbitrary bytes must
// either fail cleanly or decode into a datagram whose re-encoding decodes
// to the same wire bytes (checksums and lengths are recomputed canonically,
// so the round trip is byte-stable only for inputs that were canonical —
// which everything the encoder emits is).
func FuzzDecodeDatagram(f *testing.F) {
	src := netaddr.MustParseAddr("192.0.2.1")
	dst := netaddr.MustParseAddr("198.51.100.2")
	valid, err := NewDatagram(src, 123, dst, 47001, []byte("monlist")).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	empty, err := NewDatagram(src, 123, dst, 80, nil).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(bytes.Repeat([]byte{0x45}, 28))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDatagram(data)
		if err != nil {
			return
		}
		raw, err := d.Encode()
		if err != nil {
			t.Fatalf("decoded datagram does not re-encode: %v", err)
		}
		d2, err := DecodeDatagram(raw)
		if err != nil {
			t.Fatalf("re-encoded datagram does not decode: %v", err)
		}
		if d.IP.Src != d2.IP.Src || d.IP.Dst != d2.IP.Dst ||
			d.UDP.SrcPort != d2.UDP.SrcPort || d.UDP.DstPort != d2.UDP.DstPort ||
			!bytes.Equal(d.Payload, d2.Payload) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", d, d2)
		}
	})
}

// FuzzDecodeIPv4 exercises the header decoder alone, including options
// lengths and truncation claims.
func FuzzDecodeIPv4(f *testing.F) {
	valid, err := NewDatagram(netaddr.Addr(1), 1, netaddr.Addr(2), 2, nil).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(make([]byte, IPv4HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ip IPv4
		payload, err := ip.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatalf("payload longer than input: %d > %d", len(payload), len(data))
		}
	})
}
