package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ntpddos/internal/detect"
	"ntpddos/internal/reflector"
	"ntpddos/internal/scenario"
)

// Spec is the declarative sweep description: seed ranges, a Scale ladder,
// a window truncation, and the grid knobs (detector ablation, BCP38 spoofer
// fractions, remediation-hazard multipliers, no-remediation counterfactual,
// and the fault-injection plane's loss/dup/reorder/flap/sample/outage/
// blackout dimensions).
// It is the JSON job-spec format the serving layer accepts over HTTP and
// the surface cmd/ntpsweep's flags compile to, so a job submitted to
// ntpserved expands into exactly the jobs the CLI would run.
type Spec struct {
	// Name prefixes every experiment cell in the manifest.
	Name string `json:"name,omitempty"`
	// Seeds lists replicate seeds: comma list and/or ranges ("1-16",
	// "1,5,9-12"). Required.
	Seeds string `json:"seeds"`
	// Scale is the base population divisor (0 = the base config's value).
	Scale int `json:"scale,omitempty"`
	// Scales is the Scale ladder; when set it overrides Scale.
	Scales []int `json:"scales,omitempty"`
	// End truncates the window at this date (YYYY-MM-DD; empty = full).
	End string `json:"end,omitempty"`
	// Detect is the streaming-detector knob: "", "off", "on", or "both".
	Detect string `json:"detect,omitempty"`
	// NoRemediation is the counterfactual knob: "", "off", "on", or "both".
	NoRemediation string `json:"noremediation,omitempty"`
	// Spoof lists BCP38 spoofer fractions (0 meaning nobody spoofs).
	Spoof []float64 `json:"spoof,omitempty"`
	// Hazard lists remediation-hazard multipliers.
	Hazard []float64 `json:"hazard,omitempty"`
	// Vectors arms extra reflector planes alongside monlist ("dns-any",
	// "ssdp", "chargen"). Base-config setting, not a grid dimension:
	// registering a population is free until a campaign share uses it.
	Vectors []string `json:"vectors,omitempty"`
	// Pulse lists pulse-wave campaign shares in [0,1].
	Pulse []float64 `json:"pulse,omitempty"`
	// Carpet lists carpet-bombing campaign shares in [0,1].
	Carpet []float64 `json:"carpet,omitempty"`
	// Multi lists multi-vector campaign shares in [0,1].
	Multi []float64 `json:"multi,omitempty"`
	// Loss lists fabric packet-loss rates in [0,1) — the fault-injection
	// plane's primary knob for detection-degradation curves.
	Loss []float64 `json:"loss,omitempty"`
	// Dup lists fabric duplication rates in [0,1).
	Dup []float64 `json:"dup,omitempty"`
	// Reorder lists fabric reordering rates in [0,1).
	Reorder []float64 `json:"reorder,omitempty"`
	// Flap lists link-flap dark fractions in [0,1).
	Flap []float64 `json:"flap,omitempty"`
	// Sample lists NetFlow 1-in-N sampling strides (each at least 1;
	// 1 means every export is seen).
	Sample []int `json:"sample,omitempty"`
	// Outage lists NetFlow collector dark fractions in [0,1).
	Outage []float64 `json:"outage,omitempty"`
	// Blackout lists honeypot sensor blackout fractions in [0,1).
	Blackout []float64 `json:"blackout,omitempty"`
	// TimeSync sizes the disciplined-client plane (0 keeps it off).
	// Base-config setting like Vectors, not a grid dimension.
	TimeSync int `json:"timesync,omitempty"`
	// TimeAttack lists time-integrity attack shares in [0,1]; requires
	// TimeSync.
	TimeAttack []float64 `json:"timeattack,omitempty"`
}

// NumJobs returns how many jobs the spec expands to, without building
// configs — the admission controller's cheap pre-flight check.
func (s Spec) NumJobs() (int, error) {
	seeds, err := ParseSeeds(s.Seeds)
	if err != nil {
		return 0, err
	}
	n := len(seeds)
	if len(s.Scales) > 0 {
		n *= len(s.Scales)
	}
	for _, knob := range []string{s.Detect, s.NoRemediation} {
		if knob == "both" {
			n *= 2
		}
	}
	for _, vals := range [][]float64{
		s.Spoof, s.Hazard, s.Pulse, s.Carpet, s.Multi,
		s.Loss, s.Dup, s.Reorder, s.Flap, s.Outage, s.Blackout,
		s.TimeAttack,
	} {
		if len(vals) > 0 {
			n *= len(vals)
		}
	}
	if len(s.Sample) > 0 {
		n *= len(s.Sample)
	}
	return n, nil
}

// Grid compiles the spec against a base configuration. The returned grid's
// Jobs() are deterministic in spec order, which is what makes a daemon-run
// sweep byte-identical to the same spec run in-process.
func (s Spec) Grid(base scenario.Config) (Grid, error) {
	g := Grid{Base: base, Name: s.Name}
	var err error
	if g.Seeds, err = ParseSeeds(s.Seeds); err != nil {
		return g, err
	}
	if s.Scale != 0 {
		if s.Scale < 0 {
			return g, fmt.Errorf("bad scale %d: must be positive", s.Scale)
		}
		g.Base.Scale = s.Scale
	}
	for i, sc := range s.Scales {
		if sc <= 0 {
			return g, fmt.Errorf("bad scales[%d] %d: must be positive", i, sc)
		}
	}
	g.Scales = s.Scales
	if s.End != "" {
		end, err := time.Parse("2006-01-02", s.End)
		if err != nil {
			return g, fmt.Errorf("bad end %q: want YYYY-MM-DD", s.End)
		}
		g.Base.End = end
	}
	detectVals, err := OnOffKnob(s.Detect, func(c *scenario.Config) {
		dcfg := detect.DefaultConfig()
		c.Detector = &dcfg
	})
	if err != nil {
		return g, fmt.Errorf("bad detect %q: %w", s.Detect, err)
	}
	if detectVals != nil {
		g.Knobs = append(g.Knobs, Knob{Name: "detect", Values: detectVals})
	}
	noremVals, err := OnOffKnob(s.NoRemediation, func(c *scenario.Config) {
		c.NoRemediation = true
	})
	if err != nil {
		return g, fmt.Errorf("bad noremediation %q: %w", s.NoRemediation, err)
	}
	if noremVals != nil {
		g.Knobs = append(g.Knobs, Knob{Name: "noremediation", Values: noremVals})
	}
	if len(s.Spoof) > 0 {
		g.Knobs = append(g.Knobs, Knob{Name: "spoof", Values: FloatKnob(s.Spoof,
			func(c *scenario.Config, v float64) {
				if v == 0 {
					v = -1 // Config uses 0 for "default"; 0 in a spec means nobody spoofs
				}
				c.SpooferFraction = v
			})})
	}
	if len(s.Hazard) > 0 {
		g.Knobs = append(g.Knobs, Knob{Name: "hazard", Values: FloatKnob(s.Hazard,
			func(c *scenario.Config, v float64) {
				c.RemediationHazard = v
			})})
	}
	for i, name := range s.Vectors {
		v := reflector.Vector(name)
		if name == "" || v == reflector.Monlist || !reflector.Valid(v) {
			return g, fmt.Errorf("bad vectors[%d] %q: want one of %v", i, name, ExtraVectorNames())
		}
	}
	if len(s.Vectors) > 0 {
		g.Base.ExtraVectors = s.Vectors
	}
	if s.TimeSync < 0 {
		return g, fmt.Errorf("bad timesync %d: must be non-negative", s.TimeSync)
	}
	if s.TimeSync > 0 {
		g.Base.TimeSync.Clients = s.TimeSync
	}
	if len(s.TimeAttack) > 0 {
		if s.TimeSync == 0 {
			return g, fmt.Errorf("timeattack requires timesync clients")
		}
		for i, v := range s.TimeAttack {
			if v < 0 || v > 1 {
				return g, fmt.Errorf("bad timeattack[%d] %v: share must be within [0,1]", i, v)
			}
		}
		g.Knobs = append(g.Knobs, Knob{Name: "timeattack", Values: FloatKnob(s.TimeAttack,
			func(c *scenario.Config, v float64) { c.TimeAttackShare = v })})
	}
	for _, share := range []struct {
		name string
		vals []float64
		set  func(*scenario.Config, float64)
	}{
		{"pulse", s.Pulse, func(c *scenario.Config, v float64) { c.PulseWaveShare = v }},
		{"carpet", s.Carpet, func(c *scenario.Config, v float64) { c.CarpetBombShare = v }},
		{"multi", s.Multi, func(c *scenario.Config, v float64) { c.MultiVectorShare = v }},
	} {
		if len(share.vals) == 0 {
			continue
		}
		for i, v := range share.vals {
			if v < 0 || v > 1 {
				return g, fmt.Errorf("bad %s[%d] %v: share must be within [0,1]", share.name, i, v)
			}
		}
		g.Knobs = append(g.Knobs, Knob{Name: share.name, Values: FloatKnob(share.vals, share.set)})
	}
	for _, rate := range []struct {
		name string
		vals []float64
		set  func(*scenario.Config, float64)
	}{
		{"loss", s.Loss, func(c *scenario.Config, v float64) { c.Faults.Loss = v }},
		{"dup", s.Dup, func(c *scenario.Config, v float64) { c.Faults.Dup = v }},
		{"reorder", s.Reorder, func(c *scenario.Config, v float64) { c.Faults.Reorder = v }},
		{"flap", s.Flap, func(c *scenario.Config, v float64) { c.Faults.FlapRate = v }},
		{"outage", s.Outage, func(c *scenario.Config, v float64) { c.Faults.CollectorOutage = v }},
		{"blackout", s.Blackout, func(c *scenario.Config, v float64) { c.Faults.SensorBlackout = v }},
	} {
		if len(rate.vals) == 0 {
			continue
		}
		for i, v := range rate.vals {
			if v < 0 || v >= 1 {
				return g, fmt.Errorf("bad %s[%d] %v: rate must be within [0,1)", rate.name, i, v)
			}
		}
		g.Knobs = append(g.Knobs, Knob{Name: rate.name, Values: FloatKnob(rate.vals, rate.set)})
	}
	if len(s.Sample) > 0 {
		vals := make([]KnobValue, 0, len(s.Sample))
		for i, n := range s.Sample {
			if n < 1 {
				return g, fmt.Errorf("bad sample[%d] %d: sampling stride must be at least 1", i, n)
			}
			n := n
			vals = append(vals, KnobValue{
				Label: strconv.Itoa(n),
				Apply: func(c *scenario.Config) { c.Faults.FlowSampleN = n },
			})
		}
		g.Knobs = append(g.Knobs, Knob{Name: "sample", Values: vals})
	}
	return g, nil
}

// ExtraVectorNames lists the vectors a spec may arm beyond monlist — the
// catalogue minus the always-on default, in stable order.
func ExtraVectorNames() []reflector.Vector {
	var out []reflector.Vector
	for _, v := range reflector.Vectors() {
		if v != reflector.Monlist {
			out = append(out, v)
		}
	}
	return out
}

// Jobs compiles the spec and expands it in one step.
func (s Spec) Jobs(base scenario.Config) ([]Job, error) {
	g, err := s.Grid(base)
	if err != nil {
		return nil, err
	}
	return g.Jobs(), nil
}

// ParseSeeds expands "1-16" / "1,5,9-12" into an ordered seed list.
func ParseSeeds(spec string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
			b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			if b-a >= 10_000 {
				return nil, fmt.Errorf("seed range %q too large", part)
			}
			for s := a; s <= b; s++ {
				seeds = append(seeds, s)
			}
			continue
		}
		s, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", spec)
	}
	return seeds, nil
}

// OnOffKnob maps an off/on/both spec to knob values; "" and "off" return
// nil (no grid dimension at all, keeping manifest cells clean).
func OnOffKnob(spec string, set func(*scenario.Config)) ([]KnobValue, error) {
	off := KnobValue{Label: "off", Apply: func(*scenario.Config) {}}
	on := KnobValue{Label: "on", Apply: set}
	switch spec {
	case "", "off":
		return nil, nil
	case "on":
		return []KnobValue{on}, nil
	case "both":
		return []KnobValue{off, on}, nil
	}
	return nil, fmt.Errorf("want off, on, or both")
}

// FloatKnob builds one knob value per float, labeled by its shortest
// round-trip formatting.
func FloatKnob(vals []float64, set func(*scenario.Config, float64)) []KnobValue {
	out := make([]KnobValue, 0, len(vals))
	for _, v := range vals {
		v := v
		out = append(out, KnobValue{
			Label: strconv.FormatFloat(v, 'g', -1, 64),
			Apply: func(c *scenario.Config) { set(c, v) },
		})
	}
	return out
}
