package sweep

import (
	"fmt"

	"ntpddos/internal/scenario"
)

// KnobValue is one setting of a parameter-grid dimension: a label for the
// manifest plus the mutation it applies to a job's config.
type KnobValue struct {
	Label string
	Apply func(*scenario.Config)
}

// Knob is one grid dimension over a Config parameter (detector on/off,
// BCP38 spoofer fraction, remediation hazard, ...).
type Knob struct {
	Name   string
	Values []KnobValue
}

// Grid expands into the cross product of its dimensions: every Scale, times
// every combination of Knob values, times every Seed replicate. Jobs that
// differ only by seed share an Experiment cell, which is what makes the
// manifest's group summaries seed-spread envelopes.
type Grid struct {
	// Base is the configuration every job starts from.
	Base scenario.Config
	// Name prefixes every experiment cell ("fig3", "sensitivity", ...).
	// Empty is fine when the knob labels are self-describing.
	Name string
	// Seeds are the replicate seeds; empty means {Base.Seed}.
	Seeds []uint64
	// Scales is the Scale ladder; empty means {Base.Scale}.
	Scales []int
	// Knobs are further grid dimensions, crossed in order.
	Knobs []Knob
}

// Jobs expands the grid in deterministic order: scales outermost, then knob
// combinations (first knob varying slowest), then seeds innermost.
func (g Grid) Jobs() []Job {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{g.Base.Seed}
	}
	scales := g.Scales
	if len(scales) == 0 {
		scales = []int{g.Base.Scale}
	}
	for _, k := range g.Knobs {
		if len(k.Values) == 0 {
			panic(fmt.Sprintf("sweep: knob %q has no values", k.Name))
		}
	}

	var jobs []Job
	combo := make([]int, len(g.Knobs))
	for _, scale := range scales {
		for {
			cell := g.Name
			params := map[string]string{}
			if len(scales) > 1 {
				part := fmt.Sprintf("scale=%d", scale)
				cell = joinCell(cell, part)
				params["scale"] = fmt.Sprintf("%d", scale)
			}
			for ki, k := range g.Knobs {
				v := k.Values[combo[ki]]
				cell = joinCell(cell, fmt.Sprintf("%s=%s", k.Name, v.Label))
				params[k.Name] = v.Label
			}
			for _, seed := range seeds {
				cfg := g.Base
				cfg.Scale = scale
				cfg.Seed = seed
				for ki, k := range g.Knobs {
					k.Values[combo[ki]].Apply(&cfg)
				}
				p := make(map[string]string, len(params)+1)
				for k, v := range params {
					p[k] = v
				}
				p["seed"] = fmt.Sprintf("%d", seed)
				jobs = append(jobs, Job{
					ID:         joinCell(cell, fmt.Sprintf("seed=%d", seed)),
					Experiment: cell,
					Params:     p,
					Cfg:        cfg,
				})
			}
			if !next(combo, g.Knobs) {
				break
			}
		}
	}
	return jobs
}

// next advances the knob combination odometer (last knob fastest); false
// when the cross product is exhausted.
func next(combo []int, knobs []Knob) bool {
	for i := len(combo) - 1; i >= 0; i-- {
		combo[i]++
		if combo[i] < len(knobs[i].Values) {
			return true
		}
		combo[i] = 0
	}
	return false
}

func joinCell(cell, part string) string {
	if cell == "" {
		return part
	}
	return cell + "/" + part
}

// Replicates is the common single-cell grid: one config, many seeds.
func Replicates(name string, base scenario.Config, seeds ...uint64) []Job {
	return Grid{Base: base, Name: name, Seeds: seeds}.Jobs()
}
