package sweep

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ntpddos/internal/scenario"
)

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		spec string
		want []uint64
		err  bool
	}{
		{spec: "1", want: []uint64{1}},
		{spec: "1-4", want: []uint64{1, 2, 3, 4}},
		{spec: "1,5,9-11", want: []uint64{1, 5, 9, 10, 11}},
		{spec: " 2 , 3 ", want: []uint64{2, 3}},
		{spec: "", err: true},
		{spec: "x", err: true},
		{spec: "5-2", err: true},
		{spec: "1-999999", err: true},
	}
	for _, c := range cases {
		got, err := ParseSeeds(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseSeeds(%q) accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSeeds(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSeeds(%q) = %v, want %v", c.spec, got, c.want)
				break
			}
		}
	}
}

func TestOnOffKnob(t *testing.T) {
	set := func(c *scenario.Config) { c.NoRemediation = true }
	if vals, err := OnOffKnob("off", set); err != nil || vals != nil {
		t.Fatalf("off: %v, %v", vals, err)
	}
	vals, err := OnOffKnob("both", set)
	if err != nil || len(vals) != 2 || vals[0].Label != "off" || vals[1].Label != "on" {
		t.Fatalf("both: %v, %v", vals, err)
	}
	var cfg scenario.Config
	vals[0].Apply(&cfg)
	if cfg.NoRemediation {
		t.Fatal("off value mutated the config")
	}
	vals[1].Apply(&cfg)
	if !cfg.NoRemediation {
		t.Fatal("on value did not mutate the config")
	}
	if _, err := OnOffKnob("maybe", set); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestFloatKnobCapturesEachValue(t *testing.T) {
	vals := FloatKnob([]float64{0.1, 0.5}, func(c *scenario.Config, v float64) {
		c.SpooferFraction = v
	})
	if len(vals) != 2 || vals[0].Label != "0.1" || vals[1].Label != "0.5" {
		t.Fatalf("FloatKnob: %+v", vals)
	}
	var a, b scenario.Config
	vals[0].Apply(&a)
	vals[1].Apply(&b)
	if a.SpooferFraction != 0.1 || b.SpooferFraction != 0.5 {
		t.Fatalf("captured values wrong: %v / %v", a.SpooferFraction, b.SpooferFraction)
	}
}

func TestSpecGridShapes(t *testing.T) {
	base := scenario.TestConfig()
	base.Scale = 2000

	spec := Spec{
		Name:   "sens",
		Seeds:  "1-3",
		Scales: []int{2000, 4000},
		Detect: "both",
		Spoof:  []float64{0.25, 0.5},
	}
	g, err := spec.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Jobs()
	// 3 seeds x 2 scales x detect{off,on} x spoof{0.25,0.5} = 24 jobs.
	if len(jobs) != 24 {
		t.Fatalf("grid expanded %d jobs, want 24", len(jobs))
	}
	if n, err := spec.NumJobs(); err != nil || n != 24 {
		t.Fatalf("NumJobs = %d, %v, want 24", n, err)
	}
	if jobs[0].ID != "sens/scale=2000/detect=off/spoof=0.25/seed=1" {
		t.Fatalf("first job ID = %q", jobs[0].ID)
	}
	for _, j := range jobs {
		switch j.Params["spoof"] {
		case "0.25":
			if j.Cfg.SpooferFraction != 0.25 {
				t.Fatalf("job %s spoof = %v", j.ID, j.Cfg.SpooferFraction)
			}
		case "0.5":
			if j.Cfg.SpooferFraction != 0.5 {
				t.Fatalf("job %s spoof = %v", j.ID, j.Cfg.SpooferFraction)
			}
		default:
			t.Fatalf("job %s missing spoof param", j.ID)
		}
		if (j.Params["detect"] == "on") != (j.Cfg.Detector != nil) {
			t.Fatalf("job %s detector mismatch: %v", j.ID, j.Cfg.Detector)
		}
	}

	// TimeSync is a base setting; TimeAttack expands as a grid dimension.
	g, err = Spec{Seeds: "1", TimeSync: 16, TimeAttack: []float64{0, 0.5}}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	tsJobs := g.Jobs()
	if len(tsJobs) != 2 {
		t.Fatalf("timeattack grid expanded %d jobs, want 2", len(tsJobs))
	}
	for _, j := range tsJobs {
		if j.Cfg.TimeSync.Clients != 16 {
			t.Fatalf("job %s timesync clients = %d", j.ID, j.Cfg.TimeSync.Clients)
		}
	}
	if tsJobs[0].Cfg.TimeAttackShare != 0 || tsJobs[1].Cfg.TimeAttackShare != 0.5 {
		t.Fatalf("timeattack shares: %v / %v",
			tsJobs[0].Cfg.TimeAttackShare, tsJobs[1].Cfg.TimeAttackShare)
	}

	// Spoof 0 means "nobody spoofs", which Config spells as negative.
	g, err = Spec{Seeds: "1", Spoof: []float64{0}}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Jobs()[0].Cfg.SpooferFraction; got >= 0 {
		t.Fatalf("spoof=0 mapped to %v, want negative (disable)", got)
	}

	// Hazard knob lands on RemediationHazard.
	g, err = Spec{Seeds: "1", Hazard: []float64{0.5, 2}}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	jobs = g.Jobs()
	if len(jobs) != 2 || jobs[0].Cfg.RemediationHazard != 0.5 || jobs[1].Cfg.RemediationHazard != 2 {
		t.Fatalf("hazard jobs: %+v", jobs)
	}

	// Scale override and End truncation land on the base config.
	g, err = Spec{Seeds: "1", Scale: 4000, End: "2014-01-17"}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	j := g.Jobs()[0]
	if j.Cfg.Scale != 4000 {
		t.Fatalf("scale override: %d", j.Cfg.Scale)
	}
	if want := time.Date(2014, 1, 17, 0, 0, 0, 0, time.UTC); !j.Cfg.End.Equal(want) {
		t.Fatalf("end truncation: %v", j.Cfg.End)
	}

	// Campaign-shape knobs expand the grid and land on the config.
	g, err = Spec{
		Seeds:   "1",
		Vectors: []string{"dns-any", "ssdp"},
		Pulse:   []float64{0, 0.3},
		Carpet:  []float64{0.2},
		Multi:   []float64{0.1},
	}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	jobs = g.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("campaign grid expanded %d jobs, want 2", len(jobs))
	}
	j = jobs[1]
	if j.ID != "pulse=0.3/carpet=0.2/multi=0.1/seed=1" {
		t.Fatalf("campaign job ID = %q", j.ID)
	}
	if len(j.Cfg.ExtraVectors) != 2 || j.Cfg.ExtraVectors[0] != "dns-any" {
		t.Fatalf("vectors not applied: %v", j.Cfg.ExtraVectors)
	}
	if j.Cfg.PulseWaveShare != 0.3 || j.Cfg.CarpetBombShare != 0.2 || j.Cfg.MultiVectorShare != 0.1 {
		t.Fatalf("shares not applied: %+v", j.Cfg)
	}
	if jobs[0].Cfg.PulseWaveShare != 0 {
		t.Fatalf("pulse=0 cell leaked a share: %v", jobs[0].Cfg.PulseWaveShare)
	}

	// Fault knobs expand the grid and land on Config.Faults.
	g, err = Spec{
		Seeds:    "1",
		Loss:     []float64{0, 0.1},
		Dup:      []float64{0.05},
		Reorder:  []float64{0.02},
		Flap:     []float64{0.25},
		Sample:   []int{1, 16},
		Outage:   []float64{0.5},
		Blackout: []float64{0.3},
	}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	jobs = g.Jobs()
	if len(jobs) != 4 { // loss{0,0.1} x sample{1,16}
		t.Fatalf("fault grid expanded %d jobs, want 4", len(jobs))
	}
	j = jobs[3]
	if j.ID != "loss=0.1/dup=0.05/reorder=0.02/flap=0.25/outage=0.5/blackout=0.3/sample=16/seed=1" {
		t.Fatalf("fault job ID = %q", j.ID)
	}
	f := j.Cfg.Faults
	if f.Loss != 0.1 || f.Dup != 0.05 || f.Reorder != 0.02 || f.FlapRate != 0.25 ||
		f.FlowSampleN != 16 || f.CollectorOutage != 0.5 || f.SensorBlackout != 0.3 {
		t.Fatalf("fault knobs not applied: %+v", f)
	}
	if fz := jobs[0].Cfg.Faults; fz.Loss != 0 || fz.FlowSampleN != 1 {
		t.Fatalf("zero-fault cell leaked: %+v", fz)
	}

	// A spec with no fault knobs leaves Faults zero — the provably-inert path.
	g, err = Spec{Seeds: "1"}.Grid(base)
	if err != nil {
		t.Fatal(err)
	}
	if f := g.Jobs()[0].Cfg.Faults; f.Enabled() {
		t.Fatalf("fault-free spec armed the fault plane: %+v", f)
	}
}

// TestSpecRejectsBadFieldsWithValue walks every validation branch in
// Spec.Grid and ParseSeeds and checks the error names the offending value —
// the contract that makes a rejected daemon job self-explanatory without
// re-reading the submitted spec.
func TestSpecRejectsBadFieldsWithValue(t *testing.T) {
	base := scenario.TestConfig()
	cases := []struct {
		name string
		spec Spec
		want string // offending value, must appear in the error
	}{
		{"seeds empty", Spec{Seeds: ""}, `""`},
		{"seeds garbage", Spec{Seeds: "zz"}, `"zz"`},
		{"seeds inverted range", Spec{Seeds: "5-2"}, `"5-2"`},
		{"seeds huge range", Spec{Seeds: "1-999999"}, `"1-999999"`},
		{"scale negative", Spec{Seeds: "1", Scale: -5}, "-5"},
		{"scales zero entry", Spec{Seeds: "1", Scales: []int{2000, 0}}, "scales[1] 0"},
		{"end not a date", Spec{Seeds: "1", End: "not-a-date"}, `"not-a-date"`},
		{"detect bad word", Spec{Seeds: "1", Detect: "sometimes"}, `"sometimes"`},
		{"noremediation bad word", Spec{Seeds: "1", NoRemediation: "maybe"}, `"maybe"`},
		{"vector unknown", Spec{Seeds: "1", Vectors: []string{"smurf"}}, `"smurf"`},
		{"vector empty", Spec{Seeds: "1", Vectors: []string{""}}, `vectors[0] ""`},
		{"vector monlist redundant", Spec{Seeds: "1", Vectors: []string{"monlist"}}, `"monlist"`},
		{"pulse negative", Spec{Seeds: "1", Pulse: []float64{-0.1}}, "pulse[0] -0.1"},
		{"pulse above one", Spec{Seeds: "1", Pulse: []float64{0.5, 1.5}}, "pulse[1] 1.5"},
		{"carpet negative", Spec{Seeds: "1", Carpet: []float64{-1}}, "carpet[0] -1"},
		{"carpet above one", Spec{Seeds: "1", Carpet: []float64{2}}, "carpet[0] 2"},
		{"multi negative", Spec{Seeds: "1", Multi: []float64{-0.01}}, "multi[0] -0.01"},
		{"multi above one", Spec{Seeds: "1", Multi: []float64{1.01}}, "multi[0] 1.01"},
		{"loss negative", Spec{Seeds: "1", Loss: []float64{-0.1}}, "loss[0] -0.1"},
		{"loss at one", Spec{Seeds: "1", Loss: []float64{0.1, 1}}, "loss[1] 1"},
		{"dup negative", Spec{Seeds: "1", Dup: []float64{-0.5}}, "dup[0] -0.5"},
		{"dup above one", Spec{Seeds: "1", Dup: []float64{1.5}}, "dup[0] 1.5"},
		{"reorder negative", Spec{Seeds: "1", Reorder: []float64{-0.01}}, "reorder[0] -0.01"},
		{"reorder at one", Spec{Seeds: "1", Reorder: []float64{1}}, "reorder[0] 1"},
		{"flap negative", Spec{Seeds: "1", Flap: []float64{-1}}, "flap[0] -1"},
		{"flap at one", Spec{Seeds: "1", Flap: []float64{1}}, "flap[0] 1"},
		{"sample zero", Spec{Seeds: "1", Sample: []int{4, 0}}, "sample[1] 0"},
		{"sample negative", Spec{Seeds: "1", Sample: []int{-2}}, "sample[0] -2"},
		{"outage negative", Spec{Seeds: "1", Outage: []float64{-0.25}}, "outage[0] -0.25"},
		{"outage at one", Spec{Seeds: "1", Outage: []float64{1}}, "outage[0] 1"},
		{"blackout negative", Spec{Seeds: "1", Blackout: []float64{-0.3}}, "blackout[0] -0.3"},
		{"blackout at one", Spec{Seeds: "1", Blackout: []float64{1}}, "blackout[0] 1"},
		{"timesync negative", Spec{Seeds: "1", TimeSync: -4}, "-4"},
		{"timeattack negative", Spec{Seeds: "1", TimeSync: 8, TimeAttack: []float64{-0.5}}, "timeattack[0] -0.5"},
		{"timeattack above one", Spec{Seeds: "1", TimeSync: 8, TimeAttack: []float64{0.5, 1.5}}, "timeattack[1] 1.5"},
		{"timeattack without timesync", Spec{Seeds: "1", TimeAttack: []float64{0.5}}, "timesync"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.spec.Grid(base)
			if err == nil {
				t.Fatalf("spec %+v accepted, want error", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the offending value %q", err, c.want)
			}
		})
	}
}

// TestSpecJSONRoundTrip pins the wire format the daemon accepts: the same
// struct the CLI builds marshals to the documented JSON field names.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := `{"name":"fig3","seeds":"1-4","scale":4000,"end":"2014-01-17","detect":"both","spoof":[0,0.25],"hazard":[0.5,2]}`
	var s Spec
	if err := json.Unmarshal([]byte(in), &s); err != nil {
		t.Fatal(err)
	}
	if s.Name != "fig3" || s.Seeds != "1-4" || s.Scale != 4000 ||
		s.Detect != "both" || len(s.Spoof) != 2 || len(s.Hazard) != 2 {
		t.Fatalf("decoded spec: %+v", s)
	}
	n, err := s.NumJobs()
	if err != nil || n != 4*2*2*2 {
		t.Fatalf("NumJobs = %d, %v, want 32", n, err)
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seeds != s.Seeds || back.Name != s.Name || back.Scale != s.Scale ||
		len(back.Spoof) != len(s.Spoof) || len(back.Hazard) != len(s.Hazard) {
		t.Fatalf("round trip drift: %+v vs %+v", back, s)
	}
}
