// Package sweep is the parallel scenario-sweep engine: it fans a set of
// independent simulation jobs (seed replicates, Scale ladders, parameter
// grids over Config knobs) across a worker pool, streams per-job results
// into cross-run statistics, and emits a digest manifest whose canonical
// bytes are independent of worker count and completion interleaving.
//
// Safety model: every job runs a fully isolated World — its own RNG root,
// its own virtual clock, no mutable state shared with any other job — so
// the only coordination points are the job queue and the result channel.
// The manifest is assembled from results indexed by job position and every
// summary statistic is computed over deterministically ordered values,
// which is what makes the workers=1 and workers=N manifests byte-identical
// (see the determinism-under-parallelism regression in the root package).
//
// The engine is generic over a Runner so the package carries no dependency
// on the experiment layer: the root facade (ntpddos.Sweep) supplies the
// runner that builds a Simulation and digests its tables, while tests
// drive the pool with synthetic runners under -race.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/scenario"
)

// Job is one independent scenario execution.
type Job struct {
	// ID uniquely names the job within a sweep ("scale=2000/seed=3").
	ID string
	// Experiment groups replicate jobs for cross-run aggregation: all jobs
	// sharing an Experiment value land in the same summary cell.
	Experiment string
	// Params records the knob values that define this job, for the manifest.
	Params map[string]string
	// Cfg is the fully specified configuration the runner executes. Jobs
	// must not share mutable state through it (a *metrics.Registry is safe:
	// its writes are atomic and never feed back into simulation state).
	Cfg scenario.Config
}

// Result is what a Runner returns for one completed job.
type Result struct {
	// Digest is the run's report digest — the determinism witness.
	Digest string
	// Values holds named scalar outcomes (final pool size, event counts,
	// precision, ...) aggregated into per-experiment summaries. NaN and ±Inf
	// values are dropped deterministically during collection.
	Values map[string]float64
}

// Runner executes one job. It must be safe for concurrent use: the pool
// calls it from Workers goroutines at once, each with a distinct job.
type Runner func(Job) (Result, error)

// Options tunes a sweep execution. The zero value runs on GOMAXPROCS
// workers without instrumentation.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Metrics, when non-nil, attaches live instrumentation (jobs started /
	// completed / failed, busy workers, per-job wall-time histogram).
	Metrics *Metrics
	// Log, when non-nil, receives one progress line per completed job.
	// Completion order is nondeterministic; nothing logged here may feed
	// back into the manifest.
	Log func(format string, args ...any)
	// Progress, when non-nil, is called from the collector goroutine after
	// each job lands with the running completed count and the job total —
	// the hook the serving layer uses to stream per-job progress. Calls are
	// sequential; nothing observed here may feed back into the manifest.
	Progress func(completed, total int)
	// OnResult, when non-nil, is called from the collector goroutine with
	// each landed record (precompleted slots excluded), in completion order.
	// Calls are sequential; the serving layer appends them to its crash-safe
	// checkpoint. Nothing observed here may feed back into the manifest.
	OnResult func(idx int, rec JobRecord)

	// MaxRetries is how many times a failed job (runner error or panic) is
	// re-executed before its error lands in the manifest. Worlds are fully
	// isolated, so a retry is simply a fresh run; a job that succeeds on
	// attempt k records Retries = k-1. 0 disables retries.
	MaxRetries int
	// RetryDelay is the backoff before the first retry; it doubles per
	// subsequent attempt and is capped at 30s. 0 retries immediately.
	RetryDelay time.Duration
	// Sleep replaces time.Sleep for backoff waits (tests inject a recorder).
	Sleep func(time.Duration)

	// Precompleted seeds manifest slots with already-finished records (by
	// job index): those jobs are never dispatched and count as completed
	// from the start. This is the resume half of the serving layer's
	// checkpointing — a restarted sweep re-runs only what is missing. Each
	// record's ID must match the job at its index.
	Precompleted map[int]JobRecord
}

// Metrics is the sweep engine's live instrumentation.
type Metrics struct {
	JobsStarted   *metrics.Counter
	JobsCompleted *metrics.Counter
	JobsFailed    *metrics.Counter
	JobsRetried   *metrics.Counter
	WorkersBusy   *metrics.Gauge
	JobSeconds    *metrics.Histogram
}

// NewMetrics registers the sweep family on r (nil r yields no-op metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		JobsStarted: r.NewCounter("ntpsweep_jobs_started_total",
			"Sweep jobs handed to a worker."),
		JobsCompleted: r.NewCounter("ntpsweep_jobs_completed_total",
			"Sweep jobs that finished, successfully or not."),
		JobsFailed: r.NewCounter("ntpsweep_jobs_failed_total",
			"Sweep jobs whose runner returned an error or panicked."),
		JobsRetried: r.NewCounter("ntpsweep_jobs_retried_total",
			"Re-executions of failed sweep jobs."),
		WorkersBusy: r.NewGauge("ntpsweep_workers_busy",
			"Workers currently executing a job."),
		JobSeconds: r.NewHistogram("ntpsweep_job_wall_seconds",
			"Wall-clock seconds per completed job.",
			metrics.ExponentialBuckets(0.5, 2, 12)),
	}
}

// done carries one finished job from a worker to the collector.
type done struct {
	idx  int
	rec  JobRecord
	wall time.Duration
}

// ErrCanceled wraps the context error RunContext returns alongside a
// partial manifest when the sweep is interrupted before every job ran.
var ErrCanceled = errors.New("sweep canceled")

// Run executes jobs on a worker pool and returns the completed manifest.
// It fails fast on malformed input (nil runner, empty/duplicate job IDs);
// per-job runner errors and panics are captured in the corresponding
// JobRecord instead of aborting the sweep.
func Run(jobs []Job, run Runner, opt Options) (*Manifest, error) {
	return RunContext(context.Background(), jobs, run, opt)
}

// RunContext is Run with cancellation: when ctx is canceled, no further
// queued job is dispatched — jobs already executing finish (a world cannot
// be interrupted mid-timeline without losing determinism) and land in the
// manifest as usual, while never-started jobs are recorded with a canceled
// error. In that case the partial manifest is returned together with an
// error wrapping both ErrCanceled and ctx's cause, so callers can persist
// the partial result and still distinguish interruption from bad input.
func RunContext(ctx context.Context, jobs []Job, run Runner, opt Options) (*Manifest, error) {
	if run == nil {
		return nil, errors.New("sweep: nil runner")
	}
	seen := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("sweep: job %d has no ID", i)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("sweep: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
	for idx, rec := range opt.Precompleted {
		if idx < 0 || idx >= len(jobs) {
			return nil, fmt.Errorf("sweep: precompleted index %d out of range", idx)
		}
		if rec.ID != jobs[idx].ID {
			return nil, fmt.Errorf("sweep: precompleted record %d is %q, job is %q",
				idx, rec.ID, jobs[idx].ID)
		}
	}
	remaining := len(jobs) - len(opt.Precompleted)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > remaining {
		workers = remaining
	}
	if workers < 1 {
		workers = 1
	}

	queue := make(chan int)
	out := make(chan done)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				out <- execute(jobs[idx], idx, run, opt)
			}
		}()
	}
	go func() {
		// The dispatcher is the single cancellation point: once ctx is done
		// it stops feeding the queue, workers drain whatever they already
		// picked up, and the collector below fills the never-dispatched
		// slots. In-flight jobs are never killed — isolation means the only
		// thing cancellation can skip is work not yet started.
		for i := range jobs {
			if _, pre := opt.Precompleted[i]; pre {
				continue
			}
			select {
			case queue <- i:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		close(queue)
		wg.Wait()
		close(out)
	}()

	// Streaming collection: results are consumed as workers finish (worlds
	// are released immediately; progress and timing observe real completion
	// order) but land in their job slot, so everything the manifest derives
	// from them is interleaving-independent.
	m := &Manifest{
		Workers: workers,
		Jobs:    make([]JobRecord, len(jobs)),
		timings: make(map[string]time.Duration, len(jobs)),
	}
	completed := 0
	for idx, rec := range opt.Precompleted {
		rec.Index = idx
		m.Jobs[idx] = rec
		completed++
	}
	for d := range out {
		m.Jobs[d.idx] = d.rec
		m.timings[d.rec.ID] = d.wall
		completed++
		if opt.OnResult != nil {
			opt.OnResult(d.idx, d.rec)
		}
		if opt.Log != nil {
			status := "ok"
			if d.rec.Err != "" {
				status = "FAILED: " + d.rec.Err
			}
			opt.Log("[%d/%d] %s (%.1fs) %s", completed, len(jobs), d.rec.ID,
				d.wall.Seconds(), status)
		}
		if opt.Progress != nil {
			opt.Progress(completed, len(jobs))
		}
	}
	// Fill the slots of jobs the dispatcher never handed out: they carry a
	// canceled error so the partial manifest stays self-describing.
	skipped := 0
	if err := ctx.Err(); err != nil {
		for i := range m.Jobs {
			if m.Jobs[i].ID != "" {
				continue
			}
			skipped++
			m.Jobs[i] = JobRecord{
				Index:      i,
				ID:         jobs[i].ID,
				Experiment: jobs[i].Experiment,
				Params:     jobs[i].Params,
				Seed:       jobs[i].Cfg.Seed,
				Scale:      jobs[i].Cfg.Scale,
				Err:        fmt.Sprintf("canceled before start: %v", err),
			}
		}
	}
	m.summarize()
	if skipped > 0 {
		return m, fmt.Errorf("%w: %d of %d jobs unrun: %w",
			ErrCanceled, skipped, len(jobs), context.Cause(ctx))
	}
	return m, nil
}

// maxBackoff caps the doubling retry delay.
const maxBackoff = 30 * time.Second

// backoff returns the wait before retry number n (1-based): RetryDelay
// doubled per prior retry, capped at maxBackoff.
func backoff(base time.Duration, n int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= maxBackoff {
			return maxBackoff
		}
	}
	if d > maxBackoff {
		return maxBackoff
	}
	return d
}

// execute runs one job — retrying failures up to opt.MaxRetries times with
// capped exponential backoff — and translates errors and panics into the
// record. Worlds are isolated, so a retry is simply a fresh run.
func execute(j Job, idx int, run Runner, opt Options) done {
	m := opt.Metrics
	if m != nil {
		m.JobsStarted.Inc()
		m.WorkersBusy.Inc()
	}
	sleep := opt.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	start := time.Now()
	var res Result
	var err error
	retries := 0
	for attempt := 0; ; attempt++ {
		res, err = runSafely(run, j)
		if err == nil || attempt >= opt.MaxRetries {
			break
		}
		retries++
		if m != nil {
			m.JobsRetried.Inc()
		}
		if d := backoff(opt.RetryDelay, retries); d > 0 {
			sleep(d)
		}
	}
	wall := time.Since(start)
	if m != nil {
		m.WorkersBusy.Dec()
		m.JobsCompleted.Inc()
		if err != nil {
			m.JobsFailed.Inc()
		}
		m.JobSeconds.Observe(wall.Seconds())
	}
	rec := JobRecord{
		Index:      idx,
		ID:         j.ID,
		Experiment: j.Experiment,
		Params:     j.Params,
		Seed:       j.Cfg.Seed,
		Scale:      j.Cfg.Scale,
		Retries:    retries,
	}
	if err != nil {
		rec.Err = err.Error()
		return done{idx: idx, rec: rec, wall: wall}
	}
	rec.Digest = res.Digest
	rec.Values = finiteValues(res.Values)
	return done{idx: idx, rec: rec, wall: wall}
}

// runSafely invokes the runner, converting a panic into an error so one
// broken job cannot take down a hundred-job sweep.
func runSafely(run Runner, j Job) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return run(j)
}

// finiteValues drops NaN/Inf entries — they would poison both the JSON
// encoding and the summary statistics — and copies the rest.
func finiteValues(in map[string]float64) map[string]float64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]float64, len(in))
	for k, v := range in {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out[k] = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
