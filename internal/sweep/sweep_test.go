package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ntpddos/internal/metrics"
	"ntpddos/internal/scenario"
)

// fakeJobs builds n jobs with distinct IDs and seeds (no scenario run is
// ever executed by these tests; runners are synthetic).
func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := scenario.TestConfig()
		cfg.Seed = uint64(i + 1)
		jobs[i] = Job{
			ID:         fmt.Sprintf("job-%02d", i),
			Experiment: fmt.Sprintf("cell-%d", i%3),
			Params:     map[string]string{"seed": fmt.Sprintf("%d", i+1)},
			Cfg:        cfg,
		}
	}
	return jobs
}

// fakeRunner derives a deterministic digest and value set from the job
// itself, with a per-job busy-wait so completion order genuinely varies
// between pool sizes.
func fakeRunner(j Job) (Result, error) {
	sum := sha256.Sum256([]byte(j.ID))
	// Jitter completion order: later jobs finish sooner on a wide pool.
	time.Sleep(time.Duration(sum[0]%8) * time.Millisecond)
	return Result{
		Digest: hex.EncodeToString(sum[:]),
		Values: map[string]float64{
			"seed":  float64(j.Cfg.Seed),
			"third": float64(j.Cfg.Seed) / 3.0, // non-terminating binary fraction
		},
	}, nil
}

func TestRunExecutesAllJobs(t *testing.T) {
	jobs := fakeJobs(10)
	m, err := Run(jobs, fakeRunner, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 10 {
		t.Fatalf("manifest has %d jobs, want 10", len(m.Jobs))
	}
	for i, rec := range m.Jobs {
		if rec.ID != jobs[i].ID {
			t.Fatalf("job %d out of order: got %q want %q", i, rec.ID, jobs[i].ID)
		}
		if rec.Index != i || rec.Err != "" || rec.Digest == "" {
			t.Fatalf("bad record %d: %+v", i, rec)
		}
		if rec.Seed != jobs[i].Cfg.Seed {
			t.Fatalf("job %d seed %d, want %d", i, rec.Seed, jobs[i].Cfg.Seed)
		}
		if m.WallTime(rec.ID) < 0 {
			t.Fatalf("job %d has no wall time", i)
		}
	}
	if len(m.Failed()) != 0 {
		t.Fatalf("unexpected failures: %v", m.Failed())
	}
}

// TestManifestInterleavingIndependence is the in-package half of the
// determinism-under-parallelism wall: the same job set executed on pools of
// 1, 2, 3 and 8 workers must produce byte-identical canonical manifests,
// even though completion interleaving differs every time. Float summary
// accumulation in arrival order would fail this (float addition is not
// associative); so would any map-iteration output path. Run under -race
// this also exercises the queue/collector synchronization.
func TestManifestInterleavingIndependence(t *testing.T) {
	jobs := fakeJobs(24)
	var want []byte
	var wantDigest string
	for _, workers := range []int{1, 2, 3, 8} {
		m, err := Run(jobs, fakeRunner, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := m.CanonicalJSON()
		if want == nil {
			want, wantDigest = got, m.Digest()
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d canonical manifest differs from workers=1:\n%s\nvs\n%s",
				workers, got, want)
		}
		if m.Digest() != wantDigest {
			t.Fatalf("workers=%d manifest digest %s, want %s", workers, m.Digest(), wantDigest)
		}
	}
	if !strings.Contains(string(want), `"job-00"`) {
		t.Fatalf("canonical manifest missing job records:\n%s", want)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Run(fakeJobs(1), nil, Options{}); err == nil {
		t.Fatal("nil runner accepted")
	}
	jobs := fakeJobs(2)
	jobs[1].ID = jobs[0].ID
	if _, err := Run(jobs, fakeRunner, Options{}); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	jobs[1].ID = ""
	if _, err := Run(jobs, fakeRunner, Options{}); err == nil {
		t.Fatal("empty job ID accepted")
	}
	m, err := Run(nil, fakeRunner, Options{})
	if err != nil || len(m.Jobs) != 0 {
		t.Fatalf("empty job set: manifest %+v err %v", m, err)
	}
}

func TestErrorsAndPanicsCaptured(t *testing.T) {
	jobs := fakeJobs(4)
	runner := func(j Job) (Result, error) {
		switch j.ID {
		case "job-01":
			return Result{}, errors.New("boom")
		case "job-02":
			panic("kaboom")
		}
		return fakeRunner(j)
	}
	m, err := Run(jobs, runner, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	failed := m.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %v, want job-01 and job-02", failed)
	}
	if m.Jobs[1].Err != "boom" || !strings.Contains(m.Jobs[2].Err, "kaboom") {
		t.Fatalf("errors not captured: %q / %q", m.Jobs[1].Err, m.Jobs[2].Err)
	}
	// Failed jobs contribute nothing to the summaries: cell-1 and cell-2
	// lost their only replicate (job-01, job-02), so only cell-0 remains.
	for _, g := range m.Groups {
		if g.Experiment != "cell-0" {
			t.Fatalf("failed job leaked into summary: %+v", g)
		}
		if g.N != 2 {
			t.Fatalf("cell-0 summarised %d replicates, want 2 (job-00, job-03): %+v", g.N, g)
		}
	}
}

func TestNonFiniteValuesDropped(t *testing.T) {
	jobs := fakeJobs(2)
	runner := func(j Job) (Result, error) {
		return Result{Digest: "d", Values: map[string]float64{
			"ok":  1.5,
			"nan": math.NaN(),
			"inf": math.Inf(1),
		}}, nil
	}
	m, err := Run(jobs, runner, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range m.Jobs {
		if _, ok := rec.Values["nan"]; ok {
			t.Fatal("NaN survived collection")
		}
		if _, ok := rec.Values["inf"]; ok {
			t.Fatal("Inf survived collection")
		}
		if rec.Values["ok"] != 1.5 {
			t.Fatalf("finite value mangled: %v", rec.Values)
		}
	}
	// The canonical form must be encodable (json.Marshal rejects NaN).
	if len(m.CanonicalJSON()) == 0 {
		t.Fatal("empty canonical JSON")
	}
}

func TestGroupSummaries(t *testing.T) {
	base := scenario.TestConfig()
	grid := Grid{Base: base, Name: "g", Seeds: []uint64{1, 2, 3, 4, 5}}
	runner := func(j Job) (Result, error) {
		return Result{Digest: "d" + j.ID,
			Values: map[string]float64{"v": float64(j.Cfg.Seed) * 10}}, nil
	}
	m, err := Run(grid.Jobs(), runner, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Groups) != 1 {
		t.Fatalf("groups = %+v, want one (g, v) cell", m.Groups)
	}
	g := m.Groups[0]
	if g.Experiment != "g" || g.Metric != "v" || g.N != 5 {
		t.Fatalf("bad group identity: %+v", g)
	}
	if g.Min != 10 || g.Median != 30 || g.Max != 50 || g.Mean != 30 {
		t.Fatalf("bad spread stats: %+v", g)
	}
	tab := m.GroupTable()
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "g" {
		t.Fatalf("group table: %v", tab.Rows)
	}
	jt := m.JobTable()
	if len(jt.Rows) != 5 || jt.CSV() == "" {
		t.Fatalf("job table: %v", jt.Rows)
	}
}

func TestMetricsInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	sm := NewMetrics(reg)
	jobs := fakeJobs(6)
	runner := func(j Job) (Result, error) {
		if j.ID == "job-05" {
			return Result{}, errors.New("nope")
		}
		return fakeRunner(j)
	}
	if _, err := Run(jobs, runner, Options{Workers: 3, Metrics: sm}); err != nil {
		t.Fatal(err)
	}
	if got := sm.JobsStarted.Value(); got != 6 {
		t.Fatalf("jobs started = %d, want 6", got)
	}
	if got := sm.JobsCompleted.Value(); got != 6 {
		t.Fatalf("jobs completed = %d, want 6", got)
	}
	if got := sm.JobsFailed.Value(); got != 1 {
		t.Fatalf("jobs failed = %d, want 1", got)
	}
	if got := sm.WorkersBusy.Value(); got != 0 {
		t.Fatalf("workers busy after drain = %v, want 0", got)
	}
	if got := sm.JobSeconds.Count(); got != 6 {
		t.Fatalf("wall histogram count = %d, want 6", got)
	}
	text := reg.RenderText()
	if !strings.Contains(text, "ntpsweep_jobs_started_total") {
		t.Fatalf("exposition missing sweep family:\n%s", text)
	}
}

// TestRunContextCancelSkipsQueuedJobs pins the cancellation contract: jobs
// already handed to a worker finish and land in the manifest; jobs the
// dispatcher never handed out are recorded as canceled, and the error wraps
// both ErrCanceled and the context cause.
func TestRunContextCancelSkipsQueuedJobs(t *testing.T) {
	jobs := fakeJobs(8)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan string, len(jobs))
	release := make(chan struct{})
	runner := func(j Job) (Result, error) {
		started <- j.ID
		<-release
		return fakeRunner(j)
	}
	done := make(chan struct{})
	var m *Manifest
	var err error
	go func() {
		defer close(done)
		m, err = RunContext(ctx, jobs, runner, Options{Workers: 2})
	}()
	// Wait until both workers hold a job, then cancel and release them.
	<-started
	<-started
	cancel()
	close(release)
	<-done

	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	completed, skipped := 0, 0
	for i, rec := range m.Jobs {
		if rec.ID != jobs[i].ID {
			t.Fatalf("record %d has ID %q, want %q (canceled slots must keep identity)", i, rec.ID, jobs[i].ID)
		}
		switch {
		case rec.Digest != "":
			completed++
		case strings.Contains(rec.Err, "canceled before start"):
			skipped++
		default:
			t.Fatalf("record %d neither completed nor canceled: %+v", i, rec)
		}
	}
	if completed < 2 || skipped == 0 || completed+skipped != len(jobs) {
		t.Fatalf("completed %d skipped %d of %d", completed, skipped, len(jobs))
	}
	// The partial manifest must still be canonical-encodable and summarized.
	if len(m.CanonicalJSON()) == 0 {
		t.Fatal("partial manifest not encodable")
	}
}

// TestRunContextProgressHook pins the Progress callback: monotone completed
// counts, constant total, one call per landed job.
func TestRunContextProgressHook(t *testing.T) {
	jobs := fakeJobs(6)
	var calls []int
	opt := Options{Workers: 3, Progress: func(completed, total int) {
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
		calls = append(calls, completed)
	}}
	if _, err := Run(jobs, fakeRunner, opt); err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(jobs) {
		t.Fatalf("progress called %d times, want %d", len(calls), len(jobs))
	}
	for i, c := range calls {
		if c != i+1 {
			t.Fatalf("progress sequence %v not monotone", calls)
		}
	}
}

// TestRunContextCompletedBeforeCancel: a context canceled only after every
// job was dispatched yields a complete manifest and a nil error.
func TestRunContextCompletedBeforeCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := fakeJobs(4)
	m, err := RunContext(ctx, jobs, fakeRunner, Options{Workers: 2})
	cancel()
	if err != nil {
		t.Fatalf("uncanceled run returned %v", err)
	}
	if len(m.Failed()) != 0 {
		t.Fatalf("failures: %v", m.Failed())
	}
}

// TestRetriesHealFlakyJobs pins the self-healing contract: a job failing
// (or panicking) on its first attempts succeeds within MaxRetries, records
// its retry count, and backs off with capped doubling delays via the
// injected sleeper. A job that exhausts its budget lands with its error.
func TestRetriesHealFlakyJobs(t *testing.T) {
	jobs := fakeJobs(4)
	var mu sync.Mutex
	attempts := map[string]int{}
	var slept []time.Duration
	runner := func(j Job) (Result, error) {
		mu.Lock()
		attempts[j.ID]++
		n := attempts[j.ID]
		mu.Unlock()
		switch j.ID {
		case "job-01": // heals on attempt 3
			if n < 3 {
				return Result{}, fmt.Errorf("flaky attempt %d", n)
			}
		case "job-02": // panics once, heals on attempt 2
			if n < 2 {
				panic("transient")
			}
		case "job-03": // never heals
			return Result{}, errors.New("hard failure")
		}
		return fakeRunner(j)
	}
	reg := metrics.NewRegistry()
	sm := NewMetrics(reg)
	m, err := Run(jobs, runner, Options{
		Workers: 1, MaxRetries: 2, RetryDelay: time.Millisecond, Metrics: sm,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRetries := []int{0, 2, 1, 2}
	for i, rec := range m.Jobs {
		if rec.Retries != wantRetries[i] {
			t.Fatalf("job %d retries = %d, want %d (%+v)", i, rec.Retries, wantRetries[i], rec)
		}
	}
	if m.Jobs[1].Err != "" || m.Jobs[2].Err != "" {
		t.Fatalf("healed jobs kept errors: %q / %q", m.Jobs[1].Err, m.Jobs[2].Err)
	}
	if m.Jobs[3].Err != "hard failure" {
		t.Fatalf("exhausted job error = %q", m.Jobs[3].Err)
	}
	if got := sm.JobsRetried.Value(); got != 5 {
		t.Fatalf("jobs retried metric = %d, want 5", got)
	}
	if got := sm.JobsFailed.Value(); got != 1 {
		t.Fatalf("jobs failed metric = %d, want 1 (only the exhausted job)", got)
	}
	// Workers=1 runs jobs in order; each job's backoff restarts at the base
	// and doubles: job-01 sleeps 1ms,2ms; job-02 1ms; job-03 1ms,2ms.
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond,
		time.Millisecond,
		time.Millisecond, 2 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestBackoffCaps(t *testing.T) {
	if d := backoff(0, 5); d != 0 {
		t.Fatalf("zero base slept %v", d)
	}
	if d := backoff(time.Second, 1); d != time.Second {
		t.Fatalf("first retry = %v, want 1s", d)
	}
	if d := backoff(time.Second, 4); d != 8*time.Second {
		t.Fatalf("fourth retry = %v, want 8s", d)
	}
	if d := backoff(time.Second, 40); d != maxBackoff {
		t.Fatalf("deep retry = %v, want cap %v", d, maxBackoff)
	}
	if d := backoff(time.Minute, 1); d != maxBackoff {
		t.Fatalf("huge base = %v, want cap %v", d, maxBackoff)
	}
}

// TestPrecompletedSkipsAndMatchesCleanRun pins the resume contract: slots
// seeded from a checkpoint are never re-dispatched, count as completed from
// the start, and the resumed manifest is byte-identical to an uninterrupted
// run of the same job set.
func TestPrecompletedSkipsAndMatchesCleanRun(t *testing.T) {
	jobs := fakeJobs(8)
	clean, err := Run(jobs, fakeRunner, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pre := map[int]JobRecord{0: clean.Jobs[0], 3: clean.Jobs[3], 7: clean.Jobs[7]}
	var mu sync.Mutex
	ran := map[string]bool{}
	counting := func(j Job) (Result, error) {
		mu.Lock()
		ran[j.ID] = true
		mu.Unlock()
		return fakeRunner(j)
	}
	var progress []int
	resumed, err := Run(jobs, counting, Options{
		Workers: 2, Precompleted: pre,
		Progress: func(completed, total int) {
			if total != len(jobs) {
				t.Errorf("progress total = %d, want %d", total, len(jobs))
			}
			progress = append(progress, completed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for idx := range pre {
		if ran[jobs[idx].ID] {
			t.Fatalf("precompleted job %q was re-dispatched", jobs[idx].ID)
		}
	}
	if len(ran) != len(jobs)-len(pre) {
		t.Fatalf("ran %d jobs, want %d", len(ran), len(jobs)-len(pre))
	}
	if string(resumed.CanonicalJSON()) != string(clean.CanonicalJSON()) {
		t.Fatalf("resumed manifest differs from clean run:\n%s\nvs\n%s",
			resumed.CanonicalJSON(), clean.CanonicalJSON())
	}
	// Progress starts past the precompleted count and reaches the total.
	if len(progress) != len(jobs)-len(pre) || progress[0] != len(pre)+1 ||
		progress[len(progress)-1] != len(jobs) {
		t.Fatalf("progress sequence %v", progress)
	}
}

func TestPrecompletedValidation(t *testing.T) {
	jobs := fakeJobs(2)
	_, err := Run(jobs, fakeRunner, Options{
		Precompleted: map[int]JobRecord{5: {ID: "job-05"}},
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range precompleted index accepted: %v", err)
	}
	_, err = Run(jobs, fakeRunner, Options{
		Precompleted: map[int]JobRecord{0: {ID: "not-this-job"}},
	})
	if err == nil || !strings.Contains(err.Error(), "not-this-job") {
		t.Fatalf("mismatched precompleted record accepted: %v", err)
	}
}

// TestOnResultStreamsLandedRecords pins the checkpoint feed: one sequential
// call per executed job (precompleted slots excluded) carrying the record
// that landed in the manifest.
func TestOnResultStreamsLandedRecords(t *testing.T) {
	jobs := fakeJobs(6)
	pre := map[int]JobRecord{2: {Index: 2, ID: "job-02", Digest: "cached"}}
	got := map[int]JobRecord{}
	m, err := Run(jobs, fakeRunner, Options{
		Workers: 3, Precompleted: pre,
		OnResult: func(idx int, rec JobRecord) { got[idx] = rec },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("OnResult called for %d jobs, want 5", len(got))
	}
	if _, ok := got[2]; ok {
		t.Fatal("OnResult fired for a precompleted slot")
	}
	for idx, rec := range got {
		if m.Jobs[idx].Digest != rec.Digest || rec.ID != jobs[idx].ID {
			t.Fatalf("OnResult record %d diverges from manifest: %+v vs %+v",
				idx, rec, m.Jobs[idx])
		}
	}
}

// burn spins real CPU (hashing) for roughly the asked duration's worth of
// work, calibrated in iterations rather than wall time so contention slows
// it down honestly (a time.Sleep would parallelize perfectly and prove
// nothing).
func burn(iters int) [32]byte {
	var h [32]byte
	binary.BigEndian.PutUint64(h[:8], uint64(iters))
	for i := 0; i < iters; i++ {
		h = sha256.Sum256(h[:])
	}
	return h
}

// TestParallelSpeedup pins that the pool actually runs jobs concurrently:
// 8 CPU-bound replicates on a 4-worker pool must beat the serial pool by a
// comfortable margin. The scenario-level speedup (the ≥3× acceptance bar on
// a 4-core runner) is measured by BenchmarkSweepReplicates in the root
// package; this synthetic version is load-independent enough to assert in
// every CI run.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup bound (have %d)", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	jobs := fakeJobs(8)
	runner := func(j Job) (Result, error) {
		h := burn(400_000)
		return Result{Digest: hex.EncodeToString(h[:])}, nil
	}
	measure := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Run(jobs, runner, Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(4) // warm up
	serial := measure(1)
	parallel := measure(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, 4 workers %v: %.2fx", serial, parallel, speedup)
	if speedup < 2.5 {
		t.Fatalf("4-worker pool only %.2fx faster than serial (serial %v, parallel %v)",
			speedup, serial, parallel)
	}
}
