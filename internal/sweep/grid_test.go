package sweep

import (
	"testing"

	"ntpddos/internal/scenario"
)

func TestGridCrossProduct(t *testing.T) {
	base := scenario.TestConfig()
	g := Grid{
		Base:   base,
		Name:   "sens",
		Seeds:  []uint64{1, 2, 3},
		Scales: []int{2000, 4000},
		Knobs: []Knob{{
			Name: "detect",
			Values: []KnobValue{
				{Label: "off", Apply: func(*scenario.Config) {}},
				{Label: "on", Apply: func(c *scenario.Config) { c.FabricAttackDivisor = 99 }},
			},
		}},
	}
	jobs := g.Jobs()
	if len(jobs) != 2*2*3 {
		t.Fatalf("expanded %d jobs, want 12", len(jobs))
	}
	ids := map[string]bool{}
	for _, j := range jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %q", j.ID)
		}
		ids[j.ID] = true
	}
	// Deterministic order: scale slowest, then knob, then seed.
	first := jobs[0]
	if first.ID != "sens/scale=2000/detect=off/seed=1" {
		t.Fatalf("first job ID = %q", first.ID)
	}
	if first.Experiment != "sens/scale=2000/detect=off" {
		t.Fatalf("first experiment = %q", first.Experiment)
	}
	if first.Params["scale"] != "2000" || first.Params["detect"] != "off" || first.Params["seed"] != "1" {
		t.Fatalf("first params = %v", first.Params)
	}
	last := jobs[len(jobs)-1]
	if last.ID != "sens/scale=4000/detect=on/seed=3" {
		t.Fatalf("last job ID = %q", last.ID)
	}
	// The knob mutation lands only on its own cell's configs.
	for _, j := range jobs {
		want := base.FabricAttackDivisor
		if j.Params["detect"] == "on" {
			want = 99
		}
		if j.Cfg.FabricAttackDivisor != want {
			t.Fatalf("job %s divisor %d, want %d", j.ID, j.Cfg.FabricAttackDivisor, want)
		}
		if j.Cfg.Seed == 0 || j.Cfg.Scale == 0 {
			t.Fatalf("job %s missing seed/scale: %+v", j.ID, j.Cfg)
		}
	}
	// Replicates of one cell share the Experiment key (3 seeds per cell).
	cells := map[string]int{}
	for _, j := range jobs {
		cells[j.Experiment]++
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %v, want 4", cells)
	}
	for cell, n := range cells {
		if n != 3 {
			t.Fatalf("cell %s has %d replicates, want 3", cell, n)
		}
	}
}

func TestGridDefaults(t *testing.T) {
	base := scenario.TestConfig()
	base.Seed = 7
	jobs := Grid{Base: base}.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("bare grid expanded %d jobs, want 1", len(jobs))
	}
	if jobs[0].Cfg.Seed != 7 || jobs[0].Cfg.Scale != base.Scale {
		t.Fatalf("bare grid lost base config: %+v", jobs[0].Cfg)
	}
	if jobs[0].ID != "seed=7" {
		t.Fatalf("bare grid job ID = %q", jobs[0].ID)
	}
}

func TestReplicates(t *testing.T) {
	base := scenario.TestConfig()
	jobs := Replicates("rep", base, 5, 6, 7)
	if len(jobs) != 3 {
		t.Fatalf("replicates = %d, want 3", len(jobs))
	}
	for i, j := range jobs {
		if j.Cfg.Seed != uint64(5+i) {
			t.Fatalf("replicate %d seed %d", i, j.Cfg.Seed)
		}
		if j.Experiment != "rep" {
			t.Fatalf("replicate %d experiment %q", i, j.Experiment)
		}
	}
}
