package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"ntpddos/internal/report"
	"ntpddos/internal/stats"
)

// JobRecord is one job's deterministic outcome in the manifest.
type JobRecord struct {
	Index      int                `json:"index"`
	ID         string             `json:"id"`
	Experiment string             `json:"experiment,omitempty"`
	Params     map[string]string  `json:"params,omitempty"`
	Seed       uint64             `json:"seed"`
	Scale      int                `json:"scale"`
	Digest     string             `json:"digest,omitempty"`
	Values     map[string]float64 `json:"values,omitempty"`
	Err        string             `json:"error,omitempty"`
	// Retries counts re-executions this record absorbed before landing.
	// omitempty keeps clean-run manifests byte-identical to the pre-retry
	// format; a deterministic runner fails (and so retries) identically at
	// every worker count, preserving the parallelism-invariance pin.
	Retries int `json:"retries,omitempty"`
}

// GroupSummary is the cross-run spread of one metric within one experiment
// cell: the five-number summary plus the mean, over every successful
// replicate that reported the metric.
type GroupSummary struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	N          int     `json:"n"`
	Min        float64 `json:"min"`
	Q1         float64 `json:"q1"`
	Median     float64 `json:"median"`
	Q3         float64 `json:"q3"`
	Max        float64 `json:"max"`
	Mean       float64 `json:"mean"`
}

// Manifest is a completed sweep: per-job records in job order plus
// per-experiment summaries. Its canonical JSON excludes everything
// execution-dependent (worker count, wall times), so two sweeps over the
// same job set produce byte-identical canonical forms regardless of
// parallelism — the property the determinism regression pins.
type Manifest struct {
	// Workers is the pool size that executed the sweep (not part of the
	// canonical form).
	Workers int            `json:"-"`
	Jobs    []JobRecord    `json:"jobs"`
	Groups  []GroupSummary `json:"groups,omitempty"`

	// timings holds per-job wall time by ID — observability only, never
	// serialized into the canonical form.
	timings map[string]time.Duration
}

// summarize builds the per-experiment spread statistics from the job
// records, iterating strictly in job order so float accumulation is
// reproducible.
func (m *Manifest) summarize() {
	values := map[string]map[string][]float64{} // experiment -> metric -> values
	for _, rec := range m.Jobs {
		if rec.Err != "" {
			continue
		}
		exp := rec.Experiment
		if values[exp] == nil {
			values[exp] = map[string][]float64{}
		}
		for k, v := range rec.Values {
			values[exp][k] = append(values[exp][k], v)
		}
	}
	m.Groups = m.Groups[:0]
	for _, exp := range sortedKeys(values) {
		for _, metric := range sortedKeys(values[exp]) {
			box := stats.NewBoxPlot(values[exp][metric])
			m.Groups = append(m.Groups, GroupSummary{
				Experiment: exp, Metric: metric, N: box.N,
				Min: box.Min, Q1: box.Q1, Median: box.Median,
				Q3: box.Q3, Max: box.Max, Mean: box.Mean,
			})
		}
	}
}

// CanonicalJSON renders the deterministic manifest form: job records in job
// order, group summaries in (experiment, metric) order, map keys sorted by
// the encoder. Two executions of the same job set yield identical bytes
// whatever the worker count or completion interleaving.
func (m *Manifest) CanonicalJSON() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		// All field types are JSON-encodable and non-finite floats are
		// dropped at collection; an error here is a program bug.
		panic(fmt.Sprintf("sweep: manifest encoding failed: %v", err))
	}
	return append(b, '\n')
}

// Digest returns the sha256 of the canonical JSON — one string to compare
// across serial, parallel, and re-run executions.
func (m *Manifest) Digest() string {
	sum := sha256.Sum256(m.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// Failed returns the records whose runner errored.
func (m *Manifest) Failed() []JobRecord {
	var out []JobRecord
	for _, rec := range m.Jobs {
		if rec.Err != "" {
			out = append(out, rec)
		}
	}
	return out
}

// JobTable renders per-job records: id, experiment, seed, scale, digest,
// error, then one column per metric (sorted union across jobs). CSV comes
// free via Table.CSV.
func (m *Manifest) JobTable() *report.Table {
	metricSet := map[string]bool{}
	for _, rec := range m.Jobs {
		for k := range rec.Values {
			metricSet[k] = true
		}
	}
	metricCols := sortedKeys(metricSet)
	t := &report.Table{ID: "sweep", Title: "Sweep jobs",
		Headers: append([]string{"id", "experiment", "seed", "scale", "digest", "error"}, metricCols...)}
	for _, rec := range m.Jobs {
		row := []string{rec.ID, rec.Experiment,
			fmt.Sprintf("%d", rec.Seed), fmt.Sprintf("%d", rec.Scale),
			shortDigest(rec.Digest), rec.Err}
		for _, k := range metricCols {
			if v, ok := rec.Values[k]; ok {
				row = append(row, fmt.Sprintf("%.6g", v))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// GroupTable renders the cross-run spread summaries as a report table.
func (m *Manifest) GroupTable() *report.Table {
	t := &report.Table{ID: "sweepgroups", Title: "Sweep cross-run spread",
		Headers: []string{"experiment", "metric", "n", "min", "q1", "median", "q3", "max", "mean"}}
	for _, g := range m.Groups {
		t.AddRowf(g.Experiment, g.Metric, g.N, g.Min, g.Q1, g.Median, g.Q3, g.Max, g.Mean)
	}
	return t
}

// TimingTable renders the nondeterministic sidecar: per-job wall time and
// the pool size. Never part of the canonical manifest.
func (m *Manifest) TimingTable() *report.Table {
	t := &report.Table{ID: "sweeptiming", Title: "Sweep wall-clock (nondeterministic)",
		Headers: []string{"id", "wall_s"}}
	var total time.Duration
	for _, rec := range m.Jobs {
		w := m.timings[rec.ID]
		total += w
		t.AddRowf(rec.ID, w.Seconds())
	}
	t.AddNote("workers: %d", m.Workers)
	t.AddNote("cpu-seconds across jobs: %.1f", total.Seconds())
	return t
}

// WallTime returns a job's recorded wall time (0 if unknown).
func (m *Manifest) WallTime(id string) time.Duration { return m.timings[id] }

func shortDigest(d string) string {
	if len(d) > 16 {
		return d[:16]
	}
	return d
}
