// Package detect is the streaming detection plane: the online counterpart of
// internal/core's post-hoc victim classifier. It consumes the same event
// streams the offline pipeline uses — fabric tap datagrams, NetFlow v5
// collector records, and honeypot/darknet sensor sightings — and maintains,
// in bounded memory over internal/sketch structures:
//
//   - per-window heavy-hitter victims by reflected on-wire bytes
//     (exponential-decay Count-Min + SpaceSaving top-k),
//   - an amplifier top-k by emitted bytes (SpaceSaving),
//   - the unique-scanner cardinality (HyperLogLog — §5's darknet count,
//     computed from the attack-facing vantage instead),
//   - EWMA-based onset/offset alarms reproducing the paper's §4.2 victim
//     thresholds (mode ≥ 6, count ≥ 3, average inter-arrival ≤ 3600 s)
//     online, per victim, as traffic arrives.
//
// Scanners are disambiguated from victims the way §7.2 does: a mode 6/7
// *request* arriving in the Linux TTL band (initial TTL 64 minus a plausible
// path) reveals a real prober at its true address, while spoofed attack
// triggers launch from Windows-band bots (TTL 128). Any address observed
// probing is suppressed from victim alarms — this is what keeps the ONP
// scanner, which receives millions of mode 7 response packets, out of the
// victim set.
//
// The detector is a passive tap: it never sends, never touches the
// simulation RNG or scheduler, and is seeded independently, so enabling it
// cannot perturb a run (the root-package digest test pins this).
package detect

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/reflector"
	"ntpddos/internal/sketch"
)

// linuxTTLBand is the largest arrived TTL consistent with a Linux initial
// TTL of 64 — the §7.2 scanner fingerprint (netsim.TTLLinux minus at least
// one hop).
const linuxTTLBand = 64

// Lane is a per-protocol classification bucket. The tap classifies by
// service port and a cheap payload sniff, one lane per reflector vector;
// everything else is dropped after the port compares.
type Lane uint8

// The classification lanes, in presentation order.
const (
	LaneNTP Lane = iota
	LaneDNS
	LaneSSDP
	LaneChargen
	numLanes
)

// laneNames maps lanes to report labels.
var laneNames = [numLanes]string{"ntp", "dns", "ssdp", "chargen"}

// String returns the lane's report label.
func (l Lane) String() string {
	if int(l) < len(laneNames) {
		return laneNames[l]
	}
	return "?"
}

// Lanes returns every lane in presentation order.
func Lanes() []Lane { return []Lane{LaneNTP, LaneDNS, LaneSSDP, LaneChargen} }

// Config parameterizes the detector. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Seed drives the sketch hash functions. The scenario forks it from the
	// world seed on an isolated stream.
	Seed uint64

	// TopK sizes the victim and amplifier SpaceSaving summaries.
	TopK int
	// CMSEpsilon/CMSDelta dimension the victim-bytes Count-Min sketch.
	CMSEpsilon float64
	CMSDelta   float64
	// HLLPrecision sizes the scanner-cardinality HyperLogLog.
	HLLPrecision uint8
	// WindowHalfLife is the sliding-window decay for the heavy-hitter view.
	WindowHalfLife time.Duration

	// The paper's §4.2 victim thresholds, applied online.
	MinCount           int64
	MaxAvgInterarrival time.Duration
	// RateHalfLife is the EWMA half-life of the per-victim packet-rate
	// estimate backing the onset/offset alarms.
	RateHalfLife time.Duration
	// OffsetGap is the silence after which an active victim gets an offset
	// alarm.
	OffsetGap time.Duration

	// Vantage degrades the telemetry feeding this detector (packet sampling,
	// collector outages). The zero value is a perfect vantage; see Vantage.
	Vantage Vantage
}

// DefaultConfig returns the paper-threshold calibration.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		TopK:               64,
		CMSEpsilon:         0.001,
		CMSDelta:           0.01,
		HLLPrecision:       12,
		WindowHalfLife:     time.Hour,
		MinCount:           3,                  // §4.2: at least 3 packets
		MaxAvgInterarrival: 3600 * time.Second, // §4.2: more than one packet/hour
		RateHalfLife:       10 * time.Minute,
		OffsetGap:          2 * time.Hour,
	}
}

// Alarm is one onset or offset detection.
type Alarm struct {
	// Onset is true for attack-start alarms, false for attack-end.
	Onset  bool
	Victim netaddr.Addr
	// Port is the victim-side destination port most recently reflected at.
	Port uint16
	// Vector labels the victim's dominant reflected protocol at alarm time
	// ("ntp", "dns", "ssdp", "chargen").
	Vector string
	// At is the alarm time: the triggering packet's arrival for onsets, the
	// last packet plus the (possibly pulse-extended) offset deadline for
	// offsets.
	At time.Time
	// Count is the Rep-weighted reflected packet count so far.
	Count int64
	// Rate is the EWMA packet-rate estimate (packets/second) at the alarm.
	Rate float64
	// Confidence scores the alarm's telemetry quality in [0, 1]: 1 under a
	// perfect vantage, divided by the 1-in-N sampling rate and scaled by the
	// live (non-outage) fraction of the victim's observation window.
	Confidence float64
}

// HeavyHitter is one top-k row.
type HeavyHitter struct {
	Addr netaddr.Addr
	// Bytes is the (possibly over-) estimated on-wire byte total.
	Bytes int64
	// Err is the SpaceSaving inherited error: Bytes−Err is guaranteed.
	Err int64
}

// victimState is the per-victim online classifier state.
type victimState struct {
	first   time.Time
	last    time.Time
	count   int64 // Rep-weighted reflected packets
	bytes   int64
	port    uint16
	rate    float64 // EWMA packets/second, decayed to last
	active  bool    // between onset and offset
	alarmed bool    // ever had an onset

	// laneRep tallies Rep-weighted reflected packets per protocol lane;
	// the argmax is the victim's classification.
	laneRep [numLanes]int64

	// Pulse tracking: gapEWMA is the learned inter-burst silence (seconds),
	// gapN how many such gaps were observed. A resumption after silence in
	// (minPulseGap, pulseLearnCap×OffsetGap] reveals the wave's rotation
	// period; the offset deadline stretches to ride out further gaps of
	// that size instead of flapping once per burst.
	gapEWMA float64
	gapN    int
}

// dominantLane returns the lane carrying the most reflected packets
// (ties break toward the earlier lane; NTP first).
func (st *victimState) dominantLane() Lane {
	best := LaneNTP
	for l := Lane(1); l < numLanes; l++ {
		if st.laneRep[l] > st.laneRep[best] {
			best = l
		}
	}
	return best
}

// Pulse-tracker shape constants. minPulseGap must exceed the coarsest
// trigger batching interval a sustained campaign uses (20 minutes), so
// batch spacing is never mistaken for a rotation period; pulseHold sizes
// the deadline stretch per learned gap; pulseLearnCap bounds both what is
// learnable and the stretched deadline (silence beyond a few OffsetGaps is
// a separate attack, not a rotation).
const (
	minPulseGap   = 30 * time.Minute
	pulseHold     = 2
	pulseLearnCap = 4
)

// Detector is the streaming detection plane. It implements netsim.Tap; the
// NetFlow and sensor-event paths feed the same state.
type Detector struct {
	cfg Config

	victimBytes *sketch.DecayCMS
	victimTop   *sketch.SpaceSaving
	ampTop      *sketch.SpaceSaving
	scannerHLL  *sketch.HLL

	victims  map[netaddr.Addr]*victimState
	scanners netaddr.Set
	alarms   []Alarm

	packets    int64 // Rep-weighted classified packets seen (all lanes)
	responses  int64 // Rep-weighted reflected responses (all lanes)
	requests   int64 // Rep-weighted trigger/probe requests (all lanes)
	reflected  int64 // on-wire bytes of responses (all lanes)
	suppressed int64 // response packets discarded as scanner backscatter
	ingests    int64 // raw ingest operations, drives the prune cadence

	// lanes is the per-protocol breakdown of the totals above.
	lanes [numLanes]laneStats

	// Degraded-vantage state: the outage-schedule hash salt, the systematic
	// sampling phase accumulator, and the export-sequence dedup cursor.
	vantSalt    uint64
	samplePhase int64
	seqExpected uint32
	seqStarted  bool

	m *Metrics
}

// laneStats is one protocol lane's stream accounting.
type laneStats struct {
	requests   int64
	responses  int64
	reflected  int64
	suppressed int64
}

// pruneEvery is the ingest cadence of the bounded-memory sweep. Driven by
// the deterministic ingest count, never by time-of-day or map size, so two
// identical streams prune identically.
const pruneEvery = 8192

// New builds a detector.
func New(cfg Config) *Detector {
	if cfg.TopK < 1 {
		panic(fmt.Sprintf("detect: TopK %d < 1", cfg.TopK))
	}
	return &Detector{
		cfg:         cfg,
		victimBytes: sketch.NewDecayCMS(cfg.CMSEpsilon, cfg.CMSDelta, cfg.WindowHalfLife, cfg.Seed),
		victimTop:   sketch.NewSpaceSaving(cfg.TopK),
		ampTop:      sketch.NewSpaceSaving(cfg.TopK),
		scannerHLL:  sketch.NewHLL(cfg.HLLPrecision, cfg.Seed),
		victims:     make(map[netaddr.Addr]*victimState),
		scanners:    netaddr.NewSet(0),
		vantSalt:    vantMix(cfg.Seed ^ 0xd6e8feb86659fd93),
	}
}

// Config returns the detector's calibration.
func (d *Detector) Config() Config { return d.cfg }

// SetMetrics attaches (or, with nil, detaches) live instrumentation.
func (d *Detector) SetMetrics(m *Metrics) { d.m = m }

// ssdpOK / ssdpMSearch are the SSDP payload fingerprints — the response
// status line and the discovery method reflector hosts emit and answer.
var (
	ssdpOK      = []byte("HTTP/1.1 200")
	ssdpMSearch = []byte("M-SEARCH")
)

// streamDir is a classified datagram's role in the reflection stream.
type streamDir uint8

const (
	dirNone     streamDir = iota // counted, but neither a trigger nor a reflection
	dirRequest                   // trigger/probe toward a reflector
	dirResponse                  // reflected traffic toward a (claimed) victim
)

// classify assigns a fabric datagram to a protocol lane by service port plus
// a cheap payload sniff. ok=false drops the packet after the port compares,
// keeping the hot path cheap on unrelated streams; dirNone keeps the NTP
// semantics where a parsed mode 6/7 packet on a non-service source port is
// counted but ingested nowhere.
func classify(dg *packet.Datagram) (lane Lane, dir streamDir, ok bool) {
	src, dst := dg.UDP.SrcPort, dg.UDP.DstPort
	switch {
	case src == ntp.Port || dst == ntp.Port:
		mode, mok := ntp.Mode(dg.Payload)
		if !mok || (mode != ntp.ModeControl && mode != ntp.ModePrivate) {
			return 0, 0, false
		}
		response := dg.Payload[0]&0x80 != 0 // mode 7 R bit
		if mode == ntp.ModeControl {
			response = len(dg.Payload) > 1 && dg.Payload[1]&0x80 != 0
		}
		switch {
		case response && src == ntp.Port:
			return LaneNTP, dirResponse, true
		case !response && dst == ntp.Port:
			return LaneNTP, dirRequest, true
		}
		return LaneNTP, dirNone, true
	case src == reflector.DNSPort || dst == reflector.DNSPort:
		if len(dg.Payload) < 12 {
			return 0, 0, false
		}
		response := dg.Payload[2]&0x80 != 0 // QR bit
		switch {
		case response && src == reflector.DNSPort:
			return LaneDNS, dirResponse, true
		case !response && dst == reflector.DNSPort:
			return LaneDNS, dirRequest, true
		}
		return LaneDNS, dirNone, true
	case src == reflector.SSDPPort || dst == reflector.SSDPPort:
		switch {
		case src == reflector.SSDPPort && bytes.HasPrefix(dg.Payload, ssdpOK):
			return LaneSSDP, dirResponse, true
		case dst == reflector.SSDPPort && bytes.HasPrefix(dg.Payload, ssdpMSearch):
			return LaneSSDP, dirRequest, true
		}
		return 0, 0, false
	case src == reflector.ChargenPort:
		return LaneChargen, dirResponse, true
	case dst == reflector.ChargenPort:
		return LaneChargen, dirRequest, true
	}
	return 0, 0, false
}

// Observe implements netsim.Tap: classify one fabric datagram into a
// protocol lane. NTP keeps its original mode 6/7 parse; DNS, SSDP, and
// chargen reflections are recognized by service port plus a payload sniff.
// Everything else is dropped after the port compares.
func (d *Detector) Observe(dg *packet.Datagram, now time.Time) {
	lane, dir, ok := classify(dg)
	if !ok {
		return
	}
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	if d.cfg.Vantage.Degraded() {
		if d.darkAt(now) {
			if d.m != nil {
				d.m.OutageDropped.Add(rep)
			}
			return
		}
		orig := rep
		if rep = d.sampleRep(rep); rep == 0 {
			if d.m != nil {
				d.m.SampledOut.Add(orig)
			}
			return
		}
	}
	d.packets += rep
	if d.m != nil {
		d.m.Packets.Add(rep)
	}
	switch dir {
	case dirResponse:
		d.ingestResponse(lane, dg.IP.Src, dg.IP.Dst, dg.UDP.DstPort,
			int64(dg.OnWire())*rep, rep, now)
	case dirRequest:
		d.ingestRequest(lane, dg.IP.Src, dg.IP.TTL, rep)
	}
	d.maybePrune(now)
}

// ingestRequest handles a trigger/probe. A Linux-band TTL exposes a real
// prober (§7.2): record it as a scanner and suppress it from victim alarms.
// Windows-band arrivals are the spoofed attack triggers; the claimed source
// is the victim, which the response stream will confirm.
func (d *Detector) ingestRequest(lane Lane, src netaddr.Addr, ttl uint8, rep int64) {
	d.requests += rep
	d.lanes[lane].requests += rep
	if d.m != nil {
		d.m.Requests.Add(rep)
	}
	if ttl > linuxTTLBand {
		return
	}
	d.scannerHLL.Add(uint64(src))
	if !d.scanners.Has(src) {
		d.scanners.Add(src)
		if d.m != nil {
			d.m.ScannersMarked.Inc()
		}
	}
}

// ingestResponse handles reflected amplifier → victim traffic, the
// substance of every alarm and heavy-hitter ranking.
func (d *Detector) ingestResponse(lane Lane, amp, victim netaddr.Addr, victimPort uint16, nbytes, rep int64, now time.Time) {
	d.responses += rep
	d.lanes[lane].responses += rep
	if d.m != nil {
		d.m.Responses.Add(rep)
		d.m.ReflectedBytes.Add(nbytes)
	}
	if d.scanners.Has(victim) {
		// Backscatter to a known prober (the ONP scanner harvesting tables);
		// counting it would make our own measurement the top "victim".
		d.suppressed += rep
		d.lanes[lane].suppressed += rep
		if d.m != nil {
			d.m.Suppressed.Add(rep)
		}
		return
	}
	d.reflected += nbytes
	d.lanes[lane].reflected += nbytes
	d.victimBytes.Add(uint64(victim), float64(nbytes), now)
	d.victimTop.Add(uint64(victim), nbytes)
	d.ampTop.Add(uint64(amp), nbytes)

	st, ok := d.victims[victim]
	if !ok {
		st = &victimState{first: now, last: now, port: victimPort}
		d.victims[victim] = st
		if d.m != nil {
			d.m.Tracked.SetInt(int64(len(d.victims)))
		}
	}
	// EWMA rate: decay to now, then add this batch's impulse. In steady
	// state at r packets/second the estimate converges to r.
	hl := d.cfg.RateHalfLife.Seconds()
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.rate *= math.Exp2(-dt / hl)
		// Pulse learning: traffic resuming after a long silence on an
		// already-alarmed victim reveals a burst rotation period. Learn it
		// (EWMA, first observation seeds) so the offset deadline can stretch
		// to ride the wave. Bounded below by minPulseGap so sustained-flood
		// batching never registers, above by pulseLearnCap×OffsetGap so a
		// genuinely separate later attack doesn't.
		if st.alarmed && dt >= minPulseGap.Seconds() && dt <= (pulseLearnCap*d.cfg.OffsetGap).Seconds() {
			if st.gapN == 0 {
				st.gapEWMA = dt
			} else {
				st.gapEWMA += 0.5 * (dt - st.gapEWMA)
			}
			st.gapN++
		}
	}
	st.rate += float64(rep) * math.Ln2 / hl
	st.count += rep
	st.bytes += nbytes
	st.last = now
	st.port = victimPort
	st.laneRep[lane] += rep

	if !st.active && d.qualifies(st, now) {
		st.active = true
		st.alarmed = true
		d.alarms = append(d.alarms, Alarm{
			Onset: true, Victim: victim, Port: st.port,
			Vector: st.dominantLane().String(), At: now,
			Count: st.count, Rate: st.rate,
			Confidence: d.confidence(st, now),
		})
		if d.m != nil {
			d.m.Onsets.Inc()
			d.m.Active.Inc()
		}
	}
}

// qualifies applies the §4.2 victim thresholds online: enough packets, and
// both the lifetime average inter-arrival and the instantaneous EWMA rate
// above one packet per MaxAvgInterarrival.
func (d *Detector) qualifies(st *victimState, now time.Time) bool {
	if st.count < d.cfg.MinCount {
		return false
	}
	maxGap := d.cfg.MaxAvgInterarrival.Seconds()
	if avg := now.Sub(st.first).Seconds() / float64(st.count-1); avg > maxGap {
		return false
	}
	return st.rate >= 1/maxGap
}

// maybePrune runs the bounded-memory sweep every pruneEvery ingests: active
// victims silent past their offset deadline get their offset alarm; states
// idle past two gaps are dropped entirely (alarmed addresses stay for the
// final report).
func (d *Detector) maybePrune(now time.Time) {
	d.ingests++
	if d.ingests%pruneEvery != 0 {
		return
	}
	d.sweep(now, false)
}

// offsetDeadline is the silence that ends a victim's active episode. For
// sustained floods it is the configured OffsetGap; once inter-burst gaps
// have been learned, it stretches to pulseHold× the gap EWMA (capped at
// pulseLearnCap×OffsetGap) so a pulse wave reads as one episode instead of
// one onset/offset flap per burst. The first long-gap cycle still flaps
// once — the gap is only observable after traffic resumes — after which the
// tracker converges.
func (d *Detector) offsetDeadline(st *victimState) time.Duration {
	deadline := d.cfg.OffsetGap
	if st.gapN > 0 {
		if learned := time.Duration(pulseHold * st.gapEWMA * float64(time.Second)); learned > deadline {
			deadline = learned
		}
		if max := pulseLearnCap * d.cfg.OffsetGap; deadline > max {
			deadline = max
		}
	}
	// Gap-heavy telemetry: under 1-in-N sampling a live flood can legitimately
	// fall silent for N× longer between kept batches, so the deadline widens
	// accordingly (capped at 4× — beyond that an offset estimate says nothing).
	if n := d.cfg.Vantage.SampleN; n > 1 {
		widen := n
		if widen > 4 {
			widen = 4
		}
		deadline *= time.Duration(widen)
	}
	return deadline
}

func (d *Detector) sweep(now time.Time, final bool) {
	for addr, st := range d.victims {
		idle := now.Sub(st.last)
		if d.cfg.Vantage.OutageFraction > 0 {
			// Dark time is the vantage's silence, not the victim's: subtract
			// it so a collector outage mid-campaign cannot flap an episode.
			idle -= d.darkOverlap(st.last, now)
		}
		deadline := d.offsetDeadline(st)
		if st.active && (idle >= deadline || final) {
			st.active = false
			at := st.last.Add(deadline)
			if final && idle < deadline {
				at = now
			}
			d.alarms = append(d.alarms, Alarm{
				Victim: addr, Port: st.port,
				Vector: st.dominantLane().String(), At: at,
				Count: st.count, Rate: st.rate,
				Confidence: d.confidence(st, now),
			})
			if d.m != nil {
				d.m.Offsets.Inc()
				d.m.Active.Dec()
			}
		}
		if !st.alarmed && idle >= 2*d.cfg.OffsetGap {
			delete(d.victims, addr)
		}
	}
	if d.m != nil {
		d.m.Tracked.SetInt(int64(len(d.victims)))
		d.m.ScannerEstimate.SetInt(int64(d.scannerHLL.Estimate()))
	}
}

// Flush closes the stream at virtual time now: every still-active victim
// receives its offset alarm. Call once, at end of capture.
func (d *Detector) Flush(now time.Time) { d.sweep(now, true) }

// Alarms returns every alarm so far, ordered by (time, victim, onset-first).
// The order is deterministic even though offsets are discovered by map
// sweeps: alarm timestamps are derived from per-victim state, and the sort
// normalizes emission order.
func (d *Detector) Alarms() []Alarm {
	out := make([]Alarm, len(d.alarms))
	copy(out, d.alarms)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		if out[i].Victim != out[j].Victim {
			return out[i].Victim < out[j].Victim
		}
		return out[i].Onset && !out[j].Onset
	})
	return out
}

// VictimSet returns every address that ever raised an onset alarm, minus any
// later unmasked as a scanner.
func (d *Detector) VictimSet() netaddr.Set {
	s := netaddr.NewSet(0)
	for addr, st := range d.victims {
		if st.alarmed && !d.scanners.Has(addr) {
			s.Add(addr)
		}
	}
	return s
}

// topEntries converts a SpaceSaving summary to addressed rows.
func topEntries(ss *sketch.SpaceSaving, n int) []HeavyHitter {
	entries := ss.Top(n)
	out := make([]HeavyHitter, len(entries))
	for i, e := range entries {
		out[i] = HeavyHitter{Addr: netaddr.Addr(e.Key), Bytes: e.Count, Err: e.Err}
	}
	return out
}

// TopVictims returns the n heaviest victims by reflected on-wire bytes.
func (d *Detector) TopVictims(n int) []HeavyHitter { return topEntries(d.victimTop, n) }

// TopAmplifiers returns the n heaviest amplifiers by emitted bytes.
func (d *Detector) TopAmplifiers(n int) []HeavyHitter { return topEntries(d.ampTop, n) }

// VictimWindowBytes returns the decayed (sliding-window) reflected-byte
// estimate for one victim as of now.
func (d *Detector) VictimWindowBytes(victim netaddr.Addr, now time.Time) float64 {
	return d.victimBytes.Estimate(uint64(victim), now)
}

// ScannerCardinality returns the HLL estimate of distinct probing sources.
func (d *Detector) ScannerCardinality() float64 { return d.scannerHLL.Estimate() }

// ScannersMarked returns the exact count of suppressed prober addresses.
func (d *Detector) ScannersMarked() int { return d.scanners.Len() }
