package detect

import (
	"time"

	"ntpddos/internal/netaddr"
)

// VectorSummary is one protocol lane's share of the stream: the per-vector
// breakdown a mitigation team needs to pick which service to filter.
type VectorSummary struct {
	// Vector is the lane label ("ntp", "dns", "ssdp", "chargen").
	Vector string
	// Rep-weighted stream accounting, as in Summary but lane-scoped.
	Requests       int64
	Responses      int64
	ReflectedBytes int64
	Suppressed     int64
	// Victims counts alarmed victims whose dominant lane this is.
	Victims int
}

// Summary is the scenario-end snapshot of the streaming plane — everything
// the cross-vantage report consumes, with deterministic ordering throughout.
type Summary struct {
	// Rep-weighted stream accounting.
	Packets        int64
	Requests       int64
	Responses      int64
	ReflectedBytes int64
	Suppressed     int64

	// Vectors is the per-protocol breakdown, in lane presentation order
	// (ntp, dns, ssdp, chargen), lanes with no traffic included.
	Vectors []VectorSummary

	// Scanner vantage: exact suppression-set size versus the HLL estimate
	// (their agreement is itself a live check of the sketch).
	ScannersMarked  int
	ScannerEstimate float64

	// Alarms is the full alarm log, time-ordered.
	Alarms []Alarm
	// Victims is every alarmed (non-scanner) address, sorted.
	Victims []netaddr.Addr
	// TopVictims and TopAmplifiers are the SpaceSaving rankings by on-wire
	// bytes.
	TopVictims    []HeavyHitter
	TopAmplifiers []HeavyHitter
}

// Summarize closes the stream (flushing offset alarms for still-active
// victims) and snapshots the detector's answers as of virtual time now.
func (d *Detector) Summarize(now time.Time) *Summary {
	d.Flush(now)
	vectors := make([]VectorSummary, numLanes)
	for _, l := range Lanes() {
		vectors[l] = VectorSummary{
			Vector:         l.String(),
			Requests:       d.lanes[l].requests,
			Responses:      d.lanes[l].responses,
			ReflectedBytes: d.lanes[l].reflected,
			Suppressed:     d.lanes[l].suppressed,
		}
	}
	for addr, st := range d.victims {
		if st.alarmed && !d.scanners.Has(addr) {
			vectors[st.dominantLane()].Victims++
		}
	}
	return &Summary{
		Packets:         d.packets,
		Requests:        d.requests,
		Responses:       d.responses,
		ReflectedBytes:  d.reflected,
		Suppressed:      d.suppressed,
		Vectors:         vectors,
		ScannersMarked:  d.scanners.Len(),
		ScannerEstimate: d.scannerHLL.Estimate(),
		Alarms:          d.Alarms(),
		Victims:         d.VictimSet().Sorted(),
		TopVictims:      d.TopVictims(d.cfg.TopK),
		TopAmplifiers:   d.TopAmplifiers(d.cfg.TopK),
	}
}

// VictimSet rebuilds the detected-victim set from the summary.
func (s *Summary) VictimSet() netaddr.Set {
	set := netaddr.NewSet(len(s.Victims))
	for _, v := range s.Victims {
		set.Add(v)
	}
	return set
}

// Eval is a precision/recall comparison of a detected set against a
// reference set.
type Eval struct {
	// Truth and Detected are the reference and candidate set sizes;
	// TruePositives their intersection.
	Truth         int
	Detected      int
	TruePositives int
	// Precision = TP/Detected, Recall = TP/Truth (1 when the respective
	// denominator is empty: an empty claim over an empty truth is perfect).
	Precision float64
	Recall    float64
}

// Evaluate scores detected against truth.
func Evaluate(detected, truth netaddr.Set) Eval {
	e := Eval{Truth: truth.Len(), Detected: detected.Len()}
	e.TruePositives = detected.IntersectCount(truth)
	e.Precision, e.Recall = 1, 1
	if e.Detected > 0 {
		e.Precision = float64(e.TruePositives) / float64(e.Detected)
	}
	if e.Truth > 0 {
		e.Recall = float64(e.TruePositives) / float64(e.Truth)
	}
	return e
}
