package detect

import (
	"reflect"
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netflow"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/vtime"
)

var (
	amp     = netaddr.MustParseAddr("10.1.1.1")
	victim  = netaddr.MustParseAddr("93.184.216.34")
	scanner = netaddr.MustParseAddr("198.108.60.10")
)

// monlistResponse builds a mode 7 monlist response fragment as it would
// arrive at the victim (amplifier source port 123).
func monlistResponse(from, to netaddr.Addr, toPort uint16, rep int64) *packet.Datagram {
	entries := make([]ntp.MonEntry, 6)
	for i := range entries {
		entries[i] = ntp.MonEntry{Addr: netaddr.Addr(0x0a000001 + i), Mode: ntp.ModeClient, Count: 5}
	}
	payload := ntp.BuildMonlistResponse(entries, ntp.ImplXNTPD, ntp.ReqMonGetList1)[0]
	dg := packet.NewDatagram(from, ntp.Port, to, toPort, payload)
	dg.IP.TTL = 50 // amplifier is a Linux box some hops away
	dg.Rep = rep
	return dg
}

// monlistRequest builds a mode 7 request with the given arrived TTL.
func monlistRequest(from, to netaddr.Addr, arrivedTTL uint8, rep int64) *packet.Datagram {
	dg := packet.NewDatagram(from, 47001, to, ntp.Port, ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	dg.IP.TTL = arrivedTTL
	dg.Rep = rep
	return dg
}

func TestOnsetAndOffsetAlarms(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	for i := 0; i < 5; i++ {
		d.Observe(monlistResponse(amp, victim, 80, 100), t0.Add(time.Duration(i)*30*time.Second))
	}
	sum := d.Summarize(t0.Add(4 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("victims = %v, want [%v]", sum.Victims, victim)
	}
	if len(sum.Alarms) != 2 {
		t.Fatalf("alarms = %+v, want onset+offset", sum.Alarms)
	}
	onset, offset := sum.Alarms[0], sum.Alarms[1]
	if !onset.Onset || !onset.At.Equal(t0) || onset.Victim != victim || onset.Port != 80 {
		t.Fatalf("bad onset %+v", onset)
	}
	// The last packet lands at t0+120s; the offset fires OffsetGap later.
	wantOff := t0.Add(120 * time.Second).Add(DefaultConfig().OffsetGap)
	if offset.Onset || !offset.At.Equal(wantOff) {
		t.Fatalf("offset at %v, want %v (%+v)", offset.At, wantOff, offset)
	}
	if offset.Count != 500 {
		t.Fatalf("offset count %d, want 500 rep-weighted packets", offset.Count)
	}
	if sum.ReflectedBytes == 0 || len(sum.TopVictims) == 0 || sum.TopVictims[0].Addr != victim {
		t.Fatalf("byte accounting missing: %+v", sum.TopVictims)
	}
	if len(sum.TopAmplifiers) == 0 || sum.TopAmplifiers[0].Addr != amp {
		t.Fatalf("amplifier ranking missing: %+v", sum.TopAmplifiers)
	}
}

// TestBelowThresholdNoAlarm: two packets an hour apart stay under the §4.2
// count threshold; three packets spread over days stay under the rate.
func TestBelowThresholdNoAlarm(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	d.Observe(monlistResponse(amp, victim, 80, 1), t0)
	d.Observe(monlistResponse(amp, victim, 80, 1), t0.Add(time.Hour))
	slow := netaddr.MustParseAddr("4.4.4.4")
	for i := 0; i < 5; i++ {
		d.Observe(monlistResponse(amp, slow, 80, 1), t0.Add(time.Duration(i)*48*time.Hour))
	}
	if got := d.Summarize(t0.Add(300 * time.Hour)); len(got.Victims) != 0 {
		t.Fatalf("victims = %v, want none", got.Victims)
	}
}

func TestScannerSuppression(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	// The prober reveals itself: Linux-band request into the fabric.
	d.Observe(monlistRequest(scanner, amp, 50, 1), t0)
	// Millions of harvested table fragments flow back to it.
	for i := 0; i < 10; i++ {
		d.Observe(monlistResponse(amp, scanner, 47001, 10000), t0.Add(time.Duration(i)*time.Second))
	}
	// Meanwhile spoofed triggers (Windows band, claimed source = victim)
	// draw real reflections onto the victim.
	d.Observe(monlistRequest(victim, amp, 110, 50), t0)
	d.Observe(monlistResponse(amp, victim, 80, 300), t0.Add(time.Second))
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("victims = %v, want only %v (scanner suppressed)", sum.Victims, victim)
	}
	if sum.ScannersMarked != 1 {
		t.Fatalf("scanners marked = %d, want 1", sum.ScannersMarked)
	}
	if sum.Suppressed == 0 {
		t.Fatal("no backscatter was suppressed")
	}
	if sum.ScannerEstimate < 0.5 || sum.ScannerEstimate > 2 {
		t.Fatalf("scanner HLL estimate %.2f for cardinality 1", sum.ScannerEstimate)
	}
}

// TestNetFlowParity routes the same attack through a NetFlow exporter and
// asserts the flow path reaches the same verdict as the packet path.
func TestNetFlowParity(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	exp := netflow.NewExporter(t0, func(data []byte) {
		if err := d.IngestExport(data); err != nil {
			t.Fatalf("export rejected: %v", err)
		}
	})
	for i := 0; i < 5; i++ {
		exp.Observe(monlistResponse(amp, victim, 80, 100), t0.Add(time.Duration(i)*30*time.Second))
	}
	// Honest time service must not register: 76-byte mode 4 responses.
	client := netaddr.MustParseAddr("8.8.8.8")
	small := packet.NewDatagram(amp, ntp.Port, client, 123, make([]byte, 48))
	for i := 0; i < 10; i++ {
		exp.Observe(small, t0.Add(time.Duration(i)*time.Second))
	}
	exp.Flush(t0.Add(time.Hour))
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("flow-path victims = %v, want [%v]", sum.Victims, victim)
	}
	if sum.Packets != 500 {
		t.Fatalf("flow-path packets = %d, want 500 (time service filtered)", sum.Packets)
	}
}

func TestIngestMonEntry(t *testing.T) {
	d := New(DefaultConfig())
	now := vtime.Epoch.Add(24 * time.Hour)
	d.IngestMonEntry(amp, ntp.MonEntry{
		Addr: victim, Port: 80, Mode: ntp.ModePrivate, Count: 5000, AvgInterval: 1, LastSeen: 60,
	}, now)
	d.IngestMonEntry(amp, ntp.MonEntry{
		Addr: netaddr.MustParseAddr("5.5.5.5"), Port: 123, Mode: ntp.ModeClient, Count: 100, AvgInterval: 64,
	}, now)
	sum := d.Summarize(now.Add(6 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("victims = %v, want [%v]", sum.Victims, victim)
	}
	if a := sum.Alarms[0]; !a.Onset || !a.At.Equal(now.Add(-60*time.Second)) {
		t.Fatalf("onset %+v, want backdated to last-seen", a)
	}
}

func TestSensorAndDarknetIngest(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	d.IngestScannerSighting(scanner)
	d.IngestSensorEvent(victim, 80, t0, t0.Add(time.Minute), 4000)
	d.IngestSensorEvent(scanner, 80, t0, t0.Add(time.Minute), 4000) // suppressed
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("victims = %v, want [%v]", sum.Victims, victim)
	}
	if sum.ScannersMarked != 1 {
		t.Fatalf("scanners marked = %d, want 1", sum.ScannersMarked)
	}
}

// TestDetectorDeterminism runs an interleaved multi-victim stream twice and
// requires identical summaries — the property the scenario digest test
// depends on.
func TestDetectorDeterminism(t *testing.T) {
	run := func() *Summary {
		d := New(DefaultConfig())
		t0 := vtime.Epoch
		for i := 0; i < 2000; i++ {
			v := netaddr.Addr(0x50000000 + uint32(i%37))
			a := netaddr.Addr(0x0a000000 + uint32(i%11))
			now := t0.Add(time.Duration(i) * 7 * time.Second)
			d.Observe(monlistResponse(a, v, uint16(80+i%3), int64(1+i%50)), now)
			if i%13 == 0 {
				d.Observe(monlistRequest(netaddr.Addr(0x60000000+uint32(i%5)), a, 52, 1), now)
			}
		}
		return d.Summarize(t0.Add(30 * time.Hour))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("summaries differ:\n%+v\n%+v", a, b)
	}
	if len(a.Victims) == 0 || len(a.Alarms) == 0 {
		t.Fatal("determinism stream produced no detections")
	}
}

// TestPruneBoundsMemory drives many one-shot below-threshold victims
// through and checks the sweep drops their state.
func TestPruneBoundsMemory(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	t0 := vtime.Epoch
	for i := 0; i < 100_000; i++ {
		v := netaddr.Addr(0x20000000 + uint32(i))
		d.Observe(monlistResponse(amp, v, 80, 1), t0.Add(time.Duration(i)*time.Second))
	}
	if n := len(d.victims); n > 50_000 {
		t.Fatalf("%d victim states retained; prune is not bounding memory", n)
	}
}

func TestEvaluate(t *testing.T) {
	truth := netaddr.NewSet(0)
	det := netaddr.NewSet(0)
	for i := 0; i < 10; i++ {
		truth.Add(netaddr.Addr(100 + i))
	}
	for i := 0; i < 9; i++ {
		det.Add(netaddr.Addr(100 + i))
	}
	det.Add(netaddr.Addr(999))
	e := Evaluate(det, truth)
	if e.TruePositives != 9 || e.Precision != 0.9 || e.Recall != 0.9 {
		t.Fatalf("eval = %+v", e)
	}
	empty := Evaluate(netaddr.NewSet(0), netaddr.NewSet(0))
	if empty.Precision != 1 || empty.Recall != 1 {
		t.Fatalf("empty eval = %+v", empty)
	}
}
