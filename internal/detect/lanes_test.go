package detect

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netflow"
	"ntpddos/internal/packet"
	"ntpddos/internal/reflector"
	"ntpddos/internal/vtime"
)

// laneResponse builds a reflected response datagram for a non-NTP lane.
func laneResponse(v reflector.Vector, from, to netaddr.Addr, toPort uint16, rep int64) *packet.Datagram {
	p := reflector.MustLookup(v)
	var payload []byte
	switch v {
	case reflector.DNSANY:
		payload = make([]byte, 3000)
		payload[2] = 0x80 // QR: response
	case reflector.SSDP:
		payload = append([]byte("HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\n\r\n"), make([]byte, 260)...)
	case reflector.Chargen:
		payload = reflector.ChargenPayload(512)
	default:
		panic("laneResponse: NTP handled by monlistResponse")
	}
	dg := packet.NewDatagram(from, p.Port, to, toPort, payload)
	dg.IP.TTL = 50
	dg.Rep = rep
	return dg
}

// laneRequest builds a lane's trigger/probe datagram with the given TTL.
func laneRequest(v reflector.Vector, from, to netaddr.Addr, ttl uint8, rep int64) *packet.Datagram {
	p := reflector.MustLookup(v)
	dg := packet.NewDatagram(from, 47001, to, p.Port, p.Request)
	dg.IP.TTL = ttl
	dg.Rep = rep
	return dg
}

// TestLaneClassification alarms one victim per non-NTP lane through the tap
// and checks the alarm vector labels and the per-vector summary rows.
func TestLaneClassification(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	victims := map[reflector.Vector]netaddr.Addr{
		reflector.DNSANY:  netaddr.MustParseAddr("203.0.113.53"),
		reflector.SSDP:    netaddr.MustParseAddr("203.0.113.19"),
		reflector.Chargen: netaddr.MustParseAddr("203.0.113.90"),
	}
	for v, vic := range victims {
		for i := 0; i < 5; i++ {
			d.Observe(laneResponse(v, amp, vic, 80, 100), t0.Add(time.Duration(i)*30*time.Second))
		}
	}
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 3 {
		t.Fatalf("victims = %v, want 3", sum.Victims)
	}
	wantVec := map[netaddr.Addr]string{
		victims[reflector.DNSANY]:  "dns",
		victims[reflector.SSDP]:    "ssdp",
		victims[reflector.Chargen]: "chargen",
	}
	for _, a := range sum.Alarms {
		if a.Vector != wantVec[a.Victim] {
			t.Errorf("alarm %v labelled %q, want %q", a.Victim, a.Vector, wantVec[a.Victim])
		}
	}
	if len(sum.Vectors) != 4 {
		t.Fatalf("vector rows = %d, want 4", len(sum.Vectors))
	}
	for _, row := range sum.Vectors {
		switch row.Vector {
		case "ntp":
			if row.Responses != 0 || row.Victims != 0 {
				t.Errorf("quiet ntp lane has traffic: %+v", row)
			}
		default:
			if row.Responses != 500 || row.Victims != 1 || row.ReflectedBytes == 0 {
				t.Errorf("lane %s row wrong: %+v", row.Vector, row)
			}
		}
	}
}

// TestLaneDominance mixes NTP and DNS reflections at one victim; the heavier
// DNS stream must win the episode-end classification (the onset label can
// legitimately reflect whichever lane's packet tripped the threshold).
func TestLaneDominance(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	for i := 0; i < 5; i++ {
		at := t0.Add(time.Duration(i) * 30 * time.Second)
		d.Observe(monlistResponse(amp, victim, 80, 10), at)
		d.Observe(laneResponse(reflector.DNSANY, amp, victim, 80, 100), at)
	}
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Alarms) != 2 || sum.Alarms[1].Vector != "dns" {
		t.Fatalf("alarms = %+v, want dns-dominant offset", sum.Alarms)
	}
	for _, row := range sum.Vectors {
		if row.Vector == "dns" && row.Victims != 1 {
			t.Fatalf("dns lane victims = %d, want 1 (dominance)", row.Victims)
		}
		if row.Vector == "ntp" && row.Victims != 0 {
			t.Fatalf("ntp lane claimed the blended victim: %+v", row)
		}
	}
}

// TestLaneScannerSuppression pins that §7.2 unmasking works on the new
// lanes too: a Linux-band SSDP prober is suppressed from victim alarms.
func TestLaneScannerSuppression(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	d.Observe(laneRequest(reflector.SSDP, scanner, amp, 50, 1), t0)
	for i := 0; i < 5; i++ {
		d.Observe(laneResponse(reflector.SSDP, amp, scanner, 47001, 100), t0.Add(time.Duration(i)*time.Second))
	}
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 0 {
		t.Fatalf("victims = %v, want none (prober suppressed)", sum.Victims)
	}
	if sum.ScannersMarked != 1 || sum.Suppressed != 500 {
		t.Fatalf("marked=%d suppressed=%d, want 1/500", sum.ScannersMarked, sum.Suppressed)
	}
	for _, row := range sum.Vectors {
		if row.Vector == "ssdp" && row.Suppressed != 500 {
			t.Fatalf("ssdp lane suppressed = %d, want 500", row.Suppressed)
		}
	}
}

// TestNonNTPFlowIngestion pins the collector path for reflected traffic on
// the catalogued non-123 service ports: fat response flows from 53, 1900,
// and 19 reach the victim tracker, while off-catalogue ports and small
// legitimate-service flows are ignored.
func TestNonNTPFlowIngestion(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	fat := func(srcPort uint16, dst netaddr.Addr, packets, octets uint32) netflow.Record {
		return netflow.Record{
			SrcAddr: amp, DstAddr: dst, SrcPort: srcPort, DstPort: 80,
			Packets: packets, Octets: octets,
		}
	}
	lanes := map[uint16]netaddr.Addr{
		reflector.DNSPort:     netaddr.MustParseAddr("198.18.0.53"),
		reflector.SSDPPort:    netaddr.MustParseAddr("198.18.0.19"),
		reflector.ChargenPort: netaddr.MustParseAddr("198.18.0.90"),
	}
	for port, dst := range lanes {
		for i := 0; i < 5; i++ {
			d.IngestFlow(fat(port, dst, 100, 100*600), t0.Add(time.Duration(i)*30*time.Second))
		}
	}
	// Off-catalogue source port: never a reflection candidate.
	d.IngestFlow(fat(443, netaddr.MustParseAddr("198.18.0.99"), 100, 100*600), t0)
	// Small packets from a catalogued port: legitimate service, filtered.
	d.IngestFlow(fat(reflector.DNSPort, netaddr.MustParseAddr("198.18.0.98"), 100, 100*80), t0)
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 3 {
		t.Fatalf("victims = %v, want the 3 lane targets", sum.Victims)
	}
	if sum.Packets != 1500 {
		t.Fatalf("packets = %d, want 1500 (filtered flows uncounted)", sum.Packets)
	}
	for port, dst := range lanes {
		lane, _ := flowLane(port)
		found := false
		for _, a := range sum.Alarms {
			if a.Victim == dst && a.Onset && a.Vector == lane.String() {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s onset for %v", lane, dst)
		}
	}
}

// TestPulseWaveTracker drives a 3-hour-period pulse wave (gap > OffsetGap)
// with periodic sweeps and checks the tracker flaps once — the unavoidable
// first long-gap cycle — then learns the rotation and holds the episode
// open across later gaps.
func TestPulseWaveTracker(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	t0 := vtime.Epoch
	const period = 3 * time.Hour
	burst := func(start time.Time) {
		for i := 0; i < 5; i++ {
			d.Observe(monlistResponse(amp, victim, 80, 100), start.Add(time.Duration(i)*30*time.Second))
		}
	}
	end := t0.Add(4 * period)
	for b := 0; b < 4; b++ {
		burst(t0.Add(time.Duration(b) * period))
	}
	// Replay interleaved with the sweeps a busy tap would run anyway: walk
	// time in 10-minute sweep ticks, bursting on period boundaries.
	d = New(cfg)
	for at := t0; at.Before(end); at = at.Add(10 * time.Minute) {
		if since := at.Sub(t0); since%period == 0 {
			burst(at)
		}
		d.sweep(at, false)
	}
	sum := d.Summarize(end)
	var onsets, offsets int
	for _, a := range sum.Alarms {
		if a.Onset {
			onsets++
		} else {
			offsets++
		}
	}
	// Burst 1: onset. Gap 1 silences past OffsetGap before the rotation is
	// learnable → one offset+onset flap at burst 2. From then on the learned
	// deadline (2× the ~3h gap EWMA) rides out every later gap.
	if onsets != 2 || offsets != 2 {
		t.Fatalf("alarm churn: %d onsets / %d offsets, want 2/2 (flap once, then hold); alarms=%+v",
			onsets, offsets, sum.Alarms)
	}
}

// TestSustainedOffsetUnchanged pins that the pulse tracker leaves classic
// sustained-flood offsets alone: no gap ≥ minPulseGap ever occurs, so the
// deadline stays at OffsetGap exactly.
func TestSustainedOffsetUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	t0 := vtime.Epoch
	// 20-minute batch spacing — the coarsest classic campaign interval.
	var last time.Time
	for i := 0; i < 12; i++ {
		last = t0.Add(time.Duration(i) * 20 * time.Minute)
		d.Observe(monlistResponse(amp, victim, 80, 100), last)
	}
	sum := d.Summarize(last.Add(cfg.OffsetGap + time.Hour))
	if len(sum.Alarms) != 2 {
		t.Fatalf("alarms = %+v, want onset+offset", sum.Alarms)
	}
	if off := sum.Alarms[1]; off.Onset || !off.At.Equal(last.Add(cfg.OffsetGap)) {
		t.Fatalf("offset at %v, want last+OffsetGap %v", off.At, last.Add(cfg.OffsetGap))
	}
}
