package detect

import (
	"time"

	"ntpddos/internal/core"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netflow"
	"ntpddos/internal/ntp"
	"ntpddos/internal/reflector"
)

// The non-tap ingestion paths: a real deployment rarely sits on a full
// packet tap. NetFlow exports, periodic monlist polls, and amppot/darknet
// sensor feeds all fold into the same per-victim state the tap maintains,
// so a collector can mix vantages freely.

// minReflectedPacketSize is the flow-path stand-in for the payload sniff the
// tap performs: NetFlow v5 carries no payload, so service-port response
// flows are classified by average packet size. Monlist fragments run ~500
// bytes of UDP payload, DNS-ANY answers kilobytes, SSDP service responses
// ~300 bytes, and chargen replies ~500 — while honest mode 4 time responses
// are 48 bytes and ordinary DNS answers under ~100. A 200-byte threshold
// cleanly separates amplification backscatter from legitimate service.
const minReflectedPacketSize = 200

// flowLane maps a response-direction flow's source port onto its protocol
// lane; ok=false flows are not reflection candidates.
func flowLane(srcPort uint16) (Lane, bool) {
	switch srcPort {
	case ntp.Port:
		return LaneNTP, true
	case reflector.DNSPort:
		return LaneDNS, true
	case reflector.SSDPPort:
		return LaneSSDP, true
	case reflector.ChargenPort:
		return LaneChargen, true
	}
	return 0, false
}

// IngestExport decodes one NetFlow v5 export datagram and folds every
// record into the detector. Flow times are reconstructed from the export
// header's wall clock and the records' sysUptime offsets, the standard
// collector arithmetic.
func (d *Detector) IngestExport(data []byte) error {
	h, records, err := netflow.Decode(data)
	if err != nil {
		return err
	}
	// Export-sequence dedup: a datagram whose FlowSequence is strictly behind
	// the expectation is a duplicated or retransmitted export (the fabric's
	// duplication fault, or a flaky collector path). Folding it again would
	// double-count every record — the classic duplicate-inflation error that
	// flips dominant-lane attribution — so it is dropped whole. Ahead-of-
	// expectation exports (some were lost) resync forward.
	if d.seqStarted && int32(h.FlowSequence-d.seqExpected) < 0 {
		if d.m != nil {
			d.m.DupExports.Inc()
		}
		return nil
	}
	d.seqStarted = true
	d.seqExpected = h.FlowSequence + uint32(len(records))
	exportTime := time.Unix(int64(h.UnixSecs), int64(h.UnixNsecs)).UTC()
	for _, r := range records {
		age := time.Duration(h.SysUptimeMs-r.Last) * time.Millisecond
		d.IngestFlow(r, exportTime.Add(-age))
	}
	return nil
}

// IngestFlow folds one v5 flow record, whose last packet was seen at
// flowEnd. Only the reflected response direction matters here — any of the
// catalogued service ports, not just 123: request flows carry no TTL in v5,
// so scanner unmasking is left to the tap/pcap path.
func (d *Detector) IngestFlow(r netflow.Record, flowEnd time.Time) {
	lane, ok := flowLane(r.SrcPort)
	if !ok || r.Packets == 0 {
		return
	}
	if r.Octets/r.Packets < minReflectedPacketSize {
		return // legitimate-service chatter, not amplification
	}
	if d.cfg.Vantage.OutageFraction > 0 && d.darkAt(flowEnd) {
		// Collector outage: the flow ended while the vantage was dark.
		if d.m != nil {
			d.m.OutageDropped.Add(int64(r.Packets))
		}
		return
	}
	d.packets += int64(r.Packets)
	if d.m != nil {
		d.m.Packets.Add(int64(r.Packets))
	}
	// Octets are IP-layer; OnWire accounting adds the Ethernet overhead the
	// BAF denominators use (≈38 bytes per packet at these sizes).
	bytes := int64(r.Octets) + 38*int64(r.Packets)
	d.ingestResponse(lane, r.SrcAddr, r.DstAddr, r.DstPort, bytes, int64(r.Packets), flowEnd)
	d.maybePrune(flowEnd)
}

// IngestMonEntry folds one polled monitor-table entry (the cmd/ntpwatch
// live mode: repeatedly monlist a daemon and classify what its table says).
// The entry's own counters carry the §4.2 evidence, so the paper's offline
// classifier applies directly; qualifying entries raise an onset alarm
// backdated to the entry's last-seen time.
func (d *Detector) IngestMonEntry(amp netaddr.Addr, e ntp.MonEntry, now time.Time) {
	if core.ClassifyEntry(e, 0) != core.Victim || d.scanners.Has(e.Addr) {
		return
	}
	st, ok := d.victims[e.Addr]
	if !ok {
		st = &victimState{
			first: now.Add(-time.Duration(e.Count) * time.Duration(e.AvgInterval) * time.Second),
			port:  e.Port,
		}
		d.victims[e.Addr] = st
	}
	last := now.Add(-time.Duration(e.LastSeen) * time.Second)
	if last.After(st.last) {
		st.last = last
	}
	if int64(e.Count) > st.count {
		st.count = int64(e.Count)
	}
	st.port = e.Port
	if !st.active {
		st.active = true
		st.alarmed = true
		d.alarms = append(d.alarms, Alarm{
			Onset: true, Victim: e.Addr, Port: e.Port,
			Vector: st.dominantLane().String(), At: st.last, Count: st.count,
			Confidence: d.confidence(st, st.last),
		})
		if d.m != nil {
			d.m.Onsets.Inc()
			d.m.Active.Inc()
		}
	}
	_ = amp // reflected-byte attribution needs packet sizes the table lacks
}

// IngestSensorEvent folds one amppot-style attack event (victim, port,
// observed extent, Rep-weighted trigger packets) from a honeypot fleet.
// Sensor events are trigger-side evidence: they count toward the victim's
// packet threshold but contribute no reflected bytes.
func (d *Detector) IngestSensorEvent(victim netaddr.Addr, port uint16, first, last time.Time, packets int64) {
	if d.scanners.Has(victim) || packets <= 0 {
		return
	}
	st, ok := d.victims[victim]
	if !ok {
		st = &victimState{first: first, last: last, port: port}
		d.victims[victim] = st
	}
	st.count += packets
	if last.After(st.last) {
		st.last = last
	}
	st.port = port
	if !st.active && st.count >= d.cfg.MinCount {
		st.active = true
		st.alarmed = true
		d.alarms = append(d.alarms, Alarm{
			Onset: true, Victim: victim, Port: port,
			Vector: st.dominantLane().String(), At: last, Count: st.count,
			Confidence: d.confidence(st, last),
		})
		if d.m != nil {
			d.m.Onsets.Inc()
			d.m.Active.Inc()
		}
	}
}

// IngestScannerSighting folds one darknet-telescope sighting of a probing
// source: dark-space probes unmask scanners with certainty (no legitimate
// traffic enters a darknet), feeding the same suppression set and
// cardinality estimate the tap path maintains.
func (d *Detector) IngestScannerSighting(src netaddr.Addr) {
	d.scannerHLL.Add(uint64(src))
	if !d.scanners.Has(src) {
		d.scanners.Add(src)
		if d.m != nil {
			d.m.ScannersMarked.Inc()
		}
	}
}
