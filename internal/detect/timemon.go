// Time-integrity detection lane: a passive monitor over the sync
// discipline's telemetry (it implements timesync.Monitor structurally)
// that flags clients whose clocks are being manipulated. Four independent
// signals feed the verdict:
//
//   - offset-residual EWMA: per (client, server) smoothed |offset|; any
//     server persistently disagreeing with the client's clock beyond the
//     threshold marks the client (catches spoof, delay, drift, stratum —
//     under each, *some* observed server's offsets diverge);
//   - KoD storms: forged kiss-o'-death floods (genuine servers in the
//     simulation never kiss, so any sustained kiss traffic is hostile);
//   - quorum loss: repeated falseticker-voting failures (the 2-of-N
//     coherent-liar split leaves no majority clique);
//   - leap/panic events: bogus leap arming and panic-threshold hits.
//
// Like the victim detector's report, the monitor's summary is deliberately
// NOT part of the digested table set — it is scored against the attack
// plane's ground truth instead.
package detect

import (
	"time"

	"ntpddos/internal/netaddr"
)

// TimeMonitorConfig tunes the integrity lane.
type TimeMonitorConfig struct {
	// ResidualThreshold is the smoothed |offset| beyond which a server's
	// disagreement counts as manipulation evidence. Benign steady-state
	// offsets stay under ~120 ms (half the worst-case path asymmetry), so
	// the default 300 ms clears them with margin.
	ResidualThreshold time.Duration
	// EWMAAlpha is the smoothing weight for fresh samples.
	EWMAAlpha float64
	// WarmupSamples per (client, server) are ignored: the initial
	// convergence transient (seconds of InitOffset before the first step)
	// must not trip the alarm.
	WarmupSamples int
	// MinSamples is the post-warmup sample floor before the residual
	// alarm may fire.
	MinSamples int
	// KissThreshold kisses seen at one client raise the KoD-storm alarm.
	KissThreshold int
	// QuorumLossThreshold no-majority events raise the voting alarm.
	QuorumLossThreshold int
	// LeapThreshold leap-arm events raise the leap-injection alarm.
	LeapThreshold int
}

// DefaultTimeMonitorConfig returns the tuned defaults.
func DefaultTimeMonitorConfig() TimeMonitorConfig {
	return TimeMonitorConfig{
		ResidualThreshold:   300 * time.Millisecond,
		EWMAAlpha:           0.3,
		WarmupSamples:       4,
		MinSamples:          8,
		KissThreshold:       3,
		QuorumLossThreshold: 3,
		LeapThreshold:       2,
	}
}

// tmAssoc is the per-(client, server) residual state.
type tmAssoc struct {
	n    int
	ewma float64 // seconds
}

// tmClient is the per-client verdict state.
type tmClient struct {
	assocs     map[netaddr.Addr]*tmAssoc
	kisses     int
	quorumLoss int
	leaps      int
	flags      uint8
}

// Flag bits for the per-client alarm reasons.
const (
	flagResidual uint8 = 1 << iota
	flagKissStorm
	flagQuorumLoss
	flagLeap
	flagPanic
)

// TimeMonitor is the integrity lane. It draws no randomness and sends no
// packets; attaching it never perturbs the simulation.
type TimeMonitor struct {
	cfg     TimeMonitorConfig
	clients map[netaddr.Addr]*tmClient
}

// NewTimeMonitor builds the lane. Zero-valued config fields get defaults.
func NewTimeMonitor(cfg TimeMonitorConfig) *TimeMonitor {
	def := DefaultTimeMonitorConfig()
	if cfg.ResidualThreshold == 0 {
		cfg.ResidualThreshold = def.ResidualThreshold
	}
	if cfg.EWMAAlpha == 0 {
		cfg.EWMAAlpha = def.EWMAAlpha
	}
	if cfg.WarmupSamples == 0 {
		cfg.WarmupSamples = def.WarmupSamples
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = def.MinSamples
	}
	if cfg.KissThreshold == 0 {
		cfg.KissThreshold = def.KissThreshold
	}
	if cfg.QuorumLossThreshold == 0 {
		cfg.QuorumLossThreshold = def.QuorumLossThreshold
	}
	if cfg.LeapThreshold == 0 {
		cfg.LeapThreshold = def.LeapThreshold
	}
	return &TimeMonitor{cfg: cfg, clients: make(map[netaddr.Addr]*tmClient)}
}

func (tm *TimeMonitor) client(addr netaddr.Addr) *tmClient {
	c := tm.clients[addr]
	if c == nil {
		c = &tmClient{assocs: make(map[netaddr.Addr]*tmAssoc)}
		tm.clients[addr] = c
	}
	return c
}

// ObserveSample implements timesync.Monitor: fold one (client, server)
// offset sample into the residual EWMA.
func (tm *TimeMonitor) ObserveSample(client, server netaddr.Addr, offset, delay time.Duration, now time.Time) {
	c := tm.client(client)
	a := c.assocs[server]
	if a == nil {
		a = &tmAssoc{}
		c.assocs[server] = a
	}
	a.n++
	if a.n <= tm.cfg.WarmupSamples {
		return
	}
	abs := offset.Seconds()
	if abs < 0 {
		abs = -abs
	}
	a.ewma = tm.cfg.EWMAAlpha*abs + (1-tm.cfg.EWMAAlpha)*a.ewma
	if a.n >= tm.cfg.WarmupSamples+tm.cfg.MinSamples &&
		a.ewma > tm.cfg.ResidualThreshold.Seconds() {
		c.flags |= flagResidual
	}
}

// ObserveKiss implements timesync.Monitor: count kiss-o'-death sightings.
func (tm *TimeMonitor) ObserveKiss(client, server netaddr.Addr, code string, now time.Time) {
	c := tm.client(client)
	c.kisses++
	if c.kisses >= tm.cfg.KissThreshold {
		c.flags |= flagKissStorm
	}
}

// ObserveEvent implements timesync.Monitor: clock events.
func (tm *TimeMonitor) ObserveEvent(client netaddr.Addr, kind string, magnitude time.Duration, now time.Time) {
	c := tm.client(client)
	switch kind {
	case "no-majority":
		c.quorumLoss++
		if c.quorumLoss >= tm.cfg.QuorumLossThreshold {
			c.flags |= flagQuorumLoss
		}
	case "leap":
		c.leaps++
		if c.leaps >= tm.cfg.LeapThreshold {
			c.flags |= flagLeap
		}
	case "panic":
		c.flags |= flagPanic
	}
}

// TimeIntegritySummary is the lane's end-of-run verdict set.
type TimeIntegritySummary struct {
	ClientsMonitored int
	Flagged          netaddr.Set
	ResidualAlarms   int
	KissStorms       int
	QuorumLossAlarms int
	LeapAlarms       int
	PanicAlarms      int
}

// Summarize collects the flagged clients and per-signal alarm counts.
func (tm *TimeMonitor) Summarize() *TimeIntegritySummary {
	s := &TimeIntegritySummary{
		ClientsMonitored: len(tm.clients),
		Flagged:          netaddr.NewSet(0),
	}
	for addr, c := range tm.clients {
		if c.flags == 0 {
			continue
		}
		s.Flagged.Add(addr)
		if c.flags&flagResidual != 0 {
			s.ResidualAlarms++
		}
		if c.flags&flagKissStorm != 0 {
			s.KissStorms++
		}
		if c.flags&flagQuorumLoss != 0 {
			s.QuorumLossAlarms++
		}
		if c.flags&flagLeap != 0 {
			s.LeapAlarms++
		}
		if c.flags&flagPanic != 0 {
			s.PanicAlarms++
		}
	}
	return s
}

// Eval scores the flagged set against the attack plane's ground truth.
func (s *TimeIntegritySummary) Eval(truth netaddr.Set) Eval {
	return Evaluate(s.Flagged, truth)
}
