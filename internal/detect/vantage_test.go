package detect

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/netflow"
	"ntpddos/internal/reflector"
	"ntpddos/internal/vtime"
)

// encodeExport builds one NetFlow v5 export datagram whose records fold in
// at exactly the header's wall-clock time (age 0).
func encodeExport(t *testing.T, seq uint32, at time.Time, records []netflow.Record) []byte {
	t.Helper()
	const uptime = 600000
	for i := range records {
		records[i].Last = uptime
	}
	data, err := netflow.Encode(netflow.Header{
		SysUptimeMs: uptime, UnixSecs: uint32(at.Unix()), FlowSequence: seq,
	}, records)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestDuplicateExportDoesNotFlipDominance pins satellite coverage for lane
// attribution under duplicated NetFlow exports: a victim whose NTP tap
// stream outweighs its DNS flow stream must stay NTP-classified even when
// the DNS export datagram is replayed (the fabric's duplication fault) —
// sequence-behind exports are dropped before they can inflate a lane.
func TestDuplicateExportDoesNotFlipDominance(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	// NTP lane: 500 Rep-weighted reflected packets via the tap.
	for i := 0; i < 5; i++ {
		d.Observe(monlistResponse(amp, victim, 80, 100), t0.Add(time.Duration(i)*30*time.Second))
	}
	// DNS lane: 300 packets via one flow export. A duplicate would take DNS
	// to 600 and flip the dominant lane.
	dns := []netflow.Record{{
		SrcAddr: amp, DstAddr: victim, SrcPort: reflector.DNSPort, DstPort: 80,
		Packets: 300, Octets: 300 * 600,
	}}
	export := encodeExport(t, 0, t0.Add(3*time.Minute), dns)
	if err := d.IngestExport(export); err != nil {
		t.Fatalf("first export: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := d.IngestExport(export); err != nil {
			t.Fatalf("duplicate export: %v", err)
		}
	}
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if sum.Packets != 800 {
		t.Fatalf("packets = %d, want 800 (duplicates folded in)", sum.Packets)
	}
	for _, a := range sum.Alarms {
		if a.Victim == victim && a.Vector != "ntp" {
			t.Fatalf("alarm vector = %q, want ntp (duplicate inflation flipped dominance)", a.Vector)
		}
	}
}

// TestLateExportResyncsForward checks ahead-of-expectation sequences (lost
// exports) are accepted and resync the cursor rather than wedging the stream.
func TestLateExportResyncsForward(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	rec := func(dst netaddr.Addr) []netflow.Record {
		return []netflow.Record{{
			SrcAddr: amp, DstAddr: dst, SrcPort: reflector.DNSPort, DstPort: 80,
			Packets: 10, Octets: 10 * 600,
		}}
	}
	v2 := netaddr.MustParseAddr("203.0.113.77")
	if err := d.IngestExport(encodeExport(t, 0, t0, rec(victim))); err != nil {
		t.Fatal(err)
	}
	// Sequence jumps ahead (exports 1..4 lost): still folded.
	if err := d.IngestExport(encodeExport(t, 5, t0.Add(time.Minute), rec(v2))); err != nil {
		t.Fatal(err)
	}
	if got := d.packets; got != 20 {
		t.Fatalf("packets = %d, want 20 (resync accepted the ahead export)", got)
	}
}

// TestCollectorOutageHoldsEpisode injects a deterministic collector outage
// into a sustained campaign: the vantage-aware tracker must ride it out
// (one onset, one final offset) while a naive detector fed the identical
// gap-ridden stream flaps mid-campaign.
func TestCollectorOutageHoldsEpisode(t *testing.T) {
	cfg := DefaultConfig()
	t0 := vtime.Epoch
	cfg.Vantage = Vantage{OutageFraction: 0.75, OutagePeriod: 4 * time.Hour, Anchor: t0}
	d := New(cfg)
	naive := New(DefaultConfig())

	end := t0.Add(24 * time.Hour)
	for at := t0; at.Before(end); at = at.Add(10 * time.Minute) {
		dg := monlistResponse(amp, victim, 80, 100)
		d.Observe(dg, at)
		// The naive twin sees exactly what survived the outage: the same
		// stream with the dark windows already carved out.
		if !d.darkAt(at) {
			naive.Observe(dg, at)
		}
		d.sweep(at, false)
		naive.sweep(at, false)
	}
	count := func(det *Detector) (onsets, offsets int) {
		for _, a := range det.Alarms() {
			if a.Onset {
				onsets++
			} else {
				offsets++
			}
		}
		return
	}
	d.Flush(end)
	naive.Flush(end)
	on, off := count(d)
	if on != 1 || off != 1 {
		t.Fatalf("vantage-aware tracker flapped: %d onsets / %d offsets, want 1/1; alarms=%+v",
			on, off, d.Alarms())
	}
	if _, noff := count(naive); noff < 2 {
		t.Fatalf("naive twin rode out the outage (offsets=%d) — the hold test is vacuous", noff)
	}
	// Confidence reflects the dark share of the observation window.
	for _, a := range d.Alarms() {
		if !a.Onset && (a.Confidence <= 0 || a.Confidence > 0.5) {
			t.Fatalf("offset confidence %.3f under a 75%% outage, want (0, 0.5]", a.Confidence)
		}
	}
}

// TestSamplingVantage pins 1-in-N behavior: a heavy flood still alarms (with
// 1/N confidence and re-inflated counts), while a 3-packet micro-flood that
// would qualify under a perfect vantage falls between sample points.
func TestSamplingVantage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vantage = Vantage{SampleN: 16}
	d := New(cfg)
	t0 := vtime.Epoch
	small := netaddr.MustParseAddr("203.0.113.9")
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * 30 * time.Second)
		d.Observe(monlistResponse(amp, victim, 80, 1000), at)
		d.Observe(monlistResponse(amp, small, 80, 1), at)
	}
	sum := d.Summarize(t0.Add(6 * time.Hour))
	if len(sum.Victims) != 1 || sum.Victims[0] != victim {
		t.Fatalf("victims = %v, want only the heavy flood", sum.Victims)
	}
	if sum.Packets < 2900 || sum.Packets > 3100 {
		t.Fatalf("re-inflated packets = %d, want ~3000", sum.Packets)
	}
	var onset *Alarm
	for i, a := range sum.Alarms {
		if a.Onset && a.Victim == victim {
			onset = &sum.Alarms[i]
		}
	}
	if onset == nil || onset.Confidence != 1.0/16 {
		t.Fatalf("onset = %+v, want confidence 1/16", onset)
	}
}

// TestPerfectVantageConfidenceIsOne pins that alarms under a zero-value
// Vantage carry confidence 1.
func TestPerfectVantageConfidenceIsOne(t *testing.T) {
	d := New(DefaultConfig())
	t0 := vtime.Epoch
	for i := 0; i < 5; i++ {
		d.Observe(monlistResponse(amp, victim, 80, 100), t0.Add(time.Duration(i)*30*time.Second))
	}
	for _, a := range d.Summarize(t0.Add(6 * time.Hour)).Alarms {
		if a.Confidence != 1 {
			t.Fatalf("alarm confidence = %v under a perfect vantage, want 1", a.Confidence)
		}
	}
}

// TestSampledOffsetDeadlineWidens pins the gap-tolerance contract: under
// 1-in-N sampling the offset deadline stretches min(N, 4)×.
func TestSampledOffsetDeadlineWidens(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Vantage = Vantage{SampleN: 2}
	d := New(cfg)
	st := &victimState{}
	if got, want := d.offsetDeadline(st), 2*cfg.OffsetGap; got != want {
		t.Fatalf("deadline = %v, want %v (2x widening)", got, want)
	}
	cfg.Vantage = Vantage{SampleN: 64}
	if got, want := New(cfg).offsetDeadline(st), 4*cfg.OffsetGap; got != want {
		t.Fatalf("deadline = %v, want %v (capped 4x widening)", got, want)
	}
}
