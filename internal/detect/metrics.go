package detect

import "ntpddos/internal/metrics"

// Metrics is the detector's live instrumentation. Writes are atomic and
// never touch RNG or scheduler state, preserving the detector-on/off digest
// identity.
type Metrics struct {
	Packets         *metrics.Counter
	Requests        *metrics.Counter
	Responses       *metrics.Counter
	ReflectedBytes  *metrics.Counter
	Suppressed      *metrics.Counter
	ScannersMarked  *metrics.Counter
	Onsets          *metrics.Counter
	Offsets         *metrics.Counter
	SampledOut      *metrics.Counter
	OutageDropped   *metrics.Counter
	DupExports      *metrics.Counter
	Active          *metrics.Gauge
	Tracked         *metrics.Gauge
	ScannerEstimate *metrics.Gauge
}

// NewMetrics registers the detector family on r (nil r yields no-ops).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Packets: r.NewCounter("ntpsim_detect_packets_total",
			"Rep-weighted NTP mode 6/7 packets classified by the detector."),
		Requests: r.NewCounter("ntpsim_detect_requests_total",
			"Rep-weighted mode 6/7 requests observed."),
		Responses: r.NewCounter("ntpsim_detect_responses_total",
			"Rep-weighted mode 6/7 responses observed."),
		ReflectedBytes: r.NewCounter("ntpsim_detect_reflected_bytes_total",
			"On-wire bytes of reflected (response) traffic."),
		Suppressed: r.NewCounter("ntpsim_detect_suppressed_packets_total",
			"Response packets discarded as scanner backscatter."),
		ScannersMarked: r.NewCounter("ntpsim_detect_scanners_marked_total",
			"Distinct sources unmasked as probers via the TTL band."),
		Onsets: r.NewCounter("ntpsim_detect_onset_alarms_total",
			"Victim onset alarms raised."),
		Offsets: r.NewCounter("ntpsim_detect_offset_alarms_total",
			"Victim offset alarms raised."),
		SampledOut: r.NewCounter("ntpsim_detect_sampled_out_packets_total",
			"Rep-weighted packets dropped by 1-in-N vantage sampling."),
		OutageDropped: r.NewCounter("ntpsim_detect_outage_dropped_packets_total",
			"Rep-weighted packets dropped during collector outage windows."),
		DupExports: r.NewCounter("ntpsim_detect_duplicate_exports_total",
			"NetFlow export datagrams dropped as sequence-behind duplicates."),
		Active: r.NewGauge("ntpsim_detect_active_victims",
			"Victims currently between onset and offset."),
		Tracked: r.NewGauge("ntpsim_detect_tracked_victims",
			"Per-victim state entries currently held."),
		ScannerEstimate: r.NewGauge("ntpsim_detect_scanner_cardinality_estimate",
			"HyperLogLog estimate of distinct probing sources."),
	}
}
