package detect

import (
	"time"

	"ntpddos/internal/vtime"
)

// Vantage models the degraded telemetry path between the fabric and this
// detector: NetFlow-style 1-in-N packet sampling and deterministic collector
// outage windows. The zero value is a perfect vantage and is provably inert —
// every gate below is behind a rate check, so an undegraded detector runs the
// exact instruction sequence it ran before Vantage existed.
type Vantage struct {
	// SampleN applies 1-in-N systematic packet sampling to the tap stream.
	// Kept batches are re-inflated ×N (the standard NetFlow scaling), so
	// totals stay calibrated while small flows can vanish entirely — exactly
	// the failure mode that erodes the §4.2 MinCount threshold. 0 or 1 means
	// unsampled.
	SampleN int
	// OutageFraction is the fraction of each OutagePeriod the collector is
	// dark. Everything observed while dark is dropped; the offset sweep
	// subtracts dark time from victim idleness so an outage mid-campaign
	// cannot flap an episode.
	OutageFraction float64
	// OutagePeriod is the outage scheduling window. Zero means 6h.
	OutagePeriod time.Duration
	// Anchor aligns outage windows; the zero value anchors at the simulation
	// epoch. Scenarios anchor at their start time.
	Anchor time.Time
}

// Degraded reports whether this vantage loses any telemetry.
func (v Vantage) Degraded() bool { return v.SampleN > 1 || v.OutageFraction > 0 }

func (v Vantage) period() time.Duration {
	if v.OutagePeriod > 0 {
		return v.OutagePeriod
	}
	return 6 * time.Hour
}

func (v Vantage) anchorTime() time.Time {
	if !v.Anchor.IsZero() {
		return v.Anchor
	}
	return vtime.Epoch
}

// vantMix is a murmur-style finalizer (same mix netsim's pairHash uses) for
// deriving outage schedules by pure hashing, never RNG draws — the schedule
// must be a function of (seed, window index) alone so replaying a stream
// reproduces it exactly.
func vantMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vantUnit maps a 64-bit hash onto [0, 1).
func vantUnit(h uint64) float64 {
	return float64(h>>11) * 0x1p-53
}

// darkSpan returns window w's outage placement: the offset of the dark
// stretch inside the window and its length. The offset is hash-jittered per
// window so outages don't beat against periodic traffic.
func (d *Detector) darkSpan(w int64) (off, length time.Duration) {
	v := d.cfg.Vantage
	p := v.period()
	if v.OutageFraction >= 1 {
		return 0, p
	}
	length = time.Duration(v.OutageFraction * float64(p))
	off = time.Duration(vantUnit(vantMix(uint64(w)*0x9e3779b97f4a7c15^d.vantSalt)) * float64(p-length))
	return off, length
}

// windowOf floor-divides a time offset into (window index, remainder).
func windowOf(since time.Time, anchor time.Time, p time.Duration) (int64, time.Duration) {
	rel := since.Sub(anchor)
	w := int64(rel / p)
	rem := rel % p
	if rem < 0 {
		w--
		rem += p
	}
	return w, rem
}

// darkAt reports whether the collector is inside an outage window at t.
func (d *Detector) darkAt(t time.Time) bool {
	v := d.cfg.Vantage
	if v.OutageFraction <= 0 {
		return false
	}
	w, rem := windowOf(t, v.anchorTime(), v.period())
	off, length := d.darkSpan(w)
	return rem >= off && rem < off+length
}

// darkOverlap returns how much of [from, to] the collector spent dark. The
// offset sweep subtracts this from victim idleness ("the vantage was blind,
// not the victim quiet"), and alarm confidence scales by its complement.
func (d *Detector) darkOverlap(from, to time.Time) time.Duration {
	v := d.cfg.Vantage
	if v.OutageFraction <= 0 || !to.After(from) {
		return 0
	}
	p := v.period()
	anchor := v.anchorTime()
	w0, _ := windowOf(from, anchor, p)
	w1, _ := windowOf(to, anchor, p)
	if w1-w0 > 1<<16 {
		// Absurdly wide ranges (a backdated first-seen) fall back to the
		// long-run expectation; still deterministic.
		return time.Duration(v.OutageFraction * float64(to.Sub(from)))
	}
	a, b := from.Sub(anchor), to.Sub(anchor)
	var total time.Duration
	for w := w0; w <= w1; w++ {
		off, length := d.darkSpan(w)
		ds := time.Duration(w)*p + off
		de := ds + length
		lo, hi := ds, de
		if a > lo {
			lo = a
		}
		if b < hi {
			hi = b
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// sampleRep applies 1-in-N systematic sampling to a Rep-weighted batch via a
// phase accumulator (no randomness: the k-th, 2k-th, ... packets of the
// stream are the kept ones) and re-inflates survivors ×N. Returns 0 when the
// batch fell entirely between sample points.
func (d *Detector) sampleRep(rep int64) int64 {
	n := int64(d.cfg.Vantage.SampleN)
	if n <= 1 {
		return rep
	}
	d.samplePhase += rep
	kept := d.samplePhase / n
	d.samplePhase %= n
	return kept * n
}

// confidence scores an alarm's telemetry quality in [0, 1]: 1 under a
// perfect vantage, divided by the sampling rate and scaled by the live
// (non-outage) fraction of the victim's observation window.
func (d *Detector) confidence(st *victimState, now time.Time) float64 {
	v := d.cfg.Vantage
	c := 1.0
	if v.SampleN > 1 {
		c /= float64(v.SampleN)
	}
	if v.OutageFraction > 0 {
		if window := now.Sub(st.first); window > 0 {
			live := 1 - float64(d.darkOverlap(st.first, now))/float64(window)
			if live < 0 {
				live = 0
			}
			c *= live
		}
	}
	return c
}
