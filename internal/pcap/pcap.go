// Package pcap reads and writes libpcap capture files (the classic
// tcpdump format) containing raw IPv4 packets.
//
// The paper's central dataset is exactly this: "capturing all response
// packets" of the OpenNTPProject scans, shared as packet captures. This
// package lets the reproduction persist its survey samples in the same
// interchange format — and, conversely, lets the analysis pipeline ingest
// real monlist-scan pcaps unchanged.
//
// The format is the 24-byte global header followed by per-packet records
// (16-byte header + data). We write LINKTYPE_RAW (101): packets begin at
// the IPv4 header, which is what the simulation produces.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for microsecond-resolution captures.
const (
	magicLE = 0xa1b2c3d4 // written natively, little-endian on wire here
	// LinkTypeRaw means packet data starts at the IP header.
	LinkTypeRaw = 101
	// DefaultSnapLen is the capture length limit we advertise.
	DefaultSnapLen = 65535
)

// ErrBadMagic reports a file that is not a microsecond pcap.
var ErrBadMagic = errors.New("pcap: bad magic")

// Packet is one captured record.
type Packet struct {
	Timestamp time.Time
	// Data is the raw IPv4 packet (header + payload).
	Data []byte
	// OrigLen is the original length on the wire (>= len(Data) when the
	// capture was truncated by the snap length).
	OrigLen int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen int
	wrote   bool
}

// NewWriter returns a Writer. The file header is written lazily on the
// first packet (or by Flush), so creating a Writer never fails.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:], magicLE)
	binary.LittleEndian.PutUint16(h[4:], 2)  // version major
	binary.LittleEndian.PutUint16(h[6:], 4)  // version minor
	binary.LittleEndian.PutUint32(h[8:], 0)  // thiszone
	binary.LittleEndian.PutUint32(h[12:], 0) // sigfigs
	binary.LittleEndian.PutUint32(h[16:], uint32(w.snapLen))
	binary.LittleEndian.PutUint32(h[20:], LinkTypeRaw)
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	if err := w.header(); err != nil {
		return err
	}
	data := p.Data
	orig := p.OrigLen
	if orig < len(data) {
		orig = len(data) // original length before any snap truncation
	}
	if len(data) > w.snapLen {
		data = data[:w.snapLen]
	}
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(p.Timestamp.Unix()))
	binary.LittleEndian.PutUint32(h[4:], uint32(p.Timestamp.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(h[12:], uint32(orig))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Flush ensures the file header exists even for an empty capture.
func (w *Writer) Flush() error { return w.header() }

// Reader consumes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	LinkType uint32
	SnapLen  int
}

// NewReader validates the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var h [24]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(h[0:]) {
	case magicLE:
		order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(h[0:]) == magicLE {
			order = binary.BigEndian
		} else {
			return nil, ErrBadMagic
		}
	}
	return &Reader{
		r:        r,
		order:    order,
		SnapLen:  int(order.Uint32(h[16:])),
		LinkType: order.Uint32(h[20:]),
	}, nil
}

// ReadPacket returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) ReadPacket() (Packet, error) {
	var h [16]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: short record header: %w", err)
	}
	sec := r.order.Uint32(h[0:])
	usec := r.order.Uint32(h[4:])
	capLen := r.order.Uint32(h[8:])
	origLen := r.order.Uint32(h[12:])
	if int(capLen) > r.SnapLen || capLen > 1<<24 {
		return Packet{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: short packet body: %w", err)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
