package pcap

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Date(2014, 1, 10, 2, 30, 0, 123456000, time.UTC)
	dg := packet.NewDatagram(netaddr.MustParseAddr("10.0.0.1"), 57915,
		netaddr.MustParseAddr("10.0.0.2"), 123,
		ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1))
	raw, err := dg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(Packet{Timestamp: ts, Data: raw}); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw || r.SnapLen != DefaultSnapLen {
		t.Fatalf("header = %d/%d", r.LinkType, r.SnapLen)
	}
	got, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Timestamp.Equal(ts) {
		t.Fatalf("timestamp = %v, want %v", got.Timestamp, ts)
	}
	if !bytes.Equal(got.Data, raw) {
		t.Fatal("packet data corrupted")
	}
	// The stored packet must decode as a valid datagram again.
	back, err := packet.DecodeDatagram(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	if back.UDP.DstPort != 123 {
		t.Fatalf("dst port %d", back.UDP.DstPort)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestManyPacketsProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []Packet
		base := time.Date(2014, 2, 11, 0, 0, 0, 0, time.UTC)
		for i, pl := range payloads {
			if len(pl) > 1200 {
				pl = pl[:1200]
			}
			dg := packet.NewDatagram(netaddr.Addr(uint32(i)), 1, netaddr.Addr(uint32(i)+7), 123, pl)
			raw, err := dg.Encode()
			if err != nil {
				return false
			}
			p := Packet{Timestamp: base.Add(time.Duration(i) * time.Millisecond), Data: raw}
			if w.WritePacket(p) != nil {
				return false
			}
			want = append(want, p)
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, want[i].Data) || !got[i].Timestamp.Equal(want[i].Timestamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCaptureStillHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty capture = %d bytes, want 24", buf.Len())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil || len(pkts) != 0 {
		t.Fatalf("empty capture read %d/%v", len(pkts), err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("zero magic accepted: %v", err)
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WritePacket(Packet{Timestamp: time.Unix(0, 0), Data: make([]byte, 100)})
	raw := buf.Bytes()
	// Cut inside the packet body.
	r, err := NewReader(bytes.NewReader(raw[:24+16+40]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil || err == io.EOF {
		t.Fatalf("truncated body not detected: %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.snapLen = 64
	big := make([]byte, 500)
	w.WritePacket(Packet{Timestamp: time.Unix(1, 0), Data: big})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 64 || p.OrigLen != 500 {
		t.Fatalf("snap = %d/%d, want 64/500", len(p.Data), p.OrigLen)
	}
}

func TestBigEndianCapture(t *testing.T) {
	// Hand-build a big-endian header + one record; the reader must cope.
	var buf bytes.Buffer
	head := make([]byte, 24)
	head[0], head[1], head[2], head[3] = 0xa1, 0xb2, 0xc3, 0xd4 // BE magic
	head[17] = 0x01                                             // version hi (don't care)
	head[16+2], head[16+3] = 0xff, 0xff                         // snaplen BE 0x0001ffff? keep simple:
	// snaplen = 65535 big-endian at offset 16
	head[16], head[17], head[18], head[19] = 0, 0, 0xff, 0xff
	head[20], head[21], head[22], head[23] = 0, 0, 0, 101
	buf.Write(head)
	rec := make([]byte, 16)
	rec[0], rec[1], rec[2], rec[3] = 0, 0, 0, 10 // ts sec = 10
	rec[8], rec[9], rec[10], rec[11] = 0, 0, 0, 3
	rec[12], rec[13], rec[14], rec[15] = 0, 0, 0, 3
	buf.Write(rec)
	buf.Write([]byte{0xaa, 0xbb, 0xcc})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp.Unix() != 10 || len(p.Data) != 3 || p.Data[0] != 0xaa {
		t.Fatalf("big-endian record misparsed: %+v", p)
	}
}
