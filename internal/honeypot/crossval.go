package honeypot

import (
	"sort"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/vtime"
)

// MatchSlack pads campaign windows when joining events against ground
// truth, absorbing path latency and trigger batching.
const MatchSlack = 10 * time.Minute

// Validation joins detected events against the attack engine's ground-truth
// campaign log.
type Validation struct {
	// Campaigns is the ground-truth count; Detected of them matched at
	// least one event on (victim, port) with overlapping time.
	Campaigns int
	Detected  int
	// CampaignSensors holds, per ground-truth campaign, the sorted sensor
	// indices that observed it (empty when undetected) — the convergence
	// analysis input.
	CampaignSensors [][]int
	// MatchedEvents / UnmatchedEvents partition the event list. Unmatched
	// events have no ground-truth campaign: scan-only traffic misdetected as
	// an attack would land here, so the scenario asserts it stays empty.
	MatchedEvents   int
	UnmatchedEvents []*Event
	// MergedCampaigns counts campaigns that shared their matched event with
	// another campaign — distinct flow-level attacks a honeypot vantage
	// reports as one (the honeypot-vs-flow disagreement).
	MergedCampaigns int
}

// DetectionRate returns the fraction of ground-truth campaigns detected.
func (v *Validation) DetectionRate() float64 {
	if v.Campaigns == 0 {
		return 0
	}
	return float64(v.Detected) / float64(v.Campaigns)
}

// Validate joins events against launched campaigns.
func Validate(events []*Event, truth []attack.Campaign) *Validation {
	byKey := make(map[flowKey][]*Event, len(events))
	for _, e := range events {
		k := flowKey{addr: e.Victim, port: e.Port}
		byKey[k] = append(byKey[k], e)
	}
	v := &Validation{Campaigns: len(truth)}
	matched := make(map[*Event]int, len(events))
	for _, c := range truth {
		var sensors map[int]struct{}
		hitShared := false
		for _, e := range byKey[flowKey{addr: c.Victim, port: c.Port}] {
			if e.First.After(c.Start.Add(c.Duration).Add(MatchSlack)) ||
				e.Last.Before(c.Start.Add(-MatchSlack)) {
				continue
			}
			if matched[e] > 0 {
				hitShared = true
			}
			matched[e]++
			if sensors == nil {
				sensors = make(map[int]struct{}, len(e.Sensors))
			}
			for i := range e.Sensors {
				sensors[i] = struct{}{}
			}
		}
		list := make([]int, 0, len(sensors))
		for i := range sensors {
			list = append(list, i)
		}
		sort.Ints(list)
		v.CampaignSensors = append(v.CampaignSensors, list)
		if len(list) > 0 {
			v.Detected++
		}
		if hitShared {
			v.MergedCampaigns++
		}
	}
	for _, e := range events {
		if matched[e] == 0 {
			v.UnmatchedEvents = append(v.UnmatchedEvents, e)
		} else {
			v.MatchedEvents++
		}
	}
	return v
}

// Convergence returns, for k = 1..numSensors, the fraction of ground-truth
// campaigns observed by at least one of the first k sensors — "how many
// sensors does it take to see X% of the attacks", the fleet-sizing question
// every honeypot deployment paper asks. Deployment order is random with
// respect to campaigns, so the prefix is an unbiased sample.
func (v *Validation) Convergence(numSensors int) []float64 {
	out := make([]float64, numSensors)
	if v.Campaigns == 0 {
		return out
	}
	// minSensor per campaign: the smallest observing index (or -1).
	for _, sensors := range v.CampaignSensors {
		if len(sensors) == 0 {
			continue
		}
		min := sensors[0]
		for k := min; k < numSensors; k++ {
			out[k]++
		}
	}
	for k := range out {
		out[k] /= float64(v.Campaigns)
	}
	return out
}

// CrossMonth is one month of the three-vantage comparison: what the
// honeypot fleet, the fabric ground truth, and the global telemetry feed
// each call "an NTP attack" in that month.
type CrossMonth struct {
	Month time.Time
	// HoneypotEvents is the fleet's event count (merged bursts and all).
	HoneypotEvents int
	// FabricCampaigns is the ground-truth campaign count.
	FabricCampaigns int
	// TelemetryNTP is the telemetry feed's labeled NTP attack count (its
	// census is independent of the fabric — the feeds genuinely disagree,
	// as the real ones do).
	TelemetryNTP int
}

// SiteOverlap compares the victim populations two vantages recovered.
type SiteOverlap struct {
	Site string
	// SiteVictims is the ISP tap's victim count; Overlap of them also
	// appear as honeypot event victims.
	SiteVictims int
	Overlap     int
}

// CrossVantage is the full consistency report.
type CrossVantage struct {
	Months []CrossMonth
	Sites  []SiteOverlap
}

// CrossValidate assembles the cross-vantage comparison. telemetryNTP maps
// month → labeled NTP attack count (from telemetry.Collector); siteVictims
// maps ISP vantage name → victim set (from ispview.View.VictimSet).
func CrossValidate(events []*Event, truth []attack.Campaign,
	telemetryNTP map[time.Time]int, siteVictims map[string]netaddr.Set) *CrossVantage {

	months := make(map[time.Time]*CrossMonth)
	get := func(m time.Time) *CrossMonth {
		cm, ok := months[m]
		if !ok {
			cm = &CrossMonth{Month: m}
			months[m] = cm
		}
		return cm
	}
	victims := netaddr.NewSet(len(events))
	for _, e := range events {
		get(vtime.Month(e.First)).HoneypotEvents++
		victims.Add(e.Victim)
	}
	for _, c := range truth {
		get(vtime.Month(c.Start)).FabricCampaigns++
	}
	for m, n := range telemetryNTP {
		get(m).TelemetryNTP = n
	}

	cv := &CrossVantage{}
	keys := make([]time.Time, 0, len(months))
	for m := range months {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	for _, m := range keys {
		cv.Months = append(cv.Months, *months[m])
	}

	names := make([]string, 0, len(siteVictims))
	for name := range siteVictims {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		set := siteVictims[name]
		cv.Sites = append(cv.Sites, SiteOverlap{
			Site:        name,
			SiteVictims: set.Len(),
			Overlap:     set.IntersectCount(victims),
		})
	}
	return cv
}

// Summary bundles everything the scenario exposes in Results: the event
// list, the ground-truth join, the convergence curve and the cross-vantage
// comparison, plus fleet operating counters.
type Summary struct {
	NumSensors int
	Events     []*Event
	Validation *Validation
	// Convergence[k-1] is the fraction of campaigns seen by the first k
	// sensors.
	Convergence []float64
	Cross       *CrossVantage

	ScannerSources     []netaddr.Addr
	QueriesSeen        int64
	PrimingSeen        int64
	RepliesSent        int64
	RepliesSuppressed  int64
	SuppressedScanners int64
}

// Summarize flushes the fleet's detector and builds the summary. now is the
// end-of-run time used to close open events.
func Summarize(f *Fleet, truth []attack.Campaign, telemetryNTP map[time.Time]int,
	siteVictims map[string]netaddr.Set, now time.Time) *Summary {

	f.Detector.Flush(now)
	events := f.Detector.Events()
	val := Validate(events, truth)
	return &Summary{
		NumSensors:         len(f.Sensors),
		Events:             events,
		Validation:         val,
		Convergence:        val.Convergence(len(f.Sensors)),
		Cross:              CrossValidate(events, truth, telemetryNTP, siteVictims),
		ScannerSources:     f.Detector.ScannerSources(),
		QueriesSeen:        f.QueriesSeen(),
		PrimingSeen:        f.PrimingSeen(),
		RepliesSent:        f.RepliesSent(),
		RepliesSuppressed:  f.RepliesSuppressed(),
		SuppressedScanners: f.Detector.SuppressedScanners,
	}
}
