package honeypot

import (
	"testing"
	"time"

	"ntpddos/internal/attack"
	"ntpddos/internal/netaddr"
	"ntpddos/internal/netsim"
	"ntpddos/internal/ntp"
	"ntpddos/internal/packet"
	"ntpddos/internal/rng"
	"ntpddos/internal/vtime"
)

func testHarness() (*netsim.Network, *vtime.Scheduler) {
	var clock vtime.Clock
	sched := vtime.NewScheduler(&clock)
	return netsim.New(sched, nil), sched
}

func sensorAddrs(n int) []netaddr.Addr {
	addrs := make([]netaddr.Addr, n)
	base := netaddr.MustParseAddr("100.64.0.10")
	for i := range addrs {
		addrs[i] = base + netaddr.Addr(i*256)
	}
	return addrs
}

func deployFleet(t *testing.T, nw *netsim.Network, n int) *Fleet {
	t.Helper()
	f := NewFleet(DefaultConfig(n), sensorAddrs(n), rng.New(7).Fork("honeypot"))
	if len(f.Sensors) != n {
		t.Fatalf("fleet has %d sensors, want %d", len(f.Sensors), n)
	}
	f.Register(nw)
	return f
}

// repCollector counts Rep-weighted packets delivered to one address.
type repCollector struct{ packets int64 }

func (c *repCollector) HandlePacket(_ *netsim.Network, dg *packet.Datagram, _ time.Time) {
	rep := dg.Rep
	if rep <= 0 {
		rep = 1
	}
	c.packets += rep
}

var monlistProbe = ntp.NewMonlistRequest(ntp.ImplXNTPD, ntp.ReqMonGetList1)

// spoofedTrigger mimics the attack engine's batched trigger datagram.
func spoofedTrigger(victim netaddr.Addr, port uint16, sensor netaddr.Addr, rep int64) *packet.Datagram {
	dg := packet.NewDatagram(victim, port, sensor, ntp.Port, monlistProbe)
	dg.IP.TTL = netsim.TTLWindows
	dg.Rep = rep
	return dg
}

func TestFleetDetectsSpoofedCampaign(t *testing.T) {
	nw, sched := testHarness()
	fleet := deployFleet(t, nw, 8)
	bot := netaddr.MustParseAddr("198.51.100.50")
	victim := netaddr.MustParseAddr("203.0.113.80")
	vcol := &repCollector{}
	nw.Register(victim, vcol)

	// Six 30s-spaced trigger batches of 100 packets to three of the eight
	// sensors — a mid-size fabric campaign.
	start := nw.Now().Add(time.Minute)
	included := []int{0, 2, 4}
	for b := 0; b < 6; b++ {
		at := start.Add(time.Duration(b) * 30 * time.Second)
		sched.At(at, func(now time.Time) {
			for _, idx := range included {
				nw.SendFrom(bot, spoofedTrigger(victim, 80, fleet.Sensors[idx].Addr, 100))
			}
		})
	}
	sched.Drain()
	fleet.Detector.Flush(nw.Now())

	events := fleet.Detector.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Victim != victim || ev.Port != 80 {
		t.Fatalf("event key %v:%d, want %v:80", ev.Victim, ev.Port, victim)
	}
	if ev.Packets != 6*100*int64(len(included)) {
		t.Fatalf("event packets = %d, want %d", ev.Packets, 6*100*len(included))
	}
	if len(ev.Sensors) != len(included) {
		t.Fatalf("event seen by %d sensors, want %d", len(ev.Sensors), len(included))
	}
	if ev.Bursts != 1 {
		t.Fatalf("30s-spaced batches split into %d bursts, want 1", ev.Bursts)
	}
	if d := ev.Duration(); d < 2*time.Minute || d > 3*time.Minute {
		t.Fatalf("event duration %v, want ≈2.5min", d)
	}
	// RRL must clamp the reflected flood: each 100-packet batch is granted
	// at most the 20-packet per-source budget, so the victim receives no
	// more than a fifth of the trigger volume.
	if vcol.packets == 0 {
		t.Fatal("victim received nothing — RRL should answer within budget")
	}
	if vcol.packets > 6*20*int64(len(included)) {
		t.Fatalf("victim received %d packets — RRL did not clamp", vcol.packets)
	}
	if fleet.RepliesSuppressed() == 0 {
		t.Fatal("RepliesSuppressed = 0, want > 0")
	}
	if got := fleet.RepliesSent() + fleet.RepliesSuppressed(); got != fleet.QueriesSeen() {
		t.Fatalf("sent %d + suppressed %d != queries %d",
			fleet.RepliesSent(), fleet.RepliesSuppressed(), fleet.QueriesSeen())
	}
}

func TestScanProbesProduceNoEvents(t *testing.T) {
	nw, sched := testHarness()
	fleet := deployFleet(t, nw, 8)
	scanner := netaddr.MustParseAddr("198.51.100.7")
	scol := &repCollector{}
	nw.Register(scanner, scol)

	// Three full sweeps of the fleet, each probe from a fresh ephemeral
	// port — the zmap idiom. Rep is always 1.
	src := rng.New(11)
	start := nw.Now().Add(time.Minute)
	for sweep := 0; sweep < 3; sweep++ {
		for i, s := range fleet.Sensors {
			at := start.Add(time.Duration(sweep)*time.Hour + time.Duration(i)*time.Second)
			port := 32768 + uint16(src.IntN(28000))
			addr := s.Addr
			sched.At(at, func(now time.Time) {
				nw.SendUDP(scanner, port, addr, ntp.Port, netsim.TTLLinux, monlistProbe)
			})
		}
	}
	sched.Drain()
	fleet.Detector.Flush(nw.Now())

	if events := fleet.Detector.Events(); len(events) != 0 {
		t.Fatalf("scan-only traffic produced %d events: %+v", len(events), events)
	}
	// Every probe must be answered — staying responsive is the bait.
	if scol.packets != 3*8 {
		t.Fatalf("scanner got %d responses, want %d", scol.packets, 3*8)
	}
	// And the source profile must classify as a scanner.
	scanners := fleet.Detector.ScannerSources()
	if len(scanners) != 1 || scanners[0] != scanner {
		t.Fatalf("ScannerSources = %v, want [%v]", scanners, scanner)
	}
}

func TestSensorAnswersReadVarAndPriming(t *testing.T) {
	nw, sched := testHarness()
	fleet := deployFleet(t, nw, 2)
	client := netaddr.MustParseAddr("192.0.2.33")
	col := &repCollector{}
	nw.Register(client, col)

	nw.SendUDP(client, 5000, fleet.Sensors[0].Addr, ntp.Port, netsim.TTLLinux,
		ntp.NewReadVarRequest(3))
	req := ntp.NewClientRequest(nw.Now()).AppendTo(nil)
	nw.SendUDP(client, 5001, fleet.Sensors[0].Addr, ntp.Port, netsim.TTLLinux, req)
	sched.Drain()

	if col.packets < 2 {
		t.Fatalf("client got %d packets, want readvar + server reply", col.packets)
	}
	if fleet.PrimingSeen() != 1 {
		t.Fatalf("PrimingSeen = %d, want 1", fleet.PrimingSeen())
	}
	// Mode 6/readvar and mode 3 must not feed the attack detector.
	if fleet.Detector.Requests != 0 {
		t.Fatalf("detector ingested %d non-monlist requests", fleet.Detector.Requests)
	}
}

func TestDetectorBurstsAndEventExpiry(t *testing.T) {
	cfg := DefaultDetectorConfig(4)
	d := NewDetector(cfg)
	victim := netaddr.MustParseAddr("203.0.113.9")
	now := vtime.Epoch

	// First episode: two bursts separated by more than BurstGap but less
	// than EventGap — one event, two bursts.
	d.Ingest(0, victim, 80, 110, 30, now)
	d.Ingest(1, victim, 80, 110, 30, now.Add(10*time.Second))
	t2 := now.Add(cfg.BurstGap + time.Minute)
	d.Ingest(0, victim, 80, 110, 30, t2)

	// Second episode after EventGap: a separate event.
	t3 := t2.Add(cfg.EventGap + time.Minute)
	d.Ingest(2, victim, 80, 110, 30, t3)
	d.Ingest(3, victim, 80, 110, 30, t3.Add(5*time.Second))
	d.Flush(t3.Add(time.Minute))

	events := d.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (EventGap split): %+v", len(events), events)
	}
	if events[0].Bursts != 2 {
		t.Fatalf("first event has %d bursts, want 2 (BurstGap merge)", events[0].Bursts)
	}
	if events[1].Bursts != 1 || len(events[1].Sensors) != 2 {
		t.Fatalf("second event bursts=%d sensors=%d, want 1 and 2",
			events[1].Bursts, len(events[1].Sensors))
	}
	if got := events[0].SensorList(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("first event sensors %v, want [0 1]", got)
	}
}

func TestDetectorBelowThresholdNoEvent(t *testing.T) {
	cfg := DefaultDetectorConfig(4)
	d := NewDetector(cfg)
	victim := netaddr.MustParseAddr("203.0.113.9")
	now := vtime.Epoch

	// 14 Rep-weighted packets inside the window: below MinPackets 15.
	d.Ingest(0, victim, 80, 110, 14, now)
	// 15 more but outside the window — the old sample must be evicted.
	d.Ingest(0, victim, 80, 110, 14, now.Add(cfg.Window+time.Second))
	d.Flush(now.Add(time.Hour))
	if events := d.Events(); len(events) != 0 {
		t.Fatalf("sub-threshold traffic produced %d events", len(events))
	}
}

func TestValidateAndConvergence(t *testing.T) {
	v1 := netaddr.MustParseAddr("203.0.113.1")
	v2 := netaddr.MustParseAddr("203.0.113.2")
	v3 := netaddr.MustParseAddr("203.0.113.3")
	epoch := vtime.Epoch
	events := []*Event{
		{Victim: v1, Port: 80, First: epoch.Add(time.Minute), Last: epoch.Add(10 * time.Minute),
			Sensors: map[int]struct{}{1: {}, 3: {}}},
		{Victim: v2, Port: 53, First: epoch.Add(2 * time.Hour), Last: epoch.Add(3 * time.Hour),
			Sensors: map[int]struct{}{0: {}}},
		// Unmatched: right key shape, but no campaign anywhere near it.
		{Victim: v3, Port: 80, First: epoch.Add(48 * time.Hour), Last: epoch.Add(49 * time.Hour),
			Sensors: map[int]struct{}{2: {}}},
	}
	truth := []attackCampaign{
		{victim: v1, port: 80, start: epoch, dur: 9 * time.Minute},
		{victim: v2, port: 53, start: epoch.Add(2 * time.Hour), dur: time.Hour},
		{victim: v1, port: 443, start: epoch, dur: time.Hour}, // undetected: port differs
	}
	val := Validate(events, toCampaigns(truth))
	if val.Campaigns != 3 || val.Detected != 2 {
		t.Fatalf("detected %d/%d, want 2/3", val.Detected, val.Campaigns)
	}
	if got := val.DetectionRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("detection rate %.3f, want 2/3", got)
	}
	if len(val.UnmatchedEvents) != 1 || val.UnmatchedEvents[0].Victim != v3 {
		t.Fatalf("unmatched = %+v, want the v3 event", val.UnmatchedEvents)
	}
	if val.MatchedEvents != 2 {
		t.Fatalf("matched = %d, want 2", val.MatchedEvents)
	}

	conv := val.Convergence(4)
	if len(conv) != 4 {
		t.Fatalf("convergence has %d points, want 4", len(conv))
	}
	// Sensor 0 sees only campaign 2 → 1/3; sensors 0..1 add campaign 1 → 2/3;
	// no campaign becomes visible after that.
	want := []float64{1.0 / 3, 2.0 / 3, 2.0 / 3, 2.0 / 3}
	for k := range conv {
		if diff := conv[k] - want[k]; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("convergence[%d] = %.3f, want %.3f (full: %v)", k, conv[k], want[k], conv)
		}
	}
	for k := 1; k < len(conv); k++ {
		if conv[k] < conv[k-1] {
			t.Fatalf("convergence not monotone: %v", conv)
		}
	}
}

func TestCrossValidateJoinsVantages(t *testing.T) {
	v1 := netaddr.MustParseAddr("203.0.113.1")
	v2 := netaddr.MustParseAddr("203.0.113.2")
	epoch := vtime.Epoch
	feb := epoch.AddDate(0, 1, 0)
	events := []*Event{
		{Victim: v1, Port: 80, First: epoch.Add(time.Hour), Last: epoch.Add(2 * time.Hour)},
		{Victim: v2, Port: 53, First: feb.Add(time.Hour), Last: feb.Add(2 * time.Hour)},
	}
	truth := []attackCampaign{
		{victim: v1, port: 80, start: epoch.Add(time.Hour), dur: time.Hour},
	}
	site := netaddr.NewSet(2)
	site.Add(v1)
	site.Add(netaddr.MustParseAddr("203.0.113.99")) // seen only at the ISP
	cv := CrossValidate(events, toCampaigns(truth),
		map[time.Time]int{vtime.Month(epoch): 5},
		map[string]netaddr.Set{"Midwest": site})

	if len(cv.Months) != 2 {
		t.Fatalf("got %d months, want 2: %+v", len(cv.Months), cv.Months)
	}
	m0 := cv.Months[0]
	if m0.HoneypotEvents != 1 || m0.FabricCampaigns != 1 || m0.TelemetryNTP != 5 {
		t.Fatalf("month 0 = %+v, want 1/1/5", m0)
	}
	if cv.Months[1].HoneypotEvents != 1 || cv.Months[1].TelemetryNTP != 0 {
		t.Fatalf("month 1 = %+v, want 1 event, 0 telemetry", cv.Months[1])
	}
	if len(cv.Sites) != 1 || cv.Sites[0].SiteVictims != 2 || cv.Sites[0].Overlap != 1 {
		t.Fatalf("sites = %+v, want Midwest 2 victims / 1 overlap", cv.Sites)
	}
}

// attackCampaign keeps the test's truth table compact.
type attackCampaign struct {
	victim netaddr.Addr
	port   uint16
	start  time.Time
	dur    time.Duration
}

func toCampaigns(in []attackCampaign) []attack.Campaign {
	out := make([]attack.Campaign, len(in))
	for i, c := range in {
		out[i] = attack.Campaign{Victim: c.victim, Port: c.port, Start: c.start, Duration: c.dur}
	}
	return out
}

// TestSensorBlackoutDropsAndStaysSilent pins the blackout vantage fault:
// a fully dark fleet (fraction 1) answers nothing and feeds the detector
// nothing, while the blackout accounting conserves every arrival. A
// zero-fraction fleet is untouched.
func TestSensorBlackoutDropsAndStaysSilent(t *testing.T) {
	nw, sched := testHarness()
	cfg := DefaultConfig(4)
	cfg.BlackoutFraction = 1
	fleet := NewFleet(cfg, sensorAddrs(4), rng.New(7).Fork("honeypot"))
	fleet.Register(nw)
	bot := netaddr.MustParseAddr("198.51.100.50")
	victim := netaddr.MustParseAddr("203.0.113.80")
	vcol := &repCollector{}
	nw.Register(victim, vcol)
	for b := 0; b < 6; b++ {
		at := nw.Now().Add(time.Duration(b+1) * 30 * time.Second)
		sched.At(at, func(time.Time) {
			nw.SendFrom(bot, spoofedTrigger(victim, 80, fleet.Sensors[0].Addr, 100))
		})
	}
	sched.Drain()
	if fleet.QueriesSeen() != 0 || fleet.RepliesSent() != 0 || vcol.packets != 0 {
		t.Fatalf("dark fleet answered: queries=%d replies=%d victim=%d",
			fleet.QueriesSeen(), fleet.RepliesSent(), vcol.packets)
	}
	if fleet.BlackoutDropped() != 600 {
		t.Fatalf("BlackoutDropped = %d, want 600", fleet.BlackoutDropped())
	}
	fleet.Detector.Flush(nw.Now())
	if evs := fleet.Detector.Events(); len(evs) != 0 {
		t.Fatalf("dark fleet raised %d events", len(evs))
	}
}

// TestSensorBlackoutPhasesDiffer pins the per-sensor hash phase: with a
// fractional blackout, at least one instant finds some sensors dark and
// others live, so fleet coverage degrades smoothly instead of in unison.
func TestSensorBlackoutPhasesDiffer(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.BlackoutFraction = 0.5
	cfg.BlackoutPeriod = 4 * time.Hour
	fleet := NewFleet(cfg, sensorAddrs(8), rng.New(7).Fork("honeypot"))
	mixed := false
	for step := 0; step < 48 && !mixed; step++ {
		at := vtime.Epoch.Add(time.Duration(step) * 30 * time.Minute)
		dark, live := 0, 0
		for i := range fleet.Sensors {
			if fleet.sensorDark(i, at) {
				dark++
			} else {
				live++
			}
		}
		if dark > 0 && live > 0 {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("blackout windows never overlapped partially across the fleet")
	}
	// Determinism: the schedule is a pure function of (index, time).
	if fleet.sensorDark(3, vtime.Epoch.Add(time.Hour)) != fleet.sensorDark(3, vtime.Epoch.Add(time.Hour)) {
		t.Fatal("sensorDark not deterministic")
	}
}
