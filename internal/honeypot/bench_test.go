package honeypot

import (
	"testing"
	"time"

	"ntpddos/internal/netaddr"
	"ntpddos/internal/vtime"
)

// BenchmarkDetectorIngestAttack measures the hot path under attack load:
// one victim key, batched triggers arriving across the fleet.
func BenchmarkDetectorIngestAttack(b *testing.B) {
	d := NewDetector(DefaultDetectorConfig(24))
	victim := netaddr.MustParseAddr("203.0.113.9")
	now := vtime.Epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Ingest(i%24, victim, 80, 110, 30, now.Add(time.Duration(i)*time.Second))
	}
}

// BenchmarkDetectorIngestScan measures the worst case for state growth:
// every probe is a fresh (source, port) key, exercising map churn and the
// periodic prune.
func BenchmarkDetectorIngestScan(b *testing.B) {
	d := NewDetector(DefaultDetectorConfig(24))
	now := vtime.Epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := netaddr.Addr(0x0a000000 + uint32(i%100000))
		d.Ingest(i%24, src, 32768+uint16(i%28000), 50, 1, now.Add(time.Duration(i)*time.Second))
	}
}

// BenchmarkDetectorWindowAggregation stresses the sliding-window eviction:
// a dense packet train inside one window so every ingest both appends and
// compacts.
func BenchmarkDetectorWindowAggregation(b *testing.B) {
	d := NewDetector(DefaultDetectorConfig(24))
	victim := netaddr.MustParseAddr("203.0.113.9")
	now := vtime.Epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// 500ms spacing: a one-minute window holds ~120 samples at steady
		// state, so eviction runs on every call.
		d.Ingest(i%24, victim, 80, 110, 1, now.Add(time.Duration(i)*500*time.Millisecond))
	}
}
